// Shared helpers for the benchmark harnesses: the paper's methodology
// (§4.1 — repeated runs, median latency, round-robin execution to
// eliminate caching effects), environment-variable sizing, and table
// printing.
//
// Environment knobs (all optional):
//   RPQD_BENCH_SF       LDBC-like scale factor        (default 0.5)
//   RPQD_BENCH_REPEATS  runs per query, median taken  (default 3; paper 10)
//   RPQD_BENCH_SEED     generator seed                (default 7)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/rpqd.h"
#include "common/stopwatch.h"
#include "ldbc/generator.h"

namespace rpqd::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline double bench_scale_factor() { return env_double("RPQD_BENCH_SF", 1.0); }
inline int bench_repeats() { return env_int("RPQD_BENCH_REPEATS", 3); }
inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("RPQD_BENCH_SEED", 7));
}

inline ldbc::LdbcConfig bench_ldbc_config() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = bench_scale_factor();
  cfg.seed = bench_seed();
  return cfg;
}

inline double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

/// Latency measurement of one already-built callable, median of N runs.
template <typename Fn>
double median_ms(Fn&& fn, int repeats) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.elapsed_ms());
  }
  return median(samples);
}

/// Round-robin run of a query list (the paper's methodology): every query
/// executes once per round; per-query medians over rounds.
struct RoundRobinResult {
  std::vector<double> median_latency_ms;  // per query
  std::vector<QueryResult> last_result;   // per query
};

inline RoundRobinResult round_robin(Database& db,
                                    const std::vector<std::string>& queries,
                                    int rounds) {
  std::vector<std::vector<double>> samples(queries.size());
  RoundRobinResult out;
  out.last_result.resize(queries.size());
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      Stopwatch timer;
      out.last_result[q] = db.query(queries[q]);
      samples[q].push_back(timer.elapsed_ms());
    }
  }
  for (auto& s : samples) out.median_latency_ms.push_back(median(s));
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace rpqd::bench
