// Shared helpers for the benchmark harnesses: the paper's methodology
// (§4.1 — repeated runs, median latency, round-robin execution to
// eliminate caching effects), environment-variable sizing, and table
// printing.
//
// Environment knobs (all optional):
//   RPQD_BENCH_SF       LDBC-like scale factor        (default 0.5)
//   RPQD_BENCH_REPEATS  runs per query, median taken  (default 3; paper 10)
//   RPQD_BENCH_SEED     generator seed                (default 7)
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "common/stopwatch.h"
#include "ldbc/generator.h"

namespace rpqd::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline double bench_scale_factor() { return env_double("RPQD_BENCH_SF", 1.0); }
inline int bench_repeats() { return env_int("RPQD_BENCH_REPEATS", 3); }
inline std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_int("RPQD_BENCH_SEED", 7));
}

inline ldbc::LdbcConfig bench_ldbc_config() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = bench_scale_factor();
  cfg.seed = bench_seed();
  return cfg;
}

inline double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

/// Latency measurement of one already-built callable, median of N runs.
template <typename Fn>
double median_ms(Fn&& fn, int repeats) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch timer;
    fn();
    samples.push_back(timer.elapsed_ms());
  }
  return median(samples);
}

/// Round-robin run of a query list (the paper's methodology): every query
/// executes once per round; per-query medians over rounds.
struct RoundRobinResult {
  std::vector<double> median_latency_ms;  // per query
  std::vector<QueryResult> last_result;   // per query
};

inline RoundRobinResult round_robin(Database& db,
                                    const std::vector<std::string>& queries,
                                    int rounds) {
  std::vector<std::vector<double>> samples(queries.size());
  RoundRobinResult out;
  out.last_result.resize(queries.size());
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      Stopwatch timer;
      out.last_result[q] = db.query(queries[q]);
      samples[q].push_back(timer.elapsed_ms());
    }
  }
  for (auto& s : samples) out.median_latency_ms.push_back(median(s));
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// ---- closed-loop concurrent serving (runtime/scheduler.h) --------------

/// Sorted-vector percentile with linear interpolation (p in [0,100]).
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct ClosedLoopResult {
  double wall_ms = 0.0;
  double throughput_qps = 0.0;  // completed queries per second
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   // admission rejects observed by clients
};

/// Closed-loop load: `clients` threads each issue `ops_per_client`
/// queries through submit/await (round-robin over `queries`), thinking
/// `think_ms` between completions. Rejected submissions count separately
/// and are not retried. Configure the db's scheduler before calling.
inline ClosedLoopResult closed_loop_serving(
    Database& db, const std::vector<std::string>& queries, unsigned clients,
    int ops_per_client, double think_ms = 0.0) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> rejects(clients, 0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < ops_per_client; ++i) {
        const std::string& q =
            queries[(c * 7919u + static_cast<unsigned>(i)) % queries.size()];
        Stopwatch timer;
        const QueryResult r = db.await(db.submit(q));
        if (r.aborted) {
          ++rejects[c];
        } else {
          latencies[c].push_back(timer.elapsed_ms());
        }
        if (think_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(think_ms));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ClosedLoopResult out;
  out.wall_ms = wall.elapsed_ms();
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
    out.completed += per_client.size();
  }
  for (const std::uint64_t r : rejects) out.rejected += r;
  out.throughput_qps =
      out.wall_ms > 0.0 ? static_cast<double>(out.completed) / out.wall_ms * 1e3
                        : 0.0;
  out.p50_ms = percentile(all, 50.0);
  out.p95_ms = percentile(all, 95.0);
  out.p99_ms = percentile(all, 99.0);
  return out;
}

/// Serial back-to-back baseline: the same request stream served one
/// query at a time on the blocking path — client think time (if any)
/// serializes with service instead of overlapping it. The denominator
/// of the concurrency speedup claim.
inline ClosedLoopResult serial_baseline(Database& db,
                                        const std::vector<std::string>& queries,
                                        int total_ops, double think_ms = 0.0) {
  std::vector<double> latencies;
  Stopwatch wall;
  for (int i = 0; i < total_ops; ++i) {
    Stopwatch timer;
    const QueryResult r = db.query(queries[static_cast<std::size_t>(i) %
                                           queries.size()]);
    if (!r.aborted) latencies.push_back(timer.elapsed_ms());
    if (think_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(think_ms));
    }
  }
  ClosedLoopResult out;
  out.wall_ms = wall.elapsed_ms();
  out.completed = latencies.size();
  out.throughput_qps =
      out.wall_ms > 0.0 ? static_cast<double>(out.completed) / out.wall_ms * 1e3
                        : 0.0;
  out.p50_ms = percentile(latencies, 50.0);
  out.p95_ms = percentile(latencies, 95.0);
  out.p99_ms = percentile(latencies, 99.0);
  return out;
}

// ---- Zipf-distributed repeated-query serving (rpq/reach_cache.h) -------

/// A request stream of `n` pool indices, Zipf(s)-distributed over `k`
/// distinct queries (s = 0 is uniform). Rank r's weight is 1/(r+1)^s;
/// sampling is inverse-CDF over the normalized cumulative, deterministic
/// in `seed`. The popular ranks are shuffled into the pool order by the
/// caller (rank 0 = pool[0]).
inline std::vector<std::size_t> zipf_stream(std::size_t n, std::size_t k,
                                            double s, std::uint64_t seed) {
  std::vector<double> cumulative(k, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cumulative[r] = total;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, total);
  std::vector<std::size_t> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = uniform(rng);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), x);
    stream.push_back(static_cast<std::size_t>(it - cumulative.begin()));
  }
  return stream;
}

struct ServeStreamResult {
  double mean_ms = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0;
  std::uint64_t completed = 0;
};

/// Serve a pre-sampled request stream serially on the blocking path and
/// report latency moments. The same stream replayed against differently
/// configured Databases (caches off / on) is the cache serving A/B.
inline ServeStreamResult serve_stream(Database& db,
                                      const std::vector<std::string>& pool,
                                      const std::vector<std::size_t>& stream) {
  std::vector<double> samples;
  samples.reserve(stream.size());
  for (const std::size_t q : stream) {
    Stopwatch timer;
    const QueryResult r = db.query(pool[q]);
    if (!r.aborted) samples.push_back(timer.elapsed_ms());
  }
  ServeStreamResult out;
  out.completed = samples.size();
  for (const double ms : samples) out.mean_ms += ms;
  if (!samples.empty()) out.mean_ms /= static_cast<double>(samples.size());
  out.p50_ms = percentile(samples, 50.0);
  out.p95_ms = percentile(samples, 95.0);
  return out;
}

}  // namespace rpqd::bench
