// Table 2 reproduction: per-depth #matches of the RPQ control stage for
// Q9 (recursively all replies to posts), plus the §4.4 deep-dive stats:
// reachability-index entries/bytes and the with/without-index latency
// ratio (the paper measures 3.4x faster without the index on Q9's pure
// tree workload).
//
// Paper values on LDBC SF100 for orientation:
//   depth     0     1    2    3     4    5   6    7   8  9  10
//   matches 3.1M  5.9M  4M  1.5M  375k 62k  7k  658  52  1   0
//   index: 181MB dynamic size, no flow-control blocking, <16GB total.
#include <cstdio>

#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  ldbc::LdbcStats gstats;
  print_header("Table 2: RPQ control-stage statistics of Q9");
  Graph graph = ldbc::generate_ldbc(cfg, &gstats);
  std::printf("LDBC-like sf=%.2f: %zu posts, %zu comments\n\n",
              cfg.scale_factor, gstats.posts, gstats.comments);

  const std::string q9 =
      "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)";
  Database db(std::move(graph), 8);

  QueryResult result;
  const double with_index_ms =
      median_ms([&] { result = db.query(q9); }, repeats);
  const auto& rpq = result.stats.rpq[0];

  std::printf("depth:   ");
  for (std::size_t d = 0; d < rpq.matches_per_depth.size(); ++d) {
    std::printf("%9zu", d);
  }
  std::printf("\n#matches:");
  for (const auto m : rpq.matches_per_depth) {
    std::printf("%9llu", static_cast<unsigned long long>(m));
  }
  std::printf("\n\n");

  std::printf("matched results:          %llu\n",
              static_cast<unsigned long long>(result.count));
  std::printf("reachability index:       %llu entries, %llu bytes "
              "(12 B/entry as in the paper)\n",
              static_cast<unsigned long long>(rpq.index_entries),
              static_cast<unsigned long long>(rpq.index_bytes));
  std::printf("eliminated / duplicated:  %llu / %llu (tree workload: the "
              "index is superfluous)\n",
              static_cast<unsigned long long>(rpq.total_eliminated()),
              static_cast<unsigned long long>(rpq.total_duplicated()));
  std::printf("flow control blocked:     %llu times\n",
              static_cast<unsigned long long>(result.stats.flow_blocked));
  std::printf("peak buffered bytes:      %llu\n\n",
              static_cast<unsigned long long>(
                  result.stats.peak_queued_bytes));

  // §4.4: Q9 without the reachability index (safe: reply trees).
  db.config().use_reachability_index = false;
  const double without_index_ms =
      median_ms([&] { (void)db.query(q9); }, repeats);
  db.config().use_reachability_index = true;
  std::printf("latency with index:    %8.2f ms\n", with_index_ms);
  std::printf("latency without index: %8.2f ms  -> %.2fx faster without "
              "(paper: 3.4x on 8 machines)\n",
              without_index_ms, with_index_ms / without_index_ms);
  return 0;
}
