// Ablation: messaging design choices (§3.2).
//
// (a) Batching: RPQd "batches multiple contexts for the same machine and
//     stage into a single message" — sweeping the buffer size shows the
//     amortization (message counts drop, latency improves, at the price
//     of burstier memory).
// (b) Pickup priority: messages are processed "larger depth first, later
//     stage first"; the FIFO ablation disables that rule.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Ablation: message batching and pickup priority");
  ldbc::LdbcStats gstats;
  auto shared_graph =
      std::make_shared<const Graph>(ldbc::generate_ldbc(cfg, &gstats));
  std::printf("LDBC-like sf=%.2f (%zu vertices), 8 machines, dense knows{1,2} query\n\n",
              cfg.scale_factor, gstats.total_vertices);
  auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 8);

  // Batching needs many contexts per (machine, stage, depth) key: the
  // dense knows neighbourhood concentrates its traffic at depths 1-2.
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{1,2}/- (p2:Person)";

  std::printf("--- (a) context batching: buffer size sweep ---\n");
  std::printf("%-12s %12s %12s %12s %14s\n", "buf-bytes", "latency(ms)",
              "messages", "contexts", "bytes-sent");
  for (const std::size_t bytes : {128u, 512u, 2048u, 8192u, 65536u}) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffer_bytes = bytes;
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    std::printf("%-12zu %12.2f %12llu %12llu %14llu\n", bytes, ms,
                static_cast<unsigned long long>(result.stats.data_messages),
                static_cast<unsigned long long>(result.stats.contexts_sent),
                static_cast<unsigned long long>(result.stats.bytes_sent));
  }

  std::printf("\n--- (b) pickup priority: deep-first vs FIFO ---\n");
  std::printf("%-12s %12s %16s\n", "mode", "latency(ms)", "peak-buffered");
  for (const bool deep : {true, false}) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffer_bytes = 1024;
    ec.deep_message_priority = deep;
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    std::printf("%-12s %12.2f %16llu\n", deep ? "deep-first" : "fifo", ms,
                static_cast<unsigned long long>(
                    result.stats.peak_queued_bytes));
  }
  std::printf("\n--- (c) aDFS work sharing (§5 extension) ---\n");
  std::printf("%-12s %12s %14s\n", "sharing", "latency(ms)", "shared-tasks");
  for (const bool sharing : {false, true}) {
    EngineConfig ec;
    ec.workers_per_machine = 4;
    ec.adfs_work_sharing = sharing;
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    std::printf("%-12s %12.2f %14llu\n", sharing ? "on" : "off", ms,
                static_cast<unsigned long long>(
                    result.stats.adfs_shared_tasks));
  }
  std::printf("\n(deep-first pickup drains the pipeline towards the output "
              "before expanding new shallow work; on real multi-core "
              "machines aDFS sharing converts long sequential subtrees "
              "into parallel work — on this one-core simulation it only "
              "shows the accounting)\n");
  return 0;
}
