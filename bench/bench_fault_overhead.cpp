// Fault-injection fabric overhead (§7 of DESIGN.md).
//
// Two questions the differential-testing fabric must answer before it
// can stay compiled into the engine:
//   (a) a default (inactive) FaultPlan must cost nothing on the fabric
//       hot path — the `faults_on_` branch is the only tax;
//   (b) each named schedule's slowdown factor, so harness runtimes in
//       EXPERIMENTS.md can be budgeted.
#include <cstdio>

#include "bench_util.h"
#include "common/fault.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Fault-injection fabric overhead");
  ldbc::LdbcStats gstats;
  auto shared_graph =
      std::make_shared<const Graph>(ldbc::generate_ldbc(cfg, &gstats));
  std::printf(
      "LDBC-like sf=%.2f (%zu vertices), 4 machines, knows{1,2} query\n\n",
      cfg.scale_factor, gstats.total_vertices);
  auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 4);

  const std::string query =
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{1,2}/- (p2:Person)";

  std::printf("%-14s %12s %10s %10s %10s %8s\n", "schedule", "latency(ms)",
              "delayed", "dup-inj", "stalls", "count");
  double base_ms = 0.0;
  for (const auto& name : FaultPlan::schedule_names()) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffer_bytes = 1024;
    ec.fault_plan = FaultPlan::named(name, /*seed=*/7);
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    if (name == "none") base_ms = ms;
    std::printf("%-14s %12.2f %10llu %10llu %10llu %8llu", name.c_str(), ms,
                static_cast<unsigned long long>(result.stats.faults_delayed),
                static_cast<unsigned long long>(
                    result.stats.faults_duplicated),
                static_cast<unsigned long long>(result.stats.faults_stalls),
                static_cast<unsigned long long>(result.count));
    if (name != "none" && base_ms > 0.0) {
      std::printf("   (%.2fx)", ms / base_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(\"none\" equals the fault-free fabric: FaultPlan::any() is false, "
      "so push/try_pop_data never reach the fault path; every adversarial "
      "schedule must still produce the same count)\n");
  return 0;
}
