// Ablation: flow-control sizing (§3.3 / §4.2).
//
// Sweeps the per-machine buffer allowance and the RPQ preallocated depth
// window D on a wide reply-tree exploration (the Q03a/Q09a shape whose
// intermediate results explode at shallow depths — the behaviour that
// made Q03* block flow control 82M times in the paper). Reports latency,
// block counts, shared/overflow credit usage, and peak buffered bytes:
// the memory/latency trade-off the paper's flow control navigates.
#include <cstdio>

#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Ablation: flow-control buffer budget and depth window");
  ldbc::LdbcStats gstats;
  Graph graph = ldbc::generate_ldbc(cfg, &gstats);
  std::printf("LDBC-like sf=%.2f (%zu messages), 8 machines, query Q09a\n\n",
              cfg.scale_factor, gstats.posts + gstats.comments);

  const std::string query =
      "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)";

  std::printf("%-10s %-8s %12s %10s %10s %10s %14s\n", "buffers", "depthD",
              "latency(ms)", "blocked", "shared", "overflow", "peak-bytes");
  auto shared_graph = std::make_shared<const Graph>(std::move(graph));
  for (const unsigned buffers : {8u, 32u, 128u, 512u}) {
    for (const Depth window : {1u, 4u, 8u}) {
      EngineConfig ec;
      ec.workers_per_machine = 2;
      ec.buffers_per_machine = buffers;
      ec.buffer_bytes = 2048;
      ec.rpq_preallocated_depth = window;
      auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 8);
      DistributedEngine engine(pg, ec);
      QueryResult result;
      const double ms =
          median_ms([&] { result = engine.execute(query); }, repeats);
      std::printf("%-10u %-8u %12.2f %10llu %10llu %10llu %14llu\n", buffers,
                  window, ms,
                  static_cast<unsigned long long>(result.stats.flow_blocked),
                  static_cast<unsigned long long>(
                      result.stats.flow_shared_used),
                  static_cast<unsigned long long>(
                      result.stats.flow_overflow_used),
                  static_cast<unsigned long long>(
                      result.stats.peak_queued_bytes));
      if (result.stats.flow_emergency != 0) {
        std::printf("  !! emergency credits used: %llu\n",
                    static_cast<unsigned long long>(
                        result.stats.flow_emergency));
      }
    }
  }
  std::printf("\n(small budgets trade latency for bounded buffering: "
              "blocked counts rise, peak bytes fall — §3.3)\n");
  return 0;
}
