// Ablation: DFT (RPQd) vs level-synchronous BFT — the trade-off the
// paper's §5 limitations section describes: RPQd excels on tree
// topologies with bounded memory; when a graph/query combination creates
// many duplicated reachability paths (dense neighbourhoods, long windows)
// a BFT engine can be faster at the price of materializing large
// per-source frontiers.
//
// Memory comparison: RPQd's working set = peak buffered message bytes +
// reachability-index bytes (its only dynamic state); BFT's = peak
// (source, vertex, depth) state bytes.
#include <cstdio>

#include "baseline/bft.h"
#include "bench_util.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Ablation: RPQd (async DFT) vs level-synchronous BFT");
  ldbc::LdbcStats gstats;
  auto shared_graph =
      std::make_shared<const Graph>(ldbc::generate_ldbc(cfg, &gstats));
  std::printf("LDBC-like sf=%.2f: %zu vertices, %zu edges; 8 machines\n\n",
              cfg.scale_factor, gstats.total_vertices, gstats.total_edges);

  auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 8);
  EngineConfig ec;
  ec.workers_per_machine = 2;
  DistributedEngine rpqd_engine(pg, ec);
  baseline::BftEngine bft(*pg);

  struct Scenario {
    const char* name;
    const char* pgql;            // RPQd side
    baseline::BftTask task;      // equivalent BFT task
  };
  std::vector<Scenario> scenarios;
  {
    Scenario replies;
    replies.name = "reply trees (Post <-replyOf* all msgs)";
    replies.pgql = "SELECT COUNT(*) FROM MATCH (m:Post|Comment) "
                   "-/:replyOf{1,}/-> (n)";
    replies.task.source_labels = {"Post", "Comment"};
    replies.task.dir = Direction::kOut;
    replies.task.edge_labels = {"replyOf"};
    replies.task.min_hop = 1;
    replies.task.max_hop = kUnboundedDepth;
    scenarios.push_back(replies);

    Scenario knows;
    knows.name = "dense knows neighbourhoods (50 persons, {2,3}) — the "
                 "duplicate-heavy case the paper's 5 cedes to BFT";
    knows.pgql = "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- "
                 "(p2:Person) WHERE p1.id <= 50";
    knows.task.source_labels = {"Person"};
    knows.task.source_id_max = 50;
    knows.task.dir = Direction::kBoth;
    knows.task.edge_labels = {"knows"};
    knows.task.min_hop = 2;
    knows.task.max_hop = 3;
    knows.task.dest_labels = {"Person"};
    scenarios.push_back(knows);
  }

  for (const auto& s : scenarios) {
    QueryResult dft;
    const double dft_ms =
        median_ms([&] { dft = rpqd_engine.execute(s.pgql); }, repeats);
    baseline::BftResult bft_result;
    const double bft_ms =
        median_ms([&] { bft_result = bft.run(s.task); }, repeats);
    const std::uint64_t dft_bytes =
        dft.stats.peak_queued_bytes +
        (dft.stats.rpq.empty() ? 0 : dft.stats.rpq[0].index_bytes);

    std::printf("%s\n", s.name);
    std::printf("  counts:      rpqd=%llu bft=%llu (%s)\n",
                static_cast<unsigned long long>(dft.count),
                static_cast<unsigned long long>(bft_result.count),
                dft.count == bft_result.count ? "agree" : "MISMATCH");
    std::printf("  latency:     rpqd=%.2fms bft=%.2fms\n", dft_ms, bft_ms);
    std::printf("  peak memory: rpqd=%llu B (buffers+index)  bft=%llu B "
                "(frontier+visited)  -> bft uses %.1fx\n\n",
                static_cast<unsigned long long>(dft_bytes),
                static_cast<unsigned long long>(bft_result.peak_state_bytes),
                dft_bytes > 0 ? static_cast<double>(
                                    bft_result.peak_state_bytes) /
                                    static_cast<double>(dft_bytes)
                              : 0.0);
  }
  std::printf("(the paper's §5 trade-off: BFT may win on latency for "
              "duplicate-heavy workloads but gives up RPQd's bounded "
              "memory)\n");
  return 0;
}
