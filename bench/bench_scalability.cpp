// §4.3 reproduction: RPQd scalability over the machine count, per query.
//
// The paper: 8 and 16 machines are 2.3x / 4.4x faster than 4 in total,
// nearly linear (super-linear cases come from the larger aggregate
// flow-control memory); Q03* and Q10* scale worst because of narrow
// starting filters and partitioning.
#include <cstdio>

#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  ldbc::LdbcStats stats;
  ldbc::generate_ldbc(cfg, &stats);
  print_header("Scalability (4.3): RPQd latency vs machine count");
  std::printf("LDBC-like sf=%.2f (%zu vertices, %zu edges), median of %d\n\n",
              cfg.scale_factor, stats.total_vertices, stats.total_edges,
              repeats);

  const auto workload = workloads::benchmark_queries();
  std::vector<std::string> texts;
  for (const auto& wq : workload) texts.push_back(wq.pgql);

  const unsigned machine_counts[] = {1, 2, 4, 8, 16};
  std::vector<std::vector<double>> latency(std::size(machine_counts));
  for (std::size_t m = 0; m < std::size(machine_counts); ++m) {
    Database db(ldbc::generate_ldbc(cfg), machine_counts[m]);
    latency[m] = round_robin(db, texts, repeats).median_latency_ms;
  }

  std::printf("%-6s", "query");
  for (const unsigned m : machine_counts) std::printf("   %5um", m);
  std::printf("   speedup 4->16\n");
  std::vector<double> totals(std::size(machine_counts), 0.0);
  for (std::size_t q = 0; q < workload.size(); ++q) {
    std::printf("%-6s", workload[q].id.c_str());
    for (std::size_t m = 0; m < std::size(machine_counts); ++m) {
      totals[m] += latency[m][q];
      std::printf(" %7.2f", latency[m][q]);
    }
    std::printf("   %10.2fx\n", latency[2][q] / latency[4][q]);
  }
  std::printf("%-6s", "total");
  for (const double t : totals) std::printf(" %7.2f", t);
  std::printf("   %10.2fx\n", totals[2] / totals[4]);
  std::printf("\n(latencies in ms; speedup = 4-machine total / 16-machine "
              "total; paper reports 4.4x on real hardware)\n");
  return 0;
}
