// Figure 2 reproduction: RPQd (4/8/16 machines) vs the Neo4j-like and
// PostgreSQL-like comparators on the nine LDBC-BI-derived queries, plus
// the §4.3 scalability summary.
//
// The paper reports: with four machines RPQd is on average >18x/16x
// faster than Neo4j/PostgreSQL in total time; 8 and 16 machines are 2.3x
// and 4.4x faster than 4 machines; Q03* scales worst (intermediate-result
// explosion at depth one); Q10 is limited by its narrow single-vertex
// start. Absolute numbers here differ (simulated cluster on one host);
// EXPERIMENTS.md records the shape comparison.
#include <cstdio>

#include "baseline/neo4j_like.h"
#include "baseline/relational.h"
#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  ldbc::LdbcStats stats;
  Graph oracle = ldbc::generate_ldbc(cfg, &stats);
  print_header("Figure 2: RPQd vs Neo4j-like vs PostgreSQL-like");
  std::printf(
      "LDBC-like sf=%.2f: %zu vertices, %zu edges; median of %d "
      "round-robin runs\n\n",
      cfg.scale_factor, stats.total_vertices, stats.total_edges, repeats);

  const auto workload = workloads::benchmark_queries();
  std::vector<std::string> texts;
  for (const auto& wq : workload) texts.push_back(wq.pgql);

  // RPQd at 4 / 8 / 16 machines.
  const unsigned machine_counts[] = {4, 8, 16};
  std::vector<std::vector<double>> rpqd_ms(std::size(machine_counts));
  std::vector<std::uint64_t> counts(workload.size(), 0);
  for (std::size_t m = 0; m < std::size(machine_counts); ++m) {
    Database db(ldbc::generate_ldbc(cfg), machine_counts[m]);
    const auto rr = round_robin(db, texts, repeats);
    rpqd_ms[m] = rr.median_latency_ms;
    for (std::size_t q = 0; q < workload.size(); ++q) {
      counts[q] = rr.last_result[q].count;
    }
  }

  // Comparators (single machine, as in the paper).
  baseline::Neo4jLikeEngine neo(oracle);
  baseline::RelationalEngine rel(oracle);
  std::vector<double> neo_ms(workload.size());
  std::vector<double> rel_ms(workload.size());
  std::vector<bool> rel_ok(workload.size(), true);
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t q = 0; q < workload.size(); ++q) {
      {
        Stopwatch t;
        const auto res = neo.execute(texts[q]);
        if (res.count != counts[q]) {
          std::printf("!! count mismatch on %s (neo4j-like)\n",
                      workload[q].id.c_str());
        }
        if (r == 0) {
          neo_ms[q] = t.elapsed_ms();
        } else {
          neo_ms[q] = std::min(neo_ms[q], t.elapsed_ms());
        }
      }
      try {
        Stopwatch t;
        (void)rel.execute(texts[q]);
        if (r == 0) {
          rel_ms[q] = t.elapsed_ms();
        } else {
          rel_ms[q] = std::min(rel_ms[q], t.elapsed_ms());
        }
      } catch (const UnsupportedError&) {
        rel_ok[q] = false;  // cross-filters: no recursive-CTE rewrite
      }
    }
  }

  std::printf("%-6s %12s %10s %10s %10s %12s %12s %8s\n", "query", "count",
              "rpqd-4m", "rpqd-8m", "rpqd-16m", "neo4j-like", "pg-like",
              "x-vs-pg");
  double total[3] = {0, 0, 0};
  double total_neo = 0;
  double total_rel = 0;
  for (std::size_t q = 0; q < workload.size(); ++q) {
    total[0] += rpqd_ms[0][q];
    total[1] += rpqd_ms[1][q];
    total[2] += rpqd_ms[2][q];
    total_neo += neo_ms[q];
    if (rel_ok[q]) total_rel += rel_ms[q];
    std::printf("%-6s %12llu %9.2fms %8.2fms %8.2fms %10.2fms ",
                workload[q].id.c_str(),
                static_cast<unsigned long long>(counts[q]), rpqd_ms[0][q],
                rpqd_ms[1][q], rpqd_ms[2][q], neo_ms[q]);
    if (rel_ok[q]) {
      std::printf("%10.2fms %7.1fx\n", rel_ms[q], rel_ms[q] / rpqd_ms[0][q]);
    } else {
      std::printf("%12s %8s\n", "n/a", "-");
    }
  }
  std::printf("%-6s %12s %9.2fms %8.2fms %8.2fms %10.2fms %10.2fms\n\n",
              "total", "", total[0], total[1], total[2], total_neo, total_rel);

  std::printf("total-time speedup of RPQd(4m): %.1fx vs neo4j-like, %.1fx "
              "vs pg-like   (paper: >18x and 16x)\n",
              total_neo / total[0], total_rel / total[0]);
  std::printf("scalability vs 4 machines (total time): 8m %.2fx, 16m %.2fx"
              "   (paper: 2.3x and 4.4x on a real cluster)\n",
              total[0] / total[1], total[0] / total[2]);
  std::printf("note: all machines share one host core here, so speedup "
              "from added machines reflects partitioning/flow-control "
              "effects only, not added hardware.\n");
  return 0;
}
