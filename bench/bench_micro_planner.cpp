// Micro-benchmarks of the query compiler: lexing, parsing, and cost-based
// planning for the nine workload queries — the overhead that prepared
// queries (Database::prepare) amortize away.
#include <benchmark/benchmark.h>

#include "ldbc/generator.h"
#include "pgql/parser.h"
#include "plan/planner.h"
#include "workloads/queries.h"

namespace {

using namespace rpqd;

const Graph& workload_graph() {
  static const Graph graph = [] {
    ldbc::LdbcConfig cfg;
    cfg.scale_factor = 0.05;
    return ldbc::generate_ldbc(cfg);
  }();
  return graph;
}

void BM_Parse(benchmark::State& state) {
  const auto queries = workloads::benchmark_queries();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgql::parse(queries[i % queries.size()].pgql));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Parse);

void BM_Plan(benchmark::State& state) {
  const auto queries = workloads::benchmark_queries();
  std::vector<pgql::Query> parsed;
  for (const auto& wq : queries) parsed.push_back(pgql::parse(wq.pgql));
  const Catalog& catalog = workload_graph().catalog();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan_query(parsed[i % parsed.size()], catalog));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Plan);

void BM_ParseAndPlan(benchmark::State& state) {
  const auto queries = workloads::benchmark_queries();
  const Catalog& catalog = workload_graph().catalog();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto q = pgql::parse(queries[i % queries.size()].pgql);
    benchmark::DoNotOptimize(plan_query(q, catalog));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseAndPlan);

void BM_Explain(benchmark::State& state) {
  const Catalog& catalog = workload_graph().catalog();
  const auto plan = plan_query(
      pgql::parse(workloads::benchmark_queries()[0].pgql), catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explain_plan(plan));
  }
}
BENCHMARK(BM_Explain);

}  // namespace

BENCHMARK_MAIN();
