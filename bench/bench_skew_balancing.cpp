// Skew-aware load balancing A/B (DESIGN.md §14): the table2 Q9 reply
// shape on a deep reply tree, run from an adversarial partition that
// pins every vertex on machine 0, with and without the §14 remedies —
// the profile-driven Repartitioner's proposed map plus hot-vertex
// replication (delegated fan-out) and load-aware flushing. The second
// scenario re-runs the same A/B on the default hash placement, where
// the balancer has nothing to fix: arming it there is pure overhead and
// must stay within the <= 1.05x budget.
//
// Methodology: the simulation multiplexes every machine onto one host,
// so wall-clock is sensitive to background load. Samples interleave one
// off-arm and one on-arm execution per round and the headline ratio is
// the MEDIAN OF PER-ROUND RATIOS — paired samples over identical work,
// so drift lands on both arms of each pair alike and cancels.
//
// run_bench_suite carries the 16-machine rows into BENCH_RPQD.json as
// the "skew_balancing" array; this standalone binary adds the
// machine-count axis and the per-arm counter breakdown.
//
// Environment knobs: RPQD_BENCH_REPEATS / RPQD_BENCH_SEED (bench_util.h).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/repartition.h"
#include "ldbc/synthetic.h"

namespace {

using namespace rpqd;
using namespace rpqd::bench;

/// The Q9 reply shape (table2) anchored at the tree root — the
/// hot-root traversal the skew corpus replays.
const char* kQ9 = "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf*/- (b)";

struct AbResult {
  double off_median_ms = 0.0;
  double on_median_ms = 0.0;
  double paired_ratio = 0.0;  // median over rounds of off_i / on_i
  QueryResult off_r, on_r;
};

/// Interleaved A/B: one off sample then one on sample per round. The
/// per-round off/on ratio is the drift-cancelling estimator; the two
/// medians are kept for absolute context.
AbResult ab_run(Database& off, Database& on, const char* q, int rounds) {
  AbResult out;
  std::vector<double> off_s, on_s, ratios;
  for (int r = 0; r < rounds; ++r) {
    Stopwatch t_off;
    out.off_r = off.query(q);
    off_s.push_back(t_off.elapsed_ms());
    Stopwatch t_on;
    out.on_r = on.query(q);
    on_s.push_back(t_on.elapsed_ms());
    if (on_s.back() > 0.0) ratios.push_back(off_s.back() / on_s.back());
  }
  out.off_median_ms = median(off_s);
  out.on_median_ms = median(on_s);
  out.paired_ratio = median(ratios);
  return out;
}

/// The §14 control loop, verbatim: profile one run on the current (bad)
/// map, feed the measured per-machine load to the Repartitioner, adopt
/// its proposed map, and mirror its proposed hot set.
void balance(Database& db, unsigned machines,
             const std::vector<MachineId>& current_map) {
  const QueryResult profiled = db.query("PROFILE " + std::string(kQ9));
  auto graph = db.materialize_snapshot(db.graph_epoch());
  auto current = std::make_shared<const PartitionMap>(current_map, machines);
  Repartitioner rep(graph, machines, current);
  rep.observe(profiled.stats.machine_contexts);
  db.repartition(rep.propose().assignment);
  db.set_hot_vertices(rep.propose_hot_set(/*max_hot=*/64, /*min_degree=*/4));
}

}  // namespace

int main() {
  const int repeats = bench_repeats();
  const Graph g = synthetic::make_tree(8, 6);
  print_header("skew-aware balancing (Q9 reply shape, tree:8:6)");
  std::printf("vertices=%zu repeats=%d\n",
              static_cast<std::size_t>(g.num_vertices()), repeats);
  std::printf("  %-22s %9s %9s %7s %8s %8s\n", "scenario", "off ms", "on ms",
              "ratio", "imb off", "imb on");

  EngineConfig base;
  base.buffers_per_machine = 256;
  EngineConfig armed = base;
  armed.hot_mirror_fanout = true;
  armed.load_aware_flush = true;

  for (const unsigned machines : {8u, 16u}) {
    // Adversarial: every vertex on machine 0. The off arm stays there;
    // the on arm runs the §14 loop first. Ratio = improvement.
    {
      const std::vector<MachineId> all0(g.num_vertices(), 0);
      Database off_db(g, machines, base);
      off_db.repartition(all0);
      Database on_db(g, machines, armed);
      on_db.repartition(all0);
      balance(on_db, machines, all0);

      const AbResult r = ab_run(off_db, on_db, kQ9, repeats);
      std::printf(
          "  skewed/Q9 %2um         %9.2f %9.2f %6.2fx %8.2f %8.2f  "
          "(fanouts %llu, expands %llu)%s\n",
          machines, r.off_median_ms, r.on_median_ms, r.paired_ratio,
          r.off_r.stats.load_imbalance, r.on_r.stats.load_imbalance,
          static_cast<unsigned long long>(r.on_r.stats.mirror_fanouts),
          static_cast<unsigned long long>(r.on_r.stats.mirror_expands),
          r.off_r.count == r.on_r.count ? "" : "  COUNT MISMATCH");
    }

    // Uniform: the default hash placement, degree-ranked hot set.
    // Ratio = arming overhead (budget 1.05x); extra rounds because the
    // acceptance margin is a few percent, not a factor.
    {
      Database off_db(g, machines, base);
      Database on_db(g, machines, armed);
      auto graph = on_db.materialize_snapshot(on_db.graph_epoch());
      Repartitioner rep(graph, machines);
      on_db.set_hot_vertices(
          rep.propose_hot_set(/*max_hot=*/64, /*min_degree=*/4));

      const AbResult r =
          ab_run(off_db, on_db, kQ9, std::max(repeats, 9));
      std::printf(
          "  uniform/Q9 %2um        %9.2f %9.2f %6.3fx %8.2f %8.2f  "
          "(overhead, budget 1.05x)%s\n",
          machines, r.off_median_ms, r.on_median_ms,
          r.paired_ratio > 0.0 ? 1.0 / r.paired_ratio : 0.0,
          r.off_r.stats.load_imbalance, r.on_r.stats.load_imbalance,
          r.off_r.count == r.on_r.count ? "" : "  COUNT MISMATCH");
    }
  }
  return 0;
}
