// Reliable-delivery (§13 of DESIGN.md) overhead on a lossy fabric.
//
// Two questions the reliability layer must answer before it can stay
// compiled into the engine:
//   (a) arming `reliable_transport` on a loss-free fabric must be close
//       to free — the sequence stamp, CRC, and unacked-ring bookkeeping
//       are the only tax (target <= 1.05x the plain fabric);
//   (b) the latency factor per loss / corruption rate, so harness
//       runtimes in EXPERIMENTS.md can be budgeted and regressions in
//       the retransmission path show up as a ratio, not an anecdote.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Reliable-delivery overhead over a lossy fabric");
  ldbc::LdbcStats gstats;
  auto shared_graph =
      std::make_shared<const Graph>(ldbc::generate_ldbc(cfg, &gstats));
  std::printf(
      "LDBC-like sf=%.2f (%zu vertices), 4 machines, knows{1,2} query\n\n",
      cfg.scale_factor, gstats.total_vertices);
  auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 4);

  const std::string query =
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{1,2}/- (p2:Person)";

  struct Point {
    const char* label;
    bool reliable;      // force reliable_transport even with no faults
    double loss_rate;
    double corrupt_rate;
  };
  const std::vector<Point> points = {
      {"plain", false, 0.0, 0.0},
      {"reliable-0%", true, 0.0, 0.0},
      {"loss-0.1%", false, 0.001, 0.0},
      {"loss-1%", false, 0.01, 0.0},
      {"loss-5%", false, 0.05, 0.0},
      {"corrupt-5%", false, 0.0, 0.05},
      {"corrupt-40%", false, 0.0, 0.40},
  };

  std::printf("%-14s %12s %8s %8s %8s %8s %8s\n", "fabric", "latency(ms)",
              "retx", "acks", "crc-hit", "dedup", "count");
  double base_ms = 0.0;
  for (const auto& p : points) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffer_bytes = 1024;
    ec.reliable_transport = p.reliable;
    if (p.loss_rate > 0.0 || p.corrupt_rate > 0.0) {
      FaultPlan plan;
      plan.seed = 7;
      plan.loss_rate = p.loss_rate;
      plan.loss_classes = kFaultClassAll;
      plan.corrupt_rate = p.corrupt_rate;
      plan.corrupt_classes = kFaultClassAll;
      ec.fault_plan = plan;
    }
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    if (p.loss_rate == 0.0 && p.corrupt_rate == 0.0 && !p.reliable) {
      base_ms = ms;
    }
    std::printf(
        "%-14s %12.2f %8llu %8llu %8llu %8llu %8llu", p.label, ms,
        static_cast<unsigned long long>(result.stats.retransmits),
        static_cast<unsigned long long>(result.stats.acks_sent),
        static_cast<unsigned long long>(
            result.stats.payload_corruptions_detected),
        static_cast<unsigned long long>(result.stats.dedup_drops),
        static_cast<unsigned long long>(result.count));
    if (base_ms > 0.0 && ms != base_ms) {
      std::printf("   (%.2fx)", ms / base_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(\"plain\" is the pre-§13 fabric; \"reliable-0%%\" arms sequence "
      "stamps, CRCs, and the unacked ring with nothing ever lost — its "
      "ratio is the overhead budget (target <= 1.05x). Every lossy row "
      "must still produce the same count: corruption is detected by "
      "checksum and re-sent, loss is re-sent on the retransmit timer.)\n");
  return 0;
}
