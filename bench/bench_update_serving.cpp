// Online-update serving benchmark (DESIGN.md §12).
//
// A Zipf-distributed query stream over a pool of distinct RPQs is
// interleaved with seeded edge-churn batches at increasing update rates
// (updates per 16 stream slots), against a Database with both caches
// on. Reported per rate:
//
//   - query latency (mean/p50/p95) — the cost of running against delta
//     segments plus the cache re-warms that label-scoped invalidation
//     forces (rate 0 is the pure cached-serving baseline),
//   - result-cache hit / evicted-by-update counters — how much of the
//     latency shift is churn-driven re-execution,
//   - the background merge pause (GraphStoreStats::last_merge_ms after
//     folding the accumulated deltas) — the quiescent-point cost the
//     RCU design keeps off the query path.
//
// Environment knobs (on top of bench_util.h's RPQD_BENCH_*):
//   RPQD_BENCH_UPDATE_OPS   stream slots per rate   (default 96)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "graph/update.h"
#include "ldbc/synthetic.h"

namespace {

std::vector<std::string> query_pool() {
  return {
      "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,4}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{2,}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) <-/:e0*/- (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,5}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1+/-> (b)",
  };
}

}  // namespace

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const std::size_t ops =
      static_cast<std::size_t>(env_int("RPQD_BENCH_UPDATE_OPS", 96));
  const std::vector<std::string> pool = query_pool();

  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 48;
  gcfg.num_edges = 160;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.allow_self_loops = false;
  gcfg.seed = bench_seed();
  const Graph graph = synthetic::make_random(gcfg);

  print_header("online update serving (random:48:160, 3 machines, zipf 1.2)");
  std::printf("ops=%zu pool=%zu\n\n", ops, pool.size());
  std::printf("%8s %10s %10s %10s %8s %8s %8s %10s\n", "upd/16", "mean ms",
              "p50 ms", "p95 ms", "hits", "evicted", "batches", "merge ms");

  for (const unsigned rate : {0u, 1u, 2u, 4u, 8u}) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.reach_cache_max_bytes = 4u << 20;
    ec.reach_cache_harvest = true;
    ec.result_cache_max_bytes = 8u << 20;
    Database db(graph, 3, ec);
    const LabelId e0 = *db.graph().catalog().find_edge_label("e0");
    const LabelId e1 = *db.graph().catalog().find_edge_label("e1");

    const std::vector<std::size_t> stream =
        zipf_stream(ops, pool.size(), 1.2,
                    bench_seed() * 1000003 + rate);
    Rng churn(bench_seed() ^ (0xc4u * (rate + 1)));
    std::vector<EdgeInsert> added;  // churn-inserted, hence deletable
    std::vector<double> latencies;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (i % 16 < rate) {
        UpdateBatch batch;
        if (!added.empty() && churn.next_below(3) == 0) {
          const std::size_t pick = churn.next_below(added.size());
          batch.edge_deletes.push_back(
              {added[pick].src, added[pick].dst, added[pick].elabel});
          added.erase(added.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          batch.edge_inserts.push_back(
              {static_cast<VertexId>(churn.next_below(gcfg.num_vertices)),
               static_cast<VertexId>(churn.next_below(gcfg.num_vertices)),
               churn.next_below(2) == 0 ? e0 : e1});
          // One delete removes every parallel copy, so record each
          // (src, dst, elabel) key at most once.
          const EdgeInsert& ins = batch.edge_inserts.back();
          const bool dup = std::any_of(
              added.begin(), added.end(), [&](const EdgeInsert& e) {
                return e.src == ins.src && e.dst == ins.dst &&
                       e.elabel == ins.elabel;
              });
          if (!dup) added.push_back(ins);
        }
        db.apply_update(batch);
        continue;
      }
      Stopwatch timer;
      const QueryResult r = db.query(pool[stream[i]]);
      if (!r.aborted) latencies.push_back(timer.elapsed_ms());
    }

    const GraphStoreStats before = db.update_stats();
    double merge_ms = 0.0;
    if (db.merge_deltas()) merge_ms = db.update_stats().last_merge_ms;
    const ResultCacheStats rs = db.result_cache_stats();
    double mean = 0.0;
    for (const double v : latencies) mean += v;
    if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
    std::printf("%8u %10.3f %10.3f %10.3f %8llu %8llu %8llu %10.3f\n", rate,
                mean, percentile(latencies, 50.0),
                percentile(latencies, 95.0),
                static_cast<unsigned long long>(rs.hits),
                static_cast<unsigned long long>(rs.evicted_by_update),
                static_cast<unsigned long long>(before.batches_applied),
                merge_ms);
  }
  return 0;
}
