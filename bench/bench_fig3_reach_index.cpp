// Figure 3 reproduction: latency of artificial Reply RPQs with different
// (min, max) exploration depths, with and without the reachability index.
//
// The paper (on LDBC SF10): {0,0} shows the pure overhead of dynamically
// allocating the index ({v,v} entry per message vertex); every 0-min-hop
// pattern pays that allocation; increasing max-hop has negligible extra
// cost; increasing min-hop *improves* index-enabled latency because
// traversals below min-hop create no entries (§4.5).
#include <cstdio>

#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  ldbc::LdbcStats gstats;
  print_header("Figure 3: Reply RPQs by depth, with/without reach index");
  Graph graph = ldbc::generate_ldbc(cfg, &gstats);
  std::printf("LDBC-like sf=%.2f: %zu messages in reply trees; median of "
              "%d runs, 8 machines\n\n",
              cfg.scale_factor, gstats.posts + gstats.comments, repeats);

  Database db(std::move(graph), 8);

  struct Point {
    Depth min, max;
  };
  const Point points[] = {{0, 0}, {0, 1}, {1, 1}, {0, 2}, {2, 2},
                          {0, 3}, {3, 3}, {1, 4}, {0, kUnboundedDepth},
                          {1, kUnboundedDepth}};

  std::printf("%-10s %12s %14s %14s %14s %10s %12s\n", "hops", "count",
              "with-idx(ms)", "prealloc(ms)", "no-idx(ms)", "ratio",
              "idx-entries");
  for (const Point p : points) {
    const std::string query = workloads::reply_depth_query(p.min, p.max);
    db.config().use_reachability_index = true;
    QueryResult with;
    const double with_ms = median_ms([&] { with = db.query(query); }, repeats);
    // §4.5 future work: pre/bulk-allocated index trades memory for
    // allocation-free inserts.
    db.config().reach_index_preallocate = true;
    const double prealloc_ms =
        median_ms([&] { (void)db.query(query); }, repeats);
    db.config().reach_index_preallocate = false;
    db.config().use_reachability_index = false;
    const double without_ms =
        median_ms([&] { (void)db.query(query); }, repeats);
    db.config().use_reachability_index = true;
    char label[32];
    if (p.max == kUnboundedDepth) {
      std::snprintf(label, sizeof label, "{%u,inf}", p.min);
    } else {
      std::snprintf(label, sizeof label, "{%u,%u}", p.min, p.max);
    }
    std::printf("%-10s %12llu %12.2f %14.2f %14.2f %9.2fx %12llu\n", label,
                static_cast<unsigned long long>(with.count), with_ms,
                prealloc_ms, without_ms, with_ms / without_ms,
                static_cast<unsigned long long>(
                    with.stats.rpq[0].index_entries));
  }
  std::printf(
      "\n(reply trees are the index's worst case: every insert is new "
      "work with no pruning benefit — the ratio isolates index cost)\n");
  return 0;
}
