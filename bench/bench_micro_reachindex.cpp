// Micro-benchmarks of the reachability index (§3.5): insert, eliminate,
// duplicate-update, lookup, and multi-threaded check-and-update — the
// per-operation costs behind Figure 3's index overhead.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rpq/reach_index.h"
#include "rpq/rpid.h"

namespace {

using rpqd::ReachabilityIndex;

constexpr std::size_t kVertices = 1 << 16;

void BM_InsertNew(benchmark::State& state) {
  ReachabilityIndex index(kVertices);
  std::uint64_t seq = 0;
  rpqd::Rng rng(1);
  for (auto _ : state) {
    const auto v =
        static_cast<rpqd::LocalVertexId>(rng.next_below(kVertices));
    benchmark::DoNotOptimize(
        index.check_and_update(v, rpqd::make_rpid_source(0, 0, ++seq), 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertNew);

void BM_InsertNewPreallocated(benchmark::State& state) {
  // The §4.5 configuration: the bump-arena absorbs all segment growth,
  // so inserts never reach the heap (hot_allocations stays 0).
  ReachabilityIndex index(kVertices, /*preallocate=*/true);
  std::uint64_t seq = 0;
  rpqd::Rng rng(1);
  for (auto _ : state) {
    const auto v =
        static_cast<rpqd::LocalVertexId>(rng.next_below(kVertices));
    benchmark::DoNotOptimize(
        index.check_and_update(v, rpqd::make_rpid_source(0, 0, ++seq), 1));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hot_allocs"] =
      benchmark::Counter(static_cast<double>(index.stats().hot_allocations));
}
BENCHMARK(BM_InsertNewPreallocated);

void BM_EliminateExisting(benchmark::State& state) {
  ReachabilityIndex index(kVertices);
  const auto rpid = rpqd::make_rpid_source(0, 0, 1);
  for (rpqd::LocalVertexId v = 0; v < 1024; ++v) {
    index.check_and_update(v, rpid, 1);
  }
  rpqd::Rng rng(2);
  for (auto _ : state) {
    const auto v = static_cast<rpqd::LocalVertexId>(rng.next_below(1024));
    benchmark::DoNotOptimize(index.check_and_update(v, rpid, 3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EliminateExisting);

void BM_DuplicateUpdate(benchmark::State& state) {
  ReachabilityIndex index(kVertices);
  const auto rpid = rpqd::make_rpid_source(0, 0, 1);
  rpqd::Rng rng(3);
  rpqd::Depth depth = 1u << 30;
  for (auto _ : state) {
    // Strictly decreasing depth: every touch is a duplicate-update.
    benchmark::DoNotOptimize(index.check_and_update(7, rpid, --depth));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DuplicateUpdate);

void BM_Lookup(benchmark::State& state) {
  ReachabilityIndex index(kVertices);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    index.check_and_update(static_cast<rpqd::LocalVertexId>(i % kVertices),
                           rpqd::make_rpid_source(0, 0, i), 1);
  }
  rpqd::Rng rng(4);
  for (auto _ : state) {
    const auto i = rng.next_below(4096);
    benchmark::DoNotOptimize(index.lookup(
        static_cast<rpqd::LocalVertexId>(i % kVertices),
        rpqd::make_rpid_source(0, 0, i)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lookup);

void BM_ConcurrentCheckAndUpdate(benchmark::State& state) {
  static ReachabilityIndex* index = nullptr;
  if (state.thread_index() == 0) {
    delete index;
    index = new ReachabilityIndex(kVertices);
  }
  rpqd::Rng rng(100 + static_cast<std::uint64_t>(state.thread_index()));
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const auto v =
        static_cast<rpqd::LocalVertexId>(rng.next_below(kVertices));
    benchmark::DoNotOptimize(index->check_and_update(
        v,
        rpqd::make_rpid_source(0, static_cast<rpqd::WorkerId>(
                                      state.thread_index()),
                               ++seq),
        1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentCheckAndUpdate)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
