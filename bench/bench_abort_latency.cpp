// Abort-latency micro-benchmark (DESIGN.md §9): how long a mid-flight
// cooperative cancel takes from `cancel_all()` to the query returning a
// clean aborted QueryResult — the cancel-to-drained time. The abort
// protocol's cost is the propagation of one kAbort broadcast plus every
// worker finishing (unwinding) its current context and draining its
// buffers, so the interesting axes are exploration depth (stack to
// unwind, Reply-query regime of Figure 3) and machine count (credits to
// collect cluster-wide).
//
// Also measures the crash-stop recovery path: run_with_retry over a
// "crash-stop" schedule (machine dies mid-run, one-shot), reporting the
// detect-abort-retry-and-answer latency and the retry count.
//
// This standalone binary prints the sweep for interactive use;
// run_bench_suite embeds the same measurements into BENCH_RPQD.json.
//
// Environment knobs: RPQD_BENCH_REPEATS (default 5 here).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "ldbc/synthetic.h"

using namespace rpqd;
using namespace rpqd::bench;

namespace {

struct CancelSample {
  double cancel_to_drained_ms = 0.0;
  bool aborted = false;  // false: the query won the race; sample invalid
};

/// One cancel-to-drained measurement: start the query, let it get
/// mid-flight, then time cancel_all() -> query returned. Only runs that
/// actually aborted produce a valid sample (fast queries can win the
/// race; callers retry).
CancelSample measure_cancel(Database& db, const std::string& query,
                            unsigned delay_us) {
  QueryResult result;
  std::atomic<bool> started{false};
  std::thread runner([&] {
    started.store(true, std::memory_order_release);
    result = db.query(query);
  });
  while (!started.load(std::memory_order_acquire)) {
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  Stopwatch timer;
  db.cancel_all();
  runner.join();
  return {timer.elapsed_ms(), result.aborted};
}

/// Median cancel-to-drained over `repeats` valid (actually-aborted)
/// samples; gives up on a run shape too fast to ever catch mid-flight.
double cancel_to_drained_ms(Database& db, const std::string& query,
                            unsigned delay_us, int repeats, int* valid_out) {
  std::vector<double> samples;
  int attempts = 0;
  while (static_cast<int>(samples.size()) < repeats &&
         attempts < repeats * 10) {
    ++attempts;
    const CancelSample s = measure_cancel(db, query, delay_us);
    if (s.aborted) samples.push_back(s.cancel_to_drained_ms);
  }
  if (valid_out != nullptr) *valid_out = static_cast<int>(samples.size());
  return median(samples);
}

}  // namespace

int main() {
  const int repeats = env_int("RPQD_BENCH_REPEATS", 5);
  print_header("Abort latency (cancel-to-drained) and crash-stop retry");
  std::printf("repeats=%d (median over valid mid-flight samples)\n", repeats);

  // Axis 1: exploration depth. Reply-shaped trees (child -> parent
  // replyOf edges, the Figure 3 regime), fixed 4 machines; deeper trees
  // mean deeper per-worker stacks to unwind on the halt poll.
  std::printf("\n%-28s %8s %10s %8s\n", "shape", "machines",
              "cancel_ms", "valid");
  for (unsigned depth : {8u, 12u, 16u}) {
    Database db(synthetic::make_tree(2, depth), 4);
    const std::string query =
        "SELECT COUNT(*) FROM MATCH (v0:Root) -/:replyOf*/- (v1)";
    int valid = 0;
    const double ms = cancel_to_drained_ms(db, query, 200, repeats, &valid);
    std::printf("tree:2:%-21u %8u %10.3f %8d\n", depth, 4, ms, valid);
  }

  // Axis 2: machine count. A dense clique star query (high fan-out, many
  // live contexts and in-flight credits) at 2/4/8 machines.
  for (unsigned machines : {2u, 4u, 8u}) {
    Database db(synthetic::make_complete(12), machines);
    const std::string query =
        "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
    int valid = 0;
    const double ms = cancel_to_drained_ms(db, query, 200, repeats, &valid);
    std::printf("complete:%-20u %8u %10.3f %8d\n", 12u, machines, ms, valid);
  }

  // Crash-stop recovery: machine dies mid-run (one-shot), run_with_retry
  // detects the machine-failure abort and re-runs against the healthy
  // cluster. Reported latency covers abort + backoff + clean re-run.
  std::printf("\n%-28s %8s %10s %8s\n", "crash-stop retry", "machines",
              "total_ms", "retries");
  for (unsigned machines : {2u, 4u, 8u}) {
    Database db(synthetic::make_complete(10), machines);
    Database::RetryPolicy policy;
    policy.backoff_base_ms = 0.1;
    policy.backoff_max_ms = 1.0;
    QueryResult result;
    std::vector<double> samples;
    unsigned retries = 0;
    for (int r = 0; r < repeats; ++r) {
      db.set_fault_schedule("crash-stop", 7 + static_cast<std::uint64_t>(r));
      Stopwatch timer;
      result = db.run_with_retry(
          "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)", policy);
      samples.push_back(timer.elapsed_ms());
      retries += result.stats.retries;
    }
    std::printf("complete:%-20u %8u %10.3f %8.1f\n", 10u, machines,
                median(samples),
                static_cast<double>(retries) / repeats);
    if (result.aborted) {
      std::fprintf(stderr, "unexpected: final retry run still aborted (%s)\n",
                   to_string(result.abort_reason));
      return 1;
    }
  }
  return 0;
}
