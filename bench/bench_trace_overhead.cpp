// Tracing/profiling layer overhead (§8 of DESIGN.md).
//
// Two contracts the per-query profiler must hold before it can stay
// compiled into the engine:
//   (a) disabled profiling costs one predictable branch per hook
//       (`worker.prof == nullptr`) and performs zero profile
//       allocations — the acceptance bar is <= 2% slowdown vs a build
//       that never had the hooks (measured here as off-vs-off noise plus
//       the off-vs-on delta staying in single-digit percent);
//   (b) enabled profiling stays cheap enough for always-on use in the
//       bench suite (per-worker flat grids, no locks, merge post-join).
#include <cstdio>

#include "bench_util.h"
#include "runtime/profile.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("Tracing/profiling layer overhead");
  ldbc::LdbcStats gstats;
  auto shared_graph =
      std::make_shared<const Graph>(ldbc::generate_ldbc(cfg, &gstats));
  std::printf(
      "LDBC-like sf=%.2f (%zu vertices), 4 machines, knows{1,2} query\n\n",
      cfg.scale_factor, gstats.total_vertices);
  auto pg = std::make_shared<const PartitionedGraph>(shared_graph, 4);

  const std::string query =
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{1,2}/- (p2:Person)";

  std::printf("%-10s %12s %14s %14s %8s\n", "profiling", "latency(ms)",
              "contexts", "prof-allocs", "count");
  double off_ms = 0.0;
  for (const bool profiling : {false, true}) {
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffer_bytes = 1024;
    ec.profile = profiling;
    DistributedEngine engine(pg, ec);
    QueryResult result;
    const std::uint64_t allocs_before = profile_allocations();
    const double ms =
        median_ms([&] { result = engine.execute(query); }, repeats);
    const std::uint64_t allocs = profile_allocations() - allocs_before;
    if (!profiling) off_ms = ms;
    std::printf("%-10s %12.2f %14llu %14llu %8llu", profiling ? "on" : "off",
                ms,
                static_cast<unsigned long long>(
                    profiling ? result.profile.total_contexts() : 0),
                static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(result.count));
    if (profiling && off_ms > 0.0) {
      std::printf("   (%.2fx)", ms / off_ms);
    }
    std::printf("\n");
    if (!profiling && allocs != 0) {
      std::printf("ERROR: disabled profiling performed %llu allocations\n",
                  static_cast<unsigned long long>(allocs));
      return 1;
    }
  }
  std::printf(
      "\n(\"off\" is the production default: worker.prof stays null, every "
      "hook is one never-taken branch, and profile_allocations() must not "
      "move — the run fails hard if it does)\n");
  return 0;
}
