// Table 3 reproduction: per-depth matches / eliminated / duplicated in
// the RPQ control stage of Q10 (persons within 2–3 Knows hops of one
// person), plus the index-size accounting of §4.4.
//
// Paper values on LDBC SF100 for orientation:
//   depth  matches   eliminated  duplicated
//     0          1           0           0
//     1         35           0           0
//     2      19978        4036       12969
//     3    2700017     2334441           0
//   index: 4.4MB dynamic size. Duplications appear at depth 2 because
//   deeper work is prioritized; eliminations dominate depth 3.
#include <cstdio>

#include "bench_util.h"
#include "workloads/queries.h"

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  ldbc::LdbcStats gstats;
  print_header("Table 3: RPQ control-stage statistics of Q10");
  Graph graph = ldbc::generate_ldbc(cfg, &gstats);
  std::printf("LDBC-like sf=%.2f: %zu persons, %zu knows edges\n\n",
              cfg.scale_factor, gstats.persons, gstats.knows_edges);

  const std::string q10 =
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- (p2:Person) "
      "WHERE p1.id = 7";
  Database db(std::move(graph), 8);
  QueryResult result;
  const double ms = median_ms([&] { result = db.query(q10); }, repeats);
  const auto& rpq = result.stats.rpq[0];

  std::printf("%6s %12s %12s %12s\n", "depth", "num.matches", "eliminated",
              "duplicated");
  for (std::size_t d = 0; d < rpq.matches_per_depth.size(); ++d) {
    const auto at = [&](const std::vector<std::uint64_t>& v) {
      return d < v.size() ? v[d] : 0;
    };
    std::printf("%6zu %12llu %12llu %12llu\n", d,
                static_cast<unsigned long long>(at(rpq.matches_per_depth)),
                static_cast<unsigned long long>(at(rpq.eliminated_per_depth)),
                static_cast<unsigned long long>(at(rpq.duplicated_per_depth)));
  }
  std::printf("\nmatched persons:     %llu (latency %.2f ms)\n",
              static_cast<unsigned long long>(result.count), ms);
  std::printf("index entries/bytes: %llu / %llu "
              "(= matches - eliminated - duplicated, 12 B each)\n",
              static_cast<unsigned long long>(rpq.index_entries),
              static_cast<unsigned long long>(rpq.index_bytes));
  // §4.4 identity, restricted to the quantifier window: traversals below
  // min_hop create no entries (§4.5), so depths 0..1 are excluded.
  std::uint64_t in_window = 0;
  for (std::size_t d = 2; d < rpq.matches_per_depth.size(); ++d) {
    in_window += rpq.matches_per_depth[d];
  }
  const auto expected =
      in_window - rpq.total_eliminated() - rpq.total_duplicated();
  std::printf("identity check:      in-window matches - elim - dup = %llu "
              "(%s)\n",
              static_cast<unsigned long long>(expected),
              expected == rpq.index_entries ? "holds, as in §4.4"
                                            : "MISMATCH");
  std::printf("flow control:        blocked %llu times (paper: Q10 never "
              "triggers flow control)\n",
              static_cast<unsigned long long>(result.stats.flow_blocked));
  return 0;
}
