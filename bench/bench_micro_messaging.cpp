// Micro-benchmarks of the messaging substrate (§3.2/§3.3): context
// serialization, inbox priority-queue operations, and flow-control
// credit acquire/release — the per-hop overheads of remote edges.
#include <benchmark/benchmark.h>

#include "common/config.h"
#include "net/network.h"
#include "runtime/context.h"

namespace {

using namespace rpqd;

void BM_EncodeContext(benchmark::State& state) {
  const auto num_slots = static_cast<std::size_t>(state.range(0));
  std::vector<Value> slots(num_slots, int_value(42));
  std::vector<std::byte> payload;
  payload.reserve(1 << 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    payload.clear();
    BinaryWriter writer(payload);
    ContextCodecState codec;
    encode_context(writer, codec, 123456, 0xabcdef, slots);
    benchmark::DoNotOptimize(payload.data());
    bytes = payload.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodeContext)->Arg(0)->Arg(4)->Arg(16);

void BM_DecodeContext(benchmark::State& state) {
  const auto num_slots = static_cast<std::size_t>(state.range(0));
  std::vector<Value> slots(num_slots, int_value(42));
  std::vector<std::byte> payload;
  BinaryWriter writer(payload);
  ContextCodecState enc;
  encode_context(writer, enc, 123456, 0xabcdef, slots);
  for (auto _ : state) {
    BinaryReader reader(payload);
    VertexId v;
    std::uint64_t rpid;
    std::vector<Value> out;
    ContextCodecState codec;
    decode_context(reader, codec, static_cast<unsigned>(num_slots), v, rpid,
                   out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DecodeContext)->Arg(0)->Arg(4)->Arg(16);

void BM_EncodeContextBatch(benchmark::State& state) {
  // A full outbound buffer: 64 contexts with nearby vertex ids and
  // sequential rpids — the case the delta codec is built for. Reports
  // bytes/context via SetBytesProcessed.
  const auto num_slots = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 64;
  std::vector<Value> slots(num_slots, int_value(42));
  std::vector<std::byte> payload;
  payload.reserve(1 << 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    payload.clear();
    BinaryWriter writer(payload);
    ContextCodecState codec;
    for (std::size_t i = 0; i < kBatch; ++i) {
      encode_context(writer, codec, 123456 + i * 3,
                     0x0102000000000000ULL + i, slots);
    }
    benchmark::DoNotOptimize(payload.data());
    bytes = payload.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.counters["bytes/ctx"] =
      benchmark::Counter(static_cast<double>(bytes) / kBatch);
}
BENCHMARK(BM_EncodeContextBatch)->Arg(0)->Arg(4);

void BM_InboxPushPop(benchmark::State& state) {
  Network net(1);
  std::uint32_t depth = 0;
  for (auto _ : state) {
    Message m;
    m.header.type = MessageType::kData;
    m.header.stage = 3;
    m.header.depth = (depth++) % 12;
    m.header.count = 1;
    m.payload.resize(64);
    net.send(0, std::move(m));
    benchmark::DoNotOptimize(net.inbox(0).try_pop_data(net.stats()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InboxPushPop);

void BM_InboxPriorityBurst(benchmark::State& state) {
  // Push a burst of mixed depths, then drain in priority order.
  Network net(1);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      Message m;
      m.header.type = MessageType::kData;
      m.header.stage = static_cast<StageId>(i % 7);
      m.header.depth = (i * 13) % 17;
      m.header.count = 1;
      net.send(0, std::move(m));
    }
    while (auto msg = net.inbox(0).try_pop_data(net.stats())) {
      benchmark::DoNotOptimize(msg->header.depth);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_InboxPriorityBurst);

void BM_FlowControlAcquireRelease(benchmark::State& state) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 1024;
  FlowControl fc(cfg, 4, {false, true, true, false});
  for (auto _ : state) {
    const auto credit = fc.try_acquire(2, 1, 3);
    benchmark::DoNotOptimize(credit);
    if (credit) fc.release(2, 1, 3, *credit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowControlAcquireRelease);

void BM_FlowControlContended(benchmark::State& state) {
  // All threads hammer the same (dest, stage, depth) — the worst case
  // for the old global mutex, a CAS ping-pong for the atomic counters.
  static FlowControl* fc = nullptr;
  if (state.thread_index() == 0) {
    delete fc;
    EngineConfig cfg;
    cfg.buffers_per_machine = 4096;
    fc = new FlowControl(cfg, 4, {false, true, true, false});
  }
  for (auto _ : state) {
    const auto credit = fc->try_acquire(2, 1, 3);
    benchmark::DoNotOptimize(credit);
    if (credit) fc->release(2, 1, 3, *credit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowControlContended)->Threads(1)->Threads(2)->Threads(4);

void BM_DoneDelivery(benchmark::State& state) {
  EngineConfig cfg;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  net.inbox(0).attach_flow_control(&fc);
  const auto credit = fc.try_acquire(1, 0, 0);
  for (auto _ : state) {
    Message done;
    done.header.type = MessageType::kDone;
    done.header.src = 1;
    done.header.stage = 0;
    done.header.credit = *credit;
    done.header.credit_depth = 0;
    net.send(0, std::move(done));       // releases the credit
    benchmark::DoNotOptimize(fc.try_acquire(1, 0, 0));  // re-take it
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DoneDelivery);

}  // namespace

BENCHMARK_MAIN();
