// Cross-query cache serving benchmark (DESIGN.md §11).
//
// A Zipf(s)-distributed request stream over a pool of distinct RPQs is
// replayed serially against three Database configurations:
//
//   cold   both caches off — every ask executes from scratch
//   reach  reachability cache only (harvest on) — warm asks start from
//          seeded per-source sentinels but still traverse; this row is
//          the transparency control showing seeding alone is roughly
//          latency-neutral (seeds are inert until visited)
//   full   reach + result cache — a repeated normalized ask is served
//          from the store without dispatching
//
// The headline claim: at skew s = 1.2 (hot queries dominate, the
// serving regime the cache targets) `full` improves MEAN latency by
// >= 1.5x over `cold`. Uniform (s = 0) and moderate (s = 0.8) rows are
// printed for transparency — with 2x more requests than pool entries
// even the uniform stream repeats every query, so the result cache
// helps there too, just less.
//
// Environment knobs (on top of bench_util.h's RPQD_BENCH_*):
//   RPQD_BENCH_CACHE_OPS   requests per stream   (default 96)
//   RPQD_BENCH_CACHE_POOL  distinct queries      (default 12, max 12)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ldbc/synthetic.h"

namespace {

/// Distinct automata over the random graph's e0/e1 labels: closures,
/// bounded windows, alternations, a reverse closure — all cache-eligible.
std::vector<std::string> query_pool(std::size_t limit) {
  std::vector<std::string> pool = {
      "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,4}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{2,}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) <-/:e0*/- (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1|e0{1,3}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,5}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{1,4}/-> (b)",
  };
  if (limit < pool.size()) pool.resize(limit);
  return pool;
}

rpqd::EngineConfig mode_config(const char* mode) {
  rpqd::EngineConfig cfg;
  cfg.workers_per_machine = 2;
  if (std::string(mode) != "cold") {
    cfg.reach_cache_max_bytes = 4u << 20;
    cfg.reach_cache_harvest = true;
  }
  if (std::string(mode) == "full") cfg.result_cache_max_bytes = 8u << 20;
  return cfg;
}

}  // namespace

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const std::size_t ops =
      static_cast<std::size_t>(env_int("RPQD_BENCH_CACHE_OPS", 96));
  const std::size_t pool_size = std::min<std::size_t>(
      12, static_cast<std::size_t>(env_int("RPQD_BENCH_CACHE_POOL", 12)));
  const std::vector<std::string> pool = query_pool(pool_size);

  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 48;
  gcfg.num_edges = 160;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.allow_self_loops = false;
  gcfg.seed = bench_seed();
  const Graph graph = synthetic::make_random(gcfg);

  print_header("cross-query cache serving (random:48:160, 3 machines)");
  std::printf("ops=%zu pool=%zu\n\n", ops, pool.size());
  std::printf("%6s %6s %10s %10s %10s %8s %8s %8s %9s\n", "zipf", "mode",
              "mean ms", "p50 ms", "p95 ms", "hits", "misses", "seeded",
              "speedup");

  for (const double s : {0.0, 0.8, 1.2}) {
    const std::vector<std::size_t> stream =
        zipf_stream(ops, pool.size(), s, bench_seed() * 1000003 +
                                              static_cast<std::uint64_t>(
                                                  s * 10.0));
    double cold_mean = 0.0;
    for (const char* mode : {"cold", "reach", "full"}) {
      Database db(graph, 3, mode_config(mode));
      const ServeStreamResult r = serve_stream(db, pool, stream);
      const ResultCacheStats rs = db.result_cache_stats();
      std::uint64_t seeded = 0;
      for (unsigned m = 0; m < db.num_machines(); ++m) {
        if (const ReachCache* cache = db.reach_cache(m)) {
          seeded += cache->stats().seed_reads;
        }
      }
      if (std::string(mode) == "cold") cold_mean = r.mean_ms;
      const double speedup =
          r.mean_ms > 0.0 && cold_mean > 0.0 ? cold_mean / r.mean_ms : 0.0;
      std::printf("%6.1f %6s %10.3f %10.3f %10.3f %8llu %8llu %8llu %8.2fx\n",
                  s, mode, r.mean_ms, r.p50_ms, r.p95_ms,
                  static_cast<unsigned long long>(rs.hits),
                  static_cast<unsigned long long>(rs.misses),
                  static_cast<unsigned long long>(seeded), speedup);
    }
    std::printf("\n");
  }
  return 0;
}
