#!/usr/bin/env sh
# Builds (if needed) and runs the perf-trajectory suite, leaving
# BENCH_RPQD.json in the repo root. Usage:
#
#   bench/run_bench_suite.sh [build-dir]
#
# Knobs: RPQD_BENCH_SF (default 0.25), RPQD_BENCH_REPEATS (default 3),
# RPQD_BENCH_OUT (default <repo>/BENCH_RPQD.json).
set -e

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" --target run_bench_suite -j

RPQD_BENCH_OUT=${RPQD_BENCH_OUT:-"$repo_root/BENCH_RPQD.json"} \
  "$build_dir/bench/run_bench_suite"
