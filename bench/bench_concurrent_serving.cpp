// Closed-loop concurrent-serving benchmark (runtime/scheduler.h).
//
// N client threads each drive submit -> await -> think against one
// Database, sweeping the client count; the baseline serves the same
// request stream serially back-to-back (one query at a time, think
// time serializing with service). Reported per point: aggregate
// throughput (completed queries/s), p50/p95/p99 client latency,
// admission rejects, and the speedup over serial.
//
// Where the speedup comes from: with serial service the cluster sits
// idle whenever the active client is thinking; concurrent serving
// overlaps one client's think (and a query's credit stalls / §3.4
// termination-round waits) with another client's work. The acceptance
// bar is >= 1.3x aggregate throughput at 4 in-flight queries. A
// zero-think sweep is printed too for transparency: on a single-core
// host it hovers near 1.0x (the engine is already work-conserving
// within one query; there is no idle CPU to reclaim), while multi-core
// hosts see genuine CPU parallelism there.
//
// Also prints the fairness ablation: a cheap query's tail latency next
// to a deep neighbour, with per-query credit partitions on vs off.
//
// Environment knobs (on top of bench_util.h's RPQD_BENCH_*):
//   RPQD_BENCH_CLIENTS   max clients in the sweep   (default 8)
//   RPQD_BENCH_OPS       total queries per point    (default 64)
//   RPQD_BENCH_THINK_MS  per-client think time      (default 2.0)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ldbc/synthetic.h"

namespace {

/// The serving mix: medium-depth traversals on a partition-spanning
/// graph — per-query service time well below the default think time, so
/// the sweep exercises admission/dispatch rather than pure saturation.
std::vector<std::string> serving_mix() {
  return {
      "SELECT COUNT(*) FROM MATCH (a) -/:next{1,4}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:next{2,6}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/-> (b)",
  };
}

void print_point(const char* label, const rpqd::bench::ClosedLoopResult& r,
                 double speedup) {
  std::printf("%8s %12.1f %10.3f %10.3f %10.3f %8llu %8.2fx\n", label,
              r.throughput_qps, r.p50_ms, r.p95_ms, r.p99_ms,
              static_cast<unsigned long long>(r.rejected), speedup);
}

}  // namespace

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  const unsigned max_clients =
      static_cast<unsigned>(env_int("RPQD_BENCH_CLIENTS", 8));
  const int total_ops = env_int("RPQD_BENCH_OPS", 64);
  const double think_ms = env_double("RPQD_BENCH_THINK_MS", 2.0);

  EngineConfig cfg;
  cfg.workers_per_machine = 1;
  Database db(synthetic::make_chain(48), 4, cfg);
  const std::vector<std::string> mix = serving_mix();

  print_header("closed-loop concurrent serving (chain:48, 4 machines)");
  std::printf("total_ops=%d think_ms=%.1f\n\n", total_ops, think_ms);
  std::printf("%8s %12s %10s %10s %10s %8s %9s\n", "clients", "qps", "p50 ms",
              "p95 ms", "p99 ms", "rejects", "speedup");

  const ClosedLoopResult serial =
      serial_baseline(db, mix, total_ops, think_ms);
  print_point("serial", serial, 1.0);

  for (unsigned clients = 1; clients <= max_clients; clients *= 2) {
    SchedulerConfig sc;
    sc.max_inflight = clients;
    db.configure_scheduler(sc);
    const ClosedLoopResult r = closed_loop_serving(
        db, mix, clients, std::max(1, total_ops / static_cast<int>(clients)),
        think_ms);
    print_point(std::to_string(clients).c_str(), r,
                serial.throughput_qps > 0.0
                    ? r.throughput_qps / serial.throughput_qps
                    : 0.0);
  }

  // Transparency row: the same sweep point without think time. On one
  // core this sits near 1.0x by construction; gains here only appear
  // with real CPU parallelism.
  {
    const ClosedLoopResult serial0 = serial_baseline(db, mix, total_ops, 0.0);
    SchedulerConfig sc;
    sc.max_inflight = 4;
    db.configure_scheduler(sc);
    const ClosedLoopResult r =
        closed_loop_serving(db, mix, 4, total_ops / 4, 0.0);
    std::printf("\nzero-think reference (4 clients): %.1f qps vs serial %.1f "
                "qps (%.2fx)\n",
                r.throughput_qps, serial0.throughput_qps,
                serial0.throughput_qps > 0.0
                    ? r.throughput_qps / serial0.throughput_qps
                    : 0.0);
  }

  // Fairness ablation: a cheap query's tail latency while a deep
  // neighbour saturates the cluster, with the per-query credit
  // partitions on (strict isolation) vs off (shared allowance).
  print_header("fairness: cheap query p95 next to a deep neighbour");
  const std::string deep = "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)";
  const std::string cheap =
      "SELECT COUNT(*) FROM MATCH (a) -/:next{1,2}/-> (b)";
  for (const bool partition : {true, false}) {
    SchedulerConfig sc;
    sc.max_inflight = 2;
    sc.partition_credits = partition;
    db.configure_scheduler(sc);
    std::vector<double> cheap_ms;
    for (int i = 0; i < std::max(8, total_ops / 4); ++i) {
      QueryTicket deep_ticket = db.submit(deep);
      Stopwatch timer;
      const QueryResult r = db.await(db.submit(cheap));
      if (!r.aborted) cheap_ms.push_back(timer.elapsed_ms());
      db.await(deep_ticket);
    }
    std::printf("  partitions %-3s  cheap p50 %8.3f ms  p95 %8.3f ms\n",
                partition ? "on" : "off", percentile(cheap_ms, 50.0),
                percentile(cheap_ms, 95.0));
  }
  return 0;
}
