// The perf-trajectory suite: runs the fig2 workload (nine LDBC-BI
// queries, 4 machines), the table2 query (Q9, 8 machines), and the
// table3 query (Q10, 8 machines) at a small scale factor and emits
// BENCH_RPQD.json with median latencies — one comparable artifact per
// commit, consumed by tooling that tracks the repo's perf over time.
//
// Environment knobs (on top of bench_util.h's RPQD_BENCH_*):
//   RPQD_BENCH_OUT   output path (default BENCH_RPQD.json in the cwd)
//
// Each benchmark row also carries a per-stage breakdown (contexts,
// contexts/messages/bytes sent, index probes) from one additional
// PROFILE-enabled execution outside the timed region, so the JSON
// artifact explains *where* a latency regression happened, not just
// that it did.
//
// The default scale factor here is deliberately small (0.25) so the
// suite finishes in seconds; override with RPQD_BENCH_SF.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/queries.h"

namespace {

struct SuiteRow {
  std::string id;        // "fig2/Q03*", "table2/Q9", ...
  unsigned machines;
  double median_ms;
  std::uint64_t count;   // result count, as a correctness fingerprint
  std::string stages;    // per-stage breakdown JSON (profiled run)
};

/// Compact per-stage array from a profiled run: enough to see where the
/// work (and any future regression) sits, without the full depth tree.
std::string stage_breakdown_json(const rpqd::QueryProfile& profile) {
  std::string out = "[";
  bool first = true;
  for (std::size_t s = 0; s < profile.stages.size(); ++s) {
    const auto& total = profile.stages[s].total;
    if (!total.any()) continue;
    if (!first) out += ", ";
    first = false;
    char buf[224];
    std::snprintf(
        buf, sizeof buf,
        "{\"id\": %zu, \"contexts\": %llu, \"ctx_sent\": %llu, "
        "\"msgs_sent\": %llu, \"bytes_sent\": %llu, \"index_probes\": %llu}",
        s, static_cast<unsigned long long>(total.contexts),
        static_cast<unsigned long long>(total.ctx_sent),
        static_cast<unsigned long long>(total.msgs_sent),
        static_cast<unsigned long long>(total.bytes_sent),
        static_cast<unsigned long long>(total.index_probes));
    out += buf;
  }
  out += "]";
  return out;
}

void append_json_row(std::string& out, const SuiteRow& row, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    {\"id\": \"%s\", \"machines\": %u, "
                "\"median_ms\": %.3f, \"count\": %llu, \"stages\": ",
                row.id.c_str(), row.machines, row.median_ms,
                static_cast<unsigned long long>(row.count));
  out += buf;
  out += row.stages;
  out += last ? "}\n" : "},\n";
}

}  // namespace

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  // Small default so the suite is cheap; RPQD_BENCH_SF still wins.
  if (std::getenv("RPQD_BENCH_SF") == nullptr) {
    ::setenv("RPQD_BENCH_SF", "0.25", /*overwrite=*/0);
  }
  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("RPQd bench suite (fig2 + table2 + table3)");
  std::printf("sf=%.2f repeats=%d\n", cfg.scale_factor, repeats);

  std::vector<SuiteRow> rows;

  // Fig 2 workload: the nine queries on four machines, round-robin.
  {
    Database db(ldbc::generate_ldbc(cfg), 4);
    const auto workload = workloads::benchmark_queries();
    std::vector<std::string> texts;
    for (const auto& wq : workload) texts.push_back(wq.pgql);
    const auto rr = round_robin(db, texts, repeats);
    for (std::size_t q = 0; q < workload.size(); ++q) {
      // One profiled execution outside the timed region per query.
      const QueryResult profiled = db.query("PROFILE " + texts[q]);
      rows.push_back({"fig2/" + workload[q].id, 4, rr.median_latency_ms[q],
                      rr.last_result[q].count,
                      stage_breakdown_json(profiled.profile)});
      std::printf("  %-12s %10.2f ms  (count=%llu)\n",
                  workload[q].id.c_str(), rr.median_latency_ms[q],
                  static_cast<unsigned long long>(rr.last_result[q].count));
    }
  }

  // Table 2: Q9 on eight machines.
  {
    Database db(ldbc::generate_ldbc(cfg), 8);
    const std::string q9 =
        "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)";
    QueryResult result;
    const double ms = median_ms([&] { result = db.query(q9); }, repeats);
    const QueryResult profiled = db.query("PROFILE " + q9);
    rows.push_back({"table2/Q9", 8, ms, result.count,
                    stage_breakdown_json(profiled.profile)});
    std::printf("  %-12s %10.2f ms  (count=%llu)\n", "table2/Q9", ms,
                static_cast<unsigned long long>(result.count));
  }

  // Table 3: Q10 on eight machines.
  {
    Database db(ldbc::generate_ldbc(cfg), 8);
    const std::string q10 =
        "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- (p2:Person) "
        "WHERE p1.id = 7";
    QueryResult result;
    const double ms = median_ms([&] { result = db.query(q10); }, repeats);
    const QueryResult profiled = db.query("PROFILE " + q10);
    rows.push_back({"table3/Q10", 8, ms, result.count,
                    stage_breakdown_json(profiled.profile)});
    std::printf("  %-12s %10.2f ms  (count=%llu)\n", "table3/Q10", ms,
                static_cast<unsigned long long>(result.count));
  }

  std::string json = "{\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "  \"scale_factor\": %.3f,\n  \"repeats\": %d,\n",
                  cfg.scale_factor, repeats);
    json += buf;
  }
  json += "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(json, rows[i], i + 1 == rows.size());
  }
  json += "  ]\n}\n";

  const char* out_env = std::getenv("RPQD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_RPQD.json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%zu benchmarks)\n", out_path.c_str(), rows.size());
  return 0;
}
