// The perf-trajectory suite: runs the fig2 workload (nine LDBC-BI
// queries, 4 machines), the table2 query (Q9, 8 machines), and the
// table3 query (Q10, 8 machines) at a small scale factor and emits
// BENCH_RPQD.json with median latencies — one comparable artifact per
// commit, consumed by tooling that tracks the repo's perf over time.
//
// Environment knobs (on top of bench_util.h's RPQD_BENCH_*):
//   RPQD_BENCH_OUT   output path (default BENCH_RPQD.json in the cwd)
//
// Each benchmark row also carries a per-stage breakdown (contexts,
// contexts/messages/bytes sent, index probes) from one additional
// PROFILE-enabled execution outside the timed region, so the JSON
// artifact explains *where* a latency regression happened, not just
// that it did.
//
// The default scale factor here is deliberately small (0.25) so the
// suite finishes in seconds; override with RPQD_BENCH_SF.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/rng.h"
#include "graph/repartition.h"
#include "graph/update.h"
#include "ldbc/synthetic.h"
#include "workloads/queries.h"

namespace {

struct SuiteRow {
  std::string id;        // "fig2/Q03*", "table2/Q9", ...
  unsigned machines;
  double median_ms;
  std::uint64_t count;   // result count, as a correctness fingerprint
  std::string stages;    // per-stage breakdown JSON (profiled run)
};

/// Compact per-stage array from a profiled run: enough to see where the
/// work (and any future regression) sits, without the full depth tree.
std::string stage_breakdown_json(const rpqd::QueryProfile& profile) {
  std::string out = "[";
  bool first = true;
  for (std::size_t s = 0; s < profile.stages.size(); ++s) {
    const auto& total = profile.stages[s].total;
    if (!total.any()) continue;
    if (!first) out += ", ";
    first = false;
    char buf[224];
    std::snprintf(
        buf, sizeof buf,
        "{\"id\": %zu, \"contexts\": %llu, \"ctx_sent\": %llu, "
        "\"msgs_sent\": %llu, \"bytes_sent\": %llu, \"index_probes\": %llu}",
        s, static_cast<unsigned long long>(total.contexts),
        static_cast<unsigned long long>(total.ctx_sent),
        static_cast<unsigned long long>(total.msgs_sent),
        static_cast<unsigned long long>(total.bytes_sent),
        static_cast<unsigned long long>(total.index_probes));
    out += buf;
  }
  out += "]";
  return out;
}

void append_json_row(std::string& out, const SuiteRow& row, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    {\"id\": \"%s\", \"machines\": %u, "
                "\"median_ms\": %.3f, \"count\": %llu, \"stages\": ",
                row.id.c_str(), row.machines, row.median_ms,
                static_cast<unsigned long long>(row.count));
  out += buf;
  out += row.stages;
  out += last ? "}\n" : "},\n";
}

// ---- query-lifecycle rows (DESIGN.md §9, bench_abort_latency sibling) ----

/// Median cancel_all() -> query-returned latency for one mid-flight
/// cancel shape; only runs that actually aborted count as samples.
double cancel_to_drained_ms(rpqd::Database& db, const std::string& query,
                            int repeats) {
  using namespace rpqd;
  std::vector<double> samples;
  for (int attempt = 0;
       static_cast<int>(samples.size()) < repeats && attempt < repeats * 10;
       ++attempt) {
    QueryResult result;
    std::atomic<bool> started{false};
    std::thread runner([&] {
      started.store(true, std::memory_order_release);
      result = db.query(query);
    });
    while (!started.load(std::memory_order_acquire)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    Stopwatch timer;
    db.cancel_all();
    runner.join();
    if (result.aborted) samples.push_back(timer.elapsed_ms());
  }
  return rpqd::bench::median(samples);
}

struct AbortRow {
  std::string id;
  unsigned machines;
  double cancel_ms;     // cancel-to-drained median
};

struct RetryRow {
  unsigned machines;
  double median_ms;     // crash-abort + backoff + clean re-run
  double mean_retries;
};

/// One point of the closed-loop serving sweep (bench_concurrent_serving
/// is the standalone sibling with the full table + fairness ablation).
struct ServingRow {
  unsigned clients;     // 0 = the serial back-to-back baseline
  rpqd::bench::ClosedLoopResult r;
  double speedup;       // throughput vs the serial baseline
};

/// One skew point of the cross-query cache A/B (bench_cache_serving is
/// the standalone sibling with the per-mode reach/full breakdown).
struct CacheRow {
  double zipf_s;
  double cold_mean_ms;  // both caches off
  double warm_mean_ms;  // reach + result cache on
  double speedup;
  std::uint64_t result_hits;
  std::uint64_t result_misses;
  std::uint64_t reach_seeded;
};

/// One update-rate point of the online-update serving sweep
/// (bench_update_serving is the standalone sibling with the full rate
/// axis): query latency under edge churn plus the merge pause.
struct UpdateRow {
  unsigned updates_per_16;  // update slots per 16 stream slots
  double mean_ms;
  double p50_ms;
  double p95_ms;
  std::uint64_t result_hits;
  std::uint64_t evicted_by_update;
  std::uint64_t batches;
  double merge_pause_ms;
};

/// One lossy-transport point (§13 reliable delivery): a paper query at
/// a given loss rate, plus the loss-free "armed but idle" overhead row
/// (loss_pct 0, reliable true) whose overhead_vs_plain is the <=1.05x
/// acceptance budget.
struct LossRow {
  std::string id;
  double loss_pct;
  double median_latency_ms;
  std::uint64_t retransmits;
  std::uint64_t acks_sent;
  double overhead_vs_plain;
};

/// One §14 skew-balancing A/B row (bench_skew_balancing is the
/// standalone sibling with the machine-count axis). `improvement` and
/// `overhead` are medians of per-round PAIRED ratios over interleaved
/// off/on runs, so host-load drift cancels out of the claim: the
/// adversarial row carries the >= 1.3x improvement acceptance bar, the
/// uniform row the <= 1.05x armed-overhead budget.
struct SkewRow {
  std::string id;  // "skew/Q9-adversarial", "skew/Q9-uniform"
  unsigned machines;
  double off_median_ms;
  double on_median_ms;
  double improvement;  // paired off/on
  double overhead;     // paired on/off
  double imbalance_off;
  double imbalance_on;
  std::uint64_t mirror_fanouts;
  std::uint64_t mirror_expands;
};

}  // namespace

int main() {
  using namespace rpqd;
  using namespace rpqd::bench;

  // Small default so the suite is cheap; RPQD_BENCH_SF still wins.
  if (std::getenv("RPQD_BENCH_SF") == nullptr) {
    ::setenv("RPQD_BENCH_SF", "0.25", /*overwrite=*/0);
  }
  const auto cfg = bench_ldbc_config();
  const int repeats = bench_repeats();
  print_header("RPQd bench suite (fig2 + table2 + table3)");
  std::printf("sf=%.2f repeats=%d\n", cfg.scale_factor, repeats);

  std::vector<SuiteRow> rows;

  // Fig 2 workload: the nine queries on four machines, round-robin.
  {
    Database db(ldbc::generate_ldbc(cfg), 4);
    const auto workload = workloads::benchmark_queries();
    std::vector<std::string> texts;
    for (const auto& wq : workload) texts.push_back(wq.pgql);
    const auto rr = round_robin(db, texts, repeats);
    for (std::size_t q = 0; q < workload.size(); ++q) {
      // One profiled execution outside the timed region per query.
      const QueryResult profiled = db.query("PROFILE " + texts[q]);
      rows.push_back({"fig2/" + workload[q].id, 4, rr.median_latency_ms[q],
                      rr.last_result[q].count,
                      stage_breakdown_json(profiled.profile)});
      std::printf("  %-12s %10.2f ms  (count=%llu)\n",
                  workload[q].id.c_str(), rr.median_latency_ms[q],
                  static_cast<unsigned long long>(rr.last_result[q].count));
    }
  }

  // Table 2: Q9 on eight machines.
  {
    Database db(ldbc::generate_ldbc(cfg), 8);
    const std::string q9 =
        "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)";
    QueryResult result;
    const double ms = median_ms([&] { result = db.query(q9); }, repeats);
    const QueryResult profiled = db.query("PROFILE " + q9);
    rows.push_back({"table2/Q9", 8, ms, result.count,
                    stage_breakdown_json(profiled.profile)});
    std::printf("  %-12s %10.2f ms  (count=%llu)\n", "table2/Q9", ms,
                static_cast<unsigned long long>(result.count));
  }

  // Table 3: Q10 on eight machines.
  {
    Database db(ldbc::generate_ldbc(cfg), 8);
    const std::string q10 =
        "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- (p2:Person) "
        "WHERE p1.id = 7";
    QueryResult result;
    const double ms = median_ms([&] { result = db.query(q10); }, repeats);
    const QueryResult profiled = db.query("PROFILE " + q10);
    rows.push_back({"table3/Q10", 8, ms, result.count,
                    stage_breakdown_json(profiled.profile)});
    std::printf("  %-12s %10.2f ms  (count=%llu)\n", "table3/Q10", ms,
                static_cast<unsigned long long>(result.count));
  }

  // Query-lifecycle rows: cancel-to-drained abort latency (depth and
  // machine-count axes, see bench_abort_latency) and crash-stop
  // run_with_retry recovery, so BENCH_RPQD.json tracks the abort path's
  // cost per commit alongside the healthy-path latencies.
  std::vector<AbortRow> abort_rows;
  std::vector<RetryRow> retry_rows;
  print_header("abort latency + crash-stop retry");
  for (unsigned depth : {8u, 12u}) {
    Database db(synthetic::make_tree(2, depth), 4);
    const double ms = cancel_to_drained_ms(
        db, "SELECT COUNT(*) FROM MATCH (v0:Root) -/:replyOf*/- (v1)",
        repeats);
    abort_rows.push_back({"abort/tree:2:" + std::to_string(depth), 4, ms});
    std::printf("  %-20s %10.3f ms cancel-to-drained\n",
                abort_rows.back().id.c_str(), ms);
  }
  for (unsigned machines : {2u, 8u}) {
    Database db(synthetic::make_complete(12), machines);
    const double ms = cancel_to_drained_ms(
        db, "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)", repeats);
    abort_rows.push_back(
        {"abort/complete:12", machines, ms});
    std::printf("  %-20s %10.3f ms cancel-to-drained (%u machines)\n",
                abort_rows.back().id.c_str(), ms, machines);
  }
  for (unsigned machines : {2u, 8u}) {
    Database db(synthetic::make_complete(10), machines);
    Database::RetryPolicy policy;
    policy.backoff_base_ms = 0.1;
    policy.backoff_max_ms = 1.0;
    std::vector<double> samples;
    unsigned retries = 0;
    for (int r = 0; r < repeats; ++r) {
      db.set_fault_schedule("crash-stop", 7 + static_cast<std::uint64_t>(r));
      Stopwatch timer;
      const QueryResult result = db.run_with_retry(
          "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)", policy);
      samples.push_back(timer.elapsed_ms());
      retries += result.stats.retries;
    }
    retry_rows.push_back({machines, median(samples),
                          static_cast<double>(retries) / repeats});
    std::printf("  retry/complete:10    %10.3f ms (%u machines, "
                "%.1f retries/run)\n",
                retry_rows.back().median_ms, machines,
                retry_rows.back().mean_retries);
  }

  // Concurrent serving sweep (runtime/scheduler.h): closed-loop clients
  // with think time vs the same stream served serially back-to-back.
  // The 4-client point carries the headline >= 1.3x throughput claim.
  std::vector<ServingRow> serving_rows;
  print_header("concurrent serving (closed loop, chain:48, 4 machines)");
  {
    EngineConfig scfg;
    scfg.workers_per_machine = 1;
    Database db(synthetic::make_chain(48), 4, scfg);
    const std::vector<std::string> mix = {
        "SELECT COUNT(*) FROM MATCH (a) -/:next{1,4}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:next{2,6}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/-> (b)"};
    const int serving_ops = env_int("RPQD_BENCH_OPS", 64);
    const double think_ms = env_double("RPQD_BENCH_THINK_MS", 2.0);
    const ClosedLoopResult serial =
        serial_baseline(db, mix, serving_ops, think_ms);
    serving_rows.push_back({0, serial, 1.0});
    std::printf("  serial      %8.1f qps  p50 %7.3f ms\n",
                serial.throughput_qps, serial.p50_ms);
    for (unsigned clients : {1u, 2u, 4u, 8u}) {
      SchedulerConfig sc;
      sc.max_inflight = clients;
      db.configure_scheduler(sc);
      const ClosedLoopResult r = closed_loop_serving(
          db, mix, clients,
          std::max(1, serving_ops / static_cast<int>(clients)), think_ms);
      const double speedup = serial.throughput_qps > 0.0
                                 ? r.throughput_qps / serial.throughput_qps
                                 : 0.0;
      serving_rows.push_back({clients, r, speedup});
      std::printf("  %2u clients  %8.1f qps  p50 %7.3f ms  p95 %7.3f ms  "
                  "%.2fx\n",
                  clients, r.throughput_qps, r.p50_ms, r.p95_ms, speedup);
    }
  }

  // Cross-query cache A/B (rpq/reach_cache.h, runtime/result_cache.h):
  // one Zipf request stream per skew point, replayed cold (caches off)
  // then warm (reach + result cache on). The s = 1.2 row carries the
  // headline >= 1.5x mean-latency claim.
  std::vector<CacheRow> cache_rows;
  print_header("cross-query cache serving (random:48:160, 3 machines)");
  {
    synthetic::RandomGraphConfig gcfg;
    gcfg.num_vertices = 48;
    gcfg.num_edges = 160;
    gcfg.num_vertex_labels = 2;
    gcfg.num_edge_labels = 2;
    gcfg.allow_self_loops = false;
    gcfg.seed = bench_seed();
    const Graph cache_graph = synthetic::make_random(gcfg);
    const std::vector<std::string> pool = {
        "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e1*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,4}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e1{2,}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) <-/:e0*/- (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,5}/-> (b)"};
    const std::size_t cache_ops =
        static_cast<std::size_t>(env_int("RPQD_BENCH_CACHE_OPS", 64));
    for (const double s : {0.0, 0.8, 1.2}) {
      const std::vector<std::size_t> stream = zipf_stream(
          cache_ops, pool.size(),
          s, bench_seed() * 1000003 + static_cast<std::uint64_t>(s * 10.0));
      EngineConfig cold_cfg;
      cold_cfg.workers_per_machine = 2;
      Database cold_db(cache_graph, 3, cold_cfg);
      const ServeStreamResult cold = serve_stream(cold_db, pool, stream);
      EngineConfig warm_cfg = cold_cfg;
      warm_cfg.reach_cache_max_bytes = 4u << 20;
      warm_cfg.reach_cache_harvest = true;
      warm_cfg.result_cache_max_bytes = 8u << 20;
      Database warm_db(cache_graph, 3, warm_cfg);
      const ServeStreamResult warm = serve_stream(warm_db, pool, stream);
      const ResultCacheStats rs = warm_db.result_cache_stats();
      std::uint64_t seeded = 0;
      for (unsigned m = 0; m < warm_db.num_machines(); ++m) {
        if (const ReachCache* cache = warm_db.reach_cache(m)) {
          seeded += cache->stats().seed_reads;
        }
      }
      const double speedup =
          warm.mean_ms > 0.0 ? cold.mean_ms / warm.mean_ms : 0.0;
      cache_rows.push_back({s, cold.mean_ms, warm.mean_ms, speedup, rs.hits,
                            rs.misses, seeded});
      std::printf("  zipf %.1f  cold %8.3f ms  warm %8.3f ms  %5.2fx  "
                  "(hits %llu, seeded %llu)\n",
                  s, cold.mean_ms, warm.mean_ms, speedup,
                  static_cast<unsigned long long>(rs.hits),
                  static_cast<unsigned long long>(seeded));
    }
  }

  // Online-update serving (DESIGN.md §12): the cache-warm Zipf stream
  // again, now interleaved with seeded edge-churn batches. Tracks what
  // update load does to serving latency (label-scoped invalidation
  // forces re-warms) and what a delta merge pauses for.
  std::vector<UpdateRow> update_rows;
  print_header("online update serving (random:48:160, 3 machines, zipf 1.2)");
  {
    synthetic::RandomGraphConfig gcfg;
    gcfg.num_vertices = 48;
    gcfg.num_edges = 160;
    gcfg.num_vertex_labels = 2;
    gcfg.num_edge_labels = 2;
    gcfg.allow_self_loops = false;
    gcfg.seed = bench_seed();
    const Graph update_graph = synthetic::make_random(gcfg);
    const std::vector<std::string> pool = {
        "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e1*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,4}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) <-/:e0*/- (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:e1+/-> (b)"};
    const std::size_t update_ops =
        static_cast<std::size_t>(env_int("RPQD_BENCH_UPDATE_OPS", 64));
    for (const unsigned rate : {0u, 2u, 8u}) {
      EngineConfig ucfg;
      ucfg.workers_per_machine = 2;
      ucfg.reach_cache_max_bytes = 4u << 20;
      ucfg.reach_cache_harvest = true;
      ucfg.result_cache_max_bytes = 8u << 20;
      Database db(update_graph, 3, ucfg);
      const LabelId e0 = *db.graph().catalog().find_edge_label("e0");
      const LabelId e1 = *db.graph().catalog().find_edge_label("e1");
      const std::vector<std::size_t> stream = zipf_stream(
          update_ops, pool.size(), 1.2, bench_seed() * 1000003 + rate);
      Rng churn(bench_seed() ^ (0xc4u * (rate + 1)));
      std::vector<EdgeInsert> added;
      std::vector<double> latencies;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (i % 16 < rate) {
          UpdateBatch batch;
          if (!added.empty() && churn.next_below(3) == 0) {
            const std::size_t pick = churn.next_below(added.size());
            batch.edge_deletes.push_back(
                {added[pick].src, added[pick].dst, added[pick].elabel});
            added.erase(added.begin() + static_cast<std::ptrdiff_t>(pick));
          } else {
            batch.edge_inserts.push_back(
                {static_cast<VertexId>(churn.next_below(gcfg.num_vertices)),
                 static_cast<VertexId>(churn.next_below(gcfg.num_vertices)),
                 churn.next_below(2) == 0 ? e0 : e1});
            // One delete removes every parallel copy, so record each
            // (src, dst, elabel) key at most once.
            const EdgeInsert& ins = batch.edge_inserts.back();
            const bool dup = std::any_of(
                added.begin(), added.end(), [&](const EdgeInsert& e) {
                  return e.src == ins.src && e.dst == ins.dst &&
                         e.elabel == ins.elabel;
                });
            if (!dup) added.push_back(ins);
          }
          db.apply_update(batch);
          continue;
        }
        Stopwatch timer;
        const QueryResult r = db.query(pool[stream[i]]);
        if (!r.aborted) latencies.push_back(timer.elapsed_ms());
      }
      const std::uint64_t batches = db.update_stats().batches_applied;
      double merge_ms = 0.0;
      if (db.merge_deltas()) merge_ms = db.update_stats().last_merge_ms;
      const ResultCacheStats rs = db.result_cache_stats();
      double mean = 0.0;
      for (const double v : latencies) mean += v;
      if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
      update_rows.push_back({rate, mean, percentile(latencies, 50.0),
                             percentile(latencies, 95.0), rs.hits,
                             rs.evicted_by_update, batches, merge_ms});
      std::printf("  upd %u/16  mean %8.3f ms  p95 %8.3f ms  hits %llu  "
                  "evicted %llu  merge %7.3f ms\n",
                  rate, mean, update_rows.back().p95_ms,
                  static_cast<unsigned long long>(rs.hits),
                  static_cast<unsigned long long>(rs.evicted_by_update),
                  merge_ms);
    }
  }

  // Lossy-transport rows (§13 reliable delivery): the two paper point
  // queries re-run over a fabric that drops a seeded fraction of every
  // message class, so BENCH_RPQD.json tracks both the retransmission
  // path's latency factor and the loss-free overhead of arming the
  // layer at all (acceptance budget <= 1.05x the plain fabric).
  std::vector<LossRow> loss_rows;
  print_header("lossy transport (reliable delivery, 4 machines)");
  {
    struct LossQuery {
      const char* id;
      const char* text;
    };
    const LossQuery loss_queries[] = {
        {"table2/Q9",
         "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)"},
        {"table3/Q10",
         "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- "
         "(p2:Person) WHERE p1.id = 7"},
    };
    for (const auto& lq : loss_queries) {
      double plain_ms = 0.0;
      {
        Database db(ldbc::generate_ldbc(cfg), 4);
        QueryResult r;
        plain_ms = median_ms([&] { r = db.query(lq.text); }, repeats);
      }
      for (const double pct : {0.0, 0.1, 1.0, 5.0}) {
        EngineConfig ec;
        if (pct == 0.0) {
          // Armed but idle: sequence stamps, CRCs, and the unacked
          // ring with nothing ever lost.
          ec.reliable_transport = true;
        } else {
          FaultPlan plan;
          plan.seed = 7;
          plan.loss_rate = pct / 100.0;
          plan.loss_classes = kFaultClassAll;
          ec.fault_plan = plan;
        }
        Database db(ldbc::generate_ldbc(cfg), 4, ec);
        QueryResult r;
        const double ms = median_ms([&] { r = db.query(lq.text); }, repeats);
        loss_rows.push_back({lq.id, pct, ms, r.stats.retransmits,
                             r.stats.acks_sent,
                             plain_ms > 0.0 ? ms / plain_ms : 0.0});
        std::printf(
            "  %-12s loss %4.1f%%  %10.2f ms  retx %6llu  (%.2fx plain)\n",
            lq.id, pct, ms,
            static_cast<unsigned long long>(r.stats.retransmits),
            loss_rows.back().overhead_vs_plain);
      }
    }
  }

  // Skew-aware balancing A/B (DESIGN.md §14): the table2 Q9 reply shape
  // on a deep reply tree, first from an adversarial all-on-machine-0
  // partition (off arm stays there; on arm adopts the profile-driven
  // Repartitioner's map plus hot-vertex mirrors and load-aware flushes),
  // then on the default hash placement where the balancer has nothing to
  // fix and arming it is pure overhead.
  std::vector<SkewRow> skew_rows;
  print_header("skew-aware balancing (tree:8:6, 16 machines)");
  {
    const unsigned machines = 16;
    const Graph skew_graph = synthetic::make_tree(8, 6);
    const std::string q9 =
        "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf*/- (b)";
    EngineConfig skew_base;
    skew_base.buffers_per_machine = 256;
    EngineConfig skew_armed = skew_base;
    skew_armed.hot_mirror_fanout = true;
    skew_armed.load_aware_flush = true;
    // One off sample then one on sample per round; the per-round ratio
    // is the drift-cancelling estimator (the simulation multiplexes all
    // machines onto one host, so absolute wall-clock is noisy).
    const auto skew_ab = [&](Database& off_db, Database& on_db,
                             int rounds) {
      SkewRow row{};
      std::vector<double> off_s, on_s, ratios;
      QueryResult off_r, on_r;
      for (int r = 0; r < rounds; ++r) {
        Stopwatch t_off;
        off_r = off_db.query(q9);
        off_s.push_back(t_off.elapsed_ms());
        Stopwatch t_on;
        on_r = on_db.query(q9);
        on_s.push_back(t_on.elapsed_ms());
        if (on_s.back() > 0.0) ratios.push_back(off_s.back() / on_s.back());
      }
      row.machines = machines;
      row.off_median_ms = median(off_s);
      row.on_median_ms = median(on_s);
      row.improvement = median(ratios);
      row.overhead = row.improvement > 0.0 ? 1.0 / row.improvement : 0.0;
      row.imbalance_off = off_r.stats.load_imbalance;
      row.imbalance_on = on_r.stats.load_imbalance;
      row.mirror_fanouts = on_r.stats.mirror_fanouts;
      row.mirror_expands = on_r.stats.mirror_expands;
      return row;
    };
    {
      const std::vector<MachineId> all0(skew_graph.num_vertices(), 0);
      Database off_db(skew_graph, machines, skew_base);
      off_db.repartition(all0);
      Database on_db(skew_graph, machines, skew_armed);
      on_db.repartition(all0);
      // The §14 control loop, verbatim: profile once on the bad map,
      // feed the measured load to the Repartitioner, adopt its map and
      // its hot set.
      const QueryResult profiled = on_db.query("PROFILE " + q9);
      auto graph = on_db.materialize_snapshot(on_db.graph_epoch());
      auto current =
          std::make_shared<const PartitionMap>(all0, machines);
      Repartitioner rep(graph, machines, current);
      rep.observe(profiled.stats.machine_contexts);
      on_db.repartition(rep.propose().assignment);
      on_db.set_hot_vertices(
          rep.propose_hot_set(/*max_hot=*/64, /*min_degree=*/4));
      SkewRow row = skew_ab(off_db, on_db, repeats);
      row.id = "skew/Q9-adversarial";
      skew_rows.push_back(row);
      std::printf("  %-20s off %8.2f ms  on %8.2f ms  %.2fx better  "
                  "(imbalance %.2f -> %.2f)\n",
                  row.id.c_str(), row.off_median_ms, row.on_median_ms,
                  row.improvement, row.imbalance_off, row.imbalance_on);
    }
    {
      Database off_db(skew_graph, machines, skew_base);
      Database on_db(skew_graph, machines, skew_armed);
      auto graph = on_db.materialize_snapshot(on_db.graph_epoch());
      Repartitioner rep(graph, machines);
      on_db.set_hot_vertices(
          rep.propose_hot_set(/*max_hot=*/64, /*min_degree=*/4));
      // Extra rounds: the overhead budget is a few percent, not a
      // factor, so the ratio median needs more samples.
      SkewRow row = skew_ab(off_db, on_db, std::max(repeats, 9));
      row.id = "skew/Q9-uniform";
      skew_rows.push_back(row);
      std::printf("  %-20s off %8.2f ms  on %8.2f ms  %.3fx overhead "
                  "(budget 1.05x)\n",
                  row.id.c_str(), row.off_median_ms, row.on_median_ms,
                  row.overhead);
    }
  }

  std::string json = "{\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "  \"scale_factor\": %.3f,\n  \"repeats\": %d,\n",
                  cfg.scale_factor, repeats);
    json += buf;
  }
  json += "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(json, rows[i], i + 1 == rows.size());
  }
  json += "  ],\n";
  json += "  \"abort_latency\": [\n";
  for (std::size_t i = 0; i < abort_rows.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "    {\"id\": \"%s\", \"machines\": %u, "
                  "\"cancel_to_drained_ms\": %.3f}%s\n",
                  abort_rows[i].id.c_str(), abort_rows[i].machines,
                  abort_rows[i].cancel_ms,
                  i + 1 == abort_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"crash_retry\": [\n";
  for (std::size_t i = 0; i < retry_rows.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "    {\"machines\": %u, \"median_ms\": %.3f, "
                  "\"mean_retries\": %.2f}%s\n",
                  retry_rows[i].machines, retry_rows[i].median_ms,
                  retry_rows[i].mean_retries,
                  i + 1 == retry_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"concurrent_serving\": [\n";
  for (std::size_t i = 0; i < serving_rows.size(); ++i) {
    const ServingRow& s = serving_rows[i];
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "    {\"clients\": %u, \"throughput_qps\": %.1f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"admission_rejects\": %llu, "
        "\"speedup_vs_serial\": %.2f}%s\n",
        s.clients, s.r.throughput_qps, s.r.p50_ms, s.r.p95_ms, s.r.p99_ms,
        static_cast<unsigned long long>(s.r.rejected), s.speedup,
        i + 1 == serving_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"cross_query_cache\": [\n";
  for (std::size_t i = 0; i < cache_rows.size(); ++i) {
    const CacheRow& c = cache_rows[i];
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "    {\"zipf_s\": %.1f, \"cold_mean_ms\": %.3f, "
        "\"warm_mean_ms\": %.3f, \"speedup\": %.2f, \"result_hits\": %llu, "
        "\"result_misses\": %llu, \"reach_seeded\": %llu}%s\n",
        c.zipf_s, c.cold_mean_ms, c.warm_mean_ms, c.speedup,
        static_cast<unsigned long long>(c.result_hits),
        static_cast<unsigned long long>(c.result_misses),
        static_cast<unsigned long long>(c.reach_seeded),
        i + 1 == cache_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"online_updates\": [\n";
  for (std::size_t i = 0; i < update_rows.size(); ++i) {
    const UpdateRow& u = update_rows[i];
    char buf[288];
    std::snprintf(
        buf, sizeof buf,
        "    {\"updates_per_16\": %u, \"mean_ms\": %.3f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"result_hits\": %llu, "
        "\"evicted_by_update\": %llu, \"batches\": %llu, "
        "\"merge_pause_ms\": %.3f}%s\n",
        u.updates_per_16, u.mean_ms, u.p50_ms, u.p95_ms,
        static_cast<unsigned long long>(u.result_hits),
        static_cast<unsigned long long>(u.evicted_by_update),
        static_cast<unsigned long long>(u.batches), u.merge_pause_ms,
        i + 1 == update_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"lossy_transport\": [\n";
  for (std::size_t i = 0; i < loss_rows.size(); ++i) {
    const LossRow& l = loss_rows[i];
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "    {\"id\": \"%s\", \"loss_pct\": %.1f, \"median_ms\": %.3f, "
        "\"retransmits\": %llu, \"acks_sent\": %llu, "
        "\"overhead_vs_plain\": %.3f}%s\n",
        l.id.c_str(), l.loss_pct, l.median_latency_ms,
        static_cast<unsigned long long>(l.retransmits),
        static_cast<unsigned long long>(l.acks_sent),
        l.overhead_vs_plain, i + 1 == loss_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"skew_balancing\": [\n";
  for (std::size_t i = 0; i < skew_rows.size(); ++i) {
    const SkewRow& s = skew_rows[i];
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "    {\"id\": \"%s\", \"machines\": %u, \"off_median_ms\": %.3f, "
        "\"on_median_ms\": %.3f, \"improvement\": %.3f, "
        "\"overhead\": %.3f, \"imbalance_off\": %.3f, "
        "\"imbalance_on\": %.3f, \"mirror_fanouts\": %llu, "
        "\"mirror_expands\": %llu}%s\n",
        s.id.c_str(), s.machines, s.off_median_ms, s.on_median_ms,
        s.improvement, s.overhead, s.imbalance_off, s.imbalance_on,
        static_cast<unsigned long long>(s.mirror_fanouts),
        static_cast<unsigned long long>(s.mirror_expands),
        i + 1 == skew_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  const char* out_env = std::getenv("RPQD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_RPQD.json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%zu benchmarks)\n", out_path.c_str(), rows.size());
  return 0;
}
