// Query-lifecycle hardening tests: cooperative cancellation, deadlines,
// resource budgets, crash-stop machine failure, and retry.
//
// Contract under test (common/abort.h + the engine/machine/network abort
// protocol): any abort — user cancel, deadline, budget trip, or crash —
// ends the query with a clean QueryResult{aborted, abort_reason}; every
// flow-control credit comes home (outstanding == 0, overflow bookkeeping
// empty, no emergency credit), the reach index holds no duplicate keys,
// and the Database is fully reusable: re-running the same query yields
// the exact oracle count again.
//
// The corpus companion (tests/corpus/abort/abort_shapes.txt) pins the
// named abort shapes — cancel at depth 0, cancel during the §3.4
// consensus, cancel while blocked on overflow credits, crash-stop of the
// start-vertex owner — as replayable lines; AbortLifecycle.CorpusShapes
// replays them. The acceptance-scale sweep (every fault schedule x a
// randomly timed mid-flight cancel, re-run compared against the oracle)
// runs under the `tier2-abort` ctest label, enabled by RPQD_TIER2_ABORT=1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/fault.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"
#include "net/network.h"
#include "query_gen.h"

#ifndef RPQD_CORPUS_DIR
#error "RPQD_CORPUS_DIR must point at tests/corpus"
#endif

namespace rpqd {
namespace {

/// Invariants that must hold after EVERY run, aborted or not: all
/// credits returned and the index uncorrupted. (The stronger oracle /
/// consensus / profile-reconciliation checks only apply to runs that
/// finished normally — an aborted run's counters are a partial prefix.)
void check_abort_invariants(const QueryResult& result,
                            const std::string& what) {
  EXPECT_EQ(result.stats.flow_outstanding, 0u)
      << "credit leak after abort; " << what;
  EXPECT_EQ(result.stats.flow_overflow_outstanding, 0u)
      << "stale overflow bookkeeping after abort; " << what;
  EXPECT_EQ(result.stats.flow_emergency, 0u)
      << "emergency credit taken; " << what;
  for (std::size_t g = 0; g < result.stats.rpq.size(); ++g) {
    EXPECT_EQ(result.stats.rpq[g].index_duplicate_entries, 0u)
        << "duplicate reach-index entries in group " << g << "; " << what;
  }
}

EngineConfig small_config() {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  return ec;
}

std::uint64_t oracle_count(const std::string& query, const Graph& g) {
  return baseline::reference_evaluate(query, g).count;
}

// ---------------------------------------------------------- user cancel --

TEST(AbortLifecycle, UserCancelMidFlightEndsCleanAndDatabaseIsReusable) {
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const std::uint64_t expected = oracle_count(query, synthetic::make_complete(10));
  Database db(synthetic::make_complete(10), 3, small_config());

  QueryResult result;
  std::thread runner([&] { result = db.query(query); });
  // Hammer cancel_all until the run returns: whenever the cancel lands
  // mid-flight the result must be a clean kUserCancel abort; if the run
  // won the race it must be the exact oracle count. Either way no credit
  // may leak.
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    while (!done.load(std::memory_order_acquire)) {
      db.cancel_all();
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });
  runner.join();
  done.store(true, std::memory_order_release);
  canceller.join();

  if (result.aborted) {
    EXPECT_EQ(result.abort_reason, AbortReason::kUserCancel);
  } else {
    EXPECT_EQ(result.count, expected);
  }
  check_abort_invariants(result, "user cancel");

  // The same Database must answer the same query exactly afterwards.
  const QueryResult rerun = db.query(query);
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.count, expected);
  check_abort_invariants(rerun, "rerun after user cancel");
}

TEST(AbortLifecycle, CancelAllWithNoLiveQueryIsANoOp) {
  Database db(synthetic::make_chain(4), 2, small_config());
  EXPECT_EQ(db.cancel_all(), 0u);
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -[:next]-> (v1)");
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, 3u);
}

// ------------------------------------------------------------- deadline --

TEST(AbortLifecycle, DeadlineAbortsWithReasonDeadline) {
  EngineConfig ec = small_config();
  ec.query_deadline_ms = 1;  // a complete:12 star query runs far longer
  Database db(synthetic::make_complete(12), 3, ec);
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kDeadline);
  check_abort_invariants(result, "deadline");

  // Disarming the deadline makes the same Database answer exactly.
  db.config().query_deadline_ms = 0;
  const QueryResult rerun =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.count,
            oracle_count("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)",
                         synthetic::make_complete(12)));
  check_abort_invariants(rerun, "rerun after deadline");
}

// ------------------------------------------------------------- budgets --

TEST(AbortLifecycle, ContextBudgetAbortsWithReasonContextBudget) {
  EngineConfig ec = small_config();
  ec.max_live_contexts = 1;  // any real traversal stacks >1 frame
  Database db(synthetic::make_complete(8), 2, ec);
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kContextBudget);
  check_abort_invariants(result, "context budget");
  EXPECT_GE(result.stats.peak_live_contexts, 2u);

  db.config().max_live_contexts = 0;
  const QueryResult rerun =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  EXPECT_FALSE(rerun.aborted);
  check_abort_invariants(rerun, "rerun after context budget");
}

TEST(AbortLifecycle, ReachIndexBudgetAbortsWithReasonReachIndexBudget) {
  EngineConfig ec = small_config();
  ec.reach_index_max_bytes = 12;  // trips on the second 12-byte entry
  Database db(synthetic::make_complete(8), 2, ec);
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kReachIndexBudget);
  check_abort_invariants(result, "reach-index budget");

  db.config().reach_index_max_bytes = 0;
  const QueryResult rerun =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  EXPECT_FALSE(rerun.aborted);
  check_abort_invariants(rerun, "rerun after reach-index budget");
}

TEST(AbortLifecycle, PeakLiveContextsTrackedWithoutArmedBudget) {
  Database db(synthetic::make_chain(8), 2, small_config());
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)");
  EXPECT_FALSE(result.aborted);
  EXPECT_GE(result.stats.peak_live_contexts, 1u);
}

// -------------------------------------------- depth-cap truncation (S1) --

TEST(AbortLifecycle, DepthCapReportsTruncationInsteadOfSilence) {
  // Index off on a cyclic graph: only the max_exploration_depth valve
  // bounds the walk. It used to truncate silently; now the result says so
  // through the reason channel without aborting.
  EngineConfig ec = small_config();
  ec.use_reachability_index = false;
  ec.max_exploration_depth = 3;
  Database db(synthetic::make_cycle(6), 2, ec);
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)");
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.abort_reason, AbortReason::kDepthTruncated);
  check_abort_invariants(result, "depth truncation");
}

TEST(AbortLifecycle, UnreachedDepthCapDoesNotReportTruncation) {
  // Acyclic chain, cap far above the longest path: nothing was pruned,
  // the count is exact, no truncation flag.
  EngineConfig ec = small_config();
  ec.use_reachability_index = false;
  ec.max_exploration_depth = 32;
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)";
  Database db(synthetic::make_chain(6), 2, ec);
  const QueryResult result = db.query(query);
  EXPECT_FALSE(result.aborted);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.abort_reason, AbortReason::kNone);
  EXPECT_EQ(result.count, oracle_count(query, synthetic::make_chain(6)));
}

// ------------------------------------------- nesting-cap starvation (S2) --

TEST(AbortLifecycle, NestingCapStarvationConvertsToBudgetAbort) {
  // Deterministic permanent credit block: zero shared and zero overflow
  // credits leave no credit source for depths past the dedicated window,
  // and max_pickup_nesting = 0 forbids the blocked worker from diverting
  // to inbound work. Previously this stalled silently until the 5s
  // emergency valve; now it converts into a clean kNestingBudget abort
  // at flow_starvation_abort_ms.
  EngineConfig ec = small_config();
  ec.workers_per_machine = 1;
  ec.rpq_shared_credits_per_stage = 0;
  ec.rpq_overflow_credits_per_depth = 0;
  ec.max_pickup_nesting = 0;
  ec.flow_starvation_abort_ms = 100;
  ec.buffer_bytes = 32;  // flush every context immediately
  // chain vertices alternate owners under the modulo partition, so the
  // walk crosses machines at every hop and must reach depth >= 4.
  Database db(synthetic::make_chain(12), 2, ec);
  const auto start = std::chrono::steady_clock::now();
  const QueryResult result =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kNestingBudget);
  check_abort_invariants(result, "nesting starvation");
  // Well below the 5s emergency valve.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);

  // With sane credits restored the same Database answers exactly.
  db.config().rpq_shared_credits_per_stage = 5;
  db.config().rpq_overflow_credits_per_depth = 1;
  db.config().max_pickup_nesting = 1024;
  const QueryResult rerun =
      db.query("SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)");
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.count,
            oracle_count("SELECT COUNT(*) FROM MATCH (v0) -/:next*/-> (v1)",
                         synthetic::make_chain(12)));
}

TEST(AbortLifecycle, NestingCapZeroWithSaneCreditsStaysCorrect) {
  // max_pickup_nesting = 0 alone (main-loop pickup still consumes the
  // inbox, default credit pools intact) must not abort or mis-count.
  EngineConfig ec = small_config();
  ec.max_pickup_nesting = 0;
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:next+/-> (v1)";
  Database db(synthetic::make_chain(10), 3, ec);
  const QueryResult result = db.query(query);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, oracle_count(query, synthetic::make_chain(10)));
  check_abort_invariants(result, "nesting cap zero");
}

// ----------------------------------------------------------- crash-stop --

/// Runs `fn` under a 30-second watchdog: a crash-stop that wedges the
/// engine (the bug this PR class exists to prevent) must fail the test,
/// not hang the suite.
QueryResult run_with_watchdog(Database& db, const std::string& query) {
  auto fut = std::async(std::launch::async,
                        [&db, query] { return db.query(query); });
  if (fut.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
    std::fprintf(stderr, "FATAL: crash-stop query hung past the watchdog\n");
    std::abort();
  }
  return fut.get();
}

TEST(AbortLifecycle, CrashStopTerminatesWithMachineFailure) {
  Database db(synthetic::make_complete(10), 3, small_config());
  db.set_fault_schedule("crash-stop", 7);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const QueryResult result = run_with_watchdog(db, query);
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure);
  check_abort_invariants(result, "crash-stop");

  // Crash-stop is one-shot (FaultPlan::crash_run): the next run models a
  // replaced machine and must answer exactly, schedule still installed.
  const QueryResult rerun = run_with_watchdog(db, query);
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.count, oracle_count(query, synthetic::make_complete(10)));
  check_abort_invariants(rerun, "rerun after crash-stop");
}

TEST(AbortLifecycle, CrashStopOfStartVertexOwnerAborts) {
  // The hardest victim choice: the machine owning the single start
  // vertex dies on its very first inbox poll, before contributing
  // anything. The survivors must not hang waiting for its termination
  // status.
  constexpr unsigned kMachines = 3;
  constexpr VertexId kStart = 2;
  EngineConfig ec = small_config();
  ec.fault_plan.crash_machine =
      static_cast<int>(Partition::owner(kStart, kMachines));
  ec.fault_plan.crash_tick = 1;
  Database db(synthetic::make_complete(10), kMachines, ec);
  const QueryResult result = run_with_watchdog(
      db, "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1) WHERE ID(v0) = 2");
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure);
  check_abort_invariants(result, "start-owner crash");
}

// ---------------------------------------------------------------- retry --

TEST(AbortLifecycle, RunWithRetryRecoversFromCrashStop) {
  Database db(synthetic::make_complete(9), 3, small_config());
  db.set_fault_schedule("crash-stop", 11);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  Database::RetryPolicy policy;
  policy.backoff_base_ms = 0.1;
  policy.backoff_max_ms = 1.0;
  const QueryResult result = db.run_with_retry(query, policy);
  EXPECT_FALSE(result.aborted) << to_string(result.abort_reason);
  EXPECT_EQ(result.stats.retries, 1u);
  EXPECT_EQ(result.count, oracle_count(query, synthetic::make_complete(9)));
  check_abort_invariants(result, "retry after crash");
}

TEST(AbortLifecycle, RunWithRetryDoesNotRetryNonRetryableAborts) {
  EngineConfig ec = small_config();
  ec.query_deadline_ms = 1;  // deadline aborts are final, not transient
  Database db(synthetic::make_complete(12), 3, ec);
  const QueryResult result = db.run_with_retry(
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kDeadline);
  EXPECT_EQ(result.stats.retries, 0u);
}

TEST(AbortLifecycle, RunWithRetryExhaustsAttemptsOnPersistentBudgetTrip) {
  EngineConfig ec = small_config();
  ec.max_live_contexts = 1;  // trips identically on every attempt
  Database db(synthetic::make_complete(8), 2, ec);
  Database::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 0.1;
  policy.backoff_max_ms = 0.5;
  const QueryResult result = db.run_with_retry(
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)", policy);
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kContextBudget);
  EXPECT_EQ(result.stats.retries, 2u);  // 3 attempts = 2 retries
}

// ----------------------------------------- fabric-level control channel --

TEST(AbortFabric, StaleEpochDataIsDroppedAtDelivery) {
  Network net(2);
  net.set_epoch(5);
  Message msg;
  msg.header.type = MessageType::kData;
  msg.header.src = 1;
  msg.header.epoch = 3;  // a dead query's epoch
  net.inbox(0).push(std::move(msg), net.stats());
  EXPECT_FALSE(net.inbox(0).has_data());
  EXPECT_EQ(net.stats().epoch_dropped.load(), 1u);
}

TEST(AbortFabric, AbortBroadcastSetsEveryInboxAndFirstReasonWins) {
  Network net(3);
  net.broadcast_abort(AbortReason::kDeadline);
  net.broadcast_abort(AbortReason::kUserCancel);  // loses the race
  for (unsigned m = 0; m < 3; ++m) {
    EXPECT_TRUE(net.inbox(m).aborted());
    EXPECT_EQ(net.inbox(m).abort_reason(), AbortReason::kDeadline);
    EXPECT_FALSE(net.inbox(m).crashed());
  }
  EXPECT_EQ(net.stats().abort_messages.load(), 6u);
}

TEST(AbortFabric, AbortControllerFirstRequestFixesTheReason) {
  AbortController ctrl;
  EXPECT_FALSE(ctrl.armed());
  EXPECT_EQ(ctrl.reason(), AbortReason::kNone);
  EXPECT_TRUE(ctrl.request(AbortReason::kContextBudget));
  EXPECT_FALSE(ctrl.request(AbortReason::kUserCancel));
  EXPECT_TRUE(ctrl.armed());
  EXPECT_EQ(ctrl.reason(), AbortReason::kContextBudget);
  EXPECT_FALSE(abort_reason_retryable(AbortReason::kUserCancel));
  EXPECT_FALSE(abort_reason_retryable(AbortReason::kDeadline));
  EXPECT_TRUE(abort_reason_retryable(AbortReason::kMachineFailure));
  EXPECT_TRUE(abort_reason_retryable(AbortReason::kContextBudget));
  EXPECT_TRUE(abort_reason_retryable(AbortReason::kNestingBudget));
}

// --------------------------------------------------------------- corpus --

struct AbortCorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string schedule;
  std::uint64_t fault_seed = 0;
  std::string abort_spec;
  std::string query;
  std::string source;
};

Graph make_corpus_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  std::vector<std::uint64_t> args;
  {
    std::istringstream in(spec);
    std::string field;
    in.ignore(static_cast<std::streamsize>(spec.find(':')) + 1);
    while (std::getline(in, field, ':')) args.push_back(std::stoull(field));
  }
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  if (kind == "random") {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = args.at(0);
    cfg.num_edges = args.at(1);
    cfg.num_vertex_labels = static_cast<unsigned>(args.at(2));
    cfg.num_edge_labels = static_cast<unsigned>(args.at(3));
    cfg.allow_self_loops = args.at(4) != 0;
    cfg.seed = args.at(5);
    return synthetic::make_random(cfg);
  }
  ADD_FAILURE() << "unknown abort-corpus graph spec: " << spec;
  return Graph{};
}

void load_abort_corpus(std::vector<AbortCorpusEntry>& entries) {
  const std::filesystem::path dir =
      std::filesystem::path(RPQD_CORPUS_DIR) / "abort";
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar = line.find('|');
      ASSERT_NE(bar, std::string::npos)
          << "malformed abort-corpus line " << file.path() << ":" << lineno;
      AbortCorpusEntry e;
      std::istringstream head(line.substr(0, bar));
      head >> e.graph_spec >> e.machines >> e.schedule >> e.fault_seed >>
          e.abort_spec;
      ASSERT_FALSE(head.fail())
          << "malformed abort-corpus line " << file.path() << ":" << lineno;
      e.query = line.substr(bar + 1);
      e.query.erase(0, e.query.find_first_not_of(' '));
      e.source =
          file.path().filename().string() + ":" + std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  ASSERT_FALSE(entries.empty()) << "abort corpus empty: " << dir;
}

std::vector<std::uint64_t> abort_spec_args(const std::string& spec) {
  std::vector<std::uint64_t> out;
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return out;
  std::istringstream in(spec.substr(colon + 1));
  std::string field;
  while (std::getline(in, field, ':')) out.push_back(std::stoull(field));
  return out;
}

/// Replays one abort-shape line: runs the query under the shape's abort
/// stimulus, checks the post-abort invariants, then re-runs cleanly on
/// the SAME Database and compares against the oracle.
void replay_abort_entry(const AbortCorpusEntry& e) {
  SCOPED_TRACE(e.source + " shape=" + e.abort_spec + " query=" + e.query);
  const Graph oracle = make_corpus_graph(e.graph_spec);
  const std::uint64_t expected = oracle_count(e.query, oracle);
  const std::string shape = e.abort_spec.substr(0, e.abort_spec.find(':'));
  const auto args = abort_spec_args(e.abort_spec);

  EngineConfig ec = small_config();
  AbortReason expect_reason = AbortReason::kNone;
  if (shape == "deadline") {
    ec.query_deadline_ms = args.at(0);
    expect_reason = AbortReason::kDeadline;
  } else if (shape == "ctx-budget") {
    ec.max_live_contexts = args.at(0);
    expect_reason = AbortReason::kContextBudget;
  } else if (shape == "idx-budget") {
    ec.reach_index_max_bytes = args.at(0);
    expect_reason = AbortReason::kReachIndexBudget;
  } else if (shape == "crash") {
    // crash:<machine>:<tick>; the machine field is a vertex id when the
    // shape is crash-start (victim = the start vertex's owner).
    ec.fault_plan.crash_machine = static_cast<int>(args.at(0));
    ec.fault_plan.crash_tick = args.at(1);
    expect_reason = AbortReason::kMachineFailure;
  } else if (shape == "crash-start") {
    ec.fault_plan.crash_machine = static_cast<int>(
        Partition::owner(static_cast<VertexId>(args.at(0)), e.machines));
    ec.fault_plan.crash_tick = args.at(1);
    expect_reason = AbortReason::kMachineFailure;
  } else if (shape == "cancel") {
    expect_reason = AbortReason::kUserCancel;
  } else if (shape == "cancel-starved") {
    // Cancel a worker parked on overflow credits: no shared pool, one
    // overflow credit per depth, tiny buffers — deep chains block.
    ec.rpq_shared_credits_per_stage = 0;
    ec.buffer_bytes = 32;
    expect_reason = AbortReason::kUserCancel;
  } else {
    FAIL() << "unknown abort shape: " << e.abort_spec;
  }

  Database db(make_corpus_graph(e.graph_spec), e.machines, ec);
  if (e.schedule != "none" || ec.fault_plan.crash_enabled()) {
    if (e.schedule != "none") db.set_fault_schedule(e.schedule, e.fault_seed);
    if (ec.fault_plan.crash_enabled()) {
      db.config().fault_plan.crash_machine = ec.fault_plan.crash_machine;
      db.config().fault_plan.crash_tick = ec.fault_plan.crash_tick;
    }
  }

  QueryResult result;
  if (shape == "cancel" || shape == "cancel-starved") {
    const std::uint64_t delay_us = args.empty() ? 0 : args.at(0);
    std::atomic<bool> done{false};
    std::thread runner([&] {
      result = run_with_watchdog(db, e.query);
      done.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    // Hammer until the run ends: either the cancel lands mid-flight or
    // the run wins the race with an exact count.
    while (!done.load(std::memory_order_acquire)) {
      db.cancel_all();
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    runner.join();
  } else {
    result = run_with_watchdog(db, e.query);
  }

  if (result.aborted) {
    EXPECT_EQ(result.abort_reason, expect_reason);
  } else {
    // The run won the race against the stimulus; it must then be exact.
    EXPECT_EQ(result.count, expected);
  }
  check_abort_invariants(result, "abort corpus run");

  // Clean re-run on the same Database: disarm the stimulus, compare
  // against the oracle (the byte-identical-rerun requirement).
  db.config().query_deadline_ms = 0;
  db.config().max_live_contexts = 0;
  db.config().reach_index_max_bytes = 0;
  db.config().fault_plan.crash_machine = -1;
  const QueryResult rerun = run_with_watchdog(db, e.query);
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.count, expected);
  check_abort_invariants(rerun, "abort corpus rerun");
}

TEST(AbortLifecycle, CorpusShapes) {
  std::vector<AbortCorpusEntry> entries;
  load_abort_corpus(entries);
  if (HasFatalFailure()) return;
  for (const auto& e : entries) replay_abort_entry(e);
}

// ------------------------------------------------------- tier-2 sweep --

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Core of the abort sweep: generated queries x every fault schedule x a
/// randomly-timed mid-flight cancel. Every run must end as a clean
/// kUserCancel abort or an exact count; either way no credit leaks, and
/// an immediate re-run on the same Database matches the oracle exactly.
void run_abort_sweep(int num_queries, const std::vector<std::string>& schedules,
                     std::uint64_t base_seed) {
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 24;
  gcfg.num_edges = 55;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;

  for (int q = 0; q < num_queries; ++q) {
    gcfg.seed = base_seed * 1000 + static_cast<std::uint64_t>(q / 8);
    gcfg.allow_self_loops = (q / 8) % 2 == 1;
    const Graph oracle = synthetic::make_random(gcfg);
    const std::uint64_t qseed =
        base_seed * 100003 + static_cast<std::uint64_t>(q);
    Rng rng(qseed);
    const std::string query = testgen::random_query(rng, qcfg);
    std::uint64_t expected = 0;
    try {
      expected = oracle_count(query, oracle);
    } catch (const UnsupportedError&) {
      continue;
    }
    for (const auto& schedule : schedules) {
      const std::uint64_t fseed = qseed ^ 0x5bf03u;
      const std::string repro = "repro: qseed=" + std::to_string(qseed) +
                                " gseed=" + std::to_string(gcfg.seed) +
                                " schedule=" + schedule +
                                " fseed=" + std::to_string(fseed) +
                                " query=" + query;
      Database db(synthetic::make_random(gcfg), 3, small_config());
      db.set_fault_schedule(schedule, fseed);
      // Seeded mid-flight cancel delay (microseconds).
      const std::uint64_t delay_us =
          fault_hash(qseed, static_cast<std::uint64_t>(q), 13) % 400;
      QueryResult result;
      std::thread runner([&] { result = db.query(query); });
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      db.cancel_all();
      runner.join();
      if (result.aborted) {
        // crash-stop may beat the cancel; both are legitimate ends.
        EXPECT_TRUE(result.abort_reason == AbortReason::kUserCancel ||
                    (schedule == "crash-stop" &&
                     result.abort_reason == AbortReason::kMachineFailure))
            << to_string(result.abort_reason) << "; " << repro;
      } else {
        EXPECT_EQ(result.count, expected) << repro;
      }
      check_abort_invariants(result, repro);
      // Byte-identical re-run: same Database, stimulus gone (crash-stop
      // is one-shot; cancel is not re-issued).
      const QueryResult rerun = db.query(query);
      EXPECT_FALSE(rerun.aborted) << repro;
      EXPECT_EQ(rerun.count, expected) << "rerun mismatch; " << repro;
      check_abort_invariants(rerun, "rerun; " + repro);
    }
  }
}

TEST(AbortSweep, MidFlightCancelSmoke) {
  run_abort_sweep(env_int("RPQD_ABORT_QUERIES", 6), {"none", "chaos"}, 101);
}

// Acceptance-scale sweep, run under the `tier2-abort` ctest label (see
// tests/CMakeLists.txt): every schedule including crash-stop, with
// randomly-timed mid-flight cancels and full re-run comparison.
TEST(AbortSweep, Tier2EverySchedule) {
  if (std::getenv("RPQD_TIER2_ABORT") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_ABORT=1 (or run ctest -L tier2-abort)";
  }
  run_abort_sweep(std::max(48, env_int("RPQD_ABORT_QUERIES", 48)),
                  {"none", "reorder", "dup-storm", "credit-jitter",
                   "slow-machine", "chaos", "crash-stop"},
                  211);
}

}  // namespace
}  // namespace rpqd
