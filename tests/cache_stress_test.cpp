// Concurrent cross-query cache stress (DESIGN.md §11): K in-flight
// identical + distinct queries over one database with both caches armed.
// Coalesced submissions must return results identical to the leader's
// (== the oracle), cached hits must serve without dispatching, and the
// per-query stats isolation invariants of the serving path must hold
// while the reachability cache is concurrently seeded, harvested,
// poisoned, and invalidated.
//
// The gtest-discovered tests are the tier-1 smoke; the acceptance-scale
// stress runs under the `tier2-cache` + `tier2-concurrent` ctest labels
// (RPQD_TIER2_CACHE=1) — TSan green here is the data-race gate for the
// cache layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

struct StressConfig {
  unsigned waves = 3;
  unsigned copies = 4;     // identical submissions per query per wave
  unsigned machines = 3;
  unsigned inflight = 4;
  bool invalidator = false;  // concurrent epoch-bump / poison thread
  std::uint64_t graph_seed = 33;
};

void run_cache_stress(const StressConfig& sc) {
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 24;
  gcfg.num_edges = 60;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.allow_self_loops = true;
  gcfg.seed = sc.graph_seed;
  const Graph oracle_graph = synthetic::make_random(gcfg);

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,3}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a:L0) -/:e0{0,2}/-> (b)",
  };
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(baseline::reference_evaluate(q, oracle_graph).count);
  }

  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  ec.reach_cache_max_bytes = 1 << 20;
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_random(gcfg), sc.machines, ec);
  SchedulerConfig cfg;
  cfg.max_inflight = sc.inflight;
  cfg.max_queued = 1024;
  db.configure_scheduler(cfg);

  std::atomic<bool> stop{false};
  std::thread chaos;
  if (sc.invalidator) {
    // Concurrent epoch bumps + depth poisoning: correctness must be
    // insensitive to both (a bump only empties the cache; a poisoned
    // depth is never read — seeds are inert sentinels).
    chaos = std::thread([&] {
      while (!stop.load()) {
        db.invalidate_caches();
        for (unsigned m = 0; m < db.num_machines(); ++m) {
          if (ReachCache* cache = db.reach_cache(m)) cache->poison_depths(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  for (unsigned wave = 0; wave < sc.waves; ++wave) {
    std::vector<QueryTicket> tickets;
    std::vector<std::size_t> which;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (unsigned c = 0; c < sc.copies; ++c) {
        tickets.push_back(db.submit(queries[q]));
        which.push_back(q);
      }
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const QueryResult result = db.await(tickets[i]);
      const std::string repro = "wave=" + std::to_string(wave) + " slot=" +
                                std::to_string(i) + " query=" +
                                queries[which[i]];
      EXPECT_FALSE(result.aborted) << repro;
      EXPECT_EQ(result.count, expected[which[i]]) << repro;
      // Per-query isolation: executed results drained clean; hits and
      // coalesced results replay the leader's clean stats.
      EXPECT_EQ(result.stats.flow_outstanding, 0u) << repro;
      EXPECT_EQ(result.stats.flow_emergency, 0u) << repro;
      for (const auto& r : result.stats.rpq) {
        EXPECT_EQ(r.index_duplicate_entries, 0u) << repro;
      }
    }
  }
  stop.store(true);
  if (chaos.joinable()) chaos.join();

  const SchedulerStats ss = db.scheduler_stats();
  EXPECT_EQ(ss.submitted,
            static_cast<std::uint64_t>(sc.waves) * sc.copies * queries.size());
  // Every submission was admitted, queued, coalesced, or served cached.
  EXPECT_EQ(ss.admitted + ss.queued + ss.cache_hits + ss.cache_coalesced,
            ss.submitted);
  if (!sc.invalidator) {
    // With a stable cache, the repeat waves are all hits or coalesced.
    EXPECT_GT(ss.cache_hits + ss.cache_coalesced, 0u);
  }
}

TEST(CacheStress, ConcurrentIdenticalAndDistinctQueriesAgree) {
  StressConfig sc;
  run_cache_stress(sc);
}

TEST(CacheStress, ConcurrentInvalidationAndPoisonKeepResultsExact) {
  StressConfig sc;
  sc.waves = 2;
  sc.invalidator = true;
  run_cache_stress(sc);
}

// Blocking-path single-flight: many threads ask the same query via
// Database::query concurrently; exactly correct results for all, and
// followers coalesce behind one leader execution.
TEST(CacheStress, BlockingPathCoalescesConcurrentIdenticalAsks) {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(32), 2, ec);
  const std::uint64_t expected = db.query(
      "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)").count;
  db.invalidate_caches();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> counts(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      counts[static_cast<std::size_t>(t)] = db.query(
          "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)").count;
    });
  }
  for (auto& th : threads) th.join();
  for (const auto c : counts) EXPECT_EQ(c, expected);
  const ResultCacheStats rs = db.result_cache_stats();
  // Two cold windows -> two leader executions (misses); every other ask
  // was a hit or coalesced behind the live flight.
  EXPECT_EQ(rs.misses, 2u);
  EXPECT_EQ(rs.hits + rs.coalesced, static_cast<std::uint64_t>(kThreads) - 1);
}

// Acceptance-scale sweep (ctest labels tier2-cache, tier2-concurrent).
TEST(CacheStress, Tier2CacheStress) {
  if (std::getenv("RPQD_TIER2_CACHE") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_CACHE=1 (or run ctest -L tier2-cache)";
  }
  StressConfig big;
  big.waves = 8;
  big.copies = 6;
  big.inflight = 6;
  run_cache_stress(big);
  StressConfig chaos;
  chaos.waves = 6;
  chaos.copies = 6;
  chaos.inflight = 6;
  chaos.invalidator = true;
  chaos.graph_seed = 77;
  run_cache_stress(chaos);
}

}  // namespace
}  // namespace rpqd
