// Stress and robustness tests: degenerate graphs, deep traversals, tiny
// flow-control budgets, repeated execution, and malformed messages.
#include <gtest/gtest.h>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/generator.h"
#include "ldbc/synthetic.h"
#include "runtime/context.h"

namespace rpqd {
namespace {

TEST(Stress, EmptyGraph) {
  Database db(Graph{}, 4);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a)").count, 0u);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -/:e+/-> (b)").count,
            0u);
}

TEST(Stress, SingleVertexNoEdges) {
  GraphBuilder b;
  b.add_vertex("N");
  Database db(std::move(b).build(), 3);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a)").count, 1u);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -/:e*/-> (b)").count,
            1u);  // 0-hop only
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -/:e+/-> (b)").count,
            0u);
}

TEST(Stress, SelfLoopUnbounded) {
  GraphBuilder b;
  b.add_vertex("N");
  b.add_edge(0, 0, "e");
  Database db(std::move(b).build(), 2);
  const auto r = db.query("SELECT COUNT(*) FROM MATCH (a) -/:e+/-> (b)");
  EXPECT_EQ(r.count, 1u);  // the vertex reaches itself; index cuts the loop
  ASSERT_TRUE(r.stats.rpq[0].consensus_max_depth.has_value());
  EXPECT_EQ(*r.stats.rpq[0].consensus_max_depth, 1u);
}

TEST(Stress, DeepChainUnbounded) {
  // 300-deep recursion: explicit frame stacks, per-depth flow-control
  // classes, and the depth consensus must all cope.
  constexpr std::size_t kN = 300;
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 256;
  Database db(synthetic::make_chain(kN), 4, cfg);
  const auto r = db.query("SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)");
  EXPECT_EQ(r.count, kN * (kN - 1) / 2);
  ASSERT_TRUE(r.stats.rpq[0].consensus_max_depth.has_value());
  EXPECT_EQ(*r.stats.rpq[0].consensus_max_depth, kN - 1);
  EXPECT_EQ(r.stats.flow_emergency, 0u);
}

TEST(Stress, RepeatedQueriesAreStableAndLeakFree) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  Database db(synthetic::make_tree(3, 4), 4, cfg);
  const std::string queries[] = {
      "SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> (r:Root)",
      "SELECT COUNT(*) FROM MATCH (c) -/:replyOf{1,2}/-> (p)",
      "SELECT COUNT(*) FROM MATCH (a) -[:replyOf]-> (b)",
  };
  std::uint64_t first[3] = {0, 0, 0};
  for (int round = 0; round < 15; ++round) {
    for (int q = 0; q < 3; ++q) {
      const auto count = db.query(queries[q]).count;
      if (round == 0) {
        first[q] = count;
      } else {
        ASSERT_EQ(count, first[q]) << "round " << round << " query " << q;
      }
    }
  }
}

struct StressCase {
  std::uint64_t seed;
  unsigned machines;
  unsigned workers;
};

class TinyBudgetStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(TinyBudgetStress, AgreesWithOracleUnderPressure) {
  const StressCase c = GetParam();
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 60;
  gcfg.num_edges = 200;
  gcfg.num_edge_labels = 2;
  gcfg.seed = c.seed;
  const Graph oracle = synthetic::make_random(gcfg);
  EngineConfig cfg;
  cfg.workers_per_machine = c.workers;
  cfg.buffers_per_machine = 4;  // clamps to the 2-per-slot minimum
  cfg.buffer_bytes = 64;        // forces many tiny messages
  cfg.rpq_preallocated_depth = 1;
  cfg.rpq_shared_credits_per_stage = 1;
  Database db(synthetic::make_random(gcfg), c.machines, cfg);
  for (const char* q : {
           "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,3}/-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e1{2,}/-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -[:e0]-> (b) -/:e1{1,2}/-> (c)",
       }) {
    EXPECT_EQ(db.query(q).count, baseline::reference_evaluate(q, oracle).count)
        << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TinyBudgetStress,
    ::testing::Values(StressCase{21, 8, 3}, StressCase{22, 8, 1},
                      StressCase{23, 5, 4}, StressCase{24, 3, 2}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.machines) + "_w" +
             std::to_string(info.param.workers);
    });

TEST(Stress, TruncatedContextDecodeThrows) {
  std::vector<std::byte> payload;
  BinaryWriter writer(payload);
  std::vector<Value> slots(3, int_value(7));
  ContextCodecState enc;
  encode_context(writer, enc, 42, 0xff, slots);
  payload.resize(payload.size() - 5);  // truncate mid-slot
  BinaryReader reader(payload);
  VertexId v;
  std::uint64_t rpid;
  std::vector<Value> out;
  ContextCodecState dec;
  EXPECT_THROW(decode_context(reader, dec, 3, v, rpid, out), EngineError);
}

TEST(Stress, LdbcDepthProfileExplodesThenDecays) {
  // The Table 2 shape must hold on the generator output itself: matches
  // peak at a shallow depth and decay monotonically afterwards.
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.3;
  Database db(ldbc::generate_ldbc(cfg), 4);
  const auto r = db.query(
      "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)");
  const auto& depths = r.stats.rpq[0].matches_per_depth;
  ASSERT_GE(depths.size(), 4u);
  const std::size_t peak =
      static_cast<std::size_t>(std::max_element(depths.begin(), depths.end()) -
                               depths.begin());
  EXPECT_LE(peak, 3u);  // explosion at shallow depth
  for (std::size_t d = peak + 1; d + 1 < depths.size(); ++d) {
    EXPECT_LE(depths[d + 1], depths[d]) << "no decay at depth " << d;
  }
}

TEST(Stress, SixteenMachinesSmoke) {
  EngineConfig cfg;
  cfg.workers_per_machine = 1;
  Database db(synthetic::make_tree(2, 5), 16, cfg);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> "
                     "(r:Root)")
                .count,
            62u);  // 2^6 - 2 non-root vertices
}

}  // namespace
}  // namespace rpqd
