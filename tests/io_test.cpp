// Tests for graph import/export: CSV and binary snapshot round-trips,
// malformed-input handling, and cross-format equivalence.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/reference.h"
#include "io/binary.h"
#include "io/csv.h"
#include "ldbc/generator.h"
#include "ldbc/synthetic.h"

namespace rpqd::io {
namespace {

Graph sample_graph() {
  GraphBuilder b;
  const VertexId alice = b.add_vertex("Person");
  b.set_string_property(alice, "name", "alice");
  b.set_property(alice, b.catalog().property("age", ValueType::kInt),
                 int_value(34));
  const VertexId bob = b.add_vertex("Person");
  b.set_string_property(bob, "name", "bob");
  const VertexId post = b.add_vertex("Post");
  b.set_property(post, b.catalog().property("score", ValueType::kDouble),
                 double_value(4.5));
  const EdgeId knows = b.add_edge(alice, bob, "knows");
  b.set_edge_property(knows, b.catalog().property("since", ValueType::kInt),
                      int_value(2012));
  b.add_edge(bob, post, "wrote");
  b.set_property(post, b.catalog().property("hot", ValueType::kBool),
                 bool_value(true));
  return std::move(b).build();
}

void expect_equivalent(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.catalog().vertex_label_name(a.label(v)),
              b.catalog().vertex_label_name(b.label(v)));
    EXPECT_EQ(a.out().degree(v), b.out().degree(v));
    EXPECT_EQ(a.in().degree(v), b.in().degree(v));
    for (PropId p = 0; p < a.catalog().num_properties(); ++p) {
      const Value va = a.property(v, p);
      const auto pb = b.catalog().find_property(a.catalog().property_name(p));
      ASSERT_TRUE(is_null(va) || pb.has_value());
      if (!pb) continue;
      const Value vb = b.property(v, *pb);
      EXPECT_EQ(a.catalog().render(va), b.catalog().render(vb))
          << "vertex " << v << " prop " << a.catalog().property_name(p);
    }
  }
}

TEST(Csv, RoundTrip) {
  const Graph g = sample_graph();
  std::ostringstream vout, eout;
  save_csv(g, vout, eout);
  std::istringstream vin(vout.str()), ein(eout.str());
  const Graph loaded = load_csv(vin, ein);
  expect_equivalent(g, loaded);
}

TEST(Csv, ParsesHandWrittenInput) {
  std::istringstream vertices(
      "# comment line\n"
      "0|Person|name:string=ada|age:int=36\n"
      "1|Person|name:string=grace\n"
      "2|City|name:string=london\n");
  std::istringstream edges(
      "0|1|knows|since:int=1843\n"
      "0|2|livesIn\n");
  const Graph g = load_csv(vertices, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  const auto age = *g.catalog().find_property("age");
  EXPECT_EQ(as_int(g.property(0, age)), 36);
  EXPECT_TRUE(is_null(g.property(1, age)));
  const auto since = *g.catalog().find_property("since");
  const auto [b0, e0] = g.out().label_range(0, *g.catalog().find_edge_label("knows"));
  ASSERT_EQ(e0 - b0, 1u);
  EXPECT_EQ(as_int(g.out().edge_property(b0, since)), 1843);
}

TEST(Csv, LoadedGraphAnswersQueries) {
  std::istringstream vertices(
      "0|N\n1|N\n2|N\n3|N\n");
  std::istringstream edges(
      "0|1|next\n1|2|next\n2|3|next\n");
  const Graph g = load_csv(vertices, edges);
  EXPECT_EQ(baseline::reference_evaluate(
                "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)", g)
                .count,
            6u);
}

TEST(Csv, MalformedInputsThrowWithLineNumbers) {
  const auto expect_fail = [](const char* vtext, const char* etext,
                              const char* needle) {
    std::istringstream v(vtext), e(etext);
    try {
      load_csv(v, e);
      FAIL() << "expected QueryError for " << needle;
    } catch (const QueryError& err) {
      EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
          << err.what();
    }
  };
  expect_fail("5|Person\n", "", "dense");               // non-dense ids
  expect_fail("0|Person|age=3\n", "", "key:type=value");  // missing type
  expect_fail("0|Person|age:int=x\n", "", "integer");
  expect_fail("0|Person|age:blob=3\n", "", "unknown property type");
  expect_fail("0|Person\n", "0|9|knows\n", "out of range");
  expect_fail("0|Person\n", "0|knows\n", "src|dst|label");
}

TEST(Csv, CustomSeparator) {
  CsvOptions opts;
  opts.separator = ',';
  std::istringstream vertices("0,N\n1,N\n");
  std::istringstream edges("0,1,e\n");
  const Graph g = load_csv(vertices, edges, opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Binary, RoundTrip) {
  const Graph g = sample_graph();
  std::stringstream buf;
  save_binary(g, buf);
  const Graph loaded = load_binary(buf);
  expect_equivalent(g, loaded);
}

TEST(Binary, RoundTripLdbcAndQueriesAgree) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  const Graph g = ldbc::generate_ldbc(cfg);
  std::stringstream buf;
  save_binary(g, buf);
  const Graph loaded = load_binary(buf);
  const char* q =
      "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)";
  EXPECT_EQ(baseline::reference_evaluate(q, g).count,
            baseline::reference_evaluate(q, loaded).count);
}

TEST(Binary, RejectsCorruptedInput) {
  std::stringstream buf;
  save_binary(sample_graph(), buf);
  std::string bytes = buf.str();
  {
    std::istringstream bad(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(load_binary(bad), QueryError);
  }
  {
    std::string magic_broken = bytes;
    magic_broken[0] = 'X';
    std::istringstream bad(magic_broken);
    EXPECT_THROW(load_binary(bad), QueryError);
  }
}

TEST(CrossFormat, CsvAndBinaryAgree) {
  const Graph g = sample_graph();
  std::ostringstream vout, eout;
  save_csv(g, vout, eout);
  std::istringstream vin(vout.str()), ein(eout.str());
  const Graph from_csv = load_csv(vin, ein);
  std::stringstream buf;
  save_binary(g, buf);
  const Graph from_binary = load_binary(buf);
  expect_equivalent(from_csv, from_binary);
}

}  // namespace
}  // namespace rpqd::io
