// Tests for the per-query tracing/profiling layer (runtime/profile.h):
// the PROFILE prefix and config opt-ins, exact reconciliation of the
// profile tree against RuntimeStats, the text/JSON renderings, and the
// disabled-mode zero-allocation contract (reusing the PR 1
// allocation-assert idiom).
#include <gtest/gtest.h>

#include <string>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"
#include "runtime/profile.h"

namespace rpqd {
namespace {

EngineConfig test_config() {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffers_per_machine = 64;
  cfg.buffer_bytes = 512;  // small buffers: force multi-buffer flows
  return cfg;
}

constexpr const char* kPlusQuery =
    "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";

// Sums one ProfileDepthRow field over every stage total of the tree.
std::uint64_t tree_sum(const QueryProfile& p,
                       std::uint64_t ProfileDepthRow::*field) {
  std::uint64_t sum = 0;
  for (const auto& stage : p.stages) sum += stage.total.*field;
  return sum;
}

TEST(Profile, DisabledByDefaultAndAllocationFree) {
  Database db(synthetic::make_chain(12), 3, test_config());
  (void)db.query(kPlusQuery);  // warm up any lazy one-time allocations
  const std::uint64_t before = profile_allocations();
  const QueryResult r = db.query(kPlusQuery);
  EXPECT_FALSE(r.profile.enabled);
  EXPECT_TRUE(r.profile.stages.empty());
  // The tier-1 contract: with profiling off, the collection layer
  // performs zero allocations (one never-taken branch per hook).
  EXPECT_EQ(profile_allocations(), before);
  EXPECT_EQ(r.profile.text(), "PROFILE: disabled\n");
  EXPECT_EQ(r.count, 66u);  // 11+10+...+1
}

TEST(Profile, PrefixEnablesForThatQueryOnly) {
  Database db(synthetic::make_chain(12), 3, test_config());
  const QueryResult plain = db.query(kPlusQuery);
  const QueryResult prof =
      db.query(std::string("PROFILE ") + kPlusQuery);
  EXPECT_FALSE(plain.profile.enabled);
  EXPECT_TRUE(prof.profile.enabled);
  EXPECT_EQ(prof.count, plain.count);  // the prefix changes nothing else
  // Case-insensitive, leading whitespace allowed.
  const QueryResult lower =
      db.query(std::string("  profile ") + kPlusQuery);
  EXPECT_TRUE(lower.profile.enabled);
  EXPECT_EQ(lower.count, plain.count);
  // The next unprefixed query is unaffected.
  EXPECT_FALSE(db.query(kPlusQuery).profile.enabled);
}

TEST(Profile, ConfigFlagEnablesEveryQuery) {
  EngineConfig cfg = test_config();
  cfg.profile = true;
  Database db(synthetic::make_chain(8), 2, cfg);
  const QueryResult r = db.query(kPlusQuery);
  EXPECT_TRUE(r.profile.enabled);
  EXPECT_GT(r.profile.total_contexts(), 0u);
}

TEST(Profile, ReconcilesExactlyWithRuntimeStats) {
  Database db(synthetic::make_chain(16), 4, test_config());
  const QueryResult r =
      db.query(std::string("PROFILE ") + kPlusQuery);
  const QueryProfile& p = r.profile;
  ASSERT_TRUE(p.enabled);
  // Network totals: every context/message/byte the fabric counted is
  // attributed to exactly one (stage, machine, depth) cell — and every
  // sent one was received (nothing is lost or double-counted).
  EXPECT_EQ(p.total_ctx_sent(), r.stats.contexts_sent);
  EXPECT_EQ(p.total_ctx_received(), r.stats.contexts_sent);
  EXPECT_EQ(p.total_msgs_sent(), r.stats.data_messages);
  EXPECT_EQ(p.total_msgs_received(), r.stats.data_messages);
  EXPECT_EQ(p.total_bytes_sent(), r.stats.bytes_sent);
  // Per-stage reconciliation against the EXPLAIN ANALYZE breakdown.
  ASSERT_EQ(p.stages.size(), r.stats.stages.size());
  for (StageId s = 0; s < p.stages.size(); ++s) {
    EXPECT_EQ(p.stage_contexts(s), r.stats.stages[s].visits) << "stage " << s;
    EXPECT_EQ(p.stage_ctx_sent(s), r.stats.stages[s].remote_out)
        << "stage " << s;
  }
  EXPECT_GT(p.total_contexts(), 0u);
  EXPECT_GT(p.total_term_rounds(), 0u);
  // Credit accounting mirrors the flow-control stats the engine reports.
  std::uint64_t fast = 0;
  for (const auto& m : p.machines) fast += m.credit_fast_path;
  EXPECT_EQ(fast, r.stats.flow_fast_path);
}

TEST(Profile, IndexProbeOutcomesMatchRpqStats) {
  // A cycle forces eliminations; the per-cell index accounting must sum
  // to the same totals as the Table 2/3 statistics.
  Database db(synthetic::make_cycle(8), 3, test_config());
  const QueryResult r =
      db.query(std::string("PROFILE ") + kPlusQuery);
  ASSERT_TRUE(r.profile.enabled);
  ASSERT_EQ(r.stats.rpq.size(), 1u);
  // `+` has min_hop = 1: depth-0 entries count as matches but sit below
  // the index window (§4.5) and are never probed.
  ASSERT_FALSE(r.stats.rpq[0].matches_per_depth.empty());
  EXPECT_EQ(tree_sum(r.profile, &ProfileDepthRow::index_probes),
            r.stats.rpq[0].total_matches() -
                r.stats.rpq[0].matches_per_depth[0]);
  EXPECT_EQ(tree_sum(r.profile, &ProfileDepthRow::index_eliminated),
            r.stats.rpq[0].total_eliminated());
  EXPECT_EQ(tree_sum(r.profile, &ProfileDepthRow::index_duplicated),
            r.stats.rpq[0].total_duplicated());
  EXPECT_GT(tree_sum(r.profile, &ProfileDepthRow::index_eliminated), 0u);
}

TEST(Profile, TextAndJsonRenderings) {
  Database db(synthetic::make_chain(10), 3, test_config());
  const QueryResult r =
      db.query(std::string("PROFILE ") + kPlusQuery);
  const std::string text = r.profile.text();
  EXPECT_NE(text.find("PROFILE"), std::string::npos);
  EXPECT_NE(text.find("S0"), std::string::npos);    // stage line
  EXPECT_NE(text.find("credits m0"), std::string::npos);
  const std::string json = r.profile.to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"stages\": ["), std::string::npos);
  EXPECT_NE(json.find("\"credits\": ["), std::string::npos);
  EXPECT_NE(json.find("\"totals\": {"), std::string::npos);
  EXPECT_NE(json.find("\"depths\": ["), std::string::npos);
}

TEST(Profile, GrowthBeyondPreallocatedDepthsStillReconciles) {
  // A tiny preallocation window forces the counted geometric growth path
  // on a deep RPQ; the tree must stay exact.
  EngineConfig cfg = test_config();
  cfg.profile_preallocated_depths = 2;
  Database db(synthetic::make_chain(20), 3, cfg);
  const std::uint64_t before = profile_allocations();
  const QueryResult r =
      db.query(std::string("PROFILE ") + kPlusQuery);
  EXPECT_GT(profile_allocations(), before);  // slots + growth are counted
  EXPECT_EQ(r.count, 190u);  // 19+18+...+1
  EXPECT_EQ(r.profile.total_ctx_sent(), r.stats.contexts_sent);
  EXPECT_EQ(r.profile.total_msgs_sent(), r.stats.data_messages);
}

TEST(Profile, PreparedQueryFollowsEngineConfig) {
  EngineConfig cfg = test_config();
  Database db(synthetic::make_chain(8), 2, cfg);
  PreparedQuery q = db.prepare(kPlusQuery);
  EXPECT_FALSE(q.run().profile.enabled);
  db.config().profile = true;
  EXPECT_TRUE(q.run().profile.enabled);
}

}  // namespace
}  // namespace rpqd
