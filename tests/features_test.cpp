// Tests for the extension features (the paper's stated future work) and
// regression tests for subtle engine bugs found during development.
#include <gtest/gtest.h>

#include "api/reach_graph.h"
#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/generator.h"
#include "ldbc/schema.h"
#include "ldbc/synthetic.h"
#include "net/network.h"
#include "rpq/reach_index.h"

namespace rpqd {
namespace {

// ------------------------- index preallocation (§4.5 future work) ------

TEST(IndexPrealloc, SemanticsIdenticalToLazy) {
  ReachabilityIndex lazy(64, false);
  ReachabilityIndex eager(64, true);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto v = static_cast<LocalVertexId>(i % 64);
    const auto rpid = (i * 7) % 50;
    const auto depth = static_cast<Depth>(i % 5);
    EXPECT_EQ(lazy.check_and_update(v, rpid, depth),
              eager.check_and_update(v, rpid, depth))
        << i;
  }
  EXPECT_EQ(lazy.stats().entries, eager.stats().entries);
  EXPECT_EQ(lazy.stats().eliminated, eager.stats().eliminated);
  EXPECT_EQ(lazy.stats().duplicated, eager.stats().duplicated);
}

TEST(IndexPrealloc, EngineResultsUnchanged) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  Database lazy(synthetic::make_complete(6), 3, cfg);
  cfg.reach_index_preallocate = true;
  Database eager(synthetic::make_complete(6), 3, cfg);
  const std::string q = "SELECT COUNT(*) FROM MATCH (a) -/:edge{1,3}/-> (b)";
  const auto r1 = lazy.query(q);
  const auto r2 = eager.query(q);
  EXPECT_EQ(r1.count, r2.count);
  EXPECT_EQ(r1.stats.rpq[0].index_entries, r2.stats.rpq[0].index_entries);
}

// ------------------------- FIFO pickup ablation (§3.2) -----------------

TEST(MessagePriority, FifoModePopsInArrivalOrder) {
  Network net(1);
  net.inbox(0).set_deep_priority(false);
  for (Depth d : {1u, 5u, 3u}) {
    Message m;
    m.header.type = MessageType::kData;
    m.header.stage = 2;
    m.header.depth = d;
    m.header.count = 1;
    net.send(0, std::move(m));
  }
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->header.depth, 1u);
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->header.depth, 5u);
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->header.depth, 3u);
}

TEST(MessagePriority, PriorityModeBreaksTiesFifo) {
  Network net(1);
  // Same depth/stage: arrival order must be preserved... observable via
  // payload size.
  for (std::size_t bytes : {10u, 20u, 30u}) {
    Message m;
    m.header.type = MessageType::kData;
    m.header.stage = 1;
    m.header.depth = 2;
    m.header.count = 1;
    m.payload.resize(bytes);
    net.send(0, std::move(m));
  }
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->payload.size(), 10u);
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->payload.size(), 20u);
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->payload.size(), 30u);
}

TEST(MessagePriority, EngineResultsUnchangedInFifoMode) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 256;
  Database deep(synthetic::make_tree(3, 4), 4, cfg);
  cfg.deep_message_priority = false;
  Database fifo(synthetic::make_tree(3, 4), 4, cfg);
  const std::string q =
      "SELECT COUNT(*) FROM MATCH (c) -/:replyOf*/-> (r)";
  EXPECT_EQ(deep.query(q).count, fifo.query(q).count);
}

// ------------------------- reachability-graph materialization (§5) -----

TEST(ReachGraph, RebuildRoundTrips) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.03;
  const Graph original = ldbc::generate_ldbc(cfg);
  const Graph copy = std::move(rebuild_graph(original)).build();
  ASSERT_EQ(copy.num_vertices(), original.num_vertices());
  ASSERT_EQ(copy.num_edges(), original.num_edges());
  const auto age = *original.catalog().find_property(ldbc::kAge);
  const auto cage = *copy.catalog().find_property(ldbc::kAge);
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(copy.catalog().vertex_label_name(copy.label(v)),
              original.catalog().vertex_label_name(original.label(v)));
    EXPECT_EQ(copy.out().degree(v), original.out().degree(v));
    EXPECT_EQ(copy.in().degree(v), original.in().degree(v));
    EXPECT_EQ(copy.property(v, cage).bits, original.property(v, age).bits);
  }
}

TEST(ReachGraph, RebuildPreservesEdgeProperties) {
  GraphBuilder b;
  b.add_vertex("N");
  b.add_vertex("N");
  const EdgeId e = b.add_edge(0, 1, "t");
  b.set_edge_property(e, b.catalog().property("w", ValueType::kInt),
                      int_value(9));
  const Graph g = std::move(b).build();
  const Graph copy = std::move(rebuild_graph(g)).build();
  const auto w = *copy.catalog().find_property("w");
  const auto [begin, end] = copy.out().range(0);
  ASSERT_EQ(end - begin, 1u);
  EXPECT_EQ(as_int(copy.out().edge_property(begin, w)), 9);
}

TEST(ReachGraph, MaterializedEdgesReplaceRpq) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  Database db(synthetic::make_chain(10), 3, cfg);
  const auto expected =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/-> (b)").count;
  Graph expanded = materialize_reachability(
      db, "SELECT id(a), id(b) FROM MATCH (a) -/:next{1,3}/-> (b)", "hop13");
  Database db2(std::move(expanded), 3, cfg);
  // The fixed-pattern query over the materialized label matches the RPQ.
  EXPECT_EQ(db2.query("SELECT COUNT(*) FROM MATCH (a) -[:hop13]-> (b)").count,
            expected);
  // And RPQs over the materialized label compose (2 applications of
  // {1,3} = {2,6} over the base label).
  const auto composed =
      db2.query("SELECT COUNT(*) FROM MATCH (a) -/:hop13{2}/-> (b)").count;
  const auto direct =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:next{2,6}/-> (b)").count;
  EXPECT_EQ(composed, direct);
}

TEST(ReachGraph, RejectsBadProjections) {
  EngineConfig cfg;
  Database db(synthetic::make_chain(4), 2, cfg);
  EXPECT_THROW(materialize_reachability(
                   db, "SELECT id(a) FROM MATCH (a) -[:next]-> (b)", "x"),
               QueryError);
  EXPECT_THROW(
      materialize_reachability(
          db, "SELECT a.id, label(b) FROM MATCH (a) -[:next]-> (b)", "x"),
      QueryError);
}


// ------------------------- prepared queries + EXPLAIN ANALYZE ----------

TEST(PreparedQuery, RunsRepeatedlyWithoutRecompilation) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  Database db(synthetic::make_chain(8), 3, cfg);
  auto prepared =
      db.prepare("SELECT COUNT(*) FROM MATCH (a) -/:next{1,2}/-> (b)");
  EXPECT_NE(prepared.explain().find("rpq-control"), std::string::npos);
  const auto first = prepared.run().count;
  EXPECT_EQ(first, 7u + 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(prepared.run().count, first);
  }
}

TEST(StageBreakdown, VisitsAndRemoteCountsPopulated) {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 128;  // force remote traffic
  Database db(synthetic::make_chain(12), 4, cfg);
  const auto r =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)");
  ASSERT_EQ(r.stats.stages.size(), 5u);
  // Stage 0 (start) is entered once per vertex.
  EXPECT_EQ(r.stats.stages[0].visits, 12u);
  // The control stage sees one visit per (source, depth) match.
  std::uint64_t control_visits = 0;
  for (const auto& row : r.stats.stages) {
    if (row.note.find("rpq_control") != std::string::npos) {
      control_visits = row.visits;
    }
  }
  EXPECT_GT(control_visits, 0u);
  // Remote counters balance: everything sent was processed.
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (const auto& row : r.stats.stages) {
    in += row.remote_in;
    out += row.remote_out;
  }
  EXPECT_EQ(in, out);
  EXPECT_GT(out, 0u);  // 4 machines: some hops must have been remote
  // The rendered table mentions every stage note.
  const std::string table = r.stats.stage_table();
  for (const auto& row : r.stats.stages) {
    EXPECT_NE(table.find(row.note), std::string::npos) << table;
  }
}


// ------------------------- aDFS work sharing (§5 extension) ------------

TEST(AdfsWorkSharing, ResultsInvariant) {
  EngineConfig cfg;
  cfg.workers_per_machine = 3;
  Database off(synthetic::make_tree(3, 4), 3, cfg);
  cfg.adfs_work_sharing = true;
  Database on(synthetic::make_tree(3, 4), 3, cfg);
  for (const char* q : {
           "SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> (r:Root)",
           "SELECT COUNT(*) FROM MATCH (c) -/:replyOf{1,2}/-> (p)",
       }) {
    EXPECT_EQ(on.query(q).count, off.query(q).count) << q;
  }
}

TEST(AdfsWorkSharing, SharesWorkWhenPeersAreIdle) {
  // A single-start query bootstraps on one worker only; with sharing on,
  // its subtree must spread to the idle peers.
  EngineConfig cfg;
  cfg.workers_per_machine = 4;
  cfg.adfs_work_sharing = true;
  Database db(synthetic::make_tree(2, 7), 1, cfg);  // deep tree, 1 machine
  const auto r = db.query(
      "SELECT COUNT(*) FROM MATCH (r:Root) <-/:replyOf*/- (c) "
      "WHERE ID(r) = 0");
  EXPECT_EQ(r.count, 255u);  // 2^8 - 1 vertices including the root
  EXPECT_GT(r.stats.adfs_shared_tasks, 0u);
}

TEST(AdfsWorkSharing, DisabledByDefault) {
  EngineConfig cfg;
  cfg.workers_per_machine = 4;
  Database db(synthetic::make_tree(2, 5), 1, cfg);
  const auto r = db.query(
      "SELECT COUNT(*) FROM MATCH (r:Root) <-/:replyOf*/- (c)");
  EXPECT_EQ(r.stats.adfs_shared_tasks, 0u);
}

// ------------------------- regressions ---------------------------------

// Regression: macro-variable slots written by a deeper RPQ iteration must
// be restored on backtrack (per-depth slot shadowing). Minimal graph from
// the original failure: after descending 3->0->1 and backtracking, the
// filter for 3->4 must see x=3's weight again, not x=0's.
TEST(Regression, PathStageSlotShadowing) {
  GraphBuilder b;
  const std::int64_t weights[] = {56, 84, 31, 1, 37};
  for (int i = 0; i < 5; ++i) {
    const VertexId v = b.add_vertex("N");
    b.set_property(v, "weight", int_value(weights[i]));
    b.set_property(v, "id", int_value(i));
  }
  b.add_edge(0, 1, "e");
  b.add_edge(2, 0, "e");
  b.add_edge(2, 0, "e");
  b.add_edge(3, 0, "e");
  b.add_edge(3, 4, "e");
  b.add_edge(4, 0, "e");
  b.add_edge(4, 2, "e");
  const std::string q =
      "PATH up AS (x) -[:e]-> (y) WHERE x.weight <= y.weight "
      "SELECT COUNT(*) FROM MATCH (a) -/:up+/-> (b)";
  const Graph base = std::move(b).build();
  for (unsigned machines : {1u, 2u, 5u}) {
    Database db(std::move(rebuild_graph(base)).build(), machines);
    EXPECT_EQ(db.query(q).count, 8u) << machines << " machines";
  }
}

// Regression: a control frame must record its save-stack window; popping
// it used to truncate ancestors' shadowed slots (the saved_base bug).
TEST(Regression, ControlFramePreservesSaveStack) {
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) {
    const VertexId v = b.add_vertex("N");
    b.set_property(v, "id", int_value(i));
  }
  b.add_edge(0, 1, "e");
  b.add_edge(0, 2, "e");
  b.add_edge(1, 0, "e");
  b.add_edge(1, 2, "e");
  b.add_edge(2, 0, "e");
  const std::string q =
      "SELECT COUNT(*) FROM MATCH (a) -/:e{1,2}/-> (b), (a) -/:e{2,3}/-> "
      "(b)";
  Graph oracle = std::move(rebuild_graph(std::move(b).build())).build();
  const auto expected = baseline::reference_evaluate(q, oracle).count;
  Database db(std::move(rebuild_graph(oracle)).build(), 1);
  EXPECT_EQ(db.query(q).count, expected);
}

}  // namespace
}  // namespace rpqd
