// Tests for the synthetic LDBC-like generator and the small synthetic
// test graphs: determinism, schema coverage, and topological shape
// (reply trees explode-then-decay, Knows graph has communities).
#include <gtest/gtest.h>

#include "ldbc/generator.h"
#include "ldbc/schema.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

TEST(Ldbc, DeterministicForSameSeed) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  ldbc::LdbcStats s1, s2;
  const Graph g1 = ldbc::generate_ldbc(cfg, &s1);
  const Graph g2 = ldbc::generate_ldbc(cfg, &s2);
  EXPECT_EQ(g1.num_vertices(), g2.num_vertices());
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(s1.comments, s2.comments);
  EXPECT_EQ(s1.knows_edges, s2.knows_edges);
  // Spot-check structural equality.
  for (VertexId v = 0; v < g1.num_vertices(); v += 7) {
    EXPECT_EQ(g1.label(v), g2.label(v));
    EXPECT_EQ(g1.out().degree(v), g2.out().degree(v));
  }
}

TEST(Ldbc, DifferentSeedsDiffer) {
  ldbc::LdbcConfig a;
  a.scale_factor = 0.05;
  ldbc::LdbcConfig b = a;
  b.seed = a.seed + 1;
  ldbc::LdbcStats sa, sb;
  ldbc::generate_ldbc(a, &sa);
  ldbc::generate_ldbc(b, &sb);
  EXPECT_NE(sa.total_edges, sb.total_edges);
}

TEST(Ldbc, SchemaPresent) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  const Graph g = ldbc::generate_ldbc(cfg);
  const Catalog& cat = g.catalog();
  for (const char* label : {ldbc::kCountry, ldbc::kCity, ldbc::kPerson,
                            ldbc::kForum, ldbc::kPost, ldbc::kComment,
                            ldbc::kTag}) {
    EXPECT_TRUE(cat.find_vertex_label(label).has_value()) << label;
  }
  for (const char* label :
       {ldbc::kIsPartOf, ldbc::kIsLocatedIn, ldbc::kKnows,
        ldbc::kHasModerator, ldbc::kContainerOf, ldbc::kHasCreator,
        ldbc::kReplyOf, ldbc::kHasTag}) {
    EXPECT_TRUE(cat.find_edge_label(label).has_value()) << label;
  }
  EXPECT_TRUE(cat.find_property(ldbc::kAge).has_value());
  EXPECT_TRUE(cat.find_string("Burma").has_value());
}

TEST(Ldbc, ScaleGrowsWithScaleFactor) {
  ldbc::LdbcConfig small;
  small.scale_factor = 0.05;
  ldbc::LdbcConfig big;
  big.scale_factor = 0.4;
  ldbc::LdbcStats ss, sb;
  ldbc::generate_ldbc(small, &ss);
  ldbc::generate_ldbc(big, &sb);
  EXPECT_GT(sb.persons, ss.persons * 4);
  EXPECT_GT(sb.comments, ss.comments);
}

TEST(Ldbc, ReplyTreesAreTrees) {
  // Every comment has exactly one replyOf out-edge (to post or comment).
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.1;
  const Graph g = ldbc::generate_ldbc(cfg);
  const auto comment = *g.catalog().find_vertex_label(ldbc::kComment);
  const auto reply_of = *g.catalog().find_edge_label(ldbc::kReplyOf);
  std::size_t comments = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.label(v) != comment) continue;
    ++comments;
    const auto [b, e] = g.out().label_range(v, reply_of);
    ASSERT_EQ(e - b, 1u);
  }
  EXPECT_GT(comments, 0u);
}

TEST(Ldbc, PersonPropertiesInRange) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  const Graph g = ldbc::generate_ldbc(cfg);
  const auto person = *g.catalog().find_vertex_label(ldbc::kPerson);
  const auto age = *g.catalog().find_property(ldbc::kAge);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.label(v) != person) continue;
    const auto a = as_int(g.property(v, age));
    EXPECT_GE(a, 18);
    EXPECT_LE(a, 80);
  }
}

TEST(Ldbc, BurmaIsCountryZero) {
  EXPECT_STREQ(ldbc::country_name(0), "Burma");
}

TEST(Synthetic, Chain) {
  const Graph g = synthetic::make_chain(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out().degree(0), 1u);
  EXPECT_EQ(g.out().degree(4), 0u);
}

TEST(Synthetic, Cycle) {
  const Graph g = synthetic::make_cycle(5);
  EXPECT_EQ(g.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out().degree(v), 1u);
    EXPECT_EQ(g.in().degree(v), 1u);
  }
}

TEST(Synthetic, TreeShape) {
  const Graph g = synthetic::make_tree(2, 3);
  EXPECT_EQ(g.num_vertices(), 15u);  // 1+2+4+8
  EXPECT_EQ(g.num_edges(), 14u);
  // Edges point child -> parent; the root has in-degree 2, out-degree 0.
  EXPECT_EQ(g.out().degree(0), 0u);
  EXPECT_EQ(g.in().degree(0), 2u);
}

TEST(Synthetic, Complete) {
  const Graph g = synthetic::make_complete(4);
  EXPECT_EQ(g.num_edges(), 12u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.out().degree(v), 3u);
    EXPECT_EQ(g.in().degree(v), 3u);
  }
}

TEST(Synthetic, RandomDeterministic) {
  synthetic::RandomGraphConfig cfg;
  cfg.seed = 77;
  const Graph a = synthetic::make_random(cfg);
  const Graph b = synthetic::make_random(cfg);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.out().degree(v), b.out().degree(v));
  }
}

TEST(Synthetic, RandomNoSelfLoopsByDefault) {
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 30;
  cfg.num_edges = 300;
  const Graph g = synthetic::make_random(cfg);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.out().has_edge_to(v, v, std::nullopt));
  }
}

}  // namespace
}  // namespace rpqd
