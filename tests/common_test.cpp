// Unit tests for src/common: RNG determinism, zipf sampling,
// serialization round-trips, queues, hashing, logging plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/hash.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "runtime/context.h"

namespace rpqd {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, SkewPrefersSmallIndices) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(3);
  std::size_t first_decile = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng) < 10) ++first_decile;
  }
  // With skew 1.0, the first 10% of ranks draw a large share (~44%).
  EXPECT_GT(first_decile, static_cast<std::size_t>(n) * 30 / 100);
}

TEST(Zipf, UniformWhenSkewZero) {
  ZipfSampler sampler(10, 0.0);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c, 5000, 400);
  }
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(Serialize, PodRoundTrip) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  w.write<std::uint32_t>(0xdeadbeef);
  w.write<std::int64_t>(-42);
  w.write<double>(3.25);
  BinaryReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.read<std::int64_t>(), -42);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTrip) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  const std::uint64_t values[] = {0,    1,          127,        128,
                                  300,  1u << 20,   1ull << 40, ~0ull};
  for (const auto v : values) w.write_varint(v);
  BinaryReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintCompact) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  w.write_varint(5);
  EXPECT_EQ(buf.size(), 1u);
  w.write_varint(300);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(Serialize, StringRoundTrip) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string(1000, 'x'));
  BinaryReader r(buf);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
}

TEST(Serialize, ReadOverflowThrows) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  w.write<std::uint16_t>(7);
  BinaryReader r(buf);
  EXPECT_EQ(r.read<std::uint16_t>(), 7);
  EXPECT_THROW(r.read<std::uint32_t>(), EngineError);
}

TEST(Serialize, TruncatedVarintThrows) {
  std::vector<std::byte> buf{std::byte{0x80}};  // continuation, no end
  BinaryReader r(buf);
  EXPECT_THROW(r.read_varint(), EngineError);
}

TEST(Serialize, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Serialize, SignedVarintRoundTrip) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  const std::int64_t values[] = {0,     1,     -1,        63,     -64,
                                 64,    -65,   1 << 20,   -(1 << 20),
                                 INT64_MAX,    INT64_MIN};
  for (const auto v : values) w.write_varint_signed(v);
  BinaryReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.read_varint_signed(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, SignedVarintCompactNearZero) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  w.write_varint_signed(-3);
  w.write_varint_signed(60);
  EXPECT_EQ(buf.size(), 2u);  // one byte each
}

TEST(ContextCodec, DeltaRoundTripAcrossBatch) {
  // Contexts with ascending, descending, and wildly jumping vertex ids
  // and rpids must round-trip exactly through the per-message delta
  // codec, slots included.
  struct Ctx {
    VertexId vertex;
    std::uint64_t rpid;
    std::vector<Value> slots;
  };
  const std::vector<Ctx> batch = {
      {100, 50, {int_value(-7), bool_value(true)}},
      {103, 51, {int_value(1234567), null_value()}},
      {90, 49, {vertex_value(95), double_value(2.5)}},
      {~0ull - 1, ~0ull, {string_value(3), vertex_value(2)}},
      {0, 0, {int_value(0), vertex_value(~0ull)}},
  };
  std::vector<std::byte> payload;
  BinaryWriter w(payload);
  ContextCodecState enc;
  for (const auto& c : batch) {
    encode_context(w, enc, c.vertex, c.rpid, c.slots);
  }
  BinaryReader r(payload);
  ContextCodecState dec;
  for (const auto& c : batch) {
    VertexId vertex;
    std::uint64_t rpid;
    std::vector<Value> slots;
    decode_context(r, dec, 2, vertex, rpid, slots);
    EXPECT_EQ(vertex, c.vertex);
    EXPECT_EQ(rpid, c.rpid);
    ASSERT_EQ(slots.size(), c.slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i].type, c.slots[i].type);
      EXPECT_EQ(slots[i].bits, c.slots[i].bits);
    }
  }
  EXPECT_TRUE(r.done());
}

TEST(ContextCodec, SequentialRpidsEncodeTight) {
  // The common case — one worker's consecutive rpids, nearby vertices —
  // must cost only a few bytes per context (vs 16 fixed before).
  std::vector<std::byte> payload;
  BinaryWriter w(payload);
  ContextCodecState enc;
  const std::vector<Value> no_slots;
  for (std::uint64_t i = 0; i < 64; ++i) {
    encode_context(w, enc, 1000 + i * 2, (7ull << 56) | (3ull << 48) | i,
                   no_slots);
  }
  // First context pays for the absolute rpid; the rest are 2 bytes
  // (vertex delta 2, rpid delta 1).
  EXPECT_LE(payload.size(), 63 * 2 + 16);
}

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    const auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 2000;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < 2 * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum += *v;
          ++consumed;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long expect =
      (2LL * kPerProducer - 1) * (2LL * kPerProducer) / 2;
  EXPECT_EQ(sum.load(), expect);
}

TEST(MpmcQueue, CloseWakesWaiters) {
  MpmcQueue<int> q;
  std::thread waiter([&q] {
    const auto v = q.pop_or_wait();
    EXPECT_FALSE(v.has_value());
  });
  q.close();
  waiter.join();
}

}  // namespace
}  // namespace rpqd
