// Scheduler stress: many submitter threads racing submit/await/cancel
// against the dispatcher pool, with fault schedules rotating mid-wave.
//
// The gtest-discovered test is the fast tier-1 smoke; the
// acceptance-scale version (more threads, more waves, random cancel
// timing) runs under the `tier2-concurrent` ctest label and must be
// green under TSan (tier2-concurrent-tsan preset) — it is the data-race
// gate for the whole serving path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

const char* const kQueries[] = {
    "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)",
    "SELECT COUNT(*) FROM MATCH (a) -/:next{2,5}/-> (b)",
    "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)",
    "PROFILE SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/-> (b)",
};
constexpr std::size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

struct StressShape {
  unsigned submitter_threads = 2;
  unsigned submissions_per_thread = 6;
  unsigned waves = 1;
  bool rotate_schedules = false;
  std::uint64_t seed = 7;
};

/// Drives `shape` and checks the books: every redeemed ticket carries a
/// quiescent flow ledger, expected counts match the solo oracle for
/// clean runs, and the scheduler stats balance exactly.
void run_stress(const StressShape& shape) {
  EngineConfig cfg;
  cfg.workers_per_machine = 1;
  cfg.buffers_per_machine = 48;
  cfg.buffer_bytes = 256;
  Database db(synthetic::make_chain(16), 3, cfg);

  // Solo oracle counts, computed on the blocking path up front.
  std::uint64_t oracle[kNumQueries];
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    const QueryResult r = db.query(kQueries[i]);
    ASSERT_FALSE(r.aborted);
    oracle[i] = r.count;
  }

  SchedulerConfig sc;
  sc.max_inflight = 3;
  sc.max_queued = 256;  // big enough that this shape never rejects
  db.configure_scheduler(sc);

  // Non-crashing schedules only: crash-stop has its own concurrent
  // differential test (exactly-one-victim semantics).
  const char* const schedules[] = {"none", "reorder", "dup-storm",
                                   "credit-jitter"};
  std::atomic<std::uint64_t> clean{0}, cancelled{0};
  for (unsigned wave = 0; wave < shape.waves; ++wave) {
    if (shape.rotate_schedules) {
      db.set_fault_schedule(schedules[wave % 4], shape.seed + wave);
    }
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < shape.submitter_threads; ++t) {
      submitters.emplace_back([&, t, wave] {
        std::mt19937_64 rng(shape.seed * 7919 + wave * 131 + t);
        for (unsigned i = 0; i < shape.submissions_per_thread; ++i) {
          const std::size_t q = rng() % kNumQueries;
          QueryTicket ticket = db.submit(kQueries[q]);
          ASSERT_TRUE(ticket.valid());
          ASSERT_NE(ticket.admission(), AdmissionOutcome::kRejected)
              << to_string(ticket.reject_reason());
          // A third of submissions get a racing cancel at a random point
          // of their lifetime (possibly before dispatch, possibly after
          // completion — all three races must be benign).
          if (rng() % 3 == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng() % 500));
            db.cancel(ticket);
          }
          const QueryResult r = db.await(ticket);
          EXPECT_EQ(r.stats.flow_outstanding, 0u);
          EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
          EXPECT_EQ(r.stats.flow_emergency, 0u);
          if (r.aborted) {
            EXPECT_EQ(r.abort_reason, AbortReason::kUserCancel);
            cancelled.fetch_add(1, std::memory_order_relaxed);
          } else {
            EXPECT_EQ(r.count, oracle[q]) << kQueries[q];
            clean.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : submitters) t.join();
  }

  const std::uint64_t total = static_cast<std::uint64_t>(
      shape.submitter_threads * shape.submissions_per_thread * shape.waves);
  EXPECT_EQ(clean.load() + cancelled.load(), total);
  const SchedulerStats stats = db.scheduler_stats();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.rejected(), 0u);
  EXPECT_EQ(stats.completed + stats.cancelled_while_queued, total);
  EXPECT_EQ(stats.admitted + stats.queued, total);
  EXPECT_LE(stats.peak_inflight, 3u);

  // The database stays serviceable after the storm.
  db.set_fault_schedule("none", 1);
  const QueryResult after = db.query(kQueries[0]);
  EXPECT_FALSE(after.aborted);
  EXPECT_EQ(after.count, oracle[0]);
}

TEST(SchedulerStress, SmokeConcurrentSubmitCancel) {
  run_stress(StressShape{});
}

TEST(SchedulerStress, SmokeWithFaultSchedules) {
  StressShape shape;
  shape.waves = 2;
  shape.rotate_schedules = true;
  shape.seed = 21;
  run_stress(shape);
}

// Acceptance-scale stress (tier2-concurrent label; TSan gate). Skipped
// unless RPQD_TIER2_CONCURRENT=1 — ctest sets it via the tier2 preset.
TEST(SchedulerStress, Tier2ConcurrentStress) {
  if (std::getenv("RPQD_TIER2_CONCURRENT") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_CONCURRENT=1 (or ctest -L "
                    "tier2-concurrent) for the acceptance-scale stress";
  }
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    StressShape shape;
    shape.submitter_threads = 4;
    shape.submissions_per_thread = 10;
    shape.waves = 4;
    shape.rotate_schedules = true;
    shape.seed = seed;
    run_stress(shape);
  }
}

}  // namespace
}  // namespace rpqd
