// Tests for the incremental termination protocol (§3.4): stability-based
// global termination, per-stage prefixes, per-depth RPQ termination, and
// the max-observed-depth consensus for unbounded RPQs.
#include <gtest/gtest.h>

#include "runtime/termination.h"

namespace rpqd {
namespace {

// Delivers every queued termination message on `net` into the detectors.
void pump(Network& net, std::vector<TerminationDetector*> detectors) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (unsigned m = 0; m < detectors.size(); ++m) {
      while (auto msg = net.inbox(static_cast<MachineId>(m)).try_pop_term()) {
        detectors[m]->on_status(*msg);
        progress = true;
      }
    }
  }
}

TEST(Termination, SingleMachineTerminatesAfterTwoStableBroadcasts) {
  Network net(1);
  TerminationDetector d(0, 1, 2, 0);
  d.set_idle(true);
  EXPECT_FALSE(d.globally_terminated());
  d.maybe_broadcast(net, true);
  EXPECT_FALSE(d.globally_terminated());  // only one wave
  d.maybe_broadcast(net, true);
  EXPECT_TRUE(d.globally_terminated());
}

TEST(Termination, NotTerminatedWhileBusy) {
  Network net(1);
  TerminationDetector d(0, 1, 1, 0);
  d.set_idle(false);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_FALSE(d.globally_terminated());
}

TEST(Termination, InFlightMessageBlocksTermination) {
  Network net(2);
  TerminationDetector d0(0, 2, 1, 0);
  TerminationDetector d1(1, 2, 1, 0);
  d0.note_sent(0, -1, 0, 3);  // 3 contexts sent, never processed
  d0.set_idle(true);
  d1.set_idle(true);
  for (int i = 0; i < 3; ++i) {
    d0.maybe_broadcast(net, true);
    d1.maybe_broadcast(net, true);
    pump(net, {&d0, &d1});
  }
  EXPECT_FALSE(d0.globally_terminated());
  EXPECT_FALSE(d1.globally_terminated());
  // The receiver processes them: now both must converge.
  d1.note_processed(0, -1, 0, 3);
  for (int i = 0; i < 3; ++i) {
    d0.maybe_broadcast(net, true);
    d1.maybe_broadcast(net, true);
    pump(net, {&d0, &d1});
  }
  EXPECT_TRUE(d0.globally_terminated());
  EXPECT_TRUE(d1.globally_terminated());
}

TEST(Termination, ActiveFramesBlockTermination) {
  Network net(1);
  TerminationDetector d(0, 1, 2, 0);
  d.frame_pushed(1, -1, 0);
  d.set_idle(true);  // (idle flag lies; frames are authoritative too)
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_FALSE(d.globally_terminated());
  d.frame_popped(1, -1, 0);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_TRUE(d.globally_terminated());
}

TEST(Termination, CounterChangeResetsStability) {
  Network net(1);
  TerminationDetector d(0, 1, 1, 0);
  d.set_idle(true);
  d.maybe_broadcast(net, true);
  // Activity between waves: counters change, stability must restart.
  d.note_sent(0, -1, 0, 1);
  d.note_processed(0, -1, 0, 1);
  d.maybe_broadcast(net, true);
  EXPECT_FALSE(d.globally_terminated());
  d.maybe_broadcast(net, true);
  EXPECT_TRUE(d.globally_terminated());
}

TEST(Termination, StagePrefixAdvancesIncrementally) {
  Network net(1);
  TerminationDetector d(0, 1, 3, 0);
  // Stage 2 still has an active frame; stages 0-1 are quiet.
  d.frame_pushed(2, -1, 0);
  d.set_idle(false);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_EQ(d.terminated_stage_prefix(), 2u);
  EXPECT_FALSE(d.globally_terminated());
  d.frame_popped(2, -1, 0);
  d.set_idle(true);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_EQ(d.terminated_stage_prefix(), 3u);
}

TEST(Termination, DepthTerminationRequiresAllShallowerDepths) {
  Network net(1);
  TerminationDetector d(0, 1, 3, 1);
  // Depth 2 quiet, depth 1 has an unprocessed send.
  d.note_sent(1, 0, 1, 2);
  d.note_sent(1, 0, 2, 1);
  d.note_processed(1, 0, 2, 1);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_TRUE(d.depth_terminated(0, 0));
  EXPECT_FALSE(d.depth_terminated(0, 1));
  EXPECT_FALSE(d.depth_terminated(0, 2));  // blocked by depth 1
  d.note_processed(1, 0, 1, 2);
  d.maybe_broadcast(net, true);
  d.maybe_broadcast(net, true);
  EXPECT_TRUE(d.depth_terminated(0, 2));
}

TEST(Termination, ConsensusMaxDepthAcrossMachines) {
  Network net(2);
  TerminationDetector d0(0, 2, 2, 1);
  TerminationDetector d1(1, 2, 2, 1);
  // Machine 0 saw depth 3, machine 1 saw depth 5 (all work processed).
  d0.note_sent(1, 0, 3, 1);
  d0.note_processed(1, 0, 3, 1);
  d1.note_sent(1, 0, 5, 1);
  d1.note_processed(1, 0, 5, 1);
  d0.set_idle(true);
  d1.set_idle(true);
  EXPECT_FALSE(d0.consensus_max_depth(0).has_value());
  for (int i = 0; i < 3; ++i) {
    d0.maybe_broadcast(net, true);
    d1.maybe_broadcast(net, true);
    pump(net, {&d0, &d1});
  }
  ASSERT_TRUE(d0.consensus_max_depth(0).has_value());
  EXPECT_EQ(*d0.consensus_max_depth(0), 5u);
  ASSERT_TRUE(d1.consensus_max_depth(0).has_value());
  EXPECT_EQ(*d1.consensus_max_depth(0), 5u);
  EXPECT_EQ(d0.local_max_depth(0), 3u);
  EXPECT_EQ(d1.local_max_depth(0), 5u);
}

TEST(Termination, StaleStatusesIgnored) {
  Network net(2);
  TerminationDetector d0(0, 2, 1, 0);
  TerminationDetector d1(1, 2, 1, 0);
  d0.set_idle(true);
  d1.set_idle(true);
  d0.maybe_broadcast(net, true);
  d1.maybe_broadcast(net, true);
  pump(net, {&d0, &d1});
  // Replay d1's first status at d0 (duplicate / reordered delivery): it
  // must not corrupt the prev/last pair.
  d0.maybe_broadcast(net, true);
  d1.maybe_broadcast(net, true);
  pump(net, {&d0, &d1});
  EXPECT_TRUE(d0.globally_terminated());
}

// A status broadcast duplicated in flight (dup-storm schedule) carries
// the same sequence number twice; the duplicate must NOT masquerade as
// the confirming second wave, or a machine would declare termination
// after a single genuine report.
TEST(Termination, DuplicatedStatusIsNotASecondWave) {
  Network net(2);
  FaultPlan plan;
  plan.dup_term_prob = 1.0;  // every status delivered twice
  net.set_fault_plan(plan);
  TerminationDetector d0(0, 2, 1, 0);
  TerminationDetector d1(1, 2, 1, 0);
  d0.set_idle(true);
  d1.set_idle(true);
  d0.maybe_broadcast(net, true);
  d1.maybe_broadcast(net, true);
  pump(net, {&d0, &d1});
  EXPECT_FALSE(d0.globally_terminated());
  EXPECT_FALSE(d1.globally_terminated());
  // Genuine second wave (also duplicated): now both converge.
  d0.maybe_broadcast(net, true);
  d1.maybe_broadcast(net, true);
  pump(net, {&d0, &d1});
  EXPECT_TRUE(d0.globally_terminated());
  EXPECT_TRUE(d1.globally_terminated());
}

// Delayed delivery reorders statuses: when waves A,B,C arrive as C,B,A,
// redelivering the newest (a duplicate) must not fabricate stability, and
// anything older than the two stored waves must be dropped. A reordered
// wave that lands *between* the stored pair is a genuine confirmation:
// sent/processed counters are monotone, so an identical (B, C) pair proves
// every intermediate wave was identical too (DESIGN.md §13).
TEST(Termination, ReorderedAndReplayedStatusesAreSafe) {
  Network net(2);
  TerminationDetector d0(0, 2, 1, 0);
  TerminationDetector d1(1, 2, 1, 0);
  d0.set_idle(true);
  d1.set_idle(true);
  // d1's history: wave A with an unprocessed send, then processed, then
  // waves B and C (stable counters).
  d1.note_sent(0, -1, 0, 1);
  d1.maybe_broadcast(net, true);  // A: sent=1 processed=0
  d1.note_processed(0, -1, 0, 1);
  d1.maybe_broadcast(net, true);  // B: sent=1 processed=1
  d1.maybe_broadcast(net, true);  // C: identical to B
  std::vector<Message> captured;
  while (auto msg = net.inbox(0).try_pop_term()) {
    captured.push_back(*msg);
  }
  ASSERT_EQ(captured.size(), 3u);
  d0.maybe_broadcast(net, true);
  d0.maybe_broadcast(net, true);  // d0's own two stable waves
  // Only the newest wave C has arrived: one status of d1 != stable.
  d0.on_status(captured[2]);
  EXPECT_FALSE(d0.globally_terminated());
  // Replaying C must not pair with itself as two identical waves.
  d0.on_status(captured[2]);
  EXPECT_FALSE(d0.globally_terminated());
  // The reordered older wave B arrives late and fills the confirmation
  // slot: (B, C) is a genuine identical pair, so the protocol completes.
  d0.on_status(captured[1]);
  EXPECT_TRUE(d0.globally_terminated());
  // Wave A (older than both stored waves, pre-stability counters) replayed
  // afterwards is stale and must not perturb the decision.
  d0.on_status(captured[0]);
  EXPECT_TRUE(d0.globally_terminated());
}

TEST(Termination, BroadcastSkippedWhenUnchangedAndNotForced) {
  Network net(2);
  TerminationDetector d0(0, 2, 1, 0);
  d0.set_idle(true);
  d0.maybe_broadcast(net, false);  // first: always sends (state change)
  d0.maybe_broadcast(net, false);  // unchanged, not forced: skipped
  EXPECT_EQ(net.stats().term_messages.load(), 1u);
  d0.maybe_broadcast(net, true);  // forced: second wave
  EXPECT_EQ(net.stats().term_messages.load(), 2u);
}

}  // namespace
}  // namespace rpqd
