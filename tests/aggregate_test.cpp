// Tests for GROUP BY aggregation: COUNT/SUM/MIN/MAX/AVG, implicit and
// explicit grouping, distributed merge correctness, and interaction with
// RPQ segments.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

EngineConfig cfg() {
  EngineConfig c;
  c.workers_per_machine = 2;
  c.buffer_bytes = 256;
  return c;
}

// People in two cities with ages; edges person -> city.
Graph people_graph() {
  GraphBuilder b;
  const VertexId rome = b.add_vertex("City");
  b.set_string_property(rome, "name", "rome");
  const VertexId oslo = b.add_vertex("City");
  b.set_string_property(oslo, "name", "oslo");
  struct P {
    const char* name;
    std::int64_t age;
    VertexId city;
  };
  const P people[] = {{"a", 30, rome}, {"b", 40, rome}, {"c", 20, oslo},
                      {"d", 60, oslo}, {"e", 50, oslo}};
  for (const P& p : people) {
    const VertexId v = b.add_vertex("Person");
    b.set_string_property(v, "name", p.name);
    b.set_property(v, "age", int_value(p.age));
    b.add_edge(v, p.city, "livesIn");
  }
  return std::move(b).build();
}

std::map<std::string, std::vector<std::string>> by_key(
    const QueryResult& r) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& row : r.rows) out[row[0]] = row;
  return out;
}

TEST(Aggregate, CountPerGroup) {
  Database db(people_graph(), 3, cfg());
  const auto r = db.query(
      "SELECT c.name, COUNT(*) FROM MATCH (p:Person) -[:livesIn]-> "
      "(c:City)");
  ASSERT_EQ(r.rows.size(), 2u);
  const auto rows = by_key(r);
  EXPECT_EQ(rows.at("\"rome\"")[1], "2");
  EXPECT_EQ(rows.at("\"oslo\"")[1], "3");
  EXPECT_EQ(r.count, 2u);
}

TEST(Aggregate, SumMinMaxAvg) {
  Database db(people_graph(), 3, cfg());
  const auto r = db.query(
      "SELECT c.name, SUM(p.age), MIN(p.age), MAX(p.age), AVG(p.age) "
      "FROM MATCH (p:Person) -[:livesIn]-> (c:City)");
  const auto rows = by_key(r);
  const auto& rome = rows.at("\"rome\"");
  EXPECT_EQ(rome[1], "70");
  EXPECT_EQ(rome[2], "30");
  EXPECT_EQ(rome[3], "40");
  EXPECT_EQ(rome[4], "35");
  const auto& oslo = rows.at("\"oslo\"");
  EXPECT_EQ(oslo[1], "130");
  EXPECT_EQ(oslo[2], "20");
  EXPECT_EQ(oslo[3], "60");
}

TEST(Aggregate, ExplicitGroupByAcceptedAndValidated) {
  Database db(people_graph(), 2, cfg());
  const auto r = db.query(
      "SELECT c.name, COUNT(*) FROM MATCH (p:Person) -[:livesIn]-> "
      "(c:City) GROUP BY c.name");
  EXPECT_EQ(r.rows.size(), 2u);
  // GROUP BY key absent from the SELECT list is rejected.
  EXPECT_THROW(db.query("SELECT COUNT(*) FROM MATCH (p:Person) "
                        "-[:livesIn]-> (c:City) GROUP BY c.name"),
               Error);
  // GROUP BY without aggregates is rejected.
  EXPECT_THROW(db.query("SELECT c.name FROM MATCH (c:City) GROUP BY c.name"),
               QueryError);
}

TEST(Aggregate, GlobalAggregateWithoutKeys) {
  Database db(people_graph(), 3, cfg());
  const auto r = db.query(
      "SELECT MAX(p.age), COUNT(*) FROM MATCH (p:Person)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "60");
  EXPECT_EQ(r.rows[0][1], "5");
}

TEST(Aggregate, OverRpqMatches) {
  // Reply-tree depth histogram by root: count replies per post.
  Database db(synthetic::make_tree(2, 3), 3, cfg());
  const auto r = db.query(
      "SELECT id(r), COUNT(*) FROM MATCH (r:Root) <-/:replyOf+/- (c)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "0");
  EXPECT_EQ(r.rows[0][1], "14");
}

TEST(Aggregate, MachineCountInvariant) {
  const std::string q =
      "SELECT c.name, COUNT(*), SUM(p.age) FROM MATCH (p:Person) "
      "-[:livesIn]-> (c:City)";
  std::map<std::string, std::vector<std::string>> expected;
  for (unsigned machines : {1u, 2u, 4u, 7u}) {
    Database db(people_graph(), machines, cfg());
    const auto rows = by_key(db.query(q));
    if (machines == 1) {
      expected = rows;
    } else {
      EXPECT_EQ(rows, expected) << machines << " machines";
    }
  }
}

TEST(Aggregate, CountStarFastPathUnchanged) {
  Database db(people_graph(), 2, cfg());
  const auto r = db.query("SELECT COUNT(*) FROM MATCH (p:Person)");
  EXPECT_EQ(r.count, 5u);
  EXPECT_TRUE(r.rows.empty());  // the fast path reports via `count`
}

TEST(Aggregate, MinMaxOverStrings) {
  Database db(people_graph(), 2, cfg());
  const auto r = db.query(
      "SELECT MIN(p.name), MAX(p.name) FROM MATCH (p:Person)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "\"a\"");
  EXPECT_EQ(r.rows[0][1], "\"e\"");
}

TEST(Aggregate, SumIgnoresNulls) {
  GraphBuilder b;
  const VertexId v1 = b.add_vertex("N");
  b.set_property(v1, "x", int_value(5));
  b.add_vertex("N");  // no x property
  Database db(std::move(b).build(), 2, cfg());
  const auto r = db.query("SELECT SUM(n.x), COUNT(*) FROM MATCH (n:N)");
  EXPECT_EQ(r.rows[0][0], "5");
  EXPECT_EQ(r.rows[0][1], "2");
}

TEST(Aggregate, MixedIntDoubleSum) {
  GraphBuilder b;
  const VertexId v1 = b.add_vertex("N");
  b.set_property(v1, "x", int_value(2));
  const VertexId v2 = b.add_vertex("N");
  b.set_property(v2, "y", double_value(0.5));
  b.set_property(v2, "x", int_value(1));
  Database db(std::move(b).build(), 1, cfg());
  const auto r = db.query(
      "SELECT SUM(n.x + 0.25) FROM MATCH (n:N)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "3.5");  // (2 + 0.25) + (1 + 0.25)
}

}  // namespace
}  // namespace rpqd
