// Tests the nine benchmark queries (§4.1) end-to-end on a small
// LDBC-like graph: every query must parse, plan, run on the distributed
// engine, and agree with the reference oracle.
#include <gtest/gtest.h>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/generator.h"
#include "workloads/queries.h"

namespace rpqd {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ldbc::LdbcConfig cfg;
    cfg.scale_factor = 0.06;
    oracle_graph_ = new Graph(ldbc::generate_ldbc(cfg));
    EngineConfig ec;
    ec.workers_per_machine = 2;
    db_ = new Database(ldbc::generate_ldbc(cfg), 4, ec);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete oracle_graph_;
    db_ = nullptr;
    oracle_graph_ = nullptr;
  }

  static Graph* oracle_graph_;
  static Database* db_;
};

Graph* WorkloadTest::oracle_graph_ = nullptr;
Database* WorkloadTest::db_ = nullptr;

TEST_F(WorkloadTest, NineQueriesDefined) {
  const auto queries = workloads::benchmark_queries();
  EXPECT_EQ(queries.size(), 9u);
  unsigned originals = 0;
  for (const auto& q : queries) {
    if (q.original) ++originals;
  }
  EXPECT_EQ(originals, 3u);  // Q3*, Q9*, Q10*
}

TEST_F(WorkloadTest, AllQueriesAgreeWithOracle) {
  for (const auto& wq : workloads::benchmark_queries()) {
    SCOPED_TRACE(wq.id);
    const auto result = db_->query(wq.pgql);
    const auto expected =
        baseline::reference_evaluate(wq.pgql, *oracle_graph_).count;
    EXPECT_EQ(result.count, expected) << wq.pgql;
  }
}

TEST_F(WorkloadTest, Q9HasExplodingThenDecayingDepthProfile) {
  const auto queries = workloads::benchmark_queries();
  const auto& q9 = queries[3];  // Q09a: all messages, replyOf*
  ASSERT_EQ(q9.id, "Q09a");
  const auto r = db_->query(q9.pgql);
  ASSERT_FALSE(r.stats.rpq.empty());
  const auto& depths = r.stats.rpq[0].matches_per_depth;
  ASSERT_GE(depths.size(), 3u);
  // Table 2 shape: the tail decays (deepest < depth-1 matches).
  EXPECT_LT(depths.back(), depths[1]);
}

TEST_F(WorkloadTest, Q10UsesReachabilityIndexHeavily) {
  const auto queries = workloads::benchmark_queries();
  const auto& q10 = queries[5];
  ASSERT_EQ(q10.id, "Q10*");
  const auto r = db_->query(q10.pgql);
  ASSERT_FALSE(r.stats.rpq.empty());
  // Table 3 shape: undirected Knows exploration revisits vertices.
  EXPECT_GT(r.stats.rpq[0].total_eliminated() +
                r.stats.rpq[0].total_duplicated(),
            0u);
}

TEST_F(WorkloadTest, UnboundedQ10ReachesConsensus) {
  const auto queries = workloads::benchmark_queries();
  const auto& q10b = queries[7];
  ASSERT_EQ(q10b.id, "Q10b");
  const auto r = db_->query(q10b.pgql);
  ASSERT_FALSE(r.stats.rpq.empty());
  EXPECT_TRUE(r.stats.rpq[0].consensus_max_depth.has_value());
}

TEST_F(WorkloadTest, ReplyDepthQueryTemplates) {
  EXPECT_EQ(workloads::reply_depth_query(0, 0),
            "SELECT COUNT(*) FROM MATCH (m:Post|Comment) -/:replyOf{0,0}/-> "
            "(n)");
  EXPECT_EQ(workloads::reply_depth_query(1, kUnboundedDepth),
            "SELECT COUNT(*) FROM MATCH (m:Post|Comment) -/:replyOf{1,}/-> "
            "(n)");
  // The generated queries must run.
  for (const auto& spec :
       {workloads::reply_depth_query(0, 0), workloads::reply_depth_query(0, 2),
        workloads::reply_depth_query(2, 3)}) {
    const auto result = db_->query(spec);
    EXPECT_EQ(result.count,
              baseline::reference_evaluate(spec, *oracle_graph_).count)
        << spec;
  }
}

TEST_F(WorkloadTest, ZeroHopInsertsEntryPerMessage) {
  // Figure 3's {0,0} point: one {v,v} index entry per message vertex.
  const auto r = db_->query(workloads::reply_depth_query(0, 0));
  ASSERT_FALSE(r.stats.rpq.empty());
  EXPECT_EQ(r.stats.rpq[0].index_entries, r.count);
}

}  // namespace
}  // namespace rpqd
