// Skew-aware load balancing (DESIGN.md §14): PartitionMap routing,
// hot-vertex replication (delegated fan-out) exactness under fault
// schedules, mirror coherence across online updates, the profile-driven
// Repartitioner, the load-aware flush invariant, the skew regression
// corpus (tests/corpus/skew), and the rebuild-vs-query race stress.
//
// The contract under test everywhere: arming the balancing knobs changes
// WHERE work runs, never WHAT the query returns — every run is checked
// against baseline::reference_evaluate on the exact snapshot it pinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "graph/repartition.h"
#include "ldbc/synthetic.h"

#ifndef RPQD_SKEW_CORPUS_DIR
#error "RPQD_SKEW_CORPUS_DIR must point at tests/corpus/skew"
#endif

namespace rpqd {
namespace {

EngineConfig small_config() {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  return ec;
}

LabelId elabel(const Database& db, const char* name) {
  const auto id = db.graph().catalog().find_edge_label(name);
  EXPECT_TRUE(id.has_value()) << "unknown edge label " << name;
  return id.value_or(0);
}

std::vector<std::uint64_t> split_numbers(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::istringstream in(spec);
  std::string field;
  in.ignore(static_cast<std::streamsize>(spec.find(':')) + 1);
  while (std::getline(in, field, ':')) out.push_back(std::stoull(field));
  return out;
}

Graph make_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  const auto args = split_numbers(spec);
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  if (kind == "random") {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = args.at(0);
    cfg.num_edges = args.at(1);
    cfg.num_vertex_labels = static_cast<unsigned>(args.at(2));
    cfg.num_edge_labels = static_cast<unsigned>(args.at(3));
    cfg.allow_self_loops = args.at(4) != 0;
    cfg.seed = args.at(5);
    return synthetic::make_random(cfg);
  }
  ADD_FAILURE() << "unknown corpus graph spec: " << spec;
  return Graph{};
}

/// The k highest-(out+in)-degree vertices — the natural hot set of a
/// reply-tree root or a random-graph hub.
std::vector<VertexId> top_degree(const Graph& g, std::size_t k) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const auto da = g.out().degree(a) + g.in().degree(a);
    const auto db = g.out().degree(b) + g.in().degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

/// Adversarial placement: every seed vertex on machine 0 (inserts past
/// the seed still hash). The worst case §14 exists to fix.
std::vector<MachineId> all_on_machine0(const Graph& g) {
  return std::vector<MachineId>(g.num_vertices(), 0);
}

// ------------------------------------------------------ PartitionMap --

TEST(PartitionMap, RoutesThroughExplicitAssignmentWithHashFallback) {
  const PartitionMap map({2, 0, 1, 2}, 3);
  EXPECT_EQ(map.owner(0), 2u);
  EXPECT_EQ(map.owner(1), 0u);
  EXPECT_EQ(map.owner(2), 1u);
  EXPECT_EQ(map.owner(3), 2u);
  // Beyond the vector: identical to the default hash placement, so every
  // machine resolves the same owner from the id alone.
  for (VertexId v = 4; v < 40; ++v) {
    EXPECT_EQ(map.owner(v), Partition::owner(v, 3));
  }
}

TEST(PartitionMap, RejectsOutOfRangeMachine) {
  EXPECT_THROW(PartitionMap({0, 3}, 3), EngineError);
}

TEST(PartitionMap, PartitionedGraphHonorsTheMap) {
  auto g = std::make_shared<const Graph>(synthetic::make_chain(8));
  auto map = std::make_shared<const PartitionMap>(
      std::vector<MachineId>(8, 1), 3);
  const PartitionedGraph pg(g, 3, map);
  EXPECT_EQ(pg.partition(1).num_local(), 8u);
  EXPECT_EQ(pg.partition(0).num_local(), 0u);
  EXPECT_EQ(pg.partition(2).num_local(), 0u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(pg.owner(v), 1u);
  EXPECT_NE(pg.partition_map(), nullptr);
}

// ------------------------------------------- Database::repartition ----

TEST(Repartition, PreservesResultsAcrossAdoptedMaps) {
  const char* q = "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf+/- (b)";
  const Graph oracle = synthetic::make_tree(3, 4);
  const std::uint64_t expected = baseline::reference_evaluate(q, oracle).count;

  Database db(synthetic::make_tree(3, 4), 3, small_config());
  EXPECT_EQ(db.query(q).count, expected);

  // Adversarial: everything on machine 0.
  db.repartition(all_on_machine0(db.graph()));
  EXPECT_EQ(db.query(q).count, expected);

  // Round-robin: maximal spread (and a maximal diff from the last map).
  std::vector<MachineId> rr(db.graph().num_vertices());
  for (std::size_t v = 0; v < rr.size(); ++v) {
    rr[v] = static_cast<MachineId>(v % 3);
  }
  db.repartition(rr);
  EXPECT_EQ(db.query(q).count, expected);
  EXPECT_EQ(db.update_stats().repartitions, 2u);

  // Back to hash via an empty map (everything falls through).
  db.repartition({});
  EXPECT_EQ(db.query(q).count, expected);
}

TEST(Repartition, ComposesWithOnlineUpdates) {
  const char* q = "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";
  Database db(synthetic::make_chain(6), 3, small_config());
  db.repartition(all_on_machine0(db.graph()));

  UpdateBatch batch;
  batch.edge_inserts.push_back({5, 0, elabel(db, "next")});
  db.apply_update(batch);
  const Graph oracle = *db.materialize_snapshot(db.graph_epoch());
  EXPECT_EQ(db.query(q).count, baseline::reference_evaluate(q, oracle).count);

  // Repartition after the update: the rebuild folds the delta.
  std::vector<MachineId> rr(db.graph().num_vertices());
  for (std::size_t v = 0; v < rr.size(); ++v) {
    rr[v] = static_cast<MachineId>(v % 3);
  }
  db.repartition(rr);
  EXPECT_EQ(db.query(q).count, baseline::reference_evaluate(q, oracle).count);
  EXPECT_EQ(db.graph_epoch(), 1u);  // a repartition keeps the epoch
}

// ------------------------------------- delegated hot-vertex fan-out ----

TEST(HotMirror, DelegatedFanoutIsExactAndCounted) {
  // Hot-root star: one root with many children, children chained so the
  // traversal has depth. All on machine 0 = the worst skew.
  const char* q = "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf+/- (b)";
  const Graph oracle = synthetic::make_tree(8, 2);
  const std::uint64_t expected = baseline::reference_evaluate(q, oracle).count;

  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  Database db(synthetic::make_tree(8, 2), 3, ec);
  db.repartition(all_on_machine0(db.graph()));
  db.set_hot_vertices(top_degree(db.graph(), 4));
  EXPECT_EQ(db.hot_vertices().size(), 4u);
  EXPECT_GE(db.update_stats().mirrored_vertices, 4u);

  const QueryResult on = db.query(q);
  EXPECT_EQ(on.count, expected);
  // The root IS hot and its children are re-homed to peers only by
  // hashing... under all-on-0 everything is local, so delegation sends
  // no mirror messages. Spread the children and the fan-out must fire.
  std::vector<MachineId> rr(db.graph().num_vertices());
  for (std::size_t v = 0; v < rr.size(); ++v) {
    rr[v] = static_cast<MachineId>(v % 3);
  }
  db.repartition(rr);
  const QueryResult spread = db.query(q);
  EXPECT_EQ(spread.count, expected);
  EXPECT_GT(spread.stats.mirror_fanouts, 0u);
  EXPECT_GT(spread.stats.mirror_expands, 0u);

  // Disarm: identical result, zero mirror traffic.
  db.config().hot_mirror_fanout = false;
  const QueryResult off = db.query(q);
  EXPECT_EQ(off.count, expected);
  EXPECT_EQ(off.stats.mirror_fanouts, 0u);
  EXPECT_EQ(off.stats.mirror_expands, 0u);
}

TEST(HotMirror, ProfileIdentitiesHoldWithDelegationOn) {
  const char* q =
      "PROFILE SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf*/- (b)";
  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  Database db(synthetic::make_tree(6, 3), 4, ec);
  db.set_hot_vertices(top_degree(db.graph(), 8));
  const QueryResult r = db.query(q);
  ASSERT_TRUE(r.profile.enabled);
  // The §10 reconciliation identities must survive delegation: a mirror
  // message is a context on both ends, attributed to its source stage.
  EXPECT_EQ(r.profile.total_ctx_sent(), r.stats.contexts_sent);
  EXPECT_EQ(r.profile.total_ctx_received(), r.stats.contexts_sent);
  EXPECT_EQ(r.profile.total_msgs_sent(), r.stats.data_messages);
  EXPECT_EQ(r.profile.total_msgs_received(), r.stats.data_messages);
  for (StageId s = 0; s < r.stats.stages.size(); ++s) {
    EXPECT_EQ(r.profile.stage_contexts(s), r.stats.stages[s].visits);
    EXPECT_EQ(r.profile.stage_ctx_sent(s), r.stats.stages[s].remote_out);
  }
  // Per-machine §14 summaries reconcile with the engine's load vector.
  ASSERT_EQ(r.profile.machines.size(), r.stats.machine_contexts.size());
  std::uint64_t fanouts = 0, expands = 0;
  for (std::size_t m = 0; m < r.profile.machines.size(); ++m) {
    EXPECT_EQ(r.profile.machines[m].total_contexts,
              r.stats.machine_contexts[m]);
    fanouts += r.profile.machines[m].mirror_fanouts;
    expands += r.profile.machines[m].mirror_expands;
  }
  EXPECT_EQ(fanouts, r.stats.mirror_fanouts);
  EXPECT_EQ(expands, r.stats.mirror_expands);
  // The text report carries the §14 balance line whenever work ran.
  EXPECT_NE(r.profile.text().find("balance: contexts"), std::string::npos);
}

TEST(HotMirror, EdgePropertyHopsDelegate) {
  // Edge-property *stores* travel with the mirror buckets; only hops
  // with edge *filters* must stay owner-local. A plain labelled hop over
  // a mirrored hub must stay exact.
  const char* q = "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,3}/-> (b)";
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 30;
  cfg.num_edges = 120;
  cfg.num_vertex_labels = 2;
  cfg.num_edge_labels = 2;
  cfg.seed = 7;
  const Graph oracle = synthetic::make_random(cfg);
  const std::uint64_t expected = baseline::reference_evaluate(q, oracle).count;
  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  Database db(synthetic::make_random(cfg), 3, ec);
  db.set_hot_vertices(top_degree(db.graph(), 6));
  EXPECT_EQ(db.query(q).count, expected);
}

TEST(HotMirror, ExactUnderEveryFaultSchedule) {
  const char* q = "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf+/- (b)";
  const Graph oracle = synthetic::make_tree(5, 3);
  const std::uint64_t expected = baseline::reference_evaluate(q, oracle).count;
  for (const auto& schedule : FaultPlan::schedule_names()) {
    SCOPED_TRACE("schedule=" + schedule);
    EngineConfig ec = small_config();
    ec.hot_mirror_fanout = true;
    ec.load_aware_flush = true;
    Database db(synthetic::make_tree(5, 3), 3, ec);
    db.set_hot_vertices(top_degree(db.graph(), 4));
    db.set_fault_schedule(schedule, 11);
    // crash-stop / lossy-chaos arm a one-shot machine crash; the retry
    // runs against a healthy cluster and must be exact (the existing
    // loss-harness convention).
    const bool crashes = schedule == "crash-stop" || schedule == "lossy-chaos";
    const QueryResult r = crashes ? db.run_with_retry(q) : db.query(q);
    ASSERT_FALSE(r.aborted) << "run aborted under " << schedule;
    EXPECT_EQ(r.count, expected);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
  }
}

// --------------------------------------- mirror coherence (updates) ----

TEST(MirrorCoherence, UpdatesOnAMirroredVertexRebuildItsMirrors) {
  // Insert and delete edges ON the mirrored hot vertex across epochs;
  // each epoch's query must match the reference on that exact epoch —
  // a stale mirror bucket would double- or under-count.
  const char* q = "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";
  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  Database db(synthetic::make_chain(8), 3, ec);
  db.set_hot_vertices({0, 1});
  const std::uint64_t rebuilds0 = db.update_stats().mirror_rebuilds;

  UpdateBatch grow;
  grow.edge_inserts.push_back({7, 0, elabel(db, "next")});  // onto hot 0
  grow.edge_inserts.push_back({1, 4, elabel(db, "next")});  // out of hot 1
  db.apply_update(grow);
  EXPECT_GT(db.update_stats().mirror_rebuilds, rebuilds0);
  {
    const Graph oracle = *db.materialize_snapshot(db.graph_epoch());
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle).count);
  }

  UpdateBatch shrink;
  shrink.edge_deletes.push_back({0, 1, elabel(db, "next")});
  db.apply_update(shrink);
  {
    const Graph oracle = *db.materialize_snapshot(db.graph_epoch());
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle).count);
  }

  // Deleting a hot vertex drops it from the mirrors entirely.
  UpdateBatch drop;
  drop.vertex_deletes.push_back({1});
  db.apply_update(drop);
  {
    const Graph oracle = *db.materialize_snapshot(db.graph_epoch());
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle).count);
  }
}

TEST(MirrorCoherence, UpdatesOffTheHotSetLeaveMirrorsAlone) {
  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  Database db(synthetic::make_chain(10), 3, ec);
  db.set_hot_vertices({0});
  const std::uint64_t rebuilds0 = db.update_stats().mirror_rebuilds;
  UpdateBatch far;
  far.edge_inserts.push_back({8, 5, elabel(db, "next")});
  db.apply_update(far);
  // A dirty scope disjoint from the hot set must not rebuild mirrors.
  EXPECT_EQ(db.update_stats().mirror_rebuilds, rebuilds0);
}

// ------------------------------------------------ the repartitioner ----

TEST(Repartitioner, ProposalBalancesAnAdversarialPlacement) {
  auto graph = std::make_shared<const Graph>(synthetic::make_tree(4, 4));
  auto skewed = std::make_shared<const PartitionMap>(
      std::vector<MachineId>(graph->num_vertices(), 0), 4);
  Repartitioner rep(graph, 4, skewed);
  // Observed load: everything on machine 0 (matching the placement).
  rep.observe({5000, 0, 0, 0});
  EXPECT_EQ(rep.observations(), 1u);

  const RepartitionPlan plan = rep.propose();
  EXPECT_EQ(plan.assignment.size(), graph->num_vertices());
  // All cost sat on machine 0: current imbalance is the worst case.
  EXPECT_NEAR(plan.current_imbalance, 4.0, 0.01);
  EXPECT_LT(plan.predicted_imbalance, 1.5);
  EXPECT_GT(plan.moved_vertices, 0u);
}

TEST(Repartitioner, HotSetRanksByDegreeAndRespectsFloor) {
  // A star: the root's fan-in of 6 dominates the leaves' degree of 1.
  auto graph = std::make_shared<const Graph>(synthetic::make_tree(6, 1));
  Repartitioner rep(graph, 3);
  const auto hot = rep.propose_hot_set(3, 2);
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), 3u);
  EXPECT_EQ(hot.front(), 0u);
  for (const VertexId v : hot) {
    EXPECT_GE(graph->out().degree(v) + graph->in().degree(v), 2u);
  }
  // A min_degree above every vertex yields nothing.
  EXPECT_TRUE(rep.propose_hot_set(8, 1000).empty());
}

TEST(Repartitioner, ConsumesProfileJsonDumps) {
  EngineConfig ec = small_config();
  Database db(synthetic::make_tree(3, 4), 3, ec);
  const QueryResult r = db.query(
      "PROFILE SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf+/- (b)");
  ASSERT_TRUE(r.profile.enabled);

  auto graph = std::make_shared<const Graph>(synthetic::make_tree(3, 4));
  Repartitioner rep(graph, 3);
  ASSERT_TRUE(rep.observe_profile_json(r.profile.to_json()));
  EXPECT_EQ(rep.observations(), 1u);
  // The in-memory and JSON paths must agree.
  Repartitioner rep2(graph, 3);
  rep2.observe_profile(r.profile);
  const RepartitionPlan a = rep.propose();
  const RepartitionPlan b = rep2.propose();
  EXPECT_EQ(a.assignment, b.assignment);
  // Garbage in, nothing observed.
  Repartitioner rep3(graph, 3);
  EXPECT_FALSE(rep3.observe_profile_json("{\"enabled\": false}"));
}

TEST(Repartitioner, ClosedLoopImprovesBalanceEndToEnd) {
  // The full §14 loop: run skewed, profile, propose, adopt, re-run —
  // the measured per-machine context spread must tighten.
  const char* q =
      "PROFILE SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf*/- (b)";
  EngineConfig ec = small_config();
  Database db(synthetic::make_tree(4, 5), 4, ec);
  db.repartition(all_on_machine0(db.graph()));
  const QueryResult skewed = db.query(q);
  const double imbalance_before = skewed.stats.load_imbalance;
  EXPECT_GT(imbalance_before, 3.0);  // everything on one of 4 machines

  auto graph = db.materialize_snapshot(db.graph_epoch());
  auto current = std::make_shared<const PartitionMap>(
      all_on_machine0(*graph), 4);
  Repartitioner rep(graph, 4, current);
  rep.observe(skewed.stats.machine_contexts);
  const RepartitionPlan plan = rep.propose();
  db.repartition(plan.assignment);

  const QueryResult balanced = db.query(q);
  EXPECT_EQ(balanced.count, skewed.count);
  EXPECT_LT(balanced.stats.load_imbalance, imbalance_before / 2.0);
}

// ------------------------------------------------- load-aware flush ----

TEST(LoadAwareFlush, OrderingOnlyNeverChangesResults) {
  const char* q = "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1*/-> (b)";
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 24;
  cfg.num_edges = 70;
  cfg.num_edge_labels = 2;
  cfg.seed = 13;
  const Graph oracle = synthetic::make_random(cfg);
  const std::uint64_t expected = baseline::reference_evaluate(q, oracle).count;
  EngineConfig ec = small_config();
  ec.load_aware_flush = true;
  Database db(synthetic::make_random(cfg), 4, ec);
  EXPECT_EQ(db.query(q).count, expected);
  db.config().load_aware_flush = false;
  const QueryResult off = db.query(q);
  EXPECT_EQ(off.count, expected);
  EXPECT_EQ(off.stats.contexts_redirected, 0u);
}

// ------------------------------------------------------ skew corpus ----

struct SkewCorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string schedule;
  std::uint64_t fault_seed = 0;
  std::string hot_spec;   // hot:<k> | none
  std::string part_spec;  // all0 | hash
  std::string batch;      // mid-query update ops, or "-"
  std::string query;
  std::string source;
};

std::vector<SkewCorpusEntry> load_skew_corpus() {
  std::vector<SkewCorpusEntry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(RPQD_SKEW_CORPUS_DIR)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar1 = line.find('|');
      const auto bar2 = line.find('|', bar1 + 1);
      if (bar1 == std::string::npos || bar2 == std::string::npos) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      SkewCorpusEntry e;
      std::istringstream head(line.substr(0, bar1));
      head >> e.graph_spec >> e.machines >> e.schedule >> e.fault_seed >>
          e.hot_spec >> e.part_spec;
      if (head.fail()) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      e.batch = line.substr(bar1 + 1, bar2 - bar1 - 1);
      e.batch.erase(0, e.batch.find_first_not_of(' '));
      e.batch.erase(e.batch.find_last_not_of(' ') + 1);
      e.query = line.substr(bar2 + 1);
      e.query.erase(0, e.query.find_first_not_of(' '));
      e.source =
          file.path().filename().string() + ":" + std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

UpdateBatch parse_batch(const Database& db, const std::string& text) {
  UpdateBatch batch;
  std::istringstream in(text);
  std::string op;
  while (std::getline(in, op, ';')) {
    op.erase(0, op.find_first_not_of(" \t"));
    op.erase(op.find_last_not_of(" \t") + 1);
    if (op.empty()) continue;
    std::istringstream fields(op.substr(3));
    std::string a, b, c;
    std::getline(fields, a, ':');
    std::getline(fields, b, ':');
    std::getline(fields, c, ':');
    if (op.rfind("ae:", 0) == 0) {
      batch.edge_inserts.push_back(
          {std::stoull(a), std::stoull(b), elabel(db, c.c_str())});
    } else if (op.rfind("de:", 0) == 0) {
      batch.edge_deletes.push_back(
          {std::stoull(a), std::stoull(b), elabel(db, c.c_str())});
    } else if (op.rfind("dv:", 0) == 0) {
      batch.vertex_deletes.push_back({std::stoull(a)});
    } else {
      ADD_FAILURE() << "unknown corpus batch op: " << op;
    }
  }
  return batch;
}

TEST(SkewCorpusReplay, BalancedRunsMatchTheOracleAndTheUnbalancedRuns) {
  const auto entries = load_skew_corpus();
  ASSERT_FALSE(entries.empty()) << "skew corpus empty: "
                                << RPQD_SKEW_CORPUS_DIR;
  for (const auto& e : entries) {
    SCOPED_TRACE(e.source + " query=" + e.query);
    const Graph oracle = make_graph(e.graph_spec);
    const std::uint64_t expected =
        baseline::reference_evaluate(e.query, oracle).count;

    // Run the same line with balancing off and fully armed; both must
    // match the oracle (and hence each other) under the fault schedule.
    std::uint64_t counts[2] = {0, 0};
    for (const bool armed : {false, true}) {
      EngineConfig ec = small_config();
      ec.hot_mirror_fanout = armed;
      ec.load_aware_flush = armed;
      Database db(make_graph(e.graph_spec), e.machines, ec);
      if (e.part_spec == "all0") {
        db.repartition(all_on_machine0(db.graph()));
      } else if (e.part_spec != "hash") {
        FAIL() << "unknown part spec " << e.part_spec;
      }
      if (e.hot_spec.rfind("hot:", 0) == 0) {
        db.set_hot_vertices(
            top_degree(db.graph(), std::stoull(e.hot_spec.substr(4))));
      } else if (e.hot_spec != "none") {
        FAIL() << "unknown hot spec " << e.hot_spec;
      }
      db.set_fault_schedule(e.schedule, e.fault_seed);

      if (e.batch != "-") {
        // Mirror-invalidation-mid-query: fire the query async, land an
        // update touching the hot set while it may be in flight, then
        // check against the epoch the query actually pinned.
        QueryTicket ticket = db.submit(e.query);
        db.apply_update(parse_batch(db, e.batch));
        const QueryResult r = db.await(ticket);
        ASSERT_FALSE(r.aborted) << "corpus run aborted";
        const Graph pinned =
            *db.materialize_snapshot(r.stats.snapshot_epoch);
        EXPECT_EQ(r.count,
                  baseline::reference_evaluate(e.query, pinned).count);
        // And a fresh query on the post-update epoch must be exact too
        // (the mirrors were rebuilt under the query's feet).
        const Graph post = *db.materialize_snapshot(db.graph_epoch());
        counts[armed] = db.query(e.query).count;
        EXPECT_EQ(counts[armed],
                  baseline::reference_evaluate(e.query, post).count);
      } else {
        // lossy-chaos arms a one-shot crash; retry against the healthy
        // cluster must be exact (the loss-corpus convention).
        const QueryResult r = e.schedule == "lossy-chaos"
                                  ? db.run_with_retry(e.query)
                                  : db.query(e.query);
        ASSERT_FALSE(r.aborted) << "corpus run aborted";
        EXPECT_EQ(r.count, expected);
        EXPECT_EQ(r.stats.flow_outstanding, 0u);
        counts[armed] = r.count;
      }
    }
    EXPECT_EQ(counts[0], counts[1]);
  }
}

// ------------------------------------------------------- race stress ----

/// Races hot-set installs, repartitions, updates on mirrored vertices,
/// and queries. Tier-1 runs a short burst; RPQD_TIER2_SKEW=1 scales it
/// up (the tier2-skew-tsan preset is the data-race gate for the mirror
/// rebuild and LoadBoard paths).
void run_skew_stress(unsigned rounds) {
  EngineConfig ec = small_config();
  ec.hot_mirror_fanout = true;
  ec.load_aware_flush = true;
  Database db(synthetic::make_tree(4, 4), 3, ec);
  const char* q = "SELECT COUNT(*) FROM MATCH (a:Root) <-/:replyOf*/- (b)";
  db.set_hot_vertices(top_degree(db.graph(), 4));

  std::atomic<bool> stop{false};
  std::atomic<unsigned> failures{0};
  std::atomic<std::uint64_t> completed{0};
  std::thread mutator([&] {
    const LabelId reply = elabel(db, "replyOf");
    for (unsigned i = 0; i < rounds && !stop.load(); ++i) {
      UpdateBatch grow;  // edges onto the hot root, rebuilt every epoch
      grow.edge_inserts.push_back({1 + (i % 4), 0, reply});
      db.apply_update(grow);
      db.set_hot_vertices(i % 2 == 0 ? top_degree(db.graph(), 2)
                                     : std::vector<VertexId>{});
      if (i % 3 == 0) {
        std::vector<MachineId> rr(db.graph().num_vertices());
        for (std::size_t v = 0; v < rr.size(); ++v) {
          rr[v] = static_cast<MachineId>((v + i) % 3);
        }
        db.repartition(rr);
      }
      UpdateBatch shrink;
      shrink.edge_deletes.push_back({1 + (i % 4), 0, reply});
      db.apply_update(shrink);
      // Force real interleaving: each rebuild round must overlap at
      // least one query, or the race this test exists for never runs.
      const std::uint64_t target = completed.load() + 1;
      while (completed.load() < target && !stop.load()) {
        std::this_thread::yield();
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> askers;
  for (unsigned t = 0; t < 2; ++t) {
    askers.emplace_back([&] {
      while (!stop.load()) {
        const QueryResult r = db.query(q);
        if (r.aborted) {
          ++failures;
          continue;
        }
        const Graph pinned =
            *db.materialize_snapshot(r.stats.snapshot_epoch);
        if (r.count != baseline::reference_evaluate(q, pinned).count) {
          ++failures;
          stop.store(true);
        }
        completed.fetch_add(1);
      }
    });
  }
  mutator.join();
  for (auto& t : askers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(SkewStress, RacingRebuildsRepartitionsAndQueries) {
  run_skew_stress(6);
}

TEST(SkewStress, Tier2SkewStress) {
  if (std::getenv("RPQD_TIER2_SKEW") == nullptr) {
    GTEST_SKIP() << "tier-2 scale; set RPQD_TIER2_SKEW=1 (ctest -L "
                    "tier2-skew)";
  }
  run_skew_stress(120);
}

}  // namespace
}  // namespace rpqd
