// Tests for the baseline engines: the brute-force reference oracle, the
// Neo4j-like and relational comparators, and the distributed BFT engine —
// each validated on hand-computed graphs and against one another.
#include <gtest/gtest.h>

#include "baseline/bft.h"
#include "baseline/neo4j_like.h"
#include "baseline/reference.h"
#include "baseline/relational.h"
#include "ldbc/synthetic.h"

namespace rpqd::baseline {
namespace {

TEST(Reference, ChainCounts) {
  const Graph g = synthetic::make_chain(10);
  EXPECT_EQ(
      reference_evaluate("SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)", g)
          .count,
      45u);
  EXPECT_EQ(
      reference_evaluate("SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)", g)
          .count,
      55u);
}

TEST(Reference, WindowOnlyReachableViaLongerWalk) {
  // 4-cycle: with min=5 the (vertex,depth) state search must find the
  // wrap-around walks a plain min-depth BFS would miss.
  const Graph g = synthetic::make_cycle(4);
  EXPECT_EQ(reference_evaluate(
                "SELECT COUNT(*) FROM MATCH (a) -/:next{5,6}/-> (b)", g)
                .count,
            8u);
}

TEST(Reference, UnboundedOnCycleUsesPumpingBound) {
  const Graph g = synthetic::make_cycle(5);
  EXPECT_EQ(reference_evaluate(
                "SELECT COUNT(*) FROM MATCH (a) -/:next{7,}/-> (b)", g)
                .count,
            25u);  // every pair reachable at some length >= 7
}

TEST(Reference, FiltersAndProjectedCount) {
  const Graph g = synthetic::make_chain(6);
  EXPECT_EQ(reference_evaluate(
                "SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b) "
                "WHERE a.id >= 2 AND b.id <= 4",
                g)
                .count,
            2u);
}

TEST(Reference, ParallelEdgeWeights) {
  GraphBuilder b;
  b.add_vertex("N");
  b.add_vertex("N");
  b.add_edge(0, 1, "e");
  b.add_edge(0, 1, "e");
  const Graph g = std::move(b).build();
  EXPECT_EQ(
      reference_evaluate("SELECT COUNT(*) FROM MATCH (a) -[:e]-> (b)", g)
          .count,
      2u);
  EXPECT_EQ(reference_evaluate(
                "SELECT COUNT(*) FROM MATCH (a)-[:e]->(b), (a)-[:e]->(b)", g)
                .count,
            4u);
}

TEST(Reference, MacroWithWhere) {
  const Graph g = synthetic::make_chain(6);
  EXPECT_EQ(reference_evaluate(
                "PATH p AS (x) -[:next]-> (y) WHERE x.id < y.id "
                "SELECT COUNT(*) FROM MATCH (a) -/:p+/-> (b) WHERE a.id = 0",
                g)
                .count,
            5u);
}

TEST(Reference, DisconnectedThrows) {
  const Graph g = synthetic::make_chain(3);
  EXPECT_THROW(
      reference_evaluate("SELECT COUNT(*) FROM MATCH (a), (b)", g),
      UnsupportedError);
}

TEST(Neo4jLike, AgreesWithReference) {
  const Graph g = synthetic::make_tree(2, 4);
  const Neo4jLikeEngine neo(g);
  const auto q = "SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> (r:Root)";
  EXPECT_EQ(neo.execute(q).count, reference_evaluate(q, g).count);
  EXPECT_GE(neo.execute(q).elapsed_ms, 0.0);
}

TEST(Relational, ChainAgreesWithReference) {
  const Graph g = synthetic::make_chain(10);
  const RelationalEngine rel(g);
  for (const char* q :
       {"SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -/:next{2,4}/-> (b)",
        "SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b) -[:next]-> (c)"}) {
    EXPECT_EQ(rel.execute(q).count, reference_evaluate(q, g).count) << q;
  }
}

TEST(Relational, TracksPeakRows) {
  const Graph g = synthetic::make_complete(6);
  const RelationalEngine rel(g);
  const auto r =
      rel.execute("SELECT COUNT(*) FROM MATCH (a) -/:edge{1,3}/-> (b)");
  EXPECT_GT(r.peak_rows, 0u);
}

TEST(Relational, CrossFilterUnsupported) {
  const Graph g = synthetic::make_chain(4);
  const RelationalEngine rel(g);
  EXPECT_THROW(
      rel.execute("PATH p AS (x) -[:next]-> (y) "
                  "SELECT COUNT(*) FROM MATCH (a) -/:p+/-> (b) "
                  "WHERE a.id <= x.id"),
      UnsupportedError);
}

TEST(Bft, TreeReachability) {
  auto g = std::make_shared<const Graph>(synthetic::make_tree(2, 3));
  const PartitionedGraph pg(g, 3);
  const BftEngine bft(pg);
  BftTask task;
  task.dir = Direction::kOut;
  task.edge_labels = {"replyOf"};
  task.min_hop = 1;
  task.max_hop = kUnboundedDepth;
  task.dest_labels = {"Root"};
  const auto r = bft.run(task);
  EXPECT_EQ(r.count, 14u);
  EXPECT_EQ(r.max_depth, 3u);
  EXPECT_GT(r.peak_state_bytes, 0u);
}

TEST(Bft, WindowSemanticsMatchReference) {
  const auto shared = std::make_shared<const Graph>(synthetic::make_cycle(4));
  const PartitionedGraph pg(shared, 2);
  const BftEngine bft(pg);
  BftTask task;
  task.edge_labels = {"next"};
  task.min_hop = 5;
  task.max_hop = 6;
  const auto r = bft.run(task);
  EXPECT_EQ(r.count, 8u);  // same as the engine/reference window test
}

TEST(Bft, SingleSourceAndZeroHop) {
  const auto shared = std::make_shared<const Graph>(synthetic::make_chain(6));
  const PartitionedGraph pg(shared, 2);
  const BftEngine bft(pg);
  BftTask task;
  task.edge_labels = {"next"};
  task.single_source = 0;
  task.min_hop = 0;
  task.max_hop = 3;
  const auto r = bft.run(task);
  EXPECT_EQ(r.count, 4u);  // self + 3 hops
}

TEST(Bft, UndirectedKnowsStyle) {
  const auto shared =
      std::make_shared<const Graph>(synthetic::make_chain(5));
  const PartitionedGraph pg(shared, 2);
  const BftEngine bft(pg);
  BftTask task;
  task.edge_labels = {"next"};
  task.dir = Direction::kBoth;
  task.min_hop = 2;
  task.max_hop = 3;
  task.single_source = 2;
  const auto r = bft.run(task);
  // From 2 undirected: depth2 = {0,4,2}; depth3 = {1,3}. All five.
  EXPECT_EQ(r.count, 5u);
}

}  // namespace
}  // namespace rpqd::baseline
