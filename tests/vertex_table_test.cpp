// Tests for the flat open-addressing global->local vertex id table:
// collisions, absent keys, full-table behavior, and agreement with the
// partition build it backs.
#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/vertex_table.h"

namespace rpqd {
namespace {

TEST(FlatVertexTable, EmptyTableFindsNothing) {
  FlatVertexTable table;
  EXPECT_FALSE(table.find(0).has_value());
  EXPECT_FALSE(table.find(123).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlatVertexTable, BuildMapsEveryVertexToItsIndex) {
  const std::vector<VertexId> vertices = {5, 0, 999, 42, 7};
  const auto table = FlatVertexTable::build(vertices);
  EXPECT_EQ(table.size(), vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ASSERT_TRUE(table.find(vertices[i]).has_value());
    EXPECT_EQ(*table.find(vertices[i]), static_cast<LocalVertexId>(i));
  }
}

TEST(FlatVertexTable, AbsentKeysReturnNullopt) {
  const auto table = FlatVertexTable::build({10, 20, 30});
  EXPECT_FALSE(table.find(11).has_value());
  EXPECT_FALSE(table.find(0).has_value());
  EXPECT_FALSE(table.find(~0ull - 1).has_value());
  EXPECT_FALSE(table.find(kInvalidVertex).has_value());
}

TEST(FlatVertexTable, CollidingKeysProbeLinearly) {
  // Force collisions: a table with 4 slots and keys that mix into
  // overlapping start positions still resolves every key.
  FlatVertexTable table(4);
  ASSERT_EQ(table.capacity(), 4u);
  std::vector<VertexId> keys = {1, 2, 3};  // 3 keys in 4 slots
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(table.insert(keys[i], static_cast<LocalVertexId>(i)));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(table.find(keys[i]).has_value());
    EXPECT_EQ(*table.find(keys[i]), static_cast<LocalVertexId>(i));
  }
  EXPECT_FALSE(table.find(99).has_value());
}

TEST(FlatVertexTable, DuplicateInsertRejected) {
  FlatVertexTable table(8);
  EXPECT_TRUE(table.insert(7, 0));
  EXPECT_FALSE(table.insert(7, 1));
  EXPECT_EQ(*table.find(7), 0u);  // first mapping wins
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatVertexTable, FullTableRejectsInsertAndTerminatesFind) {
  FlatVertexTable table(4);
  ASSERT_EQ(table.capacity(), 4u);
  for (VertexId k = 1; k <= 4; ++k) {
    ASSERT_TRUE(table.insert(k, static_cast<LocalVertexId>(k)));
  }
  // Table is completely full: further inserts fail, and probing for an
  // absent key must terminate (no empty slot to stop at).
  EXPECT_FALSE(table.insert(5, 5));
  EXPECT_FALSE(table.find(5).has_value());
  for (VertexId k = 1; k <= 4; ++k) {
    EXPECT_EQ(*table.find(k), static_cast<LocalVertexId>(k));
  }
}

TEST(FlatVertexTable, InvalidVertexNeverStored) {
  FlatVertexTable table(8);
  EXPECT_FALSE(table.insert(kInvalidVertex, 0));
  EXPECT_FALSE(table.find(kInvalidVertex).has_value());
}

TEST(FlatVertexTable, LargeBuildRoundTrips) {
  // Sparse ids of the shape hash partitioning produces.
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < 40000; v += 3) vertices.push_back(v * v + 17);
  const auto table = FlatVertexTable::build(vertices);
  EXPECT_EQ(table.size(), vertices.size());
  EXPECT_GE(table.capacity(), vertices.size() * 2);  // load factor <= 0.5
  std::unordered_set<VertexId> present(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    EXPECT_EQ(*table.find(vertices[i]), static_cast<LocalVertexId>(i));
  }
  for (VertexId v = 1; v < 1000; v += 7) {
    if (present.count(v) == 0) EXPECT_FALSE(table.find(v).has_value());
  }
}

}  // namespace
}  // namespace rpqd
