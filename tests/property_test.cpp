// Property-based engine-agreement tests: the primary correctness oracle.
//
// For seeded random graphs and a battery of query templates, the
// distributed RPQd engine (several cluster sizes), the brute-force
// reference evaluator, and the relational comparator must all agree on
// COUNT(*). The three implementations share no matching code (DFT +
// messages vs. backtracking + BFS vs. joins + recursive CTE), so
// agreement across random inputs is strong evidence of correctness.
#include <gtest/gtest.h>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "baseline/relational.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

struct Case {
  std::uint64_t seed;
  unsigned machines;
};

class AgreementTest : public ::testing::TestWithParam<Case> {};

std::vector<std::string> query_battery() {
  return {
      // Plain RPQs over one label, all quantifier shapes.
      "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{1,3}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{2}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e2{0,2}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{2,}/-> (b)",
      // Reversed and undirected RPQs.
      "SELECT COUNT(*) FROM MATCH (a) <-/:e0{1,2}/- (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e1{1,2}/- (b)",
      // Label alternation.
      "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,2}/-> (b)",
      // Labels and filters on endpoints.
      "SELECT COUNT(*) FROM MATCH (a:L0) -/:e0{1,3}/-> (b:L1)",
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,2}/-> (b) "
      "WHERE a.weight < 50 AND b.weight >= 20",
      // Fixed patterns, linear and non-linear.
      "SELECT COUNT(*) FROM MATCH (a) -[:e0]-> (b) -[:e1]-> (c)",
      "SELECT COUNT(*) FROM MATCH (a) -[:e0]-> (b) -[:e0]-> (c), "
      "(a) -[:e1]-> (c)",
      "SELECT COUNT(*) FROM MATCH (a:L0) -[:e0]- (b) <-[:e1]- (c:L2)",
      // RPQ combined with fixed hops on both sides.
      "SELECT COUNT(*) FROM MATCH (a:L0) -[:e0]-> (b) -/:e1{1,2}/-> (c) "
      "-[:e2]-> (d)",
      // Macro with an inner two-hop pattern.
      "PATH two AS (x) -[:e0]-> (m) -[:e1]-> (y) "
      "SELECT COUNT(*) FROM MATCH (a) -/:two{1,2}/-> (b)",
      // Macro with a per-iteration WHERE.
      "PATH up AS (x) -[:e0]-> (y) WHERE x.weight <= y.weight "
      "SELECT COUNT(*) FROM MATCH (a) -/:up+/-> (b)",
      // Cycle-closing RPQ.
      "SELECT COUNT(*) FROM MATCH (a) -[:e0]-> (b), (a) -/:e1{1,3}/-> (b)",
      // Two RPQ segments between the same endpoints (the paper's
      // (a)*bb(a)+ composition style).
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,2}/-> (b), "
      "(a) -/:e1{1,2}/-> (b)",
      // ID-pinned single start.
      "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,4}/-> (b) WHERE ID(a) = 3",
  };
}

TEST_P(AgreementTest, EnginesAgreeOnRandomGraphs) {
  const Case c = GetParam();
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 40;
  cfg.num_edges = 110;
  cfg.num_vertex_labels = 3;
  cfg.num_edge_labels = 3;
  cfg.seed = c.seed;
  Graph g = synthetic::make_random(cfg);
  // Keep an owning copy for the oracle side (Database consumes g).
  Graph oracle_copy = synthetic::make_random(cfg);
  const baseline::RelationalEngine relational(oracle_copy);

  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  Database db(std::move(g), c.machines, ec);

  for (const auto& q : query_battery()) {
    const auto expected = baseline::reference_evaluate(q, oracle_copy).count;
    EXPECT_EQ(db.query(q).count, expected) << "engine vs reference: " << q;
    EXPECT_EQ(relational.execute(q).count, expected)
        << "relational vs reference: " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AgreementTest,
    ::testing::Values(Case{1, 1}, Case{2, 2}, Case{3, 3}, Case{4, 4},
                      Case{5, 5}, Case{6, 2}, Case{7, 3}, Case{8, 4},
                      Case{9, 6}, Case{10, 8}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.machines);
    });

class DenseAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(DenseAgreementTest, DenseGraphsWithCycles) {
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 12;
  cfg.num_edges = 90;  // dense: many cycles, heavy index traffic
  cfg.num_edge_labels = 2;
  cfg.allow_self_loops = true;
  cfg.seed = 100 + static_cast<std::uint64_t>(GetParam());
  Graph oracle_copy = synthetic::make_random(cfg);
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 32;
  ec.buffer_bytes = 256;
  Database db(synthetic::make_random(cfg), 3, ec);
  for (const char* q : {
           "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e0{2,5}/-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e0|e1{1,3}/- (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e1{3,}/-> (b)",
       }) {
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle_copy).count)
        << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseAgreementTest, ::testing::Range(0, 6));

class TreeAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeAgreementTest, ReplyTreeShapes) {
  const unsigned arity = 2 + GetParam() % 3;
  const unsigned depth = 2 + GetParam() % 4;
  Graph oracle_copy = synthetic::make_tree(arity, depth);
  EngineConfig ec;
  ec.workers_per_machine = 2;
  Database db(synthetic::make_tree(arity, depth), 4, ec);
  for (const char* q : {
           "SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> (r:Root)",
           "SELECT COUNT(*) FROM MATCH (c) -/:replyOf*/-> (r)",
           "SELECT COUNT(*) FROM MATCH (r:Root) <-/:replyOf{1,2}/- (c)",
       }) {
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle_copy).count)
        << q << " arity=" << arity << " depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeAgreementTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rpqd
