// Randomized differential test harness under fault injection.
//
// Generated PGQL queries run through the distributed engine under
// adversarial fault schedules (message reorder, bounded duplication,
// credit-return jitter, slow machines — common/fault.h) across several
// partition counts, and every run must (a) produce the exact result set
// of the brute-force reference oracle and (b) uphold the engine's
// distributed invariants:
//   - all flow-control credits returned (no leak, no emergency credit),
//     and the overflow bookkeeping sets fully emptied,
//   - the §3.4 termination consensus depth equals the max observed depth,
//   - the §3.5 reachability index contains no duplicate (dst, rpid) key,
//   - the per-query profile tree reconciles exactly with RuntimeStats
//     (every run executes with profiling on, so the tracing layer itself
//     is fuzzed under the same adversarial schedules).
//
// Every failure message carries a one-line replay key (query seed, graph
// seed, schedule name, fault seed, machine count) from which the exact
// query, graph, and fault decisions are re-derived.
//
// Sizing: RPQD_DIFF_QUERIES overrides the generated-query budget of the
// always-on smoke test; the Tier2Exhaustive test (ctest label
// `tier2-fuzz`, enabled by RPQD_TIER2_FUZZ=1) runs the acceptance-scale
// sweep: >= 200 queries x >= 3 schedules x >= 2 partition counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"
#include "query_gen.h"

namespace rpqd {
namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Asserts the post-run distributed invariants on a query result.
void check_invariants(const QueryResult& result, const std::string& repro) {
  EXPECT_EQ(result.stats.flow_outstanding, 0u)
      << "flow-control credit leak; " << repro;
  EXPECT_EQ(result.stats.flow_overflow_outstanding, 0u)
      << "stale overflow credit bookkeeping; " << repro;
  EXPECT_EQ(result.stats.flow_emergency, 0u)
      << "emergency credit taken; " << repro;
  if (result.profile.enabled) {
    // Profile/stats reconciliation: the tree's leaves must sum exactly
    // to the fabric counters, under every fault schedule — dropped or
    // double-counted attributions show up here.
    const QueryProfile& p = result.profile;
    EXPECT_EQ(p.total_ctx_sent(), result.stats.contexts_sent)
        << "profile ctx_sent != contexts_sent; " << repro;
    EXPECT_EQ(p.total_ctx_received(), result.stats.contexts_sent)
        << "profile ctx_received != contexts_sent; " << repro;
    EXPECT_EQ(p.total_msgs_sent(), result.stats.data_messages)
        << "profile msgs_sent != data_messages; " << repro;
    EXPECT_EQ(p.total_msgs_received(), result.stats.data_messages)
        << "profile msgs_received != data_messages; " << repro;
    EXPECT_EQ(p.total_bytes_sent(), result.stats.bytes_sent)
        << "profile bytes_sent != bytes_sent; " << repro;
    for (StageId s = 0; s < result.stats.stages.size(); ++s) {
      EXPECT_EQ(p.stage_contexts(s), result.stats.stages[s].visits)
          << "profile contexts != stage visits at stage "
          << static_cast<unsigned>(s) << "; " << repro;
      EXPECT_EQ(p.stage_ctx_sent(s), result.stats.stages[s].remote_out)
          << "profile ctx_sent != stage remote_out at stage "
          << static_cast<unsigned>(s) << "; " << repro;
    }
  }
  for (std::size_t g = 0; g < result.stats.rpq.size(); ++g) {
    const RpqStageStats& r = result.stats.rpq[g];
    EXPECT_EQ(r.index_duplicate_entries, 0u)
        << "duplicate reach-index entries in group " << g << "; " << repro;
    if (r.consensus_max_depth.has_value()) {
      EXPECT_EQ(*r.consensus_max_depth, r.max_depth_observed)
          << "consensus depth != max observed depth in group " << g << "; "
          << repro;
    } else {
      // No consensus is only legitimate when the group never entered the
      // distributed depth protocol: a filter eliminated every start
      // vertex, or the RPQ is pure 0-hop (matches close at depth 0
      // without any depth-counter traffic).
      EXPECT_EQ(r.max_depth_observed, 0u)
          << "group " << g << " observed depth without consensus; " << repro;
    }
  }
}

struct HarnessConfig {
  int num_queries = 40;
  std::vector<std::string> schedules;
  std::vector<unsigned> machine_counts;
  bool deep_priority = true;
  std::uint64_t base_seed = 1;
  /// Run through Database::run_with_retry and require the final result
  /// to be clean. Needed for schedules that combine loss with crash-stop
  /// (lossy-chaos): the harness resets the schedule before every query,
  /// so every first run is the crash victim and only the retry is
  /// expected to finish.
  bool retry = false;
};

/// Core sweep: queries x schedules x partition counts vs the oracle.
void run_differential(const HarnessConfig& hc) {
  constexpr int kQueriesPerGraph = 8;
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;

  Graph oracle_graph;
  std::vector<std::unique_ptr<Database>> dbs;
  std::uint64_t gseed = 0;
  for (int q = 0; q < hc.num_queries; ++q) {
    if (q % kQueriesPerGraph == 0) {
      // Fresh graph for every batch; alternate self-loop permission so
      // both shapes are covered.
      synthetic::RandomGraphConfig gcfg;
      gcfg.num_vertices = 24;
      gcfg.num_edges = 55;
      gcfg.num_vertex_labels = 2;
      gcfg.num_edge_labels = 2;
      gcfg.allow_self_loops = (q / kQueriesPerGraph) % 2 == 1;
      gseed = hc.base_seed * 1000 + static_cast<std::uint64_t>(q);
      gcfg.seed = gseed;
      oracle_graph = synthetic::make_random(gcfg);
      dbs.clear();
      for (const unsigned machines : hc.machine_counts) {
        EngineConfig ec;
        ec.workers_per_machine = 2;
        ec.buffers_per_machine = 48;
        ec.buffer_bytes = 256;
        ec.deep_message_priority = hc.deep_priority;
        // Fuzz the tracing layer too: every differential run profiles,
        // and check_invariants reconciles the tree against the stats.
        ec.profile = true;
        dbs.push_back(std::make_unique<Database>(
            synthetic::make_random(gcfg), machines, ec));
      }
    }
    const std::uint64_t qseed =
        hc.base_seed * 100003 + static_cast<std::uint64_t>(q);
    Rng rng(qseed);
    const std::string query = testgen::random_query(rng, qcfg);
    std::uint64_t expected = 0;
    try {
      expected = baseline::reference_evaluate(query, oracle_graph).count;
    } catch (const UnsupportedError&) {
      continue;  // oracle limitation, not an engine bug
    }
    for (const auto& schedule : hc.schedules) {
      for (std::size_t d = 0; d < dbs.size(); ++d) {
        const std::uint64_t fseed = qseed ^ (0x5bf03u * (d + 1));
        Database& db = *dbs[d];
        db.set_fault_schedule(schedule, fseed);
        const std::string repro =
            "repro: qseed=" + std::to_string(qseed) + " gseed=" +
            std::to_string(gseed) + " schedule=" + schedule + " fseed=" +
            std::to_string(fseed) + " machines=" +
            std::to_string(hc.machine_counts[d]) +
            (hc.deep_priority ? "" : " fifo") + " query=" + query;
        if (std::getenv("RPQD_DIFF_TRACE") != nullptr) {
          fprintf(stderr, "[diff] %s\n", repro.c_str());
        }
        const QueryResult result =
            hc.retry ? db.run_with_retry(query) : db.query(query);
        if (hc.retry) {
          EXPECT_FALSE(result.aborted) << repro;
        }
        EXPECT_EQ(result.count, expected) << repro;
        check_invariants(result, repro);
      }
    }
  }
}

TEST(DifferentialFault, GeneratedQueriesAgreeUnderAdversarialSchedules) {
  HarnessConfig hc;
  hc.num_queries = env_int("RPQD_DIFF_QUERIES", 32);
  hc.schedules = {"reorder", "dup-storm", "credit-jitter", "chaos"};
  hc.machine_counts = {2, 3};
  hc.base_seed = 11;
  run_differential(hc);
}

// Lossy-fabric differentials (DESIGN.md §13): under message loss and
// payload corruption the reliable-delivery layer must make every run
// indistinguishable from a reliable fabric — exact oracle counts and all
// distributed invariants, including the profile reconciliation (the
// exactly-once counters must not move under retransmission).
TEST(DifferentialFault, LossSchedulesAgreeWithOracle) {
  HarnessConfig hc;
  hc.num_queries = env_int("RPQD_DIFF_QUERIES", 32) / 2;
  hc.schedules = {"loss", "corrupt-storm", "lossy-chaos"};
  hc.machine_counts = {2, 3};
  hc.base_seed = 71;
  hc.retry = true;  // lossy-chaos arms a crash; the retry must be exact
  run_differential(hc);
}

// FIFO-pickup ablation (set_deep_priority(false)): the §3.2 messaging
// priority is a performance choice, never a correctness one — the full
// differential harness must agree with the oracle in FIFO mode too.
TEST(DifferentialFault, FifoPickupAblationAgreesWithOracle) {
  HarnessConfig hc;
  hc.num_queries = env_int("RPQD_DIFF_QUERIES", 32) / 2;
  hc.schedules = {"none", "reorder", "chaos"};
  hc.machine_counts = {3};
  hc.deep_priority = false;
  hc.base_seed = 23;
  run_differential(hc);
}

// ---- concurrent serving differentials (runtime/scheduler.h) -----------
//
// The serving path's correctness bar: K generated queries in flight at
// once over one database, under every fault schedule, and each must
// produce exactly the result of its solo run (== the oracle count, since
// the solo differential above pins solo == oracle) with every
// distributed invariant intact. Per-query isolation has no tolerance for
// "close": one leaked credit or cross-run index hit shows up here.

struct ConcurrentHarnessConfig {
  int waves = 6;                   // graphs x query batches
  unsigned inflight = 4;           // K concurrent queries per wave
  std::vector<std::string> schedules;
  unsigned machines = 3;
  std::uint64_t base_seed = 41;
};

/// One wave = one random graph + K oracle-checked queries, submitted
/// together under each schedule and awaited against the solo answers.
void run_concurrent_differential(const ConcurrentHarnessConfig& cc) {
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;

  for (int wave = 0; wave < cc.waves; ++wave) {
    synthetic::RandomGraphConfig gcfg;
    gcfg.num_vertices = 24;
    gcfg.num_edges = 55;
    gcfg.num_vertex_labels = 2;
    gcfg.num_edge_labels = 2;
    gcfg.allow_self_loops = wave % 2 == 1;
    const std::uint64_t gseed =
        cc.base_seed * 1000 + static_cast<std::uint64_t>(wave);
    gcfg.seed = gseed;
    const Graph oracle_graph = synthetic::make_random(gcfg);

    // Collect K oracle-supported queries for this wave.
    std::vector<std::string> queries;
    std::vector<std::uint64_t> expected;
    std::uint64_t qseed = cc.base_seed * 100003 +
                          static_cast<std::uint64_t>(wave) * 977;
    while (queries.size() < cc.inflight) {
      Rng rng(++qseed);
      const std::string query = testgen::random_query(rng, qcfg);
      try {
        expected.push_back(baseline::reference_evaluate(query, oracle_graph).count);
      } catch (const UnsupportedError&) {
        continue;
      }
      queries.push_back(query);
    }

    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffers_per_machine = 48;
    ec.buffer_bytes = 256;
    ec.profile = true;  // fuzz the tracing layer concurrently, too
    Database db(synthetic::make_random(gcfg), cc.machines, ec);
    SchedulerConfig sc;
    sc.max_inflight = cc.inflight;
    db.configure_scheduler(sc);

    for (const auto& schedule : cc.schedules) {
      const std::uint64_t fseed = qseed ^ 0x9e3779b9u;
      db.set_fault_schedule(schedule, fseed);
      std::vector<QueryTicket> tickets;
      for (const auto& query : queries) tickets.push_back(db.submit(query));
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        const std::string repro =
            "repro: concurrent wave=" + std::to_string(wave) + " slot=" +
            std::to_string(i) + " gseed=" + std::to_string(gseed) +
            " schedule=" + schedule + " fseed=" + std::to_string(fseed) +
            " machines=" + std::to_string(cc.machines) + " query=" +
            queries[i];
        const QueryResult result = db.await(tickets[i]);
        EXPECT_FALSE(result.aborted) << repro;
        EXPECT_EQ(result.count, expected[i]) << repro;
        check_invariants(result, repro);
      }
    }
  }
}

TEST(DifferentialFault, ConcurrentWavesAgreeUnderAdversarialSchedules) {
  ConcurrentHarnessConfig cc;
  cc.waves = env_int("RPQD_DIFF_QUERIES", 32) / 8;
  cc.schedules = {"none", "reorder", "dup-storm", "credit-jitter"};
  cc.base_seed = 41;
  run_concurrent_differential(cc);
}

// Crash-stop under concurrency: the run counter makes exactly one run of
// the wave the crash victim (fault_run_seq_ is deliberately
// engine-global). The victim — if the crash fires before it terminates
// naturally — aborts with kMachineFailure and still drains to the
// quiescent state; every other in-flight query is untouched and must
// match the oracle exactly.
TEST(DifferentialFault, ConcurrentCrashStopHasAtMostOneVictim) {
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;

  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 24;
  gcfg.num_edges = 55;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.seed = 4242;
  const Graph oracle_graph = synthetic::make_random(gcfg);

  std::vector<std::string> queries;
  std::vector<std::uint64_t> expected;
  std::uint64_t qseed = 515151;
  while (queries.size() < 4) {
    Rng rng(++qseed);
    const std::string query = testgen::random_query(rng, qcfg);
    try {
      expected.push_back(baseline::reference_evaluate(query, oracle_graph).count);
    } catch (const UnsupportedError&) {
      continue;
    }
    queries.push_back(query);
  }

  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  Database db(synthetic::make_random(gcfg), 3, ec);
  SchedulerConfig sc;
  sc.max_inflight = 4;
  db.configure_scheduler(sc);

  for (std::uint64_t fseed : {7u, 77u, 777u}) {
    db.set_fault_schedule("crash-stop", fseed);
    std::vector<QueryTicket> tickets;
    for (const auto& query : queries) tickets.push_back(db.submit(query));
    unsigned victims = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const std::string repro = "repro: crash-stop fseed=" +
                                std::to_string(fseed) + " slot=" +
                                std::to_string(i) + " query=" + queries[i];
      const QueryResult result = db.await(tickets[i]);
      check_invariants(result, repro);
      if (result.aborted) {
        ++victims;
        EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure) << repro;
      } else {
        EXPECT_EQ(result.count, expected[i]) << repro;
      }
    }
    // The crash schedule arms run index 0 only; at most the one victim
    // (zero when it terminated before the crash tick).
    EXPECT_LE(victims, 1u) << "crash-stop fseed=" << fseed;
  }
}

// ---- cross-query cache differentials (DESIGN.md §11) ------------------
//
// The cache layer's correctness bar: every fuzzed query must produce the
// oracle count cache-COLD (first ask on an empty cache), cache-WARM
// (re-ask seeded from the harvest), warm UNDER an adversarial fault
// schedule, and warm after every machine's cache has been adversarially
// POISONED (all stored depths overwritten). A stale or poisoned cache
// entry may only ever move hit counters, never a result — seeds enter
// the run as inert sentinels (rpq/reach_cache.h). The warm runs' emit /
// eliminate / duplicate accounting must be bit-identical to cold.

struct CacheHarnessConfig {
  int num_queries = 12;
  std::vector<std::string> schedules;  // applied to the faulted warm run
  unsigned machines = 3;
  std::uint64_t base_seed = 61;
};

void run_cache_differential(const CacheHarnessConfig& hc) {
  constexpr int kQueriesPerGraph = 4;
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;

  Graph oracle_graph;
  std::unique_ptr<Database> db;
  std::uint64_t gseed = 0;
  for (int q = 0; q < hc.num_queries; ++q) {
    if (q % kQueriesPerGraph == 0) {
      synthetic::RandomGraphConfig gcfg;
      gcfg.num_vertices = 24;
      gcfg.num_edges = 55;
      gcfg.num_vertex_labels = 2;
      gcfg.num_edge_labels = 2;
      gcfg.allow_self_loops = (q / kQueriesPerGraph) % 2 == 1;
      gseed = hc.base_seed * 1000 + static_cast<std::uint64_t>(q);
      gcfg.seed = gseed;
      oracle_graph = synthetic::make_random(gcfg);
      EngineConfig ec;
      ec.workers_per_machine = 2;
      ec.buffers_per_machine = 48;
      ec.buffer_bytes = 256;
      ec.profile = true;
      ec.reach_cache_max_bytes = 1 << 20;
      db = std::make_unique<Database>(synthetic::make_random(gcfg),
                                      hc.machines, ec);
    }
    const std::uint64_t qseed =
        hc.base_seed * 100003 + static_cast<std::uint64_t>(q);
    Rng rng(qseed);
    const std::string query = testgen::random_query(rng, qcfg);
    std::uint64_t expected = 0;
    try {
      expected = baseline::reference_evaluate(query, oracle_graph).count;
    } catch (const UnsupportedError&) {
      continue;  // oracle limitation, not an engine bug
    }
    const std::string repro = "repro: cache qseed=" + std::to_string(qseed) +
                              " gseed=" + std::to_string(gseed) +
                              " machines=" + std::to_string(hc.machines) +
                              " query=" + query;

    // Cold (whatever earlier queries cached belongs to other automata;
    // an accidental same-automaton hit is exactly what must be benign).
    db->set_fault_schedule("none", 0);
    const QueryResult cold = db->query(query);
    EXPECT_EQ(cold.count, expected) << "cold; " << repro;
    check_invariants(cold, repro);

    // Warm, fault-free. Per-depth exploration accounting is NOT compared
    // here: for automata with re-exploration (shallower CAS-min revisits)
    // the depth attribution depends on message arrival order, which varies
    // run to run on random graphs with or without the cache (the very
    // first query on a fresh Database already interleaves differently
    // from steady state). Bit-identical cold/warm accounting is asserted
    // only where exploration is order-free — the deterministic chain in
    // CrossQueryCache.WarmRunSeedsAndAgreesWithCold. The coherence bar
    // for arbitrary graphs is: exact oracle count + stats invariants,
    // cold, warm, faulted, and poisoned alike.
    const QueryResult warm = db->query(query);
    EXPECT_EQ(warm.count, expected) << "warm; " << repro;
    check_invariants(warm, repro);
    ASSERT_EQ(warm.stats.rpq.size(), cold.stats.rpq.size()) << repro;

    // Warm under each adversarial schedule.
    for (const auto& schedule : hc.schedules) {
      const std::uint64_t fseed = qseed ^ 0x7f4a7u;
      db->set_fault_schedule(schedule, fseed);
      const QueryResult faulted = db->query(query);
      EXPECT_EQ(faulted.count, expected)
          << "warm under " << schedule << " fseed=" << fseed << "; " << repro;
      check_invariants(faulted, repro);
    }

    // Poison sweep: overwrite every cached depth, then re-ask. Seeds are
    // depth-blind sentinels, so the answer cannot move.
    for (unsigned m = 0; m < db->num_machines(); ++m) {
      if (ReachCache* cache = db->reach_cache(m)) cache->poison_depths(1);
    }
    db->set_fault_schedule("none", 0);
    const QueryResult poisoned = db->query(query);
    EXPECT_EQ(poisoned.count, expected) << "poisoned; " << repro;
    check_invariants(poisoned, repro);
  }
}

TEST(DifferentialFault, CacheColdWarmPoisonAgreeUnderFaults) {
  CacheHarnessConfig hc;
  hc.num_queries = env_int("RPQD_DIFF_QUERIES", 32) / 2;
  hc.schedules = {"reorder", "chaos"};
  run_cache_differential(hc);
}

// Crash-stop x cache: the victim run aborts and must persist NOTHING
// into the cross-query cache (complete-at-depth or not at all — we
// persist only from clean drains); survivor re-asks stay exact.
TEST(DifferentialFault, CacheCrashStopNeverPersistsPartialFacts) {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  ec.reach_cache_max_bytes = 1 << 20;
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)";
  for (std::uint64_t fseed : {3u, 19u, 101u}) {
    Database db(synthetic::make_chain(48), 3, ec);
    const std::uint64_t expected =
        baseline::reference_evaluate(query, db.graph()).count;
    db.set_fault_schedule("crash-stop", fseed);
    const QueryResult first = db.query(query);
    if (first.aborted) {
      EXPECT_EQ(db.reach_cache_stats().inserts, 0u)
          << "aborted run persisted partial facts; fseed=" << fseed;
      EXPECT_EQ(db.reach_cache_stats().entries, 0u) << "fseed=" << fseed;
    } else {
      EXPECT_EQ(first.count, expected) << "fseed=" << fseed;
    }
    // The re-ask (crash schedule arms run 0 only) must be exact, warm or
    // cold alike.
    const QueryResult second = db.query(query);
    EXPECT_FALSE(second.aborted) << "fseed=" << fseed;
    EXPECT_EQ(second.count, expected) << "fseed=" << fseed;
  }
}

// Acceptance-scale cache sweep, registered under `tier2-cache`.
TEST(DifferentialFault, Tier2CacheColdWarmPoison) {
  if (std::getenv("RPQD_TIER2_CACHE") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_CACHE=1 (or run ctest -L tier2-cache)";
  }
  CacheHarnessConfig hc;
  hc.num_queries = 80;
  hc.schedules = {"none",  "reorder", "dup-storm",
                  "credit-jitter", "chaos", "loss", "corrupt-storm"};
  hc.base_seed = 67;
  run_cache_differential(hc);
}

// Acceptance-scale lossy-fabric sweep, registered under `tier2-loss`:
// >= 200 queries x the three lossy schedules x three partition counts,
// every run exact against the oracle with no hangs (the ctest TIMEOUT is
// the hang detector — a lost credit return or termination status that
// the transport fails to recover wedges the run).
TEST(DifferentialFault, Tier2LossSweep) {
  if (std::getenv("RPQD_TIER2_LOSS") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_LOSS=1 (or run ctest -L tier2-loss)";
  }
  HarnessConfig hc;
  hc.num_queries = std::max(200, env_int("RPQD_DIFF_QUERIES", 200));
  hc.schedules = {"loss", "corrupt-storm", "lossy-chaos"};
  hc.machine_counts = {2, 3, 5};
  hc.base_seed = 73;
  hc.retry = true;
  run_differential(hc);
}

// Acceptance-scale concurrent sweep: every schedule (including
// crash-free ones at higher K), registered under `tier2-concurrent`.
TEST(DifferentialFault, Tier2ConcurrentWaves) {
  if (std::getenv("RPQD_TIER2_CONCURRENT") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_CONCURRENT=1 (or run ctest -L "
                    "tier2-concurrent)";
  }
  ConcurrentHarnessConfig cc;
  cc.waves = 12;
  cc.inflight = 6;
  cc.schedules = {"none",          "reorder", "dup-storm",
                  "credit-jitter", "chaos",   "slow-machine"};
  cc.machines = 3;
  cc.base_seed = 47;
  run_concurrent_differential(cc);
}

// Acceptance-scale sweep, run under the `tier2-fuzz` ctest label (see
// tests/CMakeLists.txt) so plain tier-1 ctest stays fast. ASan/TSan
// builds run it via the tier2-fuzz-* CMake test presets.
TEST(DifferentialFault, Tier2Exhaustive) {
  if (std::getenv("RPQD_TIER2_FUZZ") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_FUZZ=1 (or run ctest -L tier2-fuzz)";
  }
  HarnessConfig hc;
  hc.num_queries = std::max(200, env_int("RPQD_DIFF_QUERIES", 200));
  hc.schedules = {"none", "reorder", "dup-storm", "credit-jitter",
                  "slow-machine", "chaos"};
  hc.machine_counts = {2, 3, 5};
  hc.base_seed = 31;
  run_differential(hc);
}

}  // namespace
}  // namespace rpqd
