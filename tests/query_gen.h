// Random PGQL query generator shared by the fuzz tests and the
// fault-injection differential harness.
//
// Generates valid queries over the synthetic random graphs' label space
// (vertex labels L0.., edge labels e0.., integer properties id/weight):
// label alternation, every quantifier shape (?, {n}, {n,m}, {n,}, *, +)
// including 0-hop windows, fixed hops, optional conjunction patterns
// reusing bound variables, and single-variable WHERE conjuncts. Every
// query is a deterministic function of the Rng state, so a (seed, index)
// pair replays the exact query.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rpqd::testgen {

struct QueryGenConfig {
  unsigned num_vertex_labels = 2;
  unsigned num_edge_labels = 2;
  unsigned max_hops = 2;        // hops in the main linear pattern
  double conjunction_prob = 0;  // chance of a second pattern over v0..vN
  double where_prob = 0.25;     // per-variable filter probability
  bool allow_unbounded = true;  // permit *, +, {n,} quantifiers
};

inline std::string random_vertex(Rng& rng, int index, unsigned num_labels) {
  std::ostringstream out;
  out << "(v" << index;
  if (rng.next_bool(0.4)) {
    out << ":L" << rng.next_below(num_labels);
    if (rng.next_bool(0.2)) out << "|L" << rng.next_below(num_labels);
  }
  out << ")";
  return out.str();
}

inline std::string random_quantifier(Rng& rng, bool allow_unbounded) {
  switch (rng.next_below(allow_unbounded ? 7 : 4)) {
    case 0: return "?";
    case 1: {
      const auto n = rng.next_below(3);
      return "{" + std::to_string(n) + "}";
    }
    case 2:
    case 3: {
      // {n,m} windows, deliberately including the 0-hop edge {0,m}.
      const auto n = rng.next_below(3);
      const auto m = n + rng.next_below(3);
      return "{" + std::to_string(n) + "," + std::to_string(m) + "}";
    }
    case 4: return "*";
    case 5: return "+";
    default: {
      const auto n = 1 + rng.next_below(2);
      return "{" + std::to_string(n) + ",}";
    }
  }
}

inline std::string random_edge(Rng& rng, unsigned num_elabels) {
  std::ostringstream out;
  const bool rpq = rng.next_bool(0.6);
  const unsigned dir = static_cast<unsigned>(rng.next_below(3));
  std::string label = "e" + std::to_string(rng.next_below(num_elabels));
  if (rpq && rng.next_bool(0.25)) {
    label += "|e" + std::to_string(rng.next_below(num_elabels));
  }
  if (rpq) {
    // An *undirected unbounded* RPQ over a dense component is the DFT
    // worst case the paper's §5 concedes to BFT engines (documented in
    // DESIGN.md); chaining several would make the fuzz case explode
    // combinatorially, so undirected segments stay bounded here.
    const std::string body =
        ":" + label + random_quantifier(rng, /*allow_unbounded=*/dir != 2);
    if (dir == 0) out << " -/" << body << "/-> ";
    if (dir == 1) out << " <-/" << body << "/- ";
    if (dir == 2) out << " -/" << body << "/- ";
  } else {
    const std::string body = "[:" + label + "]";
    if (dir == 0) out << " -" << body << "-> ";
    if (dir == 1) out << " <-" << body << "- ";
    if (dir == 2) out << " -" << body << "- ";
  }
  return out.str();
}

inline std::string random_query(Rng& rng, const QueryGenConfig& cfg) {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM MATCH ";
  const int hops =
      1 + static_cast<int>(rng.next_below(std::max(1u, cfg.max_hops)));
  out << random_vertex(rng, 0, cfg.num_vertex_labels);
  for (int i = 0; i < hops; ++i) {
    out << random_edge(rng, cfg.num_edge_labels)
        << random_vertex(rng, i + 1, cfg.num_vertex_labels);
  }
  if (rng.next_bool(cfg.conjunction_prob) && hops >= 1) {
    // Conjunction pattern between two already-bound variables: a fixed
    // hop or a *bounded* RPQ (an unbounded cycle-closing RPQ on a dense
    // graph explodes the reference oracle, not the engine).
    const int from = static_cast<int>(rng.next_below(hops + 1));
    int to = static_cast<int>(rng.next_below(hops + 1));
    if (to == from) to = (from + 1) % (hops + 1);
    out << ", (v" << from << ")";
    const std::string label =
        "e" + std::to_string(rng.next_below(cfg.num_edge_labels));
    if (rng.next_bool(0.5)) {
      out << " -[:" << label << "]-> ";
    } else {
      const auto n = rng.next_below(2);
      out << " -/:" << label << "{" << n << "," << (n + rng.next_below(3))
          << "}/-> ";
    }
    out << "(v" << to << ")";
  }
  // Optional single-variable WHERE conjuncts.
  std::vector<std::string> conjuncts;
  for (int v = 0; v <= hops; ++v) {
    if (rng.next_bool(cfg.where_prob)) {
      const char* op = rng.next_bool(0.5) ? "<=" : ">";
      conjuncts.push_back("v" + std::to_string(v) + ".weight " + op + " " +
                          std::to_string(rng.next_int(10, 90)));
    }
  }
  if (rng.next_bool(0.2)) {
    conjuncts.push_back("ID(v0) = " + std::to_string(rng.next_below(30)));
  }
  if (!conjuncts.empty()) {
    out << " WHERE " << conjuncts[0];
    for (std::size_t i = 1; i < conjuncts.size(); ++i) {
      out << " AND " << conjuncts[i];
    }
  }
  return out.str();
}

}  // namespace rpqd::testgen
