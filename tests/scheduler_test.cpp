// Concurrent multi-query serving: admission control, typed rejections,
// per-query credit partitions, budget slicing, targeted cancellation,
// and the async submit/await lifecycle (runtime/scheduler.h).
//
// Determinism notes: admission outcomes that depend on a slot staying
// busy are pinned with a "blocker" query — an effectively unbounded
// exploration (index off, generous depth valve) that only finishes via
// cooperative cancel — so the tests never race a fast query's natural
// completion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

constexpr const char* kChainAll =
    "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";
constexpr const char* kBlocker =
    "SELECT COUNT(*) FROM MATCH (a) -/:edge*/-> (b)";

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.workers_per_machine = 1;
  cfg.buffers_per_machine = 64;
  cfg.buffer_bytes = 256;
  return cfg;
}

/// A Database whose kBlocker query explores a complete graph with the
/// reachability index off: astronomically more work than any test waits
/// for, so an admitted blocker holds its slot until cancelled.
Database blocker_db(unsigned machines = 2) {
  EngineConfig cfg = small_config();
  cfg.use_reachability_index = false;
  cfg.max_exploration_depth = 64;
  return Database(synthetic::make_complete(10), machines, cfg);
}

TEST(Scheduler, SubmitAwaitMatchesBlockingRun) {
  Database db(synthetic::make_chain(12), 3, small_config());
  const QueryResult blocking = db.query(kChainAll);

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(db.submit(kChainAll));
  for (const auto& t : tickets) {
    ASSERT_TRUE(t.valid());
    EXPECT_NE(t.admission(), AdmissionOutcome::kRejected);
    const QueryResult r = db.await(t);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.count, blocking.count);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
    // Default scheduler: 4 slots, equal credit partitions.
    EXPECT_DOUBLE_EQ(r.stats.credit_partition_share, 0.25);
    EXPECT_GE(r.stats.queue_ms, 0.0);
  }
  const SchedulerStats stats = db.scheduler_stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected(), 0u);
  EXPECT_GE(stats.peak_inflight, 1u);
  // await is repeatable.
  EXPECT_EQ(db.await(tickets[0]).count, blocking.count);
}

TEST(Scheduler, QueueFullRejectsWithTypedReason) {
  Database db = blocker_db();
  SchedulerConfig sc;
  sc.max_inflight = 1;
  sc.max_queued = 1;
  db.configure_scheduler(sc);

  QueryTicket blocker = db.submit(kBlocker);
  QueryTicket waiting = db.submit(kBlocker);
  QueryTicket rejected = db.submit(kBlocker);

  EXPECT_NE(blocker.admission(), AdmissionOutcome::kRejected);
  EXPECT_NE(waiting.admission(), AdmissionOutcome::kRejected);
  ASSERT_EQ(rejected.admission(), AdmissionOutcome::kRejected);
  EXPECT_EQ(rejected.reject_reason(), AdmissionReject::kQueueFull);

  // The rejected query never ran; its result is typed and immediate.
  const QueryResult rr = db.await(rejected);
  EXPECT_TRUE(rr.aborted);
  EXPECT_EQ(rr.abort_reason, AbortReason::kAdmissionReject);
  EXPECT_EQ(rr.count, 0u);

  // Unwind: cancel both live submissions; everything drains clean.
  EXPECT_TRUE(db.cancel(waiting));
  EXPECT_TRUE(db.cancel(blocker));
  for (const auto* t : {&blocker, &waiting}) {
    const QueryResult r = db.await(*t);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.abort_reason, AbortReason::kUserCancel);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
  }
  const SchedulerStats stats = db.scheduler_stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  // The waiting query was cancelled in the queue or (if dispatch won the
  // race) as a live run; either way the books balance.
  EXPECT_EQ(stats.completed + stats.cancelled_while_queued, 2u);

  // The database stays fully reusable after the wave.
  Database fresh = blocker_db();
  EXPECT_EQ(db.query(kChainAll).count, fresh.query(kChainAll).count);
}

TEST(Scheduler, ImpossibleBudgetRejectsEverySubmission) {
  // Per-query budget 100 can never fit under a global ceiling of 50:
  // zero slots, typed rejection before anything runs.
  EngineConfig cfg = small_config();
  cfg.max_live_contexts = 100;
  Database db(synthetic::make_chain(8), 2, cfg);
  SchedulerConfig sc;
  sc.global_max_live_contexts = 50;
  db.configure_scheduler(sc);

  EXPECT_EQ(db.scheduler_slots(), 0u);
  QueryTicket t = db.submit(kChainAll);
  ASSERT_EQ(t.admission(), AdmissionOutcome::kRejected);
  EXPECT_EQ(t.reject_reason(), AdmissionReject::kContextBudget);
  EXPECT_TRUE(db.await(t).aborted);
  EXPECT_EQ(db.scheduler_stats().rejected_context_budget, 1u);
}

TEST(Scheduler, ImpossibleReachIndexBudgetRejects) {
  EngineConfig cfg = small_config();
  cfg.reach_index_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(8), 2, cfg);
  SchedulerConfig sc;
  sc.global_reach_index_max_bytes = 1 << 10;
  db.configure_scheduler(sc);
  QueryTicket t = db.submit(kChainAll);
  ASSERT_EQ(t.admission(), AdmissionOutcome::kRejected);
  EXPECT_EQ(t.reject_reason(), AdmissionReject::kReachIndexBudget);
}

TEST(Scheduler, GlobalBudgetCapsSlotsAndPartitions) {
  // 4 requested slots, but only two 100-context queries fit under a
  // global ceiling of 250: slots = 2, credit partitions = 1/2 each.
  EngineConfig cfg = small_config();
  cfg.max_live_contexts = 100;
  Database db(synthetic::make_chain(10), 2, cfg);
  SchedulerConfig sc;
  sc.max_inflight = 4;
  sc.global_max_live_contexts = 250;
  db.configure_scheduler(sc);

  EXPECT_EQ(db.scheduler_slots(), 2u);
  QueryTicket t = db.submit(kChainAll);
  const QueryResult r = db.await(t);
  EXPECT_FALSE(r.aborted);
  EXPECT_DOUBLE_EQ(r.stats.credit_partition_share, 0.5);
}

TEST(Scheduler, GlobalBudgetSliceTripsContextAbort) {
  // No per-query budget on the engine: each of the 2 slots runs under an
  // equal slice (here 1 live context), so a traversal that stacks frames
  // trips the sliced budget as a clean per-query abort.
  Database db(synthetic::make_chain(12), 2, small_config());
  SchedulerConfig sc;
  sc.max_inflight = 2;
  sc.global_max_live_contexts = 2;  // slice = 1 per query
  db.configure_scheduler(sc);

  const QueryResult r = db.await(db.submit(kChainAll));
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, AbortReason::kContextBudget);
  EXPECT_EQ(r.stats.flow_outstanding, 0u);
  EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
}

TEST(Scheduler, FairnessKnobAndPartitionAblation) {
  Database db(synthetic::make_chain(10), 2, small_config());
  {
    SchedulerConfig sc;
    sc.max_inflight = 8;
    sc.min_credit_share = 0.5;  // fairness floor beats the 1/8 split
    db.configure_scheduler(sc);
    const QueryResult r = db.await(db.submit(kChainAll));
    EXPECT_DOUBLE_EQ(r.stats.credit_partition_share, 0.5);
  }
  {
    SchedulerConfig sc;
    sc.max_inflight = 8;
    sc.partition_credits = false;  // ablation: whole allowance per query
    db.configure_scheduler(sc);
    const QueryResult r = db.await(db.submit(kChainAll));
    EXPECT_DOUBLE_EQ(r.stats.credit_partition_share, 1.0);
  }
}

TEST(Scheduler, ThinPartitionStaysLiveAndCorrect) {
  // 16 buffers split 8 ways is far below one buffer per slot; the §3.3
  // progress floors (2 per slot + 1 shared) keep every partition live,
  // and correctness is unaffected — only throughput may degrade.
  EngineConfig cfg = small_config();
  cfg.buffers_per_machine = 16;
  Database db(synthetic::make_chain(14), 3, cfg);
  const QueryResult blocking = db.query(kChainAll);
  SchedulerConfig sc;
  sc.max_inflight = 8;
  db.configure_scheduler(sc);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 8; ++i) tickets.push_back(db.submit(kChainAll));
  for (const auto& t : tickets) {
    const QueryResult r = db.await(t);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.count, blocking.count);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_emergency, 0u);
  }
}

TEST(Scheduler, ProfilePrefixOnSubmit) {
  Database db(synthetic::make_chain(10), 2, small_config());
  const QueryResult r =
      db.await(db.submit(std::string("PROFILE ") + kChainAll));
  ASSERT_TRUE(r.profile.enabled);
  EXPECT_EQ(r.profile.total_ctx_sent(), r.stats.contexts_sent);
  EXPECT_FALSE(db.await(db.submit(kChainAll)).profile.enabled);
}

TEST(Scheduler, CancelBeforeDispatchNeverRuns) {
  Database db = blocker_db();
  SchedulerConfig sc;
  sc.max_inflight = 1;
  sc.max_queued = 4;
  db.configure_scheduler(sc);
  QueryTicket blocker = db.submit(kBlocker);
  QueryTicket queued = db.submit(kChainAll);
  EXPECT_TRUE(db.cancel(queued));
  const QueryResult r = db.await(queued);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, AbortReason::kUserCancel);
  // Never dispatched (or halted on arrival): no traversal work happened.
  EXPECT_EQ(r.count, 0u);
  db.cancel(blocker);
  EXPECT_TRUE(db.await(blocker).aborted);
}

TEST(Scheduler, CancelAllCoversQueuedAndRunning) {
  Database db = blocker_db();
  SchedulerConfig sc;
  sc.max_inflight = 2;
  sc.max_queued = 4;
  db.configure_scheduler(sc);
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(db.submit(kBlocker));
  EXPECT_GE(db.cancel_all(), 2u);
  for (const auto& t : tickets) {
    const QueryResult r = db.await(t);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
  }
}

TEST(Scheduler, ReconfigureCancelsPreviousGeneration) {
  Database db = blocker_db();
  SchedulerConfig sc;
  sc.max_inflight = 1;
  db.configure_scheduler(sc);
  QueryTicket blocker = db.submit(kBlocker);
  // Replacing the scheduler cooperatively aborts the old generation's
  // in-flight runs; the ticket stays redeemable.
  db.configure_scheduler(SchedulerConfig{});
  const QueryResult r = db.await(blocker);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, AbortReason::kUserCancel);
  // The new generation serves normally.
  EXPECT_FALSE(db.await(db.submit(kChainAll)).aborted);
}

TEST(Scheduler, ParseErrorsThrowLikeBlockingPath) {
  Database db(synthetic::make_chain(6), 2, small_config());
  EXPECT_THROW(db.submit("SELECT FROM NONSENSE"), QueryError);
  // AdmissionReject round-trips through to_string for diagnostics.
  EXPECT_STREQ(to_string(AdmissionReject::kQueueFull), "queue-full");
  EXPECT_STREQ(to_string(AdmissionOutcome::kQueued), "queued");
  EXPECT_STREQ(to_string(AbortReason::kAdmissionReject), "admission-reject");
}

}  // namespace
}  // namespace rpqd
