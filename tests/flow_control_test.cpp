// Tests for credit-based flow control (§3.3): partitioning, the RPQ
// dedicated/shared/overflow credit classes, blocking accounting, and
// credit conservation.
#include "common/error.h"
#include <gtest/gtest.h>

#include "net/flow_control.h"

namespace rpqd {
namespace {

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.buffers_per_machine = 16;
  cfg.rpq_preallocated_depth = 2;
  cfg.rpq_shared_credits_per_stage = 2;
  cfg.rpq_overflow_credits_per_depth = 1;
  return cfg;
}

TEST(FlowControl, FixedStageCreditsExhaust) {
  // 16 buffers / (2 stages * 2 machines) = 4 credits per slot.
  FlowControl fc(small_config(), 2, {false, false});
  for (int i = 0; i < 4; ++i) {
    const auto c = fc.try_acquire(1, 0, 0);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, CreditClass::kFixed);
  }
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());
  EXPECT_EQ(fc.stats().blocked, 1u);
  // Other (stage, machine) slots are unaffected.
  EXPECT_TRUE(fc.try_acquire(0, 0, 0).has_value());
  EXPECT_TRUE(fc.try_acquire(1, 1, 0).has_value());
}

TEST(FlowControl, ReleaseRestoresCredit) {
  FlowControl fc(small_config(), 2, {false});
  for (int round = 0; round < 3; ++round) {
    std::vector<CreditClass> held;
    while (const auto c = fc.try_acquire(0, 0, 0)) held.push_back(*c);
    EXPECT_FALSE(held.empty());
    for (const auto c : held) fc.release(0, 0, 0, c);
  }
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(FlowControl, MinimumTwoCreditsPerSlot) {
  EngineConfig cfg = small_config();
  cfg.buffers_per_machine = 1;  // would be < 2 per slot: clamped up
  FlowControl fc(cfg, 4, {false, false, false});
  EXPECT_TRUE(fc.try_acquire(3, 2, 0).has_value());
  EXPECT_TRUE(fc.try_acquire(3, 2, 0).has_value());
}

TEST(FlowControl, RpqDedicatedPerDepth) {
  // RPQ stage: window depth < 2, per-depth = max(1, 4/2) = 2.
  FlowControl fc(small_config(), 2, {true, false});
  EXPECT_EQ(*fc.try_acquire(0, 0, 0), CreditClass::kRpqDedicated);
  EXPECT_EQ(*fc.try_acquire(0, 0, 0), CreditClass::kRpqDedicated);
  // Depth 0 dedicated exhausted; falls to shared.
  EXPECT_EQ(*fc.try_acquire(0, 0, 0), CreditClass::kRpqShared);
  // Depth 1 still has dedicated credits.
  EXPECT_EQ(*fc.try_acquire(0, 0, 1), CreditClass::kRpqDedicated);
}

TEST(FlowControl, RpqDeepDepthsUseSharedThenOverflow) {
  FlowControl fc(small_config(), 1, {true});
  // Depth 7 is beyond the window: shared first (2), then one overflow
  // per depth, then blocked.
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqOverflow);
  EXPECT_FALSE(fc.try_acquire(0, 0, 7).has_value());
  // A different deep depth still gets its own overflow credit — this is
  // the §3.3 livelock break.
  EXPECT_EQ(*fc.try_acquire(0, 0, 8), CreditClass::kRpqOverflow);
  EXPECT_EQ(fc.stats().overflow_used, 2u);
}

TEST(FlowControl, OverflowReleaseReenables) {
  FlowControl fc(small_config(), 1, {true});
  fc.try_acquire(0, 0, 9);  // shared
  fc.try_acquire(0, 0, 9);  // shared
  EXPECT_EQ(*fc.try_acquire(0, 0, 9), CreditClass::kRpqOverflow);
  EXPECT_FALSE(fc.try_acquire(0, 0, 9).has_value());
  fc.release(0, 0, 9, CreditClass::kRpqOverflow);
  EXPECT_EQ(*fc.try_acquire(0, 0, 9), CreditClass::kRpqOverflow);
}

TEST(FlowControl, OverflowDisabledWhenConfiguredZero) {
  EngineConfig cfg = small_config();
  cfg.rpq_overflow_credits_per_depth = 0;
  FlowControl fc(cfg, 1, {true});
  fc.try_acquire(0, 0, 9);
  fc.try_acquire(0, 0, 9);
  EXPECT_FALSE(fc.try_acquire(0, 0, 9).has_value());
}

TEST(FlowControl, SharedReleaseRoundTrip) {
  FlowControl fc(small_config(), 1, {true});
  const auto a = *fc.try_acquire(0, 0, 5);
  EXPECT_EQ(a, CreditClass::kRpqShared);
  fc.release(0, 0, 5, a);
  EXPECT_EQ(fc.outstanding(), 0u);
  EXPECT_EQ(*fc.try_acquire(0, 0, 5), CreditClass::kRpqShared);
}

TEST(FlowControl, EmergencyIsCountedAndUnbounded) {
  FlowControl fc(small_config(), 1, {false});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fc.acquire_emergency(), CreditClass::kEmergency);
  }
  EXPECT_EQ(fc.stats().emergency_used, 5u);
  for (int i = 0; i < 5; ++i) fc.release(0, 0, 0, CreditClass::kEmergency);
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(FlowControl, ReleaseWithoutAcquireThrows) {
  FlowControl fc(small_config(), 1, {false});
  EXPECT_THROW(fc.release(0, 0, 0, CreditClass::kFixed), EngineError);
}

TEST(FlowControl, BlockedCounterAccumulates) {
  FlowControl fc(small_config(), 2, {false});
  while (fc.try_acquire(0, 0, 0)) {
  }
  for (int i = 0; i < 9; ++i) fc.try_acquire(0, 0, 0);
  EXPECT_EQ(fc.stats().blocked, 10u);
}

TEST(FlowControl, OverflowOutstandingTracksInFlightDepths) {
  FlowControl fc(small_config(), 1, {true});
  EXPECT_EQ(fc.overflow_outstanding(), 0u);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(fc.overflow_outstanding(), 0u);  // shared grants don't count
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqOverflow);
  EXPECT_EQ(*fc.try_acquire(0, 0, 8), CreditClass::kRpqOverflow);
  EXPECT_EQ(fc.overflow_outstanding(), 2u);
  fc.release(0, 0, 7, CreditClass::kRpqOverflow);
  EXPECT_EQ(fc.overflow_outstanding(), 1u);
  fc.release(0, 0, 8, CreditClass::kRpqOverflow);
  EXPECT_EQ(fc.overflow_outstanding(), 0u);
  // Releasing the shared credits never touches the overflow books, and
  // the books stay empty once everything is returned.
  fc.release(0, 0, 7, CreditClass::kRpqShared);
  fc.release(0, 0, 7, CreditClass::kRpqShared);
  EXPECT_EQ(fc.overflow_outstanding(), 0u);
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(FlowControl, FastPathCountsLockFreeGrants) {
  // Dedicated and shared grants never take the mutex; only the overflow
  // grant goes through the slow path.
  FlowControl fc(small_config(), 1, {true});
  EXPECT_EQ(*fc.try_acquire(0, 0, 0), CreditClass::kRpqDedicated);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqShared);
  EXPECT_EQ(*fc.try_acquire(0, 0, 7), CreditClass::kRpqOverflow);
  const auto stats = fc.stats();
  EXPECT_EQ(stats.acquired, 4u);
  EXPECT_EQ(stats.fast_path, 3u);  // overflow is the one slow-path grant
}

}  // namespace
}  // namespace rpqd
