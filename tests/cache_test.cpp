// Cross-query cache layer (DESIGN.md §11): unit tests for PGQL
// normalization, the canonical automaton-group cache key, the
// per-machine reachability cache (LRU byte budget, epoch invalidation),
// the single-flight result cache, and the Database-level wiring
// (seed/harvest counters, PROFILE-vs-plain keying, abort no-persist,
// eviction pressure) — plus the cache regression corpus replay
// (tests/corpus/cache/*.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/synthetic.h"
#include "pgql/normalize.h"
#include "pgql/parser.h"
#include "plan/planner.h"
#include "rpq/cache_key.h"
#include "rpq/reach_cache.h"
#include "runtime/result_cache.h"

#ifndef RPQD_CACHE_CORPUS_DIR
#error "RPQD_CACHE_CORPUS_DIR must point at tests/corpus/cache"
#endif

namespace rpqd {
namespace {

// ---- PGQL normalization (pgql/normalize.h) ------------------------------

TEST(Normalize, CaseAndWhitespaceFoldToOneForm) {
  const auto a = pgql::normalize_query(
      "select   count(*)\n from\tmatch (a:L0) -/:e0*/-> (b)");
  const auto b = pgql::normalize_query(
      "SELECT COUNT(*) FROM MATCH (a:L0) -/:e0*/-> (b)");
  EXPECT_EQ(a.text, b.text);
  EXPECT_FALSE(a.profile);
  EXPECT_FALSE(b.profile);
}

TEST(Normalize, ProfilePrefixStrippedIntoFlag) {
  const auto plain =
      pgql::normalize_query("SELECT COUNT(*) FROM MATCH (a:L0)");
  const auto profiled =
      pgql::normalize_query("profile SELECT COUNT(*) FROM MATCH (a:L0)");
  EXPECT_TRUE(profiled.profile);
  EXPECT_FALSE(plain.profile);
  // Same normalized text: PROFILE is a result-cache key FLAG, not text.
  EXPECT_EQ(plain.text, profiled.text);
}

TEST(Normalize, IdentifierCasePreservedAfterColonAndDot) {
  // Labels and properties are case-sensitive catalog names; a label or
  // property spelled like a keyword must never be folded (tokens are
  // single-space separated in the canonical rendering).
  const auto q = pgql::normalize_query(
      "select count(*) from match (a:match) where a.count = 1");
  EXPECT_NE(q.text.find(": match"), std::string::npos) << q.text;
  EXPECT_NE(q.text.find(". count"), std::string::npos) << q.text;
  // The real keywords did fold.
  EXPECT_EQ(q.text.find("select"), std::string::npos) << q.text;
  EXPECT_NE(q.text.find("SELECT"), std::string::npos) << q.text;
}

TEST(Normalize, UnlexableTextFallsBackToTrimmedRaw) {
  // An unterminated string literal fails the lexer; normalization must
  // not throw and keys on the trimmed raw text (the engine rejects it
  // identically on every ask, so the key is still sound).
  const auto q = pgql::normalize_query("   SELECT 'unterminated   ");
  EXPECT_FALSE(q.profile);
  EXPECT_EQ(q.text, "SELECT 'unterminated");
}

// ---- automaton-group cache key (rpq/cache_key.h) ------------------------

class CacheKeyTest : public ::testing::Test {
 protected:
  CacheKeyTest() {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = 16;
    cfg.num_edges = 40;
    cfg.num_vertex_labels = 2;
    cfg.num_edge_labels = 2;
    cfg.seed = 7;
    graph_ = synthetic::make_random(cfg);
  }

  std::vector<RpqGroupKey> keys(const std::string& text) const {
    return rpq_group_cache_keys(
        plan_query(pgql::parse(text), graph_.catalog()));
  }

  Graph graph_;
};

TEST_F(CacheKeyTest, AlternationOrderIsCanonical) {
  const auto ab = keys("SELECT COUNT(*) FROM MATCH (a) -/:e0|e1*/-> (b)");
  const auto ba = keys("SELECT COUNT(*) FROM MATCH (a) -/:e1|e0*/-> (b)");
  ASSERT_EQ(ab.size(), 1u);
  ASSERT_EQ(ba.size(), 1u);
  EXPECT_TRUE(ab[0].eligible);
  EXPECT_EQ(ab[0].hash, ba[0].hash)
      << "automaton-equivalent rewrites must share a cache key";
}

TEST_F(CacheKeyTest, HopWindowAndLabelsChangeTheKey) {
  const auto star = keys("SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)");
  const auto plus = keys("SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)");
  const auto other = keys("SELECT COUNT(*) FROM MATCH (a) -/:e1*/-> (b)");
  ASSERT_EQ(star.size(), 1u);
  EXPECT_NE(star[0].hash, plus[0].hash);
  EXPECT_NE(star[0].hash, other[0].hash);
}

TEST_F(CacheKeyTest, DestinationLabelIsConservativelyPartOfTheKey) {
  // The planner places the destination-label check INSIDE the RPQ group
  // (a vertex filter on the group's emit stage), so it lands in the
  // hashed filter set. Conservative — `(b)` and `(b:L1)` could in
  // principle share exploration facts — but sound by construction: any
  // filter that might prune inside the group separates the keys.
  const auto open = keys("SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)");
  const auto gated =
      keys("SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b:L1)");
  ASSERT_EQ(open.size(), 1u);
  ASSERT_EQ(gated.size(), 1u);
  EXPECT_NE(open[0].hash, gated[0].hash);
}

TEST_F(CacheKeyTest, SourceLabelOutsideTheGroupSharesTheKey) {
  // The source-label filter runs in the scan stage BEFORE the RPQ group,
  // so it is excluded from the key — sound, because facts are keyed per
  // source vertex and a source's reachable set is independent of which
  // other sources start: seeds for sources this run never visits stay
  // inert sentinels and are skipped at harvest.
  const auto l0 = keys("SELECT COUNT(*) FROM MATCH (a:L0) -/:e0*/-> (b)");
  const auto l1 = keys("SELECT COUNT(*) FROM MATCH (a:L1) -/:e0*/-> (b)");
  ASSERT_EQ(l0.size(), 1u);
  ASSERT_EQ(l1.size(), 1u);
  EXPECT_EQ(l0[0].hash, l1[0].hash);
}

// ---- ReachCache (rpq/reach_cache.h) -------------------------------------

TEST(ReachCache, InsertSnapshotRoundTrip) {
  ReachCache cache(/*max_bytes=*/1 << 16);
  EXPECT_TRUE(cache.insert_now(0xabc, /*src=*/1, /*dst=*/2, /*depth=*/3));
  EXPECT_FALSE(cache.insert_now(0xabc, 1, 2, 5))
      << "same key refreshes, not inserts";
  const auto entries = cache.snapshot(0xabc);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].src, 1u);
  EXPECT_EQ(entries[0].dst, 2u);
  EXPECT_EQ(entries[0].depth, 5u);  // refreshed
  EXPECT_TRUE(cache.snapshot(0xdef).empty());
  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.refreshed, 1u);
  EXPECT_EQ(s.seed_reads, 1u);
}

TEST(ReachCache, LruByteBudgetNeverExceeded) {
  const std::uint64_t budget = 4 * ReachCache::kEntryBytes;
  ReachCache cache(budget);
  for (VertexId v = 0; v < 100; ++v) {
    cache.insert_now(0x1, v, static_cast<LocalVertexId>(v), 1);
    EXPECT_LE(cache.bytes(), budget);
  }
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.stats().evicted, 96u);
}

TEST(ReachCache, SnapshotRefreshesRecency) {
  const std::uint64_t budget = 2 * ReachCache::kEntryBytes;
  ReachCache cache(budget);
  cache.insert_now(/*hash=*/1, /*src=*/10, /*dst=*/0, 1);
  cache.insert_now(/*hash=*/2, /*src=*/20, /*dst=*/0, 1);
  // Touch group 1, then insert a third entry: group 2 is the LRU victim.
  (void)cache.snapshot(1);
  cache.insert_now(/*hash=*/3, /*src=*/30, /*dst=*/0, 1);
  EXPECT_EQ(cache.snapshot(1).size(), 1u);
  EXPECT_EQ(cache.snapshot(2).size(), 0u);
  EXPECT_EQ(cache.snapshot(3).size(), 1u);
}

TEST(ReachCache, EpochBumpDropsEverythingEagerly) {
  ReachCache cache(1 << 16);
  cache.insert_now(1, 1, 1, 1);
  cache.insert_now(2, 2, 2, 2);
  const std::uint64_t epoch_before = cache.epoch();
  cache.bump_epoch();
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ReachCache, StaleEpochHarvestRejected) {
  ReachCache cache(1 << 16);
  const std::uint64_t old_epoch = cache.epoch();
  cache.bump_epoch();
  EXPECT_FALSE(cache.insert(1, 1, 1, 1, old_epoch));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().epoch_rejects, 1u);
  // The current epoch still works.
  EXPECT_TRUE(cache.insert(1, 1, 1, 1, cache.epoch()));
}

TEST(ReachCache, SetBudgetEvictsEagerly) {
  ReachCache cache(1 << 16);
  for (VertexId v = 0; v < 10; ++v) cache.insert_now(1, v, 0, 1);
  cache.set_budget(3 * ReachCache::kEntryBytes);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_LE(cache.bytes(), 3 * ReachCache::kEntryBytes);
}

TEST(ReachCache, ConcurrentInsertsRespectBudget) {
  const std::uint64_t budget = 16 * ReachCache::kEntryBytes;
  ReachCache cache(budget);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<bool> over_budget{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        cache.insert_now(static_cast<std::uint64_t>(t + 1),
                         static_cast<VertexId>(i),
                         static_cast<LocalVertexId>(t), 1);
        if (cache.bytes() > budget) over_budget.store(true);
        if (i % 64 == 0) (void)cache.snapshot(static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(over_budget.load()) << "LRU byte budget exceeded mid-insert";
  EXPECT_LE(cache.bytes(), budget);
  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ReachCache, PoisonOverwritesDepthsOnly) {
  ReachCache cache(1 << 16);
  cache.insert_now(1, 1, 1, 7);
  cache.insert_now(1, 2, 2, 9);
  cache.poison_depths(1);
  for (const auto& e : cache.snapshot(1)) EXPECT_EQ(e.depth, 1u);
  EXPECT_EQ(cache.entries(), 2u);
}

// ---- ResultCache (runtime/result_cache.h) -------------------------------

QueryResult make_result(std::uint64_t count, std::size_t padding = 0) {
  QueryResult r;
  r.count = count;
  if (padding > 0) {
    r.rows.push_back({std::string(padding, 'x')});
  }
  return r;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(/*max_bytes=*/1 << 20, /*admit_max_bytes=*/0);
  auto look = cache.acquire("Q", false);
  ASSERT_EQ(look.role, ResultCache::Role::kLeader);
  cache.complete(look.flight, "Q", false, make_result(42));
  auto again = cache.acquire("Q", false);
  ASSERT_EQ(again.role, ResultCache::Role::kHit);
  EXPECT_EQ(again.result.count, 42u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(ResultCache, ProfileFlagIsPartOfTheKey) {
  ResultCache cache(1 << 20, 0);
  auto look = cache.acquire("Q", false);
  cache.complete(look.flight, "Q", false, make_result(1));
  // The profiled ask of the same text is a distinct entry: miss.
  auto profiled = cache.acquire("Q", true);
  EXPECT_EQ(profiled.role, ResultCache::Role::kLeader);
  cache.complete(profiled.flight, "Q", true, make_result(1));
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, DirtyResultsShareButNeverCache) {
  ResultCache cache(1 << 20, 0);
  auto look = cache.acquire("Q", false);
  QueryResult aborted = make_result(3);
  aborted.aborted = true;
  cache.complete(look.flight, "Q", false, aborted);
  EXPECT_EQ(cache.stats().rejected_dirty, 1u);
  EXPECT_EQ(cache.acquire("Q", false).role, ResultCache::Role::kLeader)
      << "an aborted result must not be served to later askers";
}

TEST(ResultCache, OversizedResultsExecuteButNeverCache) {
  ResultCache cache(/*max_bytes=*/1 << 20, /*admit_max_bytes=*/2048);
  auto look = cache.acquire("Q", false);
  cache.complete(look.flight, "Q", false, make_result(1, /*padding=*/4096));
  EXPECT_EQ(cache.stats().rejected_too_big, 1u);
  EXPECT_EQ(cache.acquire("Q", false).role, ResultCache::Role::kLeader);
}

TEST(ResultCache, EvictsLruUnderByteBudget) {
  // Each empty result estimates ~1KB; budget fits roughly two.
  ResultCache cache(/*max_bytes=*/2200, /*admit_max_bytes=*/2200);
  for (int i = 0; i < 8; ++i) {
    const std::string key = "Q" + std::to_string(i);
    auto look = cache.acquire(key, false);
    cache.complete(look.flight, key, false, make_result(i));
  }
  const auto s = cache.stats();
  EXPECT_LE(s.bytes, 2200u);
  EXPECT_GT(s.evicted, 0u);
  // The most recent key survived.
  EXPECT_EQ(cache.acquire("Q7", false).role, ResultCache::Role::kHit);
}

TEST(ResultCache, InvalidateClearsStore) {
  ResultCache cache(1 << 20, 0);
  auto look = cache.acquire("Q", false);
  cache.complete(look.flight, "Q", false, make_result(5));
  cache.invalidate();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.acquire("Q", false).role, ResultCache::Role::kLeader);
}

TEST(ResultCache, FollowerSharesTheLeadersResult) {
  ResultCache cache(1 << 20, 0);
  auto leader = cache.acquire("Q", false);
  ASSERT_EQ(leader.role, ResultCache::Role::kLeader);
  auto follower = cache.acquire("Q", false);
  ASSERT_EQ(follower.role, ResultCache::Role::kFollower);
  std::uint64_t seen = 0;
  std::thread waiter([&] { seen = ResultCache::await(follower.flight).count; });
  cache.complete(leader.flight, "Q", false, make_result(99));
  waiter.join();
  EXPECT_EQ(seen, 99u);
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ResultCache, FollowerSharesTheLeadersException) {
  ResultCache cache(1 << 20, 0);
  auto leader = cache.acquire("Q", false);
  auto follower = cache.acquire("Q", false);
  ASSERT_EQ(follower.role, ResultCache::Role::kFollower);
  cache.complete_error(
      leader.flight, "Q", false,
      std::make_exception_ptr(std::runtime_error("leader failed")));
  EXPECT_THROW(ResultCache::await(follower.flight), std::runtime_error);
  // A failed flight caches nothing; the next asker leads again.
  EXPECT_EQ(cache.acquire("Q", false).role, ResultCache::Role::kLeader);
}

// ---- Database-level wiring ----------------------------------------------

EngineConfig small_engine_config() {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  return ec;
}

constexpr const char* kChainStar =
    "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)";

TEST(CrossQueryCache, WarmRunSeedsAndAgreesWithCold) {
  EngineConfig ec = small_engine_config();
  ec.reach_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(24), 3, ec);

  const QueryResult cold = db.query(kChainStar);
  EXPECT_EQ(cold.stats.reach_cache_seeded, 0u);
  EXPECT_GT(cold.stats.reach_cache_harvested, 0u);

  const QueryResult warm = db.query(kChainStar);
  EXPECT_EQ(warm.count, cold.count);
  EXPECT_GT(warm.stats.reach_cache_seeded, 0u);
  EXPECT_GT(warm.stats.reach_cache_seed_hits, 0u);

  // Seeds are semantically inert: the per-depth emit/eliminate/duplicate
  // accounting of the warm run is bit-identical to the cold run.
  ASSERT_EQ(warm.stats.rpq.size(), cold.stats.rpq.size());
  for (std::size_t g = 0; g < warm.stats.rpq.size(); ++g) {
    EXPECT_EQ(warm.stats.rpq[g].matches_per_depth,
              cold.stats.rpq[g].matches_per_depth);
    EXPECT_EQ(warm.stats.rpq[g].eliminated_per_depth,
              cold.stats.rpq[g].eliminated_per_depth);
    EXPECT_EQ(warm.stats.rpq[g].duplicated_per_depth,
              cold.stats.rpq[g].duplicated_per_depth);
    EXPECT_LE(warm.stats.rpq[g].index_seed_hits,
              warm.stats.rpq[g].index_seeded);
  }

  const ReachCacheStats rs = db.reach_cache_stats();
  EXPECT_GT(rs.inserts, 0u);
  EXPECT_GT(rs.seed_reads, 0u);
  EXPECT_GT(rs.entries, 0u);
}

TEST(CrossQueryCache, ProfileSharesReachEntriesButNotResults) {
  EngineConfig ec = small_engine_config();
  ec.reach_cache_max_bytes = 1 << 20;
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(24), 3, ec);

  const QueryResult plain = db.query(kChainStar);
  ASSERT_GT(plain.stats.reach_cache_harvested, 0u);
  EXPECT_FALSE(plain.profile.enabled);

  // `PROFILE Q` misses the result cache (distinct key) but seeds from
  // Q's reachability facts (same automaton-group hash).
  const QueryResult profiled =
      db.query(std::string("PROFILE ") + kChainStar);
  EXPECT_TRUE(profiled.profile.enabled);
  EXPECT_FALSE(profiled.stats.result_cache_hit);
  EXPECT_EQ(profiled.count, plain.count);
  EXPECT_GT(profiled.stats.reach_cache_seeded, 0u);

  // Re-asking each form hits its own result-cache entry, with the
  // profile tree present exactly when asked for.
  const QueryResult plain_again = db.query(kChainStar);
  EXPECT_TRUE(plain_again.stats.result_cache_hit);
  EXPECT_FALSE(plain_again.profile.enabled);
  const QueryResult profiled_again =
      db.query(std::string("profile ") + kChainStar);
  EXPECT_TRUE(profiled_again.stats.result_cache_hit);
  EXPECT_TRUE(profiled_again.profile.enabled);
  EXPECT_EQ(db.result_cache_stats().entries, 2u);
}

TEST(CrossQueryCache, NormalizedTextSharesOneResultEntry) {
  EngineConfig ec = small_engine_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(12), 2, ec);

  const QueryResult first =
      db.query("select count(*) from match (a) -/:next*/-> (b)");
  EXPECT_FALSE(first.stats.result_cache_hit);
  const QueryResult second = db.query(kChainStar);
  EXPECT_TRUE(second.stats.result_cache_hit);
  EXPECT_EQ(second.count, first.count);
  EXPECT_EQ(db.result_cache_stats().entries, 1u);
}

TEST(CrossQueryCache, RetryPathBypassesTheResultCache) {
  EngineConfig ec = small_engine_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(12), 2, ec);
  const QueryResult cached = db.query(kChainStar);
  const std::uint64_t hits_before = db.result_cache_stats().hits;
  const QueryResult retried = db.run_with_retry(kChainStar);
  EXPECT_EQ(retried.count, cached.count);
  EXPECT_FALSE(retried.stats.result_cache_hit);
  EXPECT_EQ(db.result_cache_stats().hits, hits_before);
}

TEST(CrossQueryCache, AbortedRunNeverHarvests) {
  EngineConfig ec = small_engine_config();
  ec.reach_cache_max_bytes = 1 << 20;
  // A context budget of 1 per machine trips immediately on the chain.
  ec.max_live_contexts = 1;
  Database db(synthetic::make_chain(48), 2, ec);
  const QueryResult result = db.query(kChainStar);
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(db.reach_cache_stats().inserts, 0u)
      << "an aborted run's partial facts must not be persisted";
  EXPECT_EQ(db.reach_cache_stats().entries, 0u);
}

TEST(CrossQueryCache, EpochBumpInvalidatesBothCaches) {
  EngineConfig ec = small_engine_config();
  ec.reach_cache_max_bytes = 1 << 20;
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(24), 3, ec);

  const QueryResult cold = db.query(kChainStar);
  ASSERT_GT(db.reach_cache_stats().entries, 0u);
  db.invalidate_caches();
  EXPECT_EQ(db.reach_cache_stats().entries, 0u);
  EXPECT_EQ(db.result_cache_stats().entries, 0u);

  const QueryResult after = db.query(kChainStar);
  EXPECT_FALSE(after.stats.result_cache_hit);
  EXPECT_EQ(after.stats.reach_cache_seeded, 0u);
  EXPECT_EQ(after.count, cold.count);
}

TEST(CrossQueryCache, HarvestKnobOffRunsReadOnly) {
  EngineConfig ec = small_engine_config();
  ec.reach_cache_max_bytes = 1 << 20;
  ec.reach_cache_harvest = false;
  Database db(synthetic::make_chain(24), 2, ec);
  const QueryResult r = db.query(kChainStar);
  EXPECT_EQ(r.stats.reach_cache_harvested, 0u);
  EXPECT_EQ(db.reach_cache_stats().entries, 0u);
}

TEST(CrossQueryCache, EvictionPressureKeepsResultsCorrect) {
  EngineConfig ec = small_engine_config();
  // Two entries per machine: constant eviction churn.
  ec.reach_cache_max_bytes = 2 * ReachCache::kEntryBytes;
  Database db(synthetic::make_chain(24), 3, ec);
  const QueryResult cold = db.query(kChainStar);
  const QueryResult warm = db.query(kChainStar);
  EXPECT_EQ(warm.count, cold.count);
  const ReachCacheStats rs = db.reach_cache_stats();
  EXPECT_LE(rs.bytes, 3 * 2 * ReachCache::kEntryBytes);
  EXPECT_GT(rs.evicted, 0u);
  for (unsigned m = 0; m < db.num_machines(); ++m) {
    ASSERT_NE(db.reach_cache(m), nullptr);
    EXPECT_LE(db.reach_cache(m)->bytes(), ec.reach_cache_max_bytes);
  }
}

TEST(CrossQueryCache, SchedulerServesCachedHitsWithoutDispatch) {
  EngineConfig ec = small_engine_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(24), 2, ec);
  SchedulerConfig sc;
  sc.max_inflight = 2;
  db.configure_scheduler(sc);

  QueryTicket first = db.submit(kChainStar);
  const QueryResult executed = db.await(first);
  EXPECT_FALSE(executed.stats.result_cache_hit);

  QueryTicket second = db.submit(kChainStar);
  EXPECT_EQ(second.admission(), AdmissionOutcome::kCachedHit);
  const QueryResult cached = db.await(second);
  EXPECT_TRUE(cached.stats.result_cache_hit);
  EXPECT_EQ(cached.count, executed.count);
  // A cached-hit ticket holds no run: cancel has nothing to do.
  EXPECT_FALSE(db.cancel(second));
  const SchedulerStats ss = db.scheduler_stats();
  EXPECT_EQ(ss.cache_hits, 1u);
}

// ---- cache regression corpus (tests/corpus/cache/*.txt) -----------------
//
// Line format (whitespace-separated, '#' starts a comment; the query
// separator is ';;' because '|' appears inside label alternations):
//   <graph-spec> <machines> <schedule> <fault-seed> <mode> | <q1> ;; <q2>
// Modes: reask (q2 re-asks warm), rewrite (q2 is an automaton-equivalent
// rewrite of q1), epoch-bump (invalidate between q1 and q2), evict (run
// under a 2-entry/machine reach-cache budget). Both runs must match the
// oracle; warm seeding is asserted where the mode guarantees it.

Graph corpus_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  std::vector<std::uint64_t> args;
  {
    std::istringstream in(spec);
    in.ignore(static_cast<std::streamsize>(spec.find(':')) + 1);
    std::string field;
    while (std::getline(in, field, ':')) args.push_back(std::stoull(field));
  }
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  if (kind == "random") {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = args.at(0);
    cfg.num_edges = args.at(1);
    cfg.num_vertex_labels = static_cast<unsigned>(args.at(2));
    cfg.num_edge_labels = static_cast<unsigned>(args.at(3));
    cfg.allow_self_loops = args.at(4) != 0;
    cfg.seed = args.at(5);
    return synthetic::make_random(cfg);
  }
  ADD_FAILURE() << "unknown cache-corpus graph spec: " << spec;
  return Graph{};
}

struct CacheCorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string schedule;
  std::uint64_t fault_seed = 0;
  std::string mode;
  std::string q1;
  std::string q2;
  std::string source;
};

std::vector<CacheCorpusEntry> load_cache_corpus() {
  std::vector<CacheCorpusEntry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(RPQD_CACHE_CORPUS_DIR)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar = line.find('|');
      const auto sep =
          bar == std::string::npos ? bar : line.find(";;", bar + 1);
      if (sep == std::string::npos) {
        ADD_FAILURE() << "malformed cache corpus line " << file.path()
                      << ":" << lineno;
        continue;
      }
      CacheCorpusEntry e;
      std::istringstream head(line.substr(0, bar));
      head >> e.graph_spec >> e.machines >> e.schedule >> e.fault_seed >>
          e.mode;
      if (head.fail()) {
        ADD_FAILURE() << "malformed cache corpus line " << file.path()
                      << ":" << lineno;
        continue;
      }
      auto trim = [](std::string s) {
        s.erase(0, s.find_first_not_of(' '));
        const auto last = s.find_last_not_of(' ');
        if (last != std::string::npos) s.erase(last + 1);
        return s;
      };
      e.q1 = trim(line.substr(bar + 1, sep - bar - 1));
      e.q2 = trim(line.substr(sep + 2));
      e.source = file.path().filename().string() + ":" +
                 std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

TEST(CacheCorpusReplay, AllEntriesAgreeWithOracleColdAndWarm) {
  const auto entries = load_cache_corpus();
  ASSERT_FALSE(entries.empty()) << "cache corpus directory empty: "
                                << RPQD_CACHE_CORPUS_DIR;
  for (const auto& e : entries) {
    SCOPED_TRACE(e.source + " mode=" + e.mode + " q1=" + e.q1 +
                 " q2=" + e.q2);
    const Graph oracle = corpus_graph(e.graph_spec);
    std::uint64_t expected1 = 0;
    std::uint64_t expected2 = 0;
    try {
      expected1 = baseline::reference_evaluate(e.q1, oracle).count;
      expected2 = baseline::reference_evaluate(e.q2, oracle).count;
    } catch (const UnsupportedError&) {
      GTEST_FAIL() << "cache corpus entry outside the oracle subset";
    }
    EngineConfig ec = small_engine_config();
    ec.reach_cache_max_bytes =
        e.mode == "evict" ? 2 * ReachCache::kEntryBytes : (1 << 20);
    Database db(corpus_graph(e.graph_spec), e.machines, ec);
    db.set_fault_schedule(e.schedule, e.fault_seed);

    const QueryResult r1 = db.query(e.q1);
    EXPECT_FALSE(r1.aborted);
    EXPECT_EQ(r1.count, expected1);

    if (e.mode == "epoch-bump") db.invalidate_caches();

    const QueryResult r2 = db.query(e.q2);
    EXPECT_FALSE(r2.aborted);
    EXPECT_EQ(r2.count, expected2);

    if (e.mode == "epoch-bump") {
      EXPECT_EQ(r2.stats.reach_cache_seeded, 0u)
          << "epoch bump must drop every seedable entry";
    } else if (e.mode == "reask" || e.mode == "rewrite") {
      if (r1.stats.reach_cache_harvested > 0) {
        EXPECT_GT(r2.stats.reach_cache_seeded, 0u)
            << "warm re-ask found nothing to seed";
      }
    } else if (e.mode == "evict") {
      for (unsigned m = 0; m < db.num_machines(); ++m) {
        if (db.reach_cache(m) != nullptr) {
          EXPECT_LE(db.reach_cache(m)->bytes(), ec.reach_cache_max_bytes);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rpqd
