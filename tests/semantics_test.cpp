// Deeper semantic tests: the paper's regular-language composition style
// (§2: "(a)*bb(a)+ can be translated into PGQL using two variable-length
// patterns in the same query"), chained RPQ segments, degenerate
// quantifiers, and mixed fixed/RPQ patterns — each validated against the
// independent reference oracle or hand-computed values.
#include <gtest/gtest.h>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

EngineConfig small_engine() {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 256;
  return cfg;
}

// Word graph helper: vertices 0..n-1 in a chain whose edge labels spell a
// word, e.g. "aabba" => 0-a->1-a->2-b->3-b->4-a->5.
Graph word_chain(const std::string& word) {
  GraphBuilder b;
  for (std::size_t i = 0; i <= word.size(); ++i) {
    const VertexId v = b.add_vertex("N");
    b.set_property(v, "id", int_value(static_cast<std::int64_t>(i)));
  }
  for (std::size_t i = 0; i < word.size(); ++i) {
    b.add_edge(i, i + 1, std::string(1, word[i]));
  }
  return std::move(b).build();
}

// The §2 regular language (a)*bb(a)+ as two variable-length patterns.
const char* kAStarBBAPlus =
    "SELECT COUNT(*) FROM MATCH "
    "(v0) -/:a*/-> (v1) -[:b]-> (v2) -[:b]-> (v3) -/:a+/-> (v4) "
    "WHERE v0.id = 0";

TEST(RegularLanguage, AStarBBAPlusAccepts) {
  // "aabba" contains a*bb a+ from position 0: aa bb a. One match.
  Database db(word_chain("aabba"), 3, small_engine());
  EXPECT_EQ(db.query(kAStarBBAPlus).count, 1u);
  // "bba": zero a's, then bb, then one a.
  Database db2(word_chain("bba"), 2, small_engine());
  EXPECT_EQ(db2.query(kAStarBBAPlus).count, 1u);
  // "abbaaa": a bb aaa — a+ matches lengths 1..3 but reachability
  // deduplicates destinations, so v4 in {4,5,6}: 3 matches.
  Database db3(word_chain("abbaaa"), 3, small_engine());
  EXPECT_EQ(db3.query(kAStarBBAPlus).count, 3u);
}

TEST(RegularLanguage, AStarBBAPlusRejects) {
  // "aba": the bb is missing.
  Database db(word_chain("aba"), 2, small_engine());
  EXPECT_EQ(db.query(kAStarBBAPlus).count, 0u);
  // "bb": a+ needs at least one trailing a.
  Database db2(word_chain("bb"), 2, small_engine());
  EXPECT_EQ(db2.query(kAStarBBAPlus).count, 0u);
  // "ab": only one b.
  Database db3(word_chain("ab"), 2, small_engine());
  EXPECT_EQ(db3.query(kAStarBBAPlus).count, 0u);
}

TEST(Semantics, ChainedRpqSegments) {
  // Two consecutive RPQ segments on a tree: down replyOf then up again.
  const Graph oracle = synthetic::make_tree(2, 3);
  Database db(synthetic::make_tree(2, 3), 3, small_engine());
  const char* q =
      "SELECT COUNT(*) FROM MATCH (a) -/:replyOf+/-> (m) <-/:replyOf+/- "
      "(b)";
  EXPECT_EQ(db.query(q).count, baseline::reference_evaluate(q, oracle).count);
}

TEST(Semantics, RpqSegmentsOnRandomGraphAgree) {
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 25;
  gcfg.num_edges = 60;
  gcfg.num_edge_labels = 2;
  gcfg.seed = 99;
  const Graph oracle = synthetic::make_random(gcfg);
  Database db(synthetic::make_random(gcfg), 4, small_engine());
  for (const char* q : {
           "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,2}/-> (m) -/:e1{1,2}/-> "
           "(b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (m) -[:e1]-> (b)",
           "SELECT COUNT(*) FROM MATCH (a) -/:e0?/-> (m) -/:e1?/-> (b)",
       }) {
    EXPECT_EQ(db.query(q).count,
              baseline::reference_evaluate(q, oracle).count)
        << q;
  }
}

TEST(Semantics, ZeroQuantifierIsIdentity) {
  // {0} matches exactly the 0-hop: source = destination.
  Database db(synthetic::make_chain(7), 3, small_engine());
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -/:next{0}/-> (b)")
                .count,
            7u);
  // With a destination gate that the source fails, 0-hop yields nothing.
  GraphBuilder b;
  b.add_vertex("X");
  b.add_vertex("Y");
  b.add_edge(0, 1, "e");
  Database db2(std::move(b).build(), 2, small_engine());
  EXPECT_EQ(
      db2.query("SELECT COUNT(*) FROM MATCH (a:X) -/:e{0}/-> (b:Y)").count,
      0u);
  EXPECT_EQ(
      db2.query("SELECT COUNT(*) FROM MATCH (a:X) -/:e{0}/-> (b:X)").count,
      1u);
}

TEST(Semantics, QuantifierWindowsPartitionCounts) {
  // On a DAG the windows {1,2} and {3,4} partition {1,4}'s walks, but
  // destination dedup makes counts subadditive; verify against oracle.
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 20;
  gcfg.num_edges = 35;
  gcfg.num_edge_labels = 1;
  gcfg.seed = 5;
  const Graph oracle = synthetic::make_random(gcfg);
  Database db(synthetic::make_random(gcfg), 3, small_engine());
  const auto count = [&](const char* q) { return db.query(q).count; };
  const auto expect = [&](const char* q) {
    return baseline::reference_evaluate(q, oracle).count;
  };
  const char* q12 = "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,2}/-> (b)";
  const char* q34 = "SELECT COUNT(*) FROM MATCH (a) -/:e0{3,4}/-> (b)";
  const char* q14 = "SELECT COUNT(*) FROM MATCH (a) -/:e0{1,4}/-> (b)";
  EXPECT_EQ(count(q12), expect(q12));
  EXPECT_EQ(count(q34), expect(q34));
  EXPECT_EQ(count(q14), expect(q14));
  EXPECT_LE(count(q14), count(q12) + count(q34));
  EXPECT_GE(count(q14), count(q12));
}

TEST(Semantics, UndirectedMacro) {
  // Macro whose inner edge is undirected, used directionally.
  Database db(synthetic::make_chain(5), 2, small_engine());
  const char* q =
      "PATH hop AS (x) -[:next]- (y) "
      "SELECT COUNT(*) FROM MATCH (a) -/:hop{2}/-> (b) WHERE a.id = 2";
  // Walks of undirected length 2 from vertex 2: 0, 2 (back-forth), 4.
  EXPECT_EQ(db.query(q).count, 3u);
}

TEST(Semantics, FilterOnRpqDestinationAndSource) {
  Database db(synthetic::make_chain(10), 3, small_engine());
  const char* q =
      "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b) "
      "WHERE a.id >= 2 AND b.id <= 5 AND b.id - a.id >= 2";
  // Pairs (a,b): a>=2, b<=5, b-a>=2 along the chain: (2,4),(2,5),(3,5).
  EXPECT_EQ(db.query(q).count, 3u);
}

TEST(Semantics, ProjectionOfRpqEndpoints) {
  Database db(synthetic::make_chain(4), 2, small_engine());
  auto r = db.query(
      "SELECT id(a), id(b) FROM MATCH (a) -/:next{2}/-> (b)");
  ASSERT_EQ(r.rows.size(), 2u);
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& row : r.rows) rows.emplace_back(row[0], row[1]);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows[0], (std::pair<std::string, std::string>{"0", "2"}));
  EXPECT_EQ(rows[1], (std::pair<std::string, std::string>{"1", "3"}));
}

TEST(Semantics, InspectionHopAcrossRpq) {
  // Non-linear pattern where the post-RPQ expansion returns to the
  // source side: (a)-/:e+/->(b), (a)-[:f]->(c).
  const auto make = [] {
    GraphBuilder b;
    for (int i = 0; i < 5; ++i) b.add_vertex("N");
    b.add_edge(0, 1, "e");
    b.add_edge(1, 2, "e");
    b.add_edge(0, 3, "f");
    b.add_edge(0, 4, "f");
    return std::move(b).build();
  };
  const Graph oracle = make();
  Database db(make(), 3, small_engine());
  const char* q =
      "SELECT COUNT(*) FROM MATCH (a) -/:e+/-> (x), (a) -[:f]-> (c)";
  // a=0: x in {1,2} (2), c in {3,4} (2) -> 4 matches; a=1: x=2 but no f
  // edge -> 0.
  EXPECT_EQ(db.query(q).count, 4u);
  EXPECT_EQ(baseline::reference_evaluate(q, oracle).count, 4u);
}

}  // namespace
}  // namespace rpqd
