// Tests for compiled expressions: evaluation semantics over context
// slots, current-vertex properties, string/dictionary normalization,
// null propagation, and short-circuiting.
#include <gtest/gtest.h>

#include "graph/partition.h"
#include "graph/snapshot.h"
#include "plan/expr.h"

namespace rpqd {
namespace {

using pgql::BinOp;
using pgql::UnOp;

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    GraphBuilder b;
    const LabelId person = b.catalog().vertex_label("Person");
    const VertexId v = b.add_vertex(person);
    b.set_property(v, b.catalog().property("age", ValueType::kInt),
                   int_value(30));
    b.set_string_property(v, "name", "alice");
    graph_ = std::make_shared<const Graph>(std::move(b).build());
    pg_ = std::make_shared<const PartitionedGraph>(graph_, 1);
    snap_ = GraphSnapshot::initial(pg_);
    slots_.assign(4, null_value());
  }

  EvalCtx ctx() {
    EvalCtx c;
    c.part = &snap_->view(0);
    c.catalog = &graph_->catalog();
    c.current = 0;
    c.slots = slots_.data();
    return c;
  }

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const PartitionedGraph> pg_;
  std::shared_ptr<const GraphSnapshot> snap_;
  std::vector<Value> slots_;
};

TEST_F(ExprTest, Constants) {
  EXPECT_EQ(as_int(CompiledExpr::constant(int_value(7)).evaluate(ctx()).v), 7);
  const auto text = CompiledExpr::constant_text("zzz").evaluate(ctx());
  ASSERT_NE(text.text, nullptr);
  EXPECT_EQ(*text.text, "zzz");
}

TEST_F(ExprTest, SlotRead) {
  slots_[2] = int_value(99);
  EXPECT_EQ(as_int(CompiledExpr::slot(2).evaluate(ctx()).v), 99);
}

TEST_F(ExprTest, CurrentProperty) {
  const auto age = *graph_->catalog().find_property("age");
  EXPECT_EQ(as_int(CompiledExpr::current_prop(age).evaluate(ctx()).v), 30);
}

TEST_F(ExprTest, CurrentIdAndLabel) {
  EXPECT_EQ(as_vertex(CompiledExpr::current_id().evaluate(ctx()).v), 0u);
  const auto label = CompiledExpr::current_label().evaluate(ctx());
  ASSERT_NE(label.text, nullptr);
  EXPECT_EQ(*label.text, "Person");
}

TEST_F(ExprTest, ArithmeticIntAndDouble) {
  const auto bin = [&](BinOp op, Value a, Value b) {
    return CompiledExpr::binary(op, CompiledExpr::constant(a),
                                CompiledExpr::constant(b))
        .evaluate(ctx());
  };
  EXPECT_EQ(as_int(bin(BinOp::kAdd, int_value(2), int_value(3)).v), 5);
  EXPECT_EQ(as_int(bin(BinOp::kMod, int_value(7), int_value(3)).v), 1);
  EXPECT_DOUBLE_EQ(as_double(bin(BinOp::kMul, int_value(2),
                                 double_value(1.5)).v),
                   3.0);
  EXPECT_TRUE(bin(BinOp::kDiv, int_value(1), int_value(0)).is_null());
}

TEST_F(ExprTest, Comparisons) {
  const auto cmp = [&](BinOp op, Value a, Value b) {
    return CompiledExpr::binary(op, CompiledExpr::constant(a),
                                CompiledExpr::constant(b))
        .evaluate_bool(ctx());
  };
  EXPECT_TRUE(cmp(BinOp::kLt, int_value(1), int_value(2)));
  EXPECT_FALSE(cmp(BinOp::kLt, int_value(2), int_value(2)));
  EXPECT_TRUE(cmp(BinOp::kLe, int_value(2), int_value(2)));
  EXPECT_TRUE(cmp(BinOp::kNe, int_value(2), int_value(3)));
  EXPECT_TRUE(cmp(BinOp::kGe, double_value(2.5), int_value(2)));
}

TEST_F(ExprTest, StringDictVsTextComparison) {
  const auto name = *graph_->catalog().find_property("name");
  // "alice" exists in the dictionary; compare against an unknown literal.
  const auto eq_known = CompiledExpr::binary(
      BinOp::kEq, CompiledExpr::current_prop(name),
      CompiledExpr::constant(
          string_value(*graph_->catalog().find_string("alice"))));
  EXPECT_TRUE(eq_known.evaluate_bool(ctx()));
  const auto eq_unknown =
      CompiledExpr::binary(BinOp::kEq, CompiledExpr::current_prop(name),
                           CompiledExpr::constant_text("bob"));
  EXPECT_FALSE(eq_unknown.evaluate_bool(ctx()));
  const auto lt_text =
      CompiledExpr::binary(BinOp::kLt, CompiledExpr::current_prop(name),
                           CompiledExpr::constant_text("bob"));
  EXPECT_TRUE(lt_text.evaluate_bool(ctx()));  // "alice" < "bob"
}

TEST_F(ExprTest, NullPropagation) {
  const auto missing = CompiledExpr::slot(0);  // slot holds null
  const auto cmp = CompiledExpr::binary(BinOp::kLt, missing,
                                        CompiledExpr::constant(int_value(5)));
  EXPECT_FALSE(cmp.evaluate_bool(ctx()));
  EXPECT_TRUE(cmp.evaluate(ctx()).is_null());
}

TEST_F(ExprTest, AndShortCircuit) {
  // false AND <null> must be false, not null.
  const auto e = CompiledExpr::binary(
      BinOp::kAnd, CompiledExpr::constant(bool_value(false)),
      CompiledExpr::slot(0));
  const auto v = e.evaluate(ctx());
  ASSERT_FALSE(v.is_null());
  EXPECT_FALSE(as_bool(v.v));
}

TEST_F(ExprTest, OrShortCircuit) {
  const auto e = CompiledExpr::binary(
      BinOp::kOr, CompiledExpr::constant(bool_value(true)),
      CompiledExpr::slot(0));
  const auto v = e.evaluate(ctx());
  ASSERT_FALSE(v.is_null());
  EXPECT_TRUE(as_bool(v.v));
}

TEST_F(ExprTest, NotAndNegate) {
  const auto n = CompiledExpr::unary(
      UnOp::kNot, CompiledExpr::constant(bool_value(false)));
  EXPECT_TRUE(n.evaluate_bool(ctx()));
  const auto neg =
      CompiledExpr::unary(UnOp::kNeg, CompiledExpr::constant(int_value(4)));
  EXPECT_EQ(as_int(neg.evaluate(ctx()).v), -4);
}

TEST_F(ExprTest, ReadsCurrentDetection) {
  EXPECT_TRUE(CompiledExpr::current_id().reads_current());
  EXPECT_FALSE(CompiledExpr::slot(1).reads_current());
  const auto nested = CompiledExpr::binary(
      BinOp::kAdd, CompiledExpr::slot(0), CompiledExpr::current_prop(0));
  EXPECT_TRUE(nested.reads_current());
}

TEST_F(ExprTest, CopySemantics) {
  const auto orig = CompiledExpr::binary(BinOp::kAdd,
                                         CompiledExpr::constant(int_value(1)),
                                         CompiledExpr::constant(int_value(2)));
  const CompiledExpr copy = orig;  // deep copy
  EXPECT_EQ(as_int(copy.evaluate(ctx()).v), 3);
  EXPECT_EQ(as_int(orig.evaluate(ctx()).v), 3);
}

}  // namespace
}  // namespace rpqd
