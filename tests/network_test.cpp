// Tests for the simulated fabric: inbox priority (§3.2 — deeper depth
// first, later stage first), DONE credit return at delivery time,
// termination-message routing, and statistics.
#include "common/error.h"
#include <gtest/gtest.h>

#include "net/network.h"

namespace rpqd {
namespace {

Message data_message(MachineId src, StageId stage, Depth depth,
                     std::uint32_t count = 1, std::size_t bytes = 8) {
  Message m;
  m.header.type = MessageType::kData;
  m.header.src = src;
  m.header.stage = stage;
  m.header.depth = depth;
  m.header.count = count;
  m.payload.resize(bytes);
  return m;
}

TEST(Inbox, PriorityDeeperDepthFirst) {
  Network net(1);
  net.send(0, data_message(0, 2, 1));
  net.send(0, data_message(0, 2, 5));
  net.send(0, data_message(0, 2, 3));
  auto& inbox = net.inbox(0);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 5u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 3u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 1u);
  EXPECT_FALSE(inbox.try_pop_data(net.stats()).has_value());
}

TEST(Inbox, PriorityLaterStageFirstAtSameDepth) {
  Network net(1);
  net.send(0, data_message(0, 1, 2));
  net.send(0, data_message(0, 4, 2));
  net.send(0, data_message(0, 3, 2));
  auto& inbox = net.inbox(0);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 4u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 3u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 1u);
}

TEST(Inbox, DepthDominatesStage) {
  Network net(1);
  net.send(0, data_message(0, 9, 0));
  net.send(0, data_message(0, 1, 4));
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->header.depth, 4u);
}

TEST(Inbox, DoneMessagesReleaseCreditsImmediately) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  net.inbox(0).attach_flow_control(&fc);

  // Exhaust machine 0's credits towards machine 1.
  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(1, 0, 0)) held.push_back(*c);
  ASSERT_FALSE(held.empty());
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());

  // Machine 1 sends a DONE back: credit must be usable without any
  // worker popping anything.
  Message done;
  done.header.type = MessageType::kDone;
  done.header.src = 1;
  done.header.stage = 0;
  done.header.credit = held[0];
  done.header.credit_depth = 0;
  net.send(0, std::move(done));
  EXPECT_TRUE(fc.try_acquire(1, 0, 0).has_value());
  EXPECT_EQ(net.stats().done_messages.load(), 1u);
  EXPECT_FALSE(net.inbox(0).has_data());  // DONEs never queue as data
}

TEST(Inbox, TerminationMessagesQueueSeparately) {
  Network net(1);
  Message term;
  term.header.type = MessageType::kTermination;
  term.header.src = 0;
  net.send(0, std::move(term));
  EXPECT_FALSE(net.inbox(0).has_data());
  EXPECT_TRUE(net.inbox(0).try_pop_term().has_value());
  EXPECT_FALSE(net.inbox(0).try_pop_term().has_value());
  EXPECT_EQ(net.stats().term_messages.load(), 1u);
}

TEST(Network, StatsCountDataBytesAndContexts) {
  Network net(2);
  net.send(1, data_message(0, 1, 0, 3, 100));
  net.send(1, data_message(0, 1, 0, 2, 50));
  EXPECT_EQ(net.stats().data_messages.load(), 2u);
  EXPECT_EQ(net.stats().contexts.load(), 5u);
  EXPECT_EQ(net.stats().bytes.load(), 150u);
}

TEST(Network, PeakQueuedBytesHighWaterMark) {
  Network net(1);
  net.send(0, data_message(0, 1, 0, 1, 100));
  net.send(0, data_message(0, 1, 0, 1, 200));
  EXPECT_EQ(net.stats().queued_bytes.load(), 300u);
  EXPECT_EQ(net.stats().peak_queued_bytes.load(), 300u);
  net.inbox(0).try_pop_data(net.stats());
  net.inbox(0).try_pop_data(net.stats());
  EXPECT_EQ(net.stats().queued_bytes.load(), 0u);
  EXPECT_EQ(net.stats().peak_queued_bytes.load(), 300u);  // peak sticks
}

TEST(Network, PerMachinePeakIsMaxNotSum) {
  Network net(2);
  // Both machines hold bytes simultaneously: the cluster-wide sum peaks
  // at 300, but no single machine ever buffers more than 200 — the
  // per-machine memory metric must report 200, not 300.
  net.send(0, data_message(1, 1, 0, 1, 100));
  net.send(1, data_message(0, 1, 0, 1, 200));
  EXPECT_EQ(net.stats().peak_queued_bytes.load(), 300u);  // aggregate sum
  EXPECT_EQ(net.inbox(0).peak_queued_bytes(), 100u);
  EXPECT_EQ(net.inbox(1).peak_queued_bytes(), 200u);
  EXPECT_EQ(net.max_peak_queued_bytes(), 200u);
}

TEST(Network, PerMachinePeaksAtDifferentTimes) {
  Network net(2);
  // Machine 0 peaks at 300 and fully drains before machine 1 receives
  // anything: the true max across machines is 300, and the two peaks
  // must not be added together (that would report 420).
  net.send(0, data_message(1, 1, 0, 1, 300));
  EXPECT_TRUE(net.inbox(0).try_pop_data(net.stats()).has_value());
  net.send(1, data_message(0, 1, 0, 1, 120));
  EXPECT_TRUE(net.inbox(1).try_pop_data(net.stats()).has_value());
  EXPECT_EQ(net.inbox(0).peak_queued_bytes(), 300u);
  EXPECT_EQ(net.inbox(1).peak_queued_bytes(), 120u);
  EXPECT_EQ(net.inbox(0).queued_bytes(), 0u);
  EXPECT_EQ(net.inbox(1).queued_bytes(), 0u);
  EXPECT_EQ(net.max_peak_queued_bytes(), 300u);
}

TEST(Network, SendToUnknownMachineThrows) {
  Network net(2);
  EXPECT_THROW(net.send(5, data_message(0, 0, 0)), EngineError);
}

// ---- fault-injection fabric (common/fault.h) ----

TEST(Fault, DelayedDataStaysInvisibleUntilItsReleaseTick) {
  Network net(1);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_window = 4;
  net.set_fault_plan(plan);
  net.send(0, data_message(0, 1, 0, 2, 64));
  auto& inbox = net.inbox(0);
  // The message is in limbo: owned by this machine (it blocks
  // termination via has_data) but not yet poppable — except that pops
  // are the tick clock, so it must surface within delay_window pops.
  EXPECT_TRUE(inbox.has_data());
  EXPECT_EQ(inbox.data_size(), 1u);
  EXPECT_EQ(net.stats().faults_delayed.load(), 1u);
  EXPECT_EQ(net.stats().data_messages.load(), 1u);  // counted on arrival
  int pops_until_visible = 0;
  std::optional<Message> msg;
  while (!(msg = inbox.try_pop_data(net.stats())).has_value()) {
    ASSERT_LT(++pops_until_visible, 5);  // bounded by delay_window
  }
  EXPECT_EQ(msg->header.count, 2u);
  EXPECT_FALSE(inbox.has_data());
  EXPECT_EQ(net.stats().queued_bytes.load(), 0u);
  // Limbo bytes belong to the receiving machine from arrival on: the
  // per-inbox accounting mirrors the cluster-wide one on the fault path.
  EXPECT_EQ(inbox.queued_bytes(), 0u);
  EXPECT_EQ(inbox.peak_queued_bytes(), 64u);
}

TEST(Fault, DuplicatedDataIsDeliveredExactlyOnce) {
  Network net(1);
  FaultPlan plan;
  plan.dup_data_prob = 1.0;
  net.set_fault_plan(plan);
  net.send(0, data_message(0, 1, 0, 1, 32));
  EXPECT_EQ(net.stats().faults_duplicated.load(), 1u);
  EXPECT_EQ(net.stats().faults_dup_dropped.load(), 1u);
  // The transport dedup absorbs the copy: engine-visible stats and the
  // queue see one message.
  EXPECT_EQ(net.stats().data_messages.load(), 1u);
  EXPECT_EQ(net.stats().contexts.load(), 1u);
  EXPECT_TRUE(net.inbox(0).try_pop_data(net.stats()).has_value());
  EXPECT_FALSE(net.inbox(0).try_pop_data(net.stats()).has_value());
}

TEST(Fault, DuplicatedDoneReleasesItsCreditExactlyOnce) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  FaultPlan plan;
  plan.dup_done_prob = 1.0;
  net.set_fault_plan(plan);
  net.inbox(0).attach_flow_control(&fc);

  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(1, 0, 0)) held.push_back(*c);
  ASSERT_FALSE(held.empty());

  Message done;
  done.header.type = MessageType::kDone;
  done.header.src = 1;
  done.header.stage = 0;
  done.header.credit = held[0];
  done.header.credit_depth = 0;
  net.send(0, std::move(done));
  EXPECT_EQ(net.stats().faults_duplicated.load(), 1u);
  // Exactly one credit came back — a double release would either assert
  // inside FlowControl or hand out more credits than exist.
  EXPECT_TRUE(fc.try_acquire(1, 0, 0).has_value());
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());
}

TEST(Fault, JitteredDoneReleasesCreditAfterPickupTicks) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  FaultPlan plan;
  plan.done_delay_prob = 1.0;
  plan.done_delay_window = 3;
  net.set_fault_plan(plan);
  net.inbox(0).attach_flow_control(&fc);

  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(1, 0, 0)) held.push_back(*c);
  ASSERT_FALSE(held.empty());

  Message done;
  done.header.type = MessageType::kDone;
  done.header.src = 1;
  done.header.stage = 0;
  done.header.credit = held[0];
  done.header.credit_depth = 0;
  net.send(0, std::move(done));
  // The credit is in limbo: not yet released, the sender stays blocked.
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());
  EXPECT_EQ(net.stats().faults_delayed.load(), 1u);
  // Pickup polls advance the limbo clock; within the window the DONE is
  // delivered and the credit usable again.
  for (int tick = 0; tick < 3; ++tick) {
    net.inbox(0).try_pop_data(net.stats());
  }
  EXPECT_TRUE(fc.try_acquire(1, 0, 0).has_value());
}

TEST(Fault, DrainDeliversLimboedDonesAfterShutdown) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  FaultPlan plan;
  plan.done_delay_prob = 1.0;
  plan.done_delay_window = 1000;  // far beyond any pop in this test
  net.set_fault_plan(plan);
  net.inbox(0).attach_flow_control(&fc);

  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(1, 0, 0)) held.push_back(*c);
  const std::size_t total = held.size();
  for (const auto credit : held) {
    Message done;
    done.header.type = MessageType::kDone;
    done.header.src = 1;
    done.header.stage = 0;
    done.header.credit = credit;
    done.header.credit_depth = 0;
    net.send(0, std::move(done));
  }
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());
  // Post-join drain (engine shutdown path): every held credit returns,
  // so the credit-leak audit sees a fully drained fabric.
  net.inbox(0).drain_faults(net.stats());
  std::size_t reacquired = 0;
  while (fc.try_acquire(1, 0, 0).has_value()) ++reacquired;
  EXPECT_EQ(reacquired, total);
}

TEST(Fault, TerminationStatusesAreDuplicatedNotDeduped) {
  Network net(1);
  FaultPlan plan;
  plan.dup_term_prob = 1.0;
  net.set_fault_plan(plan);
  Message term;
  term.header.type = MessageType::kTermination;
  term.header.src = 0;
  net.send(0, std::move(term));
  // Both copies reach the protocol: tolerating them is the §3.4
  // detector's job, not the transport's.
  EXPECT_TRUE(net.inbox(0).try_pop_term().has_value());
  EXPECT_TRUE(net.inbox(0).try_pop_term().has_value());
  EXPECT_FALSE(net.inbox(0).try_pop_term().has_value());
  EXPECT_EQ(net.stats().term_messages.load(), 2u);
}

TEST(Fault, SameSeedSamePlanSameDeliveryOrder) {
  const auto run = [](std::uint64_t seed) {
    Network net(1);
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_prob = 0.5;
    plan.delay_window = 6;
    plan.dup_data_prob = 0.3;
    net.set_fault_plan(plan);
    for (unsigned i = 0; i < 40; ++i) {
      net.send(0, data_message(0, 1, i % 5, /*count=*/i + 1));
    }
    std::vector<std::uint32_t> order;
    // Pops double as limbo ticks; 40 messages resolve well within
    // 40 + 6 polls.
    for (int pops = 0; pops < 200 && order.size() < 40; ++pops) {
      if (auto msg = net.inbox(0).try_pop_data(net.stats())) {
        order.push_back(msg->header.count);
      }
    }
    return order;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  ASSERT_EQ(a.size(), 40u);
  EXPECT_EQ(a, b);  // same seed: byte-identical fault schedule
  EXPECT_NE(a, c);  // different seed: different schedule
}

}  // namespace
}  // namespace rpqd
