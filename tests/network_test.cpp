// Tests for the simulated fabric: inbox priority (§3.2 — deeper depth
// first, later stage first), DONE credit return at delivery time,
// termination-message routing, and statistics.
#include "common/error.h"
#include <gtest/gtest.h>

#include "net/network.h"

namespace rpqd {
namespace {

Message data_message(MachineId src, StageId stage, Depth depth,
                     std::uint32_t count = 1, std::size_t bytes = 8) {
  Message m;
  m.header.type = MessageType::kData;
  m.header.src = src;
  m.header.stage = stage;
  m.header.depth = depth;
  m.header.count = count;
  m.payload.resize(bytes);
  return m;
}

TEST(Inbox, PriorityDeeperDepthFirst) {
  Network net(1);
  net.send(0, data_message(0, 2, 1));
  net.send(0, data_message(0, 2, 5));
  net.send(0, data_message(0, 2, 3));
  auto& inbox = net.inbox(0);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 5u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 3u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.depth, 1u);
  EXPECT_FALSE(inbox.try_pop_data(net.stats()).has_value());
}

TEST(Inbox, PriorityLaterStageFirstAtSameDepth) {
  Network net(1);
  net.send(0, data_message(0, 1, 2));
  net.send(0, data_message(0, 4, 2));
  net.send(0, data_message(0, 3, 2));
  auto& inbox = net.inbox(0);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 4u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 3u);
  EXPECT_EQ(inbox.try_pop_data(net.stats())->header.stage, 1u);
}

TEST(Inbox, DepthDominatesStage) {
  Network net(1);
  net.send(0, data_message(0, 9, 0));
  net.send(0, data_message(0, 1, 4));
  EXPECT_EQ(net.inbox(0).try_pop_data(net.stats())->header.depth, 4u);
}

TEST(Inbox, DoneMessagesReleaseCreditsImmediately) {
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 2, {false});
  Network net(2);
  net.inbox(0).attach_flow_control(&fc);

  // Exhaust machine 0's credits towards machine 1.
  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(1, 0, 0)) held.push_back(*c);
  ASSERT_FALSE(held.empty());
  EXPECT_FALSE(fc.try_acquire(1, 0, 0).has_value());

  // Machine 1 sends a DONE back: credit must be usable without any
  // worker popping anything.
  Message done;
  done.header.type = MessageType::kDone;
  done.header.src = 1;
  done.header.stage = 0;
  done.header.credit = held[0];
  done.header.credit_depth = 0;
  net.send(0, std::move(done));
  EXPECT_TRUE(fc.try_acquire(1, 0, 0).has_value());
  EXPECT_EQ(net.stats().done_messages.load(), 1u);
  EXPECT_FALSE(net.inbox(0).has_data());  // DONEs never queue as data
}

TEST(Inbox, TerminationMessagesQueueSeparately) {
  Network net(1);
  Message term;
  term.header.type = MessageType::kTermination;
  term.header.src = 0;
  net.send(0, std::move(term));
  EXPECT_FALSE(net.inbox(0).has_data());
  EXPECT_TRUE(net.inbox(0).try_pop_term().has_value());
  EXPECT_FALSE(net.inbox(0).try_pop_term().has_value());
  EXPECT_EQ(net.stats().term_messages.load(), 1u);
}

TEST(Network, StatsCountDataBytesAndContexts) {
  Network net(2);
  net.send(1, data_message(0, 1, 0, 3, 100));
  net.send(1, data_message(0, 1, 0, 2, 50));
  EXPECT_EQ(net.stats().data_messages.load(), 2u);
  EXPECT_EQ(net.stats().contexts.load(), 5u);
  EXPECT_EQ(net.stats().bytes.load(), 150u);
}

TEST(Network, PeakQueuedBytesHighWaterMark) {
  Network net(1);
  net.send(0, data_message(0, 1, 0, 1, 100));
  net.send(0, data_message(0, 1, 0, 1, 200));
  EXPECT_EQ(net.stats().queued_bytes.load(), 300u);
  EXPECT_EQ(net.stats().peak_queued_bytes.load(), 300u);
  net.inbox(0).try_pop_data(net.stats());
  net.inbox(0).try_pop_data(net.stats());
  EXPECT_EQ(net.stats().queued_bytes.load(), 0u);
  EXPECT_EQ(net.stats().peak_queued_bytes.load(), 300u);  // peak sticks
}

TEST(Network, SendToUnknownMachineThrows) {
  Network net(2);
  EXPECT_THROW(net.send(5, data_message(0, 0, 0)), EngineError);
}

}  // namespace
}  // namespace rpqd
