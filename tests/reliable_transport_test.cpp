// Reliable delivery over a lossy, corrupting fabric (DESIGN.md §13).
//
// Contract under test: with a lossy FaultPlan (loss_rate / corrupt_rate)
// or EngineConfig::reliable_transport, the Network layers per-link
// sequence numbers, CRC32 checksums, cumulative + selective acks, and
// seeded-backoff retransmission over the adversarial fabric — and every
// protocol riding on it (data, DONE credit returns, §3.4 termination,
// kAbort) must either finish exactly (oracle counts, zero outstanding
// credits, consensus == max depth) or escalate a dead link into a typed
// AbortReason::kMachineFailure within a bounded number of retransmits.
// A hang is never acceptable: every end-to-end test runs under a
// watchdog.
//
// The corpus companion (tests/corpus/loss/loss_shapes.txt) pins the
// named loss shapes — full-class loss, DONE-only starvation, dead data
// links, termination-status loss, lossy chaos with a crash — as
// replayable lines; ReliableTransport.CorpusShapes replays them. The
// acceptance-scale stress runs under the `tier2-loss` ctest label,
// enabled by RPQD_TIER2_LOSS=1 (TSan green here is the data-race gate
// for the retransmit-timer and ack paths).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "ldbc/synthetic.h"
#include "net/network.h"

#ifndef RPQD_LOSS_CORPUS_DIR
#error "RPQD_LOSS_CORPUS_DIR must point at tests/corpus/loss"
#endif

namespace rpqd {
namespace {

EngineConfig small_config() {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  return ec;
}

std::uint64_t oracle_count(const std::string& query, const Graph& g) {
  return baseline::reference_evaluate(query, g).count;
}

/// Every lossy run, clean or aborted, must leave the fabric reconciled:
/// all credits home and the reach index uncorrupted.
void check_transport_invariants(const QueryResult& result,
                                const std::string& what) {
  EXPECT_EQ(result.stats.flow_outstanding, 0u)
      << "credit leak under loss; " << what;
  EXPECT_EQ(result.stats.flow_overflow_outstanding, 0u)
      << "stale overflow bookkeeping under loss; " << what;
  EXPECT_EQ(result.stats.flow_emergency, 0u)
      << "emergency credit taken under loss; " << what;
  for (std::size_t g = 0; g < result.stats.rpq.size(); ++g) {
    EXPECT_EQ(result.stats.rpq[g].index_duplicate_entries, 0u)
        << "duplicate reach-index entries in group " << g << "; " << what;
  }
}

/// A lossy fabric that wedges the engine is the bug class this layer
/// exists to prevent: fail loudly instead of hanging the suite.
QueryResult run_with_watchdog(Database& db, const std::string& query,
                              int timeout_s = 60) {
  auto fut = std::async(std::launch::async,
                        [&db, query] { return db.query(query); });
  if (fut.wait_for(std::chrono::seconds(timeout_s)) !=
      std::future_status::ready) {
    std::fprintf(stderr, "FATAL: lossy-fabric query hung past the watchdog\n");
    std::abort();
  }
  return fut.get();
}

// ------------------------------------------------------------- checksum --

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The universal CRC32 test vector: crc32("123456789") == 0xcbf43926.
  const char* digits = "123456789";
  std::vector<std::byte> data;
  for (const char* p = digits; *p != '\0'; ++p) {
    data.push_back(static_cast<std::byte>(*p));
  }
  EXPECT_EQ(crc32(data), 0xcbf43926u);
  EXPECT_EQ(crc32(std::span<const std::byte>{}), 0u);
}

TEST(Crc32, OneFlippedBitChangesTheChecksum) {
  std::vector<std::byte> data(64, std::byte{0x5a});
  const std::uint32_t clean = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= std::byte{1};
    EXPECT_NE(crc32(data), clean) << "flip at byte " << i;
    data[i] ^= std::byte{1};
  }
}

// ------------------------------------------------- transport unit tests --

Message data_message(MachineId src, StageId stage, Depth depth,
                     std::uint32_t count = 1, std::size_t bytes = 8) {
  Message m;
  m.header.type = MessageType::kData;
  m.header.src = src;
  m.header.stage = stage;
  m.header.depth = depth;
  m.header.count = count;
  m.payload.resize(bytes, std::byte{0x42});
  return m;
}

TEST(ReliableFabric, SequencedMessagesCarryLinkSeqAndCrc) {
  Network net(2);
  net.configure_reliability(ReliableConfig{.enabled = true});
  ASSERT_TRUE(net.reliable());
  net.send(1, data_message(0, 1, 0, 1, 16));
  net.send(1, data_message(0, 1, 0, 1, 16));
  auto first = net.inbox(1).try_pop_data(net.stats());
  auto second = net.inbox(1).try_pop_data(net.stats());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->header.link_seq, 1u);
  EXPECT_EQ(second->header.link_seq, 2u);
  EXPECT_EQ(first->header.crc, crc32(first->payload));
}

TEST(ReliableFabric, DuplicateDeliveryIsDroppedBeforeAnyCounting) {
  // Satellite audit: the exactly-once counters must not move for a
  // duplicate — dedup runs BEFORE data_messages/bytes/contexts counting.
  Network net(2);
  FaultPlan plan;
  plan.dup_data_prob = 1.0;        // every send injects one extra copy
  plan.loss_rate = 0.000001;       // arms the reliable layer; never fires
  net.set_fault_plan(plan);
  net.configure_reliability(ReliableConfig{});
  ASSERT_TRUE(net.reliable());
  net.send(1, data_message(0, 1, 0, 3, 32));
  EXPECT_EQ(net.stats().faults_duplicated.load(), 1u);
  EXPECT_EQ(net.stats().dedup_drops.load(), 1u);  // link-seq dedup, not seen_
  EXPECT_EQ(net.stats().data_messages.load(), 1u);
  EXPECT_EQ(net.stats().contexts.load(), 3u);
  EXPECT_EQ(net.stats().bytes.load(), 32u);
  EXPECT_TRUE(net.inbox(1).try_pop_data(net.stats()).has_value());
  EXPECT_FALSE(net.inbox(1).try_pop_data(net.stats()).has_value());
}

TEST(ReliableFabric, CorruptedPayloadIsDetectedAndDropped) {
  Network net(2);
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.corrupt_classes = kFaultClassData;
  net.set_fault_plan(plan);
  net.configure_reliability(ReliableConfig{});
  net.send(1, data_message(0, 1, 0, 1, 64));
  // Both the original and any retransmission are corrupted; the receiver
  // must detect and drop every copy without counting a delivery.
  EXPECT_GE(net.stats().faults_corrupted.load(), 1u);
  EXPECT_GE(net.stats().payload_corruptions_detected.load(), 1u);
  EXPECT_EQ(net.stats().data_messages.load(), 0u);
  EXPECT_FALSE(net.inbox(1).has_data());
}

TEST(ReliableFabric, LostMessageIsRecoveredByPump) {
  Network net(2);
  FaultPlan plan;
  plan.seed = 7;
  plan.loss_rate = 0.5;
  plan.loss_classes = kFaultClassData;
  net.set_fault_plan(plan);
  ReliableConfig rc;
  rc.retransmit_timeout_ticks = 4;
  net.configure_reliability(rc);
  for (unsigned i = 0; i < 16; ++i) {
    net.send(1, data_message(0, 1, 0, 1, 16));
  }
  // Half the attempts vanish; pumping the timers must eventually deliver
  // every message exactly once (bounded: loss_rate < 1 and fresh dice
  // per attempt).
  for (int tick = 0; tick < 4000 && net.stats().data_messages.load() < 16;
       ++tick) {
    net.pump(0);
  }
  EXPECT_EQ(net.stats().data_messages.load(), 16u);
  EXPECT_GE(net.stats().faults_lost.load(), 1u);
  EXPECT_GE(net.stats().retransmits.load(), 1u);
  unsigned popped = 0;
  while (net.inbox(1).try_pop_data(net.stats()).has_value()) ++popped;
  EXPECT_EQ(popped, 16u);  // exactly once each, despite retransmission
}

// --------------------------------------------------- end-to-end queries --

TEST(ReliableTransport, LossScheduleMatchesOracle) {
  Database db(synthetic::make_complete(10), 3, small_config());
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const std::uint64_t expected = oracle_count(query, db.graph());
  for (std::uint64_t fseed : {1u, 12u, 123u}) {
    db.set_fault_schedule("loss", fseed);
    const QueryResult result = run_with_watchdog(db, query);
    EXPECT_FALSE(result.aborted) << "fseed=" << fseed;
    EXPECT_EQ(result.count, expected) << "fseed=" << fseed;
    EXPECT_GE(result.stats.faults_lost, 1u) << "fseed=" << fseed;
    EXPECT_GE(result.stats.retransmits, 1u) << "fseed=" << fseed;
    check_transport_invariants(result, "loss fseed=" + std::to_string(fseed));
  }
}

TEST(ReliableTransport, CorruptStormMatchesOracleAndDetectsEveryHit) {
  Database db(synthetic::make_complete(10), 3, small_config());
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const std::uint64_t expected = oracle_count(query, db.graph());
  db.set_fault_schedule("corrupt-storm", 5);
  const QueryResult result = run_with_watchdog(db, query);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, expected);
  EXPECT_GE(result.stats.faults_corrupted, 1u);
  // Every corrupted payload must be caught by the CRC (or voided as a
  // headers-only frame, which also ticks the detection counter).
  EXPECT_GE(result.stats.payload_corruptions_detected, 1u);
  check_transport_invariants(result, "corrupt-storm");
}

// Satellite regression: a lost DONE credit return used to starve the
// sender forever (blocked in acquire_credit_blocking with no one to wake
// it). The transport retransmits the DONE; the blocked acquire loop
// pumps the timers, so the sender recovers without any external help.
TEST(ReliableTransport, LostCreditReturnsAreRetransmittedNotStarved) {
  EngineConfig ec = small_config();
  ec.buffers_per_machine = 24;  // tight credits: DONEs matter constantly
  ec.fault_plan.loss_rate = 0.4;
  ec.fault_plan.loss_classes = kFaultClassDone;  // ONLY credit returns
  Database db(synthetic::make_complete(10), 3, ec);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const std::uint64_t expected = oracle_count(query, db.graph());
  const QueryResult result = run_with_watchdog(db, query);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, expected);
  EXPECT_GE(result.stats.faults_lost, 1u);
  EXPECT_GE(result.stats.retransmits, 1u);
  check_transport_invariants(result, "DONE-only loss");
}

// §3.4 under loss: termination statuses are dropped at a high rate; the
// transport re-delivers them in order, the two-wave protocol converges,
// and the consensus depth still equals the max observed depth.
TEST(ReliableTransport, TerminationStatusLossStillReachesConsensus) {
  EngineConfig ec = small_config();
  ec.fault_plan.loss_rate = 0.8;
  ec.fault_plan.loss_classes = kFaultClassTermination;
  Database db(synthetic::make_chain(24), 3, ec);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)";
  const std::uint64_t expected = oracle_count(query, db.graph());
  const QueryResult result = run_with_watchdog(db, query);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, expected);
  EXPECT_GE(result.stats.faults_lost, 1u);
  ASSERT_EQ(result.stats.rpq.size(), 1u);
  ASSERT_TRUE(result.stats.rpq[0].consensus_max_depth.has_value());
  EXPECT_EQ(*result.stats.rpq[0].consensus_max_depth,
            result.stats.rpq[0].max_depth_observed);
  check_transport_invariants(result, "termination-status loss");
}

// Satellite regression, part two: a link that NEVER delivers (loss rate
// 1.0 on data) must escalate into the typed machine-failure abort within
// the retransmit budget — bounded time, never a starved hang.
TEST(ReliableTransport, DeadDataLinkEscalatesToMachineFailure) {
  EngineConfig ec = small_config();
  ec.fault_plan.loss_rate = 1.0;
  ec.fault_plan.loss_classes = kFaultClassData;
  ec.max_retransmits = 4;           // small budget: escalate fast
  ec.retransmit_timeout_ticks = 8;
  Database db(synthetic::make_complete(10), 2, ec);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const auto start = std::chrono::steady_clock::now();
  const QueryResult result = run_with_watchdog(db, query, 30);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.aborted) << "dead link finished a remote query?";
  EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure);
  EXPECT_TRUE(abort_reason_retryable(result.abort_reason));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            25) << "escalation not bounded";
  check_transport_invariants(result, "dead data link");
}

TEST(ReliableTransport, AllPayloadsCorruptedAbortsNotHangs) {
  EngineConfig ec = small_config();
  ec.fault_plan.corrupt_rate = 1.0;
  ec.fault_plan.corrupt_classes = kFaultClassData;
  ec.max_retransmits = 4;
  ec.retransmit_timeout_ticks = 8;
  Database db(synthetic::make_complete(10), 2, ec);
  const QueryResult result = run_with_watchdog(
      db, "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)", 30);
  ASSERT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure);
  EXPECT_GE(result.stats.payload_corruptions_detected, 1u);
  check_transport_invariants(result, "all data corrupted");
}

// kAbort loss tolerance: the deadline monitor's abort broadcast rides
// the lossy fabric too. pump re-broadcasts the pending abort until every
// live inbox observed it, so even a 90%-lossy abort channel terminates
// the query.
TEST(ReliableTransport, AbortBroadcastSurvivesAbortClassLoss) {
  EngineConfig ec = small_config();
  ec.fault_plan.loss_rate = 0.9;
  ec.fault_plan.loss_classes = kFaultClassAbort;
  ec.query_deadline_ms = 5;
  Database db(synthetic::make_complete(12), 3, ec);
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  const std::uint64_t expected = oracle_count(query, db.graph());
  const QueryResult result = run_with_watchdog(db, query, 30);
  if (result.aborted) {
    EXPECT_EQ(result.abort_reason, AbortReason::kDeadline);
  } else {
    EXPECT_EQ(result.count, expected);  // won the race with the deadline
  }
  check_transport_invariants(result, "abort-class loss");
}

// reliable_transport=true on a loss-free fabric: pure overhead mode. The
// answer is identical to the plain run and no retransmission ever fires
// (nothing is lost, acks flow, timers never expire spuriously).
TEST(ReliableTransport, ZeroLossReliableModeIsExactWithNoRetransmits) {
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  Database plain(synthetic::make_complete(10), 3, small_config());
  const QueryResult base = plain.query(query);

  EngineConfig ec = small_config();
  ec.reliable_transport = true;
  Database reliable(synthetic::make_complete(10), 3, ec);
  const QueryResult result = run_with_watchdog(reliable, query);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.count, base.count);
  EXPECT_EQ(result.stats.faults_lost, 0u);
  EXPECT_EQ(result.stats.faults_corrupted, 0u);
  EXPECT_EQ(result.stats.retransmits, 0u);
  EXPECT_EQ(result.stats.dedup_drops, 0u);
  // Message/context tallies are scheduling-dependent (batch flush
  // timing, aDFS adoption), so only their presence is comparable — the
  // answer and the zeroed fault counters above are the exactness claim.
  EXPECT_GT(result.stats.data_messages, 0u);
  EXPECT_GE(result.stats.contexts_sent, base.stats.contexts_sent > 0 ? 1u : 0u);
  check_transport_invariants(result, "reliable, zero loss");
}

// ------------------------------------------------- observability plumb --

TEST(ReliableTransport, TransportCountersSurfaceInSummaryAndProfile) {
  EngineConfig ec = small_config();
  ec.profile = true;
  Database db(synthetic::make_complete(10), 3, ec);
  db.set_fault_schedule("loss", 99);
  const QueryResult result = run_with_watchdog(
      db, "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  ASSERT_FALSE(result.aborted);
  ASSERT_GE(result.stats.faults_lost, 1u);
  // QueryStats summary line.
  EXPECT_NE(result.stats.summary().find("transport:"), std::string::npos);
  // PR-3 profile: query-global transport block, text and JSON.
  ASSERT_TRUE(result.profile.enabled);
  EXPECT_TRUE(result.profile.transport.any());
  EXPECT_EQ(result.profile.transport.faults_lost, result.stats.faults_lost);
  EXPECT_EQ(result.profile.transport.retransmits, result.stats.retransmits);
  EXPECT_NE(result.profile.text().find("transport:"), std::string::npos);
  EXPECT_NE(result.profile.to_json().find("\"transport\""),
            std::string::npos);

  // Fault-free runs keep the block silent (and the JSON well-formed).
  db.set_fault_schedule("none", 0);
  const QueryResult clean = db.query(
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)");
  EXPECT_FALSE(clean.profile.transport.any());
  EXPECT_EQ(clean.profile.text().find("transport:"), std::string::npos);
}

// --------------------------------------------------------------- corpus --

struct LossCorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string shape;  // named schedule or masked-class spec
  std::uint64_t fault_seed = 0;
  std::string query;
  std::string source;
};

Graph make_corpus_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  std::vector<std::uint64_t> args;
  {
    std::istringstream in(spec);
    std::string field;
    in.ignore(static_cast<std::streamsize>(spec.find(':')) + 1);
    while (std::getline(in, field, ':')) args.push_back(std::stoull(field));
  }
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  ADD_FAILURE() << "unknown loss-corpus graph spec: " << spec;
  return Graph{};
}

void load_loss_corpus(std::vector<LossCorpusEntry>& entries) {
  const std::filesystem::path dir{RPQD_LOSS_CORPUS_DIR};
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar = line.find('|');
      ASSERT_NE(bar, std::string::npos)
          << "malformed loss-corpus line " << file.path() << ":" << lineno;
      LossCorpusEntry e;
      std::istringstream head(line.substr(0, bar));
      head >> e.graph_spec >> e.machines >> e.shape >> e.fault_seed;
      ASSERT_FALSE(head.fail())
          << "malformed loss-corpus line " << file.path() << ":" << lineno;
      e.query = line.substr(bar + 1);
      e.query.erase(0, e.query.find_first_not_of(' '));
      e.source =
          file.path().filename().string() + ":" + std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  ASSERT_FALSE(entries.empty()) << "loss corpus empty: " << dir;
}

/// Masked-class shapes beyond the named schedules:
///   done-loss:<pct>   loss on DONE credit returns only
///   term-loss:<pct>   loss on termination statuses only
///   data-dead         loss 1.0 on data (must escalate, not hang)
void replay_loss_entry(const LossCorpusEntry& e) {
  SCOPED_TRACE(e.source + " shape=" + e.shape + " query=" + e.query);
  const Graph oracle = make_corpus_graph(e.graph_spec);
  const std::uint64_t expected = oracle_count(e.query, oracle);
  const std::string kind = e.shape.substr(0, e.shape.find(':'));

  EngineConfig ec = small_config();
  bool expect_escalation = false;
  bool named_schedule = false;
  if (kind == "done-loss" || kind == "term-loss") {
    const double pct =
        std::stod(e.shape.substr(e.shape.find(':') + 1)) / 100.0;
    ec.fault_plan.seed = e.fault_seed;
    ec.fault_plan.loss_rate = pct;
    ec.fault_plan.loss_classes =
        kind == "done-loss" ? kFaultClassDone : kFaultClassTermination;
  } else if (kind == "data-dead") {
    ec.fault_plan.seed = e.fault_seed;
    ec.fault_plan.loss_rate = 1.0;
    ec.fault_plan.loss_classes = kFaultClassData;
    ec.max_retransmits = 4;
    ec.retransmit_timeout_ticks = 8;
    expect_escalation = true;
  } else {
    named_schedule = true;  // loss / corrupt-storm / lossy-chaos / ...
  }

  Database db(make_corpus_graph(e.graph_spec), e.machines, ec);
  if (named_schedule) db.set_fault_schedule(e.shape, e.fault_seed);

  const QueryResult result =
      named_schedule && e.shape == "lossy-chaos"
          ? db.run_with_retry(e.query)  // the schedule arms a crash
          : run_with_watchdog(db, e.query);
  if (expect_escalation) {
    // The query may legitimately finish when the partitioning kept every
    // traversal local; when it aborted it must be the typed escalation.
    if (result.aborted) {
      EXPECT_EQ(result.abort_reason, AbortReason::kMachineFailure);
    } else {
      EXPECT_EQ(result.count, expected);
    }
  } else {
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.count, expected);
  }
  check_transport_invariants(result, "loss corpus " + e.source);
}

TEST(ReliableTransport, CorpusShapes) {
  std::vector<LossCorpusEntry> entries;
  load_loss_corpus(entries);
  for (const auto& e : entries) replay_loss_entry(e);
}

// ------------------------------------------------------- tier2 stress ---

// Acceptance-scale stress for the `tier2-loss` label: many seeds, every
// lossy shape, with retry where a crash is armed. TSan green here is the
// data-race gate for the retransmit-timer, ack, and pump paths.
TEST(ReliableTransport, Tier2LossStress) {
  if (std::getenv("RPQD_TIER2_LOSS") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_LOSS=1 (or run ctest -L tier2-loss)";
  }
  const std::string query =
      "SELECT COUNT(*) FROM MATCH (v0) -/:edge*/-> (v1)";
  for (unsigned machines : {2u, 3u, 5u}) {
    Database db(synthetic::make_complete(12), machines, small_config());
    const std::uint64_t expected = oracle_count(query, db.graph());
    for (const char* schedule : {"loss", "corrupt-storm", "lossy-chaos"}) {
      for (std::uint64_t fseed = 1; fseed <= 12; ++fseed) {
        db.set_fault_schedule(schedule, fseed * 7919);
        const QueryResult result = db.run_with_retry(query);
        const std::string repro = std::string("tier2 schedule=") + schedule +
                                  " fseed=" + std::to_string(fseed * 7919) +
                                  " machines=" + std::to_string(machines);
        EXPECT_FALSE(result.aborted) << repro;
        EXPECT_EQ(result.count, expected) << repro;
        check_transport_invariants(result, repro);
      }
    }
  }
}

}  // namespace
}  // namespace rpqd
