// Multi-threaded stress tests for the two lock-free hot paths: the
// reachability index's CAS claim protocol and the flow-control credit
// counters. Designed to run under -DRPQD_SANITIZE=thread (the tsan
// CMake preset); assertions also hold without instrumentation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/flow_control.h"
#include "rpq/reach_index.h"
#include "rpq/rpid.h"

namespace rpqd {
namespace {

TEST(ConcurrencyStress, ReachIndexMixedWorkloadStaysConsistent) {
  // All threads hammer a small vertex range with overlapping keys at
  // random depths, forcing claim races, depth races, and segment growth
  // concurrently. Invariants: one kNew per distinct (vertex, rpid) pair,
  // every other call accounted as eliminated or duplicated, and each
  // surviving depth is the minimum ever written for its key.
  constexpr unsigned kThreads = 8;
  constexpr unsigned kVertices = 32;
  constexpr unsigned kRpids = 256;
  constexpr unsigned kOpsPerThread = 20000;
  ReachabilityIndex idx(kVertices, /*preallocate=*/true, /*num_shards=*/4);
  std::vector<std::vector<std::atomic<std::uint32_t>>> min_depth(kVertices);
  for (auto& row : min_depth) {
    row = std::vector<std::atomic<std::uint32_t>>(kRpids);
    for (auto& d : row) d.store(kUnboundedDepth, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> new_count{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (unsigned i = 0; i < kOpsPerThread; ++i) {
        const auto v = static_cast<LocalVertexId>(rng.next_below(kVertices));
        const std::uint64_t r = rng.next_below(kRpids);
        const auto depth = static_cast<Depth>(1 + rng.next_below(64));
        // Track the true minimum independently of the index.
        auto& expected = min_depth[v][r];
        std::uint32_t seen = expected.load(std::memory_order_relaxed);
        while (depth < seen &&
               !expected.compare_exchange_weak(seen, depth,
                                               std::memory_order_relaxed)) {
        }
        if (idx.check_and_update(v, r, depth) == ReachOutcome::kNew) {
          new_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = idx.stats();
  EXPECT_EQ(stats.entries, new_count.load());
  EXPECT_EQ(stats.entries + stats.eliminated + stats.duplicated,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  std::uint64_t touched = 0;
  for (unsigned v = 0; v < kVertices; ++v) {
    for (unsigned r = 0; r < kRpids; ++r) {
      const auto expected = min_depth[v][r].load(std::memory_order_relaxed);
      const auto stored = idx.lookup(v, r);
      if (expected == kUnboundedDepth) {
        EXPECT_FALSE(stored.has_value());
      } else {
        ++touched;
        ASSERT_TRUE(stored.has_value()) << "v=" << v << " r=" << r;
        EXPECT_EQ(*stored, expected) << "v=" << v << " r=" << r;
      }
    }
  }
  EXPECT_EQ(touched, stats.entries);
}

TEST(ConcurrencyStress, ReachIndexConcurrentGrowth) {
  // Distinct keys from every thread, small first segments: growth (the
  // next_segment CAS) races constantly. Every insert must be kNew and
  // every key must be findable afterwards.
  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 4000;
  ReachabilityIndex idx(8, /*preallocate=*/false, /*num_shards=*/2);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        const auto rpid = make_rpid_source(0, static_cast<WorkerId>(t), i);
        const auto v = static_cast<LocalVertexId>(i % 8);
        EXPECT_EQ(idx.check_and_update(v, rpid, 1), ReachOutcome::kNew);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.stats().entries,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned i = 0; i < kPerThread; i += 97) {
      EXPECT_TRUE(
          idx.lookup(static_cast<LocalVertexId>(i % 8),
                     make_rpid_source(0, static_cast<WorkerId>(t), i))
              .has_value());
    }
  }
}

TEST(ConcurrencyStress, FlowControlCreditsConserve) {
  // Threads acquire and release credits against shared (dest, stage,
  // depth) coordinates. Credits must conserve: everything acquired is
  // released, outstanding returns to zero, and the dedicated pools
  // refill to allow further grants.
  constexpr unsigned kThreads = 8;
  constexpr unsigned kOpsPerThread = 20000;
  EngineConfig cfg;
  cfg.buffers_per_machine = 256;
  cfg.rpq_preallocated_depth = 4;
  cfg.rpq_shared_credits_per_stage = 3;
  FlowControl fc(cfg, 2, {false, true});
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      std::vector<std::tuple<MachineId, StageId, Depth, CreditClass>> held;
      for (unsigned i = 0; i < kOpsPerThread; ++i) {
        const auto dest = static_cast<MachineId>(rng.next_below(2));
        const auto stage = static_cast<StageId>(rng.next_below(2));
        const auto depth = static_cast<Depth>(rng.next_below(8));
        if (const auto c = fc.try_acquire(dest, stage, depth)) {
          held.emplace_back(dest, stage, depth, *c);
        }
        if (!held.empty() && rng.next_below(2) == 0) {
          const auto [d, s, dp, cc] = held.back();
          held.pop_back();
          fc.release(d, s, dp, cc);
        }
      }
      for (const auto& [d, s, dp, cc] : held) fc.release(d, s, dp, cc);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(fc.outstanding(), 0u);
  const auto stats = fc.stats();
  EXPECT_GT(stats.acquired, 0u);
  EXPECT_GT(stats.fast_path, 0u);
  EXPECT_EQ(stats.emergency_used, 0u);
  // Pools refilled: a full per-slot allowance is grantable again.
  std::vector<CreditClass> drained;
  while (const auto c = fc.try_acquire(0, 0, 0)) drained.push_back(*c);
  EXPECT_GE(drained.size(), 2u);
  for (const auto c : drained) fc.release(0, 0, 0, c);
  EXPECT_EQ(fc.outstanding(), 0u);
}

TEST(ConcurrencyStress, FlowControlBlockedSendersWake) {
  // One consumer holds all credits, many producers spin on
  // wait_for_release; when the consumer releases, producers must make
  // progress (no lost wakeups, bounded by the timed wait either way).
  EngineConfig cfg;
  cfg.buffers_per_machine = 4;
  FlowControl fc(cfg, 1, {false});
  std::vector<CreditClass> held;
  while (const auto c = fc.try_acquire(0, 0, 0)) held.push_back(*c);
  ASSERT_FALSE(held.empty());

  std::atomic<unsigned> got{0};
  constexpr unsigned kProducers = 4;
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      while (true) {
        if (const auto c = fc.try_acquire(0, 0, 0)) {
          got.fetch_add(1);
          fc.release(0, 0, 0, *c);
          return;
        }
        fc.wait_for_release(std::chrono::microseconds(500));
      }
    });
  }
  for (const auto c : held) fc.release(0, 0, 0, c);
  for (auto& th : producers) th.join();
  EXPECT_EQ(got.load(), kProducers);
  EXPECT_EQ(fc.outstanding(), 0u);
}

}  // namespace
}  // namespace rpqd
