// Tests for the reachability index (§3.5): outcome semantics, statistics
// arithmetic, rpid encoding, and concurrent check-and-update.
#include "common/error.h"
#include <gtest/gtest.h>

#include <thread>

#include "rpq/reach_index.h"
#include "rpq/rpid.h"

namespace rpqd {
namespace {

TEST(Rpid, EncodingRoundTrip) {
  const auto rpid = make_rpid_source(7, 3, 123456789);
  EXPECT_EQ(rpid_machine(rpid), 7);
  EXPECT_EQ(rpid_worker(rpid), 3);
  EXPECT_EQ(rpid_seq(rpid), 123456789u);
}

TEST(Rpid, SeqWraps48Bits) {
  const auto rpid = make_rpid_source(255, 255, ~0ull);
  EXPECT_EQ(rpid_machine(rpid), 255);
  EXPECT_EQ(rpid_worker(rpid), 255);
  EXPECT_EQ(rpid_seq(rpid), kRpidSeqMask);
}

TEST(Rpid, DistinctWorkersDistinctIds) {
  EXPECT_NE(make_rpid_source(0, 1, 5), make_rpid_source(1, 0, 5));
  EXPECT_NE(make_rpid_source(0, 0, 5), make_rpid_source(0, 0, 6));
}

TEST(ReachIndex, FirstVisitIsNew) {
  ReachabilityIndex idx(10);
  EXPECT_EQ(idx.check_and_update(3, 111, 2), ReachOutcome::kNew);
  EXPECT_EQ(idx.stats().entries, 1u);
  EXPECT_EQ(*idx.lookup(3, 111), 2u);
}

TEST(ReachIndex, SameOrLowerDepthEliminates) {
  ReachabilityIndex idx(10);
  idx.check_and_update(3, 111, 2);
  EXPECT_EQ(idx.check_and_update(3, 111, 2), ReachOutcome::kEliminated);
  EXPECT_EQ(idx.check_and_update(3, 111, 5), ReachOutcome::kEliminated);
  EXPECT_EQ(idx.stats().eliminated, 2u);
  EXPECT_EQ(*idx.lookup(3, 111), 2u);  // unchanged
}

TEST(ReachIndex, GreaterStoredDepthDuplicates) {
  ReachabilityIndex idx(10);
  idx.check_and_update(3, 111, 5);
  EXPECT_EQ(idx.check_and_update(3, 111, 2), ReachOutcome::kDuplicated);
  EXPECT_EQ(idx.stats().duplicated, 1u);
  EXPECT_EQ(*idx.lookup(3, 111), 2u);  // updated downwards
}

TEST(ReachIndex, DistinctSourcesIndependent) {
  ReachabilityIndex idx(10);
  EXPECT_EQ(idx.check_and_update(3, 1, 0), ReachOutcome::kNew);
  EXPECT_EQ(idx.check_and_update(3, 2, 0), ReachOutcome::kNew);
  EXPECT_EQ(idx.check_and_update(4, 1, 0), ReachOutcome::kNew);
  EXPECT_EQ(idx.stats().entries, 3u);
}

TEST(ReachIndex, TwelveBytesPerEntry) {
  ReachabilityIndex idx(100);
  for (std::uint64_t i = 0; i < 50; ++i) {
    idx.check_and_update(static_cast<LocalVertexId>(i % 100), i * 7, 1);
  }
  EXPECT_EQ(idx.stats().dynamic_bytes, idx.stats().entries * 12);
}

TEST(ReachIndex, LookupMissing) {
  ReachabilityIndex idx(10);
  EXPECT_FALSE(idx.lookup(3, 42).has_value());
  idx.check_and_update(3, 42, 1);
  EXPECT_FALSE(idx.lookup(4, 42).has_value());
  EXPECT_FALSE(idx.lookup(3, 43).has_value());
}

TEST(ReachIndex, OutOfRangeVertexThrows) {
  ReachabilityIndex idx(5);
  EXPECT_THROW(idx.check_and_update(9, 1, 0), EngineError);
}

TEST(ReachIndex, ConcurrentInsertsAreExact) {
  // N threads insert overlapping (vertex, rpid) pairs; the totals must be
  // exact: one kNew per distinct pair, everything else accounted as
  // eliminated (same depth everywhere).
  constexpr unsigned kThreads = 4;
  constexpr unsigned kVertices = 64;
  constexpr unsigned kRpids = 64;
  ReachabilityIndex idx(kVertices);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx] {
      for (unsigned v = 0; v < kVertices; ++v) {
        for (unsigned r = 0; r < kRpids; ++r) {
          idx.check_and_update(v, r, 3);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = idx.stats();
  EXPECT_EQ(stats.entries, static_cast<std::uint64_t>(kVertices) * kRpids);
  EXPECT_EQ(stats.eliminated,
            static_cast<std::uint64_t>(kVertices) * kRpids * (kThreads - 1));
  EXPECT_EQ(stats.duplicated, 0u);
}

TEST(ReachIndex, PreallocatedHotPathIsAllocationFree) {
  // The §4.5 guarantee: with preallocation the bump-arena absorbs every
  // segment (first segments and growth), so inserts never hit the heap.
  ReachabilityIndex idx(4, /*preallocate=*/true, /*num_shards=*/1);
  for (std::uint64_t r = 0; r < 1000; ++r) {
    idx.check_and_update(static_cast<LocalVertexId>(r % 4), r, 1);
  }
  const auto stats = idx.stats();
  EXPECT_EQ(stats.entries, 1000u);
  EXPECT_EQ(stats.hot_allocations, 0u);
  EXPECT_GT(stats.reserved_bytes, 0u);
}

TEST(ReachIndex, LazyGrowthCountsHotAllocations) {
  // Without preallocation the same workload must grow past the initial
  // segment and report those heap allocations.
  ReachabilityIndex idx(4, /*preallocate=*/false, /*num_shards=*/1);
  for (std::uint64_t r = 0; r < 1000; ++r) {
    idx.check_and_update(static_cast<LocalVertexId>(r % 4), r, 1);
  }
  const auto stats = idx.stats();
  EXPECT_EQ(stats.entries, 1000u);
  EXPECT_GT(stats.hot_allocations, 0u);
}

TEST(ReachIndex, ManyShardsStayExact) {
  // Counts must be exact regardless of the shard count (including shard
  // counts rounded up to a power of two).
  for (const unsigned shards : {1u, 3u, 16u, 64u}) {
    ReachabilityIndex idx(100, false, shards);
    for (std::uint64_t r = 0; r < 500; ++r) {
      idx.check_and_update(static_cast<LocalVertexId>(r % 100), r / 100, 2);
    }
    EXPECT_EQ(idx.stats().entries, 500u) << "shards=" << shards;
    EXPECT_EQ(*idx.lookup(42, 3), 2u) << "shards=" << shards;
  }
}

TEST(ReachIndex, ConcurrentDepthRace) {
  // Concurrent different-depth updates must settle on the minimum depth.
  ReachabilityIndex idx(1);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&idx, t] {
      for (Depth d = 10 + t; d > 0; --d) {
        idx.check_and_update(0, 7, d);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(*idx.lookup(0, 7), 1u);
}

}  // namespace
}  // namespace rpqd
