// Seed-replay regression corpus: every line of tests/corpus/*.txt is a
// fully-specified differential run — graph spec, partition count, fault
// schedule, fault seed, and query — replayed against the reference
// oracle with full invariant checks. Entries are either edge-shaped by
// construction (empty graph, self-loops, unbounded * over cycles) or
// replay keys of runs that once failed; a failing differential-harness
// repro line converts directly into a corpus line.
//
// Line format (whitespace-separated, '#' starts a comment):
//   <graph-spec> <machines> <schedule> <fault-seed> | <query>
// Graph specs:
//   random:<nv>:<ne>:<vlabels>:<elabels>:<self-loops>:<seed>
//   chain:<n>   cycle:<n>   complete:<n>   tree:<arity>:<depth>
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "ldbc/synthetic.h"

#ifndef RPQD_CORPUS_DIR
#error "RPQD_CORPUS_DIR must point at tests/corpus"
#endif

namespace rpqd {
namespace {

std::vector<std::uint64_t> split_numbers(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::istringstream in(spec);
  std::string field;
  in.ignore(spec.find(':') + 1);  // skip the kind prefix
  while (std::getline(in, field, ':')) {
    out.push_back(std::stoull(field));
  }
  return out;
}

Graph make_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  const auto args = split_numbers(spec);
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  if (kind == "random") {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = args.at(0);
    cfg.num_edges = args.at(1);
    cfg.num_vertex_labels = static_cast<unsigned>(args.at(2));
    cfg.num_edge_labels = static_cast<unsigned>(args.at(3));
    cfg.allow_self_loops = args.at(4) != 0;
    cfg.seed = args.at(5);
    return synthetic::make_random(cfg);
  }
  ADD_FAILURE() << "unknown corpus graph spec: " << spec;
  return Graph{};
}

struct CorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string schedule;
  std::uint64_t fault_seed = 0;
  std::string query;
  std::string source;  // file:line for failure messages
};

std::vector<CorpusEntry> load_corpus() {
  std::vector<CorpusEntry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(RPQD_CORPUS_DIR)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar = line.find('|');
      if (bar == std::string::npos) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      CorpusEntry e;
      std::istringstream head(line.substr(0, bar));
      head >> e.graph_spec >> e.machines >> e.schedule >> e.fault_seed;
      if (head.fail()) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      e.query = line.substr(bar + 1);
      e.query.erase(0, e.query.find_first_not_of(' '));
      e.source = file.path().filename().string() + ":" +
                 std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

TEST(CorpusReplay, AllEntriesAgreeWithOracleAndHoldInvariants) {
  const auto entries = load_corpus();
  ASSERT_FALSE(entries.empty()) << "corpus directory empty: "
                                << RPQD_CORPUS_DIR;
  for (const auto& e : entries) {
    SCOPED_TRACE(e.source + " query=" + e.query);
    const Graph oracle = make_graph(e.graph_spec);
    std::uint64_t expected = 0;
    try {
      expected = baseline::reference_evaluate(e.query, oracle).count;
    } catch (const UnsupportedError&) {
      GTEST_FAIL() << "corpus entry outside the oracle subset; drop it";
    }
    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffers_per_machine = 48;
    ec.buffer_bytes = 256;
    ec.profile = true;  // replay with tracing on: reconciliation below
    Database db(make_graph(e.graph_spec), e.machines, ec);
    db.set_fault_schedule(e.schedule, e.fault_seed);
    const QueryResult result = db.query(e.query);
    EXPECT_EQ(result.count, expected);
    EXPECT_EQ(result.stats.flow_outstanding, 0u);
    EXPECT_EQ(result.stats.flow_overflow_outstanding, 0u);
    EXPECT_EQ(result.stats.flow_emergency, 0u);
    // Profile totals must reconcile exactly with the fabric counters on
    // every replayed fault schedule.
    ASSERT_TRUE(result.profile.enabled);
    EXPECT_EQ(result.profile.total_ctx_sent(), result.stats.contexts_sent);
    EXPECT_EQ(result.profile.total_ctx_received(),
              result.stats.contexts_sent);
    EXPECT_EQ(result.profile.total_msgs_sent(), result.stats.data_messages);
    EXPECT_EQ(result.profile.total_msgs_received(),
              result.stats.data_messages);
    EXPECT_EQ(result.profile.total_bytes_sent(), result.stats.bytes_sent);
    for (StageId s = 0; s < result.stats.stages.size(); ++s) {
      EXPECT_EQ(result.profile.stage_contexts(s),
                result.stats.stages[s].visits);
      EXPECT_EQ(result.profile.stage_ctx_sent(s),
                result.stats.stages[s].remote_out);
    }
    // §14 load accounting: the profile's per-machine context summaries
    // must reconcile with the engine's machine_contexts vector, and
    // their sum with the tree's leaves.
    ASSERT_EQ(result.profile.machines.size(),
              result.stats.machine_contexts.size());
    std::uint64_t machine_total = 0;
    for (std::size_t m = 0; m < result.profile.machines.size(); ++m) {
      EXPECT_EQ(result.profile.machines[m].total_contexts,
                result.stats.machine_contexts[m]);
      machine_total += result.profile.machines[m].total_contexts;
    }
    EXPECT_EQ(machine_total, result.profile.total_contexts());
    for (const auto& r : result.stats.rpq) {
      EXPECT_EQ(r.index_duplicate_entries, 0u);
      if (r.consensus_max_depth) {
        EXPECT_EQ(*r.consensus_max_depth, r.max_depth_observed);
      } else {
        // Only legitimate when the group never entered the distributed
        // depth protocol (no start vertices, or a pure 0-hop RPQ).
        EXPECT_EQ(r.max_depth_observed, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace rpqd
