// Online graph updates with snapshot isolation (DESIGN.md §12): store /
// snapshot units (batch application, tombstone cascades, atomicity,
// merge, materialization), the cache-coherence satellites — stale result
// after a mutation (regression), mid-flight invalidation of a
// single-flight leader, the queued-past-deadline dispatch check — and
// the update regression corpus (tests/corpus/updates/*.txt), where every
// replay compares the engine against the reference oracle on the
// materialized snapshot of the epoch the query pinned.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "graph/store.h"
#include "graph/update.h"
#include "ldbc/synthetic.h"
#include "pgql/parser.h"
#include "plan/planner.h"
#include "rpq/cache_key.h"
#include "runtime/result_cache.h"

#ifndef RPQD_UPDATE_CORPUS_DIR
#error "RPQD_UPDATE_CORPUS_DIR must point at tests/corpus/updates"
#endif

namespace rpqd {
namespace {

EngineConfig small_config() {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  return ec;
}

LabelId vlabel(const Database& db, const char* name) {
  const auto id = db.graph().catalog().find_vertex_label(name);
  EXPECT_TRUE(id.has_value()) << "unknown vertex label " << name;
  return id.value_or(0);
}

LabelId elabel(const Database& db, const char* name) {
  const auto id = db.graph().catalog().find_edge_label(name);
  EXPECT_TRUE(id.has_value()) << "unknown edge label " << name;
  return id.value_or(0);
}

constexpr const char* kChainPlus =
    "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";

// ---- batch application over the snapshot chain --------------------------

TEST(GraphStoreTest, InsertedEdgeVisibleAtNextEpochOnly) {
  Database db(synthetic::make_chain(4), 2, small_config());
  EXPECT_EQ(db.graph_epoch(), 0u);
  const QueryResult before = db.query(kChainPlus);
  EXPECT_EQ(before.count, 6u);  // ordered pairs i < j on a 4-chain
  EXPECT_EQ(before.stats.snapshot_epoch, 0u);

  UpdateBatch batch;
  batch.edge_inserts.push_back({3, 0, elabel(db, "next")});
  const UpdateResult receipt = db.apply_update(batch);
  EXPECT_EQ(receipt.epoch, 1u);
  EXPECT_EQ(receipt.new_edges.size(), 1u);
  EXPECT_TRUE(receipt.dirty.edges_changed);
  EXPECT_FALSE(receipt.dirty.vertices_changed);
  EXPECT_EQ(db.graph_epoch(), 1u);

  // Closing the chain into a cycle: every vertex reaches all four.
  const QueryResult after = db.query(kChainPlus);
  EXPECT_EQ(after.count, 16u);
  EXPECT_EQ(after.stats.snapshot_epoch, 1u);
}

TEST(GraphStoreTest, VertexDeleteCascadesBothDirections) {
  Database db(synthetic::make_chain(4), 2, small_config());
  UpdateBatch batch;
  batch.vertex_deletes.push_back({1});
  const UpdateResult receipt = db.apply_update(batch);
  EXPECT_EQ(receipt.edges_deleted, 2u);  // 0->1 and 1->2
  EXPECT_TRUE(receipt.dirty.vertices_changed);
  EXPECT_TRUE(receipt.dirty.edges_changed);

  // Tombstoned vertices are unaddressable: the scan skips them and only
  // the surviving 2->3 edge remains traversable.
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a)").count, 3u);
  EXPECT_EQ(db.query(kChainPlus).count, 1u);
}

TEST(GraphStoreTest, ParallelEdgeDeleteDropsAllCopies) {
  Database db(synthetic::make_chain(2), 2, small_config());
  UpdateBatch dup;
  dup.edge_inserts.push_back({0, 1, elabel(db, "next")});
  db.apply_update(dup);
  // Homomorphic matching counts parallels separately.
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b)").count,
            2u);

  UpdateBatch del;
  del.edge_deletes.push_back({0, 1, elabel(db, "next")});
  const UpdateResult receipt = db.apply_update(del);
  EXPECT_EQ(receipt.edges_deleted, 2u);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b)").count,
            0u);
}

TEST(GraphStoreTest, VertexInsertSeedsTheScan) {
  Database db(synthetic::make_chain(3), 2, small_config());
  UpdateBatch batch;
  VertexInsert vi;
  vi.label = vlabel(db, "Node");
  const auto id_prop = db.graph().catalog().find_property("id");
  ASSERT_TRUE(id_prop.has_value());
  vi.props.push_back({*id_prop, int_value(99)});
  batch.vertex_inserts.push_back(vi);
  // Wire the new vertex (id 3 = pre-batch count) into the chain tail.
  batch.edge_inserts.push_back({2, 3, elabel(db, "next")});
  const UpdateResult receipt = db.apply_update(batch);
  ASSERT_EQ(receipt.new_vertices.size(), 1u);
  EXPECT_EQ(receipt.new_vertices[0], 3u);

  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a) WHERE a.id = 99").count,
            1u);
  EXPECT_EQ(db.query(kChainPlus).count, 6u);  // now a 4-chain
}

TEST(GraphStoreTest, InvalidBatchAppliesNothing) {
  Database db(synthetic::make_chain(4), 2, small_config());
  const std::uint64_t before = db.query(kChainPlus).count;

  // The edge insert references a vertex that does not exist; the whole
  // batch — including the valid vertex insert before it — must roll off.
  UpdateBatch batch;
  VertexInsert vi;
  vi.label = vlabel(db, "Node");
  batch.vertex_inserts.push_back(vi);
  batch.edge_inserts.push_back({99, 0, elabel(db, "next")});
  EXPECT_THROW(db.apply_update(batch), QueryError);

  EXPECT_EQ(db.graph_epoch(), 0u);
  EXPECT_EQ(db.update_stats().batches_applied, 0u);
  EXPECT_EQ(db.query("SELECT COUNT(*) FROM MATCH (a)").count, 4u);
  EXPECT_EQ(db.query(kChainPlus).count, before);
}

TEST(GraphStoreTest, SameBatchInsertThenDeleteIsANoOpEdge) {
  Database db(synthetic::make_chain(3), 2, small_config());
  UpdateBatch batch;
  batch.edge_inserts.push_back({2, 0, elabel(db, "next")});
  batch.edge_deletes.push_back({2, 0, elabel(db, "next")});
  const UpdateResult receipt = db.apply_update(batch);
  EXPECT_EQ(receipt.epoch, 1u);
  EXPECT_EQ(db.query(kChainPlus).count, 3u);  // still a plain 3-chain
}

TEST(GraphStoreTest, MergeKeepsEpochAndResults) {
  Database db(synthetic::make_chain(6), 3, small_config());
  UpdateBatch b1;
  b1.edge_inserts.push_back({5, 0, elabel(db, "next")});
  db.apply_update(b1);
  UpdateBatch b2;
  b2.vertex_deletes.push_back({2});
  db.apply_update(b2);
  const std::uint64_t expected = db.query(kChainPlus).count;
  ASSERT_GT(db.update_stats().delta_entries, 0u);

  EXPECT_TRUE(db.merge_deltas());
  EXPECT_EQ(db.graph_epoch(), 2u);  // merge changes representation only
  EXPECT_EQ(db.update_stats().delta_entries, 0u);
  EXPECT_EQ(db.update_stats().merges, 1u);
  EXPECT_EQ(db.query(kChainPlus).count, expected);
  EXPECT_FALSE(db.merge_deltas()) << "nothing left to fold";

  // Updates keep working on the merged base (vertex ids are stable).
  UpdateBatch b3;
  b3.edge_inserts.push_back({0, 3, elabel(db, "next")});
  db.apply_update(b3);
  EXPECT_EQ(db.graph_epoch(), 3u);
  EXPECT_EQ(db.query(kChainPlus).count,
            baseline::reference_evaluate(kChainPlus,
                                         *db.materialize_snapshot(3))
                .count);
}

TEST(GraphStoreTest, AutoMergeTriggersOnDeltaVolume) {
  EngineConfig ec = small_config();
  ec.delta_merge_entries = 1;
  Database db(synthetic::make_chain(4), 2, ec);
  UpdateBatch batch;
  batch.edge_inserts.push_back({3, 0, elabel(db, "next")});
  db.apply_update(batch);
  EXPECT_GE(db.update_stats().merges, 1u);
  EXPECT_EQ(db.update_stats().delta_entries, 0u);
  EXPECT_EQ(db.query(kChainPlus).count, 16u);
}

TEST(GraphStoreTest, MaterializeReplaysEveryEpoch) {
  Database db(synthetic::make_random({14, 30, 2, 2, false, 5}), 2,
              small_config());
  const std::string q = "SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)";
  std::vector<std::uint64_t> engine_counts;
  engine_counts.push_back(db.query(q).count);

  UpdateBatch b1;
  b1.edge_inserts.push_back({0, 5, elabel(db, "e0")});
  b1.edge_inserts.push_back({5, 9, elabel(db, "e0")});
  db.apply_update(b1);
  engine_counts.push_back(db.query(q).count);

  UpdateBatch b2;
  b2.vertex_deletes.push_back({5});
  db.apply_update(b2);
  engine_counts.push_back(db.query(q).count);

  for (std::uint64_t e = 0; e <= 2; ++e) {
    const auto oracle = db.materialize_snapshot(e);
    EXPECT_EQ(engine_counts[e], baseline::reference_evaluate(q, *oracle).count)
        << "epoch " << e;
  }
}

TEST(GraphStoreTest, WarmReachCacheStaysCoherentAcrossUpdatesAndMerge) {
  EngineConfig ec = small_config();
  ec.reach_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(8), 3, ec);
  EXPECT_EQ(db.query(kChainPlus).count, 28u);
  EXPECT_EQ(db.query(kChainPlus).count, 28u);  // warm facts

  UpdateBatch batch;
  batch.edge_inserts.push_back({7, 0, elabel(db, "next")});
  db.apply_update(batch);
  EXPECT_EQ(db.query(kChainPlus).count, 64u);

  ASSERT_TRUE(db.merge_deltas());
  EXPECT_EQ(db.query(kChainPlus).count, 64u);
}

// ---- satellite: stale cached result after a mutation (regression) -------

TEST(UpdateCoherenceTest, CachedResultNeverSurvivesARelevantUpdate) {
  EngineConfig ec = small_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(4), 2, ec);

  EXPECT_EQ(db.query(kChainPlus).count, 6u);
  const QueryResult warm = db.query(kChainPlus);
  EXPECT_EQ(warm.count, 6u);
  ASSERT_TRUE(warm.stats.result_cache_hit) << "cache failed to warm";

  UpdateBatch batch;
  batch.edge_inserts.push_back({3, 0, elabel(db, "next")});
  db.apply_update(batch);
  EXPECT_GE(db.result_cache_stats().evicted_by_update, 1u);

  // The bug this locks: before partition/label-granular invalidation was
  // wired into apply_update, this re-ask returned the warmed count of 6
  // from the cache — a result describing a graph that no longer exists.
  const QueryResult after = db.query(kChainPlus);
  EXPECT_FALSE(after.stats.result_cache_hit)
      << "stale result served from the cache after a graph mutation";
  EXPECT_EQ(after.count, 16u);
}

TEST(UpdateCoherenceTest, UnrelatedLabelsKeepTheirCachedEntries) {
  EngineConfig ec = small_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_random({16, 36, 2, 2, false, 7}), 2, ec);
  const std::string q0 = "SELECT COUNT(*) FROM MATCH (a) -/:e0+/-> (b)";
  db.query(q0);
  ASSERT_TRUE(db.query(q0).stats.result_cache_hit);

  // A batch dirtying only vertex label L1 cannot change a query whose
  // scan is unlabelled... so it MUST evict (wildcard scan). A query
  // anchored on :L0 with only :e0 hops survives an L1-only insert.
  const std::string anchored =
      "SELECT COUNT(*) FROM MATCH (a:L0) -/:e0+/-> (b)";
  db.query(anchored);
  ASSERT_TRUE(db.query(anchored).stats.result_cache_hit);

  UpdateBatch batch;
  VertexInsert vi;
  vi.label = vlabel(db, "L1");
  batch.vertex_inserts.push_back(vi);
  db.apply_update(batch);

  EXPECT_FALSE(db.query(q0).stats.result_cache_hit)
      << "wildcard-scan entry must go on any vertex insert";
  EXPECT_TRUE(db.query(anchored).stats.result_cache_hit)
      << "label-disjoint entry should survive (partition-granular "
         "invalidation, not nuke-everything)";
}

// ---- result-cache epoch protocol (unit level) ---------------------------

QueryResult tiny_result(std::uint64_t count) {
  QueryResult r;
  r.count = count;
  return r;
}

TEST(ResultCacheEpochTest, ProbeFromTheFutureAbortsLoudly) {
  ResultCache cache(1 << 20);
  // A probe pinning epoch 1 when the cache never heard of an update is
  // the mutation-without-invalidation hole: fail, never serve.
  EXPECT_THROW(cache.acquire("q", false, 1), EngineError);
}

TEST(ResultCacheEpochTest, StaleProbeBypassesInsteadOfServing) {
  ResultCache cache(1 << 20);
  auto lead = cache.acquire("q", false, 0);
  ASSERT_EQ(lead.role, ResultCache::Role::kLeader);
  cache.complete(lead.flight, "q", false, tiny_result(6));
  ASSERT_EQ(cache.acquire("q", false, 0).role, ResultCache::Role::kHit);

  DirtyScope dirty;
  dirty.edges_changed = true;
  cache.on_graph_update(1, dirty);
  // The wildcard-scope entry is gone; and a probe still pinning epoch 0
  // must not lead a flight whose result could be admitted.
  const auto stale = cache.acquire("q", false, 0);
  EXPECT_EQ(stale.role, ResultCache::Role::kBypass);
  EXPECT_EQ(cache.stats().bypassed_stale, 1u);
}

TEST(ResultCacheEpochTest, MidFlightInvalidationDropsTheStaleLeader) {
  ResultCache cache(1 << 20);
  auto stale_leader = cache.acquire("q", false, 0);
  ASSERT_EQ(stale_leader.role, ResultCache::Role::kLeader);

  DirtyScope dirty;
  dirty.edges_changed = true;
  dirty.vertices_changed = true;
  cache.on_graph_update(1, dirty);

  // A new asker pinned the post-update snapshot: it must NOT follow the
  // stale flight (it would inherit a result of the old graph) — it
  // replaces the registration and becomes the new leader.
  auto fresh_leader = cache.acquire("q", false, 1);
  ASSERT_EQ(fresh_leader.role, ResultCache::Role::kLeader);
  EXPECT_EQ(cache.stats().flights_restarted, 1u);

  // The stale leader finishes cleanly; its followers get the result but
  // the store must refuse it.
  cache.complete(stale_leader.flight, "q", false, tiny_result(6));
  EXPECT_EQ(cache.stats().stale_flight_drops, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);

  // The fresh leader's completion is the one that lands.
  cache.complete(fresh_leader.flight, "q", false, tiny_result(16));
  EXPECT_EQ(cache.stats().inserts, 1u);
  const auto hit = cache.acquire("q", false, 1);
  ASSERT_EQ(hit.role, ResultCache::Role::kHit);
  EXPECT_EQ(hit.result.count, 16u);
}

TEST(ResultCacheEpochTest, ScopeEvictionIsLabelGranular) {
  ResultCache cache(1 << 20);
  ResultCacheScope e0_only;
  e0_only.all_vertex_labels = false;
  e0_only.vertex_labels = {0};
  e0_only.all_edge_labels = false;
  e0_only.edge_labels = {0};
  auto lead = cache.acquire("q", false, 0);
  cache.complete(lead.flight, "q", false, tiny_result(1), e0_only);

  DirtyScope other;  // touches edge label 1 only
  other.edges_changed = true;
  other.edge_labels = {1};
  cache.on_graph_update(1, other);
  EXPECT_EQ(cache.acquire("q", false, 1).role, ResultCache::Role::kHit);
  EXPECT_EQ(cache.stats().evicted_by_update, 0u);

  DirtyScope matching;
  matching.edges_changed = true;
  matching.edge_labels = {0};
  cache.on_graph_update(2, matching);
  EXPECT_EQ(cache.stats().evicted_by_update, 1u);
  EXPECT_NE(cache.acquire("q", false, 2).role, ResultCache::Role::kHit);
}

// ---- plan label footprint (rpq/cache_key.h) -----------------------------

TEST(ResultCacheScopeTest, ScopeAffectedPredicate) {
  DirtyScope vertex_l1;
  vertex_l1.vertices_changed = true;
  vertex_l1.vertex_labels = {1};
  DirtyScope edge_l0;
  edge_l0.edges_changed = true;
  edge_l0.edge_labels = {0};

  const ResultCacheScope wildcard;  // conservative default
  EXPECT_TRUE(scope_affected(wildcard, vertex_l1));
  EXPECT_TRUE(scope_affected(wildcard, edge_l0));

  ResultCacheScope narrow;
  narrow.all_vertex_labels = false;
  narrow.vertex_labels = {0};
  narrow.all_edge_labels = false;
  narrow.edge_labels = {2};
  EXPECT_FALSE(scope_affected(narrow, vertex_l1));
  EXPECT_FALSE(scope_affected(narrow, edge_l0));
  DirtyScope vertex_l0;
  vertex_l0.vertices_changed = true;
  vertex_l0.vertex_labels = {0};
  EXPECT_TRUE(scope_affected(narrow, vertex_l0));

  ResultCacheScope scan_only;  // a plan with no edge hops at all
  scan_only.all_vertex_labels = false;
  scan_only.vertex_labels = {0};
  scan_only.all_edge_labels = false;
  EXPECT_FALSE(scope_affected(scan_only, edge_l0))
      << "edge-only updates cannot change a pure vertex scan";
}

TEST(ResultCacheScopeTest, PlanFootprintExtraction) {
  const Graph g = synthetic::make_random({16, 36, 2, 2, false, 7});
  const auto scope_of = [&g](const std::string& text) {
    return result_cache_scope(plan_query(pgql::parse(text), g.catalog()));
  };

  const auto anchored =
      scope_of("SELECT COUNT(*) FROM MATCH (a:L0) -/:e1+/-> (b)");
  EXPECT_FALSE(anchored.all_vertex_labels);
  ASSERT_EQ(anchored.vertex_labels.size(), 1u);
  EXPECT_FALSE(anchored.all_edge_labels);
  ASSERT_EQ(anchored.edge_labels.size(), 1u);

  const auto wild = scope_of("SELECT COUNT(*) FROM MATCH (a) -/:e0*/-> (b)");
  EXPECT_TRUE(wild.all_vertex_labels) << "unlabelled scan = vertex wildcard";
  EXPECT_FALSE(wild.all_edge_labels);

  const auto scan = scope_of("SELECT COUNT(*) FROM MATCH (a:L1)");
  EXPECT_FALSE(scan.all_vertex_labels);
  EXPECT_FALSE(scan.all_edge_labels);
  EXPECT_TRUE(scan.edge_labels.empty())
      << "a hop-less plan is immune to edge updates";

  const auto multi =
      scope_of("SELECT COUNT(*) FROM MATCH (a:L0) -/:e0|e1{1,3}/-> (b:L1)");
  EXPECT_FALSE(multi.all_edge_labels);
  EXPECT_EQ(multi.edge_labels.size(), 2u) << "hop alternation unions";
}

// ---- satellite: deadline re-checked at dispatch -------------------------

TEST(UpdateSchedulerTest, QueuedPastDeadlineAbortsAtDispatch) {
  // An unbounded exploration (cycle, reachability index off, no depth
  // cap) occupies the single in-flight slot until the engine's deadline
  // watchdog kills it — so everything queued behind it has, by
  // construction, out-waited the deadline when its turn comes.
  EngineConfig ec = small_config();
  ec.use_reachability_index = false;
  ec.query_deadline_ms = 40;
  Database db(synthetic::make_cycle(8), 2, ec);
  SchedulerConfig sc;
  sc.max_inflight = 1;
  sc.max_queued = 8;
  db.configure_scheduler(sc);

  const std::string slow = "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)";
  QueryTicket hog = db.submit(slow);
  QueryTicket q1 = db.submit("SELECT COUNT(*) FROM MATCH (a)");
  QueryTicket q2 = db.submit("SELECT COUNT(*) FROM MATCH (b)");

  const QueryResult hog_result = db.await(hog);
  EXPECT_TRUE(hog_result.aborted);
  EXPECT_EQ(hog_result.abort_reason, AbortReason::kDeadline);

  // The regression this locks: the scheduler used to dispatch queued
  // submissions with no deadline re-check, so q1/q2 would RUN (and
  // likely complete) long after their deadline passed.
  for (QueryTicket* t : {&q1, &q2}) {
    const QueryResult r = db.await(*t);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.abort_reason, AbortReason::kDeadline);
    EXPECT_GE(r.stats.queue_ms, 40.0);
  }
  EXPECT_GE(db.scheduler_stats().deadline_lapsed_in_queue, 1u);
}

// ---- scheduled path pins the admission snapshot -------------------------

TEST(UpdateSchedulerTest, SubmitPinsTheEpochAtAdmission) {
  EngineConfig ec = small_config();
  ec.result_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_chain(4), 2, ec);

  QueryResult r0 = db.await(db.submit(kChainPlus));
  EXPECT_EQ(r0.count, 6u);
  EXPECT_EQ(r0.stats.snapshot_epoch, 0u);

  UpdateBatch batch;
  batch.edge_inserts.push_back({3, 0, elabel(db, "next")});
  db.apply_update(batch);

  QueryResult r1 = db.await(db.submit(kChainPlus));
  EXPECT_EQ(r1.count, 16u) << "stale result after update on submit path";
  EXPECT_EQ(r1.stats.snapshot_epoch, 1u);
  EXPECT_FALSE(r1.stats.result_cache_hit);

  // Warm again at the new epoch: now it may hit.
  QueryResult r2 = db.await(db.submit(kChainPlus));
  EXPECT_EQ(r2.count, 16u);
  EXPECT_TRUE(r2.stats.result_cache_hit);
}

// ---- regression corpus replay -------------------------------------------

std::vector<std::uint64_t> split_numbers(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::istringstream in(spec);
  std::string field;
  in.ignore(static_cast<std::streamsize>(spec.find(':')) + 1);
  while (std::getline(in, field, ':')) out.push_back(std::stoull(field));
  return out;
}

Graph make_graph(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  const auto args = split_numbers(spec);
  if (kind == "chain") return synthetic::make_chain(args.at(0));
  if (kind == "cycle") return synthetic::make_cycle(args.at(0));
  if (kind == "complete") return synthetic::make_complete(args.at(0));
  if (kind == "tree") {
    return synthetic::make_tree(static_cast<unsigned>(args.at(0)),
                                static_cast<unsigned>(args.at(1)));
  }
  if (kind == "random") {
    synthetic::RandomGraphConfig cfg;
    cfg.num_vertices = args.at(0);
    cfg.num_edges = args.at(1);
    cfg.num_vertex_labels = static_cast<unsigned>(args.at(2));
    cfg.num_edge_labels = static_cast<unsigned>(args.at(3));
    cfg.allow_self_loops = args.at(4) != 0;
    cfg.seed = args.at(5);
    return synthetic::make_random(cfg);
  }
  ADD_FAILURE() << "unknown corpus graph spec: " << spec;
  return Graph{};
}

/// Parses the corpus batch mini-language (see updates_corpus.txt header).
UpdateBatch parse_batch(const Database& db, const std::string& text) {
  UpdateBatch batch;
  std::istringstream in(text);
  std::string op;
  while (std::getline(in, op, ';')) {
    op.erase(0, op.find_first_not_of(" \t"));
    op.erase(op.find_last_not_of(" \t") + 1);
    if (op.empty()) continue;
    std::istringstream fields(op.substr(3));
    std::string a, b, c;
    std::getline(fields, a, ':');
    std::getline(fields, b, ':');
    std::getline(fields, c, ':');
    if (op.rfind("av:", 0) == 0) {
      VertexInsert vi;
      vi.label = vlabel(db, a.c_str());
      batch.vertex_inserts.push_back(vi);
    } else if (op.rfind("ae:", 0) == 0) {
      batch.edge_inserts.push_back(
          {std::stoull(a), std::stoull(b), elabel(db, c.c_str())});
    } else if (op.rfind("de:", 0) == 0) {
      batch.edge_deletes.push_back(
          {std::stoull(a), std::stoull(b), elabel(db, c.c_str())});
    } else if (op.rfind("dv:", 0) == 0) {
      batch.vertex_deletes.push_back({std::stoull(a)});
    } else {
      ADD_FAILURE() << "unknown corpus batch op: " << op;
    }
  }
  return batch;
}

struct UpdateCorpusEntry {
  std::string graph_spec;
  unsigned machines = 1;
  std::string schedule;
  std::uint64_t fault_seed = 0;
  std::string mode;
  std::string batch;
  std::string query;
  std::string source;
};

std::vector<UpdateCorpusEntry> load_update_corpus() {
  std::vector<UpdateCorpusEntry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(RPQD_UPDATE_CORPUS_DIR)) {
    if (file.path().extension() != ".txt") continue;
    std::ifstream in(file.path());
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      const auto bar1 = line.find('|');
      const auto bar2 = line.find('|', bar1 + 1);
      if (bar1 == std::string::npos || bar2 == std::string::npos) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      UpdateCorpusEntry e;
      std::istringstream head(line.substr(0, bar1));
      head >> e.graph_spec >> e.machines >> e.schedule >> e.fault_seed >>
          e.mode;
      if (head.fail()) {
        ADD_FAILURE() << "malformed corpus line " << file.path() << ":"
                      << lineno;
        continue;
      }
      e.batch = line.substr(bar1 + 1, bar2 - bar1 - 1);
      e.query = line.substr(bar2 + 1);
      e.query.erase(0, e.query.find_first_not_of(' '));
      e.source =
          file.path().filename().string() + ":" + std::to_string(lineno);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

TEST(UpdateCorpusReplay, AllEntriesAgreeWithOracleOnTheirPinnedEpoch) {
  const auto entries = load_update_corpus();
  ASSERT_FALSE(entries.empty()) << "update corpus empty: "
                                << RPQD_UPDATE_CORPUS_DIR;
  for (const auto& e : entries) {
    SCOPED_TRACE(e.source + " mode=" + e.mode + " query=" + e.query);
    EngineConfig ec = small_config();
    ec.result_cache_max_bytes = 1 << 20;
    Database db(make_graph(e.graph_spec), e.machines, ec);
    db.set_fault_schedule(e.schedule, e.fault_seed);

    const std::uint64_t cold_expected =
        baseline::reference_evaluate(e.query, *db.materialize_snapshot(0))
            .count;
    EXPECT_EQ(db.query(e.query).count, cold_expected);
    const QueryResult warm = db.query(e.query);
    EXPECT_EQ(warm.count, cold_expected);
    ASSERT_TRUE(warm.stats.result_cache_hit) << "cache failed to warm";

    const UpdateBatch batch = parse_batch(db, e.batch);
    if (e.mode == "atomic-fail") {
      EXPECT_THROW(db.apply_update(batch), QueryError);
      EXPECT_EQ(db.graph_epoch(), 0u);
      const QueryResult again = db.query(e.query);
      EXPECT_EQ(again.count, cold_expected);
      EXPECT_TRUE(again.stats.result_cache_hit)
          << "a rejected batch must not invalidate anything";
    } else if (e.mode == "warm") {
      db.apply_update(batch);
      const std::uint64_t fresh_expected =
          baseline::reference_evaluate(
              e.query, *db.materialize_snapshot(db.graph_epoch()))
              .count;
      const QueryResult after = db.query(e.query);
      EXPECT_EQ(after.count, fresh_expected);
      EXPECT_FALSE(after.stats.result_cache_hit)
          << "stale cached result served after the update";
      EXPECT_EQ(after.stats.snapshot_epoch, db.graph_epoch());
    } else {
      ADD_FAILURE() << "unknown corpus mode " << e.mode;
    }
  }
}

}  // namespace
}  // namespace rpqd
