// Query fuzzing: generate random (valid) PGQL queries over random graphs
// and require the distributed engine and the reference oracle to agree.
// This covers planner orderings and quantifier/direction/label
// combinations no hand-written battery enumerates. The generator lives
// in query_gen.h, shared with the fault-injection differential harness.
#include <gtest/gtest.h>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"
#include "query_gen.h"

namespace rpqd {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomQueriesAgreeWithOracle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 30;
  gcfg.num_edges = 70;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.seed = 1000 + seed;
  const Graph oracle = synthetic::make_random(gcfg);
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 256;
  Database db(synthetic::make_random(gcfg),
              1 + static_cast<unsigned>(seed % 5), cfg);

  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  Rng rng(seed * 7919 + 13);
  for (int q = 0; q < 12; ++q) {
    const std::string query = testgen::random_query(rng, qcfg);
    SCOPED_TRACE(query);
    std::uint64_t expected = 0;
    try {
      expected = baseline::reference_evaluate(query, oracle).count;
    } catch (const UnsupportedError&) {
      continue;  // oracle limitation, not an engine bug
    }
    EXPECT_EQ(db.query(query).count, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace rpqd
