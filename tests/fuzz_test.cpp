// Query fuzzing: generate random (valid) PGQL queries over random graphs
// and require the distributed engine and the reference oracle to agree.
// This covers planner orderings and quantifier/direction/label
// combinations no hand-written battery enumerates.
#include <gtest/gtest.h>

#include <sstream>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

std::string random_vertex(Rng& rng, int index, unsigned num_labels) {
  std::ostringstream out;
  out << "(v" << index;
  if (rng.next_bool(0.4)) {
    out << ":L" << rng.next_below(num_labels);
    if (rng.next_bool(0.2)) out << "|L" << rng.next_below(num_labels);
  }
  out << ")";
  return out.str();
}

std::string random_quantifier(Rng& rng, bool allow_unbounded) {
  switch (rng.next_below(allow_unbounded ? 6 : 4)) {
    case 0: return "?";
    case 1: {
      const auto n = rng.next_below(3);
      return "{" + std::to_string(n) + "}";
    }
    case 2:
    case 3: {
      const auto n = rng.next_below(3);
      const auto m = n + rng.next_below(3);
      return "{" + std::to_string(n) + "," + std::to_string(m) + "}";
    }
    case 4: return rng.next_bool(0.5) ? "*" : "+";
    default: {
      const auto n = 1 + rng.next_below(2);
      return "{" + std::to_string(n) + ",}";
    }
  }
}

std::string random_edge(Rng& rng, unsigned num_elabels) {
  std::ostringstream out;
  const bool rpq = rng.next_bool(0.6);
  const unsigned dir = static_cast<unsigned>(rng.next_below(3));
  std::string label = "e" + std::to_string(rng.next_below(num_elabels));
  if (rpq && rng.next_bool(0.25)) {
    label += "|e" + std::to_string(rng.next_below(num_elabels));
  }
  if (rpq) {
    // An *undirected unbounded* RPQ over a dense component is the DFT
    // worst case the paper's §5 concedes to BFT engines (documented in
    // DESIGN.md); chaining several would make the fuzz case explode
    // combinatorially, so undirected segments stay bounded here.
    const std::string body =
        ":" + label + random_quantifier(rng, /*allow_unbounded=*/dir != 2);
    if (dir == 0) out << " -/" << body << "/-> ";
    if (dir == 1) out << " <-/" << body << "/- ";
    if (dir == 2) out << " -/" << body << "/- ";
  } else {
    const std::string body = "[:" + label + "]";
    if (dir == 0) out << " -" << body << "-> ";
    if (dir == 1) out << " <-" << body << "- ";
    if (dir == 2) out << " -" << body << "- ";
  }
  return out.str();
}

std::string random_query(Rng& rng, unsigned num_vlabels,
                         unsigned num_elabels) {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM MATCH ";
  const int hops = 1 + static_cast<int>(rng.next_below(2));
  out << random_vertex(rng, 0, num_vlabels);
  for (int i = 0; i < hops; ++i) {
    out << random_edge(rng, num_elabels) << random_vertex(rng, i + 1,
                                                          num_vlabels);
  }
  // Optional single-variable WHERE conjuncts.
  std::vector<std::string> conjuncts;
  for (int v = 0; v <= hops; ++v) {
    if (rng.next_bool(0.25)) {
      const char* op = rng.next_bool(0.5) ? "<=" : ">";
      conjuncts.push_back("v" + std::to_string(v) + ".weight " + op + " " +
                          std::to_string(rng.next_int(10, 90)));
    }
  }
  if (rng.next_bool(0.2)) {
    conjuncts.push_back("ID(v0) = " + std::to_string(rng.next_below(30)));
  }
  if (!conjuncts.empty()) {
    out << " WHERE " << conjuncts[0];
    for (std::size_t i = 1; i < conjuncts.size(); ++i) {
      out << " AND " << conjuncts[i];
    }
  }
  return out.str();
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomQueriesAgreeWithOracle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  synthetic::RandomGraphConfig gcfg;
  gcfg.num_vertices = 30;
  gcfg.num_edges = 70;
  gcfg.num_vertex_labels = 2;
  gcfg.num_edge_labels = 2;
  gcfg.seed = 1000 + seed;
  const Graph oracle = synthetic::make_random(gcfg);
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffer_bytes = 256;
  Database db(synthetic::make_random(gcfg),
              1 + static_cast<unsigned>(seed % 5), cfg);

  Rng rng(seed * 7919 + 13);
  for (int q = 0; q < 12; ++q) {
    const std::string query = random_query(rng, 2, 2);
    SCOPED_TRACE(query);
    std::uint64_t expected = 0;
    try {
      expected = baseline::reference_evaluate(query, oracle).count;
    } catch (const UnsupportedError&) {
      continue;  // oracle limitation, not an engine bug
    }
    EXPECT_EQ(db.query(query).count, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace rpqd
