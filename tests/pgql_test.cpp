// Tests for the PGQL-subset lexer and parser.
#include <gtest/gtest.h>

#include "common/error.h"
#include "pgql/lexer.h"
#include "pgql/parser.h"

namespace rpqd::pgql {
namespace {

TEST(Lexer, BasicTokens) {
  const auto tokens = tokenize("SELECT COUNT(*) FROM MATCH (a)->(b)");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, NumbersAndStrings) {
  const auto tokens = tokenize("42 3.5 'hello world'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "hello world");
}

TEST(Lexer, ComparisonOperators) {
  const auto tokens = tokenize("<= >= <> != < > =");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[1].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[5].kind, TokenKind::kGt);
  EXPECT_EQ(tokens[6].kind, TokenKind::kEq);
}

TEST(Lexer, ArrowsAreNotFused) {
  // `a.x < -5` must lex as LT MINUS INT, not as an arrow.
  const auto tokens = tokenize("a.x < -5");
  EXPECT_EQ(tokens[3].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[4].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[5].kind, TokenKind::kInt);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("'oops"), QueryError);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(tokenize("a # b"), QueryError);
}

TEST(Parser, CountStar) {
  const Query q = parse("SELECT COUNT(*) FROM MATCH (a)");
  EXPECT_TRUE(q.count_star);
  ASSERT_EQ(q.match.size(), 1u);
  EXPECT_EQ(q.match[0].src.var, "a");
  EXPECT_TRUE(q.match[0].hops.empty());
}

TEST(Parser, Projections) {
  const Query q = parse("SELECT a.name, id(b) AS bid FROM MATCH (a)->(b)");
  EXPECT_FALSE(q.count_star);
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].expr->kind, ExprKind::kPropRef);
  EXPECT_EQ(q.select[1].alias, "bid");
}

TEST(Parser, VertexLabels) {
  const Query q =
      parse("SELECT COUNT(*) FROM MATCH (a:Person) -> (b:Post|Comment)");
  EXPECT_EQ(q.match[0].src.labels, std::vector<std::string>{"Person"});
  const auto& dst = q.match[0].hops[0].dst;
  EXPECT_EQ(dst.labels, (std::vector<std::string>{"Post", "Comment"}));
}

TEST(Parser, EdgeDirections) {
  const Query q = parse(
      "SELECT COUNT(*) FROM MATCH "
      "(a) -[:x]-> (b) <-[:y]- (c) -[:z]- (d) -> (e) <- (f) - (g)");
  const auto& hops = q.match[0].hops;
  ASSERT_EQ(hops.size(), 6u);
  EXPECT_EQ(hops[0].edge.dir, Direction::kOut);
  EXPECT_EQ(hops[1].edge.dir, Direction::kIn);
  EXPECT_EQ(hops[2].edge.dir, Direction::kBoth);
  EXPECT_EQ(hops[3].edge.dir, Direction::kOut);
  EXPECT_EQ(hops[4].edge.dir, Direction::kIn);
  EXPECT_EQ(hops[5].edge.dir, Direction::kBoth);
  EXPECT_EQ(hops[0].edge.labels, std::vector<std::string>{"x"});
  EXPECT_TRUE(hops[3].edge.labels.empty());
}

TEST(Parser, EdgeVariable) {
  const Query q = parse(
      "SELECT COUNT(*) FROM MATCH (a) -[e:knows]-> (b) WHERE e.weight > 2");
  EXPECT_EQ(q.match[0].hops[0].edge.var, "e");
}

TEST(Parser, RpqForms) {
  const Query q = parse(
      "SELECT COUNT(*) FROM MATCH (a) -/:knows+/-> (b) <-/:replyOf*/- (c) "
      "-/:p{2,5}/- (d)");
  const auto& hops = q.match[0].hops;
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_TRUE(hops[0].edge.is_rpq);
  EXPECT_EQ(hops[0].edge.path_name, "knows");
  EXPECT_EQ(hops[0].edge.quantifier.min, 1u);
  EXPECT_EQ(hops[0].edge.quantifier.max, kUnboundedDepth);
  EXPECT_EQ(hops[0].edge.dir, Direction::kOut);
  EXPECT_EQ(hops[1].edge.dir, Direction::kIn);
  EXPECT_EQ(hops[1].edge.quantifier.min, 0u);
  EXPECT_EQ(hops[2].edge.dir, Direction::kBoth);
  EXPECT_EQ(hops[2].edge.quantifier.min, 2u);
  EXPECT_EQ(hops[2].edge.quantifier.max, 5u);
}

TEST(Parser, RpqQuantifiers) {
  const auto quant = [](const std::string& q) {
    const Query query =
        parse("SELECT COUNT(*) FROM MATCH (a) -/:e" + q + "/-> (b)");
    return query.match[0].hops[0].edge.quantifier;
  };
  EXPECT_EQ(quant("*").min, 0u);
  EXPECT_EQ(quant("*").max, kUnboundedDepth);
  EXPECT_EQ(quant("+").min, 1u);
  EXPECT_EQ(quant("?").min, 0u);
  EXPECT_EQ(quant("?").max, 1u);
  EXPECT_EQ(quant("{3}").min, 3u);
  EXPECT_EQ(quant("{3}").max, 3u);
  EXPECT_EQ(quant("{2,}").min, 2u);
  EXPECT_EQ(quant("{2,}").max, kUnboundedDepth);
  EXPECT_EQ(quant("{1,4}").max, 4u);
  EXPECT_EQ(quant("").min, 1u);  // no quantifier: exactly once
  EXPECT_EQ(quant("").max, 1u);
}

TEST(Parser, RpqLabelAlternation) {
  const Query q =
      parse("SELECT COUNT(*) FROM MATCH (a) -/:x|y+/-> (b)");
  EXPECT_EQ(q.match[0].hops[0].edge.labels,
            (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(q.match[0].hops[0].edge.path_name.empty());
}

TEST(Parser, BadQuantifierThrows) {
  EXPECT_THROW(parse("SELECT COUNT(*) FROM MATCH (a) -/:e{3,1}/-> (b)"),
               QueryError);
}

TEST(Parser, PathMacro) {
  const Query q = parse(
      "PATH two AS (x) -[:e]-> (mid) -[:e]-> (y) WHERE mid.v > 0 "
      "SELECT COUNT(*) FROM MATCH (a) -/:two*/-> (b)");
  ASSERT_EQ(q.path_macros.size(), 1u);
  EXPECT_EQ(q.path_macros[0].name, "two");
  EXPECT_EQ(q.path_macros[0].pattern.hops.size(), 2u);
  EXPECT_NE(q.path_macros[0].where, nullptr);
  EXPECT_EQ(q.match[0].hops[0].edge.path_name, "two");
}

TEST(Parser, MultipleChains) {
  const Query q = parse(
      "SELECT COUNT(*) FROM MATCH (a)->(b)->(c), (a)->(c)");
  EXPECT_EQ(q.match.size(), 2u);
}

TEST(Parser, AnonymousVerticesGetFreshNames) {
  const Query q = parse("SELECT COUNT(*) FROM MATCH () -> () -> ()");
  const auto& chain = q.match[0];
  EXPECT_NE(chain.src.var, chain.hops[0].dst.var);
  EXPECT_NE(chain.hops[0].dst.var, chain.hops[1].dst.var);
}

TEST(Parser, WherePrecedence) {
  const Query q = parse(
      "SELECT COUNT(*) FROM MATCH (a) WHERE a.x = 1 OR a.y = 2 AND a.z = 3");
  // AND binds tighter than OR.
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->bin_op, BinOp::kOr);
  EXPECT_EQ(q.where->rhs->bin_op, BinOp::kAnd);
}

TEST(Parser, ArithmeticPrecedence) {
  const auto e = parse_expression("1 + 2 * 3");
  EXPECT_EQ(e->bin_op, BinOp::kAdd);
  EXPECT_EQ(e->rhs->bin_op, BinOp::kMul);
}

TEST(Parser, UnaryMinusAndNot) {
  const auto e = parse_expression("NOT -1 > 2");
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_EQ(e->un_op, UnOp::kNot);
}

TEST(Parser, KeywordsCaseInsensitive) {
  EXPECT_NO_THROW(parse("select count(*) from match (a)"));
  EXPECT_NO_THROW(parse("SeLeCt CoUnT(*) FrOm MaTcH (a) WhErE a.x = 1"));
}

TEST(Parser, ExprToTextRoundTripParses) {
  const auto e = parse_expression("(a.x + 1) * 2 <= id(b) AND NOT a.f = 3");
  const std::string text = to_text(*e);
  EXPECT_NO_THROW(parse_expression(text));
}

TEST(Parser, CollectVars) {
  const auto e = parse_expression("a.x < b.y AND id(c) = 3 AND a.z = 1");
  std::vector<std::string> vars;
  collect_vars(*e, vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, CloneIsDeep) {
  const auto e = parse_expression("a.x + b.y");
  const auto copy = clone(*e);
  EXPECT_EQ(to_text(*e), to_text(*copy));
  EXPECT_NE(e->lhs.get(), copy->lhs.get());
}

TEST(Parser, ErrorsCarryOffsets) {
  try {
    parse("SELECT COUNT(*) FROM MATCH (a) ->");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Parser, MissingMatchThrows) {
  EXPECT_THROW(parse("SELECT COUNT(*) FROM (a)"), QueryError);
}

TEST(Parser, BareVariableInExprThrows) {
  EXPECT_THROW(parse("SELECT COUNT(*) FROM MATCH (a) WHERE a"), QueryError);
}

TEST(Parser, TrailingGarbageThrows) {
  EXPECT_THROW(parse("SELECT COUNT(*) FROM MATCH (a) xyz zzz"), QueryError);
}

}  // namespace
}  // namespace rpqd::pgql
