// Tests for the cost-based planner: the paper's four ordering heuristics,
// stage/hop shapes, slot allocation, and error handling.
#include <gtest/gtest.h>

#include "ldbc/generator.h"
#include "pgql/parser.h"
#include "plan/planner.h"

namespace rpqd {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    ldbc::LdbcConfig cfg;
    cfg.scale_factor = 0.03;
    graph_ = ldbc::generate_ldbc(cfg);
  }

  ExecPlan plan(const std::string& text) const {
    return plan_query(pgql::parse(text), graph_.catalog());
  }

  Graph graph_;
};

TEST_F(PlannerTest, SingleVertexPlan) {
  const ExecPlan p = plan("SELECT COUNT(*) FROM MATCH (a:Person)");
  ASSERT_EQ(p.stages.size(), 1u);
  EXPECT_EQ(p.stages[0].hop.kind, HopKind::kOutput);
  EXPECT_EQ(p.stages[0].vlabels.size(), 1u);
  EXPECT_TRUE(p.count_star);
}

TEST_F(PlannerTest, HeuristicSingleMatchStart) {
  // ID(b) = const must make b the start vertex (heuristic i), even though
  // the pattern is written starting from a.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Person) -[:knows]-> (b:Person) "
      "WHERE ID(b) = 5");
  EXPECT_TRUE(p.single_start);
  EXPECT_EQ(p.start_vertex, 5u);
  EXPECT_NE(p.stages[0].note.find("start(b)"), std::string::npos);
  // Traversal then goes backwards over the knows edge.
  EXPECT_EQ(p.stages[0].hop.kind, HopKind::kNeighbor);
  EXPECT_EQ(p.stages[0].hop.dir, Direction::kIn);
}

TEST_F(PlannerTest, HeuristicHeavyFilterStart) {
  // The country equality filter outweighs the unfiltered forum side
  // (heuristic ii).
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (f:Forum) -[:hasModerator]-> (p:Person) "
      "-[:isLocatedIn]-> (c:City) WHERE c.name = 'Burma-City-0'");
  EXPECT_NE(p.stages[0].note.find("start(c)"), std::string::npos);
}

TEST_F(PlannerTest, HeuristicEdgeMatchOverNeighbor) {
  // The cycle-closing edge (a)->(c) must compile to an edge hop
  // (heuristic iii), not a third neighbor expansion.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Person) -[:knows]-> (b:Person) "
      "-[:knows]-> (c:Person), (a) -[:knows]-> (c)");
  bool has_edge_hop = false;
  for (const auto& s : p.stages) {
    if (s.hop.kind == HopKind::kEdge) has_edge_hop = true;
  }
  EXPECT_TRUE(has_edge_hop);
}

TEST_F(PlannerTest, HeuristicRpqBeforeNeighbor) {
  // From the start vertex, the RPQ segment must be scheduled before the
  // plain neighbor expansion (heuristic iv).
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (b:Person) -[:isLocatedIn]-> (c:City), "
      "(a:Person) -/:knows{1,2}/- (b) WHERE ID(b) = 3");
  // Stage order: start(b), then RPQ stages, then the city expansion.
  StageId control = kInvalidStage;
  StageId city_match = kInvalidStage;
  for (const auto& s : p.stages) {
    if (s.kind == StageKind::kRpqControl) control = s.id;
    if (s.note.find("match(c)") != std::string::npos) city_match = s.id;
  }
  ASSERT_NE(control, kInvalidStage);
  ASSERT_NE(city_match, kInvalidStage);
  EXPECT_LT(control, city_match);
}

TEST_F(PlannerTest, RpqStageShape) {
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Post) <-/:replyOf+/- (b:Comment)");
  // start, control, path x2, continuation.
  ASSERT_EQ(p.stages.size(), 5u);
  const StagePlan* control = nullptr;
  unsigned path_stages = 0;
  for (const auto& s : p.stages) {
    if (s.kind == StageKind::kRpqControl) control = &s;
    if (s.kind == StageKind::kPath) ++path_stages;
  }
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(path_stages, 2u);
  EXPECT_EQ(control->rpq.min_hop, 1u);
  EXPECT_EQ(control->rpq.max_hop, kUnboundedDepth);
  // The last path stage transitions back with a depth increment.
  const StagePlan& last_path = p.stages[control->rpq.last_path_stage];
  EXPECT_EQ(last_path.hop.kind, HopKind::kTransition);
  EXPECT_EQ(last_path.hop.to, control->id);
  EXPECT_TRUE(last_path.increments_depth);
  EXPECT_EQ(p.num_rpq_indexes, 1u);
}

TEST_F(PlannerTest, RpqReversedWhenDestBoundFirst) {
  // Start bound at p1 (single match); the RPQ is written with p1 as the
  // right-hand endpoint of an incoming arrow, so the inner hop reverses.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (c:Comment) -/:replyOf+/-> (post:Post) "
      "WHERE ID(post) = 2");
  const StagePlan* path0 = nullptr;
  for (const auto& s : p.stages) {
    if (s.kind == StageKind::kPath && s.hop.kind == HopKind::kNeighbor) {
      path0 = &s;
    }
  }
  ASSERT_NE(path0, nullptr);
  // replyOf is traversed from the post side, so direction must be kIn.
  EXPECT_EQ(path0->hop.dir, Direction::kIn);
}

TEST_F(PlannerTest, MacroCompilesToMultiplePathStages) {
  const ExecPlan p = plan(
      "PATH two AS (x:Person) -[:knows]- (m:Person) -[:knows]- (y:Person) "
      "SELECT COUNT(*) FROM MATCH (a:Person) -/:two{1,2}/-> (b:Person)");
  unsigned path_stages = 0;
  for (const auto& s : p.stages) {
    if (s.kind == StageKind::kPath) ++path_stages;
  }
  EXPECT_EQ(path_stages, 3u);  // x, m, y
}

TEST_F(PlannerTest, InspectionHopForNonLinearPattern) {
  // Expanding from b a second time after moving on to c requires an
  // inspection hop back to b.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Forum) -[:containerOf]-> (b:Post) "
      "-[:hasCreator]-> (c:Person), (b) -[:hasTag]-> (d:Tag) "
      "WHERE ID(a) = 1");
  bool has_inspect = false;
  for (const auto& s : p.stages) {
    if (s.hop.kind == HopKind::kInspect) has_inspect = true;
  }
  EXPECT_TRUE(has_inspect);
}

TEST_F(PlannerTest, FiltersPlacedEarly) {
  // A filter on the start vertex must live in stage 0, not at the end.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Person) -[:knows]-> (b:Person) "
      "WHERE a.age > 40");
  EXPECT_FALSE(p.stages[0].filters.empty());
}

TEST_F(PlannerTest, UnknownLabelYieldsImpossibleStage) {
  const ExecPlan p =
      plan("SELECT COUNT(*) FROM MATCH (a:NoSuchLabel)");
  // Unknown label can never match: the stage gets a constant-false
  // filter (labels list resolves empty).
  EXPECT_FALSE(p.stages[0].filters.empty());
}

TEST_F(PlannerTest, ProjectionsCompiled) {
  const ExecPlan p = plan(
      "SELECT a.name AS n, id(b) FROM MATCH (a:Person) -[:knows]- "
      "(b:Person)");
  EXPECT_FALSE(p.count_star);
  ASSERT_EQ(p.projections.size(), 2u);
  EXPECT_EQ(p.column_names[0], "n");
}

TEST_F(PlannerTest, UnknownVariableThrows) {
  EXPECT_THROW(
      plan("SELECT COUNT(*) FROM MATCH (a:Person) WHERE zz.age > 3"),
      QueryError);
  EXPECT_THROW(plan("SELECT zz.age FROM MATCH (a:Person)"), QueryError);
}

TEST_F(PlannerTest, DisconnectedPatternThrows) {
  EXPECT_THROW(
      plan("SELECT COUNT(*) FROM MATCH (a:Person), (b:Forum)"),
      UnsupportedError);
}

TEST_F(PlannerTest, NestedRpqInMacroThrows) {
  EXPECT_THROW(
      plan("PATH p AS (x) -/:knows+/-> (y) "
           "SELECT COUNT(*) FROM MATCH (a) -/:p*/-> (b)"),
      UnsupportedError);
}

TEST_F(PlannerTest, DuplicateMacroThrows) {
  EXPECT_THROW(
      plan("PATH p AS (x)-[:knows]-(y) PATH p AS (x)-[:knows]-(y) "
           "SELECT COUNT(*) FROM MATCH (a) -/:p*/-> (b)"),
      QueryError);
}

TEST_F(PlannerTest, EmptyMacroThrows) {
  EXPECT_THROW(plan("PATH p AS (x) "
                    "SELECT COUNT(*) FROM MATCH (a) -/:p*/-> (b)"),
               UnsupportedError);
}

TEST_F(PlannerTest, ExplainMentionsEveryStage) {
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Post) <-/:replyOf{0,3}/- (b)");
  for (const auto& s : p.stages) {
    EXPECT_NE(p.explain.find("S" + std::to_string(s.id)), std::string::npos);
  }
  EXPECT_NE(p.explain.find("min=0"), std::string::npos);
  EXPECT_NE(p.explain.find("max=3"), std::string::npos);
}

TEST_F(PlannerTest, SecondRpqBetweenSameEndpointsBindsDestCheck) {
  // The paper's (a)*bb(a)+ translation composes two variable-length
  // patterns between the same endpoints: the second RPQ runs with its
  // destination already bound, so emission carries an equality check.
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,2}/-> (b:Person), "
      "(a) -/:knows{2,3}/-> (b)");
  std::vector<const StagePlan*> controls;
  for (const auto& s : p.stages) {
    if (s.kind == StageKind::kRpqControl) controls.push_back(&s);
  }
  ASSERT_EQ(controls.size(), 2u);
  EXPECT_EQ(controls[0]->rpq.bound_dest_slot, kInvalidSlot);
  EXPECT_NE(controls[1]->rpq.bound_dest_slot, kInvalidSlot);
  EXPECT_EQ(p.num_rpq_indexes, 2u);
}

TEST_F(PlannerTest, EdgeVarSenderSideFilter) {
  const ExecPlan p = plan(
      "SELECT COUNT(*) FROM MATCH (a:Person) -[e:knows]-> (b:Person) "
      "WHERE a.age > 10");
  // No crash; the filter on `a` lands in stage 0 and the hop has no
  // leftover edge filters.
  EXPECT_FALSE(p.stages[0].filters.empty());
}

}  // namespace
}  // namespace rpqd
