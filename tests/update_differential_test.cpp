// Differential harness for online updates (DESIGN.md §12): seeded
// update batches interleaved with generated queries under the existing
// adversarial fault schedules, every query checked against the
// brute-force reference oracle ON THE SNAPSHOT IT PINNED
// (Database::materialize_snapshot of result.stats.snapshot_epoch), with
// caches enabled so the coherence plumbing — partition-granular reach
// bumps, label-scoped result eviction, single-flight epoch stamping —
// is fuzzed along the way. Occasional merge_deltas() calls fold the
// delta segments mid-sweep; a merge changes representation only, so
// agreement must hold straight through it.
//
// The concurrent variant submits a wave of queries and applies a batch
// while they are in flight: each awaited result must match the oracle of
// its OWN pinned epoch (some pin the pre-update snapshot, some the
// post-update one — both are right answers, torn reads are not).
//
// Sizing: the always-on smoke runs are tier-1; Tier2UpdateSweep (ctest
// label `tier2-updates`, enabled by RPQD_TIER2_UPDATES=1) runs the
// acceptance-scale sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"
#include "query_gen.h"

namespace rpqd {
namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// Post-run distributed invariants (the same bar as the solo
/// differential harness: credits, consensus depth, index dedup).
void check_invariants(const QueryResult& result, const std::string& repro) {
  EXPECT_EQ(result.stats.flow_outstanding, 0u)
      << "flow-control credit leak; " << repro;
  EXPECT_EQ(result.stats.flow_overflow_outstanding, 0u)
      << "stale overflow credit bookkeeping; " << repro;
  EXPECT_EQ(result.stats.flow_emergency, 0u)
      << "emergency credit taken; " << repro;
  for (std::size_t g = 0; g < result.stats.rpq.size(); ++g) {
    const RpqStageStats& r = result.stats.rpq[g];
    EXPECT_EQ(r.index_duplicate_entries, 0u)
        << "duplicate reach-index entries in group " << g << "; " << repro;
    if (r.consensus_max_depth.has_value()) {
      EXPECT_EQ(*r.consensus_max_depth, r.max_depth_observed)
          << "consensus depth != max observed depth in group " << g << "; "
          << repro;
    } else {
      EXPECT_EQ(r.max_depth_observed, 0u)
          << "group " << g << " observed depth without consensus; " << repro;
    }
  }
}

/// Seeded valid-by-construction batch against the materialized graph:
/// edge inserts between alive vertices, deletes of edges that exist,
/// vertex inserts (sometimes wired in), vertex deletes of pre-existing
/// alive vertices. Returns an empty batch only when the graph has
/// nothing left to mutate.
UpdateBatch random_batch(Rng& rng, const Graph& g, unsigned num_ops) {
  UpdateBatch batch;
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.alive(v)) alive.push_back(v);
  }
  const unsigned nvl =
      static_cast<unsigned>(g.catalog().num_vertex_labels());
  const unsigned nel = static_cast<unsigned>(g.catalog().num_edge_labels());
  std::set<std::tuple<VertexId, VertexId, LabelId>> deleted_edges;
  std::set<VertexId> deleted_vertices;
  std::size_t inserted = 0;
  for (unsigned i = 0; i < num_ops; ++i) {
    switch (rng.next_below(4)) {
      case 0: {  // vertex insert, sometimes wired to an existing vertex
        VertexInsert vi;
        vi.label = static_cast<LabelId>(rng.next_below(nvl));
        batch.vertex_inserts.push_back(vi);
        const VertexId fresh =
            static_cast<VertexId>(g.num_vertices() + inserted++);
        if (!alive.empty() && rng.next_below(2) == 0) {
          const VertexId src = alive[rng.next_below(alive.size())];
          if (deleted_vertices.count(src) == 0) {
            batch.edge_inserts.push_back(
                {src, fresh, static_cast<LabelId>(rng.next_below(nel))});
          }
        }
        break;
      }
      case 1: {  // edge insert between alive, not-deleted-here vertices
        if (alive.size() < 2) break;
        const VertexId src = alive[rng.next_below(alive.size())];
        const VertexId dst = alive[rng.next_below(alive.size())];
        if (deleted_vertices.count(src) != 0 ||
            deleted_vertices.count(dst) != 0) {
          break;
        }
        batch.edge_inserts.push_back(
            {src, dst, static_cast<LabelId>(rng.next_below(nel))});
        break;
      }
      case 2: {  // delete an existing edge (dedup by (src,dst,elabel))
        if (alive.empty()) break;
        const VertexId src = alive[rng.next_below(alive.size())];
        const auto [lo, hi] = g.out().range(src);
        if (lo == hi) break;
        const AdjEntry& e = g.out().entry(lo + rng.next_below(hi - lo));
        const auto key = std::make_tuple(src, e.other, e.elabel);
        if (!deleted_edges.insert(key).second) break;
        batch.edge_deletes.push_back({src, e.other, e.elabel});
        break;
      }
      default: {  // delete a pre-existing alive vertex (at most a few)
        if (alive.empty() || deleted_vertices.size() >= 2) break;
        const VertexId v = alive[rng.next_below(alive.size())];
        if (!deleted_vertices.insert(v).second) break;
        batch.vertex_deletes.push_back({v});
        break;
      }
    }
  }
  return batch;
}

struct UpdateHarnessConfig {
  int rounds = 4;           // graphs
  int steps_per_round = 10; // alternating query / update steps
  std::vector<std::string> schedules;
  unsigned machines = 3;
  std::uint64_t base_seed = 61;
};

/// Solo sweep: one database per round, interleaving seeded batches with
/// oracle-checked generated queries under each fault schedule. Caches
/// are ON — a stale hit or unflushed reach fact shows up as a count
/// mismatch against the pinned-epoch oracle.
void run_update_differential(const UpdateHarnessConfig& uc) {
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;

  for (int round = 0; round < uc.rounds; ++round) {
    synthetic::RandomGraphConfig gcfg;
    gcfg.num_vertices = 22;
    gcfg.num_edges = 50;
    gcfg.num_vertex_labels = 2;
    gcfg.num_edge_labels = 2;
    gcfg.allow_self_loops = round % 2 == 1;
    const std::uint64_t gseed =
        uc.base_seed * 1000 + static_cast<std::uint64_t>(round);
    gcfg.seed = gseed;

    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffers_per_machine = 48;
    ec.buffer_bytes = 256;
    ec.profile = true;
    ec.result_cache_max_bytes = 1 << 20;
    ec.reach_cache_max_bytes = round % 2 == 0 ? (1 << 20) : 0;
    Database db(synthetic::make_random(gcfg), uc.machines, ec);

    std::uint64_t qseed = uc.base_seed * 100003 +
                          static_cast<std::uint64_t>(round) * 7919;
    Rng batch_rng(gseed ^ 0xb17c5u);
    for (int step = 0; step < uc.steps_per_round; ++step) {
      if (step % 2 == 1) {
        // Mutation step: apply a seeded batch; every third one also
        // folds the deltas (merge must be invisible to results).
        const UpdateBatch batch = random_batch(
            batch_rng, *db.materialize_snapshot(db.graph_epoch()),
            1 + static_cast<unsigned>(batch_rng.next_below(3)));
        if (!batch.empty()) db.apply_update(batch);
        if (step % 6 == 3) db.merge_deltas();
        continue;
      }
      Rng rng(++qseed);
      const std::string query = testgen::random_query(rng, qcfg);
      {
        // Skip oracle-unsupported shapes (checked on the current graph).
        try {
          baseline::reference_evaluate(query,
                                       *db.materialize_snapshot(
                                           db.graph_epoch()));
        } catch (const UnsupportedError&) {
          continue;
        }
      }
      for (const auto& schedule : uc.schedules) {
        const std::uint64_t fseed = qseed ^ 0x5bf03u;
        db.set_fault_schedule(schedule, fseed);
        const std::string repro =
            "repro: qseed=" + std::to_string(qseed) + " gseed=" +
            std::to_string(gseed) + " epoch=" +
            std::to_string(db.graph_epoch()) + " schedule=" + schedule +
            " fseed=" + std::to_string(fseed) + " machines=" +
            std::to_string(uc.machines) + " query=" + query;
        const QueryResult result = db.query(query);
        const std::uint64_t expected =
            baseline::reference_evaluate(
                query, *db.materialize_snapshot(result.stats.snapshot_epoch))
                .count;
        EXPECT_EQ(result.count, expected) << repro;
        if (!result.stats.result_cache_hit &&
            !result.stats.result_cache_coalesced) {
          check_invariants(result, repro);
        }
      }
    }
  }
}

TEST(UpdateDifferential, InterleavedBatchesAgreeWithPinnedEpochOracle) {
  UpdateHarnessConfig uc;
  uc.rounds = env_int("RPQD_UPDATE_DIFF_ROUNDS", 4);
  uc.schedules = {"none", "reorder", "dup-storm", "chaos", "loss"};
  uc.base_seed = 61;
  run_update_differential(uc);
}

TEST(UpdateDifferential, CreditJitterAndMergeHeavyAblation) {
  UpdateHarnessConfig uc;
  uc.rounds = env_int("RPQD_UPDATE_DIFF_ROUNDS", 4) / 2 + 1;
  uc.steps_per_round = 8;
  uc.schedules = {"credit-jitter", "chaos"};
  uc.machines = 2;
  uc.base_seed = 89;
  run_update_differential(uc);
}

/// Concurrent variant: a wave of submissions races one apply_update.
/// Each result must equal the oracle of the epoch IT pinned — proof of
/// snapshot isolation (no torn batch) on the serving path.
void run_concurrent_update_wave(int waves, unsigned inflight,
                                const std::string& schedule,
                                std::uint64_t base_seed) {
  testgen::QueryGenConfig qcfg;
  qcfg.num_vertex_labels = 2;
  qcfg.num_edge_labels = 2;
  qcfg.conjunction_prob = 0.2;

  for (int wave = 0; wave < waves; ++wave) {
    synthetic::RandomGraphConfig gcfg;
    gcfg.num_vertices = 20;
    gcfg.num_edges = 46;
    gcfg.num_vertex_labels = 2;
    gcfg.num_edge_labels = 2;
    gcfg.allow_self_loops = wave % 2 == 1;
    const std::uint64_t gseed =
        base_seed * 1000 + static_cast<std::uint64_t>(wave);
    gcfg.seed = gseed;

    EngineConfig ec;
    ec.workers_per_machine = 2;
    ec.buffers_per_machine = 48;
    ec.buffer_bytes = 256;
    ec.result_cache_max_bytes = 1 << 20;
    Database db(synthetic::make_random(gcfg), 3, ec);
    db.set_fault_schedule(schedule, gseed ^ 0x77u);
    SchedulerConfig sc;
    sc.max_inflight = inflight;
    db.configure_scheduler(sc);

    std::vector<std::string> queries;
    std::uint64_t qseed =
        base_seed * 100003 + static_cast<std::uint64_t>(wave) * 977;
    while (queries.size() < inflight * 2) {
      Rng rng(++qseed);
      const std::string query = testgen::random_query(rng, qcfg);
      try {
        baseline::reference_evaluate(query,
                                     *db.materialize_snapshot(
                                         db.graph_epoch()));
      } catch (const UnsupportedError&) {
        continue;
      }
      queries.push_back(query);
    }

    Rng batch_rng(gseed ^ 0xb17c5u);
    std::vector<QueryTicket> tickets;
    tickets.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      tickets.push_back(db.submit(queries[i]));
      if (i + 1 == queries.size() / 2) {
        // Mid-wave mutation: earlier submissions may have pinned the old
        // epoch, later ones the new — both must match their own oracle.
        const UpdateBatch batch = random_batch(
            batch_rng, *db.materialize_snapshot(db.graph_epoch()),
            1 + static_cast<unsigned>(batch_rng.next_below(3)));
        if (!batch.empty()) db.apply_update(batch);
      }
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const QueryResult result = db.await(tickets[i]);
      const std::string repro =
          "repro: wave gseed=" + std::to_string(gseed) + " schedule=" +
          schedule + " i=" + std::to_string(i) + " epoch=" +
          std::to_string(result.stats.snapshot_epoch) + " query=" +
          queries[i];
      ASSERT_FALSE(result.aborted)
          << to_string(result.abort_reason) << "; " << repro;
      const std::uint64_t expected =
          baseline::reference_evaluate(
              queries[i],
              *db.materialize_snapshot(result.stats.snapshot_epoch))
              .count;
      EXPECT_EQ(result.count, expected) << repro;
    }
  }
}

TEST(UpdateDifferential, ConcurrentWaveRacesOneUpdate) {
  run_concurrent_update_wave(env_int("RPQD_UPDATE_DIFF_WAVES", 4), 4,
                             "none", 101);
  run_concurrent_update_wave(2, 3, "reorder", 113);
}

// Acceptance-scale sweep (ctest -L tier2-updates).
TEST(UpdateDifferential, Tier2UpdateSweep) {
  if (std::getenv("RPQD_TIER2_UPDATES") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_UPDATES=1 (ctest -L tier2-updates)";
  }
  UpdateHarnessConfig uc;
  uc.rounds = 12;
  uc.steps_per_round = 20;
  uc.schedules = {"none",  "reorder",       "dup-storm",
                  "credit-jitter", "chaos", "loss", "corrupt-storm"};
  uc.base_seed = 211;
  run_update_differential(uc);
  UpdateHarnessConfig two;
  two.rounds = 8;
  two.steps_per_round = 16;
  two.schedules = {"reorder", "chaos"};
  two.machines = 2;
  two.base_seed = 223;
  run_update_differential(two);
  run_concurrent_update_wave(10, 5, "chaos", 227);
}

}  // namespace
}  // namespace rpqd
