// Unit tests for the property-graph model: builder, CSR invariants,
// label ranges, edge probes, properties, and the catalog.
#include <gtest/gtest.h>

#include "graph/graph.h"

namespace rpqd {
namespace {

Graph diamond() {
  // 0 -a-> 1 -b-> 3, 0 -a-> 2 -b-> 3, plus parallel 0 -a-> 1.
  GraphBuilder b;
  const LabelId node = b.catalog().vertex_label("Node");
  for (int i = 0; i < 4; ++i) b.add_vertex(node);
  const LabelId la = b.catalog().edge_label("a");
  const LabelId lb = b.catalog().edge_label("b");
  b.add_edge(0, 1, la);
  b.add_edge(0, 2, la);
  b.add_edge(1, 3, lb);
  b.add_edge(2, 3, lb);
  b.add_edge(0, 1, la);  // parallel edge
  b.set_property(0, b.catalog().property("x", ValueType::kInt), int_value(10));
  b.set_property(3, b.catalog().property("x", ValueType::kInt), int_value(30));
  return std::move(b).build();
}

TEST(Graph, Counts) {
  const Graph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.out().num_entries(), 5u);
  EXPECT_EQ(g.in().num_entries(), 5u);
}

TEST(Graph, OutDegrees) {
  const Graph g = diamond();
  EXPECT_EQ(g.out().degree(0), 3u);
  EXPECT_EQ(g.out().degree(1), 1u);
  EXPECT_EQ(g.out().degree(3), 0u);
  EXPECT_EQ(g.in().degree(3), 2u);
  EXPECT_EQ(g.in().degree(0), 0u);
}

TEST(Graph, EntriesSortedByLabelThenDst) {
  const Graph g = diamond();
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const auto [begin, end] = g.out().range(v);
    for (std::size_t i = begin; i + 1 < end; ++i) {
      const auto& a = g.out().entry(i);
      const auto& b = g.out().entry(i + 1);
      EXPECT_LE(std::tie(a.elabel, a.other), std::tie(b.elabel, b.other));
    }
  }
}

TEST(Graph, LabelRange) {
  const Graph g = diamond();
  const auto la = *g.catalog().find_edge_label("a");
  const auto lb = *g.catalog().find_edge_label("b");
  const auto [ab, ae] = g.out().label_range(0, la);
  EXPECT_EQ(ae - ab, 3u);
  const auto [bb, be] = g.out().label_range(0, lb);
  EXPECT_EQ(be - bb, 0u);
  const auto [ib, ie] = g.in().label_range(3, lb);
  EXPECT_EQ(ie - ib, 2u);
}

TEST(Graph, HasEdgeTo) {
  const Graph g = diamond();
  const auto la = *g.catalog().find_edge_label("a");
  const auto lb = *g.catalog().find_edge_label("b");
  EXPECT_TRUE(g.out().has_edge_to(0, 1, la));
  EXPECT_TRUE(g.out().has_edge_to(0, 1, std::nullopt));
  EXPECT_FALSE(g.out().has_edge_to(0, 1, lb));
  EXPECT_FALSE(g.out().has_edge_to(0, 3, std::nullopt));
  EXPECT_TRUE(g.in().has_edge_to(3, 1, lb));
}

TEST(Graph, CountEdgesToCountsParallel) {
  const Graph g = diamond();
  const auto la = *g.catalog().find_edge_label("a");
  EXPECT_EQ(g.out().count_edges_to(0, 1, la), 2u);
  EXPECT_EQ(g.out().count_edges_to(0, 1, std::nullopt), 2u);
  EXPECT_EQ(g.out().count_edges_to(0, 2, la), 1u);
  EXPECT_EQ(g.out().count_edges_to(0, 3, std::nullopt), 0u);
}

TEST(Graph, Properties) {
  const Graph g = diamond();
  const auto x = *g.catalog().find_property("x");
  EXPECT_EQ(as_int(g.property(0, x)), 10);
  EXPECT_EQ(as_int(g.property(3, x)), 30);
  EXPECT_TRUE(is_null(g.property(1, x)));
  EXPECT_TRUE(is_null(g.property(0, static_cast<PropId>(99))));
}

TEST(Graph, EdgeProperties) {
  GraphBuilder b;
  b.add_vertex("N");
  b.add_vertex("N");
  const EdgeId e0 = b.add_edge(0, 1, "e");
  const EdgeId e1 = b.add_edge(0, 1, "e");
  const PropId w = b.catalog().property("w", ValueType::kInt);
  b.set_edge_property(e0, w, int_value(5));
  b.set_edge_property(e1, w, int_value(7));
  const Graph g = std::move(b).build();
  const auto [begin, end] = g.out().range(0);
  ASSERT_EQ(end - begin, 2u);
  std::int64_t sum = 0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += as_int(g.out().edge_property(i, w));
  }
  EXPECT_EQ(sum, 12);
  // The in-CSR carries the same edge property values.
  const auto [ib, ie] = g.in().range(1);
  sum = 0;
  for (std::size_t i = ib; i < ie; ++i) {
    sum += as_int(g.in().edge_property(i, w));
  }
  EXPECT_EQ(sum, 12);
}

TEST(Catalog, DictionariesAreStable) {
  Catalog c;
  const LabelId p1 = c.vertex_label("Person");
  const LabelId p2 = c.vertex_label("Person");
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(c.vertex_label_name(p1), "Person");
  EXPECT_FALSE(c.find_vertex_label("Nope").has_value());
}

TEST(Catalog, PropertyTypeConflictThrows) {
  Catalog c;
  c.property("age", ValueType::kInt);
  EXPECT_THROW(c.property("age", ValueType::kString), EngineError);
}

TEST(Catalog, CompareNumericPromotion) {
  Catalog c;
  EXPECT_EQ(c.compare(int_value(2), double_value(2.0)), 0);
  EXPECT_EQ(c.compare(int_value(2), double_value(2.5)), -1);
  EXPECT_EQ(c.compare(double_value(3.0), int_value(2)), 1);
}

TEST(Catalog, CompareStringsViaDictionary) {
  Catalog c;
  const auto apple = c.string_id("apple");
  const auto banana = c.string_id("banana");
  EXPECT_EQ(c.compare(string_value(apple), string_value(banana)), -1);
  EXPECT_EQ(c.compare(string_value(apple), string_value(apple)), 0);
}

TEST(Catalog, CompareNullIsUnknown) {
  Catalog c;
  EXPECT_FALSE(c.compare(null_value(), int_value(1)).has_value());
  EXPECT_FALSE(c.compare(int_value(1), null_value()).has_value());
}

TEST(Catalog, CompareVertexWithInt) {
  Catalog c;
  EXPECT_EQ(c.compare(vertex_value(5), int_value(5)), 0);
  EXPECT_EQ(c.compare(vertex_value(4), int_value(5)), -1);
}

TEST(Catalog, Render) {
  Catalog c;
  EXPECT_EQ(c.render(int_value(42)), "42");
  EXPECT_EQ(c.render(bool_value(true)), "true");
  EXPECT_EQ(c.render(null_value()), "null");
  const auto s = c.string_id("hi");
  EXPECT_EQ(c.render(string_value(s)), "\"hi\"");
  EXPECT_EQ(c.render(vertex_value(3)), "3");
}

TEST(GraphBuilder, BadVertexThrows) {
  GraphBuilder b;
  b.add_vertex("N");
  EXPECT_THROW(b.add_edge(0, 5, "e"), EngineError);
  EXPECT_THROW(
      b.set_property(9, b.catalog().property("p", ValueType::kInt),
                     int_value(1)),
      EngineError);
}

}  // namespace
}  // namespace rpqd
