// Tests for hash partitioning: ownership, local/global id mapping, and
// parity of the sliced adjacency/property data with the global graph.
#include <gtest/gtest.h>

#include "graph/partition.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

std::shared_ptr<const Graph> random_graph(std::uint64_t seed) {
  synthetic::RandomGraphConfig cfg;
  cfg.num_vertices = 120;
  cfg.num_edges = 400;
  cfg.seed = seed;
  return std::make_shared<const Graph>(synthetic::make_random(cfg));
}

TEST(Partition, EveryVertexOwnedExactlyOnce) {
  const auto g = random_graph(1);
  const PartitionedGraph pg(g, 5);
  std::vector<int> owners(g->num_vertices(), 0);
  for (unsigned m = 0; m < pg.num_machines(); ++m) {
    const Partition& p = pg.partition(m);
    for (std::size_t i = 0; i < p.num_local(); ++i) {
      ++owners[p.to_global(static_cast<LocalVertexId>(i))];
    }
  }
  for (const int c : owners) EXPECT_EQ(c, 1);
}

TEST(Partition, OwnerFunctionMatchesAssignment) {
  const auto g = random_graph(2);
  const PartitionedGraph pg(g, 4);
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    const MachineId owner = pg.owner(v);
    EXPECT_TRUE(pg.partition(owner).owns(v));
    EXPECT_TRUE(pg.partition(owner).to_local(v).has_value());
    for (unsigned m = 0; m < 4; ++m) {
      if (m != owner) {
        EXPECT_FALSE(pg.partition(m).to_local(v).has_value());
      }
    }
  }
}

TEST(Partition, LocalGlobalRoundTrip) {
  const auto g = random_graph(3);
  const PartitionedGraph pg(g, 3);
  for (unsigned m = 0; m < 3; ++m) {
    const Partition& p = pg.partition(m);
    for (std::size_t i = 0; i < p.num_local(); ++i) {
      const VertexId global = p.to_global(static_cast<LocalVertexId>(i));
      EXPECT_EQ(*p.to_local(global), static_cast<LocalVertexId>(i));
    }
  }
}

TEST(Partition, AdjacencyMatchesGlobal) {
  const auto g = random_graph(4);
  const PartitionedGraph pg(g, 4);
  for (unsigned m = 0; m < 4; ++m) {
    const Partition& p = pg.partition(m);
    for (std::size_t i = 0; i < p.num_local(); ++i) {
      const VertexId global = p.to_global(static_cast<LocalVertexId>(i));
      for (const Direction dir : {Direction::kOut, Direction::kIn}) {
        const Adjacency& local_adj = p.adjacency(dir);
        const Adjacency& global_adj = g->adjacency(dir);
        ASSERT_EQ(local_adj.degree(i), global_adj.degree(global));
        const auto [lb, le] = local_adj.range(i);
        const auto [gb, ge] = global_adj.range(global);
        (void)ge;
        for (std::size_t k = 0; k < le - lb; ++k) {
          EXPECT_EQ(local_adj.entry(lb + k).other,
                    global_adj.entry(gb + k).other);
          EXPECT_EQ(local_adj.entry(lb + k).elabel,
                    global_adj.entry(gb + k).elabel);
        }
      }
    }
  }
}

TEST(Partition, PropertiesMatchGlobal) {
  const auto g = random_graph(5);
  const PartitionedGraph pg(g, 6);
  const auto weight = *g->catalog().find_property("weight");
  for (unsigned m = 0; m < 6; ++m) {
    const Partition& p = pg.partition(m);
    for (std::size_t i = 0; i < p.num_local(); ++i) {
      const VertexId global = p.to_global(static_cast<LocalVertexId>(i));
      EXPECT_EQ(p.property(static_cast<LocalVertexId>(i), weight),
                g->property(global, weight));
      EXPECT_EQ(p.label(static_cast<LocalVertexId>(i)), g->label(global));
    }
  }
}

TEST(Partition, SingleMachineOwnsEverything) {
  const auto g = random_graph(6);
  const PartitionedGraph pg(g, 1);
  EXPECT_EQ(pg.partition(0).num_local(), g->num_vertices());
}

TEST(Partition, BalancedAcrossMachines) {
  const auto g = random_graph(7);
  const PartitionedGraph pg(g, 4);
  const std::size_t expected = g->num_vertices() / 4;
  for (unsigned m = 0; m < 4; ++m) {
    const std::size_t n = pg.partition(m).num_local();
    EXPECT_GT(n, expected / 2);
    EXPECT_LT(n, expected * 2);
  }
}

TEST(Partition, RequireLocalThrowsForRemote) {
  const auto g = random_graph(8);
  const PartitionedGraph pg(g, 2);
  const Partition& p0 = pg.partition(0);
  // Find a vertex owned by machine 1.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    if (pg.owner(v) == 1) {
      EXPECT_THROW(p0.require_local(v), EngineError);
      break;
    }
  }
}

TEST(Partition, TooManyMachinesRejected) {
  const auto g = random_graph(9);
  EXPECT_THROW(PartitionedGraph(g, 0), EngineError);
  EXPECT_THROW(PartitionedGraph(g, 300), EngineError);
}

}  // namespace
}  // namespace rpqd
