// Regression tests locking the per-query stats isolation invariant:
// every query on a long-lived Database gets fresh NetStats, flow-control,
// reachability-index, and profile state — counters never bleed from one
// query into the next. The engine guarantees this by construction (a
// fresh Network/MachineRuntime set per run); these tests pin it against
// future refactors that might cache or pool that state.
//
// Determinism note: with one worker per machine on acyclic chain graphs
// the traversal set — and therefore count, contexts_sent, RPQ matches,
// index entries, and max depth — is schedule-independent. Message/byte
// counts depend on flush boundaries and are deliberately NOT compared.
#include <gtest/gtest.h>

#include <string>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"
#include "runtime/profile.h"

namespace rpqd {
namespace {

EngineConfig iso_config() {
  EngineConfig cfg;
  cfg.workers_per_machine = 1;  // deterministic traversal accounting
  cfg.buffers_per_machine = 64;
  cfg.buffer_bytes = 256;
  return cfg;
}

constexpr const char* kHeavy = "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";
constexpr const char* kLight =
    "SELECT COUNT(*) FROM MATCH (a) -/:next{1,2}/-> (b)";

TEST(StatsIsolation, BackToBackQueriesAreIndependent) {
  Database db(synthetic::make_chain(14), 3, iso_config());
  const QueryResult heavy = db.query(kHeavy);
  const QueryResult light = db.query(kLight);

  // Reference: the same light query on a Database that never ran the
  // heavy one. Identical deterministic counters ⇒ nothing leaked.
  Database fresh(synthetic::make_chain(14), 3, iso_config());
  const QueryResult baseline = fresh.query(kLight);

  EXPECT_EQ(light.count, baseline.count);
  EXPECT_EQ(light.stats.contexts_sent, baseline.stats.contexts_sent);
  ASSERT_EQ(light.stats.rpq.size(), baseline.stats.rpq.size());
  for (std::size_t g = 0; g < light.stats.rpq.size(); ++g) {
    EXPECT_EQ(light.stats.rpq[g].total_matches(),
              baseline.stats.rpq[g].total_matches());
    EXPECT_EQ(light.stats.rpq[g].total_eliminated(),
              baseline.stats.rpq[g].total_eliminated());
    EXPECT_EQ(light.stats.rpq[g].index_entries,
              baseline.stats.rpq[g].index_entries);
    EXPECT_EQ(light.stats.rpq[g].max_depth_observed,
              baseline.stats.rpq[g].max_depth_observed);
  }
  ASSERT_EQ(light.stats.stages.size(), baseline.stats.stages.size());
  for (std::size_t s = 0; s < light.stats.stages.size(); ++s) {
    EXPECT_EQ(light.stats.stages[s].visits, baseline.stats.stages[s].visits);
    EXPECT_EQ(light.stats.stages[s].remote_out,
              baseline.stats.stages[s].remote_out);
  }
  // Sanity: the heavy query really did dwarf the light one, so leaked
  // accumulation would have been visible in the equalities above.
  EXPECT_GT(heavy.stats.contexts_sent, light.stats.contexts_sent);
  EXPECT_GT(heavy.stats.rpq[0].total_matches(),
            light.stats.rpq[0].total_matches());
  // Credit books are clean after every run, in both orders.
  for (const QueryResult* r : {&heavy, &light, &baseline}) {
    EXPECT_EQ(r->stats.flow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_overflow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_emergency, 0u);
  }
}

TEST(StatsIsolation, PeakQueuedBytesIsPerQuery) {
  // peak_queued_bytes is a per-query high-water mark: a light query after
  // a heavy one must not inherit the heavy query's peak.
  Database db(synthetic::make_chain(14), 3, iso_config());
  const QueryResult heavy = db.query(kHeavy);
  const QueryResult light = db.query(kLight);
  EXPECT_GT(heavy.stats.peak_queued_bytes, 0u);
  EXPECT_LE(light.stats.peak_queued_bytes, heavy.stats.peak_queued_bytes);
}

TEST(StatsIsolation, ProfileStateDoesNotLeakAcrossQueries) {
  Database db(synthetic::make_chain(12), 3, iso_config());
  const QueryResult prof = db.query(std::string("PROFILE ") + kHeavy);
  ASSERT_TRUE(prof.profile.enabled);
  const std::uint64_t contexts_first = prof.profile.total_contexts();
  // An unprofiled query in between allocates nothing.
  const std::uint64_t before = profile_allocations();
  EXPECT_FALSE(db.query(kHeavy).profile.enabled);
  EXPECT_EQ(profile_allocations(), before);
  // A second profiled run starts from a zeroed tree, not the first's.
  const QueryResult again = db.query(std::string("PROFILE ") + kHeavy);
  EXPECT_EQ(again.profile.total_contexts(), contexts_first);
  EXPECT_EQ(again.profile.total_ctx_sent(), prof.profile.total_ctx_sent());
}

// ---- concurrent serving (runtime/scheduler.h) -------------------------
// The isolation bar while queries OVERLAP: per-query stats, profile
// trees, and credit books must reconcile exactly as if each query ran
// alone. This doubles as the NetStats aliasing audit regression: every
// NetStats / peak_queued_bytes counter hangs off the run's own Network
// (see the audit note in net/network.h), so a heavy neighbour must not
// bleed into a light query's numbers. The deliberately engine-global
// counters (fault_run_seq_, epoch_seq_ — see runtime/engine.h) are
// excluded by design and documented there.

TEST(StatsIsolation, OverlappingQueriesReconcileExactly) {
  Database db(synthetic::make_chain(14), 3, iso_config());
  SchedulerConfig sc;
  sc.max_inflight = 2;
  db.configure_scheduler(sc);

  // Both queries in flight together, both profiled.
  QueryTicket theavy = db.submit(std::string("PROFILE ") + kHeavy);
  QueryTicket tlight = db.submit(std::string("PROFILE ") + kLight);
  const QueryResult heavy = db.await(theavy);
  const QueryResult light = db.await(tlight);
  ASSERT_FALSE(heavy.aborted);
  ASSERT_FALSE(light.aborted);

  // Solo references on a database that never served concurrently.
  Database fresh(synthetic::make_chain(14), 3, iso_config());
  const QueryResult solo_heavy = fresh.query(std::string("PROFILE ") + kHeavy);
  const QueryResult solo_light = fresh.query(std::string("PROFILE ") + kLight);

  const auto expect_identical = [](const QueryResult& got,
                                   const QueryResult& solo) {
    EXPECT_EQ(got.count, solo.count);
    EXPECT_EQ(got.stats.contexts_sent, solo.stats.contexts_sent);
    ASSERT_EQ(got.stats.rpq.size(), solo.stats.rpq.size());
    for (std::size_t g = 0; g < got.stats.rpq.size(); ++g) {
      EXPECT_EQ(got.stats.rpq[g].total_matches(),
                solo.stats.rpq[g].total_matches());
      EXPECT_EQ(got.stats.rpq[g].total_eliminated(),
                solo.stats.rpq[g].total_eliminated());
      EXPECT_EQ(got.stats.rpq[g].index_entries,
                solo.stats.rpq[g].index_entries);
      EXPECT_EQ(got.stats.rpq[g].max_depth_observed,
                solo.stats.rpq[g].max_depth_observed);
    }
    ASSERT_EQ(got.stats.stages.size(), solo.stats.stages.size());
    for (std::size_t s = 0; s < got.stats.stages.size(); ++s) {
      EXPECT_EQ(got.stats.stages[s].visits, solo.stats.stages[s].visits);
      EXPECT_EQ(got.stats.stages[s].remote_out,
                solo.stats.stages[s].remote_out);
    }
    // The profile tree reconciles against the run's OWN fabric counters
    // even while a neighbour's fabric is live.
    ASSERT_TRUE(got.profile.enabled);
    EXPECT_EQ(got.profile.total_ctx_sent(), got.stats.contexts_sent);
    EXPECT_EQ(got.profile.total_ctx_received(), got.stats.contexts_sent);
    EXPECT_EQ(got.profile.total_msgs_sent(), got.stats.data_messages);
    EXPECT_EQ(got.profile.total_contexts(), solo.profile.total_contexts());
  };
  expect_identical(light, solo_light);
  expect_identical(heavy, solo_heavy);

  // NetStats aliasing audit: the light query's byte high-water mark must
  // not inherit the heavy neighbour's (aliased counters would equalize).
  EXPECT_GT(heavy.stats.peak_queued_bytes, 0u);
  EXPECT_LE(light.stats.peak_queued_bytes, heavy.stats.peak_queued_bytes);
  for (const QueryResult* r : {&heavy, &light}) {
    EXPECT_EQ(r->stats.flow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_overflow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_emergency, 0u);
  }
}

TEST(StatsIsolation, MixedCancelCompleteWaveLeavesBooksClean) {
  // A wave where some queries are cancelled mid-flight and the rest
  // complete: after the wave, every result's credit ledger reads zero
  // outstanding and empty overflow — cancelled runs drain too.
  EngineConfig cfg = iso_config();
  cfg.use_reachability_index = false;  // blockers explore ~unboundedly
  cfg.max_exploration_depth = 64;
  Database db(synthetic::make_complete(10), 3, cfg);
  const char* kBlocker = "SELECT COUNT(*) FROM MATCH (a) -/:edge*/-> (b)";
  const char* kCheap = "SELECT COUNT(*) FROM MATCH (a) -/:edge{1,1}/-> (b)";
  const std::uint64_t cheap_expected = db.query(kCheap).count;

  SchedulerConfig sc;
  sc.max_inflight = 2;
  sc.max_queued = 8;
  db.configure_scheduler(sc);

  QueryTicket b1 = db.submit(kBlocker);
  QueryTicket b2 = db.submit(kBlocker);
  QueryTicket c1 = db.submit(kCheap);  // queued behind the blockers
  QueryTicket c2 = db.submit(kCheap);
  EXPECT_TRUE(db.cancel(b1));
  EXPECT_TRUE(db.cancel(b2));

  unsigned completed = 0, cancelled = 0;
  for (const QueryTicket* t : {&b1, &b2, &c1, &c2}) {
    const QueryResult r = db.await(*t);
    EXPECT_EQ(r.stats.flow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_overflow_outstanding, 0u);
    EXPECT_EQ(r.stats.flow_emergency, 0u);
    if (r.aborted) {
      ++cancelled;
      EXPECT_EQ(r.abort_reason, AbortReason::kUserCancel);
    } else {
      ++completed;
      EXPECT_EQ(r.count, cheap_expected);
    }
  }
  EXPECT_EQ(cancelled, 2u);
  EXPECT_EQ(completed, 2u);
  // The database serves normally after the mixed wave.
  EXPECT_EQ(db.query(kCheap).count, cheap_expected);
}

}  // namespace
}  // namespace rpqd
