// Regression tests locking the per-query stats isolation invariant:
// every query on a long-lived Database gets fresh NetStats, flow-control,
// reachability-index, and profile state — counters never bleed from one
// query into the next. The engine guarantees this by construction (a
// fresh Network/MachineRuntime set per run); these tests pin it against
// future refactors that might cache or pool that state.
//
// Determinism note: with one worker per machine on acyclic chain graphs
// the traversal set — and therefore count, contexts_sent, RPQ matches,
// index entries, and max depth — is schedule-independent. Message/byte
// counts depend on flush boundaries and are deliberately NOT compared.
#include <gtest/gtest.h>

#include <string>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"
#include "runtime/profile.h"

namespace rpqd {
namespace {

EngineConfig iso_config() {
  EngineConfig cfg;
  cfg.workers_per_machine = 1;  // deterministic traversal accounting
  cfg.buffers_per_machine = 64;
  cfg.buffer_bytes = 256;
  return cfg;
}

constexpr const char* kHeavy = "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)";
constexpr const char* kLight =
    "SELECT COUNT(*) FROM MATCH (a) -/:next{1,2}/-> (b)";

TEST(StatsIsolation, BackToBackQueriesAreIndependent) {
  Database db(synthetic::make_chain(14), 3, iso_config());
  const QueryResult heavy = db.query(kHeavy);
  const QueryResult light = db.query(kLight);

  // Reference: the same light query on a Database that never ran the
  // heavy one. Identical deterministic counters ⇒ nothing leaked.
  Database fresh(synthetic::make_chain(14), 3, iso_config());
  const QueryResult baseline = fresh.query(kLight);

  EXPECT_EQ(light.count, baseline.count);
  EXPECT_EQ(light.stats.contexts_sent, baseline.stats.contexts_sent);
  ASSERT_EQ(light.stats.rpq.size(), baseline.stats.rpq.size());
  for (std::size_t g = 0; g < light.stats.rpq.size(); ++g) {
    EXPECT_EQ(light.stats.rpq[g].total_matches(),
              baseline.stats.rpq[g].total_matches());
    EXPECT_EQ(light.stats.rpq[g].total_eliminated(),
              baseline.stats.rpq[g].total_eliminated());
    EXPECT_EQ(light.stats.rpq[g].index_entries,
              baseline.stats.rpq[g].index_entries);
    EXPECT_EQ(light.stats.rpq[g].max_depth_observed,
              baseline.stats.rpq[g].max_depth_observed);
  }
  ASSERT_EQ(light.stats.stages.size(), baseline.stats.stages.size());
  for (std::size_t s = 0; s < light.stats.stages.size(); ++s) {
    EXPECT_EQ(light.stats.stages[s].visits, baseline.stats.stages[s].visits);
    EXPECT_EQ(light.stats.stages[s].remote_out,
              baseline.stats.stages[s].remote_out);
  }
  // Sanity: the heavy query really did dwarf the light one, so leaked
  // accumulation would have been visible in the equalities above.
  EXPECT_GT(heavy.stats.contexts_sent, light.stats.contexts_sent);
  EXPECT_GT(heavy.stats.rpq[0].total_matches(),
            light.stats.rpq[0].total_matches());
  // Credit books are clean after every run, in both orders.
  for (const QueryResult* r : {&heavy, &light, &baseline}) {
    EXPECT_EQ(r->stats.flow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_overflow_outstanding, 0u);
    EXPECT_EQ(r->stats.flow_emergency, 0u);
  }
}

TEST(StatsIsolation, PeakQueuedBytesIsPerQuery) {
  // peak_queued_bytes is a per-query high-water mark: a light query after
  // a heavy one must not inherit the heavy query's peak.
  Database db(synthetic::make_chain(14), 3, iso_config());
  const QueryResult heavy = db.query(kHeavy);
  const QueryResult light = db.query(kLight);
  EXPECT_GT(heavy.stats.peak_queued_bytes, 0u);
  EXPECT_LE(light.stats.peak_queued_bytes, heavy.stats.peak_queued_bytes);
}

TEST(StatsIsolation, ProfileStateDoesNotLeakAcrossQueries) {
  Database db(synthetic::make_chain(12), 3, iso_config());
  const QueryResult prof = db.query(std::string("PROFILE ") + kHeavy);
  ASSERT_TRUE(prof.profile.enabled);
  const std::uint64_t contexts_first = prof.profile.total_contexts();
  // An unprofiled query in between allocates nothing.
  const std::uint64_t before = profile_allocations();
  EXPECT_FALSE(db.query(kHeavy).profile.enabled);
  EXPECT_EQ(profile_allocations(), before);
  // A second profiled run starts from a zeroed tree, not the first's.
  const QueryResult again = db.query(std::string("PROFILE ") + kHeavy);
  EXPECT_EQ(again.profile.total_contexts(), contexts_first);
  EXPECT_EQ(again.profile.total_ctx_sent(), prof.profile.total_ctx_sent());
}

}  // namespace
}  // namespace rpqd
