// Concurrent update/query stress (DESIGN.md §12): threads race
// apply_update against blocking queries, scheduled submissions, cache
// probes, stats polls, and delta merges on one Database. Run under TSan
// (tier2-updates-tsan preset) this is the data-race gate for the online
// update path: RCU snapshot publication, the epoch handshake between
// the update path and the result cache, and the reach-cache generation
// bumps all get exercised under genuine contention.
//
// Correctness bar inside the race: every completed query's count must
// equal the reference oracle on the snapshot it pinned
// (materialize_snapshot of its stats.snapshot_epoch) — not "some nearby
// epoch". The coherence engine_checks stay armed throughout: a mutation
// that reached a query before the caches would abort the whole test.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/rpqd.h"
#include "baseline/reference.h"
#include "common/rng.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// The stress mutates only `extra` edges between pre-seeded vertices, so
/// every batch is valid by construction without reading the graph:
/// inserts add (src, dst) cycle chords, deletes remove edges this thread
/// inserted earlier (recorded locally, applied at most once).
void run_update_stress(std::size_t n_vertices, int n_query_threads,
                       int queries_per_thread, int n_batches,
                       std::uint64_t seed) {
  EngineConfig ec;
  ec.workers_per_machine = 2;
  ec.buffers_per_machine = 48;
  ec.buffer_bytes = 256;
  ec.result_cache_max_bytes = 1 << 20;
  ec.reach_cache_max_bytes = 1 << 20;
  Database db(synthetic::make_cycle(n_vertices), 3, ec);
  const LabelId next = *db.graph().catalog().find_edge_label("next");

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/-> (b)",
      "SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b)",
      "SELECT COUNT(*) FROM MATCH (a)",
  };

  std::atomic<bool> failed{false};
  const auto check = [&](const QueryResult& result, const std::string& q,
                         const char* path) {
    const std::uint64_t expected =
        baseline::reference_evaluate(
            q, *db.materialize_snapshot(result.stats.snapshot_epoch))
            .count;
    if (result.count != expected) {
      failed.store(true);
      ADD_FAILURE() << path << " count " << result.count << " != oracle "
                    << expected << " at epoch "
                    << result.stats.snapshot_epoch << " for " << q;
    }
  };

  std::thread updater([&] {
    Rng rng(seed);
    std::vector<EdgeInsert> mine;  // edges this thread added, deletable
    for (int i = 0; i < n_batches && !failed.load(); ++i) {
      UpdateBatch batch;
      if (!mine.empty() && rng.next_below(3) == 0) {
        const std::size_t pick = rng.next_below(mine.size());
        batch.edge_deletes.push_back(
            {mine[pick].src, mine[pick].dst, mine[pick].elabel});
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const VertexId src =
            static_cast<VertexId>(rng.next_below(n_vertices));
        const VertexId dst =
            static_cast<VertexId>(rng.next_below(n_vertices));
        batch.edge_inserts.push_back({src, dst, next});
        // Record each (src, dst, elabel) key at most once: one delete
        // removes EVERY parallel, so a duplicate record would later
        // issue a delete that matches nothing (a validation error).
        const bool dup = std::any_of(
            mine.begin(), mine.end(), [&](const EdgeInsert& e) {
              return e.src == src && e.dst == dst;
            });
        if (!dup) mine.push_back(batch.edge_inserts.back());
      }
      const UpdateResult receipt = db.apply_update(batch);
      EXPECT_GT(receipt.epoch, 0u);
      if (i % 7 == 6) db.merge_deltas();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < n_query_threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(seed ^ (0x9e37u * static_cast<std::uint64_t>(t + 1)));
      for (int i = 0; i < queries_per_thread && !failed.load(); ++i) {
        const std::string& q = queries[rng.next_below(queries.size())];
        if (t % 2 == 0) {
          check(db.query(q), q, "blocking");
        } else {
          const QueryResult r = db.await(db.submit(q));
          if (!r.aborted) check(r, q, "scheduled");
        }
      }
    });
  }

  std::thread poller([&] {
    while (!failed.load()) {
      const ResultCacheStats rc = db.result_cache_stats();
      const GraphStoreStats gs = db.update_stats();
      // Monotone sanity under the race; torn reads would trip TSan.
      EXPECT_LE(rc.coherent_epoch, db.graph_epoch());
      EXPECT_LE(gs.merges, gs.batches_applied + 1);
      if (gs.epoch >= static_cast<std::uint64_t>(n_batches)) break;
      std::this_thread::yield();
    }
  });

  updater.join();
  for (auto& w : workers) w.join();
  poller.join();

  // Settled state: one more coherent round-trip end to end.
  const QueryResult last = db.query(queries[0]);
  check(last, queries[0], "settled");
  EXPECT_EQ(db.result_cache_stats().coherent_epoch, db.graph_epoch());
}

TEST(UpdateStress, RacingUpdatesQueriesAndProbes) {
  run_update_stress(10, env_int("RPQD_UPDATE_STRESS_THREADS", 4),
                    env_int("RPQD_UPDATE_STRESS_QUERIES", 12), 30, 171);
}

// Acceptance-scale stress (ctest -L tier2-updates; the TSan configure
// of this test is the data-race gate for the update path).
TEST(UpdateStress, Tier2UpdateStress) {
  if (std::getenv("RPQD_TIER2_UPDATES") == nullptr) {
    GTEST_SKIP() << "set RPQD_TIER2_UPDATES=1 (ctest -L tier2-updates)";
  }
  for (std::uint64_t seed : {311u, 331u, 353u}) {
    run_update_stress(12, 6, 40, 120, seed);
  }
}

}  // namespace
}  // namespace rpqd
