// End-to-end tests of the distributed engine on small graphs with
// hand-computed expected results: quantifier semantics, 0-hop matching,
// undirected traversal, cycles, non-linear patterns, cross-filters,
// projections, machine-count invariance, and runtime statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/rpqd.h"
#include "ldbc/synthetic.h"

namespace rpqd {
namespace {

EngineConfig test_config() {
  EngineConfig cfg;
  cfg.workers_per_machine = 2;
  cfg.buffers_per_machine = 64;
  cfg.buffer_bytes = 512;  // small buffers: force multi-buffer flows
  return cfg;
}

std::uint64_t count(Database& db, const std::string& q) {
  return db.query(q).count;
}

TEST(Engine, ChainUnboundedPlus) {
  Database db(synthetic::make_chain(10), 3, test_config());
  // 9+8+...+1 ordered reachable pairs.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)"), 45u);
}

TEST(Engine, ChainStarIncludesZeroHop) {
  Database db(synthetic::make_chain(10), 3, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)"), 55u);
}

TEST(Engine, ChainExactAndRangeQuantifiers) {
  Database db(synthetic::make_chain(10), 2, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{3}/-> (b)"),
            7u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{2,4}/-> (b)"),
            8u + 7u + 6u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{0,1}/-> (b)"),
            10u + 9u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next?/-> (b)"),
            19u);
}

TEST(Engine, ChainMinHopUnbounded) {
  Database db(synthetic::make_chain(6), 2, test_config());
  // Pairs at distance >= 3: 3+2+1.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{3,}/-> (b)"),
            6u);
}

TEST(Engine, CycleTerminatesAndDedups) {
  Database db(synthetic::make_cycle(5), 3, test_config());
  // Every vertex reaches all 5 (including itself around the loop).
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)"), 25u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)"), 25u);
}

TEST(Engine, CycleWindowBeyondCycleLength) {
  Database db(synthetic::make_cycle(4), 2, test_config());
  // The only walks of length 5 and 6 from a reach a+1 and a+2 (wrap
  // around the 4-cycle): two destinations per source.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{5,6}/-> (b)"),
            8u);
}

TEST(Engine, TreeReachRoot) {
  Database db(synthetic::make_tree(2, 3), 3, test_config());
  EXPECT_EQ(
      count(db, "SELECT COUNT(*) FROM MATCH (c) -/:replyOf+/-> (r:Root)"),
      14u);
  EXPECT_EQ(
      count(db, "SELECT COUNT(*) FROM MATCH (r:Root) <-/:replyOf+/- (c)"),
      14u);
}

TEST(Engine, UndirectedRpq) {
  Database db(synthetic::make_chain(4), 2, test_config());
  // Undirected 1-hop from each vertex: 2*3 ordered adjacent pairs.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next{1}/- (b)"), 6u);
  // Undirected reachability: everything reaches everything, including
  // itself via a back-and-forth walk of length 2.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:next+/- (b)"), 16u);
}

TEST(Engine, LabelAlternationRpq) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex("N");
  b.add_edge(0, 1, "a");
  b.add_edge(1, 2, "b");
  b.add_edge(2, 3, "a");
  Database db(std::move(b).build(), 2, test_config());
  // a|b chain connects 0->3.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (x) -/:a|b+/-> (y)"), 6u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (x) -/:a+/-> (y)"), 2u);
}

TEST(Engine, FixedPatternsAndEdgeHop) {
  Database db(synthetic::make_complete(4), 3, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -[:edge]-> (b)"), 12u);
  // Triangles as non-linear pattern: 4*3*2 ordered.
  EXPECT_EQ(count(db,
                  "SELECT COUNT(*) FROM MATCH (a)-[:edge]->(b)-[:edge]->(c), "
                  "(a)-[:edge]->(c)"),
            24u);
}

TEST(Engine, ParallelEdgeMultiplicity) {
  GraphBuilder b;
  b.add_vertex("N");
  b.add_vertex("N");
  b.add_vertex("N");
  b.add_edge(0, 1, "e");
  b.add_edge(0, 1, "e");  // parallel
  b.add_edge(1, 2, "e");
  Database db(std::move(b).build(), 2, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -[:e]-> (b)"), 3u);
  // Two-hop homomorphic matches: 2 (through each parallel edge).
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a)-[:e]->(b)-[:e]->(c)"),
            2u);
  // Two edge pattern elements between the same endpoints: each parallel
  // edge binds each element: 2x2 for (0,1) plus 1x1 for (1,2).
  EXPECT_EQ(count(db,
                  "SELECT COUNT(*) FROM MATCH (a)-[:e]->(b), (a)-[:e]->(b)"),
            5u);
}

TEST(Engine, RpqDestinationsDedupedDespiteParallelPaths) {
  // Diamond: 0->1->3, 0->2->3. Destination 3 must count once from 0.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex("N");
  b.add_edge(0, 1, "e");
  b.add_edge(0, 2, "e");
  b.add_edge(1, 3, "e");
  b.add_edge(2, 3, "e");
  Database db(std::move(b).build(), 2, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -/:e+/-> (b)"),
            3u + 1u + 1u);  // from 0: {1,2,3}; from 1: {3}; from 2: {3}
}

TEST(Engine, PaperReachabilityExample) {
  // §3.5 example: (a) -> (b) -/:p+/-> (c) over 2->0<-3, 0->1, 1->1 has
  // exactly 2 results.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex("N");
  b.add_edge(2, 0, "q");
  b.add_edge(3, 0, "q");
  b.add_edge(0, 1, "p");
  b.add_edge(1, 1, "p");
  Database db(std::move(b).build(), 3, test_config());
  EXPECT_EQ(
      count(db, "SELECT COUNT(*) FROM MATCH (a) -[:q]-> (b) -/:p+/-> (c)"),
      2u);
}

TEST(Engine, ZeroHopEmitsSourceOnlyWhenDestGateMatches) {
  GraphBuilder b;
  b.add_vertex("X");
  b.add_vertex("Y");
  b.add_edge(0, 1, "e");
  Database db(std::move(b).build(), 2, test_config());
  // 0-hop: (x:X)=dest must be labelled Y => only the 1-hop match counts.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a:X) -/:e*/-> (b:Y)"), 1u);
  // Without the gate both the 0-hop and the 1-hop match.
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a:X) -/:e*/-> (b)"), 2u);
}

TEST(Engine, CrossFilterAscendingChain) {
  Database db(synthetic::make_chain(6), 3, test_config());
  const std::string q =
      "PATH p AS (x) -[:next]-> (y) WHERE x.id < y.id "
      "SELECT COUNT(*) FROM MATCH (a) -/:p+/-> (b) WHERE a.id = 0";
  EXPECT_EQ(count(db, q), 5u);
  const std::string q2 =
      "PATH p AS (x) -[:next]-> (y) WHERE x.id > y.id "
      "SELECT COUNT(*) FROM MATCH (a) -/:p+/-> (b)";
  EXPECT_EQ(count(db, q2), 0u);
}

TEST(Engine, CrossFilterReferencingOuterVar) {
  // Chain ids ascend; restrict iterations to y.id <= a.id + 2.
  Database db(synthetic::make_chain(8), 3, test_config());
  const std::string q =
      "PATH p AS (x) -[:next]-> (y) "
      "SELECT COUNT(*) FROM MATCH (a) -/:p+/-> (b) "
      "WHERE a.id = 0 AND b.id <= a.id + 2";
  EXPECT_EQ(count(db, q), 2u);
}

TEST(Engine, MultiHopMacro) {
  Database db(synthetic::make_chain(9), 3, test_config());
  const std::string q =
      "PATH two AS (x) -[:next]-> (m) -[:next]-> (y) "
      "SELECT COUNT(*) FROM MATCH (a) -/:two+/-> (b) WHERE a.id = 0";
  // Destinations at even distances: 2, 4, 6, 8.
  EXPECT_EQ(count(db, q), 4u);
}

TEST(Engine, BoundDestinationRpq) {
  Database db(synthetic::make_cycle(6), 3, test_config());
  const std::string q =
      "SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b), (a) -/:next{2,4}/-> (b)";
  // b is a's successor; walks of length 2..4 from a reach b only at... a
  // cycle of 6: distance from a to successor going around is 1 or 7; with
  // window [2,4] there is none.
  EXPECT_EQ(count(db, q), 0u);
  const std::string q2 =
      "SELECT COUNT(*) FROM MATCH (a) -[:next]-> (b), (a) -/:next{7}/-> (b)";
  EXPECT_EQ(count(db, q2), 6u);
}

TEST(Engine, ProjectionsReturnRows) {
  Database db(synthetic::make_chain(4), 2, test_config());
  auto result =
      db.query("SELECT a.id, b.id FROM MATCH (a) -[:next]-> (b)");
  EXPECT_EQ(result.rows.size(), 3u);
  ASSERT_EQ(result.columns.size(), 2u);
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& r : result.rows) rows.emplace_back(r[0], r[1]);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows[0], (std::pair<std::string, std::string>{"0", "1"}));
  EXPECT_EQ(rows[2], (std::pair<std::string, std::string>{"2", "3"}));
}

TEST(Engine, ProjectionLabelAndArithmetic) {
  Database db(synthetic::make_chain(3), 1, test_config());
  auto result = db.query(
      "SELECT label(b), b.id * 10 AS tens FROM MATCH (a) -[:next]-> (b) "
      "WHERE a.id = 0");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "Node");
  EXPECT_EQ(result.rows[0][1], "10");
}

TEST(Engine, MachineCountInvariance) {
  const std::string q = "SELECT COUNT(*) FROM MATCH (a) -/:next{1,3}/- (b)";
  std::uint64_t expected = 0;
  for (unsigned machines : {1u, 2u, 3u, 5u, 8u}) {
    Database db(synthetic::make_chain(12), machines, test_config());
    const auto c = count(db, q);
    if (machines == 1) {
      expected = c;
    } else {
      EXPECT_EQ(c, expected) << machines << " machines";
    }
  }
}

TEST(Engine, WorkerCountInvariance) {
  const std::string q = "SELECT COUNT(*) FROM MATCH (a) -/:edge{1,2}/-> (b)";
  std::uint64_t expected = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    EngineConfig cfg = test_config();
    cfg.workers_per_machine = workers;
    Database db(synthetic::make_complete(5), 3, cfg);
    const auto c = count(db, q);
    if (workers == 1) {
      expected = c;
    } else {
      EXPECT_EQ(c, expected) << workers << " workers";
    }
  }
}

TEST(Engine, RepeatedExecutionIsStable) {
  Database db(synthetic::make_complete(5), 4, test_config());
  const std::string q = "SELECT COUNT(*) FROM MATCH (a) -/:edge{1,3}/-> (b)";
  const auto first = count(db, q);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(count(db, q), first);
  }
}

TEST(Engine, IndexDisabledMatchesOnTrees) {
  // On a tree (no alternative paths) disabling the reachability index
  // must not change results — Figure 3's "no index" series.
  EngineConfig cfg = test_config();
  Database with(synthetic::make_tree(3, 3), 3, cfg);
  cfg.use_reachability_index = false;
  Database without(synthetic::make_tree(3, 3), 3, cfg);
  const std::string q =
      "SELECT COUNT(*) FROM MATCH (c) -/:replyOf{1,3}/-> (p)";
  EXPECT_EQ(count(with, q), count(without, q));
  // The no-index run reports zero index entries.
  EXPECT_EQ(without.query(q).stats.rpq[0].index_entries, 0u);
  EXPECT_GT(with.query(q).stats.rpq[0].index_entries, 0u);
}

TEST(Engine, StatsPerDepthMatches) {
  Database db(synthetic::make_chain(5), 2, test_config());
  const auto r =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:next*/-> (b)");
  ASSERT_EQ(r.stats.rpq.size(), 1u);
  const auto& m = r.stats.rpq[0].matches_per_depth;
  // Depth 0: all 5 sources; depth 1: 4 edges; ... depth 4: 1.
  ASSERT_EQ(m.size(), 5u);
  EXPECT_EQ(m[0], 5u);
  EXPECT_EQ(m[1], 4u);
  EXPECT_EQ(m[4], 1u);
  EXPECT_EQ(r.stats.rpq[0].max_depth_observed, 4u);
  ASSERT_TRUE(r.stats.rpq[0].consensus_max_depth.has_value());
  EXPECT_EQ(*r.stats.rpq[0].consensus_max_depth, 4u);
}

TEST(Engine, EliminationAndDuplicationCounters) {
  // Complete graph: heavy revisiting (Table 3's shape).
  Database db(synthetic::make_complete(4), 2, test_config());
  const auto r =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:edge{1,3}/-> (b)");
  EXPECT_EQ(r.count, 16u);
  EXPECT_GT(r.stats.rpq[0].total_eliminated(), 0u);
  EXPECT_EQ(r.stats.rpq[0].index_bytes, r.stats.rpq[0].index_entries * 12);
}

TEST(Engine, NoEmergencyCreditsInHealthyRuns) {
  EngineConfig cfg = test_config();
  cfg.buffers_per_machine = 8;  // tight flow control
  cfg.buffer_bytes = 128;
  Database db(synthetic::make_complete(8), 4, cfg);
  const auto r =
      db.query("SELECT COUNT(*) FROM MATCH (a) -/:edge{1,3}/-> (b)");
  // Every source reaches the 7 others at depth 1 and itself at depth 2.
  EXPECT_EQ(r.count, 8u * 8u);
  EXPECT_EQ(r.stats.flow_emergency, 0u);
}

TEST(Engine, SingleStartScansOnlyOwner) {
  Database db(synthetic::make_chain(20), 4, test_config());
  const auto r = db.query(
      "SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b) WHERE ID(a) = 0");
  EXPECT_EQ(r.count, 19u);
}

TEST(Engine, EmptyResultQueries) {
  Database db(synthetic::make_chain(5), 2, test_config());
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a:Missing)"), 0u);
  EXPECT_EQ(count(db, "SELECT COUNT(*) FROM MATCH (a) -[:nope]-> (b)"), 0u);
  EXPECT_EQ(
      count(db, "SELECT COUNT(*) FROM MATCH (a) WHERE a.id > 100"), 0u);
}

TEST(Engine, ParseAndPlanErrorsPropagate) {
  Database db(synthetic::make_chain(3), 2, test_config());
  EXPECT_THROW(db.query("SELECT FROM"), QueryError);
  EXPECT_THROW(db.query("SELECT COUNT(*) FROM MATCH (a), (b)"),
               UnsupportedError);
}

TEST(Engine, ExplainWithoutExecution) {
  Database db(synthetic::make_chain(3), 2, test_config());
  const auto text =
      db.explain("SELECT COUNT(*) FROM MATCH (a) -/:next+/-> (b)");
  EXPECT_NE(text.find("rpq-control"), std::string::npos);
}

}  // namespace
}  // namespace rpqd
