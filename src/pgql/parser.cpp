#include "pgql/parser.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/error.h"
#include "pgql/lexer.h"

namespace rpqd::pgql {

namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  Query parse_query() {
    Query q;
    while (is_keyword("PATH")) {
      q.path_macros.push_back(parse_path_macro());
    }
    expect_keyword("SELECT");
    parse_select_list(q);
    expect_keyword("FROM");
    expect_keyword("MATCH");
    q.match.push_back(parse_chain());
    while (accept(TokenKind::kComma)) {
      q.match.push_back(parse_chain());
    }
    if (is_keyword("WHERE")) {
      advance();
      q.where = parse_expr();
    }
    if (is_keyword("GROUP")) {
      advance();
      expect_keyword("BY");
      do {
        q.group_by.push_back(parse_expr());
      } while (accept(TokenKind::kComma));
    }
    expect(TokenKind::kEnd);
    fold_count_star(q);
    return q;
  }

  ExprPtr parse_standalone_expr() {
    auto e = parse_expr();
    expect(TokenKind::kEnd);
    return e;
  }

 private:
  // ----------------------------------------------------------- plumbing --
  const Token& peek(std::size_t ahead = 0) const {
    const auto idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }

  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool accept(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  const Token& expect(TokenKind kind) {
    if (peek().kind != kind) {
      fail(std::string("expected '") + to_string(kind) + "', found '" +
           describe(peek()) + "'");
    }
    return tokens_[pos_++];
  }

  bool is_keyword(const char* kw) const {
    return peek().kind == TokenKind::kIdent && upper(peek().text) == kw;
  }

  void expect_keyword(const char* kw) {
    if (!is_keyword(kw)) {
      fail(std::string("expected keyword ") + kw + ", found '" +
           describe(peek()) + "'");
    }
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw QueryError("parse error at offset " +
                     std::to_string(peek().offset) + ": " + what);
  }

  static std::string describe(const Token& t) {
    if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kString) {
      return t.text;
    }
    return to_string(t.kind);
  }

  std::string fresh_anonymous() { return "_anon" + std::to_string(anon_++); }

  // ------------------------------------------------------------ queries --
  PathMacro parse_path_macro() {
    expect_keyword("PATH");
    PathMacro macro;
    macro.name = expect(TokenKind::kIdent).text;
    expect_keyword("AS");
    macro.pattern = parse_chain();
    if (is_keyword("WHERE")) {
      advance();
      macro.where = parse_expr();
    }
    return macro;
  }

  std::optional<AggKind> peek_aggregate() const {
    if (peek().kind != TokenKind::kIdent ||
        peek(1).kind != TokenKind::kLParen) {
      return std::nullopt;
    }
    const std::string word = upper(peek().text);
    if (word == "COUNT") return AggKind::kCount;
    if (word == "SUM") return AggKind::kSum;
    if (word == "MIN") return AggKind::kMin;
    if (word == "MAX") return AggKind::kMax;
    if (word == "AVG") return AggKind::kAvg;
    return std::nullopt;
  }

  void parse_select_list(Query& q) {
    do {
      SelectItem item;
      if (const auto agg = peek_aggregate()) {
        item.agg = *agg;
        advance();  // function name
        advance();  // '('
        if (item.agg == AggKind::kCount && accept(TokenKind::kStar)) {
          // COUNT(*): no operand.
        } else {
          item.expr = parse_expr();
        }
        expect(TokenKind::kRParen);
      } else {
        item.expr = parse_expr();
      }
      if (is_keyword("AS")) {
        advance();
        item.alias = expect(TokenKind::kIdent).text;
      } else if (item.expr != nullptr) {
        item.alias = to_text(*item.expr);
      } else {
        item.alias = "count";
      }
      q.select.push_back(std::move(item));
    } while (accept(TokenKind::kComma));
  }

  // A bare COUNT(*) without GROUP BY compiles to the count_star fast
  // path; with GROUP BY it must stay an aggregate so the grouping is
  // validated. Called after the whole query is parsed.
  static void fold_count_star(Query& q) {
    if (q.group_by.empty() && q.select.size() == 1 &&
        q.select[0].agg == AggKind::kCount && q.select[0].expr == nullptr) {
      q.count_star = true;
      q.select.clear();
    }
  }

  // ----------------------------------------------------------- patterns --
  PatternChain parse_chain() {
    PatternChain chain;
    chain.src = parse_vertex();
    while (peek().kind == TokenKind::kMinus ||
           (peek().kind == TokenKind::kLt &&
            peek(1).kind == TokenKind::kMinus)) {
      PatternHop hop;
      hop.edge = parse_edge();
      hop.dst = parse_vertex();
      chain.hops.push_back(std::move(hop));
    }
    return chain;
  }

  VertexPattern parse_vertex() {
    expect(TokenKind::kLParen);
    VertexPattern v;
    if (peek().kind == TokenKind::kIdent) {
      v.var = advance().text;
    }
    if (accept(TokenKind::kColon)) {
      v.labels.push_back(expect(TokenKind::kIdent).text);
      while (accept(TokenKind::kPipe)) {
        v.labels.push_back(expect(TokenKind::kIdent).text);
      }
    }
    if (v.var.empty()) v.var = fresh_anonymous();
    expect(TokenKind::kRParen);
    return v;
  }

  // Parses the `[e:Label|Label2]` bracket body (both parts optional).
  void parse_bracket_body(EdgePattern& e) {
    if (peek().kind == TokenKind::kIdent) {
      // Edge variable: referencing it in WHERE binds to the traversed
      // edge's properties.
      e.var = advance().text;
    }
    if (accept(TokenKind::kColon)) {
      e.labels.push_back(expect(TokenKind::kIdent).text);
      while (accept(TokenKind::kPipe)) {
        e.labels.push_back(expect(TokenKind::kIdent).text);
      }
    }
  }

  // Parses `:name|name2 quant?` between the slashes of an RPQ segment.
  void parse_rpq_body(EdgePattern& e) {
    e.is_rpq = true;
    expect(TokenKind::kColon);
    std::vector<std::string> names;
    names.push_back(expect(TokenKind::kIdent).text);
    while (accept(TokenKind::kPipe)) {
      names.push_back(expect(TokenKind::kIdent).text);
    }
    if (names.size() == 1) {
      e.path_name = names[0];  // macro or label; resolved at planning
    } else {
      e.labels = std::move(names);  // label alternation
    }
    e.quantifier = parse_quantifier();
  }

  Quantifier parse_quantifier() {
    Quantifier q;
    if (accept(TokenKind::kStar)) {
      q.min = 0;
      q.max = kUnboundedDepth;
      if (peek().kind == TokenKind::kLBrace) {
        // PGQL also allows *{n,m}: the braces refine the star.
        q = parse_brace_quantifier();
      }
      return q;
    }
    if (accept(TokenKind::kPlus)) {
      q.min = 1;
      q.max = kUnboundedDepth;
      return q;
    }
    if (accept(TokenKind::kQuestion)) {
      q.min = 0;
      q.max = 1;
      return q;
    }
    if (peek().kind == TokenKind::kLBrace) {
      return parse_brace_quantifier();
    }
    // No quantifier: exactly one repetition.
    return q;
  }

  Quantifier parse_brace_quantifier() {
    expect(TokenKind::kLBrace);
    Quantifier q;
    q.min = static_cast<Depth>(expect(TokenKind::kInt).int_value);
    if (accept(TokenKind::kComma)) {
      if (peek().kind == TokenKind::kInt) {
        q.max = static_cast<Depth>(advance().int_value);
      } else {
        q.max = kUnboundedDepth;
      }
    } else {
      q.max = q.min;
    }
    if (q.max != kUnboundedDepth && q.max < q.min) {
      fail("quantifier max is below min");
    }
    expect(TokenKind::kRBrace);
    return q;
  }

  EdgePattern parse_edge() {
    EdgePattern e;
    if (peek().kind == TokenKind::kLt) {
      // `<-` prefix: incoming edge.
      advance();
      expect(TokenKind::kMinus);
      e.dir = Direction::kIn;
      if (accept(TokenKind::kSlash)) {
        parse_rpq_body(e);
        expect(TokenKind::kSlash);
        expect(TokenKind::kMinus);
      } else if (accept(TokenKind::kLBracket)) {
        parse_bracket_body(e);
        expect(TokenKind::kRBracket);
        expect(TokenKind::kMinus);
      }
      // else: plain `<-`, vertex follows.
      return e;
    }
    expect(TokenKind::kMinus);
    if (accept(TokenKind::kGt)) {
      e.dir = Direction::kOut;  // plain `->`
      return e;
    }
    if (accept(TokenKind::kSlash)) {
      parse_rpq_body(e);
      expect(TokenKind::kSlash);
      expect(TokenKind::kMinus);
      e.dir = accept(TokenKind::kGt) ? Direction::kOut : Direction::kBoth;
      return e;
    }
    if (accept(TokenKind::kLBracket)) {
      parse_bracket_body(e);
      expect(TokenKind::kRBracket);
      expect(TokenKind::kMinus);
      e.dir = accept(TokenKind::kGt) ? Direction::kOut : Direction::kBoth;
      return e;
    }
    e.dir = Direction::kBoth;  // plain `-`
    return e;
  }

  // -------------------------------------------------------- expressions --
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto lhs = parse_and();
    while (is_keyword("OR")) {
      advance();
      lhs = make_binary(BinOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    auto lhs = parse_not();
    while (is_keyword("AND")) {
      advance();
      lhs = make_binary(BinOp::kAnd, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (is_keyword("NOT")) {
      advance();
      return make_unary(UnOp::kNot, parse_not());
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    auto lhs = parse_additive();
    const auto op = [&]() -> std::optional<BinOp> {
      switch (peek().kind) {
        case TokenKind::kEq: return BinOp::kEq;
        case TokenKind::kNe: return BinOp::kNe;
        case TokenKind::kLt: return BinOp::kLt;
        case TokenKind::kLe: return BinOp::kLe;
        case TokenKind::kGt: return BinOp::kGt;
        case TokenKind::kGe: return BinOp::kGe;
        default: return std::nullopt;
      }
    }();
    if (!op) return lhs;
    advance();
    return make_binary(*op, std::move(lhs), parse_additive());
  }

  ExprPtr parse_additive() {
    auto lhs = parse_multiplicative();
    while (true) {
      if (accept(TokenKind::kPlus)) {
        lhs = make_binary(BinOp::kAdd, std::move(lhs), parse_multiplicative());
      } else if (accept(TokenKind::kMinus)) {
        lhs = make_binary(BinOp::kSub, std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    auto lhs = parse_unary();
    while (true) {
      if (accept(TokenKind::kStar)) {
        lhs = make_binary(BinOp::kMul, std::move(lhs), parse_unary());
      } else if (accept(TokenKind::kSlash)) {
        lhs = make_binary(BinOp::kDiv, std::move(lhs), parse_unary());
      } else if (accept(TokenKind::kPercent)) {
        lhs = make_binary(BinOp::kMod, std::move(lhs), parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    if (accept(TokenKind::kMinus)) {
      return make_unary(UnOp::kNeg, parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        advance();
        return make_int(t.int_value);
      }
      case TokenKind::kDouble: {
        advance();
        return make_double(t.double_value);
      }
      case TokenKind::kString: {
        advance();
        return make_string(t.text);
      }
      case TokenKind::kLParen: {
        advance();
        auto e = parse_expr();
        expect(TokenKind::kRParen);
        return e;
      }
      case TokenKind::kIdent: {
        const std::string word = upper(t.text);
        if (word == "TRUE") {
          advance();
          return make_bool(true);
        }
        if (word == "FALSE") {
          advance();
          return make_bool(false);
        }
        if ((word == "ID" || word == "LABEL") &&
            peek(1).kind == TokenKind::kLParen) {
          advance();
          advance();
          std::string var = expect(TokenKind::kIdent).text;
          expect(TokenKind::kRParen);
          return word == "ID" ? make_id_func(std::move(var))
                              : make_label_func(std::move(var));
        }
        if (peek(1).kind == TokenKind::kDot) {
          std::string var = advance().text;
          advance();  // '.'
          std::string prop = expect(TokenKind::kIdent).text;
          return make_prop_ref(std::move(var), std::move(prop));
        }
        fail("bare variable reference '" + t.text +
             "' is not supported; use var.property or id(var)");
      }
      default:
        fail(std::string("unexpected token '") + describe(t) +
             "' in expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  unsigned anon_ = 0;
};

}  // namespace

Query parse(std::string_view text) { return Parser(text).parse_query(); }

ExprPtr parse_expression(std::string_view text) {
  return Parser(text).parse_standalone_expr();
}

}  // namespace rpqd::pgql
