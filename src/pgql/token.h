// Token model for the PGQL-subset lexer.
#pragma once

#include <cstdint>
#include <string>

namespace rpqd::pgql {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdent,      // bare identifier (keywords are classified by the parser)
  kInt,        // integer literal
  kDouble,     // floating literal
  kString,     // 'single quoted'
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kLBrace,     // {
  kRBrace,     // }
  kComma,      // ,
  kDot,        // .
  kColon,      // :
  kPipe,       // |
  kStar,       // *
  kPlus,       // +
  kQuestion,   // ?
  kSlash,      // /
  kMinus,      // -
  kPercent,    // %
  kEq,         // =
  kNe,         // <> or !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier or string payload
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;  // byte offset in the query, for error messages
};

const char* to_string(TokenKind kind);

}  // namespace rpqd::pgql
