// Abstract syntax tree for the PGQL subset (see README for the grammar).
//
// The subset mirrors what the paper's engine evaluates: SELECT with
// projections or COUNT(*), MATCH over one or more (possibly non-linear)
// pattern chains, fixed edges and RPQ segments with quantifiers, PATH
// macros with per-iteration WHERE filters, and a query-level WHERE that
// may cross-filter into path variables (§1, §2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rpqd::pgql {

// ---------------------------------------------------------------- exprs --

enum class BinOp : std::uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

enum class ExprKind : std::uint8_t {
  kIntLit,
  kDoubleLit,
  kStringLit,
  kBoolLit,
  kPropRef,   // var.prop
  kIdFunc,    // id(var)
  kLabelFunc, // label(var) — evaluates to the vertex label name
  kUnary,
  kBinary,
};

struct Expr {
  ExprKind kind{};
  std::int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string text;  // string literal, or variable name for refs
  std::string prop;  // property name for kPropRef
  BinOp bin_op{};
  UnOp un_op{};
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_int(std::int64_t v);
ExprPtr make_double(double v);
ExprPtr make_string(std::string v);
ExprPtr make_bool(bool v);
ExprPtr make_prop_ref(std::string var, std::string prop);
ExprPtr make_id_func(std::string var);
ExprPtr make_label_func(std::string var);
ExprPtr make_unary(UnOp op, ExprPtr operand);
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);

/// Deep copy (used when a filter is duplicated into several plan stages).
ExprPtr clone(const Expr& e);

/// Collects the distinct variable names referenced by an expression.
void collect_vars(const Expr& e, std::vector<std::string>& out);

/// Renders the expression back to (normalized) PGQL text, for debugging
/// and EXPLAIN output.
std::string to_text(const Expr& e);

// ------------------------------------------------------------- patterns --

/// Quantifier of an RPQ segment; max == kUnboundedDepth means unbounded.
struct Quantifier {
  Depth min = 1;
  Depth max = 1;
};

struct VertexPattern {
  std::string var;                  // empty = anonymous
  std::vector<std::string> labels;  // alternation; empty = any label
};

struct EdgePattern {
  Direction dir = Direction::kOut;
  std::string var;                  // optional edge variable, `-[e:..]->`
  std::vector<std::string> labels;  // alternation; empty = any label
  bool is_rpq = false;
  /// For RPQ segments: either a PATH macro name or a plain edge label.
  std::string path_name;
  Quantifier quantifier;
};

struct PatternHop {
  EdgePattern edge;
  VertexPattern dst;
};

/// One linear chain `(v0) -e1- (v1) -e2- (v2) ...`. Non-linear patterns
/// are expressed as multiple chains sharing variable names.
struct PatternChain {
  VertexPattern src;
  std::vector<PatternHop> hops;
};

/// `PATH name AS (a)-[...]-(b) WHERE expr` macro declaration.
struct PathMacro {
  std::string name;
  PatternChain pattern;
  ExprPtr where;  // per-iteration filter; may reference outer variables
};

/// Aggregate function applied to a SELECT item.
enum class AggKind : std::uint8_t { kNone, kCount, kSum, kMin, kMax, kAvg };

struct SelectItem {
  ExprPtr expr;  // null for COUNT(*)
  std::string alias;
  AggKind agg = AggKind::kNone;
};

struct Query {
  std::vector<PathMacro> path_macros;
  bool count_star = false;
  std::vector<SelectItem> select;
  std::vector<PatternChain> match;
  ExprPtr where;
  /// Explicit GROUP BY keys; when absent but aggregates are present, the
  /// non-aggregate SELECT items group implicitly (SQL-style).
  std::vector<ExprPtr> group_by;
};

}  // namespace rpqd::pgql
