// Canonical normalization of PGQL text for result-cache keying.
//
// `SELECT COUNT(*) FROM ...`, `select   count(*) from ...`, and
// `PROFILE SELECT COUNT(*) FROM ...` are the same query; keying a result
// cache on the raw string would miss the repeats real traffic produces.
// Normalization re-renders the token stream with canonical single
// spacing, folds KEYWORDS to uppercase (identifier case is preserved —
// labels/properties are case-sensitive catalog names, and folding them
// would alias distinct queries), keeps string literals verbatim, and
// strips the leading `PROFILE` token into a flag (a profiled and an
// unprofiled run of the same text must never share a result object, but
// they do share the same normalized text — and therefore the same
// reachability-cache entries, whose key is plan-derived).
#pragma once

#include <string>
#include <string_view>

namespace rpqd::pgql {

struct NormalizedQuery {
  std::string text;      // canonical rendering (PROFILE prefix removed)
  bool profile = false;  // a leading PROFILE token was present
};

/// Never throws: text that fails to lex normalizes to its trimmed raw
/// form (the engine will reject it identically on every ask, so keying
/// on it is still sound).
NormalizedQuery normalize_query(std::string_view pgql);

}  // namespace rpqd::pgql
