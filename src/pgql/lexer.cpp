#include "pgql/lexer.h"

#include <cctype>
#include <charconv>

#include "common/error.h"

namespace rpqd::pgql {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "double";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kColon: return ":";
    case TokenKind::kPipe: return "|";
    case TokenKind::kStar: return "*";
    case TokenKind::kPlus: return "+";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kSlash: return "/";
    case TokenKind::kMinus: return "-";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw QueryError("lex error at offset " + std::to_string(offset) + ": " +
                   what);
}

}  // namespace

std::vector<Token> tokenize(std::string_view query) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = query.size();

  const auto push = [&](TokenKind kind, std::size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(query[j])) != 0 ||
                       query[j] == '_')) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(query.substr(i, j - i));
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(query[j])) != 0) {
        ++j;
      }
      if (j + 1 < n && query[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(query[j + 1])) != 0) {
        is_double = true;
        ++j;
        while (j < n &&
               std::isdigit(static_cast<unsigned char>(query[j])) != 0) {
          ++j;
        }
      }
      Token t;
      t.offset = start;
      const auto text = query.substr(i, j - i);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::stod(std::string(text));
      } else {
        t.kind = TokenKind::kInt;
        const auto result = std::from_chars(text.data(), text.data() + text.size(),
                                            t.int_value);
        if (result.ec != std::errc{}) fail(start, "integer literal overflow");
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string value;
      while (j < n && query[j] != '\'') {
        value.push_back(query[j]);
        ++j;
      }
      if (j >= n) fail(start, "unterminated string literal");
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case '[': push(TokenKind::kLBracket, start); ++i; break;
      case ']': push(TokenKind::kRBracket, start); ++i; break;
      case '{': push(TokenKind::kLBrace, start); ++i; break;
      case '}': push(TokenKind::kRBrace, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '.': push(TokenKind::kDot, start); ++i; break;
      case ':': push(TokenKind::kColon, start); ++i; break;
      case '|': push(TokenKind::kPipe, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '?': push(TokenKind::kQuestion, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '=': push(TokenKind::kEq, start); ++i; break;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          fail(start, "unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        fail(start, std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace rpqd::pgql
