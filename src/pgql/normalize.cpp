#include "pgql/normalize.h"

#include <array>
#include <cctype>
#include <cstdio>

#include "common/error.h"
#include "pgql/lexer.h"

namespace rpqd::pgql {
namespace {

constexpr std::array<std::string_view, 21> kKeywords = {
    "AND",  "AS",    "AVG",   "BY",  "COUNT",  "FALSE", "FROM",
    "GROUP", "ID",   "LABEL", "MATCH", "MAX",  "MIN",   "NOT",
    "OR",   "PATH",  "PROFILE", "SELECT", "SUM", "TRUE", "WHERE"};

std::string upper(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

bool is_keyword(const std::string& upper_ident) {
  for (const std::string_view kw : kKeywords) {
    if (upper_ident == kw) return true;
  }
  return false;
}

std::string render(const Token& t, TokenKind prev) {
  switch (t.kind) {
    case TokenKind::kIdent: {
      // Fold keywords only, and never after `.` or `:` — those positions
      // hold case-sensitive property/label names.
      if (prev != TokenKind::kDot && prev != TokenKind::kColon) {
        std::string up = upper(t.text);
        if (is_keyword(up)) return up;
      }
      return t.text;
    }
    case TokenKind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(t.int_value));
      return buf;
    }
    case TokenKind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", t.double_value);
      return buf;
    }
    case TokenKind::kString:
      return "'" + t.text + "'";  // the lexer has no escapes: verbatim
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kColon: return ":";
    case TokenKind::kPipe: return "|";
    case TokenKind::kStar: return "*";
    case TokenKind::kPlus: return "+";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kSlash: return "/";
    case TokenKind::kMinus: return "-";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kEnd: return "";
  }
  return "";
}

std::string trimmed(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return std::string(text);
}

}  // namespace

NormalizedQuery normalize_query(std::string_view pgql) {
  NormalizedQuery out;
  std::vector<Token> tokens;
  try {
    tokens = tokenize(pgql);
  } catch (const QueryError&) {
    out.text = trimmed(pgql);
    return out;
  }
  std::size_t begin = 0;
  if (!tokens.empty() && tokens[0].kind == TokenKind::kIdent &&
      upper(tokens[0].text) == "PROFILE") {
    out.profile = true;
    begin = 1;
  }
  TokenKind prev = TokenKind::kEnd;
  for (std::size_t i = begin; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kEnd) break;
    if (!out.text.empty()) out.text += ' ';
    out.text += render(t, prev);
    prev = t.kind;
  }
  return out;
}

}  // namespace rpqd::pgql
