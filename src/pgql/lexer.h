// Hand-written lexer for the PGQL subset.
//
// Arrows (`->`, `<-`) are deliberately NOT fused into composite tokens:
// the parser assembles them from kMinus/kGt/kLt in pattern context, which
// keeps expressions like `a.x < -5` unambiguous.
#pragma once

#include <string_view>
#include <vector>

#include "pgql/token.h"

namespace rpqd::pgql {

/// Tokenizes the whole query text. Throws QueryError on invalid input.
std::vector<Token> tokenize(std::string_view query);

}  // namespace rpqd::pgql
