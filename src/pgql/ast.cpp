#include "pgql/ast.h"

#include <algorithm>
#include <sstream>

namespace rpqd::pgql {

ExprPtr make_int(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = v;
  return e;
}

ExprPtr make_double(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kDoubleLit;
  e->double_value = v;
  return e;
}

ExprPtr make_string(std::string v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLit;
  e->text = std::move(v);
  return e;
}

ExprPtr make_bool(bool v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBoolLit;
  e->bool_value = v;
  return e;
}

ExprPtr make_prop_ref(std::string var, std::string prop) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPropRef;
  e->text = std::move(var);
  e->prop = std::move(prop);
  return e;
}

ExprPtr make_id_func(std::string var) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdFunc;
  e->text = std::move(var);
  return e;
}

ExprPtr make_label_func(std::string var) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLabelFunc;
  e->text = std::move(var);
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr clone(const Expr& e) {
  auto copy = std::make_unique<Expr>();
  copy->kind = e.kind;
  copy->int_value = e.int_value;
  copy->double_value = e.double_value;
  copy->bool_value = e.bool_value;
  copy->text = e.text;
  copy->prop = e.prop;
  copy->bin_op = e.bin_op;
  copy->un_op = e.un_op;
  if (e.lhs) copy->lhs = clone(*e.lhs);
  if (e.rhs) copy->rhs = clone(*e.rhs);
  return copy;
}

void collect_vars(const Expr& e, std::vector<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kPropRef:
    case ExprKind::kIdFunc:
    case ExprKind::kLabelFunc:
      if (std::find(out.begin(), out.end(), e.text) == out.end()) {
        out.push_back(e.text);
      }
      break;
    default:
      break;
  }
  if (e.lhs) collect_vars(*e.lhs, out);
  if (e.rhs) collect_vars(*e.rhs, out);
}

namespace {

const char* bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

}  // namespace

std::string to_text(const Expr& e) {
  std::ostringstream out;
  switch (e.kind) {
    case ExprKind::kIntLit: out << e.int_value; break;
    case ExprKind::kDoubleLit: out << e.double_value; break;
    case ExprKind::kStringLit: out << '\'' << e.text << '\''; break;
    case ExprKind::kBoolLit: out << (e.bool_value ? "true" : "false"); break;
    case ExprKind::kPropRef: out << e.text << '.' << e.prop; break;
    case ExprKind::kIdFunc: out << "id(" << e.text << ')'; break;
    case ExprKind::kLabelFunc: out << "label(" << e.text << ')'; break;
    case ExprKind::kUnary:
      out << (e.un_op == UnOp::kNeg ? "-" : "NOT ") << '(' << to_text(*e.lhs)
          << ')';
      break;
    case ExprKind::kBinary:
      out << '(' << to_text(*e.lhs) << ' ' << bin_op_text(e.bin_op) << ' '
          << to_text(*e.rhs) << ')';
      break;
  }
  return out.str();
}

}  // namespace rpqd::pgql
