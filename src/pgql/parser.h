// Recursive-descent parser for the PGQL subset.
#pragma once

#include <string_view>

#include "pgql/ast.h"

namespace rpqd::pgql {

/// Parses a query text into an AST. Throws QueryError on malformed input
/// or on constructs outside the supported subset.
Query parse(std::string_view text);

/// Parses a standalone expression (used by tests).
ExprPtr parse_expression(std::string_view text);

}  // namespace rpqd::pgql
