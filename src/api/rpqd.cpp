#include "api/rpqd.h"

namespace rpqd {

Database::Database(Graph graph, unsigned num_machines, EngineConfig config) {
  auto shared = std::make_shared<const Graph>(std::move(graph));
  partitioned_ = std::make_shared<const PartitionedGraph>(std::move(shared),
                                                          num_machines);
  engine_ = std::make_unique<DistributedEngine>(partitioned_, config);
}

QueryResult Database::query(std::string_view pgql) {
  return engine_->execute(pgql);
}

std::string Database::explain(std::string_view pgql) const {
  return engine_->explain(pgql);
}

void Database::set_fault_schedule(std::string_view name, std::uint64_t seed) {
  engine_->mutable_config().fault_plan = FaultPlan::named(name, seed);
}

}  // namespace rpqd
