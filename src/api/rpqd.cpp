#include "api/rpqd.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault.h"
#include "pgql/normalize.h"
#include "rpq/cache_key.h"

namespace rpqd {

Database::Database(Graph graph, unsigned num_machines, EngineConfig config) {
  auto shared = std::make_shared<const Graph>(std::move(graph));
  partitioned_ = std::make_shared<const PartitionedGraph>(std::move(shared),
                                                          num_machines);
  engine_ = std::make_unique<DistributedEngine>(partitioned_, config);
  store_ = std::make_unique<GraphStore>(partitioned_);
}

QueryResult Database::query(std::string_view pgql) {
  ResultCache* cache = result_cache();
  if (cache == nullptr) return engine_->execute(pgql);

  // Single-flight result cache, leader-inline on the blocking path: the
  // first asker executes; concurrent identical asks block on its flight.
  // Compile first (parse errors never touch the cache), then pin the
  // snapshot, then probe with the pinned epoch — the probe order is the
  // coherence handshake: acquire() aborts loudly if the pin is newer
  // than the cache's last invalidation (a mutation that skipped it).
  bool profile_prefix = false;
  const std::shared_ptr<const ExecPlan> plan =
      engine_->compile(pgql, &profile_prefix);
  const pgql::NormalizedQuery norm = pgql::normalize_query(pgql);
  const bool profile =
      profile_prefix || norm.profile || engine_->config_snapshot().profile;
  std::shared_ptr<const GraphSnapshot> snap = engine_->current_snapshot();
  ResultCache::Lookup look = cache->acquire(norm.text, profile, snap->epoch());
  if (look.role == ResultCache::Role::kBypass) {
    // An update published between the pin and the probe; re-pin once.
    snap = engine_->current_snapshot();
    look = cache->acquire(norm.text, profile, snap->epoch());
  }
  if (look.role == ResultCache::Role::kHit) {
    look.result.stats.result_cache_hit = true;
    return std::move(look.result);
  }
  if (look.role == ResultCache::Role::kFollower) {
    QueryResult result = ResultCache::await(look.flight);
    result.stats.result_cache_coalesced = true;
    return result;
  }
  EngineConfig cfg = engine_->config_snapshot();
  if (profile_prefix) cfg.profile = true;
  if (look.role == ResultCache::Role::kBypass) {
    // Still racing updates after the retry: run uncached on the pin.
    QueryResult result = engine_->execute_plan(*plan, cfg, nullptr, snap);
    result.stats.result_cache_bypassed = true;
    return result;
  }
  try {
    QueryResult result = engine_->execute_plan(*plan, cfg, nullptr, snap);
    cache->complete(look.flight, norm.text, profile, result,
                    result_cache_scope(*plan));
    return result;
  } catch (...) {
    // Followers of a throwing leader rethrow the same error.
    cache->complete_error(look.flight, norm.text, profile,
                          std::current_exception());
    throw;
  }
}

ResultCache* Database::result_cache() {
  const EngineConfig cfg = engine_->config_snapshot();
  if (cfg.result_cache_max_bytes == 0) return nullptr;
  std::lock_guard lock(scheduler_mutex_);
  if (result_cache_ == nullptr) {
    // Born coherent: the cache starts at the store's current epoch, so a
    // database that saw updates before its first cached query never
    // trips the probe-from-the-future check.
    result_cache_ = std::make_unique<ResultCache>(
        cfg.result_cache_max_bytes, cfg.result_cache_admit_max_bytes,
        store_->epoch());
  } else {
    // The knobs may have moved between queries; re-apply (evicts eagerly).
    result_cache_->set_budget(cfg.result_cache_max_bytes,
                              cfg.result_cache_admit_max_bytes);
  }
  return result_cache_.get();
}

UpdateResult Database::apply_update(const UpdateBatch& batch) {
  std::lock_guard ulock(update_mutex_);
  UpdateResult receipt = store_->apply(batch);
  // Coherence ordering (DESIGN.md §12) — caches first, snapshot last.
  // Between the notifications and install_snapshot, new queries still
  // pin the OLD snapshot: their probes carry the old epoch and at worst
  // take the kBypass path. The reverse order would let a query pin the
  // new epoch before the caches heard of it — exactly the
  // mutation-without-invalidation hole acquire() aborts on.
  engine_->bump_reach_cache_epochs(receipt.dirty.partitions);
  {
    std::lock_guard lock(scheduler_mutex_);
    if (result_cache_ != nullptr) {
      result_cache_->on_graph_update(receipt.epoch, receipt.dirty);
    }
  }
  engine_->install_snapshot(store_->snapshot());
  const EngineConfig cfg = engine_->config_snapshot();
  if (cfg.delta_merge_entries > 0 &&
      store_->stats().delta_entries >= cfg.delta_merge_entries) {
    merge_locked();
  }
  return receipt;
}

bool Database::merge_deltas() {
  std::lock_guard ulock(update_mutex_);
  return merge_locked();
}

bool Database::merge_locked() {
  if (!store_->merge()) return false;
  // The rebuild remaps local vertex ids (dead vertices drop out of the
  // partitions), so reachability facts — keyed per machine by local
  // structure — must flush everywhere. The result cache is untouched: a
  // merge changes representation, never visible data, and keeps the
  // epoch.
  engine_->bump_reach_cache_epoch();
  engine_->install_snapshot(store_->snapshot());
  return true;
}

void Database::set_hot_vertices(std::vector<VertexId> hot) {
  std::lock_guard ulock(update_mutex_);
  store_->set_hot_set(std::move(hot));
  // Mirrors are additive metadata on the same epoch: no local id moved,
  // so the caches stay coherent — publish and done.
  engine_->install_snapshot(store_->snapshot());
}

std::vector<VertexId> Database::hot_vertices() const {
  return store_->hot_set();
}

void Database::repartition(std::vector<MachineId> assignment) {
  std::lock_guard ulock(update_mutex_);
  store_->repartition(std::move(assignment));
  // Same contract as merge_locked(): the rebuild remaps local vertex
  // ids, so machine-local reachability facts flush everywhere; the
  // result cache survives (placement changes no visible data and the
  // epoch is kept).
  engine_->bump_reach_cache_epoch();
  engine_->install_snapshot(store_->snapshot());
}

std::uint64_t Database::graph_epoch() const { return store_->epoch(); }

GraphStoreStats Database::update_stats() const { return store_->stats(); }

std::shared_ptr<const Graph> Database::materialize_snapshot(
    std::uint64_t epoch) const {
  return store_->materialize(epoch);
}

void Database::invalidate_caches() {
  engine_->bump_reach_cache_epoch();
  std::lock_guard lock(scheduler_mutex_);
  if (result_cache_ != nullptr) result_cache_->invalidate();
}

ResultCacheStats Database::result_cache_stats() const {
  std::lock_guard lock(scheduler_mutex_);
  return result_cache_ != nullptr ? result_cache_->stats()
                                  : ResultCacheStats{};
}

std::string Database::explain(std::string_view pgql) const {
  return engine_->explain(pgql);
}

void Database::set_fault_schedule(std::string_view name, std::uint64_t seed) {
  // Config-lock protected: legal while scheduled queries are in flight
  // (the new schedule applies to runs dispatched afterwards).
  engine_->set_fault_plan(FaultPlan::named(name, seed));
  engine_->reset_fault_run_index();
}

QueryScheduler& Database::scheduler() {
  // Resolve the cache first: result_cache() takes scheduler_mutex_ too.
  ResultCache* cache = result_cache();
  std::lock_guard lock(scheduler_mutex_);
  if (scheduler_ == nullptr) {
    scheduler_ = std::make_unique<QueryScheduler>(engine_.get(),
                                                  SchedulerConfig{}, cache);
  }
  return *scheduler_;
}

QueryTicket Database::submit(std::string_view pgql) {
  return scheduler().submit(pgql);
}

void Database::configure_scheduler(const SchedulerConfig& config) {
  ResultCache* cache = result_cache();
  std::lock_guard lock(scheduler_mutex_);
  scheduler_.reset();  // drains/cancels the previous serving generation
  scheduler_ = std::make_unique<QueryScheduler>(engine_.get(), config, cache);
}

SchedulerStats Database::scheduler_stats() const {
  std::lock_guard lock(scheduler_mutex_);
  return scheduler_ != nullptr ? scheduler_->stats() : SchedulerStats{};
}

unsigned Database::cancel_all() {
  unsigned cancelled = 0;
  {
    std::lock_guard lock(scheduler_mutex_);
    if (scheduler_ != nullptr) {
      cancelled += scheduler_->cancel_all_queued(AbortReason::kUserCancel);
    }
  }
  return cancelled + engine_->cancel_all();
}

QueryResult Database::run_with_retry(std::string_view pgql,
                                     const RetryPolicy& policy) {
  const unsigned attempts = std::max(1u, policy.max_attempts);
  for (unsigned attempt = 0;; ++attempt) {
    QueryResult result = engine_->execute(pgql);
    result.stats.retries = attempt;
    if (!result.aborted || !abort_reason_retryable(result.abort_reason) ||
        attempt + 1 >= attempts) {
      return result;
    }
    // Bounded exponential backoff with deterministic jitter (seeded, so
    // the fuzz harness replays identically).
    double wait_ms = policy.backoff_base_ms;
    for (unsigned i = 0; i < attempt && wait_ms < policy.backoff_max_ms; ++i) {
      wait_ms *= 2.0;
    }
    wait_ms = std::min(wait_ms, policy.backoff_max_ms);
    const std::uint64_t h = fault_hash(policy.jitter_seed, attempt, 11);
    wait_ms += wait_ms * 0.5 * (static_cast<double>(h % 1024) / 1024.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wait_ms));
  }
}

}  // namespace rpqd
