// Reachability-graph materialization — the §5 extension: "when provided
// with a generated reachability graph, RPQd can run a fast RPQ pattern
// matching without compromising performance and memory consumption".
//
// materialize_reachability() evaluates a pair-producing query (typically
// the RPQ whose repeated evaluation you want to amortize) and returns a
// copy of the database's graph extended with one new edge per result
// pair. Subsequent queries replace the expensive variable-length segment
// with a cheap fixed edge over the new label:
//
//   Graph g2 = materialize_reachability(
//       db, "SELECT id(a), id(b) FROM MATCH (a:Person) -/:knows{2,3}/- "
//           "(b:Person)", "knows2to3");
//   rpqd::Database db2(std::move(g2), 4);
//   db2.query("SELECT COUNT(*) FROM MATCH (a) -[:knows2to3]-> (b) "
//             "WHERE a.id = 7");
#pragma once

#include <string_view>

#include "api/rpqd.h"

namespace rpqd {

/// Deep-copies a graph through the public interface (vertices, labels,
/// vertex/edge properties, edges). Useful for augmenting an immutable
/// graph.
GraphBuilder rebuild_graph(const Graph& graph);

/// Runs `pairs_query`, which must project exactly two vertex ids
/// (`SELECT id(a), id(b) FROM MATCH ...`), and returns the database's
/// graph extended with one `new_edge_label` edge per result pair.
/// Throws QueryError if the projection does not produce vertex pairs.
Graph materialize_reachability(Database& db, std::string_view pairs_query,
                               std::string_view new_edge_label);

}  // namespace rpqd
