// Public entry point of the RPQd library.
//
//   #include "api/rpqd.h"
//
//   rpqd::GraphBuilder builder;
//   ... add vertices/edges ...
//   rpqd::Database db(std::move(builder).build(), /*num_machines=*/4);
//   auto result = db.query(
//       "SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,3}/- (b:Person)");
//
// A Database owns an immutable property graph, hash-partitioned across a
// simulated cluster of `num_machines` machines, and executes PGQL-subset
// queries with the distributed asynchronous RPQ runtime described in the
// paper (see README.md for the supported grammar).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/config.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/engine.h"

namespace rpqd {

class Database {
 public:
  /// Partitions `graph` across `num_machines` simulated machines.
  explicit Database(Graph graph, unsigned num_machines = 4,
                    EngineConfig config = {});

  /// Parses, plans, and executes a PGQL query. A case-insensitive
  /// `PROFILE ` prefix enables the per-query tracing layer for that query
  /// only: the result's `profile` tree carries per-(stage, machine,
  /// depth) accounting (see runtime/profile.h).
  QueryResult query(std::string_view pgql);

  /// Parses and plans once; the returned PreparedQuery executes
  /// repeatedly without recompilation (valid while this Database lives).
  PreparedQuery prepare(std::string_view pgql) {
    return engine_->prepare(pgql);
  }

  /// Returns the EXPLAIN rendering of the plan without executing.
  std::string explain(std::string_view pgql) const;

  const Graph& graph() const { return partitioned_->global(); }
  const PartitionedGraph& partitioned() const { return *partitioned_; }
  unsigned num_machines() const { return partitioned_->num_machines(); }

  /// Engine configuration (mutable: flow-control sizes, index toggle...).
  EngineConfig& config() { return engine_->mutable_config(); }
  const EngineConfig& config() const { return engine_->config(); }

  /// Runs every subsequent query under the named fault schedule (see
  /// FaultPlan::schedule_names(); "none" disarms). The schedule plus the
  /// seed fully determine the fault decisions — the replay key printed
  /// by the differential harness. Throws QueryError on an unknown name.
  void set_fault_schedule(std::string_view name, std::uint64_t seed);

 private:
  std::shared_ptr<const PartitionedGraph> partitioned_;
  std::unique_ptr<DistributedEngine> engine_;
};

}  // namespace rpqd
