// Public entry point of the RPQd library.
//
//   #include "api/rpqd.h"
//
//   rpqd::GraphBuilder builder;
//   ... add vertices/edges ...
//   rpqd::Database db(std::move(builder).build(), /*num_machines=*/4);
//   auto result = db.query(
//       "SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,3}/- (b:Person)");
//
// A Database owns a property graph, hash-partitioned across a simulated
// cluster of `num_machines` machines, and executes PGQL-subset queries
// with the distributed asynchronous RPQ runtime described in the paper
// (see README.md for the supported grammar). The graph is mutable
// through apply_update() with snapshot isolation (DESIGN.md §12): every
// query runs against the immutable snapshot it pinned at admission, so
// concurrent updates never tear a running traversal.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/config.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"
#include "graph/update.h"
#include "runtime/engine.h"
#include "runtime/result_cache.h"
#include "runtime/scheduler.h"

namespace rpqd {

class Database {
 public:
  /// Partitions `graph` across `num_machines` simulated machines.
  explicit Database(Graph graph, unsigned num_machines = 4,
                    EngineConfig config = {});

  /// Parses, plans, and executes a PGQL query. A case-insensitive
  /// `PROFILE ` prefix enables the per-query tracing layer for that query
  /// only: the result's `profile` tree carries per-(stage, machine,
  /// depth) accounting (see runtime/profile.h).
  ///
  /// With `config().result_cache_max_bytes > 0` this path also runs
  /// through the single-flight result cache (DESIGN.md §11): a repeated
  /// ask of the same normalized text returns the cached result
  /// (stats.result_cache_hit), and concurrent identical asks coalesce
  /// behind one execution (stats.result_cache_coalesced).
  QueryResult query(std::string_view pgql);

  /// Parses and plans once; the returned PreparedQuery executes
  /// repeatedly without recompilation (valid while this Database lives).
  PreparedQuery prepare(std::string_view pgql) {
    return engine_->prepare(pgql);
  }

  /// Returns the EXPLAIN rendering of the plan without executing.
  std::string explain(std::string_view pgql) const;

  // ---- concurrent serving (runtime/scheduler.h) -------------------------
  // The async path: many queries in flight over the one simulated
  // cluster, each isolated in its own run namespace with a per-query
  // credit partition of the machines' buffer memory. `query()` stays the
  // blocking single-query path; mixing both is safe.

  /// Submits a query for concurrent execution. Admission control either
  /// dispatches it (a slot is free), queues it (bounded wait queue), or
  /// rejects it with a typed reason readable off the ticket
  /// (`ticket.admission()` / `ticket.reject_reason()`: queue-full, a
  /// global budget it can never fit, shutdown). A rejected query never
  /// runs; its await() returns QueryResult{aborted,
  /// AbortReason::kAdmissionReject} immediately. Parse/plan errors throw
  /// QueryError, exactly like query(). A `PROFILE ` prefix works as in
  /// query(). The scheduler starts lazily on first submit with the
  /// config from configure_scheduler (or SchedulerConfig{} defaults).
  QueryTicket submit(std::string_view pgql);

  /// Blocks until the submitted query completes and returns its result
  /// (repeatable, any thread). Aborted/cancelled/rejected runs return a
  /// clean QueryResult with the reason stamped, like the blocking path.
  QueryResult await(const QueryTicket& ticket) {
    return scheduler().await(ticket);
  }

  /// Cooperatively cancels one submission: queued queries complete as
  /// aborted without running; in-flight queries go through the normal
  /// kAbort broadcast and drain to the quiescent state. False when the
  /// query already finished.
  bool cancel(const QueryTicket& ticket) {
    return scheduler().cancel(ticket, AbortReason::kUserCancel);
  }

  /// Installs the scheduler configuration (in-flight slots, wait-queue
  /// bound, global budgets, the `min_credit_share` fairness knob for the
  /// per-query credit partitions). Replaces any existing scheduler:
  /// queued submissions are cancelled and in-flight ones cooperatively
  /// aborted, so call it before submitting (or after awaiting) a wave.
  void configure_scheduler(const SchedulerConfig& config);

  /// Admission/throughput counters of the serving path (zeroes before
  /// the first submit).
  SchedulerStats scheduler_stats() const;

  /// In-flight slot count after global budgets capped max_inflight; 0
  /// means every submission is rejected up front.
  unsigned scheduler_slots() { return scheduler().slots(); }

  const Graph& graph() const { return partitioned_->global(); }
  const PartitionedGraph& partitioned() const { return *partitioned_; }
  unsigned num_machines() const { return partitioned_->num_machines(); }

  /// Engine configuration (mutable: flow-control sizes, index toggle...).
  EngineConfig& config() { return engine_->mutable_config(); }
  const EngineConfig& config() const { return engine_->config(); }

  /// Runs every subsequent query under the named fault schedule (see
  /// FaultPlan::schedule_names(); "none" disarms). The schedule plus the
  /// seed fully determine the fault decisions — the replay key printed
  /// by the differential harness. Throws QueryError on an unknown name.
  /// Also restarts the run counter crash-stop schedules match against,
  /// so "crash on run crash_run" counts from this call.
  void set_fault_schedule(std::string_view name, std::uint64_t seed);

  /// Requests a cooperative cancel (AbortReason::kUserCancel) of every
  /// query currently executing on this database — blocking and scheduled
  /// alike — plus every submission still waiting in the scheduler's
  /// admission queue; each returns a clean QueryResult{aborted} and the
  /// database stays reusable. Returns how many were live or queued.
  /// Safe from any thread.
  unsigned cancel_all();

  /// Bounded exponential backoff with deterministic jitter for
  /// run_with_retry. Attempt n (0-based) sleeps
  /// min(backoff_base_ms * 2^n, backoff_max_ms) plus up to 50% seeded
  /// jitter before re-running.
  struct RetryPolicy {
    unsigned max_attempts = 4;     // total tries, including the first
    double backoff_base_ms = 0.5;
    double backoff_max_ms = 50.0;
    std::uint64_t jitter_seed = 1;
  };

  /// Executes `pgql`, transparently re-running it when the result is a
  /// retryable abort (machine failure or a resource-budget trip — see
  /// abort_reason_retryable). Non-retryable aborts (user cancel,
  /// deadline) and clean results return immediately. The returned
  /// result's stats.retries counts the re-runs performed. Bypasses the
  /// result cache (each attempt must actually run).
  QueryResult run_with_retry(std::string_view pgql,
                             const RetryPolicy& policy);
  QueryResult run_with_retry(std::string_view pgql) {
    return run_with_retry(pgql, RetryPolicy{});
  }

  // ---- online updates (DESIGN.md §12) -----------------------------------
  // Partitioned delta segments over the flat CSR base, one monotonic
  // graph epoch per applied batch. Queries admitted before a batch keep
  // their pinned snapshot; queries admitted after see the new one. The
  // update path keeps every cache coherent BEFORE publishing the new
  // snapshot: touched partitions' reachability-cache generations bump,
  // and result-cache entries whose plan footprint intersects the dirtied
  // labels are evicted (everything else survives).

  /// Applies one update batch atomically and publishes epoch + 1.
  /// Throws QueryError when the batch references unknown vertices,
  /// labels, or same-batch-deleted inserts; the graph is unchanged then.
  /// Safe concurrently with queries (blocking and scheduled) and with
  /// other apply_update calls (serialized internally). May trigger a
  /// delta merge per config().delta_merge_entries.
  UpdateResult apply_update(const UpdateBatch& batch);

  /// Folds the accumulated delta segments into a fresh flat base at the
  /// current epoch. False when there were no deltas to fold. Runs at a
  /// quiescent point automatically: in-flight queries keep their pinned
  /// snapshot alive until they drain.
  bool merge_deltas();

  /// The current graph epoch (0 = seed, +1 per applied batch).
  std::uint64_t graph_epoch() const;

  /// Update/merge counters (graph/store.h).
  GraphStoreStats update_stats() const;

  /// Replays the seed graph plus the first `epoch` batches into a
  /// standalone flat Graph — the differential harness evaluates the
  /// reference oracle on the exact snapshot a query pinned.
  std::shared_ptr<const Graph> materialize_snapshot(std::uint64_t epoch) const;

  // ---- skew-aware load balancing (DESIGN.md §14) ------------------------
  // Hot-vertex replication and profile-driven repartitioning. Both act
  // between queries at the store level; in-flight queries keep their
  // pinned snapshot. Neither changes any query result — replication
  // only changes which machine enumerates a hot adjacency (armed by
  // config().hot_mirror_fanout), and a repartition only changes vertex
  // placement. The offline proposal side lives in graph/repartition.h.

  /// Installs (empty vector: drops) the hot-vertex mirror set: every
  /// machine gets a read-only bucketed copy of the hot vertices'
  /// adjacency, kept coherent through apply_update/merge/repartition.
  /// Queries use it only when config().hot_mirror_fanout is on.
  void set_hot_vertices(std::vector<VertexId> hot);

  /// The currently mirrored hot set (empty = replication off).
  std::vector<VertexId> hot_vertices() const;

  /// Adopts an explicit vertex→machine map (e.g. a RepartitionPlan's
  /// assignment): rebuilds the partitions under the map at the current
  /// epoch — visible data unchanged, local vertex ids remapped, so the
  /// reachability caches flush (the merge_deltas contract). Vertices
  /// beyond the vector keep hash placement.
  void repartition(std::vector<MachineId> assignment);

  // ---- cross-query caches (DESIGN.md §11) -------------------------------
  // Enabled by config().reach_cache_max_bytes (per-machine reachability
  // facts reused across queries) and config().result_cache_max_bytes
  // (full results keyed by normalized PGQL text). Both default off.

  /// Drops both caches: bumps the reachability cache's epoch on every
  /// machine (in-flight runs' harvests are rejected) and clears the
  /// result cache (in-flight executions complete normally — the graph is
  /// immutable, so their results stay valid).
  void invalidate_caches();

  /// Aggregated reachability-cache counters over the machines (zeroes
  /// before the first cache-enabled query).
  ReachCacheStats reach_cache_stats() const {
    return engine_->reach_cache_stats();
  }
  /// Result-cache counters (zeroes before the cache exists).
  ResultCacheStats result_cache_stats() const;

  /// Test hook (differential poisoning sweeps): machine `machine`'s
  /// persistent reachability cache. nullptr until the first cache-enabled
  /// query built the caches, and out of range afterwards.
  ReachCache* reach_cache(unsigned machine) {
    return engine_->reach_cache(machine);
  }

 private:
  /// Lazily builds (or re-budgets) the result cache; nullptr while the
  /// knob is 0.
  ResultCache* result_cache();
  /// Lazily constructs the scheduler (default SchedulerConfig) on first
  /// use; guarded so concurrent first submits race safely.
  QueryScheduler& scheduler();

  /// Holds update_mutex_; folds deltas and reconciles the caches.
  bool merge_locked();

  std::shared_ptr<const PartitionedGraph> partitioned_;
  std::unique_ptr<DistributedEngine> engine_;
  /// Online updates: batch log + snapshot publication (DESIGN.md §12).
  /// update_mutex_ serializes apply/merge so the cache-coherence
  /// notifications of different epochs can never interleave.
  std::unique_ptr<GraphStore> store_;
  mutable std::mutex update_mutex_;
  mutable std::mutex scheduler_mutex_;
  // Declared before scheduler_: the scheduler borrows the cache pointer,
  // so it must be destroyed first (reverse declaration order).
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace rpqd
