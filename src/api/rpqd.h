// Public entry point of the RPQd library.
//
//   #include "api/rpqd.h"
//
//   rpqd::GraphBuilder builder;
//   ... add vertices/edges ...
//   rpqd::Database db(std::move(builder).build(), /*num_machines=*/4);
//   auto result = db.query(
//       "SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,3}/- (b:Person)");
//
// A Database owns an immutable property graph, hash-partitioned across a
// simulated cluster of `num_machines` machines, and executes PGQL-subset
// queries with the distributed asynchronous RPQ runtime described in the
// paper (see README.md for the supported grammar).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/config.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/engine.h"

namespace rpqd {

class Database {
 public:
  /// Partitions `graph` across `num_machines` simulated machines.
  explicit Database(Graph graph, unsigned num_machines = 4,
                    EngineConfig config = {});

  /// Parses, plans, and executes a PGQL query. A case-insensitive
  /// `PROFILE ` prefix enables the per-query tracing layer for that query
  /// only: the result's `profile` tree carries per-(stage, machine,
  /// depth) accounting (see runtime/profile.h).
  QueryResult query(std::string_view pgql);

  /// Parses and plans once; the returned PreparedQuery executes
  /// repeatedly without recompilation (valid while this Database lives).
  PreparedQuery prepare(std::string_view pgql) {
    return engine_->prepare(pgql);
  }

  /// Returns the EXPLAIN rendering of the plan without executing.
  std::string explain(std::string_view pgql) const;

  const Graph& graph() const { return partitioned_->global(); }
  const PartitionedGraph& partitioned() const { return *partitioned_; }
  unsigned num_machines() const { return partitioned_->num_machines(); }

  /// Engine configuration (mutable: flow-control sizes, index toggle...).
  EngineConfig& config() { return engine_->mutable_config(); }
  const EngineConfig& config() const { return engine_->config(); }

  /// Runs every subsequent query under the named fault schedule (see
  /// FaultPlan::schedule_names(); "none" disarms). The schedule plus the
  /// seed fully determine the fault decisions — the replay key printed
  /// by the differential harness. Throws QueryError on an unknown name.
  /// Also restarts the run counter crash-stop schedules match against,
  /// so "crash on run crash_run" counts from this call.
  void set_fault_schedule(std::string_view name, std::uint64_t seed);

  /// Requests a cooperative cancel (AbortReason::kUserCancel) of every
  /// query currently executing on this database; each returns a clean
  /// QueryResult{aborted} and the database stays reusable. Returns how
  /// many runs were live. Safe from any thread.
  unsigned cancel_all() { return engine_->cancel_all(); }

  /// Bounded exponential backoff with deterministic jitter for
  /// run_with_retry. Attempt n (0-based) sleeps
  /// min(backoff_base_ms * 2^n, backoff_max_ms) plus up to 50% seeded
  /// jitter before re-running.
  struct RetryPolicy {
    unsigned max_attempts = 4;     // total tries, including the first
    double backoff_base_ms = 0.5;
    double backoff_max_ms = 50.0;
    std::uint64_t jitter_seed = 1;
  };

  /// Executes `pgql`, transparently re-running it when the result is a
  /// retryable abort (machine failure or a resource-budget trip — see
  /// abort_reason_retryable). Non-retryable aborts (user cancel,
  /// deadline) and clean results return immediately. The returned
  /// result's stats.retries counts the re-runs performed.
  QueryResult run_with_retry(std::string_view pgql,
                             const RetryPolicy& policy);
  QueryResult run_with_retry(std::string_view pgql) {
    return run_with_retry(pgql, RetryPolicy{});
  }

 private:
  std::shared_ptr<const PartitionedGraph> partitioned_;
  std::unique_ptr<DistributedEngine> engine_;
};

}  // namespace rpqd
