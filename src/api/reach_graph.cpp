#include "api/reach_graph.h"

#include <charconv>

#include "common/error.h"

namespace rpqd {

GraphBuilder rebuild_graph(const Graph& graph) {
  GraphBuilder b;
  const Catalog& cat = graph.catalog();
  // Vertices, labels, vertex properties.
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const VertexId copy = b.add_vertex(cat.vertex_label_name(graph.label(v)));
    engine_check(copy == v, "rebuild_graph: vertex ids must be dense");
    for (PropId p = 0; p < cat.num_properties(); ++p) {
      const Value value = graph.property(v, p);
      if (is_null(value)) continue;
      const PropId np =
          b.catalog().property(cat.property_name(p), cat.property_type(p));
      if (value.type == ValueType::kString) {
        b.set_string_property(v, cat.property_name(p),
                              cat.string_name(as_string_id(value)));
      } else {
        b.set_property(v, np, value);
      }
    }
  }
  // Edges + edge properties (the out-CSR covers each edge exactly once).
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto [begin, end] = graph.out().range(v);
    for (std::size_t i = begin; i < end; ++i) {
      const AdjEntry& entry = graph.out().entry(i);
      const EdgeId e =
          b.add_edge(v, entry.other, cat.edge_label_name(entry.elabel));
      for (PropId p = 0; p < cat.num_properties(); ++p) {
        const Value value = graph.out().edge_property(i, p);
        if (is_null(value)) continue;
        const PropId np =
            b.catalog().property(cat.property_name(p), cat.property_type(p));
        b.set_edge_property(e, np, value);
      }
    }
  }
  return b;
}

namespace {

VertexId parse_vertex_id(const std::string& cell) {
  VertexId value = 0;
  const auto result =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (result.ec != std::errc{} || result.ptr != cell.data() + cell.size()) {
    throw QueryError(
        "materialize_reachability: projection cell '" + cell +
        "' is not a vertex id — project id(a), id(b)");
  }
  return value;
}

}  // namespace

Graph materialize_reachability(Database& db, std::string_view pairs_query,
                               std::string_view new_edge_label) {
  const QueryResult result = db.query(pairs_query);
  if (result.columns.size() != 2) {
    throw QueryError(
        "materialize_reachability: the query must project exactly two "
        "vertex ids (got " +
        std::to_string(result.columns.size()) + " columns)");
  }
  GraphBuilder b = rebuild_graph(db.graph());
  const std::size_t n = db.graph().num_vertices();
  for (const auto& row : result.rows) {
    const VertexId src = parse_vertex_id(row[0]);
    const VertexId dst = parse_vertex_id(row[1]);
    engine_check(src < n && dst < n,
                 "materialize_reachability: id out of range");
    b.add_edge(src, dst, new_edge_label);
  }
  return std::move(b).build();
}

}  // namespace rpqd
