#include "ldbc/synthetic.h"

#include <deque>
#include <string>

#include "common/rng.h"

namespace rpqd::synthetic {

namespace {

void set_id(GraphBuilder& b, VertexId v, std::int64_t id) {
  b.set_property(v, "id", int_value(id));
}

}  // namespace

Graph make_chain(std::size_t n, const char* vlabel, const char* elabel) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = b.add_vertex(vlabel);
    set_id(b, v, static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(i, i + 1, elabel);
  }
  return std::move(b).build();
}

Graph make_cycle(std::size_t n, const char* vlabel, const char* elabel) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = b.add_vertex(vlabel);
    set_id(b, v, static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(i, (i + 1) % n, elabel);
  }
  return std::move(b).build();
}

Graph make_tree(unsigned arity, unsigned depth, const char* root_label,
                const char* vlabel, const char* elabel) {
  GraphBuilder b;
  const VertexId root = b.add_vertex(root_label);
  set_id(b, root, 0);
  std::deque<std::pair<VertexId, unsigned>> frontier{{root, 0}};
  while (!frontier.empty()) {
    const auto [parent, d] = frontier.front();
    frontier.pop_front();
    if (d >= depth) continue;
    for (unsigned c = 0; c < arity; ++c) {
      const VertexId child = b.add_vertex(vlabel);
      set_id(b, child, static_cast<std::int64_t>(child));
      b.add_edge(child, parent, elabel);
      frontier.emplace_back(child, d + 1);
    }
  }
  return std::move(b).build();
}

Graph make_complete(std::size_t n, const char* vlabel, const char* elabel) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = b.add_vertex(vlabel);
    set_id(b, v, static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) b.add_edge(i, j, elabel);
    }
  }
  return std::move(b).build();
}

Graph make_random(const RandomGraphConfig& config) {
  Rng rng(config.seed);
  GraphBuilder b;
  for (unsigned l = 0; l < config.num_vertex_labels; ++l) {
    b.catalog().vertex_label("L" + std::to_string(l));
  }
  for (unsigned l = 0; l < config.num_edge_labels; ++l) {
    b.catalog().edge_label("e" + std::to_string(l));
  }
  for (std::size_t i = 0; i < config.num_vertices; ++i) {
    const auto label =
        static_cast<LabelId>(rng.next_below(config.num_vertex_labels));
    const VertexId v = b.add_vertex(label);
    set_id(b, v, static_cast<std::int64_t>(i));
    b.set_property(v, "weight", int_value(rng.next_int(0, 100)));
  }
  for (std::size_t e = 0; e < config.num_edges; ++e) {
    const VertexId src = rng.next_below(config.num_vertices);
    VertexId dst = rng.next_below(config.num_vertices);
    if (!config.allow_self_loops && dst == src) {
      dst = (dst + 1) % config.num_vertices;
      if (dst == src) continue;  // single-vertex graph
    }
    b.add_edge(src, dst,
               static_cast<LabelId>(rng.next_below(config.num_edge_labels)));
  }
  return std::move(b).build();
}

}  // namespace rpqd::synthetic
