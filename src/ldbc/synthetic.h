// Small synthetic graphs for tests and micro-benchmarks: chains, trees,
// cycles, cliques, and seeded random graphs. These drive the unit tests
// and the property-based engine-agreement oracle.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace rpqd::synthetic {

/// Directed chain v0 -> v1 -> ... -> v(n-1), all edges labelled `elabel`,
/// all vertices labelled `vlabel`. Vertex property "id" holds the index.
Graph make_chain(std::size_t n, const char* vlabel = "Node",
                 const char* elabel = "next");

/// Directed cycle of n vertices.
Graph make_cycle(std::size_t n, const char* vlabel = "Node",
                 const char* elabel = "next");

/// Complete k-ary tree of the given depth; edges point child -> parent
/// (label `elabel`), mirroring LDBC's replyOf orientation. The root has
/// label `root_label`, inner vertices `vlabel`.
Graph make_tree(unsigned arity, unsigned depth, const char* root_label = "Root",
                const char* vlabel = "Node", const char* elabel = "replyOf");

/// Complete directed graph on n vertices (both directions, no self loops).
Graph make_complete(std::size_t n, const char* vlabel = "Node",
                    const char* elabel = "edge");

struct RandomGraphConfig {
  std::size_t num_vertices = 50;
  std::size_t num_edges = 150;
  unsigned num_vertex_labels = 3;
  unsigned num_edge_labels = 3;
  bool allow_self_loops = false;
  std::uint64_t seed = 1;
};

/// Seeded uniform random multigraph with labelled vertices/edges and an
/// integer "id" plus "weight" property per vertex.
Graph make_random(const RandomGraphConfig& config);

}  // namespace rpqd::synthetic
