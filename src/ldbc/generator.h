// Deterministic synthetic LDBC-SNB-like graph generator.
//
// The paper evaluates on LDBC SF10 (27M vertices / 170M edges) and SF100.
// Those datasets (and the cluster to hold them) are unavailable here, so
// this generator synthesizes graphs with the same *topological shapes*
// that drive the paper's results, at scales that fit the simulated
// cluster:
//
//  * power-law Forum/Post/Comment reply trees whose per-depth match counts
//    first explode and then decay exponentially (Table 2 / Q9 / Figure 3),
//  * a community-structured Person/Knows graph with enough density that
//    2–3-hop neighbourhoods explode and revisit vertices heavily
//    (Table 3 / Q10),
//  * a Country ← City ← Person place hierarchy giving the narrow
//    single-vertex starting points of Q3 ("country.name = 'Burma'").
//
// Everything is seeded: the same config always yields the same graph.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "graph/graph.h"

namespace rpqd::ldbc {

struct LdbcConfig {
  /// Scale knob, loosely "thousandths of persons": persons = 1000 * sf.
  double scale_factor = 0.1;
  std::uint64_t seed = 7;

  /// Average number of Knows edges per person (LDBC SF10 averages ~19).
  double avg_knows_degree = 12.0;
  /// Fraction of a person's Knows edges kept inside their own city.
  double knows_locality = 0.7;

  /// Mean direct replies per Post (root of the reply tree).
  double reply_branching = 1.9;
  /// Geometric decay of the mean branching factor per reply depth;
  /// together with reply_branching this shapes the Table-2 curve.
  double reply_decay = 0.62;
  /// Hard cap on reply-tree depth.
  unsigned max_reply_depth = 12;

  /// Posts per forum (mean; zipf-skewed per forum).
  double posts_per_forum = 8.0;
  /// Persons per forum membership (mean).
  double members_per_forum = 6.0;

  unsigned num_countries = 24;
  unsigned cities_per_country = 4;
  unsigned num_tags = 64;
};

struct LdbcStats {
  std::size_t persons = 0;
  std::size_t forums = 0;
  std::size_t posts = 0;
  std::size_t comments = 0;
  std::size_t knows_edges = 0;
  std::size_t total_vertices = 0;
  std::size_t total_edges = 0;
};

/// Generates the graph. `out_stats` (optional) receives entity counts.
Graph generate_ldbc(const LdbcConfig& config, LdbcStats* out_stats = nullptr);

/// The fixed country-name list; index 0 is "Burma" (the Q3 filter).
const char* country_name(unsigned index);

}  // namespace rpqd::ldbc
