#include "ldbc/generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "ldbc/schema.h"

namespace rpqd::ldbc {

namespace {

constexpr const char* kCountryNames[] = {
    "Burma",     "India",     "China",      "Germany",   "France",
    "Italy",     "Spain",     "Brazil",     "Canada",    "Mexico",
    "Japan",     "Korea",     "Vietnam",    "Thailand",  "Egypt",
    "Kenya",     "Nigeria",   "Peru",       "Chile",     "Poland",
    "Sweden",    "Norway",    "Finland",    "Greece",    "Turkey",
    "Portugal",  "Austria",   "Hungary",    "Romania",   "Morocco",
};

/// Geometric-ish child count with the given mean: sample a Poisson-like
/// value via inverse-CDF of a geometric distribution. Deterministic, cheap.
unsigned sample_children(Rng& rng, double mean, unsigned cap) {
  if (mean <= 0.0) return 0;
  // Geometric distribution on {0,1,2,...} with success prob p = 1/(1+mean)
  // has mean `mean`.
  const double p = 1.0 / (1.0 + mean);
  const double u = rng.next_double();
  const auto k = static_cast<unsigned>(std::log1p(-u) / std::log1p(-p));
  return std::min(k, cap);
}

}  // namespace

const char* country_name(unsigned index) {
  return kCountryNames[index % std::size(kCountryNames)];
}

Graph generate_ldbc(const LdbcConfig& config, LdbcStats* out_stats) {
  Rng rng(config.seed);
  GraphBuilder b;
  Catalog& cat = b.catalog();

  cat.property(kName, ValueType::kString);
  cat.property(kTitle, ValueType::kString);
  const PropId p_id = cat.property(kIdProp, ValueType::kInt);
  const PropId p_age = cat.property(kAge, ValueType::kInt);
  const PropId p_date = cat.property(kCreationDate, ValueType::kInt);
  const PropId p_length = cat.property(kLength, ValueType::kInt);

  const auto num_persons =
      std::max<std::size_t>(30, static_cast<std::size_t>(
                                    1000.0 * config.scale_factor));

  // --- Places -----------------------------------------------------------
  const unsigned num_countries =
      std::min<unsigned>(config.num_countries,
                         static_cast<unsigned>(std::size(kCountryNames)));
  std::vector<VertexId> countries;
  std::vector<VertexId> cities;
  std::vector<unsigned> city_country;
  for (unsigned c = 0; c < num_countries; ++c) {
    const VertexId country = b.add_vertex(kCountry);
    b.set_string_property(country, kName, country_name(c));
    countries.push_back(country);
    for (unsigned k = 0; k < config.cities_per_country; ++k) {
      const VertexId city = b.add_vertex(kCity);
      b.set_string_property(
          city, kName,
          std::string(country_name(c)) + "-City-" + std::to_string(k));
      b.add_edge(city, country, kIsPartOf);
      cities.push_back(city);
      city_country.push_back(c);
    }
  }

  // --- Persons ----------------------------------------------------------
  // Persons are skew-assigned to cities (zipf) so some cities are dense
  // communities — this is what makes Q3's "Burma" filter narrow but the
  // reachable sub-graph non-trivial.
  ZipfSampler city_sampler(cities.size(), 0.6);
  std::vector<VertexId> persons;
  std::vector<std::size_t> person_city;
  std::vector<std::vector<std::size_t>> city_members(cities.size());
  persons.reserve(num_persons);
  for (std::size_t i = 0; i < num_persons; ++i) {
    const VertexId person = b.add_vertex(kPerson);
    b.set_property(person, p_id, int_value(static_cast<std::int64_t>(i)));
    b.set_property(person, p_age, int_value(rng.next_int(18, 80)));
    b.set_property(person, p_date, int_value(rng.next_int(0, 3650)));
    b.set_string_property(person, kName, "Person-" + std::to_string(i));
    const std::size_t city = city_sampler.sample(rng);
    person_city.push_back(city);
    city_members[city].push_back(i);
    b.add_edge(person, cities[city], kIsLocatedIn);
    persons.push_back(person);
  }

  // --- Knows ------------------------------------------------------------
  // One directed edge per unordered pair; queries use the undirected match
  // -[:knows]- so both orientations are traversable.
  std::size_t knows_edges = 0;
  {
    std::unordered_set<std::uint64_t> seen;
    const auto half_degree = config.avg_knows_degree / 2.0;
    for (std::size_t i = 0; i < num_persons; ++i) {
      const unsigned edges = sample_children(rng, half_degree, 64);
      for (unsigned e = 0; e < edges; ++e) {
        std::size_t j;
        if (rng.next_bool(config.knows_locality) &&
            city_members[person_city[i]].size() > 1) {
          const auto& members = city_members[person_city[i]];
          j = members[rng.next_below(members.size())];
        } else {
          j = rng.next_below(num_persons);
        }
        if (j == i) continue;
        const auto a = std::min(i, j);
        const auto z = std::max(i, j);
        const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | z;
        if (!seen.insert(key).second) continue;
        b.add_edge(persons[a], persons[z], kKnows);
        ++knows_edges;
      }
    }
  }

  // --- Tags -------------------------------------------------------------
  std::vector<VertexId> tags;
  for (unsigned t = 0; t < config.num_tags; ++t) {
    const VertexId tag = b.add_vertex(kTag);
    b.set_string_property(tag, kName, "Tag-" + std::to_string(t));
    tags.push_back(tag);
  }
  ZipfSampler tag_sampler(tags.size(), 1.1);

  // --- Forums, posts, reply trees ---------------------------------------
  const auto num_forums = std::max<std::size_t>(4, num_persons / 10);
  ZipfSampler person_sampler(num_persons, 0.8);
  std::size_t num_posts = 0;
  std::size_t num_comments = 0;
  std::vector<VertexId> forums;
  for (std::size_t f = 0; f < num_forums; ++f) {
    const VertexId forum = b.add_vertex(kForum);
    b.set_string_property(forum, kTitle, "Forum-" + std::to_string(f));
    forums.push_back(forum);
    // Moderator: skewed so popular persons moderate many forums.
    const std::size_t moderator = person_sampler.sample(rng);
    b.add_edge(forum, persons[moderator], kHasModerator);
    const unsigned members = sample_children(
        rng, config.members_per_forum, 4 * static_cast<unsigned>(
                                               config.members_per_forum) + 8);
    for (unsigned m = 0; m < members; ++m) {
      b.add_edge(forum, persons[person_sampler.sample(rng)], kHasMember);
    }

    const unsigned posts = sample_children(
        rng, config.posts_per_forum,
        8 * static_cast<unsigned>(config.posts_per_forum) + 8);
    for (unsigned pi = 0; pi < posts; ++pi) {
      const VertexId post = b.add_vertex(kPost);
      ++num_posts;
      b.set_property(post, p_date, int_value(rng.next_int(0, 3650)));
      b.set_property(post, p_length, int_value(rng.next_int(5, 500)));
      b.add_edge(forum, post, kContainerOf);
      b.add_edge(post, persons[person_sampler.sample(rng)], kHasCreator);
      b.add_edge(post, tags[tag_sampler.sample(rng)], kHasTag);

      // Reply tree: branching decays geometrically with depth, yielding
      // the explode-then-decay per-depth profile of Table 2.
      std::vector<std::pair<VertexId, unsigned>> frontier{{post, 0}};
      while (!frontier.empty()) {
        const auto [parent, depth] = frontier.back();
        frontier.pop_back();
        if (depth >= config.max_reply_depth) continue;
        const double mean =
            config.reply_branching * std::pow(config.reply_decay, depth);
        const unsigned children = sample_children(rng, mean, 16);
        for (unsigned c = 0; c < children; ++c) {
          const VertexId comment = b.add_vertex(kComment);
          ++num_comments;
          b.set_property(comment, p_date, int_value(rng.next_int(0, 3650)));
          b.set_property(comment, p_length, int_value(rng.next_int(1, 200)));
          b.add_edge(comment, parent, kReplyOf);
          b.add_edge(comment, persons[person_sampler.sample(rng)],
                     kHasCreator);
          frontier.emplace_back(comment, depth + 1);
        }
      }
    }
  }

  if (out_stats != nullptr) {
    out_stats->persons = num_persons;
    out_stats->forums = num_forums;
    out_stats->posts = num_posts;
    out_stats->comments = num_comments;
    out_stats->knows_edges = knows_edges;
    out_stats->total_vertices = b.num_vertices();
    out_stats->total_edges = b.num_edges();
  }
  return std::move(b).build();
}

}  // namespace rpqd::ldbc
