// Names of the LDBC-SNB-like schema produced by the generator.
//
// Only the slice of the LDBC SNB schema that the paper's nine benchmark
// queries touch is generated: the Person/Knows social graph with the
// place hierarchy (Q10, Q3 start filters), and the Forum/Post/Comment
// message trees with replyOf chains (Q3, Q9, Figure 3).
#pragma once

namespace rpqd::ldbc {

// Vertex labels.
inline constexpr const char* kCountry = "Country";
inline constexpr const char* kCity = "City";
inline constexpr const char* kPerson = "Person";
inline constexpr const char* kForum = "Forum";
inline constexpr const char* kPost = "Post";
inline constexpr const char* kComment = "Comment";
inline constexpr const char* kTag = "Tag";

// Edge labels.
inline constexpr const char* kIsPartOf = "isPartOf";        // City -> Country
inline constexpr const char* kIsLocatedIn = "isLocatedIn";  // Person -> City
inline constexpr const char* kKnows = "knows";              // Person -> Person
inline constexpr const char* kHasModerator = "hasModerator";  // Forum -> Person
inline constexpr const char* kHasMember = "hasMember";        // Forum -> Person
inline constexpr const char* kContainerOf = "containerOf";    // Forum -> Post
inline constexpr const char* kHasCreator = "hasCreator";  // Post|Comment -> Person
inline constexpr const char* kReplyOf = "replyOf";  // Comment -> Post|Comment
inline constexpr const char* kHasTag = "hasTag";    // Post|Comment -> Tag

// Property keys.
inline constexpr const char* kName = "name";                  // string
inline constexpr const char* kIdProp = "id";                  // int
inline constexpr const char* kAge = "age";                    // int
inline constexpr const char* kCreationDate = "creationDate";  // int (days)
inline constexpr const char* kTitle = "title";                // string
inline constexpr const char* kLength = "length";              // int

}  // namespace rpqd::ldbc
