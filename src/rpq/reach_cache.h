// Cross-query reachability cache (ROADMAP item 2, DESIGN.md §11).
//
// One ReachCache per simulated machine, owned by the engine and SURVIVING
// across queries: the destination-partitioned store of
// (automaton-group hash, source vertex, local destination vertex) -> depth
// facts harvested from finished runs' §3.5 reachability indexes. On
// admission of a cache-eligible run the machine seeds its per-run index
// with this cache's entries for the plan's group hashes (sentinel-depth
// entries keyed by stable rpids — see rpq/rpid.h); on a clean drain the
// engine harvests the run's stable-rpid entries back.
//
// Coherence argument (the property the differential harness pins): a
// seeded entry carries kSeedDepthSentinel and therefore never
// participates in any emit/eliminate/duplicate decision — the first visit
// returns ReachOutcome::kSeededNew, treated exactly like kNew. A stale,
// evicted, or adversarially poisoned cache entry can thus only perturb
// hit counters, never a result. Eviction is byte-accounted LRU under
// `EngineConfig::reach_cache_max_bytes` (per machine, mirroring the
// reach_index_max_bytes machinery); epoch bumps drop everything eagerly.
//
// All operations are mutex-protected — seeding and harvesting run at
// query admission/drain, never on the traversal hot path.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace rpqd {

/// Cache identity of one RPQ group of a plan: a canonical hash over the
/// group's automaton structure (rpq/cache_key.h) plus whether the group's
/// exploration is slot-free, i.e. safe to share across queries.
struct RpqGroupKey {
  std::uint64_t hash = 0;
  bool eligible = false;
};

/// Everything one MachineRuntime needs to participate in the cross-query
/// cache for one run: its machine's persistent cache, the plan's group
/// keys, and the cache epoch observed at seed time (harvests against a
/// bumped epoch are rejected).
struct RunCacheContext {
  class ReachCache* cache = nullptr;
  const std::vector<RpqGroupKey>* keys = nullptr;
  std::uint64_t epoch = 0;
};

struct ReachCacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t inserts = 0;     // new facts harvested
  std::uint64_t refreshed = 0;   // existing facts re-harvested
  std::uint64_t evicted = 0;     // LRU evictions under the byte budget
  std::uint64_t seed_reads = 0;  // entries handed out for run seeding
  std::uint64_t epoch_rejects = 0;  // harvests dropped by an epoch bump
  std::uint64_t invalidations = 0;  // epoch bumps observed
};

class ReachCache {
 public:
  /// Byte accounting per entry: 8B group hash + 8B source vertex + 4B
  /// local destination + 4B depth + LRU/backing overhead rounded to a
  /// deliberately honest 48B.
  static constexpr std::uint64_t kEntryBytes = 48;

  explicit ReachCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

  ReachCache(const ReachCache&) = delete;
  ReachCache& operator=(const ReachCache&) = delete;

  struct Entry {
    VertexId src = 0;
    LocalVertexId dst = 0;
    Depth depth = 0;
  };

  /// Current invalidation epoch. Runs snapshot it at seed time and pass
  /// it back on harvest; a mismatch (epoch bumped mid-run) rejects the
  /// harvest wholesale.
  std::uint64_t epoch() const {
    std::lock_guard lock(mutex_);
    return epoch_;
  }

  /// Epoch-based invalidation: bumps the epoch and eagerly drops every
  /// entry (the graph is immutable today, so bumps come from the API /
  /// tests; the online-update work of ROADMAP item 4 will bump per
  /// touched partition).
  void bump_epoch();

  /// Inserts or refreshes one harvested fact under the LRU byte budget.
  /// No-op (counted) when `expected_epoch` is stale. Returns true when a
  /// new entry was created.
  bool insert(std::uint64_t group_hash, VertexId src, LocalVertexId dst,
              Depth depth, std::uint64_t expected_epoch);

  /// Test hook: inserts at the current epoch (poisoning / direct setup).
  bool insert_now(std::uint64_t group_hash, VertexId src, LocalVertexId dst,
                  Depth depth) {
    return insert(group_hash, src, dst, depth, epoch());
  }

  /// Snapshot of one group's entries for run seeding; touches their LRU
  /// recency.
  std::vector<Entry> snapshot(std::uint64_t group_hash);

  /// Distinct group hashes currently cached (tests / poisoning sweeps).
  std::vector<std::uint64_t> group_hashes() const;

  /// Test hook: overwrite every stored depth with `depth` (poisoning; a
  /// correct engine must be insensitive to any stored depth).
  void poison_depths(Depth depth);

  void set_budget(std::uint64_t max_bytes);

  ReachCacheStats stats() const;
  std::uint64_t entries() const {
    std::lock_guard lock(mutex_);
    return lru_.size();
  }
  std::uint64_t bytes() const {
    std::lock_guard lock(mutex_);
    return lru_.size() * kEntryBytes;
  }

 private:
  struct Key {
    std::uint64_t hash;
    VertexId src;
    LocalVertexId dst;
    bool operator==(const Key&) const = default;
  };
  struct Node {
    Key key;
    Depth depth;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const;
  };

  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::uint64_t max_bytes_;
  std::uint64_t epoch_ = 0;
  // front = most recently used.
  std::list<Node> lru_;
  std::unordered_map<Key, std::list<Node>::iterator, KeyHasher> index_;
  ReachCacheStats stats_;
};

}  // namespace rpqd
