#include "rpq/cache_key.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/hash.h"

namespace rpqd {
namespace {

// FNV-1a over the canonical description, finished through mix64. A
// string digest keeps the canonicalization auditable (sorted pieces are
// plain text) and is far off any hot path — keys are computed once per
// run, per group.
std::uint64_t digest(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu,",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_sorted_labels(std::string& out, std::vector<LabelId> labels) {
  std::sort(labels.begin(), labels.end());
  out += "l[";
  for (const LabelId l : labels) append_u64(out, l);
  out += "]";
}

void append_sorted_filters(std::string& out,
                           const std::vector<CompiledExpr>& filters) {
  std::vector<std::string> texts;
  texts.reserve(filters.size());
  for (const auto& f : filters) texts.push_back(f.debug_text());
  std::sort(texts.begin(), texts.end());
  out += "f[";
  for (const auto& t : texts) {
    out += t;
    out += ';';
  }
  out += "]";
}

}  // namespace

std::vector<RpqGroupKey> rpq_group_cache_keys(const ExecPlan& plan) {
  std::vector<RpqGroupKey> keys(plan.num_rpq_indexes);
  for (const StagePlan& control : plan.stages) {
    if (control.kind != StageKind::kRpqControl) continue;
    RpqGroupKey& key = keys[control.rpq.index_id];

    // Stages of this group in plan order; stage ids are mapped to
    // group-relative ordinals so identical automatons embedded at
    // different plan positions hash identically.
    std::vector<StageId> members;
    for (const StagePlan& sp : plan.stages) {
      if (sp.id == control.id ||
          (sp.kind == StageKind::kPath && sp.rpq_group == control.id)) {
        members.push_back(sp.id);
      }
    }
    const auto ordinal = [&members](StageId id) -> std::uint64_t {
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] == id) return i;
      }
      return ~std::uint64_t{0};  // hop leaving the group (continuation)
    };

    bool eligible = true;
    std::string desc = "grp:";
    append_u64(desc, control.rpq.min_hop);
    append_u64(desc, control.rpq.max_hop);
    for (const StageId id : members) {
      const StagePlan& sp = plan.stages[id];
      desc += sp.id == control.id ? "|ctl:" : "|path:";
      append_sorted_labels(desc, sp.vlabels);
      append_sorted_filters(desc, sp.filters);
      for (const auto& f : sp.filters) eligible = eligible && !f.reads_slot();
      if (sp.id == control.id) continue;  // control hop = emission side
      desc += "h:";
      append_u64(desc, static_cast<std::uint64_t>(sp.hop.kind));
      append_u64(desc, static_cast<std::uint64_t>(sp.hop.dir));
      append_u64(desc, ordinal(sp.hop.to));
      append_u64(desc, sp.increments_depth ? 1 : 0);
      append_sorted_labels(desc, sp.hop.elabels);
      append_sorted_filters(desc, sp.hop.edge_filters);
      for (const auto& f : sp.hop.edge_filters) {
        eligible = eligible && !f.reads_slot();
      }
      // Exploration must not depend on bound vertices (context slots).
      if (sp.hop.kind != HopKind::kNeighbor &&
          sp.hop.kind != HopKind::kTransition) {
        eligible = false;
      }
    }
    key.hash = digest(desc);
    key.eligible = eligible;
  }
  return keys;
}

ResultCacheScope result_cache_scope(const ExecPlan& plan) {
  ResultCacheScope scope;
  // Vertex dimension: only the stage-0 scan can be seeded by a vertex
  // change (see the soundness note on ResultCacheScope). A single-start
  // plan still scans its stage-0 labels conceptually — a future vertex
  // can match a cached-empty ID probe, so the scan labels (or wildcard)
  // stay in scope.
  if (!plan.stages.empty() && !plan.stages.front().vlabels.empty()) {
    scope.all_vertex_labels = false;
    scope.vertex_labels = plan.stages.front().vlabels;
    std::sort(scope.vertex_labels.begin(), scope.vertex_labels.end());
    scope.vertex_labels.erase(
        std::unique(scope.vertex_labels.begin(), scope.vertex_labels.end()),
        scope.vertex_labels.end());
  }
  // Edge dimension: union of every edge-traversing hop's alternation.
  // One unlabeled hop makes the whole dimension a wildcard; a plan with
  // no kNeighbor/kEdge hops cannot observe edges at all.
  scope.all_edge_labels = false;
  for (const StagePlan& sp : plan.stages) {
    if (sp.hop.kind != HopKind::kNeighbor && sp.hop.kind != HopKind::kEdge) {
      continue;
    }
    if (sp.hop.elabels.empty()) {
      scope.all_edge_labels = true;
      scope.edge_labels.clear();
      break;
    }
    scope.edge_labels.insert(scope.edge_labels.end(), sp.hop.elabels.begin(),
                             sp.hop.elabels.end());
  }
  if (!scope.all_edge_labels) {
    std::sort(scope.edge_labels.begin(), scope.edge_labels.end());
    scope.edge_labels.erase(
        std::unique(scope.edge_labels.begin(), scope.edge_labels.end()),
        scope.edge_labels.end());
  }
  return scope;
}

}  // namespace rpqd
