// Reachability path-ID (rpid) encoding, exactly as §3.5:
//
//   source path id = (machineId, workerId, seqId)  -> one 64-bit word
//                     8 bits     8 bits    48 bits
//   destination id = vertex id                     -> one 64-bit word
//
// Every path is processed by a single worker before entering the RPQ
// stage, so (machineId, workerId, thread-local seq) uniquely identifies
// the source path without any coordination.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace rpqd {

inline constexpr std::uint64_t kRpidSeqMask = (1ULL << 48) - 1;

/// Builds the 64-bit source path id.
constexpr std::uint64_t make_rpid_source(MachineId machine, WorkerId worker,
                                         std::uint64_t seq) {
  return (static_cast<std::uint64_t>(machine) << 56) |
         (static_cast<std::uint64_t>(worker) << 48) | (seq & kRpidSeqMask);
}

constexpr MachineId rpid_machine(std::uint64_t rpid_source) {
  return static_cast<MachineId>(rpid_source >> 56);
}

constexpr WorkerId rpid_worker(std::uint64_t rpid_source) {
  return static_cast<WorkerId>((rpid_source >> 48) & 0xff);
}

constexpr std::uint64_t rpid_seq(std::uint64_t rpid_source) {
  return rpid_source & kRpidSeqMask;
}

}  // namespace rpqd
