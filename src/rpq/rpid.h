// Reachability path-ID (rpid) encoding, exactly as §3.5:
//
//   source path id = (machineId, workerId, seqId)  -> one 64-bit word
//                     8 bits     8 bits    48 bits
//   destination id = vertex id                     -> one 64-bit word
//
// Every path is processed by a single worker before entering the RPQ
// stage, so (machineId, workerId, thread-local seq) uniquely identifies
// the source path without any coordination.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace rpqd {

inline constexpr std::uint64_t kRpidSeqMask = (1ULL << 48) - 1;

/// Builds the 64-bit source path id.
constexpr std::uint64_t make_rpid_source(MachineId machine, WorkerId worker,
                                         std::uint64_t seq) {
  return (static_cast<std::uint64_t>(machine) << 56) |
         (static_cast<std::uint64_t>(worker) << 48) | (seq & kRpidSeqMask);
}

constexpr MachineId rpid_machine(std::uint64_t rpid_source) {
  return static_cast<MachineId>(rpid_source >> 56);
}

constexpr WorkerId rpid_worker(std::uint64_t rpid_source) {
  return static_cast<WorkerId>((rpid_source >> 48) & 0xff);
}

constexpr std::uint64_t rpid_seq(std::uint64_t rpid_source) {
  return rpid_source & kRpidSeqMask;
}

// ---- stable rpids (cross-query reachability cache) -----------------------
//
// Classic rpids are minted from a per-worker sequence, so the same source
// vertex gets a different rpid on every run — useless as a cross-query
// cache key. On cache-eligible runs the FIRST RPQ entry from a source
// vertex instead gets a STABLE rpid that encodes the source vertex id
// itself, under a reserved machine byte (0xff) no real machine can carry
// (the engine disables the cache at >= 255 machines). Subsequent entries
// from the same source fall back to classic rpids, preserving the §3.5
// one-entry-per-traversal dedup contract. Stable rpids make index entries
// derivable before the run (seeding) and decodable after it (harvest).

inline constexpr std::uint64_t kStableRpidMarker = 0xffULL << 56;
inline constexpr std::uint64_t kStableRpidVertexMask = (1ULL << 56) - 1;

/// True when `vertex` fits the 56-bit stable encoding.
constexpr bool stable_rpid_encodable(VertexId vertex) {
  return (vertex & ~kStableRpidVertexMask) == 0;
}

constexpr std::uint64_t make_stable_rpid(VertexId source_vertex) {
  return kStableRpidMarker | (source_vertex & kStableRpidVertexMask);
}

constexpr bool rpid_is_stable(std::uint64_t rpid_source) {
  return (rpid_source & kStableRpidMarker) == kStableRpidMarker;
}

constexpr VertexId stable_rpid_vertex(std::uint64_t rpid_source) {
  return rpid_source & kStableRpidVertexMask;
}

}  // namespace rpqd
