// Canonical cache identity of a plan's RPQ groups (DESIGN.md §11).
//
// The cross-query reachability cache keys facts by an AUTOMATON-GROUP
// hash: a canonical digest of everything that determines a group's
// exploration semantics — hop window (min/max), path-stage structure
// (stage kinds and transition targets as group-relative ordinals), hop
// kinds/directions, SORTED label alternations (so `:a|:b` and `:b|:a`
// produce the same key — automaton-equivalent rewrites hit), and the
// canonical text of vertex/edge filters (sorted within a stage, since
// conjunction order is irrelevant). The hash covers exactly the plan
// stages INSIDE the group: anything the planner evaluates there —
// including the destination-label filter on the emit stage — is
// conservatively part of the key, while everything outside the group is
// excluded because it cannot affect which (source, destination, depth)
// facts exploration discovers: the source-selection scan (facts are
// per-source and a source's reachable set is start-set independent),
// projections, and PROFILE. That exclusion is why `PROFILE Q` and `Q` —
// and the same automaton under different source labels — share
// reachability cache entries.
//
// A group is ELIGIBLE for cross-query caching only when its exploration
// is slot-free: every filter/edge-filter in the group avoids context
// slots and every path-stage hop is kNeighbor/kTransition (a
// kEdge/kInspect hop targets a bound vertex — traversal history).
#pragma once

#include <vector>

#include "graph/update.h"
#include "plan/plan.h"
#include "rpq/reach_cache.h"

namespace rpqd {

/// One RpqGroupKey per reachability-index instance of the plan
/// (index_id-indexed, size plan.num_rpq_indexes).
std::vector<RpqGroupKey> rpq_group_cache_keys(const ExecPlan& plan);

/// Label footprint of the whole plan, for update-driven result-cache
/// eviction (DESIGN.md §12): the stage-0 scan's vertex labels plus every
/// kNeighbor/kEdge hop's edge labels, each dimension a wildcard when any
/// contributing alternation is unlabeled.
ResultCacheScope result_cache_scope(const ExecPlan& plan);

}  // namespace rpqd
