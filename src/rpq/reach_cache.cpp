#include "rpq/reach_cache.h"

#include "common/hash.h"

namespace rpqd {

std::size_t ReachCache::KeyHasher::operator()(const Key& k) const {
  return static_cast<std::size_t>(
      mix64(k.hash ^ mix64(k.src ^ (static_cast<std::uint64_t>(k.dst) << 32))));
}

void ReachCache::bump_epoch() {
  std::lock_guard lock(mutex_);
  ++epoch_;
  ++stats_.invalidations;
  lru_.clear();
  index_.clear();
}

bool ReachCache::insert(std::uint64_t group_hash, VertexId src,
                        LocalVertexId dst, Depth depth,
                        std::uint64_t expected_epoch) {
  std::lock_guard lock(mutex_);
  if (expected_epoch != epoch_) {
    ++stats_.epoch_rejects;
    return false;
  }
  if (max_bytes_ < kEntryBytes) return false;  // budget can't hold any entry
  const Key key{group_hash, src, dst};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->depth = depth;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.refreshed;
    return false;
  }
  lru_.push_front(Node{key, depth});
  index_.emplace(key, lru_.begin());
  ++stats_.inserts;
  evict_to_budget_locked();
  return true;
}

std::vector<ReachCache::Entry> ReachCache::snapshot(std::uint64_t group_hash) {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  // Collect first, then touch: splicing while iterating the same list
  // would revisit moved nodes.
  std::vector<std::list<Node>::iterator> touched;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key.hash != group_hash) continue;
    out.push_back(Entry{it->key.src, it->key.dst, it->depth});
    touched.push_back(it);
  }
  for (const auto& it : touched) lru_.splice(lru_.begin(), lru_, it);
  stats_.seed_reads += out.size();
  return out;
}

std::vector<std::uint64_t> ReachCache::group_hashes() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& node : lru_) {
    bool seen = false;
    for (const std::uint64_t h : out) seen = seen || h == node.key.hash;
    if (!seen) out.push_back(node.key.hash);
  }
  return out;
}

void ReachCache::poison_depths(Depth depth) {
  std::lock_guard lock(mutex_);
  for (auto& node : lru_) node.depth = depth;
}

void ReachCache::set_budget(std::uint64_t max_bytes) {
  std::lock_guard lock(mutex_);
  max_bytes_ = max_bytes;
  evict_to_budget_locked();
}

void ReachCache::evict_to_budget_locked() {
  while (!lru_.empty() && lru_.size() * kEntryBytes > max_bytes_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evicted;
  }
}

ReachCacheStats ReachCache::stats() const {
  std::lock_guard lock(mutex_);
  ReachCacheStats s = stats_;
  s.entries = lru_.size();
  s.bytes = lru_.size() * kEntryBytes;
  return s;
}

}  // namespace rpqd
