#include "rpq/reach_index.h"

#include <optional>

#include "common/error.h"

namespace rpqd {

ReachabilityIndex::ReachabilityIndex(std::size_t num_local_vertices,
                                     bool preallocate)
    : level1_(num_local_vertices) {
  for (auto& slot : level1_) {
    slot.store(preallocate ? new SecondLevel() : nullptr,
               std::memory_order_relaxed);
  }
}

ReachabilityIndex::~ReachabilityIndex() {
  for (auto& slot : level1_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

ReachabilityIndex::SecondLevel* ReachabilityIndex::get_or_create(
    LocalVertexId dst) {
  engine_check(dst < level1_.size(), "reach index: vertex out of range");
  std::atomic<SecondLevel*>& slot = level1_[dst];
  SecondLevel* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  auto fresh = std::make_unique<SecondLevel>();
  SecondLevel* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel)) {
    return fresh.release();  // ownership transferred to the index
  }
  return expected;  // another worker won the race
}

ReachOutcome ReachabilityIndex::check_and_update(LocalVertexId dst,
                                                 std::uint64_t src_rpid,
                                                 Depth depth) {
  SecondLevel* level2 = get_or_create(dst);
  std::lock_guard lock(level2->mutex);
  const auto [it, inserted] = level2->entries.try_emplace(src_rpid, depth);
  if (inserted) {
    entries_.fetch_add(1, std::memory_order_relaxed);
    return ReachOutcome::kNew;
  }
  if (it->second <= depth) {
    eliminated_.fetch_add(1, std::memory_order_relaxed);
    return ReachOutcome::kEliminated;
  }
  it->second = depth;
  duplicated_.fetch_add(1, std::memory_order_relaxed);
  return ReachOutcome::kDuplicated;
}

std::optional<Depth> ReachabilityIndex::lookup(LocalVertexId dst,
                                               std::uint64_t src_rpid) const {
  if (dst >= level1_.size()) return std::nullopt;
  const SecondLevel* level2 = level1_[dst].load(std::memory_order_acquire);
  if (level2 == nullptr) return std::nullopt;
  std::lock_guard lock(level2->mutex);
  const auto it = level2->entries.find(src_rpid);
  if (it == level2->entries.end()) return std::nullopt;
  return it->second;
}

ReachIndexStats ReachabilityIndex::stats() const {
  ReachIndexStats s;
  s.entries = entries_.load(std::memory_order_relaxed);
  s.eliminated = eliminated_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.dynamic_bytes = s.entries * 12;  // 8B rpid + 4B depth, as in §4.4
  return s;
}

}  // namespace rpqd
