#include "rpq/reach_index.h"

#include <algorithm>
#include <bit>
#include <new>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "common/hash.h"

namespace rpqd {
namespace {

// Claim-word states. Occupied slots carry the destination vertex in the
// upper bits so two keys that share a shard but differ in `dst` never
// compare equal on the rpid word alone (rpid 0 is a valid key).
constexpr std::uint64_t kCtrlEmpty = 0;
constexpr std::uint64_t kCtrlBusy = 1;
constexpr std::uint64_t ctrl_ready(LocalVertexId dst) {
  return (static_cast<std::uint64_t>(dst) << 2) | 2;
}

// Slots probed per segment before spilling into the next (doubled)
// segment. Bounded and deterministic: two workers inserting the same key
// walk the exact same slot sequence, which is what makes the claim
// protocol double-insert free.
constexpr std::size_t kProbeWindow = 16;

constexpr std::uint64_t slot_hash(LocalVertexId dst, std::uint64_t rpid) {
  return mix64(rpid ^ (static_cast<std::uint64_t>(dst) *
                       0x9e3779b97f4a7c15ULL));
}

constexpr std::size_t round_up64(std::size_t bytes) {
  return (bytes + 63) & ~std::size_t{63};
}

inline void spin_pause(unsigned& spins) {
  if (++spins > 64) {
    std::this_thread::yield();
    spins = 0;
  }
}

}  // namespace

ReachabilityIndex::ReachabilityIndex(std::size_t num_local_vertices,
                                     bool preallocate, unsigned num_shards)
    : num_vertices_(num_local_vertices) {
  if (num_shards == 0) num_shards = 1;
  if (num_shards > 256) num_shards = 256;
  const std::size_t shard_count = std::bit_ceil(std::size_t{num_shards});
  shard_mask_ = shard_count - 1;
  shards_ = std::vector<Shard>(shard_count);

  // First-segment capacity: with preallocation we budget ~4 index entries
  // per local vertex (Q9-style fan-in); lazily we start small and double.
  const std::size_t total_target =
      preallocate ? std::max<std::size_t>(1024, 4 * num_local_vertices)
                  : std::max<std::size_t>(256, num_local_vertices);
  const std::size_t cap0 =
      std::bit_ceil(std::max<std::size_t>(64, total_target / shard_count));

  if (preallocate) {
    // One contiguous arena holding every shard's first segment plus ~two
    // rounds of doubling headroom (1 + 2 + 4 = 7x); growth past that
    // falls back to the heap and is counted in hot_allocations.
    const std::size_t seg_bytes =
        round_up64(sizeof(Segment) + cap0 * sizeof(Entry));
    arena_size_ = 7 * shard_count * seg_bytes;
    arena_ = std::make_unique<std::byte[]>(arena_size_);
  }

  for (auto& shard : shards_) {
    Segment* seg = allocate_segment(cap0, /*on_hot_path=*/false, shard);
    shard.head.store(seg, std::memory_order_release);
  }
}

ReachabilityIndex::~ReachabilityIndex() {
  for (auto& shard : shards_) {
    Segment* seg = shard.head.load(std::memory_order_acquire);
    while (seg != nullptr) {
      Segment* next = seg->next.load(std::memory_order_acquire);
      if (!seg->from_arena) ::operator delete(seg);
      seg = next;
    }
  }
}

std::byte* ReachabilityIndex::arena_take(std::size_t bytes) {
  if (arena_ == nullptr) return nullptr;
  std::size_t offset = arena_used_.fetch_add(bytes, std::memory_order_relaxed);
  if (offset + bytes > arena_size_) return nullptr;  // exhausted
  return arena_.get() + offset;
}

ReachabilityIndex::Segment* ReachabilityIndex::allocate_segment(
    std::size_t capacity, bool on_hot_path, Shard& shard) {
  const std::size_t bytes =
      round_up64(sizeof(Segment) + capacity * sizeof(Entry));
  std::byte* mem = arena_take(bytes);
  bool from_arena = mem != nullptr;
  if (!from_arena) {
    mem = static_cast<std::byte*>(::operator new(bytes));
    if (on_hot_path) {
      shard.hot_allocs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Segment* seg = new (mem) Segment{};
  seg->capacity = capacity;
  seg->from_arena = from_arena;
  Entry* entries = seg->entries();
  for (std::size_t i = 0; i < capacity; ++i) new (&entries[i]) Entry{};
  shard.reserved_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return seg;
}

ReachabilityIndex::Segment* ReachabilityIndex::next_segment(Segment* seg,
                                                            Shard& shard) {
  Segment* next = seg->next.load(std::memory_order_acquire);
  if (next != nullptr) return next;
  Segment* fresh =
      allocate_segment(seg->capacity * 2, /*on_hot_path=*/true, shard);
  Segment* expected = nullptr;
  if (seg->next.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel)) {
    return fresh;
  }
  // Lost the race: discard ours (arena space, if used, is simply wasted).
  shard.reserved_bytes.fetch_sub(
      round_up64(sizeof(Segment) + fresh->capacity * sizeof(Entry)),
      std::memory_order_relaxed);
  if (!fresh->from_arena) {
    fresh->~Segment();
    ::operator delete(fresh);
  }
  return expected;
}

ReachOutcome ReachabilityIndex::check_and_update(LocalVertexId dst,
                                                 std::uint64_t src_rpid,
                                                 Depth depth) {
  engine_check(dst < num_vertices_, "reach index: vertex out of range");
  Shard& shard = shards_[mix64(dst) & shard_mask_];
  const std::uint64_t hash = slot_hash(dst, src_rpid);
  const std::uint64_t ready = ctrl_ready(dst);

  Segment* seg = shard.head.load(std::memory_order_acquire);
  unsigned spins = 0;
  while (true) {
    Entry* entries = seg->entries();
    const std::size_t mask = seg->capacity - 1;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      Entry& entry = entries[(hash + probe) & mask];
      while (true) {
        std::uint64_t ctrl = entry.ctrl.load(std::memory_order_acquire);
        if (ctrl == kCtrlEmpty) {
          std::uint64_t expected = kCtrlEmpty;
          if (entry.ctrl.compare_exchange_strong(expected, kCtrlBusy,
                                                 std::memory_order_acq_rel)) {
            entry.rpid.store(src_rpid, std::memory_order_relaxed);
            entry.depth.store(depth, std::memory_order_relaxed);
            entry.ctrl.store(ready, std::memory_order_release);
            shard.entries.fetch_add(1, std::memory_order_relaxed);
            return ReachOutcome::kNew;
          }
          continue;  // lost the claim: re-examine this same slot
        }
        if (ctrl == kCtrlBusy) {
          spin_pause(spins);  // claimer is publishing; retry shortly
          continue;
        }
        if (ctrl == ready &&
            entry.rpid.load(std::memory_order_relaxed) == src_rpid) {
          // Found: CAS-min on the depth word. A stored sentinel is a
          // cross-query cache seed whose first visit this run must behave
          // exactly like kNew; the CAS win claims that first visit (a
          // concurrent loser re-reads the real depth and takes the normal
          // eliminate/duplicate path, just as it would cold).
          std::uint32_t stored = entry.depth.load(std::memory_order_relaxed);
          while (true) {
            if (stored == kSeedDepthSentinel) {
              if (entry.depth.compare_exchange_weak(
                      stored, depth, std::memory_order_acq_rel,
                      std::memory_order_relaxed)) {
                shard.seed_hits.fetch_add(1, std::memory_order_relaxed);
                return ReachOutcome::kSeededNew;
              }
              continue;
            }
            if (stored <= depth) {
              shard.eliminated.fetch_add(1, std::memory_order_relaxed);
              return ReachOutcome::kEliminated;
            }
            if (entry.depth.compare_exchange_weak(
                    stored, depth, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
              shard.duplicated.fetch_add(1, std::memory_order_relaxed);
              return ReachOutcome::kDuplicated;
            }
          }
        }
        break;  // occupied by a different key: next probe slot
      }
    }
    seg = next_segment(seg, shard);  // window exhausted: spill
  }
}

bool ReachabilityIndex::seed(LocalVertexId dst, std::uint64_t src_rpid) {
  engine_check(dst < num_vertices_, "reach index: seed vertex out of range");
  Shard& shard = shards_[mix64(dst) & shard_mask_];
  const std::uint64_t hash = slot_hash(dst, src_rpid);
  const std::uint64_t ready = ctrl_ready(dst);

  Segment* seg = shard.head.load(std::memory_order_acquire);
  while (true) {
    Entry* entries = seg->entries();
    const std::size_t mask = seg->capacity - 1;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      Entry& entry = entries[(hash + probe) & mask];
      std::uint64_t ctrl = entry.ctrl.load(std::memory_order_acquire);
      if (ctrl == kCtrlEmpty) {
        std::uint64_t expected = kCtrlEmpty;
        if (!entry.ctrl.compare_exchange_strong(expected, kCtrlBusy,
                                                std::memory_order_acq_rel)) {
          return false;  // lost a claim race: only callable pre-run anyway
        }
        entry.rpid.store(src_rpid, std::memory_order_relaxed);
        entry.depth.store(kSeedDepthSentinel, std::memory_order_relaxed);
        entry.ctrl.store(ready, std::memory_order_release);
        shard.entries.fetch_add(1, std::memory_order_relaxed);
        shard.seeded.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (ctrl == ready &&
          entry.rpid.load(std::memory_order_relaxed) == src_rpid) {
        return false;  // key already present
      }
    }
    seg = next_segment(seg, shard);  // pre-run: growth is off-hot-path
  }
}

std::optional<Depth> ReachabilityIndex::lookup(LocalVertexId dst,
                                               std::uint64_t src_rpid) const {
  if (dst >= num_vertices_) return std::nullopt;
  const Shard& shard = shards_[mix64(dst) & shard_mask_];
  const std::uint64_t hash = slot_hash(dst, src_rpid);
  const std::uint64_t ready = ctrl_ready(dst);

  const Segment* seg = shard.head.load(std::memory_order_acquire);
  unsigned spins = 0;
  while (seg != nullptr) {
    const Entry* entries = seg->entries();
    const std::size_t mask = seg->capacity - 1;
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      const Entry& entry = entries[(hash + probe) & mask];
      std::uint64_t ctrl = entry.ctrl.load(std::memory_order_acquire);
      while (ctrl == kCtrlBusy) {
        spin_pause(spins);
        ctrl = entry.ctrl.load(std::memory_order_acquire);
      }
      if (ctrl == kCtrlEmpty) return std::nullopt;
      if (ctrl == ready &&
          entry.rpid.load(std::memory_order_relaxed) == src_rpid) {
        const Depth depth = entry.depth.load(std::memory_order_relaxed);
        if (depth == kSeedDepthSentinel) return std::nullopt;
        return depth;
      }
    }
    seg = seg->next.load(std::memory_order_acquire);
  }
  return std::nullopt;
}

std::uint64_t ReachabilityIndex::duplicate_entries() const {
  struct KeyHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& k)
        const {
      return static_cast<std::size_t>(mix64(k.first ^ mix64(k.second)));
    }
  };
  std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, KeyHash> keys;
  std::uint64_t duplicates = 0;
  for (const auto& shard : shards_) {
    const Segment* seg = shard.head.load(std::memory_order_acquire);
    while (seg != nullptr) {
      const Entry* entries = seg->entries();
      for (std::size_t i = 0; i < seg->capacity; ++i) {
        const std::uint64_t ctrl = entries[i].ctrl.load(
            std::memory_order_acquire);
        if (ctrl == kCtrlEmpty || ctrl == kCtrlBusy) continue;
        const std::uint64_t dst = ctrl >> 2;  // inverse of ctrl_ready
        const std::uint64_t rpid =
            entries[i].rpid.load(std::memory_order_relaxed);
        if (!keys.emplace(dst, rpid).second) ++duplicates;
      }
      seg = seg->next.load(std::memory_order_acquire);
    }
  }
  return duplicates;
}

ReachIndexStats ReachabilityIndex::stats() const {
  ReachIndexStats s;
  for (const auto& shard : shards_) {
    s.entries += shard.entries.load(std::memory_order_relaxed);
    s.eliminated += shard.eliminated.load(std::memory_order_relaxed);
    s.duplicated += shard.duplicated.load(std::memory_order_relaxed);
    s.hot_allocations += shard.hot_allocs.load(std::memory_order_relaxed);
    s.reserved_bytes += shard.reserved_bytes.load(std::memory_order_relaxed);
    s.seeded += shard.seeded.load(std::memory_order_relaxed);
    s.seed_hits += shard.seed_hits.load(std::memory_order_relaxed);
  }
  s.dynamic_bytes = s.entries * 12;  // 8B rpid + 4B depth, as in §4.4
  return s;
}

}  // namespace rpqd
