// The dynamically-built distributed reachability index (§3.5).
//
// Partitioned by destination vertex: every machine holds the index slice
// for its local vertices, so the atomic check-and-update at the RPQ
// control stage is always a local operation (the control stage executes
// at the destination vertex's owner).
//
// Layout: a small power-of-two number of cache-line-aligned shards
// (selected by mixing the destination vertex id), each a chain of
// open-addressing segments keyed by (destination vertex, source rpid).
// Inserts claim a slot with a single compare-and-swap; depth updates are
// a CAS-min loop on the entry's depth word. No locks anywhere on the
// check-and-update path. Segments never move: when a probe window fills
// up, a doubled segment is chained behind it, so readers are never
// invalidated by growth.
//
// `preallocate` (the paper's §4.5 future-work idea of trading memory for
// allocation-free inserts) reserves one contiguous bump-arena at
// construction; first segments and growth segments are carved out of it
// and the hot path performs zero heap allocations until the arena is
// exhausted. Heap fallbacks are counted in `hot_allocations` so tests
// and benchmarks can assert the allocation-free property.
//
// Each entry accounts for 12 bytes (8B source rpid + 4B depth), matching
// the paper's size arithmetic (181MB for Q9, 4.4MB for Q10 on SF100);
// `reserved_bytes` additionally reports the real slot memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"

namespace rpqd {

/// Result of the atomic check-and-update (§4.4 terminology).
enum class ReachOutcome : std::uint8_t {
  kNew,         // first visit: emit the match and keep exploring
  kEliminated,  // already reached at a lower-or-equal depth: prune
  kDuplicated,  // already reached at a greater depth: update, keep
                // exploring, but do not emit again
  kSeededNew,   // first visit landed on a cross-query cache seed:
                // semantically identical to kNew (emit + explore), only
                // the cache hit counters differ — a stale or poisoned
                // seed can never change a result, by construction
};

/// Depth sentinel stored by seed(): "known key, not yet visited this
/// run". Real observed depths never reach it (max_hop caps exploration
/// well below kUnboundedDepth), so the first visit always detects the
/// seed and replaces the sentinel with the real depth.
inline constexpr Depth kSeedDepthSentinel = kUnboundedDepth;

struct ReachIndexStats {
  std::uint64_t entries = 0;
  std::uint64_t eliminated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dynamic_bytes = 0;    // 12 bytes per entry (§4.4 arithmetic)
  std::uint64_t reserved_bytes = 0;   // slot memory actually reserved
  std::uint64_t hot_allocations = 0;  // heap allocations on the hot path
  std::uint64_t seeded = 0;           // cross-query cache seeds installed
  std::uint64_t seed_hits = 0;        // first visits that landed on a seed
};

class ReachabilityIndex {
 public:
  /// `preallocate` reserves the bump-arena described above; `num_shards`
  /// is rounded up to a power of two (capped at 256).
  explicit ReachabilityIndex(std::size_t num_local_vertices,
                             bool preallocate = false,
                             unsigned num_shards = 16);
  ~ReachabilityIndex();

  ReachabilityIndex(const ReachabilityIndex&) = delete;
  ReachabilityIndex& operator=(const ReachabilityIndex&) = delete;

  /// Atomic check-and-update for path (src_rpid -> dst) observed at
  /// `depth`. Thread-safe; called concurrently by all local workers.
  ReachOutcome check_and_update(LocalVertexId dst, std::uint64_t src_rpid,
                                Depth depth);

  /// Point lookup (tests / debugging). Seeded-but-unvisited entries read
  /// as absent: the sentinel is bookkeeping, not an observation.
  std::optional<Depth> lookup(LocalVertexId dst, std::uint64_t src_rpid) const;

  /// Installs a cross-query cache seed: a ready entry carrying the
  /// kSeedDepthSentinel depth. Called by the machine during construction
  /// (single-threaded, before workers spawn). Returns false when the key
  /// already exists. Seeds are invisible to every semantic decision —
  /// the first check_and_update on a seeded key returns kSeededNew,
  /// which callers treat exactly like kNew.
  bool seed(LocalVertexId dst, std::uint64_t src_rpid);

  /// Quiescent iteration over every published entry (harvest). Skips
  /// seeded entries never visited this run (sentinel depth). Call only
  /// after the workers joined.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& shard : shards_) {
      const Segment* seg = shard.head.load(std::memory_order_acquire);
      while (seg != nullptr) {
        const Entry* entries = seg->entries();
        for (std::size_t i = 0; i < seg->capacity; ++i) {
          const std::uint64_t ctrl =
              entries[i].ctrl.load(std::memory_order_acquire);
          if (ctrl == 0 || ctrl == 1) continue;  // empty / busy
          const Depth depth = entries[i].depth.load(std::memory_order_relaxed);
          if (depth == kSeedDepthSentinel) continue;  // unvisited seed
          fn(static_cast<LocalVertexId>(ctrl >> 2),
             entries[i].rpid.load(std::memory_order_relaxed), depth);
        }
        seg = seg->next.load(std::memory_order_acquire);
      }
    }
  }

  ReachIndexStats stats() const;

  /// Cheap live estimate of the index's dynamic footprint (12 bytes per
  /// entry, the §4.4 arithmetic): a handful of relaxed shard-counter
  /// loads, no locks. The reach_index_max_bytes budget polls this on the
  /// control-stage hot path — only when that budget is armed.
  std::uint64_t approx_dynamic_bytes() const {
    std::uint64_t entries = 0;
    for (const auto& shard : shards_) {
      entries += shard.entries.load(std::memory_order_relaxed);
    }
    return entries * 12;
  }

  /// Post-run audit: number of (dst, rpid) keys stored more than once
  /// across all segments. The CAS claim protocol guarantees 0; the
  /// differential harness asserts it after every adversarial run. Full
  /// scan — call only when the index is quiescent.
  std::uint64_t duplicate_entries() const;

 private:
  // One slot. `ctrl` is the claim word: kCtrlEmpty -> kCtrlBusy (claimed,
  // key/depth being written) -> ready (occupied-bit | destination vertex).
  // Probers that observe kCtrlBusy spin briefly; the window between claim
  // and publish is two relaxed stores.
  struct Entry {
    std::atomic<std::uint64_t> ctrl;
    std::atomic<std::uint64_t> rpid;
    std::atomic<std::uint32_t> depth;
  };

  struct Segment {
    std::size_t capacity = 0;  // power of two
    bool from_arena = false;
    std::atomic<Segment*> next{nullptr};
    Entry* entries() { return reinterpret_cast<Entry*>(this + 1); }
    const Entry* entries() const {
      return reinterpret_cast<const Entry*>(this + 1);
    }
  };

  struct alignas(64) Shard {
    std::atomic<Segment*> head{nullptr};
    // Per-shard statistics so the hot path never contends on global
    // counters; stats() sums them.
    std::atomic<std::uint64_t> entries{0};
    std::atomic<std::uint64_t> eliminated{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> hot_allocs{0};
    std::atomic<std::uint64_t> reserved_bytes{0};
    std::atomic<std::uint64_t> seeded{0};
    std::atomic<std::uint64_t> seed_hits{0};
  };

  Segment* allocate_segment(std::size_t capacity, bool on_hot_path,
                            Shard& shard);
  Segment* next_segment(Segment* seg, Shard& shard);
  std::byte* arena_take(std::size_t bytes);

  std::size_t num_vertices_;
  std::uint64_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::unique_ptr<std::byte[]> arena_;
  std::size_t arena_size_ = 0;
  std::atomic<std::size_t> arena_used_{0};
};

}  // namespace rpqd
