// The dynamically-built distributed reachability index (§3.5).
//
// Partitioned by destination vertex: every machine holds the index slice
// for its local vertices, so the atomic check-and-update at the RPQ
// control stage is always a local operation (the control stage executes
// at the destination vertex's owner).
//
// Two-level layout, as published:
//   level 1: array of atomic pointers indexed by local destination vertex
//            (vertex ids are dense, so an array beats a map),
//   level 2: a mutex-protected map from 64-bit source path id -> depth,
//            created on first touch via compare-and-swap.
//
// Each entry accounts for 12 bytes (8B source rpid + 4B depth), matching
// the paper's size arithmetic (181MB for Q9, 4.4MB for Q10 on SF100).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rpqd {

/// Result of the atomic check-and-update (§4.4 terminology).
enum class ReachOutcome : std::uint8_t {
  kNew,         // first visit: emit the match and keep exploring
  kEliminated,  // already reached at a lower-or-equal depth: prune
  kDuplicated,  // already reached at a greater depth: update, keep
                // exploring, but do not emit again
};

struct ReachIndexStats {
  std::uint64_t entries = 0;
  std::uint64_t eliminated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dynamic_bytes = 0;  // 12 bytes per entry
};

class ReachabilityIndex {
 public:
  /// `preallocate` creates every second-level map eagerly — the §4.5
  /// future-work idea of trading memory for allocation-free inserts.
  explicit ReachabilityIndex(std::size_t num_local_vertices,
                             bool preallocate = false);
  ~ReachabilityIndex();

  ReachabilityIndex(const ReachabilityIndex&) = delete;
  ReachabilityIndex& operator=(const ReachabilityIndex&) = delete;

  /// Atomic check-and-update for path (src_rpid -> dst) observed at
  /// `depth`. Thread-safe; called concurrently by all local workers.
  ReachOutcome check_and_update(LocalVertexId dst, std::uint64_t src_rpid,
                                Depth depth);

  /// Point lookup (tests / debugging).
  std::optional<Depth> lookup(LocalVertexId dst, std::uint64_t src_rpid) const;

  ReachIndexStats stats() const;

 private:
  struct SecondLevel {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Depth> entries;
  };

  SecondLevel* get_or_create(LocalVertexId dst);

  std::vector<std::atomic<SecondLevel*>> level1_;
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> eliminated_{0};
  std::atomic<std::uint64_t> duplicated_{0};
};

}  // namespace rpqd
