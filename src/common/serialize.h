// Binary serialization used for cross-machine messages.
//
// Everything that crosses a (simulated) machine boundary in RPQd goes
// through these writers/readers, so the distributed code paths exercise
// real encode/decode work exactly like the paper's engine does over
// InfiniBand. Encoding is little-endian, fixed-width for POD scalars plus
// LEB128 varints for counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace rpqd {

/// ZigZag maps small-magnitude signed values (delta encoding produces
/// them in both directions) to small unsigned ones so they varint well.
constexpr std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

/// Appends binary data to a caller-provided byte vector.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto offset = out_.size();
    out_.resize(offset + sizeof(T));
    std::memcpy(out_.data() + offset, &value, sizeof(T));
  }

  /// LEB128 unsigned varint.
  void write_varint(std::uint64_t value) {
    while (value >= 0x80) {
      out_.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
      value >>= 7;
    }
    out_.push_back(static_cast<std::byte>(value));
  }

  /// ZigZag signed varint.
  void write_varint_signed(std::int64_t value) {
    write_varint(zigzag_encode(value));
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    const auto offset = out_.size();
    out_.resize(offset + s.size());
    std::memcpy(out_.data() + offset, s.data(), s.size());
  }

  void write_bytes(std::span<const std::byte> bytes) {
    const auto offset = out_.size();
    out_.resize(offset + bytes.size());
    std::memcpy(out_.data() + offset, bytes.data(), bytes.size());
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Reads binary data from a byte span. Throws EngineError on underflow,
/// so malformed messages cannot silently corrupt execution state.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    engine_check(pos_ + sizeof(T) <= data_.size(), "serialized read overflow");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::uint64_t read_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      engine_check(pos_ < data_.size(), "varint read overflow");
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      engine_check(shift < 64, "varint too long");
    }
    return value;
  }

  std::int64_t read_varint_signed() { return zigzag_decode(read_varint()); }

  std::string read_string() {
    const auto n = read_varint();
    engine_check(pos_ + n <= data_.size(), "string read overflow");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace rpqd
