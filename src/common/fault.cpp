#include "common/fault.h"

#include "common/error.h"

namespace rpqd {

FaultPlan FaultPlan::named(std::string_view name, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (name == "none") {
    return plan;
  }
  if (name == "reorder") {
    plan.delay_prob = 0.5;
    plan.delay_window = 8;
    return plan;
  }
  if (name == "dup-storm") {
    plan.dup_data_prob = 0.5;
    plan.dup_done_prob = 0.5;
    plan.dup_term_prob = 0.5;
    return plan;
  }
  if (name == "credit-jitter") {
    plan.done_delay_prob = 0.6;
    plan.done_delay_window = 6;
    plan.delay_prob = 0.1;
    plan.delay_window = 3;
    return plan;
  }
  if (name == "slow-machine") {
    plan.slow_machine_fraction = 0.5;
    plan.stall_prob = 0.25;
    plan.stall_max_us = 150;
    return plan;
  }
  if (name == "chaos") {
    plan.delay_prob = 0.35;
    plan.delay_window = 6;
    plan.done_delay_prob = 0.35;
    plan.done_delay_window = 4;
    plan.dup_data_prob = 0.25;
    plan.dup_done_prob = 0.25;
    plan.dup_term_prob = 0.25;
    plan.slow_machine_fraction = 0.4;
    plan.stall_prob = 0.1;
    plan.stall_max_us = 100;
    return plan;
  }
  if (name == "crash-stop") {
    plan.crash_machine = -2;  // seed-selected at Network::set_fault_plan
    plan.crash_tick = 2 + fault_hash(seed, 0, kFaultSaltCrash) % 40;
    return plan;
  }
  if (name == "loss") {
    plan.loss_rate = 0.05;
    plan.loss_classes = kFaultClassAll;
    return plan;
  }
  if (name == "corrupt-storm") {
    plan.corrupt_rate = 0.4;
    plan.corrupt_classes = kFaultClassAll;
    return plan;
  }
  if (name == "lossy-chaos") {
    plan.loss_rate = 0.05;
    plan.corrupt_rate = 0.05;
    plan.delay_prob = 0.25;
    plan.delay_window = 4;
    plan.dup_data_prob = 0.2;
    plan.dup_done_prob = 0.2;
    plan.dup_term_prob = 0.2;
    plan.crash_machine = -2;
    plan.crash_tick = 2 + fault_hash(seed, 0, kFaultSaltCrash) % 40;
    return plan;
  }
  throw QueryError("unknown fault schedule: " + std::string(name));
}

std::vector<std::string> FaultPlan::schedule_names() {
  return {"none",          "reorder",      "dup-storm",   "credit-jitter",
          "slow-machine",  "chaos",        "crash-stop",  "loss",
          "corrupt-storm", "lossy-chaos"};
}

}  // namespace rpqd
