// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Logging defaults to kWarn so benchmark output stays clean; tests and the
// examples raise the level when diagnosing behaviour.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace rpqd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace log_internal {
std::atomic<int>& level_ref();
void emit(LogLevel level, const std::string& message);
}  // namespace log_internal

inline void set_log_level(LogLevel level) {
  log_internal::level_ref().store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         log_internal::level_ref().load(std::memory_order_relaxed);
}

/// Streams a single log line; the line is emitted atomically on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_internal::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define RPQD_LOG(level)                     \
  if (!::rpqd::log_enabled(level)) {        \
  } else                                    \
    ::rpqd::LogLine(level)

#define RPQD_DEBUG RPQD_LOG(::rpqd::LogLevel::kDebug)
#define RPQD_INFO RPQD_LOG(::rpqd::LogLevel::kInfo)
#define RPQD_WARN RPQD_LOG(::rpqd::LogLevel::kWarn)
#define RPQD_ERROR RPQD_LOG(::rpqd::LogLevel::kError)

}  // namespace rpqd
