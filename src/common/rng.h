// Deterministic pseudo-random number generation for the synthetic graph
// generators and the property-based tests.
//
// We use xoshiro256** — fast, high quality, and trivially seedable so every
// experiment in EXPERIMENTS.md is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace rpqd {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state deterministically from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    // Expand the seed with splitmix64, as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed = mix64(seed);
      word = seed;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased variant is
    // fine for workload synthesis; bias is < 2^-64 * bound).
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Samples from a (truncated) zipf-like distribution over [0, n): used to
/// give the synthetic LDBC graphs their power-law reply trees and degree
/// skew. `skew` ~1.0 resembles social-network degree distributions.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rpqd
