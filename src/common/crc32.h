// CRC32 (ISO-HDLC polynomial, the zlib/PNG one) over message payloads.
//
// The reliable-delivery layer (DESIGN.md §13) stamps every sequenced
// message with a payload checksum at send time; the receiving inbox
// recomputes it and treats a mismatch exactly like a lost message — the
// corrupted copy is dropped and the sender's retransmission timer
// recovers it. Software table implementation: the fabric is simulated,
// so a few cycles per byte is far below the noise floor, and keeping it
// dependency-free matters more than SSE4 crc32c throughput.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace rpqd {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC32 of `data` (initial value 0, standard pre/post inversion).
inline std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (const std::byte b : data) {
    c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^
        (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace rpqd
