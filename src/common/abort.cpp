#include "common/abort.h"

namespace rpqd {

const char* to_string(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone: return "none";
    case AbortReason::kUserCancel: return "user-cancel";
    case AbortReason::kDeadline: return "deadline";
    case AbortReason::kContextBudget: return "context-budget";
    case AbortReason::kReachIndexBudget: return "reach-index-budget";
    case AbortReason::kNestingBudget: return "nesting-budget";
    case AbortReason::kMachineFailure: return "machine-failure";
    case AbortReason::kDepthTruncated: return "depth-truncated";
    case AbortReason::kAdmissionReject: return "admission-reject";
  }
  return "?";
}

bool abort_reason_retryable(AbortReason reason) {
  switch (reason) {
    case AbortReason::kMachineFailure:
    case AbortReason::kContextBudget:
    case AbortReason::kNestingBudget:
    // A queue-full admission reject is load-dependent: by the time a
    // retry resubmits, in-flight queries have drained. (A budget-based
    // reject is deterministic, but it is reported before any run burns
    // resources, so the blanket retryable answer is still safe.)
    case AbortReason::kAdmissionReject:
      return true;
    default:
      return false;
  }
}

}  // namespace rpqd
