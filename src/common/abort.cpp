#include "common/abort.h"

namespace rpqd {

const char* to_string(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone: return "none";
    case AbortReason::kUserCancel: return "user-cancel";
    case AbortReason::kDeadline: return "deadline";
    case AbortReason::kContextBudget: return "context-budget";
    case AbortReason::kReachIndexBudget: return "reach-index-budget";
    case AbortReason::kNestingBudget: return "nesting-budget";
    case AbortReason::kMachineFailure: return "machine-failure";
    case AbortReason::kDepthTruncated: return "depth-truncated";
  }
  return "?";
}

bool abort_reason_retryable(AbortReason reason) {
  switch (reason) {
    case AbortReason::kMachineFailure:
    case AbortReason::kContextBudget:
    case AbortReason::kNestingBudget:
      return true;
    default:
      return false;
  }
}

}  // namespace rpqd
