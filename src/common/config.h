// Engine configuration.
//
// Field defaults mirror the paper's experimental settings (§4.1), scaled
// down from a 16×36-core InfiniBand cluster to a simulated cluster inside
// one process: the *ratios* between buffers, stages, and depths are kept,
// the absolute sizes are smaller.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/fault.h"
#include "common/types.h"

namespace rpqd {

struct EngineConfig {
  /// Number of simulated machines in the cluster. The paper uses 4–16.
  unsigned num_machines = 4;

  /// Worker threads per machine executing traversals. The paper uses 34
  /// (36 cores minus two messaging threads); we default to 2 because the
  /// simulation multiplexes every machine onto one host.
  unsigned workers_per_machine = 2;

  /// Message buffers per machine available to flow control. The paper
  /// uses 8192 buffers of 256KB (~2GB of intermediate results / machine).
  unsigned buffers_per_machine = 1024;

  /// Payload bytes per message buffer. The paper uses 256KB; we default
  /// to 8KB so that small test graphs still exercise multi-buffer flows.
  std::size_t buffer_bytes = 8 * 1024;

  /// RPQ flow control: depths [0, rpq_preallocated_depth) get dedicated
  /// per-(stage,machine,depth) buffer credits (paper: depth four).
  Depth rpq_preallocated_depth = 4;

  /// Shared message credits per path stage for depths beyond the
  /// preallocated window (paper: five).
  unsigned rpq_shared_credits_per_stage = 5;

  /// Extra overflow credits added per observed depth beyond the window,
  /// preventing the livelock described in §3.3 (paper: one per depth).
  unsigned rpq_overflow_credits_per_depth = 1;

  /// Execution contexts are preallocated up to this RPQ depth and grown
  /// dynamically past it (paper: three).
  Depth context_preallocated_depth = 3;

  /// Toggles the reachability index (§3.5). Disabling it reproduces the
  /// "without index" series of Figure 3; only safe on acyclic expansions.
  bool use_reachability_index = true;

  /// Pre/bulk-allocates the index's second-level maps (§4.5 future work:
  /// trade memory for allocation-free inserts on the hot path).
  bool reach_index_preallocate = false;

  /// When false, inbound data messages are processed FIFO instead of the
  /// paper's deepest-depth / latest-stage priority (§3.2) — an ablation
  /// knob for the messaging design choice.
  bool deep_message_priority = true;

  /// Safety valve for RPQ exploration when the reachability index is
  /// disabled on a cyclic graph. kUnboundedDepth means "no cap".
  Depth max_exploration_depth = kUnboundedDepth;

  /// Maximum nesting of message processing while blocked on flow-control
  /// credits (pickup rule iii of §3.2). Nested processing is what keeps
  /// the cluster live when every worker is blocked on credits, so the cap
  /// is generous; it only bounds C++ stack growth.
  unsigned max_pickup_nesting = 1024;

  // ---- query lifecycle budgets (common/abort.h) --------------------------
  // Each knob is off at 0. Exceeding one converts the query into a clean
  // cooperative abort (QueryResult{aborted, reason}) rather than an
  // unbounded run; the Database stays fully reusable afterwards.

  /// Wall-clock deadline for one query; a monitor thread converts an
  /// overrun into an AbortReason::kDeadline abort.
  std::uint64_t query_deadline_ms = 0;

  /// Per-machine ceiling on simultaneously-live execution frames (the
  /// termination detector's pending-work unit). Exceeding it trips
  /// AbortReason::kContextBudget. Peaks are surfaced in QueryStats /
  /// QueryProfile whether or not the budget is armed.
  std::uint64_t max_live_contexts = 0;

  /// Per-machine ceiling on the reachability index's dynamic bytes
  /// (12 bytes/entry, §4.4 arithmetic) — the §3.5 structure grows
  /// unboundedly on deep RPQs. Trips AbortReason::kReachIndexBudget.
  std::uint64_t reach_index_max_bytes = 0;

  /// A worker starved of credits at the max_pickup_nesting cap for this
  /// long trips AbortReason::kNestingBudget instead of eventually taking
  /// an unbounded emergency credit (the 5s valve stays for workers below
  /// the cap). Must be below that valve to be effective; 0 disables.
  std::uint64_t flow_starvation_abort_ms = 2000;

  /// Shards of the reachability index's second-level map per machine.
  unsigned reach_index_shards = 16;

  /// aDFS-style dynamic parallelization (§5 future work, following the
  /// cited aDFS paper): a worker whose machine has idle peers offloads
  /// local child traversals into a machine-local task queue instead of
  /// recursing, so long sequential subtrees spread across workers.
  bool adfs_work_sharing = false;

  /// Cap on queued shared tasks per machine (bounds their memory).
  unsigned adfs_queue_limit = 256;

  /// Per-query profiling (runtime/profile.h): collects the
  /// per-(stage, machine, depth) QueryProfile tree alongside results.
  /// Off by default; the disabled mode costs one predictable branch per
  /// hook and performs zero profile allocations (asserted by tests).
  /// A `PROFILE `-prefixed PGQL query enables it for that query only.
  bool profile = false;

  /// Depth rows preallocated per (worker, stage) profile slot; depths
  /// beyond it grow geometrically (a counted, off-hot-path allocation).
  Depth profile_preallocated_depths = 64;

  /// Per-query credit partition for concurrent serving (§3.3 extension):
  /// this query's FlowControl is built over
  /// `buffers_per_machine * credit_partition_share` buffers (and the
  /// RPQ shared pool scaled the same way), so simultaneously-running
  /// queries draw from disjoint slices of each machine's buffer memory —
  /// a deep query can exhaust only its own partition, never a cheap
  /// neighbor's. 1.0 = the whole machine (single-query mode). Every
  /// partition keeps the §3.3 progress floor of two credits per
  /// (stage, destination) slot, so a small share throttles but never
  /// wedges a query. Set by the QueryScheduler at dispatch; the
  /// scheduler's `min_credit_share` is the fairness knob that bounds it
  /// from below.
  double credit_partition_share = 1.0;

  // ---- cross-query caching (DESIGN.md §11) -------------------------------
  // Both caches default OFF (0 bytes): every existing single-query and
  // concurrent-serving behavior is bit-identical until a budget is set.

  /// Per-machine byte budget of the cross-query reachability cache:
  /// (automaton-group hash, source, destination, depth) facts harvested
  /// from completed runs and seeded into later runs' reachability indexes
  /// as inert sentinels (48 bytes/entry accounting, LRU eviction,
  /// epoch-based invalidation). 0 disables seeding and harvesting.
  std::uint64_t reach_cache_max_bytes = 0;

  /// Byte budget of the full result cache keyed by normalized PGQL text
  /// (pgql/normalize.h). Repeated asks of the same normalized query
  /// return the cached QueryResult; concurrent identical asks coalesce
  /// behind one leader execution (single-flight). 0 disables.
  std::uint64_t result_cache_max_bytes = 0;

  /// Largest single result admitted into the result cache; oversized
  /// results execute normally but are never cached. 0 = auto
  /// (result_cache_max_bytes / 8).
  std::uint64_t result_cache_admit_max_bytes = 0;

  /// Harvest reachability facts from clean (non-aborted, non-truncated)
  /// runs back into the cross-query cache. Disable to run the cache
  /// read-only (seed from whatever is cached, never write back).
  bool reach_cache_harvest = true;

  // ---- online updates (DESIGN.md §12) ------------------------------------

  /// Auto-merge trigger: after Database::apply_update, when the snapshot
  /// holds at least this many delta adjacency entries, the deltas are
  /// folded into a fresh flat base (Database::merge_deltas). 0 = merge
  /// only on explicit request. A merge keeps the epoch — it changes the
  /// representation, never the visible graph — but flushes the
  /// reachability caches (partition rebuild remaps local vertex ids).
  std::uint64_t delta_merge_entries = 0;

  // ---- reliable delivery over a lossy fabric (DESIGN.md §13) -------------
  // The reliability layer (per-link seq + acks + retransmission + CRC32)
  // arms automatically when fault_plan.lossy(); `reliable_transport`
  // forces it on over a healthy fabric (the 0%-loss overhead bench and
  // a forward-compatibility switch for real sockets). When off and the
  // plan is not lossy, the transport is byte-for-byte the pre-§13 one.

  /// Force the reliable-delivery machinery on even without loss faults.
  bool reliable_transport = false;

  /// Retransmission attempts per message before the link is declared
  /// dead and the run escalates to AbortReason::kMachineFailure. Any ack
  /// progress on a link refunds the budget of its remaining in-flight
  /// messages (pump ticks advance at wildly different rates on busy vs
  /// idle machines, so raw attempt counts only condemn links that make
  /// no progress at all). Sized so a merely-lossy link is never
  /// mistaken for a dead one: each attempt rolls fresh dice, so the
  /// chance a live link eats the whole budget is loss_rate^60 —
  /// negligible even at 80% sustained loss (~1e-6). Tests that want
  /// fast dead-link detection configure a small budget explicitly.
  unsigned max_retransmits = 60;

  /// Base retransmission timeout in pump ticks (one tick per worker
  /// main-loop / credit-wait iteration, cluster-global; idle workers
  /// burst-pump so ticks track wall pace while the cluster drains).
  /// Doubles per attempt (capped at 16x) plus a seeded jitter term.
  unsigned retransmit_timeout_ticks = 128;

  /// A receiver owing an ack for longer than this many pump ticks emits
  /// a standalone kAck instead of waiting for reverse traffic to
  /// piggyback on.
  unsigned ack_idle_ticks = 16;

  // ---- skew-aware load balancing (DESIGN.md §14) -------------------------
  // Both knobs default OFF: the traversal and flush hot paths stay
  // byte-identical to §13 until a caller arms them. Results are invariant
  // either way — the differential harness asserts it.

  /// Delegated hot-vertex fan-out: when the pinned snapshot carries a
  /// MirrorSet (Database::set_hot_vertices), a kNeighbor frame on a hot
  /// vertex sends ONE mirror-expand message per peer machine with a
  /// non-empty bucket instead of one context per remote neighbor; each
  /// peer enumerates its pre-bucketed slice locally. Hops with edge
  /// filters always enumerate normally (they need the owner's EvalCtx).
  bool hot_mirror_fanout = false;

  /// Load-aware flush ordering: idle-path buffer flushes ship toward the
  /// machine with the shallowest inbox backlog first (LoadBoard signal).
  /// Ordering only — never drops, reroutes, or re-owns a context.
  bool load_aware_flush = false;

  /// Deterministic seed for any randomized tie-breaking.
  std::uint64_t seed = 42;

  /// Fault-injection schedule applied to the simulated fabric (see
  /// common/fault.h). Default-constructed = no faults, zero overhead.
  /// Results must be invariant under any plan — the differential test
  /// harness asserts this against the reference oracle.
  FaultPlan fault_plan;
};

}  // namespace rpqd
