// Thread-safe queues used by the simulated network layer.
//
// The receiver thread of each machine pushes inbound buffers into per-stage
// queues; workers pop eagerly with the stage/depth priority described in
// Section 3.2 of the paper. These queues favour simplicity and correctness
// (mutex + condition variable) over lock-free cleverness — contention is
// low because messages are batched into large buffers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rpqd {

/// Unbounded multi-producer multi-consumer FIFO.
template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop; returns nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Blocking pop with a predicate-based shutdown: returns nullopt once
  /// `closed` was observed and the queue is drained.
  std::optional<T> pop_or_wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rpqd
