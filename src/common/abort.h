// Cooperative query-abort protocol (the lifecycle-hardening pillar).
//
// A query dies for one of a small set of reasons — user cancellation, a
// deadline, a resource budget, or a crash-stop machine failure — and in
// every case the cluster must converge to the same quiescent state the
// healthy termination protocol guarantees: all flow-control credits
// returned, no contexts leaked, every inbox drained, and the Database
// reusable for the next query.
//
// The AbortController is the per-query coordinator-side record: the
// first `request()` wins and fixes the abort reason (a CAS, so
// concurrent budget trips, deadline fires, and user cancels race
// safely). Propagation to the machines is NOT through this object — the
// winner broadcasts a kAbort control message (net/message.h) and each
// machine halts when its own inbox observes it, mirroring how a real
// cluster would learn of the abort over the wire. The controller is
// what the engine reads back to stamp QueryResult{aborted, reason}.
//
// `note_truncation` rides the same channel for a softer signal: the
// max_exploration_depth safety valve clips subtrees without killing the
// query, and the result must say so (a truncated partial answer used to
// be indistinguishable from a complete one).
#pragma once

#include <atomic>
#include <cstdint>

namespace rpqd {

enum class AbortReason : std::uint8_t {
  kNone = 0,
  kUserCancel,        // Database::cancel_all
  kDeadline,          // EngineConfig::query_deadline_ms exceeded
  kContextBudget,     // EngineConfig::max_live_contexts exceeded
  kReachIndexBudget,  // EngineConfig::reach_index_max_bytes exceeded
  kNestingBudget,     // starved at the max_pickup_nesting cap
  kMachineFailure,    // crash-stop machine (FaultPlan crash mode)
  kDepthTruncated,    // not an abort: max_exploration_depth clipped results
  kAdmissionReject,   // never ran: the QueryScheduler refused admission
                      // (queue full / a global budget can never fit it);
                      // the typed sub-reason is on the QueryTicket
};

const char* to_string(AbortReason reason);

/// True for aborts a retry can plausibly cure: a machine failure (the
/// FaultPlan crash arms one run only, like a replacement machine joining)
/// and scheduling-dependent budget trips. Deadlines, user cancels, and
/// the reach-index ceiling are deterministic — retrying burns the same
/// budget again.
bool abort_reason_retryable(AbortReason reason);

class AbortController {
 public:
  /// Cheap poll (one relaxed load); hot paths check this.
  bool armed() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(AbortReason::kNone);
  }

  AbortReason reason() const {
    return static_cast<AbortReason>(reason_.load(std::memory_order_acquire));
  }

  /// First caller wins and fixes the reason; returns whether this call
  /// won (the winner is responsible for broadcasting the kAbort message).
  bool request(AbortReason reason) {
    std::uint8_t expected = static_cast<std::uint8_t>(AbortReason::kNone);
    return reason_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Depth-cap truncation: the run continues, but the result is partial.
  void note_truncation() {
    truncated_.store(true, std::memory_order_relaxed);
  }
  bool truncated() const {
    return truncated_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint8_t> reason_{
      static_cast<std::uint8_t>(AbortReason::kNone)};
  std::atomic<bool> truncated_{false};
};

}  // namespace rpqd
