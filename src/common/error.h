// Error hierarchy for RPQd.
//
// Following the C++ Core Guidelines (E.2), errors that cannot be handled
// locally are reported with exceptions. Queries that fail to parse or plan
// throw QueryError; internal invariant violations throw EngineError.
#pragma once

#include <stdexcept>
#include <string>

namespace rpqd {

/// Base class of all RPQd exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A user-supplied query is malformed (lexing, parsing, or semantic
/// analysis failure). The message contains the offending position.
class QueryError : public Error {
 public:
  using Error::Error;
};

/// The query is well-formed but uses a feature outside the supported
/// PGQL subset (Section 2 of the paper lists similar restrictions).
class UnsupportedError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation — indicates a bug in the engine.
class EngineError : public Error {
 public:
  using Error::Error;
};

/// Throws EngineError when `condition` is false. Used for cheap internal
/// invariant checks that must also hold in release builds.
inline void engine_check(bool condition, const char* what) {
  if (!condition) throw EngineError(std::string("engine invariant: ") + what);
}

}  // namespace rpqd
