// Fundamental identifier and scalar types shared across all RPQd modules.
//
// The engine follows the paper's conventions: vertices carry 64-bit global
// ids, machines and workers are small integers that fit the rpid encoding
// of Section 3.5 (8 bits each), and RPQ depths are bounded 32-bit counters.
#pragma once

#include <cstdint>
#include <limits>

namespace rpqd {

/// Global vertex identifier, unique across the whole distributed graph.
using VertexId = std::uint64_t;
/// Local vertex index within one machine's partition.
using LocalVertexId = std::uint32_t;
/// Global edge identifier.
using EdgeId = std::uint64_t;
/// Identifier of a machine in the (simulated) cluster. 8 bits per §3.5.
using MachineId = std::uint8_t;
/// Identifier of a worker thread within one machine. 8 bits per §3.5.
using WorkerId = std::uint8_t;
/// Dictionary-encoded label identifier (vertex or edge label).
using LabelId = std::uint16_t;
/// Dictionary-encoded property key identifier.
using PropId = std::uint16_t;
/// RPQ exploration depth (number of completed path-pattern iterations).
using Depth = std::uint32_t;
/// Index of a stage in the distributed execution-plan automaton.
using StageId = std::uint16_t;
/// Index of a slot in an execution context.
using SlotId = std::uint16_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr LocalVertexId kInvalidLocalVertex =
    std::numeric_limits<LocalVertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr PropId kInvalidProp = std::numeric_limits<PropId>::max();
inline constexpr StageId kInvalidStage = std::numeric_limits<StageId>::max();
inline constexpr SlotId kInvalidSlot = std::numeric_limits<SlotId>::max();

/// Sentinel used for unbounded RPQ quantifiers (`*`, `+`, `{n,}`).
inline constexpr Depth kUnboundedDepth = std::numeric_limits<Depth>::max();

/// Direction of an edge traversal relative to the current vertex.
enum class Direction : std::uint8_t {
  kOut,   ///< follow outgoing edges: (x) -> (y)
  kIn,    ///< follow incoming edges: (x) <- (y)
  kBoth,  ///< undirected match: (x) - (y)
};

/// Returns the opposite traversal direction (kBoth is its own opposite).
constexpr Direction reverse(Direction d) {
  switch (d) {
    case Direction::kOut: return Direction::kIn;
    case Direction::kIn: return Direction::kOut;
    case Direction::kBoth: return Direction::kBoth;
  }
  return Direction::kBoth;
}

}  // namespace rpqd
