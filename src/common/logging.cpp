#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace rpqd::log_internal {

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

void emit(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  static const char* const names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[rpqd %s] %s\n",
               names[static_cast<int>(level)], message.c_str());
}

}  // namespace rpqd::log_internal
