// Hashing helpers: a strong 64-bit mixer (splitmix64 finalizer) used for
// partitioning vertices across machines and for the reachability-index
// shard selection, plus a generic hash_combine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace rpqd {

/// splitmix64 finalizer: fast, well-distributed 64-bit mixing.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash value into a seed (boost-style).
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
          (seed >> 2);
}

}  // namespace rpqd
