// Deterministic fault-injection plan for the simulated cluster fabric.
//
// A FaultPlan makes the simulated interconnect hostile on purpose: data
// messages can be held back and reordered, DONE credit returns can be
// jittered, messages can be duplicated (bounded: at most one extra copy),
// and a seed-selected subset of machines can be slowed down. Every
// decision is a pure function of (plan seed, message sequence number /
// machine id), so a fault schedule is fully described by its name and a
// single uint64 seed — the replay key printed by the differential test
// harness on failure.
//
// Jitter-only plans leave the fabric *reliable*: duplicated data and DONE
// messages are filtered by a receiver-side sequence-number dedup (the
// simulation's stand-in for the reliable-connection transport the paper's
// InfiniBand deployment gets in hardware), so the engine still observes
// exactly-once delivery — just late, reordered, and slow. Termination
// status broadcasts are deliberately NOT deduplicated: the §3.4 protocol
// must tolerate duplicated and stale statuses on its own.
//
// Plans with `loss_rate` / `corrupt_rate` set drop the reliability
// pretense: each transmission attempt can vanish or have a payload byte
// flipped. Arming either knob switches the Network onto the reliable
// delivery layer (DESIGN.md §13) — per-link sequence numbers, cumulative
// + selective acks, CRC32 checksums, and retransmission with seeded
// exponential backoff — which restores exactly-once delivery or, when a
// link stays dead past the retransmit budget, escalates into the typed
// machine-failure abort path instead of hanging. Loss and corruption
// decisions are keyed on a per-transmission-attempt id (never the
// message's own seq), so a retransmitted copy rolls fresh dice.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace rpqd {

struct FaultPlan {
  /// Replay key: all per-message decisions derive from this seed.
  std::uint64_t seed = 1;

  /// Data-message delay: with probability `delay_prob`, an arriving data
  /// message is held in the inbox's limbo for 1..delay_window pickup
  /// ticks before becoming visible, reordering it behind later arrivals.
  double delay_prob = 0.0;
  unsigned delay_window = 0;

  /// Credit-return jitter: DONE messages (flow-control credit returns)
  /// held back the same way, delaying the sender's credit refresh.
  double done_delay_prob = 0.0;
  unsigned done_delay_window = 0;

  /// Bounded duplication (one extra copy) per message class. Data/DONE
  /// duplicates are absorbed by the transport dedup; termination-status
  /// duplicates are delivered to the protocol.
  double dup_data_prob = 0.0;
  double dup_done_prob = 0.0;
  double dup_term_prob = 0.0;

  /// Machine slowdown: each machine is independently selected as "slow"
  /// with probability `slow_machine_fraction` (derived from the seed and
  /// the machine id); slow machines stall for up to `stall_max_us`
  /// microseconds on a `stall_prob` fraction of message pickups.
  double slow_machine_fraction = 0.0;
  double stall_prob = 0.0;
  unsigned stall_max_us = 0;

  /// Crash-stop failure: one machine dies when its inbox's pickup-tick
  /// clock reaches `crash_tick` — from then on it executes nothing, its
  /// inbox blackholes data (the transport synthesizes DONE completions,
  /// like an RDMA QP error), and the engine converts the wedged query
  /// into an AbortReason::kMachineFailure abort instead of a hang.
  /// -1 = off, -2 = seed-selected machine, >= 0 = that machine.
  int crash_machine = -1;
  std::uint64_t crash_tick = 0;
  /// Which run since arming crashes (crash-stop is a one-shot failure:
  /// the engine stamps `run_index` per executed query, so retries of the
  /// failed query run against a healthy cluster — the simulation of a
  /// replacement machine having joined).
  std::uint64_t crash_run = 0;
  /// Stamped by the engine on each run; NOT part of the replay key.
  std::uint64_t run_index = 0;

  /// Message loss / payload corruption, rolled independently per
  /// transmission attempt (originals, injected duplicates, and
  /// retransmissions each roll their own dice). `loss_classes` /
  /// `corrupt_classes` restrict the fault to a subset of message classes
  /// (kFaultClass* bits below) so a schedule can, e.g., drop only DONE
  /// credit returns. A corrupted payload is detected by the receiver's
  /// CRC32 check and dropped, so corruption is observably identical to
  /// loss — it just also exercises the checksum path.
  double loss_rate = 0.0;
  double corrupt_rate = 0.0;
  unsigned loss_classes = 0x1f;
  unsigned corrupt_classes = 0x1f;

  bool crash_enabled() const { return crash_machine != -1; }

  /// True when the fabric can drop or corrupt messages — this is what
  /// arms the reliable delivery layer (independently of `any()`, which
  /// governs the jitter/dup/crash machinery and its seq stamping).
  bool lossy() const { return loss_rate > 0.0 || corrupt_rate > 0.0; }

  /// True when any knob is active (the fabric's fast path checks this
  /// once per call; a default plan adds no overhead).
  bool any() const {
    return delay_prob > 0.0 || done_delay_prob > 0.0 || dup_data_prob > 0.0 ||
           dup_done_prob > 0.0 || dup_term_prob > 0.0 ||
           crash_enabled() ||
           (slow_machine_fraction > 0.0 && stall_prob > 0.0 &&
            stall_max_us > 0);
  }

  /// Named schedules used by the differential harness and CLI tooling:
  ///   "none"          all knobs off
  ///   "reorder"       aggressive data-message delay/reorder
  ///   "dup-storm"     duplication of data, DONE, and status messages
  ///   "credit-jitter" DONE returns delayed, mild data delay
  ///   "slow-machine"  half the machines stall on pickups
  ///   "chaos"         everything at once
  ///   "crash-stop"    a seed-selected machine dies early in the run
  ///   "loss"          5% of every transmission attempt vanishes
  ///   "corrupt-storm" 40% of payloads get a byte flipped in flight
  ///   "lossy-chaos"   loss + corruption + reorder + dup + crash-stop
  /// Throws QueryError on an unknown name.
  static FaultPlan named(std::string_view name, std::uint64_t seed);

  /// All valid schedule names, in the order listed above.
  static std::vector<std::string> schedule_names();
};

/// Per-decision hash: mixes the plan seed, a message-scoped key (sequence
/// number or machine id), and a salt identifying the decision kind.
inline std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t key,
                                std::uint64_t salt) {
  return mix64(seed ^ mix64(key + 0x9e3779b97f4a7c15ULL * salt));
}

/// Bernoulli trial on the upper bits of a fault hash.
inline bool fault_roll(std::uint64_t hash, double prob) {
  if (prob <= 0.0) return false;
  return static_cast<double>(hash >> 11) * 0x1.0p-53 < prob;
}

// Decision salts (one per independent fault decision).
inline constexpr std::uint64_t kFaultSaltDelay = 1;
inline constexpr std::uint64_t kFaultSaltDelayTicks = 2;
inline constexpr std::uint64_t kFaultSaltDup = 3;
inline constexpr std::uint64_t kFaultSaltSlowMachine = 4;
inline constexpr std::uint64_t kFaultSaltStall = 5;
inline constexpr std::uint64_t kFaultSaltStallTicks = 6;
inline constexpr std::uint64_t kFaultSaltCrash = 7;
inline constexpr std::uint64_t kFaultSaltLoss = 8;
inline constexpr std::uint64_t kFaultSaltCorrupt = 9;
inline constexpr std::uint64_t kFaultSaltCorruptByte = 10;
inline constexpr std::uint64_t kFaultSaltRetransmit = 11;

// Message-class bits for FaultPlan::loss_classes / corrupt_classes.
inline constexpr unsigned kFaultClassData = 1u << 0;
inline constexpr unsigned kFaultClassDone = 1u << 1;
inline constexpr unsigned kFaultClassTermination = 1u << 2;
inline constexpr unsigned kFaultClassAbort = 1u << 3;
inline constexpr unsigned kFaultClassAck = 1u << 4;
inline constexpr unsigned kFaultClassAll = 0x1f;

}  // namespace rpqd
