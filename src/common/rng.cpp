#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace rpqd {

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace rpqd
