// Simulated cluster fabric: per-machine inboxes with the paper's pickup
// priority, and a Network object that models the interconnect.
//
// Delivery is a thread-safe push into the destination inbox — the
// simulation's stand-in for the paper's InfiniBand + dedicated receiver
// threads. DONE messages are handled at delivery time (credits return to
// the local FlowControl immediately, as a receiver thread would do);
// data messages queue in a priority heap ordered by (depth desc, stage
// desc), implementing §3.2's "larger depth first, later stage first";
// termination broadcasts queue separately and are drained by idle workers.
//
// Fault injection (common/fault.h): under an active FaultPlan the fabric
// becomes adversarial-but-reliable. Network::send stamps every message
// with a unique sequence number and may deliver a bounded duplicate;
// the receiving inbox dedups data/DONE messages by seq (the transport's
// exactly-once guarantee) and may divert them into a "limbo" buffer for
// 1..window pickup ticks, reordering deliveries and jittering credit
// returns. A pickup tick is one try_pop_data call — the clock every
// worker advances whenever it polls, so limbo always drains as long as
// the query is live. Termination statuses are duplicated verbatim (never
// deduped or delayed): the §3.4 protocol must tolerate them by itself.
//
// Reliable delivery (DESIGN.md §13): when the plan is lossy() — or
// EngineConfig::reliable_transport forces it — the fabric can drop or
// corrupt transmission attempts, and the Network layers a reliable
// transport on top: per-link monotone sequence numbers with a
// sender-side unacked ring, CRC32 payload checksums (a corrupt copy is
// detected and dropped, observably identical to loss), cumulative +
// selective acks piggybacked on reverse traffic (standalone kAck after
// an idle timeout), and retransmission with seeded exponential backoff
// driven by the pump tick clock. A link whose messages exhaust
// max_retransmits with zero ack progress is declared dead and escalates
// into the AbortReason::kMachineFailure path — a typed retryable abort,
// never a hang. Pump ticks advance only inside Network::pump, which
// every worker calls once per main-loop / credit-wait iteration; any
// live worker services every link's timers and every inbox's owed acks
// (shared-memory simulation: thread identity is already blurred — the
// sender's thread executes the receiver's push).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/abort.h"
#include "common/fault.h"
#include "common/queue.h"
#include "net/flow_control.h"
#include "net/message.h"

namespace rpqd {

// Concurrency audit (concurrent multi-query serving): every counter in
// NetStats is per-QUERY by construction — the engine builds one Network
// (and therefore one NetStats, one Inbox set, one FlowControl set) per
// run, and concurrent queries never share a Network. Nothing here may be
// hoisted to an engine-global without revisiting that audit; the
// regression tests in stats_isolation_test.cpp pin the property by
// overlapping a heavy and a light query and asserting the light one's
// counters match its solo run.
struct NetStats {
  std::atomic<std::uint64_t> data_messages{0};
  std::atomic<std::uint64_t> done_messages{0};
  std::atomic<std::uint64_t> term_messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> contexts{0};
  // Cluster-wide buffered-byte accounting: `queued_bytes` sums every
  // inbox, so `peak_queued_bytes` is the peak of the *sum* — the
  // cluster's aggregate memory high-water mark. The per-machine peak
  // (the paper's per-machine buffer-memory metric) lives on each Inbox;
  // Network::max_peak_queued_bytes() takes the max across machines.
  std::atomic<std::uint64_t> queued_bytes{0};  // currently buffered
  std::atomic<std::uint64_t> peak_queued_bytes{0};
  // Fault-injection accounting (all zero without an active FaultPlan).
  std::atomic<std::uint64_t> faults_delayed{0};     // messages sent to limbo
  std::atomic<std::uint64_t> faults_duplicated{0};  // extra copies injected
  std::atomic<std::uint64_t> faults_dup_dropped{0};  // copies deduped away
  std::atomic<std::uint64_t> faults_stalls{0};       // injected pickup stalls
  // Query-lifecycle accounting (common/abort.h).
  std::atomic<std::uint64_t> abort_messages{0};   // kAbort broadcasts delivered
  std::atomic<std::uint64_t> blackholed_messages{0};  // data sent to a crashed
                                                      // machine (synth-DONEd)
  std::atomic<std::uint64_t> epoch_dropped{0};    // stale-epoch messages
  // Reliable-delivery accounting (DESIGN.md §13; all zero unless the
  // reliability layer is armed). Injection counters (faults_lost /
  // faults_corrupted) count what the adversarial fabric did; the other
  // four count what the transport did about it. Message/byte counters
  // above stay exactly-once under retransmission: a duplicate delivery
  // is dropped by the link-seq dedup *before* any counting.
  std::atomic<std::uint64_t> faults_lost{0};       // transmission attempts
                                                   // dropped in flight
  std::atomic<std::uint64_t> faults_corrupted{0};  // attempts corrupted
  std::atomic<std::uint64_t> retransmits{0};       // re-sent copies
  std::atomic<std::uint64_t> acks_sent{0};         // standalone kAck sends
  std::atomic<std::uint64_t> payload_corruptions_detected{0};  // CRC catches
  std::atomic<std::uint64_t> dedup_drops{0};       // link-seq duplicate drops

  void note_queued(std::uint64_t delta_add);
  void note_dequeued(std::uint64_t delta_sub);
};

/// Cheap per-machine runtime load signals (DESIGN.md §14): the number of
/// execution contexts sitting in each machine's pickup heap, cumulative
/// credit-stall time, and how often the load-aware flush order advanced
/// an underloaded destination. Per-RUN like NetStats — one LoadBoard per
/// Network, never shared across queries (see the concurrency audit
/// above). All counters are relaxed atomics: the board is an advisory
/// signal for flush ordering, never a synchronization point.
class LoadBoard {
 public:
  explicit LoadBoard(unsigned num_machines)
      : queued_(num_machines), stall_us_(num_machines) {}

  void add_queued(MachineId m, std::int64_t delta) {
    queued_[m].fetch_add(delta, std::memory_order_relaxed);
  }
  /// Contexts currently buffered in machine m's pickup heap.
  std::int64_t queued(MachineId m) const {
    return queued_[m].load(std::memory_order_relaxed);
  }
  /// Cumulative time machine m's workers spent blocked on flow-control
  /// credits (the runtime starvation signal, reported per machine).
  void note_stall_us(MachineId m, std::uint64_t us) {
    stall_us_[m].fetch_add(us, std::memory_order_relaxed);
  }
  std::uint64_t stall_us(MachineId m) const {
    return stall_us_[m].load(std::memory_order_relaxed);
  }
  /// A flush advanced an underloaded destination ahead of buffer order.
  void note_redirect() { redirects_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t redirects() const {
    return redirects_.load(std::memory_order_relaxed);
  }
  unsigned num_machines() const {
    return static_cast<unsigned>(queued_.size());
  }

 private:
  std::vector<std::atomic<std::int64_t>> queued_;
  std::vector<std::atomic<std::uint64_t>> stall_us_;
  std::atomic<std::uint64_t> redirects_{0};
};

class Inbox {
 public:
  /// DONE messages release credits on this flow control at delivery time.
  void attach_flow_control(FlowControl* fc) { flow_ = fc; }

  /// Ablation knob (§3.2): false switches pickup to FIFO order instead
  /// of the deepest-depth / latest-stage priority. Set before any push.
  void set_deep_priority(bool enabled) { deep_priority_ = enabled; }

  /// Arms fault injection for this inbox (receiver side: dedup, delay,
  /// stalls, crash-stop). `self` selects the per-machine slowdown and
  /// crash target; `num_machines` resolves a seed-selected crash. Set
  /// before any push; a plan with no active knob leaves the fast path
  /// untouched.
  void configure_faults(const FaultPlan& plan, MachineId self,
                        unsigned num_machines);

  /// Only messages stamped with this query epoch are accepted (0 = no
  /// check). In-flight data of an aborted run can never leak into a
  /// later query: its epoch no longer matches.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

  /// Arms receiver-side reliable delivery (DESIGN.md §13): per-source
  /// link-seq dedup windows, CRC verification, and ack-owed tracking.
  /// `clock` is the Network's pump tick counter (read-only here), used
  /// to timestamp owed acks. `undelivered` is the Network's count of
  /// stamped-but-not-yet-delivered kData/kTermination messages; this
  /// inbox decrements it when it accepts such a message for the first
  /// time. Call before any push.
  void arm_reliable(unsigned num_machines,
                    const std::atomic<std::uint64_t>* clock,
                    std::atomic<std::uint64_t>* undelivered);

  // ---- cooperative abort (common/abort.h) ----
  /// This machine's view of the query abort, set on receipt of a kAbort
  /// control message (the wire propagation of the abort protocol) —
  /// workers poll it at the same points they poll flow-control credits.
  bool aborted() const {
    return abort_reason_.load(std::memory_order_relaxed) != 0;
  }
  AbortReason abort_reason() const {
    return static_cast<AbortReason>(
        abort_reason_.load(std::memory_order_acquire));
  }
  /// Crash-stop: true once this machine's fault clock hit the plan's
  /// crash tick. A crashed machine executes nothing further; the fabric
  /// blackholes data sent to it (with synthesized DONE completions).
  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  /// Wires this inbox's queued-context accounting to the per-run
  /// LoadBoard (the Network constructor calls this; `self` is the
  /// machine this inbox belongs to). Heap pushes add the message's
  /// context count, pops subtract it.
  void attach_load_board(LoadBoard* board, MachineId self) {
    board_ = board;
    board_self_ = self;
  }

  /// True once the kMirrorRefresh arming broadcast reached this inbox:
  /// its machine holds the current MirrorSet and will honour delegated
  /// mirror-expand messages (DESIGN.md §14). Latched for the run.
  bool mirror_ready() const {
    return mirror_ready_.load(std::memory_order_acquire);
  }

  void push(Message msg, NetStats& stats);

  /// Pops the highest-priority data message: larger depth first, then
  /// later stage first (§3.2 messaging rules); FIFO in ablation mode.
  /// Under fault injection this is also the limbo clock: each call is
  /// one tick, releasing due delayed messages before popping.
  std::optional<Message> try_pop_data(NetStats& stats);

  std::optional<Message> try_pop_term();

  bool has_data() const;
  std::size_t data_size() const;

  /// This machine's buffered-byte high-water mark. Per-query by
  /// construction (the engine builds a fresh Network per run); the
  /// engine reports the max across machines, not the peak of the
  /// cluster-wide sum (two machines peaking at different times must not
  /// be added together).
  std::uint64_t peak_queued_bytes() const {
    return peak_queued_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t queued_bytes() const {
    return queued_bytes_.load(std::memory_order_relaxed);
  }

  /// Post-run: force-deliver everything still in limbo (delayed DONEs
  /// release their credits; delayed data would be a termination-protocol
  /// violation and throws). The engine calls this after workers join so
  /// credit-leak checks see the fabric fully drained.
  void drain_faults(NetStats& stats);

  /// Post-abort variant: delivers limbo DONEs (credits!) and returns
  /// every undelivered data message — heap and limbo alike — so the
  /// engine can release the senders' credits and count the discarded
  /// contexts. Unlike drain_faults, stranded data is expected here: an
  /// aborted or crashed machine stops consuming its inbox.
  std::vector<Message> drain_aborted(NetStats& stats);

  // ---- reliable delivery, receiver side (DESIGN.md §13) ----

  /// Fills the cumulative + selective ack fields describing what this
  /// inbox has received from `src`, and clears the owed-ack flag for
  /// that link (the ack is about to ride out on some message).
  void fill_ack(MachineId src, std::uint64_t& ack_cum,
                std::uint64_t& ack_bits);

  /// Links whose owed ack has aged past `idle_ticks` without reverse
  /// traffic to piggyback on; the caller emits standalone kAcks.
  std::vector<MachineId> take_due_acks(std::uint64_t now,
                                       std::uint64_t idle_ticks);

  /// Whether (src, link_seq) was ever accepted by this inbox — the
  /// post-run ground truth that lets Network::drain_reliable resolve
  /// unacked ring entries without double-applying their effects.
  bool reliable_delivered(MachineId src, std::uint64_t link_seq) const;

 private:
  friend class Network;  // drain_reliable delivers stranded DONE credits
  struct Entry {
    Message msg;
    std::uint64_t seq = 0;  // FIFO tiebreak / FIFO-mode key
  };

  struct Limbo {
    Message msg;
    std::uint64_t release_tick = 0;
  };

  // Max-heap order: priority mode compares (depth, stage), FIFO mode
  // compares arrival order (older first).
  bool before(const Entry& a, const Entry& b) const {
    if (deep_priority_) {
      if (a.msg.header.depth != b.msg.header.depth) {
        return a.msg.header.depth < b.msg.header.depth;
      }
      if (a.msg.header.stage != b.msg.header.stage) {
        return a.msg.header.stage < b.msg.header.stage;
      }
    }
    return a.seq > b.seq;  // older messages win ties / FIFO mode
  }

  // Reliable-delivery receiver state, one per source machine. Guarded by
  // rx_mutex_ (never held together with mutex_; push takes rx_mutex_,
  // releases it, then takes mutex_ for the heap).
  struct LinkRx {
    std::uint64_t cum = 0;            // every link_seq <= cum received
    std::set<std::uint64_t> ooo;      // received out of order, > cum
    bool ack_owed = false;
    std::uint64_t owed_since = 0;     // pump tick the debt started
  };

  /// Dedup + receipt recording for a sequenced message; counts
  /// dedup_drops and re-marks the owed ack on a duplicate (a duplicate
  /// usually means the previous ack was lost). Returns false to drop.
  bool reliable_accept(MachineId src, std::uint64_t link_seq,
                       NetStats& stats);

  // Fault internals (mutex_ held unless stated otherwise).
  bool fault_dedup_or_delay(Message& msg, NetStats& stats);  // true=consumed
  void fault_tick(NetStats& stats);  // advance clock, release due limbo
  void heap_insert(Message msg);
  void deliver_done(const Message& msg);  // lock-free (flow control only)
  // Buffered-byte accounting: updates this inbox's local counters and
  // the cluster-wide NetStats sum together.
  void account_queued(std::uint64_t bytes, NetStats& stats);
  void account_dequeued(std::uint64_t bytes, NetStats& stats);

  std::atomic<std::uint64_t> queued_bytes_{0};
  std::atomic<std::uint64_t> peak_queued_bytes_{0};
  mutable std::mutex mutex_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool deep_priority_ = true;
  MpmcQueue<Message> term_;
  FlowControl* flow_ = nullptr;

  // Abort / crash state. One relaxed load per worker poll.
  std::atomic<std::uint8_t> abort_reason_{0};
  std::atomic<bool> crashed_{false};
  // Mirror arming (DESIGN.md §14) and load-signal plumbing.
  std::atomic<bool> mirror_ready_{false};
  LoadBoard* board_ = nullptr;
  MachineId board_self_ = 0;
  bool crash_armed_ = false;
  std::uint64_t crash_tick_ = 0;
  std::uint32_t epoch_ = 0;

  // Fault state. `faults_on_` is the single branch the fault-free fast
  // path pays; everything below is untouched without a plan.
  bool faults_on_ = false;
  bool slow_machine_ = false;
  // Reliable-delivery receiver state (armed by arm_reliable).
  bool reliable_on_ = false;
  mutable std::mutex rx_mutex_;
  std::vector<LinkRx> rx_;
  const std::atomic<std::uint64_t>* reliable_clock_ = nullptr;
  std::atomic<std::uint64_t>* reliable_undelivered_ = nullptr;
  FaultPlan plan_;
  MachineId self_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<Limbo> limbo_;
  std::size_t limbo_data_ = 0;  // data messages currently in limbo
  std::unordered_set<std::uint64_t> seen_;  // transport dedup (data+DONE)
};

/// Knobs of the reliable-delivery layer, mirrored from EngineConfig by
/// the engine (the Network constructor never sees an EngineConfig).
struct ReliableConfig {
  bool enabled = false;
  unsigned max_retransmits = 20;
  std::uint64_t retransmit_timeout_ticks = 128;
  std::uint64_t ack_idle_ticks = 16;
};

/// The interconnect: owns one inbox per machine plus global statistics.
class Network {
 public:
  explicit Network(unsigned num_machines)
      : inboxes_(num_machines), board_(num_machines) {
    for (unsigned m = 0; m < num_machines; ++m) {
      inboxes_[m].attach_load_board(&board_, static_cast<MachineId>(m));
    }
  }

  unsigned num_machines() const {
    return static_cast<unsigned>(inboxes_.size());
  }

  /// Arms fault injection on the sender side (sequence stamping and
  /// bounded duplication) and on every inbox. Resolves a seed-selected
  /// crash machine (crash_machine == -2) to a concrete id. Call before
  /// any traffic.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Arms the reliable-delivery layer (DESIGN.md §13) on sender and
  /// receiver sides. Call after set_fault_plan and before any traffic.
  /// With cfg.enabled false and a non-lossy plan this is a no-op and the
  /// transport is byte-for-byte the pre-§13 one.
  void configure_reliability(const ReliableConfig& cfg);
  bool reliable() const { return reliable_on_; }

  /// True when no sequenced count-bearing or status message (kData,
  /// kTermination) is sitting in a retransmission ring awaiting first
  /// delivery. The §3.4 termination decision gates on this: the
  /// two-wave stability argument assumes every broadcast issued before
  /// the decision instant has been delivered (and therefore ingested by
  /// the decider's status pop loop), which a lossy fabric only
  /// guarantees once the retransmission backlog is empty. kDone credit
  /// returns are deliberately excluded — they carry no termination
  /// counters and the post-run drain reconciles stragglers. Always true
  /// on a non-reliable fabric.
  bool quiescent() const {
    return seq_undelivered_.load(std::memory_order_seq_cst) == 0;
  }

  /// Number of stamped kData/kTermination messages not yet delivered to
  /// their inbox (diagnostics; `quiescent()` is this reaching zero).
  std::uint64_t undelivered_count() const {
    return seq_undelivered_.load(std::memory_order_seq_cst);
  }

  /// Escalation target for dead links: a link that exhausts its
  /// retransmit budget requests AbortReason::kMachineFailure here (and
  /// broadcasts it), converting a partitioned/dead fabric into a typed
  /// retryable abort instead of a hang. Optional — without a controller
  /// the dead link is only recorded and the post-run drain still
  /// reconciles its credits.
  void attach_abort(AbortController* abort) { abort_ = abort; }

  /// One reliability tick: every worker calls this once per main-loop
  /// and per credit-wait iteration. Advances the cluster-global tick
  /// clock and services (striding across calls) standalone owed acks,
  /// due retransmissions on every link, and kAbort re-broadcast to
  /// machines that lost the first copy. No-op when reliability is off.
  void pump(MachineId self);

  /// Post-run (workers joined): resolves every entry still in the
  /// unacked rings. Delivered-but-unacked entries are skipped (their
  /// effects are in the inboxes already); an undelivered DONE has its
  /// credit delivered now (clean termination proves sent == processed,
  /// not credits-home, so a lost in-flight DONE is legal); undelivered
  /// data — possible only on aborted runs — is returned with its
  /// destination so the engine can release the sender's credit and
  /// count the discarded contexts, exactly like drain_aborted leftovers.
  std::vector<std::pair<MachineId, Message>> drain_reliable();

  /// Stamps every subsequent send with this query epoch and arms the
  /// inboxes' stale-epoch filter.
  void set_epoch(std::uint32_t epoch);

  /// Whether this run's plan arms a crash (plan crash mode and the run
  /// index matches) — the engine spawns its failure-detector monitor
  /// only when true.
  bool crash_armed() const {
    return plan_.crash_enabled() && plan_.run_index == plan_.crash_run;
  }

  /// True once any machine's crash tick fired (the engine's monitor
  /// polls this as the simulated failure detector).
  bool any_crashed() const {
    for (const auto& inbox : inboxes_) {
      if (inbox.crashed()) return true;
    }
    return false;
  }

  /// Pushes a kAbort control message to every inbox. Control-channel
  /// priority: never delayed, deduped, or duplicated by fault injection.
  void broadcast_abort(AbortReason reason);

  /// Pushes a kMirrorRefresh arming broadcast to every inbox
  /// (DESIGN.md §14). Control-channel priority like kAbort: never lost,
  /// corrupted, delayed, deduped, or duplicated — the receipt just
  /// latches each inbox's mirror-ready flag. The engine broadcasts
  /// before worker threads start, so readiness is deterministic.
  void broadcast_mirror_refresh(std::uint64_t mirror_version);

  /// True once every inbox observed the arming broadcast; workers gate
  /// delegated fan-out on this (a peer that is not ready would silently
  /// drop the delegation's results).
  bool mirror_ready_all() const {
    for (const auto& inbox : inboxes_) {
      if (!inbox.mirror_ready()) return false;
    }
    return true;
  }

  /// Per-run load signals; machines consult it for load-aware flush
  /// ordering (EngineConfig::load_aware_flush) and the engine reports
  /// its counters through RuntimeStats.
  LoadBoard& load_board() { return board_; }
  const LoadBoard& load_board() const { return board_; }

  void send(MachineId dest, Message msg);

  Inbox& inbox(MachineId m) { return inboxes_[m]; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Max over machines of each machine's buffered-byte peak — the
  /// per-machine memory high-water mark the paper's §4.2 discussion is
  /// about (NOT the peak of the cluster-wide sum).
  std::uint64_t max_peak_queued_bytes() const {
    std::uint64_t peak = 0;
    for (const auto& inbox : inboxes_) {
      peak = std::max(peak, inbox.peak_queued_bytes());
    }
    return peak;
  }

 private:
  // Sender-side unacked ring, one per directed (from, to) link. Each
  // link has its own mutex; no two link mutexes are ever held at once,
  // and a link mutex is never held across a push (lock, mutate, unlock,
  // then transmit).
  struct Pending {
    Message msg;                    // pristine copy for retransmission
    unsigned attempts = 0;          // transmissions so far
    std::uint64_t next_retry = 0;   // pump tick of the next retransmit
    bool dead = false;              // budget exhausted; stop retrying
  };
  struct LinkTx {
    std::mutex mutex;
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Pending> pending;
  };

  /// True for message types that get a link_seq + crc + ring entry.
  static bool sequenced(MessageType type) {
    return type == MessageType::kData || type == MessageType::kDone ||
           type == MessageType::kTermination;
  }
  LinkTx& tx(MachineId from, MachineId to) {
    return tx_[static_cast<std::size_t>(from) * inboxes_.size() + to];
  }
  /// Assigns the link_seq, computes the CRC, and stores the pristine
  /// copy in the unacked ring.
  void stamp_reliable(MachineId dest, Message& msg);
  /// One transmission attempt: refresh piggybacked acks, roll loss /
  /// corruption for this attempt, apply the (surviving) acks to the
  /// reverse link's ring, then deliver. kAck terminates here.
  void transmit(MachineId dest, Message msg);
  /// Applies an ack about messages `from` sent `to`: erases acked ring
  /// entries and, on any progress, refunds the retransmit budget of the
  /// link's remaining entries (tick rates vary wildly between busy and
  /// idle phases — only a link with zero progress may be declared dead).
  void ack_apply(MachineId from, MachineId to, std::uint64_t cum,
                 std::uint64_t bits);
  /// Retransmission timer service for one link; escalates a dead link.
  void scan_link(MachineId from, MachineId to, std::uint64_t now);
  void escalate_dead_link();
  std::uint64_t backoff_ticks(MachineId from, MachineId to,
                              std::uint64_t link_seq,
                              unsigned attempts) const;

  std::vector<Inbox> inboxes_;
  LoadBoard board_;
  NetStats stats_;
  FaultPlan plan_;
  bool faults_on_ = false;
  std::uint32_t epoch_ = 0;
  std::atomic<std::uint64_t> send_seq_{0};

  // Reliable-delivery sender state.
  bool reliable_on_ = false;
  bool lossy_ = false;  // loss/corrupt injection armed (plan_.lossy())
  ReliableConfig rcfg_;
  std::vector<LinkTx> tx_;  // row-major (from * N + to)
  std::atomic<std::uint64_t> pump_tick_{0};
  std::atomic<std::uint64_t> xmit_seq_{0};  // per-attempt fault-roll key
  // Stamped kData/kTermination messages not yet accepted by their
  // destination inbox (see quiescent()).
  std::atomic<std::uint64_t> seq_undelivered_{0};
  AbortController* abort_ = nullptr;
  // Loss-tolerant kAbort: the pending reason re-broadcast by pump until
  // every live inbox has observed it (the inbox's aborted flag is the
  // implicit ack; the CAS there makes re-delivery idempotent).
  std::atomic<std::uint8_t> abort_pending_{0};
};

}  // namespace rpqd
