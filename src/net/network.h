// Simulated cluster fabric: per-machine inboxes with the paper's pickup
// priority, and a Network object that models the interconnect.
//
// Delivery is a thread-safe push into the destination inbox — the
// simulation's stand-in for the paper's InfiniBand + dedicated receiver
// threads. DONE messages are handled at delivery time (credits return to
// the local FlowControl immediately, as a receiver thread would do);
// data messages queue in a priority heap ordered by (depth desc, stage
// desc), implementing §3.2's "larger depth first, later stage first";
// termination broadcasts queue separately and are drained by idle workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/queue.h"
#include "net/flow_control.h"
#include "net/message.h"

namespace rpqd {

struct NetStats {
  std::atomic<std::uint64_t> data_messages{0};
  std::atomic<std::uint64_t> done_messages{0};
  std::atomic<std::uint64_t> term_messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> contexts{0};
  std::atomic<std::uint64_t> queued_bytes{0};  // currently buffered
  std::atomic<std::uint64_t> peak_queued_bytes{0};

  void note_queued(std::uint64_t delta_add);
  void note_dequeued(std::uint64_t delta_sub);
};

class Inbox {
 public:
  /// DONE messages release credits on this flow control at delivery time.
  void attach_flow_control(FlowControl* fc) { flow_ = fc; }

  /// Ablation knob (§3.2): false switches pickup to FIFO order instead
  /// of the deepest-depth / latest-stage priority. Set before any push.
  void set_deep_priority(bool enabled) { deep_priority_ = enabled; }

  void push(Message msg, NetStats& stats);

  /// Pops the highest-priority data message: larger depth first, then
  /// later stage first (§3.2 messaging rules); FIFO in ablation mode.
  std::optional<Message> try_pop_data(NetStats& stats);

  std::optional<Message> try_pop_term();

  bool has_data() const;
  std::size_t data_size() const;

 private:
  struct Entry {
    Message msg;
    std::uint64_t seq = 0;  // FIFO tiebreak / FIFO-mode key
  };

  // Max-heap order: priority mode compares (depth, stage), FIFO mode
  // compares arrival order (older first).
  bool before(const Entry& a, const Entry& b) const {
    if (deep_priority_) {
      if (a.msg.header.depth != b.msg.header.depth) {
        return a.msg.header.depth < b.msg.header.depth;
      }
      if (a.msg.header.stage != b.msg.header.stage) {
        return a.msg.header.stage < b.msg.header.stage;
      }
    }
    return a.seq > b.seq;  // older messages win ties / FIFO mode
  }

  mutable std::mutex mutex_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool deep_priority_ = true;
  MpmcQueue<Message> term_;
  FlowControl* flow_ = nullptr;
};

/// The interconnect: owns one inbox per machine plus global statistics.
class Network {
 public:
  explicit Network(unsigned num_machines) : inboxes_(num_machines) {}

  unsigned num_machines() const {
    return static_cast<unsigned>(inboxes_.size());
  }

  void send(MachineId dest, Message msg);

  Inbox& inbox(MachineId m) { return inboxes_[m]; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

 private:
  std::vector<Inbox> inboxes_;
  NetStats stats_;
};

}  // namespace rpqd
