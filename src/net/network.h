// Simulated cluster fabric: per-machine inboxes with the paper's pickup
// priority, and a Network object that models the interconnect.
//
// Delivery is a thread-safe push into the destination inbox — the
// simulation's stand-in for the paper's InfiniBand + dedicated receiver
// threads. DONE messages are handled at delivery time (credits return to
// the local FlowControl immediately, as a receiver thread would do);
// data messages queue in a priority heap ordered by (depth desc, stage
// desc), implementing §3.2's "larger depth first, later stage first";
// termination broadcasts queue separately and are drained by idle workers.
//
// Fault injection (common/fault.h): under an active FaultPlan the fabric
// becomes adversarial-but-reliable. Network::send stamps every message
// with a unique sequence number and may deliver a bounded duplicate;
// the receiving inbox dedups data/DONE messages by seq (the transport's
// exactly-once guarantee) and may divert them into a "limbo" buffer for
// 1..window pickup ticks, reordering deliveries and jittering credit
// returns. A pickup tick is one try_pop_data call — the clock every
// worker advances whenever it polls, so limbo always drains as long as
// the query is live. Termination statuses are duplicated verbatim (never
// deduped or delayed): the §3.4 protocol must tolerate them by itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/abort.h"
#include "common/fault.h"
#include "common/queue.h"
#include "net/flow_control.h"
#include "net/message.h"

namespace rpqd {

// Concurrency audit (concurrent multi-query serving): every counter in
// NetStats is per-QUERY by construction — the engine builds one Network
// (and therefore one NetStats, one Inbox set, one FlowControl set) per
// run, and concurrent queries never share a Network. Nothing here may be
// hoisted to an engine-global without revisiting that audit; the
// regression tests in stats_isolation_test.cpp pin the property by
// overlapping a heavy and a light query and asserting the light one's
// counters match its solo run.
struct NetStats {
  std::atomic<std::uint64_t> data_messages{0};
  std::atomic<std::uint64_t> done_messages{0};
  std::atomic<std::uint64_t> term_messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> contexts{0};
  // Cluster-wide buffered-byte accounting: `queued_bytes` sums every
  // inbox, so `peak_queued_bytes` is the peak of the *sum* — the
  // cluster's aggregate memory high-water mark. The per-machine peak
  // (the paper's per-machine buffer-memory metric) lives on each Inbox;
  // Network::max_peak_queued_bytes() takes the max across machines.
  std::atomic<std::uint64_t> queued_bytes{0};  // currently buffered
  std::atomic<std::uint64_t> peak_queued_bytes{0};
  // Fault-injection accounting (all zero without an active FaultPlan).
  std::atomic<std::uint64_t> faults_delayed{0};     // messages sent to limbo
  std::atomic<std::uint64_t> faults_duplicated{0};  // extra copies injected
  std::atomic<std::uint64_t> faults_dup_dropped{0};  // copies deduped away
  std::atomic<std::uint64_t> faults_stalls{0};       // injected pickup stalls
  // Query-lifecycle accounting (common/abort.h).
  std::atomic<std::uint64_t> abort_messages{0};   // kAbort broadcasts delivered
  std::atomic<std::uint64_t> blackholed_messages{0};  // data sent to a crashed
                                                      // machine (synth-DONEd)
  std::atomic<std::uint64_t> epoch_dropped{0};    // stale-epoch messages

  void note_queued(std::uint64_t delta_add);
  void note_dequeued(std::uint64_t delta_sub);
};

class Inbox {
 public:
  /// DONE messages release credits on this flow control at delivery time.
  void attach_flow_control(FlowControl* fc) { flow_ = fc; }

  /// Ablation knob (§3.2): false switches pickup to FIFO order instead
  /// of the deepest-depth / latest-stage priority. Set before any push.
  void set_deep_priority(bool enabled) { deep_priority_ = enabled; }

  /// Arms fault injection for this inbox (receiver side: dedup, delay,
  /// stalls, crash-stop). `self` selects the per-machine slowdown and
  /// crash target; `num_machines` resolves a seed-selected crash. Set
  /// before any push; a plan with no active knob leaves the fast path
  /// untouched.
  void configure_faults(const FaultPlan& plan, MachineId self,
                        unsigned num_machines);

  /// Only messages stamped with this query epoch are accepted (0 = no
  /// check). In-flight data of an aborted run can never leak into a
  /// later query: its epoch no longer matches.
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

  // ---- cooperative abort (common/abort.h) ----
  /// This machine's view of the query abort, set on receipt of a kAbort
  /// control message (the wire propagation of the abort protocol) —
  /// workers poll it at the same points they poll flow-control credits.
  bool aborted() const {
    return abort_reason_.load(std::memory_order_relaxed) != 0;
  }
  AbortReason abort_reason() const {
    return static_cast<AbortReason>(
        abort_reason_.load(std::memory_order_acquire));
  }
  /// Crash-stop: true once this machine's fault clock hit the plan's
  /// crash tick. A crashed machine executes nothing further; the fabric
  /// blackholes data sent to it (with synthesized DONE completions).
  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }

  void push(Message msg, NetStats& stats);

  /// Pops the highest-priority data message: larger depth first, then
  /// later stage first (§3.2 messaging rules); FIFO in ablation mode.
  /// Under fault injection this is also the limbo clock: each call is
  /// one tick, releasing due delayed messages before popping.
  std::optional<Message> try_pop_data(NetStats& stats);

  std::optional<Message> try_pop_term();

  bool has_data() const;
  std::size_t data_size() const;

  /// This machine's buffered-byte high-water mark. Per-query by
  /// construction (the engine builds a fresh Network per run); the
  /// engine reports the max across machines, not the peak of the
  /// cluster-wide sum (two machines peaking at different times must not
  /// be added together).
  std::uint64_t peak_queued_bytes() const {
    return peak_queued_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t queued_bytes() const {
    return queued_bytes_.load(std::memory_order_relaxed);
  }

  /// Post-run: force-deliver everything still in limbo (delayed DONEs
  /// release their credits; delayed data would be a termination-protocol
  /// violation and throws). The engine calls this after workers join so
  /// credit-leak checks see the fabric fully drained.
  void drain_faults(NetStats& stats);

  /// Post-abort variant: delivers limbo DONEs (credits!) and returns
  /// every undelivered data message — heap and limbo alike — so the
  /// engine can release the senders' credits and count the discarded
  /// contexts. Unlike drain_faults, stranded data is expected here: an
  /// aborted or crashed machine stops consuming its inbox.
  std::vector<Message> drain_aborted(NetStats& stats);

 private:
  struct Entry {
    Message msg;
    std::uint64_t seq = 0;  // FIFO tiebreak / FIFO-mode key
  };

  struct Limbo {
    Message msg;
    std::uint64_t release_tick = 0;
  };

  // Max-heap order: priority mode compares (depth, stage), FIFO mode
  // compares arrival order (older first).
  bool before(const Entry& a, const Entry& b) const {
    if (deep_priority_) {
      if (a.msg.header.depth != b.msg.header.depth) {
        return a.msg.header.depth < b.msg.header.depth;
      }
      if (a.msg.header.stage != b.msg.header.stage) {
        return a.msg.header.stage < b.msg.header.stage;
      }
    }
    return a.seq > b.seq;  // older messages win ties / FIFO mode
  }

  // Fault internals (mutex_ held unless stated otherwise).
  bool fault_dedup_or_delay(Message& msg, NetStats& stats);  // true=consumed
  void fault_tick(NetStats& stats);  // advance clock, release due limbo
  void heap_insert(Message msg);
  void deliver_done(const Message& msg);  // lock-free (flow control only)
  // Buffered-byte accounting: updates this inbox's local counters and
  // the cluster-wide NetStats sum together.
  void account_queued(std::uint64_t bytes, NetStats& stats);
  void account_dequeued(std::uint64_t bytes, NetStats& stats);

  std::atomic<std::uint64_t> queued_bytes_{0};
  std::atomic<std::uint64_t> peak_queued_bytes_{0};
  mutable std::mutex mutex_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  bool deep_priority_ = true;
  MpmcQueue<Message> term_;
  FlowControl* flow_ = nullptr;

  // Abort / crash state. One relaxed load per worker poll.
  std::atomic<std::uint8_t> abort_reason_{0};
  std::atomic<bool> crashed_{false};
  bool crash_armed_ = false;
  std::uint64_t crash_tick_ = 0;
  std::uint32_t epoch_ = 0;

  // Fault state. `faults_on_` is the single branch the fault-free fast
  // path pays; everything below is untouched without a plan.
  bool faults_on_ = false;
  bool slow_machine_ = false;
  FaultPlan plan_;
  MachineId self_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<Limbo> limbo_;
  std::size_t limbo_data_ = 0;  // data messages currently in limbo
  std::unordered_set<std::uint64_t> seen_;  // transport dedup (data+DONE)
};

/// The interconnect: owns one inbox per machine plus global statistics.
class Network {
 public:
  explicit Network(unsigned num_machines) : inboxes_(num_machines) {}

  unsigned num_machines() const {
    return static_cast<unsigned>(inboxes_.size());
  }

  /// Arms fault injection on the sender side (sequence stamping and
  /// bounded duplication) and on every inbox. Resolves a seed-selected
  /// crash machine (crash_machine == -2) to a concrete id. Call before
  /// any traffic.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Stamps every subsequent send with this query epoch and arms the
  /// inboxes' stale-epoch filter.
  void set_epoch(std::uint32_t epoch);

  /// Whether this run's plan arms a crash (plan crash mode and the run
  /// index matches) — the engine spawns its failure-detector monitor
  /// only when true.
  bool crash_armed() const {
    return plan_.crash_enabled() && plan_.run_index == plan_.crash_run;
  }

  /// True once any machine's crash tick fired (the engine's monitor
  /// polls this as the simulated failure detector).
  bool any_crashed() const {
    for (const auto& inbox : inboxes_) {
      if (inbox.crashed()) return true;
    }
    return false;
  }

  /// Pushes a kAbort control message to every inbox. Control-channel
  /// priority: never delayed, deduped, or duplicated by fault injection.
  void broadcast_abort(AbortReason reason);

  void send(MachineId dest, Message msg);

  Inbox& inbox(MachineId m) { return inboxes_[m]; }
  NetStats& stats() { return stats_; }
  const NetStats& stats() const { return stats_; }

  /// Max over machines of each machine's buffered-byte peak — the
  /// per-machine memory high-water mark the paper's §4.2 discussion is
  /// about (NOT the peak of the cluster-wide sum).
  std::uint64_t max_peak_queued_bytes() const {
    std::uint64_t peak = 0;
    for (const auto& inbox : inboxes_) {
      peak = std::max(peak, inbox.peak_queued_bytes());
    }
    return peak;
  }

 private:
  std::vector<Inbox> inboxes_;
  NetStats stats_;
  FaultPlan plan_;
  bool faults_on_ = false;
  std::uint32_t epoch_ = 0;
  std::atomic<std::uint64_t> send_seq_{0};
};

}  // namespace rpqd
