// Wire format of the simulated cluster fabric.
//
// Everything that crosses machines is a Message: a small POD header plus
// a serialized payload. Data messages batch many execution contexts for
// one (stage, depth); DONE messages return flow-control credits (§3.3);
// termination messages carry the status broadcasts of §3.4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rpqd {

enum class MessageType : std::uint8_t {
  kData,         // batched execution contexts
  kDone,         // flow-control credit return
  kTermination,  // termination-protocol status broadcast
  kAbort,        // cooperative-abort broadcast (common/abort.h)
  kAck,          // standalone reliable-delivery ack (DESIGN.md §13)
  kMirrorRefresh,  // hot-vertex mirror arming broadcast (DESIGN.md §14)
};

/// MessageHeader::flags bit: the payload's contexts are mirror-expand
/// delegations — each context's vertex is a HOT vertex whose bucket the
/// receiver enumerates locally instead of entering the stage (§14).
inline constexpr std::uint8_t kMessageFlagMirror = 1u << 0;

/// Which flow-control credit a data message consumed; echoed back in the
/// DONE message so the sender releases the right pool (§3.3).
enum class CreditClass : std::uint8_t {
  kFixed,         // per-(stage, machine) preallocated buffer
  kRpqDedicated,  // per-(path stage, machine, depth < D) buffer
  kRpqShared,     // shared pool for depths >= D
  kRpqOverflow,   // livelock-avoidance overflow buffer
  kEmergency,     // unbounded safety valve; never used in healthy runs
};

struct MessageHeader {
  MessageType type = MessageType::kData;
  MachineId src = 0;
  StageId stage = kInvalidStage;  // target stage (kData)
  Depth depth = 0;                // RPQ depth of the batch (kData)
  std::uint32_t count = 0;        // #contexts in the payload (kData)
  CreditClass credit = CreditClass::kFixed;
  Depth credit_depth = 0;  // depth the credit was charged at
  /// Per-message flag bits (kMessageFlag*); 0 for ordinary traffic.
  std::uint8_t flags = 0;
  /// Cluster-unique send sequence number, assigned by Network::send when
  /// a fault plan is active: the transport-dedup identity (a duplicated
  /// message keeps its original seq) and the fault-decision key.
  std::uint64_t seq = 0;
  /// Abort reason carried by kAbort broadcasts (AbortReason as uint8).
  std::uint8_t abort_reason = 0;
  /// Query epoch stamped by Network::send; an inbox drops any message
  /// from a different epoch, so in-flight data of an aborted run can
  /// never seed work in a later one.
  std::uint32_t epoch = 0;
  /// Reliable-delivery fields (DESIGN.md §13), populated only when the
  /// reliability layer is armed (lossy plan or cfg.reliable_transport).
  /// `link_seq` is per-(src, dest) and 1-based; 0 marks an unsequenced
  /// message (kAbort, kAck, and everything on a reliable=off fabric).
  std::uint64_t link_seq = 0;
  /// CRC32 of the payload, verified by the receiving inbox; a mismatch
  /// (injected corruption) drops the copy exactly like a loss.
  std::uint32_t crc = 0;
  /// Piggybacked ack for the *reverse* link (dest -> src): receiver has
  /// every link_seq <= ack_cum, plus bit i of ack_bits set means
  /// ack_cum + 1 + i was received out of order.
  std::uint64_t ack_cum = 0;
  std::uint64_t ack_bits = 0;
};

struct Message {
  MessageHeader header;
  std::vector<std::byte> payload;
};

const char* to_string(CreditClass c);

}  // namespace rpqd
