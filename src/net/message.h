// Wire format of the simulated cluster fabric.
//
// Everything that crosses machines is a Message: a small POD header plus
// a serialized payload. Data messages batch many execution contexts for
// one (stage, depth); DONE messages return flow-control credits (§3.3);
// termination messages carry the status broadcasts of §3.4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rpqd {

enum class MessageType : std::uint8_t {
  kData,         // batched execution contexts
  kDone,         // flow-control credit return
  kTermination,  // termination-protocol status broadcast
};

/// Which flow-control credit a data message consumed; echoed back in the
/// DONE message so the sender releases the right pool (§3.3).
enum class CreditClass : std::uint8_t {
  kFixed,         // per-(stage, machine) preallocated buffer
  kRpqDedicated,  // per-(path stage, machine, depth < D) buffer
  kRpqShared,     // shared pool for depths >= D
  kRpqOverflow,   // livelock-avoidance overflow buffer
  kEmergency,     // unbounded safety valve; never used in healthy runs
};

struct MessageHeader {
  MessageType type = MessageType::kData;
  MachineId src = 0;
  StageId stage = kInvalidStage;  // target stage (kData)
  Depth depth = 0;                // RPQ depth of the batch (kData)
  std::uint32_t count = 0;        // #contexts in the payload (kData)
  CreditClass credit = CreditClass::kFixed;
  Depth credit_depth = 0;  // depth the credit was charged at
  /// Cluster-unique send sequence number, assigned by Network::send when
  /// a fault plan is active: the transport-dedup identity (a duplicated
  /// message keeps its original seq) and the fault-decision key.
  std::uint64_t seq = 0;
};

struct Message {
  MessageHeader header;
  std::vector<std::byte> payload;
};

const char* to_string(CreditClass c);

}  // namespace rpqd
