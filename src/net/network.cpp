#include "net/network.h"

#include <algorithm>

#include "common/error.h"

namespace rpqd {

void NetStats::note_queued(std::uint64_t delta_add) {
  const auto now =
      queued_bytes.fetch_add(delta_add, std::memory_order_relaxed) + delta_add;
  auto peak = peak_queued_bytes.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void NetStats::note_dequeued(std::uint64_t delta_sub) {
  queued_bytes.fetch_sub(delta_sub, std::memory_order_relaxed);
}

void Inbox::push(Message msg, NetStats& stats) {
  switch (msg.header.type) {
    case MessageType::kDone:
      // Receiver-thread behaviour: return the credit immediately.
      stats.done_messages.fetch_add(1, std::memory_order_relaxed);
      engine_check(flow_ != nullptr, "inbox without flow control");
      flow_->release(msg.header.src, msg.header.stage,
                     msg.header.credit_depth, msg.header.credit);
      return;
    case MessageType::kTermination:
      stats.term_messages.fetch_add(1, std::memory_order_relaxed);
      term_.push(std::move(msg));
      return;
    case MessageType::kData: {
      stats.data_messages.fetch_add(1, std::memory_order_relaxed);
      stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
      const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
      stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
      stats.note_queued(bytes);
      const auto cmp = [this](const Entry& a, const Entry& b) {
        return before(a, b);
      };
      std::lock_guard lock(mutex_);
      heap_.push_back(Entry{std::move(msg), next_seq_++});
      std::push_heap(heap_.begin(), heap_.end(), cmp);
      return;
    }
  }
}

std::optional<Message> Inbox::try_pop_data(NetStats& stats) {
  const auto cmp = [this](const Entry& a, const Entry& b) {
    return before(a, b);
  };
  std::unique_lock lock(mutex_);
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  Message msg = std::move(heap_.back().msg);
  heap_.pop_back();
  lock.unlock();
  stats.note_dequeued(msg.payload.size());
  return msg;
}

std::optional<Message> Inbox::try_pop_term() { return term_.try_pop(); }

bool Inbox::has_data() const {
  std::lock_guard lock(mutex_);
  return !heap_.empty();
}

std::size_t Inbox::data_size() const {
  std::lock_guard lock(mutex_);
  return heap_.size();
}

void Network::send(MachineId dest, Message msg) {
  engine_check(dest < inboxes_.size(), "send to unknown machine");
  inboxes_[dest].push(std::move(msg), stats_);
}

}  // namespace rpqd
