#include "net/network.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"

namespace rpqd {

void NetStats::note_queued(std::uint64_t delta_add) {
  const auto now =
      queued_bytes.fetch_add(delta_add, std::memory_order_relaxed) + delta_add;
  auto peak = peak_queued_bytes.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void NetStats::note_dequeued(std::uint64_t delta_sub) {
  const auto prev = queued_bytes.fetch_sub(delta_sub, std::memory_order_relaxed);
  // Accounting audit: every dequeue must be covered by a prior enqueue.
  // An underflow here means a message was popped twice or its payload
  // mutated between queue and dequeue; the wrapped counter would
  // otherwise poison peak_queued_bytes silently.
  engine_check(prev >= delta_sub, "queued_bytes underflow on dequeue");
}

void Inbox::account_queued(std::uint64_t bytes, NetStats& stats) {
  stats.note_queued(bytes);
  const auto now =
      queued_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  auto peak = peak_queued_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Inbox::account_dequeued(std::uint64_t bytes, NetStats& stats) {
  stats.note_dequeued(bytes);
  const auto prev = queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  engine_check(prev >= bytes, "inbox queued_bytes underflow on dequeue");
}

void Inbox::configure_faults(const FaultPlan& plan, MachineId self,
                             unsigned num_machines) {
  plan_ = plan;
  self_ = self;
  faults_on_ = plan.any();
  slow_machine_ =
      faults_on_ && plan.stall_max_us > 0 &&
      fault_roll(fault_hash(plan.seed, self, kFaultSaltSlowMachine),
                 plan.slow_machine_fraction);
  // Crash-stop arming: this machine dies at crash_tick_ iff it is the
  // plan's (possibly seed-selected) victim AND the plan's run index
  // matches — crash-stop is a one-shot failure, so a retried query runs
  // against a healthy cluster again.
  crash_armed_ = false;
  if (plan.crash_enabled() && plan.run_index == plan.crash_run &&
      num_machines > 0) {
    const MachineId victim =
        plan.crash_machine >= 0
            ? static_cast<MachineId>(plan.crash_machine)
            : static_cast<MachineId>(
                  fault_hash(plan.seed, num_machines, kFaultSaltCrash) %
                  num_machines);
    crash_armed_ = victim == self;
    crash_tick_ = plan.crash_tick;
  }
}

void Inbox::heap_insert(Message msg) {
  const auto cmp = [this](const Entry& a, const Entry& b) {
    return before(a, b);
  };
  heap_.push_back(Entry{std::move(msg), next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), cmp);
}

void Inbox::deliver_done(const Message& msg) {
  engine_check(flow_ != nullptr, "inbox without flow control");
  flow_->release(msg.header.src, msg.header.stage, msg.header.credit_depth,
                 msg.header.credit);
}

bool Inbox::fault_dedup_or_delay(Message& msg, NetStats& stats) {
  // Transport dedup: a duplicated copy carries the same send sequence
  // number; dropping it here is the reliable transport masking the fault
  // (exactly-once delivery as seen by the engine).
  if (!seen_.insert(msg.header.seq).second) {
    stats.faults_dup_dropped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const bool is_done = msg.header.type == MessageType::kDone;
  const double prob = is_done ? plan_.done_delay_prob : plan_.delay_prob;
  const unsigned window = is_done ? plan_.done_delay_window
                                  : plan_.delay_window;
  if (window == 0 ||
      !fault_roll(fault_hash(plan_.seed, msg.header.seq, kFaultSaltDelay),
                  prob)) {
    return false;  // deliver normally
  }
  // Divert into limbo for 1..window pickup ticks. Delivery stats are
  // counted now (the message has arrived at this machine; it is merely
  // invisible to pickup), so queued-bytes accounting matches the
  // eventual dequeue.
  stats.faults_delayed.fetch_add(1, std::memory_order_relaxed);
  if (is_done) {
    stats.done_messages.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats.data_messages.fetch_add(1, std::memory_order_relaxed);
    stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
    const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
    stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
    account_queued(bytes, stats);
    ++limbo_data_;
  }
  const std::uint64_t ticks =
      1 + fault_hash(plan_.seed, msg.header.seq, kFaultSaltDelayTicks) % window;
  limbo_.push_back(Limbo{std::move(msg), tick_ + ticks});
  return true;
}

void Inbox::fault_tick(NetStats& stats) {
  std::vector<Message> due_dones;
  std::uint64_t stall_us = 0;
  {
    std::lock_guard lock(mutex_);
    const std::uint64_t now = ++tick_;
    if (crash_armed_ && now >= crash_tick_ &&
        !crashed_.load(std::memory_order_relaxed)) {
      crashed_.store(true, std::memory_order_release);
    }
    for (std::size_t i = 0; i < limbo_.size();) {
      if (limbo_[i].release_tick > now) {
        ++i;
        continue;
      }
      Message msg = std::move(limbo_[i].msg);
      limbo_[i] = std::move(limbo_.back());
      limbo_.pop_back();
      if (msg.header.type == MessageType::kData) {
        --limbo_data_;
        heap_insert(std::move(msg));
      } else {
        due_dones.push_back(std::move(msg));
      }
    }
    if (slow_machine_) {
      const std::uint64_t key =
          now ^ (static_cast<std::uint64_t>(self_) << 48);
      if (fault_roll(fault_hash(plan_.seed, key, kFaultSaltStall),
                     plan_.stall_prob)) {
        stall_us = 1 + fault_hash(plan_.seed, key, kFaultSaltStallTicks) %
                           plan_.stall_max_us;
      }
    }
  }
  for (const auto& done : due_dones) deliver_done(done);
  if (stall_us > 0) {
    stats.faults_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

void Inbox::drain_faults(NetStats& stats) {
  if (!faults_on_) return;
  std::vector<Message> due_dones;
  {
    std::lock_guard lock(mutex_);
    // A data message still in limbo would mean termination was declared
    // with unprocessed contexts — the sent/processed counters make that
    // impossible, so finding one is a protocol violation.
    engine_check(limbo_data_ == 0,
                 "data message stranded in fault limbo after termination");
    for (auto& held : limbo_) due_dones.push_back(std::move(held.msg));
    limbo_.clear();
  }
  for (const auto& done : due_dones) deliver_done(done);
  (void)stats;
}

std::vector<Message> Inbox::drain_aborted(NetStats& stats) {
  std::vector<Message> leftovers;
  std::vector<Message> due_dones;
  {
    std::lock_guard lock(mutex_);
    for (auto& entry : heap_) leftovers.push_back(std::move(entry.msg));
    heap_.clear();
    for (auto& held : limbo_) {
      if (held.msg.header.type == MessageType::kData) {
        leftovers.push_back(std::move(held.msg));
      } else {
        due_dones.push_back(std::move(held.msg));
      }
    }
    limbo_.clear();
    limbo_data_ = 0;
  }
  // Limbo'd credit returns still count — an abort must leave outstanding
  // credits at zero exactly like healthy termination does.
  for (const auto& done : due_dones) deliver_done(done);
  for (const auto& msg : leftovers) {
    account_dequeued(msg.payload.size(), stats);
  }
  return leftovers;
}

void Inbox::push(Message msg, NetStats& stats) {
  if (msg.header.type == MessageType::kAbort) {
    // Control-channel priority: handled at delivery time (like a DONE),
    // never delayed, deduped, or counted against queued bytes. The first
    // reason to arrive sticks; later broadcasts of a lost race are
    // ignored.
    stats.abort_messages.fetch_add(1, std::memory_order_relaxed);
    std::uint8_t expected = 0;
    abort_reason_.compare_exchange_strong(expected, msg.header.abort_reason,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
    // Kick senders sleeping on flow-control credits so they re-poll the
    // halt flag now instead of after their timed wait.
    if (flow_ != nullptr) flow_->poke();
    return;
  }
  if (epoch_ != 0 && msg.header.epoch != epoch_) {
    // A message from a different query epoch: in-flight residue of an
    // aborted run. Its sender's credits were reclaimed by that run's
    // abort drain; delivering it would seed work in the wrong query.
    stats.epoch_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (faults_on_ && msg.header.type != MessageType::kTermination) {
    std::unique_lock lock(mutex_);
    if (fault_dedup_or_delay(msg, stats)) return;
    // Not consumed by a fault: deliver normally. Data can be heaped
    // while the lock is still held; DONEs release credits below.
    if (msg.header.type == MessageType::kData) {
      stats.data_messages.fetch_add(1, std::memory_order_relaxed);
      stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
      const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
      stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
      account_queued(bytes, stats);
      heap_insert(std::move(msg));
      return;
    }
    lock.unlock();
    stats.done_messages.fetch_add(1, std::memory_order_relaxed);
    deliver_done(msg);
    return;
  }
  switch (msg.header.type) {
    case MessageType::kDone:
      // Receiver-thread behaviour: return the credit immediately.
      stats.done_messages.fetch_add(1, std::memory_order_relaxed);
      deliver_done(msg);
      return;
    case MessageType::kTermination:
      stats.term_messages.fetch_add(1, std::memory_order_relaxed);
      term_.push(std::move(msg));
      return;
    case MessageType::kData: {
      stats.data_messages.fetch_add(1, std::memory_order_relaxed);
      stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
      const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
      stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
      account_queued(bytes, stats);
      std::lock_guard lock(mutex_);
      heap_insert(std::move(msg));
      return;
    }
    case MessageType::kAbort:
      return;  // handled above; unreachable
  }
}

std::optional<Message> Inbox::try_pop_data(NetStats& stats) {
  if (faults_on_) fault_tick(stats);
  const auto cmp = [this](const Entry& a, const Entry& b) {
    return before(a, b);
  };
  std::unique_lock lock(mutex_);
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  Message msg = std::move(heap_.back().msg);
  heap_.pop_back();
  lock.unlock();
  account_dequeued(msg.payload.size(), stats);
  return msg;
}

std::optional<Message> Inbox::try_pop_term() { return term_.try_pop(); }

bool Inbox::has_data() const {
  std::lock_guard lock(mutex_);
  return !heap_.empty() || limbo_data_ > 0;
}

std::size_t Inbox::data_size() const {
  std::lock_guard lock(mutex_);
  return heap_.size() + limbo_data_;
}

void Network::set_fault_plan(const FaultPlan& plan) {
  plan_ = plan;
  faults_on_ = plan.any();
  for (unsigned m = 0; m < inboxes_.size(); ++m) {
    inboxes_[m].configure_faults(plan, static_cast<MachineId>(m),
                                 num_machines());
  }
}

void Network::set_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  for (auto& inbox : inboxes_) inbox.set_epoch(epoch);
}

void Network::broadcast_abort(AbortReason reason) {
  for (unsigned m = 0; m < inboxes_.size(); ++m) {
    Message msg;
    msg.header.type = MessageType::kAbort;
    msg.header.abort_reason = static_cast<std::uint8_t>(reason);
    msg.header.epoch = epoch_;
    inboxes_[m].push(std::move(msg), stats_);
  }
}

void Network::send(MachineId dest, Message msg) {
  engine_check(dest < inboxes_.size(), "send to unknown machine");
  msg.header.epoch = epoch_;
  if (faults_on_) {
    msg.header.seq = send_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (inboxes_[dest].crashed()) {
    // Crash-stop blackhole. Data vanishes, but the transport synthesizes
    // the DONE completion the dead machine will never send (the RDMA
    // error-completion analogy): the sender's credit must return or the
    // whole cluster wedges on the failure instead of aborting cleanly.
    switch (msg.header.type) {
      case MessageType::kData: {
        stats_.blackholed_messages.fetch_add(1, std::memory_order_relaxed);
        Message done;
        done.header.type = MessageType::kDone;
        done.header.src = dest;
        done.header.stage = msg.header.stage;
        done.header.credit = msg.header.credit;
        done.header.credit_depth = msg.header.credit_depth;
        // Reuses the data message's seq: a duplicated copy of the same
        // send then synthesizes a DONE with the same identity, and the
        // sender's transport dedup collapses them to one credit return.
        done.header.seq = msg.header.seq;
        done.header.epoch = msg.header.epoch;
        inboxes_[msg.header.src].push(std::move(done), stats_);
        return;
      }
      case MessageType::kTermination:
      case MessageType::kAbort:
        return;  // nobody is listening
      case MessageType::kDone:
        // Still delivered: the credit audit models the cluster-wide
        // buffer-pool bookkeeping, which survives the member's death.
        break;
    }
  }
  if (faults_on_) {
    double dup_prob = 0.0;
    switch (msg.header.type) {
      case MessageType::kData: dup_prob = plan_.dup_data_prob; break;
      case MessageType::kDone: dup_prob = plan_.dup_done_prob; break;
      case MessageType::kTermination: dup_prob = plan_.dup_term_prob; break;
      case MessageType::kAbort: break;  // control channel: never duplicated
    }
    if (fault_roll(fault_hash(plan_.seed, msg.header.seq, kFaultSaltDup),
                   dup_prob)) {
      stats_.faults_duplicated.fetch_add(1, std::memory_order_relaxed);
      Message copy;
      copy.header = msg.header;
      copy.payload = msg.payload;
      inboxes_[dest].push(std::move(copy), stats_);
    }
  }
  inboxes_[dest].push(std::move(msg), stats_);
}

}  // namespace rpqd
