#include "net/network.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/crc32.h"
#include "common/error.h"

namespace rpqd {

void NetStats::note_queued(std::uint64_t delta_add) {
  const auto now =
      queued_bytes.fetch_add(delta_add, std::memory_order_relaxed) + delta_add;
  auto peak = peak_queued_bytes.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void NetStats::note_dequeued(std::uint64_t delta_sub) {
  const auto prev = queued_bytes.fetch_sub(delta_sub, std::memory_order_relaxed);
  // Accounting audit: every dequeue must be covered by a prior enqueue.
  // An underflow here means a message was popped twice or its payload
  // mutated between queue and dequeue; the wrapped counter would
  // otherwise poison peak_queued_bytes silently.
  engine_check(prev >= delta_sub, "queued_bytes underflow on dequeue");
}

void Inbox::account_queued(std::uint64_t bytes, NetStats& stats) {
  stats.note_queued(bytes);
  const auto now =
      queued_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  auto peak = peak_queued_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_queued_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Inbox::account_dequeued(std::uint64_t bytes, NetStats& stats) {
  stats.note_dequeued(bytes);
  const auto prev = queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  engine_check(prev >= bytes, "inbox queued_bytes underflow on dequeue");
}

void Inbox::configure_faults(const FaultPlan& plan, MachineId self,
                             unsigned num_machines) {
  plan_ = plan;
  self_ = self;
  faults_on_ = plan.any();
  slow_machine_ =
      faults_on_ && plan.stall_max_us > 0 &&
      fault_roll(fault_hash(plan.seed, self, kFaultSaltSlowMachine),
                 plan.slow_machine_fraction);
  // Crash-stop arming: this machine dies at crash_tick_ iff it is the
  // plan's (possibly seed-selected) victim AND the plan's run index
  // matches — crash-stop is a one-shot failure, so a retried query runs
  // against a healthy cluster again.
  crash_armed_ = false;
  if (plan.crash_enabled() && plan.run_index == plan.crash_run &&
      num_machines > 0) {
    const MachineId victim =
        plan.crash_machine >= 0
            ? static_cast<MachineId>(plan.crash_machine)
            : static_cast<MachineId>(
                  fault_hash(plan.seed, num_machines, kFaultSaltCrash) %
                  num_machines);
    crash_armed_ = victim == self;
    crash_tick_ = plan.crash_tick;
  }
}

void Inbox::arm_reliable(unsigned num_machines,
                         const std::atomic<std::uint64_t>* clock,
                         std::atomic<std::uint64_t>* undelivered) {
  reliable_on_ = true;
  rx_.assign(num_machines, LinkRx{});
  reliable_clock_ = clock;
  reliable_undelivered_ = undelivered;
}

bool Inbox::reliable_accept(MachineId src, std::uint64_t link_seq,
                            NetStats& stats) {
  std::lock_guard lock(rx_mutex_);
  LinkRx& rx = rx_[src];
  const std::uint64_t now =
      reliable_clock_ != nullptr
          ? reliable_clock_->load(std::memory_order_relaxed)
          : 0;
  if (link_seq <= rx.cum || rx.ooo.count(link_seq) != 0) {
    stats.dedup_drops.fetch_add(1, std::memory_order_relaxed);
    // A duplicate usually means our previous ack was lost: owe a fresh
    // one so the sender stops retransmitting.
    if (!rx.ack_owed) {
      rx.ack_owed = true;
      rx.owed_since = now;
    }
    return false;
  }
  if (link_seq == rx.cum + 1) {
    rx.cum = link_seq;
    auto it = rx.ooo.begin();
    while (it != rx.ooo.end() && *it == rx.cum + 1) {
      rx.cum = *it;
      it = rx.ooo.erase(it);
    }
  } else {
    rx.ooo.insert(link_seq);
  }
  if (!rx.ack_owed) {
    rx.ack_owed = true;
    rx.owed_since = now;
  }
  return true;
}

void Inbox::fill_ack(MachineId src, std::uint64_t& ack_cum,
                     std::uint64_t& ack_bits) {
  ack_cum = 0;
  ack_bits = 0;
  if (!reliable_on_) return;
  std::lock_guard lock(rx_mutex_);
  LinkRx& rx = rx_[src];
  ack_cum = rx.cum;
  for (const std::uint64_t seq : rx.ooo) {
    const std::uint64_t off = seq - rx.cum;
    if (off >= 1 && off <= 64) ack_bits |= 1ull << (off - 1);
  }
  rx.ack_owed = false;
}

std::vector<MachineId> Inbox::take_due_acks(std::uint64_t now,
                                            std::uint64_t idle_ticks) {
  std::vector<MachineId> due;
  if (!reliable_on_) return due;
  std::lock_guard lock(rx_mutex_);
  for (std::size_t src = 0; src < rx_.size(); ++src) {
    const LinkRx& rx = rx_[src];
    if (rx.ack_owed && now >= rx.owed_since + idle_ticks) {
      due.push_back(static_cast<MachineId>(src));
    }
  }
  return due;
}

bool Inbox::reliable_delivered(MachineId src, std::uint64_t link_seq) const {
  if (!reliable_on_) return false;
  std::lock_guard lock(rx_mutex_);
  const LinkRx& rx = rx_[src];
  return link_seq <= rx.cum || rx.ooo.count(link_seq) != 0;
}

void Inbox::heap_insert(Message msg) {
  const auto cmp = [this](const Entry& a, const Entry& b) {
    return before(a, b);
  };
  // LoadBoard signal: contexts now visible in this machine's pickup
  // heap. Limbo'd messages count only once released here — a delayed
  // message is not pickable backlog yet.
  if (board_ != nullptr) {
    board_->add_queued(board_self_, msg.header.count);
  }
  heap_.push_back(Entry{std::move(msg), next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), cmp);
}

void Inbox::deliver_done(const Message& msg) {
  engine_check(flow_ != nullptr, "inbox without flow control");
  flow_->release(msg.header.src, msg.header.stage, msg.header.credit_depth,
                 msg.header.credit);
}

bool Inbox::fault_dedup_or_delay(Message& msg, NetStats& stats) {
  // Transport dedup: a duplicated copy carries the same send sequence
  // number; dropping it here is the reliable transport masking the fault
  // (exactly-once delivery as seen by the engine).
  if (!seen_.insert(msg.header.seq).second) {
    stats.faults_dup_dropped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const bool is_done = msg.header.type == MessageType::kDone;
  const double prob = is_done ? plan_.done_delay_prob : plan_.delay_prob;
  const unsigned window = is_done ? plan_.done_delay_window
                                  : plan_.delay_window;
  if (window == 0 ||
      !fault_roll(fault_hash(plan_.seed, msg.header.seq, kFaultSaltDelay),
                  prob)) {
    return false;  // deliver normally
  }
  // Divert into limbo for 1..window pickup ticks. Delivery stats are
  // counted now (the message has arrived at this machine; it is merely
  // invisible to pickup), so queued-bytes accounting matches the
  // eventual dequeue.
  stats.faults_delayed.fetch_add(1, std::memory_order_relaxed);
  if (is_done) {
    stats.done_messages.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats.data_messages.fetch_add(1, std::memory_order_relaxed);
    stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
    const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
    stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
    account_queued(bytes, stats);
    ++limbo_data_;
  }
  const std::uint64_t ticks =
      1 + fault_hash(plan_.seed, msg.header.seq, kFaultSaltDelayTicks) % window;
  limbo_.push_back(Limbo{std::move(msg), tick_ + ticks});
  return true;
}

void Inbox::fault_tick(NetStats& stats) {
  std::vector<Message> due_dones;
  std::uint64_t stall_us = 0;
  {
    std::lock_guard lock(mutex_);
    const std::uint64_t now = ++tick_;
    if (crash_armed_ && now >= crash_tick_ &&
        !crashed_.load(std::memory_order_relaxed)) {
      crashed_.store(true, std::memory_order_release);
    }
    for (std::size_t i = 0; i < limbo_.size();) {
      if (limbo_[i].release_tick > now) {
        ++i;
        continue;
      }
      Message msg = std::move(limbo_[i].msg);
      limbo_[i] = std::move(limbo_.back());
      limbo_.pop_back();
      if (msg.header.type == MessageType::kData) {
        --limbo_data_;
        heap_insert(std::move(msg));
      } else {
        due_dones.push_back(std::move(msg));
      }
    }
    if (slow_machine_) {
      const std::uint64_t key =
          now ^ (static_cast<std::uint64_t>(self_) << 48);
      if (fault_roll(fault_hash(plan_.seed, key, kFaultSaltStall),
                     plan_.stall_prob)) {
        stall_us = 1 + fault_hash(plan_.seed, key, kFaultSaltStallTicks) %
                           plan_.stall_max_us;
      }
    }
  }
  for (const auto& done : due_dones) deliver_done(done);
  if (stall_us > 0) {
    stats.faults_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

void Inbox::drain_faults(NetStats& stats) {
  if (!faults_on_) return;
  std::vector<Message> due_dones;
  {
    std::lock_guard lock(mutex_);
    // A data message still in limbo would mean termination was declared
    // with unprocessed contexts — the sent/processed counters make that
    // impossible, so finding one is a protocol violation.
    engine_check(limbo_data_ == 0,
                 "data message stranded in fault limbo after termination");
    for (auto& held : limbo_) due_dones.push_back(std::move(held.msg));
    limbo_.clear();
  }
  for (const auto& done : due_dones) deliver_done(done);
  (void)stats;
}

std::vector<Message> Inbox::drain_aborted(NetStats& stats) {
  std::vector<Message> leftovers;
  std::vector<Message> due_dones;
  {
    std::lock_guard lock(mutex_);
    for (auto& entry : heap_) leftovers.push_back(std::move(entry.msg));
    heap_.clear();
    for (auto& held : limbo_) {
      if (held.msg.header.type == MessageType::kData) {
        leftovers.push_back(std::move(held.msg));
      } else {
        due_dones.push_back(std::move(held.msg));
      }
    }
    limbo_.clear();
    limbo_data_ = 0;
  }
  // Limbo'd credit returns still count — an abort must leave outstanding
  // credits at zero exactly like healthy termination does.
  for (const auto& done : due_dones) deliver_done(done);
  for (const auto& msg : leftovers) {
    account_dequeued(msg.payload.size(), stats);
  }
  return leftovers;
}

void Inbox::push(Message msg, NetStats& stats) {
  if (msg.header.type == MessageType::kAbort) {
    // Control-channel priority: handled at delivery time (like a DONE),
    // never delayed, deduped, or counted against queued bytes. The first
    // reason to arrive sticks; later broadcasts of a lost race are
    // ignored.
    stats.abort_messages.fetch_add(1, std::memory_order_relaxed);
    std::uint8_t expected = 0;
    abort_reason_.compare_exchange_strong(expected, msg.header.abort_reason,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
    // Kick senders sleeping on flow-control credits so they re-poll the
    // halt flag now instead of after their timed wait.
    if (flow_ != nullptr) flow_->poke();
    return;
  }
  if (msg.header.type == MessageType::kMirrorRefresh) {
    // Control-channel arming broadcast (DESIGN.md §14): like kAbort it
    // is never delayed, deduped, faulted, or counted against queued
    // bytes — delivery just latches the mirror-ready flag workers
    // consult before delegating hot-vertex fan-out. Latched for the run
    // (one Network per query), so no epoch check is needed either.
    mirror_ready_.store(true, std::memory_order_release);
    return;
  }
  if (epoch_ != 0 && msg.header.epoch != epoch_) {
    // A message from a different query epoch: in-flight residue of an
    // aborted run. Its sender's credits were reclaimed by that run's
    // abort drain; delivering it would seed work in the wrong query.
    stats.epoch_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (reliable_on_ && msg.header.link_seq != 0) {
    // Integrity first: a corrupted payload is dropped exactly like a
    // lost transmission — the sender's timer retransmits a clean copy.
    // (The header — including the piggybacked acks, which Network
    // applied before delivery — is modeled as surviving; the checksum
    // covers the payload.)
    if (crc32(msg.payload) != msg.header.crc) {
      stats.payload_corruptions_detected.fetch_add(1,
                                                   std::memory_order_relaxed);
      return;
    }
    // Exactly-once: link-seq dedup runs BEFORE any message/byte/context
    // counting, so a retransmitted or duplicated copy can never
    // double-count a NetStats counter or double-apply its effects.
    if (!reliable_accept(msg.header.src, msg.header.link_seq, stats)) return;
    // First delivery of a count-bearing / status message: it no longer
    // gates the §3.4 termination decision (Network::quiescent()).
    if (msg.header.type != MessageType::kDone &&
        reliable_undelivered_ != nullptr) {
      reliable_undelivered_->fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  if (faults_on_ && msg.header.type != MessageType::kTermination) {
    std::unique_lock lock(mutex_);
    if (fault_dedup_or_delay(msg, stats)) return;
    // Not consumed by a fault: deliver normally. Data can be heaped
    // while the lock is still held; DONEs release credits below.
    if (msg.header.type == MessageType::kData) {
      stats.data_messages.fetch_add(1, std::memory_order_relaxed);
      stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
      const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
      stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
      account_queued(bytes, stats);
      heap_insert(std::move(msg));
      return;
    }
    lock.unlock();
    stats.done_messages.fetch_add(1, std::memory_order_relaxed);
    deliver_done(msg);
    return;
  }
  switch (msg.header.type) {
    case MessageType::kDone:
      // Receiver-thread behaviour: return the credit immediately.
      stats.done_messages.fetch_add(1, std::memory_order_relaxed);
      deliver_done(msg);
      return;
    case MessageType::kTermination:
      stats.term_messages.fetch_add(1, std::memory_order_relaxed);
      term_.push(std::move(msg));
      return;
    case MessageType::kData: {
      stats.data_messages.fetch_add(1, std::memory_order_relaxed);
      stats.contexts.fetch_add(msg.header.count, std::memory_order_relaxed);
      const auto bytes = static_cast<std::uint64_t>(msg.payload.size());
      stats.bytes.fetch_add(bytes, std::memory_order_relaxed);
      account_queued(bytes, stats);
      std::lock_guard lock(mutex_);
      heap_insert(std::move(msg));
      return;
    }
    case MessageType::kAbort:
    case MessageType::kMirrorRefresh:
    case MessageType::kAck:
      return;  // kAbort/kMirrorRefresh handled above; kAck terminates in
               // Network::transmit
  }
}

std::optional<Message> Inbox::try_pop_data(NetStats& stats) {
  if (faults_on_) fault_tick(stats);
  const auto cmp = [this](const Entry& a, const Entry& b) {
    return before(a, b);
  };
  std::unique_lock lock(mutex_);
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  Message msg = std::move(heap_.back().msg);
  heap_.pop_back();
  lock.unlock();
  if (board_ != nullptr) {
    board_->add_queued(board_self_,
                       -static_cast<std::int64_t>(msg.header.count));
  }
  account_dequeued(msg.payload.size(), stats);
  return msg;
}

std::optional<Message> Inbox::try_pop_term() { return term_.try_pop(); }

bool Inbox::has_data() const {
  std::lock_guard lock(mutex_);
  return !heap_.empty() || limbo_data_ > 0;
}

std::size_t Inbox::data_size() const {
  std::lock_guard lock(mutex_);
  return heap_.size() + limbo_data_;
}

void Network::set_fault_plan(const FaultPlan& plan) {
  plan_ = plan;
  faults_on_ = plan.any();
  for (unsigned m = 0; m < inboxes_.size(); ++m) {
    inboxes_[m].configure_faults(plan, static_cast<MachineId>(m),
                                 num_machines());
  }
}

void Network::set_epoch(std::uint32_t epoch) {
  epoch_ = epoch;
  for (auto& inbox : inboxes_) inbox.set_epoch(epoch);
}

void Network::configure_reliability(const ReliableConfig& cfg) {
  lossy_ = plan_.lossy();
  rcfg_ = cfg;
  reliable_on_ = cfg.enabled || lossy_;
  rcfg_.enabled = reliable_on_;
  if (!reliable_on_) return;
  if (rcfg_.retransmit_timeout_ticks == 0) rcfg_.retransmit_timeout_ticks = 1;
  // LinkTx holds a mutex, so the vector is built in place and the
  // container itself move-assigned (pointer steal, no element moves).
  tx_ = std::vector<LinkTx>(static_cast<std::size_t>(num_machines()) *
                            num_machines());
  for (auto& inbox : inboxes_) {
    inbox.arm_reliable(num_machines(), &pump_tick_, &seq_undelivered_);
  }
}

namespace {

unsigned fault_class_of(MessageType type) {
  switch (type) {
    case MessageType::kData: return kFaultClassData;
    case MessageType::kDone: return kFaultClassDone;
    case MessageType::kTermination: return kFaultClassTermination;
    case MessageType::kAbort: return kFaultClassAbort;
    case MessageType::kAck: return kFaultClassAck;
    case MessageType::kMirrorRefresh:
      return 0;  // control arming broadcast: never lost or corrupted
  }
  return 0;
}

}  // namespace

void Network::stamp_reliable(MachineId dest, Message& msg) {
  msg.header.crc = crc32(msg.payload);
  if (msg.header.type != MessageType::kDone) {
    seq_undelivered_.fetch_add(1, std::memory_order_seq_cst);
  }
  LinkTx& link = tx(msg.header.src, dest);
  const std::uint64_t now = pump_tick_.load(std::memory_order_relaxed);
  std::lock_guard lock(link.mutex);
  msg.header.link_seq = ++link.next_seq;
  Pending p;
  p.msg = msg;  // pristine copy; ack fields are refreshed per attempt
  p.attempts = 1;
  p.next_retry =
      now + backoff_ticks(msg.header.src, dest, msg.header.link_seq, 1);
  link.pending.emplace(msg.header.link_seq, std::move(p));
}

std::uint64_t Network::backoff_ticks(MachineId from, MachineId to,
                                     std::uint64_t link_seq,
                                     unsigned attempts) const {
  const std::uint64_t base =
      std::max<std::uint64_t>(1, rcfg_.retransmit_timeout_ticks);
  // Cap the exponential ramp at 16x base: past that point a longer
  // wait no longer decongests anything in this fabric, it only delays
  // the drain of the last few undelivered messages (the §3.4 decision
  // waits on fabric quiescence, so retransmission latency is directly
  // termination latency).
  const unsigned shift = std::min(attempts > 0 ? attempts - 1 : 0u, 4u);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) * inboxes_.size() + to) ^
      (link_seq << 16) ^ (static_cast<std::uint64_t>(attempts) << 56);
  return (base << shift) +
         fault_hash(plan_.seed, key, kFaultSaltRetransmit) % base;
}

void Network::ack_apply(MachineId from, MachineId to, std::uint64_t cum,
                        std::uint64_t bits) {
  if (cum == 0 && bits == 0) return;
  LinkTx& link = tx(from, to);
  std::lock_guard lock(link.mutex);
  bool progress = false;
  auto it = link.pending.begin();
  while (it != link.pending.end() && it->first <= cum) {
    it = link.pending.erase(it);
    progress = true;
  }
  for (unsigned i = 0; i < 64; ++i) {
    if ((bits >> i & 1u) == 0) continue;
    progress |= link.pending.erase(cum + 1 + i) > 0;
  }
  if (progress) {
    // The link is demonstrably alive: refund the retransmit budget of
    // everything still in flight. Pump ticks advance at wildly
    // different rates between busy and idle phases, so raw attempt
    // counts may only condemn a link that makes zero progress.
    for (auto& [seq, p] : link.pending) {
      if (!p.dead) p.attempts = 0;
    }
  }
}

void Network::transmit(MachineId dest, Message msg) {
  const bool control = msg.header.type == MessageType::kAbort ||
                       msg.header.type == MessageType::kMirrorRefresh;
  if (reliable_on_ && !control) {
    // Refresh the piggybacked ack: what the sending machine has
    // received from `dest` (the reverse link), as of this attempt.
    inboxes_[msg.header.src].fill_ack(dest, msg.header.ack_cum,
                                      msg.header.ack_bits);
  }
  if (lossy_) {
    // Per-ATTEMPT fault key: a retransmission must roll fresh dice, or
    // an unlucky message would be deterministically lost forever.
    const std::uint64_t attempt =
        xmit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const unsigned cls = fault_class_of(msg.header.type);
    if ((plan_.loss_classes & cls) != 0 &&
        fault_roll(fault_hash(plan_.seed, attempt, kFaultSaltLoss),
                   plan_.loss_rate)) {
      stats_.faults_lost.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if ((plan_.corrupt_classes & cls) != 0 &&
        fault_roll(fault_hash(plan_.seed, attempt, kFaultSaltCorrupt),
                   plan_.corrupt_rate)) {
      stats_.faults_corrupted.fetch_add(1, std::memory_order_relaxed);
      if (msg.header.type == MessageType::kAbort ||
          msg.header.type == MessageType::kAck) {
        // Headers-only control frame: corruption voids the whole frame;
        // the receiver's integrity check discards it, i.e. it is a loss
        // that also ticks the detection counter.
        stats_.payload_corruptions_detected.fetch_add(
            1, std::memory_order_relaxed);
        return;
      }
      if (!msg.payload.empty()) {
        const std::uint64_t h =
            fault_hash(plan_.seed, attempt, kFaultSaltCorruptByte);
        msg.payload[h % msg.payload.size()] ^=
            std::byte{static_cast<unsigned char>(1u << ((h >> 56) & 7))};
      } else {
        // Nothing to damage in an empty payload (DONE): break the
        // checksum itself so the receiver still uniformly detects it.
        msg.header.crc ^= 1u;
      }
    }
  }
  if (msg.header.type == MessageType::kAck) {
    // Standalone acks terminate in the transport: apply to the reverse
    // link's unacked ring (messages `dest` sent to this ack's origin).
    if (reliable_on_) {
      ack_apply(dest, msg.header.src, msg.header.ack_cum,
                msg.header.ack_bits);
    }
    return;
  }
  if (reliable_on_ && !control) {
    // Piggybacked acks are applied even when the payload was corrupted:
    // the header is modeled as surviving (the CRC covers the payload).
    ack_apply(dest, msg.header.src, msg.header.ack_cum, msg.header.ack_bits);
  }
  inboxes_[dest].push(std::move(msg), stats_);
}

void Network::scan_link(MachineId from, MachineId to, std::uint64_t now) {
  if (from == to) return;
  // A crashed endpoint stops the timers cold: retransmitting INTO the
  // crash would re-trigger the blackhole's synthesized DONE (a double
  // credit), and a crashed SENDER is dead by definition. The post-run
  // drain_reliable reconciles whatever is left in the ring.
  if (inboxes_[from].crashed() || inboxes_[to].crashed()) return;
  std::vector<Message> clones;
  bool dead = false;
  {
    LinkTx& link = tx(from, to);
    std::lock_guard lock(link.mutex);
    for (auto& [seq, p] : link.pending) {
      if (p.dead || now < p.next_retry) continue;
      if (p.attempts > rcfg_.max_retransmits) {
        p.dead = true;
        dead = true;
        continue;
      }
      ++p.attempts;
      p.next_retry = now + backoff_ticks(from, to, seq, p.attempts);
      clones.push_back(p.msg);
    }
  }
  for (auto& clone : clones) {
    stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
    transmit(to, std::move(clone));
  }
  if (dead) escalate_dead_link();
}

void Network::escalate_dead_link() {
  // The retransmit budget ran dry with zero ack progress: the link (and
  // for simulation purposes, the machine behind it) is declared dead.
  // Same ladder as the crash-stop failure detector: a typed retryable
  // abort, never a hang.
  if (abort_ == nullptr) return;
  if (abort_->request(AbortReason::kMachineFailure)) {
    broadcast_abort(AbortReason::kMachineFailure);
  }
}

void Network::pump(MachineId self) {
  (void)self;  // any worker may service any link — see the header note
  if (!reliable_on_) return;
  const std::uint64_t now =
      pump_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  const unsigned n = num_machines();
  // Standalone acks, striding one inbox per tick: a receiver that owes
  // an ack past the idle window gets it emitted on its behalf (shared-
  // memory simulation — the owing machine may be deep in a traversal).
  const auto ower = static_cast<MachineId>(now % n);
  if (!inboxes_[ower].crashed()) {
    for (const MachineId peer :
         inboxes_[ower].take_due_acks(now, rcfg_.ack_idle_ticks)) {
      Message ack;
      ack.header.type = MessageType::kAck;
      ack.header.src = ower;
      stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
      send(peer, std::move(ack));
    }
  }
  // Retransmission timers, striding one directed link per tick.
  const std::size_t nlinks = static_cast<std::size_t>(n) * n;
  const auto idx = static_cast<std::size_t>(now % nlinks);
  scan_link(static_cast<MachineId>(idx / n), static_cast<MachineId>(idx % n),
            now);
  // kAbort re-broadcast: the abort flag on each inbox is the implicit
  // ack; rebroadcast (rate-limited) until every live inbox has it.
  const std::uint8_t reason = abort_pending_.load(std::memory_order_relaxed);
  if (reason != 0 && now % 64 == 0) {
    bool all_acked = true;
    for (unsigned m = 0; m < n; ++m) {
      if (inboxes_[m].aborted() || inboxes_[m].crashed()) continue;
      all_acked = false;
      Message msg;
      msg.header.type = MessageType::kAbort;
      msg.header.abort_reason = reason;
      msg.header.epoch = epoch_;
      transmit(static_cast<MachineId>(m), std::move(msg));
    }
    if (all_acked) abort_pending_.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::pair<MachineId, Message>> Network::drain_reliable() {
  std::vector<std::pair<MachineId, Message>> undelivered_data;
  if (!reliable_on_) return undelivered_data;
  const unsigned n = num_machines();
  for (unsigned from = 0; from < n; ++from) {
    for (unsigned to = 0; to < n; ++to) {
      LinkTx& link = tx(static_cast<MachineId>(from),
                        static_cast<MachineId>(to));
      std::lock_guard lock(link.mutex);
      for (auto& [seq, p] : link.pending) {
        if (inboxes_[to].reliable_delivered(static_cast<MachineId>(from),
                                            seq)) {
          // Delivered but unacked: its effects are already in the inbox
          // (or its drains). Touching it again would double-apply.
          continue;
        }
        switch (p.msg.header.type) {
          case MessageType::kDone:
            // Legal even on clean runs: termination proves
            // sent == processed, not credits-home, so the last DONE of
            // a link can die in flight. Its credit comes home now.
            inboxes_[to].deliver_done(p.msg);
            break;
          case MessageType::kData:
            // Only possible on aborted runs (clean termination implies
            // every data message was processed — engine-checked by the
            // caller). The engine releases the sender's credit and
            // counts the discarded contexts.
            undelivered_data.emplace_back(static_cast<MachineId>(to),
                                          std::move(p.msg));
            break;
          default:
            break;  // termination statuses die with the run
        }
      }
      link.pending.clear();
    }
  }
  return undelivered_data;
}

void Network::broadcast_abort(AbortReason reason) {
  if (reliable_on_) {
    // Remember the reason so pump can re-broadcast to any machine whose
    // copy the fabric drops (first reason wins, matching the inbox CAS).
    std::uint8_t expected = 0;
    abort_pending_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(reason),
        std::memory_order_acq_rel, std::memory_order_acquire);
  }
  for (unsigned m = 0; m < inboxes_.size(); ++m) {
    Message msg;
    msg.header.type = MessageType::kAbort;
    msg.header.abort_reason = static_cast<std::uint8_t>(reason);
    msg.header.epoch = epoch_;
    transmit(static_cast<MachineId>(m), std::move(msg));
  }
}

void Network::broadcast_mirror_refresh(std::uint64_t mirror_version) {
  for (unsigned m = 0; m < inboxes_.size(); ++m) {
    Message msg;
    msg.header.type = MessageType::kMirrorRefresh;
    msg.header.flags = kMessageFlagMirror;
    msg.header.epoch = epoch_;
    // Informational: which MirrorSet build the broadcast armed.
    msg.header.seq = mirror_version;
    transmit(static_cast<MachineId>(m), std::move(msg));
  }
}

void Network::send(MachineId dest, Message msg) {
  engine_check(dest < inboxes_.size(), "send to unknown machine");
  msg.header.epoch = epoch_;
  if (faults_on_) {
    msg.header.seq = send_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (inboxes_[dest].crashed()) {
    // Crash-stop blackhole. Data vanishes, but the transport synthesizes
    // the DONE completion the dead machine will never send (the RDMA
    // error-completion analogy): the sender's credit must return or the
    // whole cluster wedges on the failure instead of aborting cleanly.
    // Runs before reliable stamping on purpose: a blackholed message
    // gets no ring entry, and the synthesized DONE is a *local*
    // completion that never crosses the lossy fabric (link_seq 0, so it
    // bypasses the link dedup; the shared header.seq still collapses
    // duplicate-send synthesized DONEs via the legacy dedup).
    switch (msg.header.type) {
      case MessageType::kData: {
        stats_.blackholed_messages.fetch_add(1, std::memory_order_relaxed);
        Message done;
        done.header.type = MessageType::kDone;
        done.header.src = dest;
        done.header.stage = msg.header.stage;
        done.header.credit = msg.header.credit;
        done.header.credit_depth = msg.header.credit_depth;
        // Reuses the data message's seq: a duplicated copy of the same
        // send then synthesizes a DONE with the same identity, and the
        // sender's transport dedup collapses them to one credit return.
        done.header.seq = msg.header.seq;
        done.header.epoch = msg.header.epoch;
        inboxes_[msg.header.src].push(std::move(done), stats_);
        return;
      }
      case MessageType::kTermination:
      case MessageType::kAbort:
      case MessageType::kMirrorRefresh:
      case MessageType::kAck:
        return;  // nobody is listening
      case MessageType::kDone:
        // Still delivered: the credit audit models the cluster-wide
        // buffer-pool bookkeeping, which survives the member's death.
        break;
    }
  }
  if (reliable_on_ && sequenced(msg.header.type)) {
    stamp_reliable(dest, msg);
  }
  if (faults_on_) {
    double dup_prob = 0.0;
    switch (msg.header.type) {
      case MessageType::kData: dup_prob = plan_.dup_data_prob; break;
      case MessageType::kDone: dup_prob = plan_.dup_done_prob; break;
      case MessageType::kTermination: dup_prob = plan_.dup_term_prob; break;
      case MessageType::kAbort: break;  // control channel: never duplicated
      case MessageType::kMirrorRefresh: break;  // control channel too
      case MessageType::kAck: break;    // transport-internal: never duplicated
    }
    if (fault_roll(fault_hash(plan_.seed, msg.header.seq, kFaultSaltDup),
                   dup_prob)) {
      stats_.faults_duplicated.fetch_add(1, std::memory_order_relaxed);
      // The copy keeps the original's link_seq/crc, so under the
      // reliable layer the receiver's link dedup collapses the pair.
      Message copy;
      copy.header = msg.header;
      copy.payload = msg.payload;
      transmit(dest, std::move(copy));
    }
  }
  transmit(dest, std::move(msg));
}

}  // namespace rpqd
