// Credit-based flow control (§3.3).
//
// Each machine owns a fixed allowance of message buffers, partitioned
// equally among stages and destination machines. RPQ stages additionally
// partition their buffers per depth up to a preconfigured depth D;
// depths >= D draw from a small shared pool per path stage, and a bounded
// number of overflow credits (one per observed depth) break the livelock
// where a path stage is blocked at depth D but credits only free up after
// matching at depth > D.
//
// A credit is acquired before sending to a destination machine and
// released when that machine reports the buffer processed (DONE message).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "net/message.h"

namespace rpqd {

struct FlowControlStats {
  std::uint64_t acquired = 0;
  std::uint64_t blocked = 0;        // try_acquire failures (§4.2 metric)
  std::uint64_t shared_used = 0;
  std::uint64_t overflow_used = 0;
  std::uint64_t emergency_used = 0;
};

class FlowControl {
 public:
  /// `is_rpq_stage[s]` marks path/control stages (they use the RPQ
  /// partitioning); other stages use the fixed per-(stage,machine) pools.
  FlowControl(const EngineConfig& config, unsigned num_machines,
              std::vector<bool> is_rpq_stage);

  /// Tries to take one send credit for (dest, stage, depth). Returns the
  /// credit class consumed, or nullopt when the caller must back off and
  /// process incoming work instead (pickup rule iii of §3.2).
  std::optional<CreditClass> try_acquire(MachineId dest, StageId stage,
                                         Depth depth);

  /// Returns a credit (on receipt of the matching DONE message).
  void release(MachineId dest, StageId stage, Depth depth, CreditClass credit);

  /// Last-resort credit when a worker exhausted its pickup-nesting budget
  /// and spun without progress. Unbounded but counted: a healthy run never
  /// takes one (asserted by tests).
  CreditClass acquire_emergency();

  /// Blocks up to `max_wait` for any credit release, so blocked senders
  /// wake immediately when a DONE returns instead of polling.
  void wait_for_release(std::chrono::microseconds max_wait);

  FlowControlStats stats() const;

  /// Total credits currently outstanding (for leak checks in tests).
  std::uint64_t outstanding() const;

 private:
  struct StagePool {
    bool is_rpq = false;
    // Fixed stages: one counter per destination machine.
    // RPQ stages: per destination, one counter per depth < D, plus a
    // shared counter and an overflow set keyed by depth.
    std::vector<std::vector<unsigned>> dedicated;  // [dest][depth or 0]
    std::vector<unsigned> shared;                  // [dest]
    std::vector<std::unordered_set<Depth>> overflow_out;  // [dest] in-use
  };

  mutable std::mutex mutex_;
  std::condition_variable released_;
  EngineConfig config_;
  unsigned num_machines_;
  std::vector<StagePool> pools_;
  unsigned per_slot_credits_ = 2;
  FlowControlStats stats_;
  std::uint64_t outstanding_ = 0;
};

}  // namespace rpqd
