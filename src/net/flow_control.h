// Credit-based flow control (§3.3).
//
// Each machine owns a fixed allowance of message buffers, partitioned
// equally among stages and destination machines. RPQ stages additionally
// partition their buffers per depth up to a preconfigured depth D;
// depths >= D draw from a small shared pool per path stage, and a bounded
// number of overflow credits (one per observed depth) break the livelock
// where a path stage is blocked at depth D but credits only free up after
// matching at depth > D.
//
// A credit is acquired before sending to a destination machine and
// released when that machine reports the buffer processed (DONE message).
// Under a lossy fault plan a DONE can be dropped or corrupted in flight;
// the §13 reliable-delivery layer sequences and retransmits it, so a
// blocked sender recovers once the retransmission lands (the blocked
// acquire loop pumps the transport timers while it waits). A link that
// never recovers escalates to a machine-failure abort rather than
// starving the sender forever; the starvation-abort deadline here is an
// independent, coarser backstop and is unchanged.
//
// Hot path: dedicated and shared credits live in flat arrays of atomic
// counters indexed by (stage, destination, depth); acquire and release
// are single compare-and-swap / fetch-add operations with no lock. The
// mutex only covers the overflow slow path (a per-destination depth set,
// touched when both pools are exhausted) and the blocked-sender
// condition variable. Fast-path grants are counted in `fast_path`.
//
// Per-query credit partitions (concurrent serving): when the engine
// serves several queries at once, each query's FlowControl instance is
// built over `buffers_per_machine * credit_partition_share` of the
// machine's buffer allowance instead of all of it, with the RPQ shared
// pool scaled the same way. Partitions are disjoint by construction
// (each query has its own instance over its own slice), so a deep query
// that exhausts its partition blocks only itself — the §3.3 back-off
// behavior — while a cheap concurrent query's credits are untouched.
// Every partition keeps the §3.3 floor of two credits per (stage,
// destination) slot plus at least one RPQ shared/overflow credit, so an
// arbitrarily small share degrades throughput but never liveness.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "net/message.h"

namespace rpqd {

struct FlowControlStats {
  std::uint64_t acquired = 0;
  std::uint64_t blocked = 0;        // try_acquire failures (§4.2 metric)
  std::uint64_t shared_used = 0;
  std::uint64_t overflow_used = 0;
  std::uint64_t emergency_used = 0;
  std::uint64_t fast_path = 0;      // grants served without taking the lock
};

class FlowControl {
 public:
  /// `is_rpq_stage[s]` marks path/control stages (they use the RPQ
  /// partitioning); other stages use the fixed per-(stage,machine) pools.
  FlowControl(const EngineConfig& config, unsigned num_machines,
              std::vector<bool> is_rpq_stage);

  /// Tries to take one send credit for (dest, stage, depth). Returns the
  /// credit class consumed, or nullopt when the caller must back off and
  /// process incoming work instead (pickup rule iii of §3.2).
  std::optional<CreditClass> try_acquire(MachineId dest, StageId stage,
                                         Depth depth);

  /// Returns a credit (on receipt of the matching DONE message).
  void release(MachineId dest, StageId stage, Depth depth, CreditClass credit);

  /// Last-resort credit when a worker exhausted its pickup-nesting budget
  /// and spun without progress. Unbounded but counted: a healthy run never
  /// takes one (asserted by tests).
  CreditClass acquire_emergency();

  /// Blocks up to `max_wait` for any credit release, so blocked senders
  /// wake immediately when a DONE returns instead of polling.
  void wait_for_release(std::chrono::microseconds max_wait);

  /// Wakes every sender sleeping in wait_for_release without releasing
  /// anything — the abort path's kick, so a worker blocked on credits
  /// re-polls its halt flag immediately instead of after the timeout.
  void poke();

  FlowControlStats stats() const;

  /// The credit-partition share this instance was built with (see the
  /// header comment; 1.0 outside concurrent serving).
  double partition_share() const { return partition_share_; }
  /// Buffer credits this partition actually holds per machine after
  /// scaling and the §3.3 progress floors (for tests and stats).
  std::uint64_t partition_credits() const;

  /// Total credits currently outstanding (for leak checks in tests).
  std::uint64_t outstanding() const;

  /// Overflow credits currently in flight (sum of the per-destination
  /// in-use depth sets). Must be zero once a query finishes — every
  /// overflow grant is matched by a DONE before termination can fire —
  /// so tests audit this after each run, including aborted/faulted ones.
  std::uint64_t overflow_outstanding() const;

 private:
  struct StagePool {
    bool is_rpq = false;
    unsigned window = 1;  // dedicated depths per destination (1 for fixed)
    int dedicated_init = 0;  // initial credits per dedicated slot
    int shared_init = 0;     // initial credits per shared slot
    // Flat atomic counters. Fixed stages: `dedicated[dest]`. RPQ stages:
    // `dedicated[dest * window + depth]` for depth < window, plus a
    // shared counter per destination.
    std::vector<std::atomic<int>> dedicated;
    std::vector<std::atomic<int>> shared;                 // [dest]
    // Slow path, guarded by mutex_: at most one overflow credit in
    // flight per (dest, depth).
    std::vector<std::unordered_set<Depth>> overflow_out;  // [dest] in-use
  };

  // Lock-free decrement-if-positive (speculative fetch_sub + repair);
  // the acquire-side fast-path primitive.
  static bool take(std::atomic<int>& credits);
  // Release side: fetch_add with overfill detection against `init`, so a
  // spurious release still throws without any global outstanding count.
  static void put(std::atomic<int>& credits, int init);

  mutable std::mutex mutex_;          // overflow sets + sleeping senders only
  std::condition_variable released_;
  std::atomic<unsigned> waiters_{0};
  EngineConfig config_;
  unsigned num_machines_;
  std::vector<StagePool> pools_;
  unsigned per_slot_credits_ = 2;
  double partition_share_ = 1.0;
  // Cumulative lock-free grants: the ONE global counter the fast path
  // touches (releases touch only the slot counter). `acquired` is
  // derived in stats(); `outstanding` is summed from the slot levels.
  std::atomic<std::uint64_t> fast_grants_{0};
  // Slow-path / fallback / failure counters (the dedicated-credit grant,
  // the common case, touches none of these).
  std::atomic<std::uint64_t> blocked_{0};
  std::atomic<std::uint64_t> shared_used_{0};
  std::atomic<std::uint64_t> overflow_used_{0};
  std::atomic<std::uint64_t> emergency_used_{0};
  std::atomic<std::int64_t> emergency_out_{0};
};

}  // namespace rpqd
