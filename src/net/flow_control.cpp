#include "net/flow_control.h"

#include <algorithm>

#include "common/error.h"

namespace rpqd {

const char* to_string(CreditClass c) {
  switch (c) {
    case CreditClass::kFixed: return "fixed";
    case CreditClass::kRpqDedicated: return "rpq-dedicated";
    case CreditClass::kRpqShared: return "rpq-shared";
    case CreditClass::kRpqOverflow: return "rpq-overflow";
    case CreditClass::kEmergency: return "emergency";
  }
  return "?";
}

FlowControl::FlowControl(const EngineConfig& config, unsigned num_machines,
                         std::vector<bool> is_rpq_stage)
    : config_(config), num_machines_(num_machines) {
  const auto num_stages = static_cast<unsigned>(is_rpq_stage.size());
  engine_check(num_stages > 0, "flow control needs at least one stage");

  // Partition the per-machine buffer allowance equally among stages and
  // destinations; every (stage, destination) slot gets at least two
  // buffers (one sending, one receiving) as required by §3.3.
  const unsigned slots = num_stages * num_machines;
  per_slot_credits_ =
      std::max(2u, config.buffers_per_machine / std::max(1u, slots));

  pools_.resize(num_stages);
  for (unsigned s = 0; s < num_stages; ++s) {
    StagePool& pool = pools_[s];
    pool.is_rpq = is_rpq_stage[s];
    pool.dedicated.resize(num_machines);
    pool.shared.assign(num_machines, 0);
    pool.overflow_out.resize(num_machines);
    for (unsigned m = 0; m < num_machines; ++m) {
      if (pool.is_rpq) {
        // Per-depth dedicated credits up to D; the same per-slot
        // allowance is spread over the depth window.
        const unsigned window = std::max(1u, config.rpq_preallocated_depth);
        const unsigned per_depth =
            std::max(1u, per_slot_credits_ / window);
        pool.dedicated[m].assign(window, per_depth);
        pool.shared[m] = config.rpq_shared_credits_per_stage;
      } else {
        pool.dedicated[m].assign(1, per_slot_credits_);
      }
    }
  }
}

std::optional<CreditClass> FlowControl::try_acquire(MachineId dest,
                                                    StageId stage,
                                                    Depth depth) {
  std::lock_guard lock(mutex_);
  engine_check(stage < pools_.size(), "flow control: stage out of range");
  StagePool& pool = pools_[stage];
  auto grant = [&](CreditClass c) {
    ++stats_.acquired;
    ++outstanding_;
    return std::optional<CreditClass>(c);
  };
  if (!pool.is_rpq) {
    unsigned& credits = pool.dedicated[dest][0];
    if (credits > 0) {
      --credits;
      return grant(CreditClass::kFixed);
    }
    ++stats_.blocked;
    return std::nullopt;
  }
  // RPQ stage: dedicated window first, then the shared pool, then one
  // overflow credit per depth.
  auto& window = pool.dedicated[dest];
  if (depth < window.size() && window[depth] > 0) {
    --window[depth];
    return grant(CreditClass::kRpqDedicated);
  }
  if (pool.shared[dest] > 0) {
    --pool.shared[dest];
    ++stats_.shared_used;
    return grant(CreditClass::kRpqShared);
  }
  auto& overflow = pool.overflow_out[dest];
  if (config_.rpq_overflow_credits_per_depth > 0 &&
      overflow.count(depth) == 0) {
    overflow.insert(depth);
    ++stats_.overflow_used;
    return grant(CreditClass::kRpqOverflow);
  }
  ++stats_.blocked;
  return std::nullopt;
}

void FlowControl::wait_for_release(std::chrono::microseconds max_wait) {
  std::unique_lock lock(mutex_);
  released_.wait_for(lock, max_wait);
}

void FlowControl::release(MachineId dest, StageId stage, Depth depth,
                          CreditClass credit) {
  std::lock_guard lock(mutex_);
  released_.notify_all();
  engine_check(stage < pools_.size(), "flow control: stage out of range");
  StagePool& pool = pools_[stage];
  engine_check(outstanding_ > 0, "flow control: release without acquire");
  --outstanding_;
  switch (credit) {
    case CreditClass::kFixed:
      ++pool.dedicated[dest][0];
      return;
    case CreditClass::kRpqDedicated:
      engine_check(depth < pool.dedicated[dest].size(),
                   "flow control: bad dedicated depth");
      ++pool.dedicated[dest][depth];
      return;
    case CreditClass::kRpqShared:
      ++pool.shared[dest];
      return;
    case CreditClass::kRpqOverflow:
      pool.overflow_out[dest].erase(depth);
      return;
    case CreditClass::kEmergency:
      return;  // unbounded; nothing to return to
  }
}

CreditClass FlowControl::acquire_emergency() {
  std::lock_guard lock(mutex_);
  ++stats_.emergency_used;
  ++outstanding_;
  return CreditClass::kEmergency;
}

FlowControlStats FlowControl::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::uint64_t FlowControl::outstanding() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

}  // namespace rpqd
