#include "net/flow_control.h"

#include <algorithm>

#include "common/error.h"

namespace rpqd {

const char* to_string(CreditClass c) {
  switch (c) {
    case CreditClass::kFixed: return "fixed";
    case CreditClass::kRpqDedicated: return "rpq-dedicated";
    case CreditClass::kRpqShared: return "rpq-shared";
    case CreditClass::kRpqOverflow: return "rpq-overflow";
    case CreditClass::kEmergency: return "emergency";
  }
  return "?";
}

FlowControl::FlowControl(const EngineConfig& config, unsigned num_machines,
                         std::vector<bool> is_rpq_stage)
    : config_(config), num_machines_(num_machines) {
  const auto num_stages = static_cast<unsigned>(is_rpq_stage.size());
  engine_check(num_stages > 0, "flow control needs at least one stage");

  // Per-query credit partition (concurrent serving): this query only
  // sees its share of the machine's buffer allowance. Clamped into
  // (0, 1]; the progress floors below keep any share live.
  partition_share_ = config.credit_partition_share;
  if (!(partition_share_ > 0.0) || partition_share_ > 1.0) {
    partition_share_ = 1.0;
  }
  const auto partitioned_buffers = static_cast<unsigned>(
      static_cast<double>(config.buffers_per_machine) * partition_share_);
  const auto partitioned_shared = static_cast<unsigned>(
      static_cast<double>(config.rpq_shared_credits_per_stage) *
      partition_share_);

  // Partition the per-machine buffer allowance equally among stages and
  // destinations; every (stage, destination) slot gets at least two
  // buffers (one sending, one receiving) as required by §3.3.
  const unsigned slots = num_stages * num_machines;
  per_slot_credits_ =
      std::max(2u, partitioned_buffers / std::max(1u, slots));

  pools_ = std::vector<StagePool>(num_stages);
  for (unsigned s = 0; s < num_stages; ++s) {
    StagePool& pool = pools_[s];
    pool.is_rpq = is_rpq_stage[s];
    pool.overflow_out.resize(num_machines);
    if (pool.is_rpq) {
      // Per-depth dedicated credits up to D; the same per-slot allowance
      // is spread over the depth window.
      pool.window = std::max(1u, config.rpq_preallocated_depth);
      pool.dedicated_init =
          static_cast<int>(std::max(1u, per_slot_credits_ / pool.window));
      // Scaled by the partition share, with a floor of one so the
      // beyond-window depths of even the thinnest partition can move.
      // The floor only revives shares the partition shrank: an
      // explicitly-zero shared allowance (starvation-abort tests, §3.3
      // ablations) stays zero.
      pool.shared_init =
          config.rpq_shared_credits_per_stage == 0
              ? 0
              : static_cast<int>(std::max(1u, partitioned_shared));
      pool.dedicated = std::vector<std::atomic<int>>(
          std::size_t{num_machines} * pool.window);
      for (auto& c : pool.dedicated)
        c.store(pool.dedicated_init, std::memory_order_relaxed);
      pool.shared = std::vector<std::atomic<int>>(num_machines);
      for (auto& c : pool.shared)
        c.store(pool.shared_init, std::memory_order_relaxed);
    } else {
      pool.window = 1;
      pool.dedicated_init = static_cast<int>(per_slot_credits_);
      pool.dedicated = std::vector<std::atomic<int>>(num_machines);
      for (auto& c : pool.dedicated)
        c.store(pool.dedicated_init, std::memory_order_relaxed);
    }
  }
}

bool FlowControl::take(std::atomic<int>& credits) {
  // Speculative decrement: one RMW on success. A transiently negative
  // counter (until the repair below) can only make a concurrent take
  // fail spuriously, which try_acquire treats as back-pressure anyway.
  if (credits.fetch_sub(1, std::memory_order_acquire) > 0) return true;
  credits.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void FlowControl::put(std::atomic<int>& credits, int init) {
  // Overfilling a slot beyond its initial allowance means a release
  // without a matching acquire; repair and report instead of leaking.
  const int prev = credits.fetch_add(1, std::memory_order_release);
  if (prev >= init) {
    credits.fetch_sub(1, std::memory_order_relaxed);
    engine_check(false, "flow control: release without acquire");
  }
}

std::optional<CreditClass> FlowControl::try_acquire(MachineId dest,
                                                    StageId stage,
                                                    Depth depth) {
  engine_check(stage < pools_.size(), "flow control: stage out of range");
  StagePool& pool = pools_[stage];
  if (!pool.is_rpq) {
    if (take(pool.dedicated[dest])) {
      fast_grants_.fetch_add(1, std::memory_order_relaxed);
      return CreditClass::kFixed;
    }
    blocked_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // RPQ stage: dedicated window first, then the shared pool — both
  // lock-free — then (slow path) one overflow credit per depth.
  if (depth < pool.window &&
      take(pool.dedicated[std::size_t{dest} * pool.window + depth])) {
    fast_grants_.fetch_add(1, std::memory_order_relaxed);
    return CreditClass::kRpqDedicated;
  }
  if (take(pool.shared[dest])) {
    shared_used_.fetch_add(1, std::memory_order_relaxed);
    fast_grants_.fetch_add(1, std::memory_order_relaxed);
    return CreditClass::kRpqShared;
  }
  if (config_.rpq_overflow_credits_per_depth > 0) {
    std::lock_guard lock(mutex_);
    auto& overflow = pool.overflow_out[dest];
    if (overflow.count(depth) == 0) {
      overflow.insert(depth);
      overflow_used_.fetch_add(1, std::memory_order_relaxed);
      return CreditClass::kRpqOverflow;
    }
  }
  blocked_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void FlowControl::poke() {
  std::lock_guard lock(mutex_);
  released_.notify_all();
}

void FlowControl::wait_for_release(std::chrono::microseconds max_wait) {
  std::unique_lock lock(mutex_);
  waiters_.fetch_add(1, std::memory_order_relaxed);
  released_.wait_for(lock, max_wait);
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void FlowControl::release(MachineId dest, StageId stage, Depth depth,
                          CreditClass credit) {
  engine_check(stage < pools_.size(), "flow control: stage out of range");
  StagePool& pool = pools_[stage];
  switch (credit) {
    case CreditClass::kFixed:
      put(pool.dedicated[dest], pool.dedicated_init);
      break;
    case CreditClass::kRpqDedicated:
      engine_check(depth < pool.window, "flow control: bad dedicated depth");
      put(pool.dedicated[std::size_t{dest} * pool.window + depth],
          pool.dedicated_init);
      break;
    case CreditClass::kRpqShared:
      put(pool.shared[dest], pool.shared_init);
      break;
    case CreditClass::kRpqOverflow: {
      std::lock_guard lock(mutex_);
      engine_check(pool.overflow_out[dest].erase(depth) == 1,
                   "flow control: release without acquire");
      break;
    }
    case CreditClass::kEmergency: {
      const auto prev = emergency_out_.fetch_sub(1, std::memory_order_relaxed);
      if (prev <= 0) {
        emergency_out_.fetch_add(1, std::memory_order_relaxed);
        engine_check(false, "flow control: release without acquire");
      }
      break;
    }
  }
  // Wake blocked senders only when someone is actually sleeping; their
  // waits are short and timed, so the unlocked check is safe.
  if (waiters_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard lock(mutex_);
    released_.notify_all();
  }
}

CreditClass FlowControl::acquire_emergency() {
  emergency_used_.fetch_add(1, std::memory_order_relaxed);
  emergency_out_.fetch_add(1, std::memory_order_relaxed);
  return CreditClass::kEmergency;
}

FlowControlStats FlowControl::stats() const {
  FlowControlStats s;
  s.fast_path = fast_grants_.load(std::memory_order_relaxed);
  s.blocked = blocked_.load(std::memory_order_relaxed);
  s.shared_used = shared_used_.load(std::memory_order_relaxed);
  s.overflow_used = overflow_used_.load(std::memory_order_relaxed);
  s.emergency_used = emergency_used_.load(std::memory_order_relaxed);
  s.acquired = s.fast_path + s.overflow_used + s.emergency_used;
  return s;
}

std::uint64_t FlowControl::partition_credits() const {
  // Initial allowance actually granted to this partition, after the
  // equal split over slots and the §3.3 floors (buffer credits only —
  // overflow/emergency are elastic valves, not partitioned memory).
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    total += static_cast<std::uint64_t>(pool.dedicated_init) *
             pool.dedicated.size();
    total +=
        static_cast<std::uint64_t>(pool.shared_init) * pool.shared.size();
  }
  return total;
}

std::uint64_t FlowControl::overflow_outstanding() const {
  std::uint64_t out = 0;
  std::lock_guard lock(mutex_);
  for (const auto& pool : pools_)
    for (const auto& set : pool.overflow_out)
      out += static_cast<std::uint64_t>(set.size());
  return out;
}

std::uint64_t FlowControl::outstanding() const {
  // Credits in flight = initial allowance minus current level, summed
  // over every slot, plus overflow/emergency credits. Meaningful at
  // quiescence (tests); under concurrency it is a best-effort snapshot.
  std::int64_t out = 0;
  for (const auto& pool : pools_) {
    for (const auto& c : pool.dedicated)
      out += pool.dedicated_init - c.load(std::memory_order_relaxed);
    for (const auto& c : pool.shared)
      out += pool.shared_init - c.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(mutex_);
    for (const auto& pool : pools_)
      for (const auto& set : pool.overflow_out)
        out += static_cast<std::int64_t>(set.size());
  }
  out += emergency_out_.load(std::memory_order_relaxed);
  return out > 0 ? static_cast<std::uint64_t>(out) : 0;
}

}  // namespace rpqd
