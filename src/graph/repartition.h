// Profile-driven offline repartitioning (DESIGN.md §14).
//
// The hash placement spreads *vertices* evenly, but RPQ work follows the
// traversal frontier: a workload whose queries keep expanding the same
// hub vertices piles its frames onto the hubs' owners. The Repartitioner
// closes the loop offline: it replays per-machine load observations
// (QueryProfile JSON dumps or RuntimeStats::machine_contexts vectors),
// attributes each machine's measured frame count to its owned vertices
// in proportion to degree — the only per-vertex signal that survives
// aggregation — and proposes
//
//   - a hot set (propose_hot_set): the vertices worth mirroring into
//     every machine's MirrorSet for delegated fan-out, and
//   - a vertex→machine map (propose): a greedy cost-balanced assignment
//     (heaviest vertex first onto the least-loaded machine, neighbor-
//     affinity tiebreak to keep the edge cut down) adoptable between
//     queries via Database::repartition.
//
// Everything here is offline and advisory: proposing never touches the
// running engine, and adopting a proposal goes through the same
// rebuild-at-a-quiescent-point path as a delta merge.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/profile.h"

namespace rpqd {

/// A proposed vertex→machine assignment plus the cost model's view of it.
struct RepartitionPlan {
  /// assignment[v] = v's proposed owner; index by VertexId. Always total
  /// over the graph the Repartitioner was built on.
  std::vector<MachineId> assignment;
  /// Modeled per-machine cost under the current placement and under the
  /// proposal (same units: attributed frame counts).
  std::vector<double> current_cost;
  std::vector<double> proposed_cost;
  /// max/mean of the cost vectors (1.0 = balanced); the proposal is only
  /// worth adopting when predicted_imbalance < current_imbalance.
  double current_imbalance = 1.0;
  double predicted_imbalance = 1.0;
  /// Vertices whose owner changes under the proposal.
  std::uint64_t moved_vertices = 0;
};

/// Offline profile replayer + greedy cost-balanced partitioner.
class Repartitioner {
 public:
  /// `current` resolves the placement the observations were collected
  /// under (cost attribution needs to know which machine's load a vertex
  /// contributed to).
  Repartitioner(std::shared_ptr<const Graph> graph, unsigned num_machines,
                std::shared_ptr<const PartitionMap> current = nullptr);

  /// Feeds one observed per-machine frame-count vector (e.g.
  /// RuntimeStats::machine_contexts of a finished query). Vectors shorter
  /// or longer than num_machines are clamped. Observations accumulate.
  void observe(const std::vector<std::uint64_t>& machine_contexts);

  /// Feeds one in-memory QueryProfile (its per-machine total_contexts).
  void observe_profile(const QueryProfile& profile);

  /// Feeds one QueryProfile::to_json() dump: extracts the per-machine
  /// "contexts" values from the "credits" array with a minimal scanner
  /// (no JSON dependency). Returns false (observing nothing) when the
  /// dump carries no credits array — e.g. profiling was disabled.
  bool observe_profile_json(std::string_view json);

  /// Queries observed so far (observe* calls that contributed load).
  std::uint64_t observations() const { return observations_; }

  /// The modeled per-vertex expansion cost: the observed load of v's
  /// current owner attributed over that machine's vertices by degree
  /// (out + in), plus a degree floor so unobserved graphs still balance
  /// structurally. Exposed for tests and for hot-set thresholds.
  double vertex_cost(VertexId v) const;

  /// Vertices worth mirroring: cost-ranked, capped at `max_hot`, and
  /// requiring degree ≥ `min_degree` (mirroring a low-degree vertex buys
  /// nothing — the delegated fan-out saves at most degree-1 contexts).
  std::vector<VertexId> propose_hot_set(std::size_t max_hot,
                                        std::uint64_t min_degree) const;

  /// Greedy cost-balanced proposal: vertices in descending cost order,
  /// each placed on the machine with the lowest accumulated cost;
  /// near-ties (within `affinity_slack`, a cost ratio) break toward the
  /// machine already owning the most neighbors, keeping the edge cut
  /// down without a full min-cut solve.
  RepartitionPlan propose(double affinity_slack = 1.02) const;

 private:
  MachineId current_owner(VertexId v) const;

  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const PartitionMap> current_;
  unsigned num_machines_ = 1;
  std::vector<double> observed_;  // per-machine accumulated frame counts
  std::uint64_t observations_ = 0;
};

}  // namespace rpqd
