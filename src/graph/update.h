// Online graph updates (DESIGN.md §12): the batch vocabulary shared by
// GraphStore (application + materialization), GraphSnapshot (delta
// layering), and the cache-coherence plumbing.
//
// A batch is applied atomically: the ops take effect in a fixed order —
// vertex inserts, edge inserts, edge deletes, vertex deletes (each
// cascading over its incident edges) — and produce exactly one new graph
// epoch. Queries never observe a torn batch because they pin an immutable
// snapshot at admission; the batch builds the NEXT snapshot.
//
// The catalog is frozen at seed-graph build time: updates reference
// existing LabelId/PropId values only (LDBC-style workloads grow the data,
// not the schema). Inserted edges get fresh EdgeIds past the seed range
// and carry no edge properties.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "graph/value.h"

namespace rpqd {

struct VertexInsert {
  LabelId label = 0;
  std::vector<std::pair<PropId, Value>> props;
};

struct EdgeInsert {
  /// Endpoints may be pre-existing vertices or vertices inserted by the
  /// SAME batch (ids are assigned in vertex_inserts order, so callers can
  /// compute them from the pre-batch num_vertices).
  VertexId src = 0;
  VertexId dst = 0;
  LabelId elabel = 0;
};

struct EdgeDelete {
  /// Deletes EVERY parallel (src, dst, elabel) edge alive at this point
  /// of the batch (homomorphic matching counts parallels, so deletion
  /// must drop them all to be observable).
  VertexId src = 0;
  VertexId dst = 0;
  LabelId elabel = 0;
};

struct VertexDelete {
  /// Tombstones the vertex and cascades over every incident edge (both
  /// directions). The id is never reused; merge keeps ids stable.
  VertexId v = 0;
};

struct UpdateBatch {
  std::vector<VertexInsert> vertex_inserts;
  std::vector<EdgeInsert> edge_inserts;
  std::vector<EdgeDelete> edge_deletes;
  std::vector<VertexDelete> vertex_deletes;

  bool empty() const {
    return vertex_inserts.empty() && edge_inserts.empty() &&
           edge_deletes.empty() && vertex_deletes.empty();
  }
  std::size_t num_ops() const {
    return vertex_inserts.size() + edge_inserts.size() + edge_deletes.size() +
           vertex_deletes.size();
  }
};

/// What one applied batch touched — the coherence currency (DESIGN.md
/// §12): reach caches bump per touched partition, the result cache
/// evicts entries whose automaton scope intersects the dirtied labels.
struct DirtyScope {
  std::vector<MachineId> partitions;   // sorted, unique
  std::vector<LabelId> vertex_labels;  // labels of inserted/deleted vertices
  std::vector<LabelId> edge_labels;    // labels of inserted/deleted edges
                                       // (incl. vertex-delete cascades)
  bool vertices_changed = false;
  bool edges_changed = false;

  bool empty() const { return !vertices_changed && !edges_changed; }
};

/// Label footprint of one compiled plan, for label-granular result-cache
/// eviction. `vertex_labels` are the labels the stage-0 scan can start
/// from; `edge_labels` are every hop's edge labels across all stages.
/// An empty list is a WILDCARD (the plan scans/hops without a label
/// restriction, so any change of that kind may affect it).
///
/// Vertex-label scope from the scan alone is sound: a vertex insert adds
/// no edges by itself, so it can only change results by seeding the
/// scan; a vertex delete's reachability effects travel through its
/// cascaded edge deletions, which dirty the edge labels and are caught
/// by the edge scope (an isolated vertex delete again only affects the
/// scan).
struct ResultCacheScope {
  /// Wildcard flags: true = any label of that kind can affect the plan
  /// (an unlabeled scan / an unlabeled hop — or the conservative default
  /// for callers that pass no scope). When false, only the listed labels
  /// can; a plan with NO edge hops has all_edge_labels = false and an
  /// empty list, so edge-only updates never evict it.
  bool all_vertex_labels = true;
  bool all_edge_labels = true;
  std::vector<LabelId> vertex_labels;  // sorted unique
  std::vector<LabelId> edge_labels;    // sorted unique
};

inline bool labels_intersect(const std::vector<LabelId>& a,
                             const std::vector<LabelId>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// True when a batch with dirty scope `dirty` may change the result of a
/// plan with footprint `scope` — the result-cache eviction predicate.
inline bool scope_affected(const ResultCacheScope& scope,
                           const DirtyScope& dirty) {
  if (dirty.vertices_changed &&
      (scope.all_vertex_labels || dirty.vertex_labels.empty() ||
       labels_intersect(scope.vertex_labels, dirty.vertex_labels))) {
    return true;
  }
  if (dirty.edges_changed &&
      (scope.all_edge_labels || dirty.edge_labels.empty() ||
       labels_intersect(scope.edge_labels, dirty.edge_labels))) {
    return true;
  }
  return false;
}

/// Receipt of one applied batch.
struct UpdateResult {
  /// The epoch this batch created (pre-batch epoch + 1).
  std::uint64_t epoch = 0;
  /// Ids assigned to vertex_inserts, in order.
  std::vector<VertexId> new_vertices;
  /// Ids assigned to edge_inserts, in order.
  std::vector<EdgeId> new_edges;
  /// Edges actually removed, including vertex-delete cascades.
  std::uint64_t edges_deleted = 0;
  DirtyScope dirty;
};

}  // namespace rpqd
