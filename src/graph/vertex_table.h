// Flat open-addressing map from global VertexId to LocalVertexId.
//
// Built once at partition-build time and read on every inbound message
// (`Partition::require_local`), so lookups must be as close to a single
// cache-line probe as possible: power-of-two capacity sized for a load
// factor <= 0.5, splitmix64 start slot, linear probing. Keys use
// kInvalidVertex as the empty sentinel, so that id cannot be stored
// (GraphBuilder never produces it).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/types.h"

namespace rpqd {

class FlatVertexTable {
 public:
  FlatVertexTable() = default;

  /// Empty table with room for `min_capacity` slots (rounded up to a
  /// power of two, minimum 2). Mostly for tests; prefer build().
  explicit FlatVertexTable(std::size_t min_capacity) {
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(2, min_capacity));
    keys_.assign(cap, kInvalidVertex);
    values_.resize(cap);
    mask_ = cap - 1;
  }

  /// Maps vertices[i] -> i for all i. Capacity is 2x the key count so
  /// probe chains stay short (expected O(1), load factor <= 0.5).
  static FlatVertexTable build(const std::vector<VertexId>& vertices) {
    FlatVertexTable table(std::max<std::size_t>(2, vertices.size() * 2));
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      const bool inserted =
          table.insert(vertices[i], static_cast<LocalVertexId>(i));
      engine_check(inserted, "vertex table: duplicate or invalid vertex id");
    }
    return table;
  }

  /// Inserts key -> value. Returns false when the table is full or the
  /// key is already present (callers that need growth rebuild instead:
  /// partition contents are immutable after build).
  bool insert(VertexId key, LocalVertexId value) {
    if (key == kInvalidVertex) return false;
    std::size_t slot = mix64(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      if (keys_[slot] == kInvalidVertex) {
        keys_[slot] = key;
        values_[slot] = value;
        ++size_;
        return true;
      }
      if (keys_[slot] == key) return false;
      slot = (slot + 1) & mask_;
    }
    return false;  // full
  }

  std::optional<LocalVertexId> find(VertexId key) const {
    if (keys_.empty() || key == kInvalidVertex) return std::nullopt;
    std::size_t slot = mix64(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      if (keys_[slot] == key) return values_[slot];
      if (keys_[slot] == kInvalidVertex) return std::nullopt;
      slot = (slot + 1) & mask_;
    }
    return std::nullopt;  // full table, key absent
  }

  bool contains(VertexId key) const { return find(key).has_value(); }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return keys_.size(); }

 private:
  std::vector<VertexId> keys_;         // kInvalidVertex == empty slot
  std::vector<LocalVertexId> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rpqd
