// Tagged 64-bit runtime value.
//
// Values flow through three places: property columns in graph partitions,
// execution-context slots, and serialized cross-machine messages. Keeping
// them POD (9 bytes: tag + payload) is what lets the engine serialize
// contexts with a straight memcpy-style path and keep the reachability
// index arithmetic identical to the paper's.
//
// Strings are dictionary-encoded: the payload is an id into the graph
// catalog's string dictionary, which is replicated read-only metadata on
// every machine (like the schema itself).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/types.h"

namespace rpqd {

enum class ValueType : std::uint8_t {
  kNull = 0,
  kBool,
  kInt,     ///< 64-bit signed integer
  kDouble,  ///< IEEE-754 double, bit-cast into the payload
  kString,  ///< dictionary-encoded string id
  kVertex,  ///< vertex id (used for context slots holding matched vertices)
};

struct Value {
  ValueType type = ValueType::kNull;
  std::uint64_t bits = 0;

  friend bool operator==(const Value& a, const Value& b) = default;
};

inline Value null_value() { return {}; }
inline Value bool_value(bool b) { return {ValueType::kBool, b ? 1u : 0u}; }
inline Value int_value(std::int64_t v) {
  return {ValueType::kInt, static_cast<std::uint64_t>(v)};
}
inline Value double_value(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return {ValueType::kDouble, bits};
}
inline Value string_value(std::uint32_t dict_id) {
  return {ValueType::kString, dict_id};
}
inline Value vertex_value(VertexId v) { return {ValueType::kVertex, v}; }

inline bool is_null(const Value& v) { return v.type == ValueType::kNull; }
inline bool as_bool(const Value& v) { return v.bits != 0; }
inline std::int64_t as_int(const Value& v) {
  return static_cast<std::int64_t>(v.bits);
}
inline double as_double(const Value& v) {
  double d;
  std::memcpy(&d, &v.bits, sizeof(d));
  return d;
}
inline std::uint32_t as_string_id(const Value& v) {
  return static_cast<std::uint32_t>(v.bits);
}
inline VertexId as_vertex(const Value& v) { return v.bits; }

/// Numeric promotion: ints participate in double comparisons.
inline bool is_numeric(const Value& v) {
  return v.type == ValueType::kInt || v.type == ValueType::kDouble;
}
inline double numeric_as_double(const Value& v) {
  return v.type == ValueType::kInt ? static_cast<double>(as_int(v))
                                   : as_double(v);
}

const char* to_string(ValueType t);

}  // namespace rpqd
