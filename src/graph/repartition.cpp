#include "graph/repartition.h"

#include <algorithm>
#include <charconv>
#include <numeric>

namespace rpqd {

namespace {

/// Parses the unsigned integer starting at `pos` (after skipping spaces);
/// returns false when no digits are there.
bool parse_u64(std::string_view s, std::size_t pos, std::uint64_t& out) {
  while (pos < s.size() && s[pos] == ' ') ++pos;
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr != begin;
}

double imbalance_of(const std::vector<double>& cost) {
  const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(cost.size());
  return *std::max_element(cost.begin(), cost.end()) / mean;
}

}  // namespace

Repartitioner::Repartitioner(std::shared_ptr<const Graph> graph,
                             unsigned num_machines,
                             std::shared_ptr<const PartitionMap> current)
    : graph_(std::move(graph)),
      current_(std::move(current)),
      num_machines_(num_machines),
      observed_(num_machines, 0.0) {
  engine_check(num_machines_ > 0, "repartitioner needs at least one machine");
}

MachineId Repartitioner::current_owner(VertexId v) const {
  return current_ != nullptr ? current_->owner(v)
                             : Partition::owner(v, num_machines_);
}

void Repartitioner::observe(const std::vector<std::uint64_t>& machine_contexts) {
  const std::size_t n =
      std::min<std::size_t>(machine_contexts.size(), num_machines_);
  for (std::size_t m = 0; m < n; ++m) {
    observed_[m] += static_cast<double>(machine_contexts[m]);
  }
  ++observations_;
}

void Repartitioner::observe_profile(const QueryProfile& profile) {
  std::vector<std::uint64_t> contexts;
  contexts.reserve(profile.machines.size());
  for (const auto& sum : profile.machines) {
    contexts.push_back(sum.total_contexts);
  }
  observe(contexts);
}

bool Repartitioner::observe_profile_json(std::string_view json) {
  // The credits array is the only place to_json() emits per-machine
  // summaries; scope the scan to it so the stage rows' "contexts" keys
  // (same spelling, different meaning) are never misread.
  const std::size_t cred = json.find("\"credits\": [");
  if (cred == std::string_view::npos) return false;
  std::size_t stop = json.find(']', cred);
  if (stop == std::string_view::npos) stop = json.size();
  const std::string_view body = json.substr(cred, stop - cred);

  std::vector<std::uint64_t> contexts(num_machines_, 0);
  bool any = false;
  std::size_t pos = 0;
  while (true) {
    const std::size_t mpos = body.find("\"m\": ", pos);
    if (mpos == std::string_view::npos) break;
    std::uint64_t machine = 0;
    if (!parse_u64(body, mpos + 5, machine)) break;
    const std::size_t cpos = body.find("\"contexts\": ", mpos);
    if (cpos == std::string_view::npos) break;
    std::uint64_t value = 0;
    if (!parse_u64(body, cpos + 12, value)) break;
    if (machine < contexts.size()) {
      contexts[machine] += value;
      any = true;
    }
    pos = cpos + 12;
  }
  if (!any) return false;
  observe(contexts);
  return true;
}

double Repartitioner::vertex_cost(VertexId v) const {
  if (!graph_->alive(v)) return 0.0;
  const double deg = static_cast<double>(graph_->out().degree(v) +
                                         graph_->in().degree(v));
  const MachineId owner = current_owner(v);
  // Attribute the owner's observed frame count over its vertices by
  // degree share. The denominator is the owner's total degree, computed
  // on demand would be O(V) per call — so fold it as load-per-degree,
  // cached lazily below.
  if (observed_[owner] <= 0.0) return deg;
  double owner_deg = 0.0;
  for (VertexId u = 0; u < graph_->num_vertices(); ++u) {
    if (current_owner(u) == owner && graph_->alive(u)) {
      owner_deg += static_cast<double>(graph_->out().degree(u) +
                                       graph_->in().degree(u));
    }
  }
  if (owner_deg <= 0.0) return deg;
  return deg + observed_[owner] * (deg / owner_deg);
}

std::vector<VertexId> Repartitioner::propose_hot_set(
    std::size_t max_hot, std::uint64_t min_degree) const {
  // Rank by the same per-degree attribution as vertex_cost, but hoist
  // the per-machine degree totals out of the loop (vertex_cost recomputes
  // them per call; fine for spot checks, quadratic here).
  std::vector<double> machine_deg(num_machines_, 0.0);
  const std::size_t n = graph_->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (!graph_->alive(v)) continue;
    machine_deg[current_owner(v)] += static_cast<double>(
        graph_->out().degree(v) + graph_->in().degree(v));
  }
  std::vector<std::pair<double, VertexId>> ranked;
  for (VertexId v = 0; v < n; ++v) {
    if (!graph_->alive(v)) continue;
    const std::uint64_t deg =
        graph_->out().degree(v) + graph_->in().degree(v);
    if (deg < min_degree) continue;
    const MachineId owner = current_owner(v);
    double cost = static_cast<double>(deg);
    if (observed_[owner] > 0.0 && machine_deg[owner] > 0.0) {
      cost += observed_[owner] * (static_cast<double>(deg) / machine_deg[owner]);
    }
    ranked.emplace_back(cost, v);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic on cost ties
  });
  if (ranked.size() > max_hot) ranked.resize(max_hot);
  std::vector<VertexId> hot;
  hot.reserve(ranked.size());
  for (const auto& [cost, v] : ranked) hot.push_back(v);
  return hot;
}

RepartitionPlan Repartitioner::propose(double affinity_slack) const {
  const std::size_t n = graph_->num_vertices();
  RepartitionPlan plan;
  plan.assignment.resize(n, 0);
  plan.current_cost.assign(num_machines_, 0.0);
  plan.proposed_cost.assign(num_machines_, 0.0);

  // Per-vertex costs under the shared per-machine degree totals.
  std::vector<double> machine_deg(num_machines_, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (!graph_->alive(v)) continue;
    machine_deg[current_owner(v)] += static_cast<double>(
        graph_->out().degree(v) + graph_->in().degree(v));
  }
  std::vector<double> cost(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (!graph_->alive(v)) continue;
    const double deg = static_cast<double>(graph_->out().degree(v) +
                                           graph_->in().degree(v));
    const MachineId owner = current_owner(v);
    cost[v] = deg;
    if (observed_[owner] > 0.0 && machine_deg[owner] > 0.0) {
      cost[v] += observed_[owner] * (deg / machine_deg[owner]);
    }
    plan.current_cost[owner] += cost[v];
  }

  // Greedy: heaviest first onto the least-loaded machine; near-ties
  // (within affinity_slack of the minimum) break toward the machine
  // already owning the most neighbors, then toward the current owner
  // (fewer moves), then the lowest machine id (determinism).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<std::uint8_t> assigned(n, 0);
  std::vector<std::uint32_t> neighbor_count(num_machines_, 0);
  for (const VertexId v : order) {
    double min_cost = plan.proposed_cost[0];
    for (unsigned m = 1; m < num_machines_; ++m) {
      min_cost = std::min(min_cost, plan.proposed_cost[m]);
    }
    const double bar = min_cost <= 0.0 ? 0.0 : min_cost * affinity_slack;
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const Direction dir : {Direction::kOut, Direction::kIn}) {
      const Adjacency& adj = graph_->adjacency(dir);
      const auto [begin, end] = adj.range(v);
      for (std::size_t idx = begin; idx < end; ++idx) {
        const VertexId u = adj.entry(idx).other;
        if (assigned[u]) ++neighbor_count[plan.assignment[u]];
      }
    }
    const MachineId stay = current_owner(v);
    MachineId best = 0;
    bool have = false;
    for (unsigned m = 0; m < num_machines_; ++m) {
      if (plan.proposed_cost[m] > bar) continue;
      if (!have) {
        best = static_cast<MachineId>(m);
        have = true;
        continue;
      }
      if (neighbor_count[m] != neighbor_count[best]) {
        if (neighbor_count[m] > neighbor_count[best]) {
          best = static_cast<MachineId>(m);
        }
        continue;
      }
      if (m == stay && best != stay) best = static_cast<MachineId>(m);
    }
    plan.assignment[v] = best;
    plan.proposed_cost[best] += cost[v];
    assigned[v] = 1;
    if (best != stay && graph_->alive(v)) ++plan.moved_vertices;
  }

  plan.current_imbalance = imbalance_of(plan.current_cost);
  plan.predicted_imbalance = imbalance_of(plan.proposed_cost);
  return plan;
}

}  // namespace rpqd
