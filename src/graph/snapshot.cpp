#include "graph/snapshot.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace rpqd {

namespace {

void sort_unique_labels(std::vector<LabelId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Marks a patch entry with no predecessor in the previous snapshot
/// (edges inserted by this batch carry no edge properties to copy).
constexpr std::size_t kNoPrevEntry = static_cast<std::size_t>(-1);

/// An edge inserted by the batch being applied; `dropped` marks edges
/// removed again by a later op of the SAME batch (edge delete or vertex
/// cascade) — they never materialize.
struct NewEdge {
  VertexId src = 0;
  VertexId dst = 0;
  LabelId elabel = 0;
  EdgeId eid = 0;
  bool dropped = false;
};

}  // namespace

std::shared_ptr<const GraphSnapshot> GraphSnapshot::initial(
    std::shared_ptr<const PartitionedGraph> base) {
  const Graph& g = base->global();
  return rebased(std::move(base), /*epoch=*/0, g.num_vertices(),
                 g.num_edges());
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::rebased(
    std::shared_ptr<const PartitionedGraph> base, std::uint64_t epoch,
    std::uint64_t num_vertices, std::uint64_t num_edges) {
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->epoch_ = epoch;
  snap->base_ = std::move(base);
  snap->num_vertices_ = num_vertices;
  snap->num_edges_ = num_edges;
  snap->dead_vertices_ = snap->base_->global().num_dead();
  const unsigned machines = snap->base_->num_machines();
  snap->views_.resize(machines);
  for (unsigned m = 0; m < machines; ++m) {
    snap->views_[m].finalize(&snap->base_->partition(m));
  }
  return snap;
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::apply(
    const std::shared_ptr<const GraphSnapshot>& prev, const UpdateBatch& batch,
    UpdateResult* out) {
  const PartitionedGraph& base = prev->base();
  const Catalog& catalog = base.catalog();
  const unsigned machines = base.num_machines();

  auto fail = [](const std::string& what) -> void { throw QueryError(what); };

  // Locates a vertex alive in `prev` (to_local is nullopt for dead ones).
  auto prev_local = [&](VertexId v) -> std::optional<LocalVertexId> {
    if (v >= prev->num_vertices_) return std::nullopt;
    return prev->views_[base.owner(v)].to_local(v);
  };

  UpdateResult receipt;
  receipt.epoch = prev->epoch_ + 1;

  // ---- resolve the batch against prev (vertex inserts, edge inserts,
  // edge deletes, vertex deletes — in that order) --------------------------
  const VertexId first_new_vertex = prev->num_vertices_;
  std::unordered_map<VertexId, const VertexInsert*> inserted_verts;
  for (std::size_t i = 0; i < batch.vertex_inserts.size(); ++i) {
    const VertexInsert& vi = batch.vertex_inserts[i];
    if (vi.label >= catalog.num_vertex_labels()) {
      fail("update: vertex label id outside the frozen catalog");
    }
    for (const auto& [prop, value] : vi.props) {
      if (prop >= catalog.num_properties()) {
        fail("update: property id outside the frozen catalog");
      }
      if (!is_null(value) && catalog.property_type(prop) != value.type) {
        fail("update: property value type mismatch");
      }
    }
    const VertexId id = first_new_vertex + i;
    receipt.new_vertices.push_back(id);
    inserted_verts.emplace(id, &vi);
  }

  auto exists_alive = [&](VertexId v) {
    return inserted_verts.count(v) != 0 || prev_local(v).has_value();
  };

  std::vector<NewEdge> new_edges;
  new_edges.reserve(batch.edge_inserts.size());
  for (std::size_t i = 0; i < batch.edge_inserts.size(); ++i) {
    const EdgeInsert& ei = batch.edge_inserts[i];
    if (ei.elabel >= catalog.num_edge_labels()) {
      fail("update: edge label id outside the frozen catalog");
    }
    if (!exists_alive(ei.src) || !exists_alive(ei.dst)) {
      fail("update: edge insert references a missing or deleted vertex");
    }
    const EdgeId eid = prev->num_edges_ + i;
    new_edges.push_back(NewEdge{ei.src, ei.dst, ei.elabel, eid, false});
    receipt.new_edges.push_back(eid);
  }

  // Tombstoned edges of the base/prev-delta layers, resolved to concrete
  // edge ids (patch rebuild filters by id membership), plus their
  // endpoints and labels for dirty tracking.
  std::unordered_set<EdgeId> deleted_eids;
  std::vector<std::pair<VertexId, VertexId>> deleted_endpoints;
  std::vector<LabelId> dirty_elabels;

  auto tombstone = [&](EdgeId eid, VertexId src, VertexId dst,
                       LabelId elabel) {
    if (deleted_eids.insert(eid).second) {
      deleted_endpoints.emplace_back(src, dst);
      dirty_elabels.push_back(elabel);
    }
  };

  for (const EdgeDelete& ed : batch.edge_deletes) {
    std::size_t matched = 0;
    // Existing layers: scan src's out label range in prev.
    if (const auto lv = prev_local(ed.src)) {
      const PartitionView& view = prev->views_[base.owner(ed.src)];
      const ViewAdjacency& adj = view.adjacency(Direction::kOut);
      const auto [b, e] = adj.label_range(*lv, ed.elabel);
      for (std::size_t idx = b; idx < e; ++idx) {
        const AdjEntry& entry = adj.entry(idx);
        if (entry.other != ed.dst) continue;
        if (deleted_eids.count(entry.eid) != 0) continue;  // already gone
        tombstone(entry.eid, ed.src, ed.dst, entry.elabel);
        ++matched;
      }
    }
    // Edges inserted earlier in this same batch.
    for (NewEdge& ne : new_edges) {
      if (ne.dropped || ne.src != ed.src || ne.dst != ed.dst ||
          ne.elabel != ed.elabel) {
        continue;
      }
      ne.dropped = true;
      dirty_elabels.push_back(ne.elabel);
      ++matched;
    }
    if (matched == 0) fail("update: edge delete matched no edge");
    receipt.edges_deleted += matched;
  }

  std::unordered_set<VertexId> killed;
  std::vector<LabelId> dirty_vlabels;
  for (const VertexDelete& vd : batch.vertex_deletes) {
    if (inserted_verts.count(vd.v) != 0) {
      fail("update: cannot delete a vertex inserted by the same batch");
    }
    if (killed.count(vd.v) != 0) {
      fail("update: vertex deleted twice in one batch");
    }
    const auto lv = prev_local(vd.v);
    if (!lv.has_value()) fail("update: vertex delete of a missing vertex");
    const PartitionView& view = prev->views_[base.owner(vd.v)];
    dirty_vlabels.push_back(view.label(*lv));
    killed.insert(vd.v);
    // Cascade over every incident edge still alive: the out-CSR gives the
    // edges leaving v, the in-CSR the edges arriving at v (entry.other is
    // the source there).
    for (const Direction dir : {Direction::kOut, Direction::kIn}) {
      const ViewAdjacency& adj = view.adjacency(dir);
      const auto [b, e] = adj.range(*lv);
      for (std::size_t idx = b; idx < e; ++idx) {
        const AdjEntry& entry = adj.entry(idx);
        if (deleted_eids.count(entry.eid) != 0) continue;
        const VertexId src = dir == Direction::kOut ? vd.v : entry.other;
        const VertexId dst = dir == Direction::kOut ? entry.other : vd.v;
        tombstone(entry.eid, src, dst, entry.elabel);
        ++receipt.edges_deleted;
      }
    }
    for (NewEdge& ne : new_edges) {
      if (ne.dropped || (ne.src != vd.v && ne.dst != vd.v)) continue;
      ne.dropped = true;
      dirty_elabels.push_back(ne.elabel);
      ++receipt.edges_deleted;
    }
  }

  // ---- dirty scope -------------------------------------------------------
  DirtyScope& dirty = receipt.dirty;
  dirty.vertices_changed = !batch.vertex_inserts.empty() || !killed.empty();
  for (const VertexInsert& vi : batch.vertex_inserts) {
    dirty.vertex_labels.push_back(vi.label);
  }
  dirty.vertex_labels.insert(dirty.vertex_labels.end(), dirty_vlabels.begin(),
                             dirty_vlabels.end());
  sort_unique_labels(dirty.vertex_labels);
  for (const NewEdge& ne : new_edges) {
    if (!ne.dropped) dirty.edge_labels.push_back(ne.elabel);
  }
  dirty.edge_labels.insert(dirty.edge_labels.end(), dirty_elabels.begin(),
                           dirty_elabels.end());
  sort_unique_labels(dirty.edge_labels);
  dirty.edges_changed = receipt.edges_deleted > 0 ||
                        std::any_of(new_edges.begin(), new_edges.end(),
                                    [](const NewEdge& ne) {
                                      return !ne.dropped;
                                    });

  // Vertices whose adjacency (or existence) changed; their owners are the
  // dirty partitions and their locals get patch rows rebuilt.
  std::unordered_set<VertexId> dirty_verts;
  for (const VertexId v : receipt.new_vertices) dirty_verts.insert(v);
  for (const VertexId v : killed) dirty_verts.insert(v);
  for (const NewEdge& ne : new_edges) {
    if (ne.dropped) continue;
    dirty_verts.insert(ne.src);
    dirty_verts.insert(ne.dst);
  }
  for (const auto& [src, dst] : deleted_endpoints) {
    dirty_verts.insert(src);
    dirty_verts.insert(dst);
  }
  {
    std::vector<MachineId> parts;
    for (const VertexId v : dirty_verts) {
      parts.push_back(base.owner(v));
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    dirty.partitions = std::move(parts);
  }

  // ---- build the next snapshot -------------------------------------------
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->epoch_ = receipt.epoch;
  snap->base_ = prev->base_;
  snap->num_vertices_ = prev->num_vertices_ + batch.vertex_inserts.size();
  snap->num_edges_ = prev->num_edges_ + batch.edge_inserts.size();
  snap->dead_vertices_ = prev->dead_vertices_ + killed.size();
  snap->views_.resize(machines);

  const std::size_t num_props = catalog.num_properties();

  for (unsigned m = 0; m < machines; ++m) {
    const PartitionView& pv = prev->views_[m];
    PartitionView& nv = snap->views_[m];
    const Partition& part = base.partition(m);
    const std::size_t base_locals = part.num_local();

    // Carry the appended-vertex book forward, then append this batch's.
    nv.added_globals_ = pv.added_globals_;
    nv.added_labels_ = pv.added_labels_;
    nv.added_cols_ = pv.added_cols_;
    nv.added_index_ = pv.added_index_;
    for (const VertexId v : receipt.new_vertices) {
      if (base.owner(v) != m) continue;
      const LocalVertexId lv =
          static_cast<LocalVertexId>(base_locals + nv.added_globals_.size());
      nv.added_index_.emplace(v, lv);
      nv.added_globals_.push_back(v);
      const VertexInsert& vi = *inserted_verts.at(v);
      nv.added_labels_.push_back(vi.label);
      for (const auto& [prop, value] : vi.props) {
        if (is_null(value)) continue;
        if (nv.added_cols_.size() <= prop) nv.added_cols_.resize(prop + 1);
        nv.added_cols_[prop].set(lv - base_locals, value);
      }
    }
    const std::size_t num_local = base_locals + nv.added_globals_.size();

    // Tombstone book.
    nv.dead_ = pv.dead_;
    bool any_dead = !nv.dead_.empty();
    for (const VertexId v : killed) {
      if (base.owner(v) != m) continue;
      if (nv.dead_.empty()) nv.dead_.resize(num_local, 0);
      // prev_local was validated alive above, so the lookup must succeed.
      const LocalVertexId lv = *prev->views_[m].to_local(v);
      nv.dead_[lv] = 1;
      any_dead = true;
    }
    if (any_dead && nv.dead_.size() < num_local) nv.dead_.resize(num_local, 0);

    // Patched locals: everything patched before stays patched (its base
    // row no longer reflects it), plus this batch's dirty locals.
    std::vector<LocalVertexId> patched = pv.patched_;
    {
      std::unordered_set<LocalVertexId> have(patched.begin(), patched.end());
      auto mark = [&](VertexId v) {
        if (base.owner(v) != m) return;
        LocalVertexId lv;
        if (const auto bl = part.to_local(v)) {
          lv = *bl;
        } else {
          lv = nv.added_index_.at(v);
        }
        if (have.insert(lv).second) patched.push_back(lv);
      };
      for (const VertexId v : dirty_verts) mark(v);
      std::sort(patched.begin(), patched.end());
    }
    nv.patched_ = std::move(patched);

    // Materialize the full adjacency of every patched local, per
    // direction: prev entries minus tombstones, plus this batch's
    // inserts, re-sorted into the base CSR's (elabel, other) row form
    // with edge-property columns aligned.
    auto global_of = [&](LocalVertexId lv) -> VertexId {
      return lv < base_locals ? part.to_global(lv)
                              : nv.added_globals_[lv - base_locals];
    };
    for (const Direction dir : {Direction::kOut, Direction::kIn}) {
      std::vector<std::uint64_t> offsets;
      offsets.reserve(nv.patched_.size() + 1);
      offsets.push_back(0);
      std::vector<AdjEntry> entries;
      std::vector<std::vector<std::pair<std::size_t, Value>>> prop_vals(
          num_props);
      for (const LocalVertexId lv : nv.patched_) {
        const bool dead = !nv.dead_.empty() && nv.dead_[lv] != 0;
        std::vector<std::pair<AdjEntry, std::size_t>> row;  // entry, prev idx
        if (!dead) {
          if (lv < pv.num_local()) {
            const ViewAdjacency& prev_adj = pv.adjacency(dir);
            const auto [b, e] = prev_adj.range(lv);
            for (std::size_t idx = b; idx < e; ++idx) {
              const AdjEntry& entry = prev_adj.entry(idx);
              if (deleted_eids.count(entry.eid) != 0) continue;
              row.emplace_back(entry, idx);
            }
          }
          const VertexId self = global_of(lv);
          for (const NewEdge& ne : new_edges) {
            if (ne.dropped) continue;
            if (dir == Direction::kOut && ne.src == self) {
              row.emplace_back(AdjEntry{ne.dst, ne.elabel, ne.eid},
                               kNoPrevEntry);
            } else if (dir == Direction::kIn && ne.dst == self) {
              row.emplace_back(AdjEntry{ne.src, ne.elabel, ne.eid},
                               kNoPrevEntry);
            }
          }
          std::sort(row.begin(), row.end(),
                    [](const auto& a, const auto& b) {
                      return std::tie(a.first.elabel, a.first.other,
                                      a.first.eid) <
                             std::tie(b.first.elabel, b.first.other,
                                      b.first.eid);
                    });
        }
        for (const auto& [entry, prev_idx] : row) {
          const std::size_t pos = entries.size();
          entries.push_back(entry);
          if (prev_idx != kNoPrevEntry) {
            const ViewAdjacency& prev_adj = pv.adjacency(dir);
            for (PropId p = 0; p < num_props; ++p) {
              const Value val = prev_adj.edge_property(prev_idx, p);
              if (!is_null(val)) prop_vals[p].emplace_back(pos, val);
            }
          }
        }
        offsets.push_back(entries.size());
      }
      std::vector<PropertyColumn> eprops;
      for (PropId p = 0; p < num_props; ++p) {
        if (prop_vals[p].empty()) continue;
        PropertyColumn col(p);
        for (const auto& [pos, val] : prop_vals[p]) col.set(pos, val);
        eprops.push_back(std::move(col));
      }
      Adjacency patch = Adjacency::make(std::move(offsets), std::move(entries),
                                        std::move(eprops));
      (dir == Direction::kOut ? nv.patch_out_ : nv.patch_in_) =
          std::move(patch);
    }

    if (!nv.patched_.empty()) {
      nv.patch_row_.assign(num_local, 0);
      for (std::size_t row = 0; row < nv.patched_.size(); ++row) {
        nv.patch_row_[nv.patched_[row]] = static_cast<std::uint32_t>(row + 1);
      }
    }

    nv.finalize(&part);
    snap->delta_entries_ += nv.patch_entries();
  }

  // Mirror coherence (DESIGN.md §14): a batch that dirtied a mirrored hot
  // vertex rebuilds the MirrorSet against the NEW views before the
  // snapshot publishes — a query pinning this epoch can never observe a
  // stale mirror. Batches not touching any hot vertex share the set
  // (every edge change dirties both endpoints, so "hot vertex adjacency
  // changed" implies "hot vertex is in dirty_verts").
  if (prev->mirrors_ != nullptr) {
    bool dirty_hot = false;
    for (const VertexId h : prev->mirrors_->hot()) {
      if (dirty_verts.count(h) != 0) {
        dirty_hot = true;
        break;
      }
    }
    snap->attach_mirrors(dirty_hot
                             ? MirrorSet::build(*snap, prev->mirrors_->hot(),
                                                prev->mirrors_->version() + 1)
                             : prev->mirrors_);
  }

  if (out != nullptr) *out = std::move(receipt);
  return snap;
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::with_mirrors(
    const std::shared_ptr<const GraphSnapshot>& prev,
    std::vector<VertexId> hot, std::uint64_t version) {
  auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
  snap->epoch_ = prev->epoch_;
  snap->base_ = prev->base_;
  snap->num_vertices_ = prev->num_vertices_;
  snap->num_edges_ = prev->num_edges_;
  snap->delta_entries_ = prev->delta_entries_;
  snap->dead_vertices_ = prev->dead_vertices_;
  snap->views_ = prev->views_;
  const unsigned machines = snap->base_->num_machines();
  for (unsigned m = 0; m < machines; ++m) {
    // The copied views' ViewAdjacency pointers still reference prev's
    // patch members; finalize re-wires them to this snapshot's copies.
    snap->views_[m].finalize(&snap->base_->partition(m));
  }
  if (!hot.empty()) {
    snap->attach_mirrors(MirrorSet::build(*snap, std::move(hot), version));
  }
  return snap;
}

void GraphSnapshot::attach_mirrors(std::shared_ptr<const MirrorSet> mirrors) {
  mirrors_ = std::move(mirrors);
  for (PartitionView& v : views_) v.mirrors_ = mirrors_.get();
}

std::shared_ptr<const MirrorSet> MirrorSet::build(const GraphSnapshot& snap,
                                                  std::vector<VertexId> hot,
                                                  std::uint64_t version) {
  auto ms = std::make_shared<MirrorSet>();
  std::sort(hot.begin(), hot.end());
  hot.erase(std::unique(hot.begin(), hot.end()), hot.end());
  ms->hot_ = std::move(hot);
  ms->version_ = version;
  ms->index_.reserve(ms->hot_.size());
  for (std::size_t rank = 0; rank < ms->hot_.size(); ++rank) {
    ms->index_.emplace(ms->hot_[rank], static_cast<std::uint32_t>(rank));
    const std::uint64_t h = mix64(ms->hot_[rank]);
    ms->filter_[(h >> 6) & 63] |= 1ull << (h & 63);
  }
  const PartitionedGraph& base = snap.base();
  const unsigned machines = base.num_machines();
  const std::size_t num_props = base.catalog().num_properties();
  ms->out_.reserve(machines);
  ms->in_.reserve(machines);
  for (unsigned m = 0; m < machines; ++m) {
    for (const Direction dir : {Direction::kOut, Direction::kIn}) {
      std::vector<std::uint64_t> offsets;
      offsets.reserve(ms->hot_.size() + 1);
      offsets.push_back(0);
      std::vector<AdjEntry> entries;
      std::vector<std::vector<std::pair<std::size_t, Value>>> prop_vals(
          num_props);
      for (const VertexId h : ms->hot_) {
        // Dead or unknown hot vertices keep an empty row (to_local is
        // nullopt); the owner never runs a frame for them anyway.
        if (h < snap.num_vertices()) {
          const PartitionView& ov = snap.view(base.owner(h));
          if (const auto lv = ov.to_local(h)) {
            const ViewAdjacency& adj = ov.adjacency(dir);
            const auto [b, e] = adj.range(*lv);
            for (std::size_t idx = b; idx < e; ++idx) {
              const AdjEntry& entry = adj.entry(idx);
              if (base.owner(entry.other) != m) continue;
              const std::size_t pos = entries.size();
              entries.push_back(entry);
              for (PropId p = 0; p < num_props; ++p) {
                const Value val = adj.edge_property(idx, p);
                if (!is_null(val)) prop_vals[p].emplace_back(pos, val);
              }
            }
          }
        }
        offsets.push_back(entries.size());
      }
      std::vector<PropertyColumn> eprops;
      for (PropId p = 0; p < num_props; ++p) {
        if (prop_vals[p].empty()) continue;
        PropertyColumn col(p);
        for (const auto& [pos, val] : prop_vals[p]) col.set(pos, val);
        eprops.push_back(std::move(col));
      }
      ms->entries_ += entries.size();
      Adjacency bucket = Adjacency::make(std::move(offsets),
                                         std::move(entries), std::move(eprops));
      (dir == Direction::kOut ? ms->out_ : ms->in_).push_back(
          std::move(bucket));
    }
  }
  return ms;
}

}  // namespace rpqd
