// Graph catalog: dictionaries for vertex labels, edge labels, property
// keys, and string property values.
//
// The catalog is immutable after graph construction and shared read-only by
// every simulated machine — modelling the replicated schema metadata a real
// cluster distributes at load time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "graph/value.h"

namespace rpqd {

/// Insert-or-lookup string dictionary with stable dense ids.
class Dictionary {
 public:
  std::uint32_t id_for(std::string_view name) {
    if (auto it = index_.find(std::string(name)); it != index_.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  std::optional<std::uint32_t> find(std::string_view name) const {
    const auto it = index_.find(std::string(name));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& name_of(std::uint32_t id) const {
    engine_check(id < names_.size(), "dictionary id out of range");
    return names_[id];
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

/// Schema + string metadata for one graph.
class Catalog {
 public:
  LabelId vertex_label(std::string_view name) {
    return static_cast<LabelId>(vertex_labels_.id_for(name));
  }
  LabelId edge_label(std::string_view name) {
    return static_cast<LabelId>(edge_labels_.id_for(name));
  }

  /// Registers (or finds) a property key, checking type consistency.
  PropId property(std::string_view name, ValueType type) {
    const auto id = static_cast<PropId>(props_.id_for(name));
    if (id == prop_types_.size()) {
      prop_types_.push_back(type);
    } else {
      engine_check(prop_types_[id] == type, "property re-registered with a different type");
    }
    return id;
  }

  std::uint32_t string_id(std::string_view s) {
    return strings_.id_for(s);
  }

  std::optional<LabelId> find_vertex_label(std::string_view name) const {
    const auto id = vertex_labels_.find(name);
    if (!id) return std::nullopt;
    return static_cast<LabelId>(*id);
  }
  std::optional<LabelId> find_edge_label(std::string_view name) const {
    const auto id = edge_labels_.find(name);
    if (!id) return std::nullopt;
    return static_cast<LabelId>(*id);
  }
  std::optional<PropId> find_property(std::string_view name) const {
    const auto id = props_.find(name);
    if (!id) return std::nullopt;
    return static_cast<PropId>(*id);
  }
  std::optional<std::uint32_t> find_string(std::string_view s) const {
    return strings_.find(s);
  }

  const std::string& vertex_label_name(LabelId id) const {
    return vertex_labels_.name_of(id);
  }
  const std::string& edge_label_name(LabelId id) const {
    return edge_labels_.name_of(id);
  }
  const std::string& property_name(PropId id) const {
    return props_.name_of(id);
  }
  const std::string& string_name(std::uint32_t id) const {
    return strings_.name_of(id);
  }

  ValueType property_type(PropId id) const {
    engine_check(id < prop_types_.size(), "property id out of range");
    return prop_types_[id];
  }

  std::size_t num_vertex_labels() const { return vertex_labels_.size(); }
  std::size_t num_edge_labels() const { return edge_labels_.size(); }
  std::size_t num_properties() const { return props_.size(); }

  /// Three-way comparison usable in filter evaluation. Returns nullopt for
  /// nulls and type-incompatible operands (SQL-ish semantics: unknown).
  std::optional<int> compare(const Value& a, const Value& b) const;

  /// Renders a value for result output and debugging.
  std::string render(const Value& v) const;

 private:
  Dictionary vertex_labels_;
  Dictionary edge_labels_;
  Dictionary props_;
  Dictionary strings_;
  std::vector<ValueType> prop_types_;
};

}  // namespace rpqd
