#include "graph/catalog.h"

#include <sstream>

namespace rpqd {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kVertex: return "vertex";
  }
  return "?";
}

std::optional<int> Catalog::compare(const Value& a, const Value& b) const {
  if (is_null(a) || is_null(b)) return std::nullopt;
  // Vertex ids compare against integer literals (ID(v) = 123).
  if ((a.type == ValueType::kVertex && b.type == ValueType::kInt) ||
      (a.type == ValueType::kInt && b.type == ValueType::kVertex)) {
    const auto x = static_cast<std::int64_t>(a.bits);
    const auto y = static_cast<std::int64_t>(b.bits);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (is_numeric(a) && is_numeric(b)) {
    if (a.type == ValueType::kInt && b.type == ValueType::kInt) {
      const auto x = as_int(a);
      const auto y = as_int(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = numeric_as_double(a);
    const double y = numeric_as_double(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type != b.type) return std::nullopt;
  switch (a.type) {
    case ValueType::kBool:
      return static_cast<int>(a.bits) - static_cast<int>(b.bits);
    case ValueType::kVertex:
      return a.bits < b.bits ? -1 : (a.bits > b.bits ? 1 : 0);
    case ValueType::kString: {
      // Equal dictionary ids short-circuit; otherwise compare the strings.
      if (a.bits == b.bits) return 0;
      const auto& x = string_name(as_string_id(a));
      const auto& y = string_name(as_string_id(b));
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default:
      return std::nullopt;
  }
}

std::string Catalog::render(const Value& v) const {
  std::ostringstream out;
  switch (v.type) {
    case ValueType::kNull: out << "null"; break;
    case ValueType::kBool: out << (as_bool(v) ? "true" : "false"); break;
    case ValueType::kInt: out << as_int(v); break;
    case ValueType::kDouble: out << as_double(v); break;
    case ValueType::kString: out << '"' << string_name(as_string_id(v)) << '"'; break;
    case ValueType::kVertex: out << as_vertex(v); break;
  }
  return out.str();
}

}  // namespace rpqd
