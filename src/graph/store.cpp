#include "graph/store.h"

#include <utility>

#include "common/stopwatch.h"

namespace rpqd {

namespace {

/// Flat edge record used by materialize(): seed edges remember their
/// out-CSR entry index so edge properties can be copied; inserted edges
/// carry none (frozen-catalog v1 rule, update.h).
struct MatEdge {
  VertexId src = 0;
  VertexId dst = 0;
  LabelId elabel = 0;
  std::size_t seed_idx = 0;  // out-CSR entry index, seed edges only
  bool from_seed = false;
  bool dead = false;
};

}  // namespace

GraphStore::GraphStore(std::shared_ptr<const PartitionedGraph> seed) {
  engine_check(seed != nullptr, "GraphStore requires a seed graph");
  seed_graph_ = seed->global_ptr();
  num_machines_ = seed->num_machines();
  snap_ = GraphSnapshot::initial(std::move(seed));
}

std::shared_ptr<const GraphSnapshot> GraphStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

std::uint64_t GraphStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_->epoch();
}

UpdateResult GraphStore::apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  UpdateResult receipt;
  // Throws QueryError on validation failure, before any state changes.
  auto next = GraphSnapshot::apply(snap_, batch, &receipt);
  // GraphSnapshot::apply rebuilt the MirrorSet iff the batch dirtied a
  // hot vertex (coherence contract, DESIGN.md §14).
  if (next->mirror_set() != nullptr &&
      next->mirror_set() != snap_->mirror_set()) {
    ++stats_.mirror_rebuilds;
    stats_.mirror_entries = next->mirror_set()->entries();
    mirror_version_ = next->mirror_set()->version();
  }
  log_.push_back(batch);
  snap_ = std::move(next);
  ++stats_.batches_applied;
  stats_.vertices_inserted += receipt.new_vertices.size();
  stats_.edges_inserted += receipt.new_edges.size();
  stats_.edges_deleted += receipt.edges_deleted;
  stats_.vertices_deleted += batch.vertex_deletes.size();
  return receipt;
}

std::shared_ptr<const Graph> GraphStore::materialize(
    std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return materialize_locked(epoch);
}

std::shared_ptr<const Graph> GraphStore::materialize_locked(
    std::uint64_t epoch) const {
  engine_check(epoch <= log_.size(), "materialize past the current epoch");
  const Graph& seed = *seed_graph_;
  const std::size_t num_props = seed.catalog().num_properties();

  std::vector<LabelId> vlabels(seed.num_vertices());
  std::vector<std::uint8_t> vdead(seed.num_vertices(), 0);
  for (VertexId v = 0; v < seed.num_vertices(); ++v) {
    vlabels[v] = seed.label(v);
    if (!seed.alive(v)) vdead[v] = 1;
  }

  std::vector<MatEdge> edges;
  edges.reserve(seed.num_edges());
  for (VertexId v = 0; v < seed.num_vertices(); ++v) {
    const auto [b, e] = seed.out().range(v);
    for (std::size_t idx = b; idx < e; ++idx) {
      const AdjEntry& entry = seed.out().entry(idx);
      edges.push_back(MatEdge{v, entry.other, entry.elabel, idx, true, false});
    }
  }

  // Replay in the batch-internal op order apply() uses: vertex inserts,
  // edge inserts, edge deletes (which therefore see same-batch inserts),
  // vertex deletes cascading over everything still alive.
  for (std::uint64_t e = 0; e < epoch; ++e) {
    const UpdateBatch& batch = log_[e];
    for (const VertexInsert& vi : batch.vertex_inserts) {
      vlabels.push_back(vi.label);
      vdead.push_back(0);
    }
    for (const EdgeInsert& ei : batch.edge_inserts) {
      edges.push_back(MatEdge{ei.src, ei.dst, ei.elabel, 0, false, false});
    }
    for (const EdgeDelete& ed : batch.edge_deletes) {
      for (MatEdge& me : edges) {
        if (!me.dead && me.src == ed.src && me.dst == ed.dst &&
            me.elabel == ed.elabel) {
          me.dead = true;
        }
      }
    }
    for (const VertexDelete& vd : batch.vertex_deletes) {
      vdead[vd.v] = 1;
      for (MatEdge& me : edges) {
        if (!me.dead && (me.src == vd.v || me.dst == vd.v)) me.dead = true;
      }
    }
  }

  GraphBuilder builder;
  builder.catalog() = seed.catalog();
  for (std::size_t v = 0; v < vlabels.size(); ++v) {
    builder.add_vertex(vlabels[v]);
  }
  for (VertexId v = 0; v < seed.num_vertices(); ++v) {
    for (PropId p = 0; p < num_props; ++p) {
      const Value val = seed.property(v, p);
      if (!is_null(val)) builder.set_property(v, p, val);
    }
  }
  VertexId cursor = seed.num_vertices();
  for (std::uint64_t e = 0; e < epoch; ++e) {
    for (const VertexInsert& vi : log_[e].vertex_inserts) {
      for (const auto& [p, val] : vi.props) {
        if (!is_null(val)) builder.set_property(cursor, p, val);
      }
      ++cursor;
    }
  }
  for (std::size_t v = 0; v < vdead.size(); ++v) {
    if (vdead[v]) builder.mark_deleted(static_cast<VertexId>(v));
  }
  // Edge ids are renumbered densely here — they only link edge-property
  // columns inside the builder, nothing persists them.
  for (const MatEdge& me : edges) {
    if (me.dead) continue;
    const EdgeId ne = builder.add_edge(me.src, me.dst, me.elabel);
    if (me.from_seed) {
      for (PropId p = 0; p < num_props; ++p) {
        const Value val = seed.out().edge_property(me.seed_idx, p);
        if (!is_null(val)) builder.set_edge_property(ne, p, val);
      }
    }
  }
  return std::make_shared<const Graph>(std::move(builder).build());
}

bool GraphStore::merge() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!snap_->has_deltas()) return false;
  Stopwatch sw;
  rebase_locked();
  ++stats_.merges;
  stats_.last_merge_ms = sw.elapsed_ms();
  return true;
}

void GraphStore::rebase_locked() {
  auto merged = materialize_locked(snap_->epoch());
  auto base =
      std::make_shared<const PartitionedGraph>(merged, num_machines_, map_);
  // Same epoch, same id spaces: a rebase changes no visible data, only
  // the flat representation (and, under repartition, the placement). Old
  // snapshot stays alive for queries that pinned it (RCU quiescence).
  snap_ = GraphSnapshot::rebased(std::move(base), snap_->epoch(),
                                 snap_->num_vertices(), snap_->num_edges());
  refresh_mirrors_locked();
}

void GraphStore::refresh_mirrors_locked() {
  if (hot_.empty()) {
    stats_.mirrored_vertices = 0;
    stats_.mirror_entries = 0;
    return;
  }
  snap_ = GraphSnapshot::with_mirrors(snap_, hot_, ++mirror_version_);
  ++stats_.mirror_rebuilds;
  const auto ms = snap_->mirror_set();
  stats_.mirrored_vertices = ms != nullptr ? ms->hot().size() : 0;
  stats_.mirror_entries = ms != nullptr ? ms->entries() : 0;
}

void GraphStore::set_hot_set(std::vector<VertexId> hot) {
  std::lock_guard<std::mutex> lock(mu_);
  hot_ = std::move(hot);
  if (hot_.empty() && snap_->mirror_set() != nullptr) {
    // Strip mirrors: clone without a set.
    snap_ = GraphSnapshot::with_mirrors(snap_, {}, mirror_version_);
  }
  refresh_mirrors_locked();
}

std::vector<VertexId> GraphStore::hot_set() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_;
}

void GraphStore::repartition(std::vector<MachineId> assignment) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  map_ = std::make_shared<const PartitionMap>(std::move(assignment),
                                              num_machines_);
  rebase_locked();
  ++stats_.repartitions;
  stats_.last_repartition_ms = sw.elapsed_ms();
}

GraphStoreStats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GraphStoreStats s = stats_;
  s.epoch = snap_->epoch();
  s.delta_entries = snap_->delta_entries();
  s.dead_vertices = snap_->dead_vertices();
  return s;
}

}  // namespace rpqd
