#include "graph/graph.h"

#include <algorithm>
#include <numeric>

namespace rpqd {

std::pair<std::size_t, std::size_t> Adjacency::label_range(
    std::size_t v, LabelId elabel) const {
  const auto [begin, end] = range(v);
  const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(begin);
  const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(end);
  const auto lo = std::lower_bound(
      first, last, elabel,
      [](const AdjEntry& e, LabelId l) { return e.elabel < l; });
  const auto hi = std::upper_bound(
      lo, last, elabel, [](LabelId l, const AdjEntry& e) { return l < e.elabel; });
  return {static_cast<std::size_t>(lo - entries_.begin()),
          static_cast<std::size_t>(hi - entries_.begin())};
}

bool Adjacency::has_edge_to(std::size_t v, VertexId other,
                            std::optional<LabelId> elabel) const {
  if (elabel) {
    const auto [begin, end] = label_range(v, *elabel);
    const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(begin);
    const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(end);
    return std::binary_search(
        first, last, other,
        [](const auto& a, const auto& b) {
          if constexpr (std::is_same_v<std::decay_t<decltype(a)>, AdjEntry>) {
            return a.other < b;
          } else {
            return a < b.other;
          }
        });
  }
  // No label restriction: entries are sorted by (elabel, other), so scan
  // each label sub-range with a binary search per label would be ideal; in
  // practice label counts per vertex are tiny, so a linear scan is fine.
  const auto [begin, end] = range(v);
  for (std::size_t i = begin; i < end; ++i) {
    if (entries_[i].other == other) return true;
  }
  return false;
}

std::size_t Adjacency::count_edges_to(std::size_t v, VertexId other,
                                      std::optional<LabelId> elabel) const {
  std::size_t count = 0;
  if (elabel) {
    const auto [begin, end] = label_range(v, *elabel);
    const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(begin);
    const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(end);
    auto lo = std::lower_bound(
        first, last, other,
        [](const AdjEntry& e, VertexId o) { return e.other < o; });
    while (lo != last && lo->other == other) {
      ++count;
      ++lo;
    }
    return count;
  }
  const auto [begin, end] = range(v);
  for (std::size_t i = begin; i < end; ++i) {
    if (entries_[i].other == other) ++count;
  }
  return count;
}

VertexId GraphBuilder::add_vertex(LabelId label) {
  labels_.push_back(label);
  return labels_.size() - 1;
}

void GraphBuilder::set_property(VertexId v, PropId prop, Value value) {
  engine_check(v < labels_.size(), "set_property on unknown vertex");
  if (prop >= columns_.size()) {
    columns_.reserve(prop + 1);
    while (columns_.size() <= prop) {
      columns_.emplace_back(static_cast<PropId>(columns_.size()));
    }
  }
  columns_[prop].set(v, value);
}

EdgeId GraphBuilder::add_edge(VertexId src, VertexId dst, LabelId elabel) {
  engine_check(src < labels_.size() && dst < labels_.size(),
               "add_edge on unknown vertex");
  edges_.push_back({src, dst, elabel});
  return edges_.size() - 1;
}

void GraphBuilder::mark_deleted(VertexId v) {
  engine_check(v < labels_.size(), "mark_deleted on unknown vertex");
  if (dead_.empty()) dead_.resize(labels_.size(), 0);
  dead_[v] = 1;
}

void GraphBuilder::set_edge_property(EdgeId e, PropId prop, Value value) {
  engine_check(e < edges_.size(), "set_edge_property on unknown edge");
  if (prop >= edge_columns_.size()) {
    while (edge_columns_.size() <= prop) {
      edge_columns_.emplace_back(static_cast<PropId>(edge_columns_.size()));
    }
  }
  edge_columns_[prop].set(e, value);
}

namespace {

// Builds one CSR direction. `src_of`/`dst_of` select orientation.
template <typename SrcFn, typename DstFn>
Adjacency build_adjacency(std::size_t num_vertices, std::size_t num_edges,
                          SrcFn src_of, DstFn dst_of,
                          const std::vector<LabelId>& elabels,
                          const std::vector<PropertyColumn>& edge_columns) {
  std::vector<std::uint64_t> offsets(num_vertices + 1, 0);
  for (std::size_t e = 0; e < num_edges; ++e) {
    ++offsets[src_of(e) + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());
  std::vector<AdjEntry> entries(num_edges);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < num_edges; ++e) {
    entries[cursor[src_of(e)]++] = {dst_of(e), elabels[e], e};
  }
  // Sort each vertex's entries by (elabel, other) for label ranges and
  // binary-search edge matches.
  for (std::size_t v = 0; v < num_vertices; ++v) {
    const auto begin = entries.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    const auto end =
        entries.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    std::sort(begin, end, [](const AdjEntry& a, const AdjEntry& b) {
      return std::tie(a.elabel, a.other, a.eid) <
             std::tie(b.elabel, b.other, b.eid);
    });
  }
  // Align edge-property columns with the (permuted) entries.
  std::vector<PropertyColumn> eprops;
  for (const auto& col : edge_columns) {
    PropertyColumn aligned(col.prop());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Value v = col.get(entries[i].eid);
      if (!is_null(v)) aligned.set(i, v);
    }
    eprops.push_back(std::move(aligned));
  }
  return Adjacency::make(std::move(offsets), std::move(entries),
                         std::move(eprops));
}

}  // namespace

Graph GraphBuilder::build() && {
  Graph g;
  g.num_edges_ = edges_.size();

  std::vector<LabelId> elabels(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    elabels[e] = edges_[e].elabel;
  }

  const auto src_out = [this](std::size_t e) { return edges_[e].src; };
  const auto dst_out = [this](std::size_t e) { return edges_[e].dst; };
  const auto src_in = [this](std::size_t e) { return edges_[e].dst; };
  const auto dst_in = [this](std::size_t e) { return edges_[e].src; };

  g.out_ = build_adjacency(labels_.size(), edges_.size(), src_out, dst_out,
                           elabels, edge_columns_);
  g.in_ = build_adjacency(labels_.size(), edges_.size(), src_in, dst_in,
                          elabels, edge_columns_);

  g.labels_ = std::move(labels_);
  g.columns_ = std::move(columns_);
  g.catalog_ = std::move(catalog_);
  if (!dead_.empty()) {
    dead_.resize(g.labels_.size(), 0);
    g.num_dead_ = static_cast<std::size_t>(
        std::count(dead_.begin(), dead_.end(), std::uint8_t{1}));
    g.dead_ = std::move(dead_);
  }
  return g;
}

}  // namespace rpqd
