// GraphStore: the mutable front door for online updates (DESIGN.md §12).
//
// Owns the current GraphSnapshot plus the append-only batch log. apply()
// validates a batch against the current snapshot, builds the next one
// (epoch + 1), and publishes it with a shared_ptr swap; readers that
// pinned the previous snapshot keep traversing it untouched. merge()
// folds the accumulated delta segments back into a flat PartitionedGraph
// base at a quiescent point — quiescence is automatic under RCU
// publication: in-flight queries hold their own shared_ptr, so the old
// base is freed when the last of them drains.
//
// materialize(epoch) replays seed + log into a standalone flat Graph —
// the differential harness hands that to baseline::reference_evaluate to
// check a query against the exact snapshot it pinned.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/snapshot.h"

namespace rpqd {

struct GraphStoreStats {
  std::uint64_t epoch = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t merges = 0;
  /// Adjacency entries currently living in delta segments (both
  /// directions, all machines) — the merge-trigger quantity.
  std::uint64_t delta_entries = 0;
  std::uint64_t dead_vertices = 0;
  std::uint64_t vertices_inserted = 0;
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t vertices_deleted = 0;
  double last_merge_ms = 0.0;
  // ---- skew-aware balancing (DESIGN.md §14) ----
  /// Hot vertices currently mirrored (0 = replication off).
  std::uint64_t mirrored_vertices = 0;
  /// Adjacency entries held by mirror buckets (both directions, all
  /// machines).
  std::uint64_t mirror_entries = 0;
  /// MirrorSet rebuilds (set_hot_set, dirty updates, merges,
  /// repartitions).
  std::uint64_t mirror_rebuilds = 0;
  /// Partition-map adoptions performed.
  std::uint64_t repartitions = 0;
  double last_repartition_ms = 0.0;
};

class GraphStore {
 public:
  explicit GraphStore(std::shared_ptr<const PartitionedGraph> seed);

  /// The current snapshot; callers pin it by keeping the shared_ptr.
  std::shared_ptr<const GraphSnapshot> snapshot() const;
  std::uint64_t epoch() const;
  unsigned num_machines() const { return num_machines_; }

  /// Applies one batch atomically: validates against the current
  /// snapshot, publishes epoch + 1, appends to the log. Throws
  /// QueryError on validation failure (the store is unchanged).
  UpdateResult apply(const UpdateBatch& batch);

  /// Replays the seed graph plus the first `epoch` logged batches into a
  /// standalone flat Graph (tombstoned vertices included, their edges
  /// dropped). Edge ids are renumbered densely — harmless, they only
  /// link edge-property columns. `epoch` must not exceed epoch().
  std::shared_ptr<const Graph> materialize(std::uint64_t epoch) const;

  /// Folds all delta segments into a fresh flat base and publishes a
  /// delta-free snapshot at the SAME epoch (a merge changes no visible
  /// data). Returns false (and does nothing) when there are no deltas.
  /// Local vertex ids are remapped by the rebuild, so the caller must
  /// bump every reach-cache generation afterwards.
  bool merge();

  // ---- skew-aware balancing (DESIGN.md §14) ------------------------------

  /// Installs (or, with an empty vector, drops) the hot-vertex mirror
  /// set and publishes a snapshot carrying it at the SAME epoch. Every
  /// later apply()/merge()/repartition() keeps the mirrors coherent.
  void set_hot_set(std::vector<VertexId> hot);

  /// The currently armed hot set (empty = replication off).
  std::vector<VertexId> hot_set() const;

  /// Adopts an explicit vertex→machine map: rebuilds the flat base under
  /// the map at the SAME epoch (folding any deltas, like merge()) and
  /// publishes it. Local vertex ids are remapped, so the caller must
  /// bump every reach-cache generation afterwards — exactly the merge()
  /// contract. `assignment[v]` is v's new owner; vertices beyond the
  /// vector (later inserts) fall back to the hash placement.
  void repartition(std::vector<MachineId> assignment);

  GraphStoreStats stats() const;

 private:
  std::shared_ptr<const Graph> materialize_locked(std::uint64_t epoch) const;
  /// Rebuilds the flat base from the current log under map_ and
  /// publishes it (same epoch); mirror rebuild included.
  void rebase_locked();
  /// Attaches a freshly built MirrorSet for hot_ to the current
  /// snapshot (or strips mirrors when hot_ is empty).
  void refresh_mirrors_locked();

  mutable std::mutex mu_;
  std::shared_ptr<const Graph> seed_graph_;
  unsigned num_machines_ = 1;
  std::vector<UpdateBatch> log_;  // log_[e - 1] built epoch e
  std::shared_ptr<const GraphSnapshot> snap_;
  std::shared_ptr<const PartitionMap> map_;  // null = hash placement
  std::vector<VertexId> hot_;                // empty = replication off
  std::uint64_t mirror_version_ = 0;
  GraphStoreStats stats_;
};

}  // namespace rpqd
