// In-memory property graph: a global immutable CSR built once by
// GraphBuilder, then sliced into per-machine partitions (partition.h).
//
// The global Graph is used (a) as the loading format, (b) by the
// single-machine baselines (Neo4j-like, relational) and the brute-force
// reference oracle. The distributed engine itself only ever touches
// Partition objects.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "graph/catalog.h"
#include "graph/value.h"

namespace rpqd {

/// One adjacency entry: destination (or source, for the in-CSR), edge
/// label, and global edge id. Entries are sorted by (elabel, other) within
/// each vertex, which gives the O(log degree) edge-match of Table 1.
struct AdjEntry {
  VertexId other;
  LabelId elabel;
  EdgeId eid;
};

/// Sparse property column: values indexed by (local or global) vertex id;
/// missing values are null.
class PropertyColumn {
 public:
  PropertyColumn() = default;
  explicit PropertyColumn(PropId prop) : prop_(prop) {}

  PropId prop() const { return prop_; }

  void set(std::size_t index, Value v) {
    if (index >= values_.size()) values_.resize(index + 1);
    values_[index] = v;
  }

  Value get(std::size_t index) const {
    return index < values_.size() ? values_[index] : null_value();
  }

  std::size_t size() const { return values_.size(); }

 private:
  PropId prop_ = kInvalidProp;
  std::vector<Value> values_;
};

/// Immutable CSR adjacency with per-entry edge-property columns.
class Adjacency {
 public:
  /// [begin, end) entry-index range of vertex v.
  std::pair<std::size_t, std::size_t> range(std::size_t v) const {
    return {offsets_[v], offsets_[v + 1]};
  }

  /// Sub-range of `range(v)` whose entries carry `elabel`.
  std::pair<std::size_t, std::size_t> label_range(std::size_t v,
                                                  LabelId elabel) const;

  /// True iff v has an entry to `other`, optionally restricted to `elabel`.
  /// Binary search: O(log degree).
  bool has_edge_to(std::size_t v, VertexId other,
                   std::optional<LabelId> elabel) const;

  /// Number of parallel edges from v to `other` (homomorphic matching
  /// counts each parallel edge as a distinct match). O(log degree + k).
  std::size_t count_edges_to(std::size_t v, VertexId other,
                             std::optional<LabelId> elabel) const;

  const AdjEntry& entry(std::size_t idx) const { return entries_[idx]; }

  /// O(1): edge filters evaluate this per adjacency entry, so the column
  /// is found through a PropId-indexed slot table built in make().
  Value edge_property(std::size_t idx, PropId prop) const {
    if (prop >= eprop_slots_.size()) return null_value();
    const std::uint32_t slot = eprop_slots_[prop];
    return slot == 0 ? null_value() : eprops_[slot - 1].get(idx);
  }

  std::size_t num_entries() const { return entries_.size(); }
  std::size_t degree(std::size_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Assembles an adjacency from raw parts. Entries must be sorted by
  /// (elabel, other) within each vertex range; eprops columns must be
  /// aligned with `entries`.
  static Adjacency make(std::vector<std::uint64_t> offsets,
                        std::vector<AdjEntry> entries,
                        std::vector<PropertyColumn> eprops) {
    Adjacency adj;
    adj.offsets_ = std::move(offsets);
    adj.entries_ = std::move(entries);
    adj.eprops_ = std::move(eprops);
    for (std::size_t i = 0; i < adj.eprops_.size(); ++i) {
      const PropId prop = adj.eprops_[i].prop();
      if (prop == kInvalidProp) continue;
      if (prop >= adj.eprop_slots_.size()) {
        adj.eprop_slots_.resize(prop + 1, 0);
      }
      adj.eprop_slots_[prop] = static_cast<std::uint32_t>(i + 1);
    }
    return adj;
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size = #vertices + 1
  std::vector<AdjEntry> entries_;
  std::vector<PropertyColumn> eprops_;  // aligned to entries_
  std::vector<std::uint32_t> eprop_slots_;  // PropId -> eprops_ index + 1
};

/// Immutable global property graph.
///
/// Vertices may be TOMBSTONED (GraphBuilder::mark_deleted): the id keeps
/// its slot — so vertex ids stay stable across online-update merges
/// (DESIGN.md §12) — but alive() is false, scans must skip it, and a
/// materialized graph carries no edges incident to it.
class Graph {
 public:
  const Catalog& catalog() const { return catalog_; }

  std::size_t num_vertices() const { return labels_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  bool alive(VertexId v) const { return dead_.empty() || !dead_[v]; }
  std::size_t num_dead() const { return num_dead_; }

  LabelId label(VertexId v) const { return labels_[v]; }

  Value property(VertexId v, PropId prop) const {
    return prop < columns_.size() ? columns_[prop].get(v) : null_value();
  }

  const Adjacency& out() const { return out_; }
  const Adjacency& in() const { return in_; }

  const Adjacency& adjacency(Direction d) const {
    return d == Direction::kIn ? in_ : out_;
  }

 private:
  friend class GraphBuilder;
  Catalog catalog_;
  std::vector<LabelId> labels_;
  std::vector<PropertyColumn> columns_;  // indexed by PropId
  Adjacency out_;
  Adjacency in_;
  std::size_t num_edges_ = 0;
  std::vector<std::uint8_t> dead_;  // empty = every vertex alive
  std::size_t num_dead_ = 0;
};

/// Mutable construction interface producing an immutable Graph.
class GraphBuilder {
 public:
  Catalog& catalog() { return catalog_; }

  VertexId add_vertex(LabelId label);
  VertexId add_vertex(std::string_view label_name) {
    return add_vertex(catalog_.vertex_label(label_name));
  }

  void set_property(VertexId v, PropId prop, Value value);
  void set_property(VertexId v, std::string_view prop_name, Value value) {
    set_property(v, catalog_.property(prop_name, value.type), value);
  }
  /// Convenience for string properties: interns the string first.
  void set_string_property(VertexId v, std::string_view prop_name,
                           std::string_view value) {
    set_property(v, catalog_.property(prop_name, ValueType::kString),
                 string_value(catalog_.string_id(value)));
  }

  EdgeId add_edge(VertexId src, VertexId dst, LabelId elabel);
  EdgeId add_edge(VertexId src, VertexId dst, std::string_view elabel_name) {
    return add_edge(src, dst, catalog_.edge_label(elabel_name));
  }

  /// Tombstones a vertex (online-update materialization, DESIGN.md §12):
  /// the id stays allocated, alive() reports false. The caller must not
  /// add edges incident to a tombstoned vertex.
  void mark_deleted(VertexId v);

  void set_edge_property(EdgeId e, PropId prop, Value value);

  std::size_t num_vertices() const { return labels_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Builds the immutable graph; the builder is consumed.
  Graph build() &&;

 private:
  struct EdgeRec {
    VertexId src, dst;
    LabelId elabel;
  };

  Catalog catalog_;
  std::vector<LabelId> labels_;
  std::vector<PropertyColumn> columns_;
  std::vector<EdgeRec> edges_;
  std::vector<PropertyColumn> edge_columns_;  // indexed by PropId, by EdgeId
  std::vector<std::uint8_t> dead_;
};

}  // namespace rpqd
