// Snapshot isolation for online updates (DESIGN.md §12).
//
// A GraphSnapshot is an IMMUTABLE view of the partitioned graph at one
// epoch: the flat base CSR (the PartitionedGraph built at load or by the
// last merge) plus per-machine delta segments layered on top. Applying an
// update batch builds the NEXT snapshot (epoch + 1) without touching the
// previous one; publication is a shared_ptr swap (RCU-style), so a query
// that pinned a snapshot at admission traverses exactly that version for
// its whole run — a torn batch is unobservable by construction, and
// "quiescence" for the background merge is automatic: the old base is
// freed when the last pinned query drains.
//
// Delta layering: a vertex whose adjacency the deltas touched is PATCHED —
// its FULL adjacency (retained base entries + inserted edges, minus
// tombstoned ones) is materialized into a per-machine patch CSR, row-form
// identical to the base (sorted by (elabel, other), aligned edge-property
// columns). Untouched vertices resolve through the base CSR. Flat entry
// indices keep working unchanged in the traversal hot path: base entries
// occupy [0, split) and patch entries [split, split + patch_entries), so
// the Frame cursor/end iteration, binary-searched label ranges, and
// edge-property slot reads all dispatch on a single comparison.
//
// Vertex ids are STABLE across epochs and across merges: deletes
// tombstone (the id keeps hashing to the same partition, its local slot
// keeps existing with alive() == false), inserts append fresh ids. Local
// ids on a machine only grow between merges; a merge rebuilds the
// partitions (dropping dead locals) and therefore invalidates every
// local-id-keyed side structure — the engine bumps all reach-cache
// generations at that point.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/types.h"
#include "graph/partition.h"
#include "graph/update.h"

namespace rpqd {

class PartitionView;
class GraphSnapshot;

/// Hot-vertex replication (DESIGN.md §14): the adjacency of a small set
/// of hot vertices, mirrored to EVERY machine and pre-bucketed by the
/// destination's owner. When a traversal expands through a hot vertex,
/// its owner sends one mirror-expand message per peer machine instead of
/// one context per remote neighbor; each peer enumerates its own bucket
/// locally. Buckets are plain Adjacency CSRs — one per (machine,
/// direction), rows indexed by hot rank — keeping (elabel, other) sort
/// order and edge-property columns, so receiver-side enumeration is
/// bit-compatible with the owner's.
///
/// A MirrorSet is immutable and rides the GraphSnapshot that built it:
/// an update whose DirtyScope touches a mirrored vertex rebuilds the set
/// before the next snapshot publishes (epoch coherence); untouched
/// updates share the previous set.
class MirrorSet {
 public:
  /// Builds buckets for `hot` (dead/unknown ids get empty rows) against
  /// the given snapshot. `version` is a monotone rebuild counter.
  static std::shared_ptr<const MirrorSet> build(const GraphSnapshot& snap,
                                                std::vector<VertexId> hot,
                                                std::uint64_t version);

  /// Hot rank of `v`, or nullopt when not mirrored. Armed traversals ask
  /// this once per frame, overwhelmingly answering "no": a 4096-bit
  /// membership pre-filter turns almost every miss into one bit test
  /// instead of an unordered_map probe.
  std::optional<std::uint32_t> row_of(VertexId v) const {
    const std::uint64_t h = mix64(v);
    if ((filter_[(h >> 6) & 63] & (1ull << (h & 63))) == 0) {
      return std::nullopt;
    }
    const auto it = index_.find(v);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  /// Machine m's bucket for one direction; row = hot rank.
  const Adjacency& bucket(MachineId m, Direction d) const {
    return d == Direction::kIn ? in_[m] : out_[m];
  }

  std::size_t bucket_degree(MachineId m, std::uint32_t row,
                            Direction d) const {
    return bucket(m, d).degree(row);
  }

  const std::vector<VertexId>& hot() const { return hot_; }
  std::uint64_t version() const { return version_; }
  std::uint64_t entries() const { return entries_; }
  unsigned num_machines() const { return static_cast<unsigned>(out_.size()); }

 private:
  std::vector<VertexId> hot_;  // sorted; rank = position
  std::array<std::uint64_t, 64> filter_{};  // membership pre-filter
  std::unordered_map<VertexId, std::uint32_t> index_;
  std::vector<Adjacency> out_;  // [machine], one row per hot vertex
  std::vector<Adjacency> in_;
  std::uint64_t version_ = 0;
  std::uint64_t entries_ = 0;  // mirrored adjacency entries, both dirs
};

/// Adjacency of one direction of one PartitionView: the base partition's
/// flat CSR with the patch CSR layered over dirty vertices. Mirrors the
/// read API of Adjacency; entry indices < split() address the base CSR,
/// indices >= split() address the patch (offset by split()).
class ViewAdjacency {
 public:
  std::pair<std::size_t, std::size_t> range(std::size_t v) const {
    const std::uint32_t row = row_of(v);
    if (row == 0) return base_->range(v);
    const auto [b, e] = patch_->range(row - 1);
    return {b + split_, e + split_};
  }

  std::pair<std::size_t, std::size_t> label_range(std::size_t v,
                                                  LabelId elabel) const {
    const std::uint32_t row = row_of(v);
    if (row == 0) return base_->label_range(v, elabel);
    const auto [b, e] = patch_->label_range(row - 1, elabel);
    return {b + split_, e + split_};
  }

  bool has_edge_to(std::size_t v, VertexId other,
                   std::optional<LabelId> elabel) const {
    const std::uint32_t row = row_of(v);
    return row == 0 ? base_->has_edge_to(v, other, elabel)
                    : patch_->has_edge_to(row - 1, other, elabel);
  }

  std::size_t count_edges_to(std::size_t v, VertexId other,
                             std::optional<LabelId> elabel) const {
    const std::uint32_t row = row_of(v);
    return row == 0 ? base_->count_edges_to(v, other, elabel)
                    : patch_->count_edges_to(row - 1, other, elabel);
  }

  const AdjEntry& entry(std::size_t idx) const {
    return idx < split_ ? base_->entry(idx) : patch_->entry(idx - split_);
  }

  Value edge_property(std::size_t idx, PropId prop) const {
    return idx < split_ ? base_->edge_property(idx, prop)
                        : patch_->edge_property(idx - split_, prop);
  }

  std::size_t degree(std::size_t v) const {
    const std::uint32_t row = row_of(v);
    return row == 0 ? base_->degree(v) : patch_->degree(row - 1);
  }

  /// Patch-segment entry count (delta bytes living over this direction).
  std::size_t patch_entries() const { return patch_->num_entries(); }

 private:
  friend class PartitionView;
  void init(const Adjacency* base, const Adjacency* patch,
            const std::vector<std::uint32_t>* patch_row) {
    base_ = base;
    patch_ = patch;
    patch_row_ = patch_row;
    split_ = base->num_entries();
  }

  /// 0 = unpatched (resolve through the base CSR; only valid for locals
  /// that exist in the base), else patch row + 1. patch_row_ is empty on
  /// a delta-free view and fully sized otherwise — new and dead locals
  /// are ALWAYS patched (the base CSR has no row for them).
  std::uint32_t row_of(std::size_t v) const {
    return patch_row_->empty() ? 0 : (*patch_row_)[v];
  }

  const Adjacency* base_ = nullptr;
  const Adjacency* patch_ = nullptr;
  const std::vector<std::uint32_t>* patch_row_ = nullptr;
  std::size_t split_ = 0;
};

/// One machine's slice of a GraphSnapshot. Mirrors the Partition read API
/// used by the traversal hot path (machine.cpp / expr.cpp), so the
/// runtime is retargeted by type substitution alone. A delta-free view is
/// a pure pass-through to the base Partition.
class PartitionView {
 public:
  MachineId machine() const { return base_->machine(); }
  unsigned num_machines() const { return base_->num_machines(); }
  bool owns(VertexId v) const { return base_->owns(v); }
  /// Map-aware owner resolution (PartitionMap when adopted, else hash).
  MachineId owner_of(VertexId v) const { return base_->owner_of(v); }

  /// The snapshot's hot-vertex mirror set; nullptr unless replication is
  /// configured (GraphStore::set_hot_set).
  const MirrorSet* mirrors() const { return mirrors_; }

  /// Base locals plus appended locals; tombstoned locals stay counted
  /// (their slots persist with alive() == false until a merge).
  std::size_t num_local() const {
    return base_->num_local() + added_globals_.size();
  }

  VertexId to_global(LocalVertexId lv) const {
    const std::size_t nb = base_->num_local();
    return lv < nb ? base_->to_global(lv) : added_globals_[lv - nb];
  }

  /// Local index of an owned, ALIVE vertex; nullopt for remote and for
  /// tombstoned vertices (a dead vertex is unaddressable — nothing in
  /// this snapshot references it).
  std::optional<LocalVertexId> to_local(VertexId v) const {
    std::optional<LocalVertexId> lv = base_->to_local(v);
    if (!lv.has_value() && !added_index_.empty()) {
      if (const auto it = added_index_.find(v); it != added_index_.end()) {
        lv = it->second;
      }
    }
    if (lv.has_value() && !alive(*lv)) return std::nullopt;
    return lv;
  }

  LocalVertexId require_local(VertexId v) const {
    const auto lv = to_local(v);
    engine_check(lv.has_value(), "vertex processed on non-owner machine");
    return *lv;
  }

  LabelId label(LocalVertexId lv) const {
    const std::size_t nb = base_->num_local();
    return lv < nb ? base_->label(lv) : added_labels_[lv - nb];
  }

  Value property(LocalVertexId lv, PropId prop) const {
    const std::size_t nb = base_->num_local();
    if (lv < nb) return base_->property(lv, prop);
    return prop < added_cols_.size() ? added_cols_[prop].get(lv - nb)
                                     : null_value();
  }

  const ViewAdjacency& adjacency(Direction d) const {
    return d == Direction::kIn ? vin_ : vout_;
  }

  const Catalog& catalog() const { return base_->catalog(); }

  bool alive(LocalVertexId lv) const { return dead_.empty() || !dead_[lv]; }

  const Partition& base() const { return *base_; }
  bool has_deltas() const { return !patch_row_.empty(); }
  std::size_t patch_entries() const {
    return vout_.patch_entries() + vin_.patch_entries();
  }

 private:
  friend class GraphSnapshot;

  /// Wires the ViewAdjacency back-pointers; called once the view has its
  /// final address inside GraphSnapshot::views_ (never moved afterwards).
  void finalize(const Partition* base) {
    base_ = base;
    vout_.init(&base->adjacency(Direction::kOut), &patch_out_, &patch_row_);
    vin_.init(&base->adjacency(Direction::kIn), &patch_in_, &patch_row_);
  }

  const Partition* base_ = nullptr;
  // Delta segments; all empty on a pass-through view.
  std::vector<std::uint32_t> patch_row_;  // local -> patch row + 1; 0 = base
  Adjacency patch_out_;
  Adjacency patch_in_;
  std::vector<LocalVertexId> patched_;  // sorted locals with patch rows
  std::vector<VertexId> added_globals_;  // local = base num_local + index
  std::vector<LabelId> added_labels_;
  std::vector<PropertyColumn> added_cols_;  // PropId-indexed, added-local rows
  std::unordered_map<VertexId, LocalVertexId> added_index_;
  std::vector<std::uint8_t> dead_;  // sized num_local(); empty = none dead
  // Owned by the enclosing GraphSnapshot (same lifetime as base_).
  const MirrorSet* mirrors_ = nullptr;
  ViewAdjacency vout_;
  ViewAdjacency vin_;
};

/// The cluster-wide graph at one epoch: the shared immutable base plus
/// one PartitionView per machine. Snapshots are published via shared_ptr
/// swap and pinned by queries at admission.
class GraphSnapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }
  unsigned num_machines() const { return base_->num_machines(); }
  const PartitionView& view(MachineId m) const { return views_[m]; }
  const PartitionedGraph& base() const { return *base_; }

  /// Global vertex-id space size (tombstoned ids included: the next
  /// inserted vertex gets this id).
  std::uint64_t num_vertices() const { return num_vertices_; }
  /// Global edge-id space size (the next inserted edge gets this id).
  std::uint64_t num_edges() const { return num_edges_; }
  /// Adjacency entries living in delta segments across all machines and
  /// both directions — the merge-trigger quantity.
  std::uint64_t delta_entries() const { return delta_entries_; }
  std::uint64_t dead_vertices() const { return dead_vertices_; }

  /// True while any view carries a delta segment. Exact — counts neither
  /// tombstones folded into a merged base nor zero-edge patch rows out.
  bool has_deltas() const {
    for (const PartitionView& v : views_) {
      if (v.has_deltas()) return true;
    }
    return false;
  }

  /// A delta-free snapshot of `base` at epoch 0.
  static std::shared_ptr<const GraphSnapshot> initial(
      std::shared_ptr<const PartitionedGraph> base);

  /// A delta-free snapshot of a freshly merged base that PRESERVES the
  /// epoch and id spaces of the snapshot it replaces (GraphStore::merge).
  static std::shared_ptr<const GraphSnapshot> rebased(
      std::shared_ptr<const PartitionedGraph> base, std::uint64_t epoch,
      std::uint64_t num_vertices, std::uint64_t num_edges);

  /// Applies one batch on top of `prev`, producing the epoch + 1
  /// snapshot and filling the receipt. Validation failures (unknown
  /// vertex, dead endpoint, out-of-catalog label, delete of a missing
  /// edge) throw QueryError; `prev` is untouched either way.
  static std::shared_ptr<const GraphSnapshot> apply(
      const std::shared_ptr<const GraphSnapshot>& prev,
      const UpdateBatch& batch, UpdateResult* out);

  /// A clone of `prev` (same epoch, base, and deltas) carrying a freshly
  /// built MirrorSet for `hot` (empty = drop mirroring). `version` seeds
  /// the rebuild counter. apply() keeps mirrors coherent from then on:
  /// batches dirtying a hot vertex rebuild, others share the set.
  static std::shared_ptr<const GraphSnapshot> with_mirrors(
      const std::shared_ptr<const GraphSnapshot>& prev,
      std::vector<VertexId> hot, std::uint64_t version);

  /// The hot-vertex mirror set (nullptr = replication not configured).
  std::shared_ptr<const MirrorSet> mirror_set() const { return mirrors_; }

 private:
  GraphSnapshot() = default;

  /// Installs `mirrors` and points every view at it.
  void attach_mirrors(std::shared_ptr<const MirrorSet> mirrors);

  std::uint64_t epoch_ = 0;
  std::shared_ptr<const PartitionedGraph> base_;
  std::vector<PartitionView> views_;
  std::shared_ptr<const MirrorSet> mirrors_;
  std::uint64_t num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t delta_entries_ = 0;
  std::uint64_t dead_vertices_ = 0;
};

}  // namespace rpqd
