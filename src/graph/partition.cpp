#include "graph/partition.h"

namespace rpqd {

namespace {

// Copies the adjacency slices of `locals` out of the global CSR, together
// with any edge-property columns. Entries are already sorted by
// (elabel, other) per vertex, so slices stay sorted.
Adjacency slice_adjacency(const Adjacency& global,
                          const std::vector<VertexId>& locals,
                          std::size_t num_properties) {
  std::vector<std::uint64_t> offsets(locals.size() + 1, 0);
  for (std::size_t i = 0; i < locals.size(); ++i) {
    offsets[i + 1] = offsets[i] + global.degree(locals[i]);
  }
  std::vector<AdjEntry> entries(offsets.back());
  std::size_t cursor = 0;
  for (const VertexId v : locals) {
    const auto [begin, end] = global.range(v);
    for (std::size_t idx = begin; idx < end; ++idx) {
      entries[cursor++] = global.entry(idx);
    }
  }
  std::vector<PropertyColumn> eprops;
  for (PropId prop = 0; prop < num_properties; ++prop) {
    PropertyColumn col(prop);
    bool any = false;
    cursor = 0;
    for (const VertexId v : locals) {
      const auto [begin, end] = global.range(v);
      for (std::size_t idx = begin; idx < end; ++idx, ++cursor) {
        const Value val = global.edge_property(idx, prop);
        if (!is_null(val)) {
          col.set(cursor, val);
          any = true;
        }
      }
    }
    if (any) eprops.push_back(std::move(col));
  }
  return Adjacency::make(std::move(offsets), std::move(entries),
                         std::move(eprops));
}

}  // namespace

PartitionedGraph::PartitionedGraph(std::shared_ptr<const Graph> graph,
                                   unsigned num_machines,
                                   std::shared_ptr<const PartitionMap> map)
    : graph_(std::move(graph)), map_(std::move(map)) {
  engine_check(num_machines >= 1 && num_machines <= 256,
               "machine count must be in [1, 256]");
  engine_check(map_ == nullptr || map_->num_machines() == num_machines,
               "partition map built for a different machine count");
  partitions_.resize(num_machines);
  const auto& g = *graph_;

  std::vector<std::vector<VertexId>> locals(num_machines);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Tombstoned vertices (online-update merges, DESIGN.md §12) keep
    // their global id but get no local slot: they are unaddressable.
    if (!g.alive(v)) continue;
    locals[owner(v)].push_back(v);
  }

  const std::size_t num_props = g.catalog().num_properties();
  for (unsigned m = 0; m < num_machines; ++m) {
    Partition& p = partitions_[m];
    p.machine_ = static_cast<MachineId>(m);
    p.num_machines_ = num_machines;
    p.pmap_ = map_.get();
    p.catalog_ = &g.catalog();
    p.local_to_global_ = std::move(locals[m]);
    p.global_to_local_ = FlatVertexTable::build(p.local_to_global_);
    p.labels_.resize(p.local_to_global_.size());
    for (std::size_t i = 0; i < p.local_to_global_.size(); ++i) {
      p.labels_[i] = g.label(p.local_to_global_[i]);
    }
    // Property columns, re-indexed by local id.
    p.columns_.reserve(num_props);
    for (PropId prop = 0; prop < num_props; ++prop) {
      PropertyColumn col(prop);
      for (std::size_t i = 0; i < p.local_to_global_.size(); ++i) {
        const Value v = g.property(p.local_to_global_[i], prop);
        if (!is_null(v)) col.set(i, v);
      }
      p.columns_.push_back(std::move(col));
    }
    p.out_ = slice_adjacency(g.out(), p.local_to_global_, num_props);
    p.in_ = slice_adjacency(g.in(), p.local_to_global_, num_props);
  }
}

}  // namespace rpqd
