// Graph partitioning across the simulated cluster.
//
// Vertices are hash-partitioned (splitmix64 of the global id modulo the
// machine count), exactly the owner function each machine of a real
// cluster evaluates locally to address messages. A Partition stores the
// out- and in-CSR of its local vertices (destinations kept as global ids),
// vertex labels, and property columns — the only graph data a machine may
// touch during execution. Remote vertices are reachable exclusively by
// sending a message to their owner.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "graph/graph.h"
#include "graph/vertex_table.h"

namespace rpqd {

/// Explicit vertex→machine assignment, adopted when a profile-driven
/// repartition replaces the default hash placement (DESIGN.md §14).
/// Immutable once built and shared by every Partition of a cluster.
/// Vertices beyond size() — ids minted by updates after the map was
/// proposed — fall back to the hash owner, so the map stays total and
/// every machine resolves the same owner from the id alone.
class PartitionMap {
 public:
  PartitionMap(std::vector<MachineId> map, unsigned num_machines)
      : map_(std::move(map)), num_machines_(num_machines) {
    for (const MachineId m : map_) {
      engine_check(m < num_machines_, "partition map assigns a machine out of range");
    }
  }

  MachineId owner(VertexId v) const {
    return v < map_.size()
               ? map_[v]
               : static_cast<MachineId>(mix64(v) % num_machines_);
  }

  std::size_t size() const { return map_.size(); }
  unsigned num_machines() const { return num_machines_; }

 private:
  std::vector<MachineId> map_;
  unsigned num_machines_ = 1;
};

class Partition {
 public:
  MachineId machine() const { return machine_; }
  unsigned num_machines() const { return num_machines_; }

  /// Default owner function: computable from the vertex id alone on any
  /// machine. Callers that may run under an adopted PartitionMap must go
  /// through owner_of() / PartitionedGraph::owner() instead.
  static MachineId owner(VertexId v, unsigned num_machines) {
    return static_cast<MachineId>(mix64(v) % num_machines);
  }

  /// Map-aware owner: the adopted PartitionMap when one is installed,
  /// the hash placement otherwise.
  MachineId owner_of(VertexId v) const {
    return pmap_ != nullptr ? pmap_->owner(v) : owner(v, num_machines_);
  }

  bool owns(VertexId v) const { return owner_of(v) == machine_; }

  std::size_t num_local() const { return local_to_global_.size(); }

  VertexId to_global(LocalVertexId lv) const { return local_to_global_[lv]; }

  /// Local index of an owned vertex; nullopt for remote vertices. Runs
  /// on every inbound message, hence a flat open-addressing probe.
  std::optional<LocalVertexId> to_local(VertexId v) const {
    return global_to_local_.find(v);
  }

  LocalVertexId require_local(VertexId v) const {
    const auto lv = to_local(v);
    engine_check(lv.has_value(), "vertex processed on non-owner machine");
    return *lv;
  }

  LabelId label(LocalVertexId lv) const { return labels_[lv]; }

  Value property(LocalVertexId lv, PropId prop) const {
    return prop < columns_.size() ? columns_[prop].get(lv) : null_value();
  }

  const Adjacency& adjacency(Direction d) const {
    return d == Direction::kIn ? in_ : out_;
  }

  const Catalog& catalog() const { return *catalog_; }

 private:
  friend class PartitionedGraph;
  MachineId machine_ = 0;
  unsigned num_machines_ = 1;
  // Borrowed from the owning PartitionedGraph (which keeps it alive);
  // null = hash placement.
  const PartitionMap* pmap_ = nullptr;
  const Catalog* catalog_ = nullptr;
  std::vector<VertexId> local_to_global_;
  FlatVertexTable global_to_local_;
  std::vector<LabelId> labels_;
  std::vector<PropertyColumn> columns_;
  Adjacency out_;
  Adjacency in_;
};

/// The cluster-wide view: one Partition per simulated machine, sharing the
/// (immutable) source graph for catalog lifetime.
class PartitionedGraph {
 public:
  PartitionedGraph(std::shared_ptr<const Graph> graph, unsigned num_machines)
      : PartitionedGraph(std::move(graph), num_machines, nullptr) {}

  /// Partitions under an explicit vertex→machine map (nullptr = hash).
  PartitionedGraph(std::shared_ptr<const Graph> graph, unsigned num_machines,
                   std::shared_ptr<const PartitionMap> map);

  unsigned num_machines() const {
    return static_cast<unsigned>(partitions_.size());
  }
  const Partition& partition(MachineId m) const { return partitions_[m]; }
  const Graph& global() const { return *graph_; }
  std::shared_ptr<const Graph> global_ptr() const { return graph_; }
  const Catalog& catalog() const { return graph_->catalog(); }

  MachineId owner(VertexId v) const {
    return map_ != nullptr ? map_->owner(v)
                           : Partition::owner(v, num_machines());
  }

  /// The adopted map; nullptr while placement is the default hash.
  std::shared_ptr<const PartitionMap> partition_map() const { return map_; }

 private:
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const PartitionMap> map_;
  std::vector<Partition> partitions_;
};

}  // namespace rpqd
