#include "baseline/reference.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/eval_util.h"
#include "common/error.h"
#include "common/hash.h"
#include "pgql/parser.h"

namespace rpqd::baseline {

namespace {

using pgql::Expr;
using pgql::PathMacro;
using pgql::Query;

struct REdge {
  std::string src, dst;
  Direction dir = Direction::kOut;
  std::vector<std::string> labels;
  bool is_rpq = false;
  Depth min = 1, max = 1;
  const PathMacro* macro = nullptr;
  std::vector<std::string> rpq_labels;
};

class Evaluator {
 public:
  Evaluator(const Query& q, const Graph& g) : q_(q), g_(g) {
    for (const auto& m : q.path_macros) macros_.emplace(m.name, &m);
    collect();
  }

  std::uint64_t run() {
    count_ = 0;
    Binding bind;
    assign(0, bind, 1);
    return count_;
  }

 private:
  void collect() {
    for (const auto& chain : q_.match) {
      note_var(chain.src.var, chain.src.labels);
      std::string prev = chain.src.var;
      for (const auto& hop : chain.hops) {
        note_var(hop.dst.var, hop.dst.labels);
        REdge e;
        e.src = prev;
        e.dst = hop.dst.var;
        e.dir = hop.edge.dir;
        e.labels = hop.edge.labels;
        e.is_rpq = hop.edge.is_rpq;
        if (e.is_rpq) {
          e.min = hop.edge.quantifier.min;
          e.max = hop.edge.quantifier.max;
          if (!hop.edge.path_name.empty()) {
            const auto it = macros_.find(hop.edge.path_name);
            if (it != macros_.end()) {
              e.macro = it->second;
            } else {
              e.rpq_labels = {hop.edge.path_name};
            }
          } else {
            e.rpq_labels = hop.edge.labels;
            e.labels.clear();
          }
          if (e.dir == Direction::kIn) {
            // Normalize `<-/:p/-`: the path runs right-to-left.
            std::swap(e.src, e.dst);
            e.dir = Direction::kOut;
          }
        }
        edges_.push_back(std::move(e));
        prev = hop.dst.var;
      }
    }
    // WHERE conjuncts referencing macro variables become per-iteration
    // filters of that macro's RPQ edge(s); the rest are plain filters.
    std::vector<const Expr*> flat;
    flatten_and(q_.where.get(), flat);
    for (const Expr* e : flat) {
      std::vector<std::string> vars;
      pgql::collect_vars(*e, vars);
      const PathMacro* m = nullptr;
      for (const auto& v : vars) {
        for (const auto& [name, macro] : macros_) {
          (void)name;
          if (macro_has_var(*macro, v)) m = macro;
        }
      }
      if (m != nullptr) {
        macro_filters_[m].push_back(e);
      } else {
        filters_.push_back(e);
      }
    }
  }

  static bool macro_has_var(const PathMacro& m, const std::string& v) {
    if (m.pattern.src.var == v) return true;
    for (const auto& hop : m.pattern.hops) {
      if (hop.dst.var == v) return true;
    }
    return false;
  }

  void note_var(const std::string& name,
                const std::vector<std::string>& labels) {
    if (std::find(order_.begin(), order_.end(), name) == order_.end()) {
      order_.push_back(name);
    }
    if (labels.empty()) return;
    auto& merged = var_labels_[name];
    if (!var_constrained_.count(name)) {
      merged = labels;
      var_constrained_.insert(name);
    } else {
      std::vector<std::string> kept;
      for (const auto& l : merged) {
        if (std::find(labels.begin(), labels.end(), l) != labels.end()) {
          kept.push_back(l);
        }
      }
      merged = std::move(kept);
      if (merged.empty()) impossible_.insert(name);
    }
  }

  // The oriented inner chain of an RPQ edge.
  struct Chain {
    std::vector<const pgql::VertexPattern*> verts;
    std::vector<std::pair<const pgql::EdgePattern*, Direction>> hops;
  };

  Chain chain_of(const REdge& e, bool forward) const {
    Chain c;
    static const pgql::VertexPattern anon_a{"_ref_a", {}};
    static const pgql::VertexPattern anon_b{"_ref_b", {}};
    static const pgql::EdgePattern no_edge{};
    if (e.macro != nullptr) {
      c.verts.push_back(&e.macro->pattern.src);
      for (const auto& hop : e.macro->pattern.hops) {
        c.verts.push_back(&hop.dst);
        c.hops.emplace_back(&hop.edge, hop.edge.dir);
      }
    } else {
      c.verts.push_back(&anon_a);
      c.verts.push_back(&anon_b);
      c.hops.emplace_back(&no_edge, e.dir);
    }
    if (!forward) {
      std::reverse(c.verts.begin(), c.verts.end());
      std::reverse(c.hops.begin(), c.hops.end());
      for (auto& h : c.hops) h.second = reverse(h.second);
    }
    return c;
  }

  // One path-pattern iteration from `from`: invokes fn for every endpoint
  // reachable by matching the inner chain once (per inner edge binding).
  void iterate_once(const REdge& e, const Chain& chain, VertexId from,
                    const Binding& outer,
                    const std::function<void(VertexId)>& fn) const {
    Binding bind = outer;  // outer vars visible to cross-filters
    std::function<void(std::size_t, VertexId)> walk = [&](std::size_t pos,
                                                          VertexId at) {
      if (!label_ok(g_, at, chain.verts[pos]->labels)) return;
      bind[chain.verts[pos]->var] = at;
      if (pos + 1 == chain.verts.size()) {
        if (e.macro != nullptr) {
          if (e.macro->where != nullptr &&
              !eval_bool(*e.macro->where, g_, bind)) {
            return;
          }
          const auto it = macro_filters_.find(e.macro);
          if (it != macro_filters_.end()) {
            for (const Expr* f : it->second) {
              if (!eval_bool(*f, g_, bind)) return;
            }
          }
        }
        fn(at);
        return;
      }
      const auto& [edge, dir] = chain.hops[pos];
      const auto& labels = e.macro != nullptr ? edge->labels : e.rpq_labels;
      for_each_neighbor(g_, at, dir, labels,
                        [&](VertexId next) { walk(pos + 1, next); });
    };
    walk(0, from);
  }

  // Destinations reachable from `from` with iteration count in [min, max].
  //
  // Unbounded max: depths are *clamped at min* — once a walk has length
  // >= min, all longer extensions behave identically, so the state space
  // is (vertex, min(depth, min)) and exploration terminates after at most
  // |V| * (min + 1) states. A destination counts iff the clamped-at-min
  // state is reached.
  std::unordered_set<VertexId> reachable(const REdge& e, VertexId from,
                                         bool forward,
                                         const Binding& outer) const {
    // Plain-label RPQs (no macro, hence no binding-dependent filters) are
    // memoized per (edge, anchor, orientation) — the backtracking search
    // re-queries the same anchors many times.
    const bool cacheable = e.macro == nullptr;
    // Exact composite key (edge index, anchor, orientation) — no hashing,
    // a collision would silently return the wrong set.
    const auto edge_index = static_cast<std::uint64_t>(&e - edges_.data());
    const std::uint64_t cache_key =
        (edge_index << 40) | (from << 1) | (forward ? 1u : 0u);
    if (cacheable) {
      const auto it = reach_cache_.find(cache_key);
      if (it != reach_cache_.end()) return it->second;
    }
    auto result = reachable_uncached(e, from, forward, outer);
    if (cacheable) reach_cache_.emplace(cache_key, result);
    return result;
  }

  std::unordered_set<VertexId> reachable_uncached(const REdge& e,
                                                  VertexId from, bool forward,
                                                  const Binding& outer) const {
    const Chain chain = chain_of(e, forward);
    const bool unbounded = e.max == kUnboundedDepth;
    const Depth cap = unbounded ? e.min : e.max;
    std::unordered_set<VertexId> result;
    std::unordered_set<std::uint64_t> seen;  // (vertex, depth) states
    std::deque<std::pair<VertexId, Depth>> queue;
    queue.emplace_back(from, 0);
    seen.insert(mix64(mix64(from)));  // state (from, depth 0)
    if (e.min == 0) result.insert(from);
    while (!queue.empty()) {
      const auto [v, d] = queue.front();
      queue.pop_front();
      if (!unbounded && d >= cap) continue;
      iterate_once(e, chain, v, outer, [&](VertexId w) {
        const Depth next = unbounded ? std::min<Depth>(d + 1, cap) : d + 1;
        // Nested mixing: a plain xor of two mixes collides on w == depth.
        const std::uint64_t key =
            mix64(mix64(w) + static_cast<std::uint64_t>(next));
        if (!seen.insert(key).second) return;
        if (next >= e.min) result.insert(w);
        queue.emplace_back(w, next);
      });
    }
    return result;
  }

  bool rpq_connects(const REdge& e, VertexId src, VertexId dst,
                    const Binding& outer) const {
    return reachable(e, src, /*forward=*/true, outer).count(dst) != 0;
  }

  // Backtracking over variables in appearance order. `weight` carries the
  // homomorphic multiplicity of cycle-closing parallel edges.
  void assign(std::size_t pos, Binding& bind, std::uint64_t weight) {
    if (pos == order_.size()) {
      count_ += weight;
      return;
    }
    const std::string& var = order_[pos];
    if (impossible_.count(var) != 0) return;
    const auto bound = [&](const std::string& v) { return bind.count(v) != 0; };

    const REdge* generator = nullptr;
    bool gen_forward = true;
    for (const auto& e : edges_) {
      if (e.dst == var && bound(e.src)) {
        generator = &e;
        gen_forward = true;
        break;
      }
      if (e.src == var && bound(e.dst)) {
        generator = &e;
        gen_forward = false;
        break;
      }
    }

    const auto try_candidate = [&](VertexId v, std::uint64_t base_weight) {
      // Tombstoned vertices (online deletes) are unaddressable, exactly
      // as in the engine's partitions.
      if (!g_.alive(v)) return;
      if (!label_ok(g_, v, var_labels_[var])) return;
      bind[var] = v;
      std::uint64_t w = base_weight;
      for (const auto& e : edges_) {
        if ((e.src != var && e.dst != var) || &e == generator) continue;
        if (!bound(e.src) || !bound(e.dst)) continue;
        const VertexId s = bind[e.src];
        const VertexId d = bind[e.dst];
        if (e.is_rpq) {
          if (!rpq_connects(e, s, d, bind)) {
            w = 0;
            break;
          }
        } else {
          const std::size_t m = count_edges(g_, s, d, e.dir, e.labels);
          if (m == 0) {
            w = 0;
            break;
          }
          w *= m;  // each parallel edge is a distinct homomorphic match
        }
      }
      if (w > 0) {
        bool ok = true;
        for (const Expr* f : filters_) {
          std::vector<std::string> vars;
          pgql::collect_vars(*f, vars);
          bool complete = true;
          bool uses_var = false;
          for (const auto& fv : vars) {
            if (fv == var) uses_var = true;
            if (!bound(fv)) complete = false;
          }
          if (complete && uses_var && !eval_bool(*f, g_, bind)) {
            ok = false;
            break;
          }
        }
        if (ok) assign(pos + 1, bind, w);
      }
      bind.erase(var);
    };

    if (generator == nullptr) {
      if (pos != 0) {
        throw UnsupportedError(
            "reference: disconnected pattern (cartesian product)");
      }
      for (const Expr* f : filters_) {
        std::vector<std::string> vars;
        pgql::collect_vars(*f, vars);
        if (vars.empty() && !eval_bool(*f, g_, bind)) return;
      }
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        try_candidate(v, weight);
      }
      return;
    }

    const VertexId anchor = bind[gen_forward ? generator->src : generator->dst];
    if (generator->is_rpq) {
      // RPQ destinations are deduplicated per source binding (§3.5).
      for (const VertexId v : reachable(*generator, anchor, gen_forward, bind)) {
        try_candidate(v, weight);
      }
    } else {
      const Direction dir =
          gen_forward ? generator->dir : reverse(generator->dir);
      // One candidate invocation per incident edge: homomorphic matching
      // counts parallel edges separately.
      for_each_neighbor(g_, anchor, dir, generator->labels,
                        [&](VertexId v) { try_candidate(v, weight); });
    }
  }

  const Query& q_;
  const Graph& g_;
  std::unordered_map<std::string, const PathMacro*> macros_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, std::vector<std::string>> var_labels_;
  std::unordered_set<std::string> var_constrained_;
  std::unordered_set<std::string> impossible_;
  std::vector<REdge> edges_;
  std::vector<const Expr*> filters_;
  std::unordered_map<const PathMacro*, std::vector<const Expr*>> macro_filters_;
  mutable std::unordered_map<std::uint64_t, std::unordered_set<VertexId>>
      reach_cache_;
  std::uint64_t count_ = 0;
};

}  // namespace

ReferenceResult reference_evaluate(const Query& query, const Graph& graph) {
  Evaluator eval(query, graph);
  return {eval.run()};
}

ReferenceResult reference_evaluate(std::string_view pgql_text,
                                   const Graph& graph) {
  const Query q = pgql::parse(pgql_text);
  return reference_evaluate(q, graph);
}

}  // namespace rpqd::baseline
