// Shared AST-interpretation utilities for the baseline engines: a small
// boxed value type, a direct AST expression interpreter over global-graph
// bindings, and neighbor iteration helpers. Deliberately independent of
// the distributed engine's compiled expressions — the baselines double as
// correctness oracles, so they must not share its evaluation code.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "pgql/ast.h"

namespace rpqd::baseline {

struct RVal {
  enum class Kind { kNull, kInt, kDouble, kBool, kStr, kVertex } kind =
      Kind::kNull;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
  VertexId v = kInvalidVertex;

  static RVal null() { return {}; }
  static RVal of_int(std::int64_t x);
  static RVal of_double(double x);
  static RVal of_bool(bool x);
  static RVal of_str(std::string x);
  static RVal of_vertex(VertexId x);
  bool is_null() const { return kind == Kind::kNull; }
};

using Binding = std::unordered_map<std::string, VertexId>;

RVal from_value(const Value& v, const Catalog& cat);
std::optional<int> compare(const RVal& a, const RVal& b);

/// Interprets an AST expression against vertex bindings on the global
/// graph. Throws QueryError on unknown variables.
RVal eval(const pgql::Expr& e, const Graph& g, const Binding& bind);
bool eval_bool(const pgql::Expr& e, const Graph& g, const Binding& bind);

/// True when v's label name is in `labels` (empty = unconstrained).
bool label_ok(const Graph& g, VertexId v,
              const std::vector<std::string>& labels);

/// Calls fn once per incident edge matching dir + edge-label names.
/// For kBoth, self-loops are visited once (out leg only).
void for_each_neighbor(const Graph& g, VertexId v, Direction dir,
                       const std::vector<std::string>& labels,
                       const std::function<void(VertexId)>& fn);

/// Number of parallel edges a->b matching dir + labels (kBoth counts a
/// self-loop once).
std::size_t count_edges(const Graph& g, VertexId a, VertexId b, Direction dir,
                        const std::vector<std::string>& labels);

/// Flattens a conjunction tree into its top-level conjuncts.
void flatten_and(const pgql::Expr* e, std::vector<const pgql::Expr*>& out);

}  // namespace rpqd::baseline
