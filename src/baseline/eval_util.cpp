#include "baseline/eval_util.h"

#include <algorithm>

#include "common/error.h"

namespace rpqd::baseline {

using pgql::BinOp;
using pgql::Expr;
using pgql::ExprKind;
using pgql::UnOp;

RVal RVal::of_int(std::int64_t x) {
  RVal r;
  r.kind = Kind::kInt;
  r.i = x;
  return r;
}
RVal RVal::of_double(double x) {
  RVal r;
  r.kind = Kind::kDouble;
  r.d = x;
  return r;
}
RVal RVal::of_bool(bool x) {
  RVal r;
  r.kind = Kind::kBool;
  r.b = x;
  return r;
}
RVal RVal::of_str(std::string x) {
  RVal r;
  r.kind = Kind::kStr;
  r.s = std::move(x);
  return r;
}
RVal RVal::of_vertex(VertexId x) {
  RVal r;
  r.kind = Kind::kVertex;
  r.v = x;
  return r;
}

RVal from_value(const Value& v, const Catalog& cat) {
  switch (v.type) {
    case ValueType::kNull: return RVal::null();
    case ValueType::kBool: return RVal::of_bool(as_bool(v));
    case ValueType::kInt: return RVal::of_int(as_int(v));
    case ValueType::kDouble: return RVal::of_double(as_double(v));
    case ValueType::kString:
      return RVal::of_str(cat.string_name(as_string_id(v)));
    case ValueType::kVertex: return RVal::of_vertex(as_vertex(v));
  }
  return RVal::null();
}

std::optional<int> compare(const RVal& a, const RVal& b) {
  using K = RVal::Kind;
  if (a.is_null() || b.is_null()) return std::nullopt;
  const auto num = [](const RVal& x) -> std::optional<double> {
    if (x.kind == K::kInt) return static_cast<double>(x.i);
    if (x.kind == K::kDouble) return x.d;
    if (x.kind == K::kVertex) return static_cast<double>(x.v);
    return std::nullopt;
  };
  if (const auto na = num(a)) {
    if (const auto nb = num(b)) {
      return *na < *nb ? -1 : (*na > *nb ? 1 : 0);
    }
  }
  if (a.kind == K::kStr && b.kind == K::kStr) {
    return a.s < b.s ? -1 : (a.s > b.s ? 1 : 0);
  }
  if (a.kind == K::kBool && b.kind == K::kBool) {
    return static_cast<int>(a.b) - static_cast<int>(b.b);
  }
  return std::nullopt;
}

RVal eval(const Expr& e, const Graph& g, const Binding& bind) {
  switch (e.kind) {
    case ExprKind::kIntLit: return RVal::of_int(e.int_value);
    case ExprKind::kDoubleLit: return RVal::of_double(e.double_value);
    case ExprKind::kStringLit: return RVal::of_str(e.text);
    case ExprKind::kBoolLit: return RVal::of_bool(e.bool_value);
    case ExprKind::kPropRef: {
      const auto it = bind.find(e.text);
      if (it == bind.end()) {
        throw QueryError("baseline: unknown variable '" + e.text + "'");
      }
      const auto prop = g.catalog().find_property(e.prop);
      if (!prop) return RVal::null();
      return from_value(g.property(it->second, *prop), g.catalog());
    }
    case ExprKind::kIdFunc: {
      const auto it = bind.find(e.text);
      if (it == bind.end()) {
        throw QueryError("baseline: unknown variable '" + e.text + "'");
      }
      return RVal::of_vertex(it->second);
    }
    case ExprKind::kLabelFunc: {
      const auto it = bind.find(e.text);
      if (it == bind.end()) {
        throw QueryError("baseline: unknown variable '" + e.text + "'");
      }
      return RVal::of_str(g.catalog().vertex_label_name(g.label(it->second)));
    }
    case ExprKind::kUnary: {
      const RVal x = eval(*e.lhs, g, bind);
      if (e.un_op == UnOp::kNot) {
        if (x.kind != RVal::Kind::kBool) return RVal::null();
        return RVal::of_bool(!x.b);
      }
      if (x.kind == RVal::Kind::kInt) return RVal::of_int(-x.i);
      if (x.kind == RVal::Kind::kDouble) return RVal::of_double(-x.d);
      return RVal::null();
    }
    case ExprKind::kBinary: {
      const RVal a = eval(*e.lhs, g, bind);
      if (e.bin_op == BinOp::kAnd) {
        if (a.kind == RVal::Kind::kBool && !a.b) return RVal::of_bool(false);
        const RVal b = eval(*e.rhs, g, bind);
        if (a.is_null() || b.is_null()) return RVal::null();
        return RVal::of_bool(a.b && b.b);
      }
      if (e.bin_op == BinOp::kOr) {
        if (a.kind == RVal::Kind::kBool && a.b) return RVal::of_bool(true);
        const RVal b = eval(*e.rhs, g, bind);
        if (a.is_null() || b.is_null()) return RVal::null();
        return RVal::of_bool(a.b || b.b);
      }
      const RVal b = eval(*e.rhs, g, bind);
      switch (e.bin_op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod: {
          if (a.kind == RVal::Kind::kInt && b.kind == RVal::Kind::kInt) {
            switch (e.bin_op) {
              case BinOp::kAdd: return RVal::of_int(a.i + b.i);
              case BinOp::kSub: return RVal::of_int(a.i - b.i);
              case BinOp::kMul: return RVal::of_int(a.i * b.i);
              case BinOp::kDiv:
                return b.i == 0 ? RVal::null() : RVal::of_int(a.i / b.i);
              case BinOp::kMod:
                return b.i == 0 ? RVal::null() : RVal::of_int(a.i % b.i);
              default: break;
            }
          }
          const auto num = [](const RVal& x) -> std::optional<double> {
            if (x.kind == RVal::Kind::kInt) return static_cast<double>(x.i);
            if (x.kind == RVal::Kind::kDouble) return x.d;
            return std::nullopt;
          };
          const auto na = num(a);
          const auto nb = num(b);
          if (!na || !nb) return RVal::null();
          switch (e.bin_op) {
            case BinOp::kAdd: return RVal::of_double(*na + *nb);
            case BinOp::kSub: return RVal::of_double(*na - *nb);
            case BinOp::kMul: return RVal::of_double(*na * *nb);
            case BinOp::kDiv: return RVal::of_double(*na / *nb);
            default: return RVal::null();
          }
        }
        default: {
          const auto cmp = compare(a, b);
          if (!cmp) return RVal::null();
          switch (e.bin_op) {
            case BinOp::kEq: return RVal::of_bool(*cmp == 0);
            case BinOp::kNe: return RVal::of_bool(*cmp != 0);
            case BinOp::kLt: return RVal::of_bool(*cmp < 0);
            case BinOp::kLe: return RVal::of_bool(*cmp <= 0);
            case BinOp::kGt: return RVal::of_bool(*cmp > 0);
            case BinOp::kGe: return RVal::of_bool(*cmp >= 0);
            default: return RVal::null();
          }
        }
      }
    }
  }
  return RVal::null();
}

bool eval_bool(const Expr& e, const Graph& g, const Binding& bind) {
  const RVal r = eval(e, g, bind);
  return r.kind == RVal::Kind::kBool && r.b;
}

bool label_ok(const Graph& g, VertexId v,
              const std::vector<std::string>& labels) {
  if (labels.empty()) return true;
  const std::string& name = g.catalog().vertex_label_name(g.label(v));
  return std::find(labels.begin(), labels.end(), name) != labels.end();
}

void for_each_neighbor(const Graph& g, VertexId v, Direction dir,
                       const std::vector<std::string>& labels,
                       const std::function<void(VertexId)>& fn) {
  const auto scan = [&](const Adjacency& adj, bool skip_self) {
    const auto [begin, end] = adj.range(v);
    for (std::size_t i = begin; i < end; ++i) {
      const AdjEntry& e = adj.entry(i);
      if (skip_self && e.other == v) continue;
      if (!labels.empty()) {
        const std::string& name = g.catalog().edge_label_name(e.elabel);
        if (std::find(labels.begin(), labels.end(), name) == labels.end()) {
          continue;
        }
      }
      fn(e.other);
    }
  };
  if (dir == Direction::kOut || dir == Direction::kBoth) scan(g.out(), false);
  if (dir == Direction::kIn) {
    scan(g.in(), false);
  } else if (dir == Direction::kBoth) {
    scan(g.in(), true);  // self-loops already covered by the out leg
  }
}

std::size_t count_edges(const Graph& g, VertexId a, VertexId b, Direction dir,
                        const std::vector<std::string>& labels) {
  std::size_t count = 0;
  const auto count_leg = [&](Direction d, bool skip_self) {
    for_each_neighbor(g, a, d, labels, [&](VertexId other) {
      if (other == b && !(skip_self && b == a)) ++count;
    });
  };
  if (dir == Direction::kBoth) {
    count_leg(Direction::kOut, false);
    if (b != a) count_leg(Direction::kIn, false);
    return count;
  }
  count_leg(dir, false);
  return count;
}

void flatten_and(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    flatten_and(e->lhs.get(), out);
    flatten_and(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

}  // namespace rpqd::baseline
