#include "baseline/neo4j_like.h"

#include "baseline/reference.h"
#include "common/stopwatch.h"

namespace rpqd::baseline {

BaselineResult Neo4jLikeEngine::execute(std::string_view pgql_text) const {
  Stopwatch timer;
  const ReferenceResult r = reference_evaluate(pgql_text, graph_);
  return {r.count, timer.elapsed_ms()};
}

}  // namespace rpqd::baseline
