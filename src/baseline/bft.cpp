#include "baseline/bft.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/stopwatch.h"

namespace rpqd::baseline {

namespace {

// (source, vertex) state; 16 bytes, the unit of frontier/visited memory.
struct Pair {
  VertexId src;
  VertexId v;
  bool operator==(const Pair&) const = default;
};

struct PairHash {
  std::size_t operator()(const Pair& p) const {
    return mix64(p.src * 0x9e3779b97f4a7c15ULL + p.v);
  }
};

// (source, vertex, depth) visited state: BFT must keep per-depth states,
// otherwise a destination first reached below min_hop would never be
// counted when a longer in-window walk exists.
struct Triple {
  VertexId src;
  VertexId v;
  Depth depth;
  bool operator==(const Triple&) const = default;
};

struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    return mix64(t.src * 0x9e3779b97f4a7c15ULL + t.v * 31 + t.depth);
  }
};

std::vector<LabelId> resolve_vlabels(const Catalog& cat,
                                     const std::vector<std::string>& names) {
  std::vector<LabelId> out;
  for (const auto& n : names) {
    if (const auto id = cat.find_vertex_label(n)) out.push_back(*id);
  }
  return out;
}

std::vector<LabelId> resolve_elabels(const Catalog& cat,
                                     const std::vector<std::string>& names) {
  std::vector<LabelId> out;
  for (const auto& n : names) {
    if (const auto id = cat.find_edge_label(n)) out.push_back(*id);
  }
  return out;
}

bool label_in(LabelId l, const std::vector<LabelId>& set) {
  return set.empty() || std::find(set.begin(), set.end(), l) != set.end();
}

}  // namespace

BftResult BftEngine::run(const BftTask& task) const {
  Stopwatch timer;
  BftResult result;
  const unsigned machines = graph_.num_machines();
  const Catalog& cat = graph_.catalog();
  const auto src_labels = resolve_vlabels(cat, task.source_labels);
  const auto dst_labels = resolve_vlabels(cat, task.dest_labels);
  const auto elabels = resolve_elabels(cat, task.edge_labels);
  const bool want_src_missing =
      !task.source_labels.empty() && src_labels.empty();
  const bool want_dst_missing = !task.dest_labels.empty() && dst_labels.empty();

  // Per-machine visited state sets (the memory hog), counted-destination
  // sets, and frontiers.
  std::vector<std::unordered_set<Triple, TripleHash>> visited(machines);
  std::vector<std::unordered_set<Pair, PairHash>> counted(machines);
  std::vector<std::vector<Pair>> frontier(machines);
  std::uint64_t matched = 0;

  const auto count_dest = [&](MachineId m, const Pair& p) {
    if (want_dst_missing) return;
    const Partition& part = graph_.partition(m);
    const LocalVertexId lv = *part.to_local(p.v);
    if (!label_in(part.label(lv), dst_labels)) return;
    if (counted[m].insert(p).second) ++matched;
  };

  // Seed the frontier.
  const auto id_prop = cat.find_property("id");
  if (!want_src_missing) {
    for (unsigned m = 0; m < machines; ++m) {
      const Partition& part = graph_.partition(m);
      for (LocalVertexId lv = 0; lv < part.num_local(); ++lv) {
        const VertexId v = part.to_global(lv);
        if (task.single_source != kInvalidVertex && v != task.single_source) {
          continue;
        }
        if (!label_in(part.label(lv), src_labels)) continue;
        if (task.source_id_max >= 0) {
          if (!id_prop) continue;
          const Value id = part.property(lv, *id_prop);
          if (id.type != ValueType::kInt || as_int(id) > task.source_id_max) {
            continue;
          }
        }
        const Pair p{v, v};
        visited[m].insert({v, v, 0});
        frontier[m].push_back(p);
        if (task.min_hop == 0) count_dest(static_cast<MachineId>(m), p);
      }
    }
  }

  // Unbounded windows clamp the visited-state depth at min_hop: beyond
  // min, longer walks add no new destinations (see reference.cpp). The
  // level loop still advances by real depth, but states saturate.
  const bool unbounded = task.max_hop == kUnboundedDepth;
  const Depth cap = unbounded
                        ? static_cast<Depth>(graph_.global().num_vertices()) +
                              task.min_hop
                        : task.max_hop;
  const Depth state_cap = unbounded ? task.min_hop : task.max_hop;

  std::uint64_t state_bytes = 0;
  const auto track_peak = [&] {
    std::uint64_t bytes = 0;
    for (unsigned m = 0; m < machines; ++m) {
      bytes += visited[m].size() * sizeof(Triple) +
               counted[m].size() * sizeof(Pair) +
               frontier[m].size() * sizeof(Pair);
    }
    state_bytes = std::max(state_bytes, bytes);
  };
  track_peak();

  for (Depth depth = 1; depth <= cap; ++depth) {
    std::vector<std::vector<Pair>> outgoing(machines);
    bool any = false;
    for (unsigned m = 0; m < machines; ++m) {
      const Partition& part = graph_.partition(m);
      for (const Pair& p : frontier[m]) {
        const LocalVertexId lv = *part.to_local(p.v);
        const auto expand = [&](Direction d, bool skip_self) {
          const Adjacency& adj = part.adjacency(d);
          const auto scan = [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              const AdjEntry& e = adj.entry(i);
              if (skip_self && e.other == p.v) continue;
              outgoing[graph_.owner(e.other)].push_back({p.src, e.other});
            }
          };
          if (elabels.empty()) {
            const auto [begin, end] = adj.range(lv);
            scan(begin, end);
          } else {
            for (const LabelId l : elabels) {
              const auto [begin, end] = adj.label_range(lv, l);
              scan(begin, end);
            }
          }
        };
        if (task.dir == Direction::kOut || task.dir == Direction::kBoth) {
          expand(Direction::kOut, false);
        }
        if (task.dir == Direction::kIn) {
          expand(Direction::kIn, false);
        } else if (task.dir == Direction::kBoth) {
          expand(Direction::kIn, true);
        }
      }
      frontier[m].clear();
    }
    // Exchange + receiver-side dedup (level-synchronous superstep).
    const Depth state_depth = std::min(depth, state_cap);
    for (unsigned m = 0; m < machines; ++m) {
      result.messages += outgoing[m].empty() ? 0 : 1;
      for (const Pair& p : outgoing[m]) {
        if (!visited[m].insert({p.src, p.v, state_depth}).second) continue;
        any = true;
        frontier[m].push_back(p);
        if (depth >= task.min_hop) count_dest(static_cast<MachineId>(m), p);
      }
    }
    track_peak();
    if (!any) break;
    result.max_depth = depth;
  }

  result.count = matched;
  result.peak_state_bytes = state_bytes;
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

}  // namespace rpqd::baseline
