// PostgreSQL-like comparator: relational evaluation with materialized
// intermediate row sets and semi-naive recursive CTEs for RPQ segments —
// the plan PostgreSQL runs for the paper's `WITH RECURSIVE` rewrites
// (§2, §4.1).
//
// Pattern edges become hash joins that materialize the full row set at
// every step (the row explosion that makes the relational engine slow on
// RPQs); each RPQ segment is evaluated as a recursive CTE: iterate a
// frontier of (source, vertex, depth) states, UNION-deduplicate, and
// collect (source, destination) pairs whose depth lies in the quantifier
// window. Peak materialized rows are reported so benchmarks can show the
// memory shape next to RPQd's flow-controlled execution.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/graph.h"

namespace rpqd::baseline {

struct RelationalResult {
  std::uint64_t count = 0;
  double elapsed_ms = 0.0;
  std::uint64_t peak_rows = 0;  // largest materialized row set
};

class RelationalEngine {
 public:
  explicit RelationalEngine(const Graph& graph) : graph_(graph) {}

  RelationalResult execute(std::string_view pgql_text) const;

 private:
  const Graph& graph_;
};

}  // namespace rpqd::baseline
