#include "baseline/relational.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/eval_util.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/stopwatch.h"
#include "pgql/parser.h"

namespace rpqd::baseline {

namespace {

using pgql::Expr;
using pgql::PathMacro;
using pgql::Query;

struct TEdge {
  std::string src, dst;
  Direction dir = Direction::kOut;
  std::vector<std::string> labels;
  bool is_rpq = false;
  Depth min = 1, max = 1;
  const PathMacro* macro = nullptr;
  std::vector<std::string> rpq_labels;
};

// A materialized relation: one column per bound variable plus a
// multiplicity weight (relational joins materialize duplicates; we fold
// exact duplicates into a weight to keep the comparator runnable).
struct Relation {
  std::vector<std::string> columns;
  std::vector<std::vector<VertexId>> rows;
  std::vector<std::uint64_t> weights;
};

class RelEvaluator {
 public:
  RelEvaluator(const Query& q, const Graph& g) : q_(q), g_(g) {
    for (const auto& m : q.path_macros) macros_.emplace(m.name, &m);
    collect();
  }

  std::uint64_t run(std::uint64_t* peak_rows) {
    Relation rel = scan_first();
    note_peak(rel);
    std::vector<bool> used(edges_.size(), false);
    std::size_t remaining = edges_.size();
    while (remaining > 0) {
      // Pick the first unused edge with at least one bound endpoint.
      std::size_t pick = edges_.size();
      for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (used[i]) continue;
        if (column_of(rel, edges_[i].src) || column_of(rel, edges_[i].dst)) {
          pick = i;
          break;
        }
      }
      if (pick == edges_.size()) {
        throw UnsupportedError("relational: disconnected pattern");
      }
      used[pick] = true;
      --remaining;
      rel = join_edge(std::move(rel), edges_[pick]);
      note_peak(rel);
      apply_ready_filters(rel);
    }
    apply_ready_filters(rel);
    std::uint64_t total = 0;
    for (const auto w : rel.weights) total += w;
    if (peak_rows != nullptr) *peak_rows = peak_;
    return total;
  }

 private:
  void note_peak(const Relation& rel) {
    peak_ = std::max<std::uint64_t>(peak_, rel.rows.size());
  }

  void collect() {
    for (const auto& chain : q_.match) {
      note_var(chain.src.var, chain.src.labels);
      std::string prev = chain.src.var;
      for (const auto& hop : chain.hops) {
        note_var(hop.dst.var, hop.dst.labels);
        TEdge e;
        e.src = prev;
        e.dst = hop.dst.var;
        e.dir = hop.edge.dir;
        e.labels = hop.edge.labels;
        e.is_rpq = hop.edge.is_rpq;
        if (e.is_rpq) {
          e.min = hop.edge.quantifier.min;
          e.max = hop.edge.quantifier.max;
          if (!hop.edge.path_name.empty()) {
            const auto it = macros_.find(hop.edge.path_name);
            if (it != macros_.end()) {
              e.macro = it->second;
            } else {
              e.rpq_labels = {hop.edge.path_name};
            }
          } else {
            e.rpq_labels = hop.edge.labels;
            e.labels.clear();
          }
          if (e.dir == Direction::kIn) {
            std::swap(e.src, e.dst);
            e.dir = Direction::kOut;
          }
        }
        edges_.push_back(std::move(e));
        prev = hop.dst.var;
      }
    }
    std::vector<const Expr*> flat;
    flatten_and(q_.where.get(), flat);
    for (const Expr* f : flat) {
      std::vector<std::string> vars;
      pgql::collect_vars(*f, vars);
      for (const auto& v : vars) {
        for (const auto& [name, macro] : macros_) {
          (void)name;
          if (macro == nullptr) continue;
          if (macro->pattern.src.var == v) {
            throw UnsupportedError(
                "relational: cross-filters into PATH variables are not "
                "supported by the recursive-CTE rewrite");
          }
          for (const auto& hop : macro->pattern.hops) {
            if (hop.dst.var == v) {
              throw UnsupportedError(
                  "relational: cross-filters into PATH variables are not "
                  "supported by the recursive-CTE rewrite");
            }
          }
        }
      }
      filters_.push_back(f);
    }
  }

  void note_var(const std::string& name,
                const std::vector<std::string>& labels) {
    if (std::find(order_.begin(), order_.end(), name) == order_.end()) {
      order_.push_back(name);
    }
    if (labels.empty()) return;
    auto& merged = var_labels_[name];
    if (!constrained_.count(name)) {
      merged = labels;
      constrained_.insert(name);
    } else {
      std::vector<std::string> kept;
      for (const auto& l : merged) {
        if (std::find(labels.begin(), labels.end(), l) != labels.end()) {
          kept.push_back(l);
        }
      }
      merged = std::move(kept);
    }
  }

  std::optional<std::size_t> column_of(const Relation& rel,
                                       const std::string& var) const {
    const auto it = std::find(rel.columns.begin(), rel.columns.end(), var);
    if (it == rel.columns.end()) return std::nullopt;
    return static_cast<std::size_t>(it - rel.columns.begin());
  }

  Relation scan_first() {
    Relation rel;
    const std::string& var = order_.front();
    rel.columns.push_back(var);
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (!label_ok(g_, v, var_labels_[var])) continue;
      rel.rows.push_back({v});
      rel.weights.push_back(1);
    }
    return rel;
  }

  // Joins one pattern edge into the relation.
  Relation join_edge(Relation rel, const TEdge& e) {
    const auto src_col = column_of(rel, e.src);
    const auto dst_col = column_of(rel, e.dst);
    if (e.is_rpq) {
      const bool forward = src_col.has_value();
      const std::string& anchor_var = forward ? e.src : e.dst;
      const std::string& new_var = forward ? e.dst : e.src;
      const auto anchor_col = *column_of(rel, anchor_var);
      // Recursive CTE over the distinct anchors.
      std::unordered_set<VertexId> anchors;
      for (const auto& row : rel.rows) anchors.insert(row[anchor_col]);
      const auto pairs = recursive_cte(e, anchors, forward);
      const auto new_col = column_of(rel, new_var);
      Relation out;
      out.columns = rel.columns;
      if (!new_col) out.columns.push_back(new_var);
      for (std::size_t r = 0; r < rel.rows.size(); ++r) {
        const auto it = pairs.find(rel.rows[r][anchor_col]);
        if (it == pairs.end()) continue;
        if (new_col) {
          // Cycle-closing RPQ: existence check.
          if (it->second.count(rel.rows[r][*new_col]) != 0) {
            out.rows.push_back(rel.rows[r]);
            out.weights.push_back(rel.weights[r]);
          }
        } else {
          for (const VertexId d : it->second) {
            if (!label_ok(g_, d, var_labels_[new_var])) continue;
            auto row = rel.rows[r];
            row.push_back(d);
            out.rows.push_back(std::move(row));
            out.weights.push_back(rel.weights[r]);
          }
        }
      }
      return out;
    }
    // Fixed edge join.
    if (src_col && dst_col) {
      // Both bound: multiply by the parallel-edge count.
      Relation out;
      out.columns = rel.columns;
      for (std::size_t r = 0; r < rel.rows.size(); ++r) {
        const std::size_t m = count_edges(g_, rel.rows[r][*src_col],
                                          rel.rows[r][*dst_col], e.dir,
                                          e.labels);
        if (m == 0) continue;
        out.rows.push_back(rel.rows[r]);
        out.weights.push_back(rel.weights[r] * m);
      }
      return out;
    }
    const bool forward = src_col.has_value();
    const auto anchor_col = forward ? *src_col : *dst_col;
    const std::string& new_var = forward ? e.dst : e.src;
    const Direction dir = forward ? e.dir : reverse(e.dir);
    Relation out;
    out.columns = rel.columns;
    out.columns.push_back(new_var);
    for (std::size_t r = 0; r < rel.rows.size(); ++r) {
      for_each_neighbor(g_, rel.rows[r][anchor_col], dir, e.labels,
                        [&](VertexId d) {
                          if (!label_ok(g_, d, var_labels_[new_var])) return;
                          auto row = rel.rows[r];
                          row.push_back(d);
                          out.rows.push_back(std::move(row));
                          out.weights.push_back(rel.weights[r]);
                        });
    }
    return out;
  }

  // Semi-naive recursive CTE: (anchor, vertex, depth) states; collects
  // destinations whose depth falls inside the quantifier window.
  std::unordered_map<VertexId, std::unordered_set<VertexId>> recursive_cte(
      const TEdge& e, const std::unordered_set<VertexId>& anchors,
      bool forward) {
    struct State {
      VertexId anchor, vertex;
      Depth depth;
    };
    // Unbounded quantifiers clamp depth at min: beyond min, all
    // extensions behave identically (see reference.cpp).
    const bool unbounded = e.max == kUnboundedDepth;
    const Depth cap = unbounded ? e.min : e.max;
    std::unordered_map<VertexId, std::unordered_set<VertexId>> result;
    std::unordered_set<std::uint64_t> seen;
    std::deque<State> frontier;
    const auto state_key = [](VertexId anchor, VertexId v, Depth depth) {
      return mix64(mix64(mix64(anchor) + v) + depth);
    };
    for (const VertexId a : anchors) {
      frontier.push_back({a, a, 0});
      seen.insert(state_key(a, a, 0));
      if (e.min == 0) result[a].insert(a);
    }
    std::uint64_t states = anchors.size();
    while (!frontier.empty()) {
      const State s = frontier.front();
      frontier.pop_front();
      if (!unbounded && s.depth >= cap) continue;
      expand_once(e, s.vertex, forward, [&](VertexId w) {
        const Depth next =
            unbounded ? std::min<Depth>(s.depth + 1, cap) : s.depth + 1;
        const std::uint64_t key = state_key(s.anchor, w, next);
        if (!seen.insert(key).second) return;
        ++states;
        if (next >= e.min) result[s.anchor].insert(w);
        frontier.push_back({s.anchor, w, next});
      });
      peak_ = std::max(peak_, states);
    }
    return result;
  }

  // One path-pattern iteration (inner chain) from `from`.
  void expand_once(const TEdge& e, VertexId from, bool forward,
                   const std::function<void(VertexId)>& fn) {
    if (e.macro == nullptr) {
      const Direction dir = forward ? e.dir : reverse(e.dir);
      for_each_neighbor(g_, from, dir, e.rpq_labels, fn);
      return;
    }
    // Oriented macro chain.
    std::vector<const pgql::VertexPattern*> verts;
    std::vector<std::pair<const pgql::EdgePattern*, Direction>> hops;
    verts.push_back(&e.macro->pattern.src);
    for (const auto& hop : e.macro->pattern.hops) {
      verts.push_back(&hop.dst);
      hops.emplace_back(&hop.edge, hop.edge.dir);
    }
    if (!forward) {
      std::reverse(verts.begin(), verts.end());
      std::reverse(hops.begin(), hops.end());
      for (auto& h : hops) h.second = reverse(h.second);
    }
    Binding bind;
    std::function<void(std::size_t, VertexId)> walk = [&](std::size_t pos,
                                                          VertexId at) {
      if (!label_ok(g_, at, verts[pos]->labels)) return;
      bind[verts[pos]->var] = at;
      if (pos + 1 == verts.size()) {
        if (e.macro->where == nullptr || eval_bool(*e.macro->where, g_, bind)) {
          fn(at);
        }
        return;
      }
      for_each_neighbor(g_, at, hops[pos].second, hops[pos].first->labels,
                        [&](VertexId next) { walk(pos + 1, next); });
    };
    walk(0, from);
  }

  // Applies every WHERE conjunct whose variables are all bound and that
  // has not been applied yet.
  void apply_ready_filters(Relation& rel) {
    for (std::size_t i = 0; i < filters_.size(); ++i) {
      if (applied_.count(i) != 0) continue;
      std::vector<std::string> vars;
      pgql::collect_vars(*filters_[i], vars);
      bool ready = true;
      for (const auto& v : vars) {
        if (!column_of(rel, v)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      applied_.insert(i);
      Relation out;
      out.columns = rel.columns;
      for (std::size_t r = 0; r < rel.rows.size(); ++r) {
        Binding bind;
        for (std::size_t c = 0; c < rel.columns.size(); ++c) {
          bind[rel.columns[c]] = rel.rows[r][c];
        }
        if (eval_bool(*filters_[i], g_, bind)) {
          out.rows.push_back(rel.rows[r]);
          out.weights.push_back(rel.weights[r]);
        }
      }
      rel = std::move(out);
    }
  }

  const Query& q_;
  const Graph& g_;
  std::unordered_map<std::string, const PathMacro*> macros_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, std::vector<std::string>> var_labels_;
  std::unordered_set<std::string> constrained_;
  std::vector<TEdge> edges_;
  std::vector<const Expr*> filters_;
  std::unordered_set<std::size_t> applied_;
  std::uint64_t peak_ = 0;
};

}  // namespace

RelationalResult RelationalEngine::execute(std::string_view pgql_text) const {
  Stopwatch timer;
  const Query q = pgql::parse(pgql_text);
  RelEvaluator eval(q, graph_);
  RelationalResult result;
  result.count = eval.run(&result.peak_rows);
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

}  // namespace rpqd::baseline
