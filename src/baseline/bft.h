// Distributed breadth-first-traversal RPQ engine — the alternative the
// paper positions RPQd against (§2, §5 "more specialized algorithms like
// BFT might be a better fit if sacrificing low memory consumption ... is
// acceptable").
//
// Level-synchronous supersteps over the same PartitionedGraph: every
// machine expands its slice of the (source, vertex) frontier one depth at
// a time and exchanges the remote successors. Per-source deduplication
// needs a materialized visited set of (source, vertex, depth) states —
// the memory cost RPQd's DFT + flow control avoids. The engine reports
// peak frontier/visited bytes so the ablation bench can plot latency
// against memory for both designs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/partition.h"

namespace rpqd::baseline {

/// A single-RPQ reachability task: (src with labels) -/:labels{min,max}/-
/// (dst with labels). This covers every RPQ the evaluation section runs.
struct BftTask {
  std::vector<std::string> source_labels;  // empty = all vertices
  VertexId single_source = kInvalidVertex;  // set: start from one vertex
  /// >= 0: restrict sources to vertices whose "id" property is <= this.
  std::int64_t source_id_max = -1;
  Direction dir = Direction::kOut;
  std::vector<std::string> edge_labels;
  Depth min_hop = 1;
  Depth max_hop = 1;  // kUnboundedDepth = unbounded
  std::vector<std::string> dest_labels;  // empty = all
};

struct BftResult {
  std::uint64_t count = 0;  // (source, destination) pairs, deduplicated
  double elapsed_ms = 0.0;
  std::uint64_t peak_state_bytes = 0;  // frontier + visited high-water mark
  std::uint64_t messages = 0;          // cross-machine frontier transfers
  Depth max_depth = 0;
};

class BftEngine {
 public:
  explicit BftEngine(const PartitionedGraph& graph) : graph_(graph) {}

  BftResult run(const BftTask& task) const;

 private:
  const PartitionedGraph& graph_;
};

}  // namespace rpqd::baseline
