// Neo4j-like comparator: a single-machine, single-threaded graph engine
// that evaluates patterns in textual order with per-source BFS expansion
// for variable-length segments — the algorithmic shape of Cypher's
// var-length expand on one box (§4.1 "Neo4j" configuration).
//
// This comparator exists to reproduce the *shape* of Figure 2 (who wins,
// by roughly what factor); it shares the reference evaluator's matching
// core (naive order, BFS, no cost-based planning, no distribution), which
// is precisely what makes it a fair stand-in for a disk-cached
// single-machine engine rather than a straw man.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/graph.h"

namespace rpqd::baseline {

struct BaselineResult {
  std::uint64_t count = 0;
  double elapsed_ms = 0.0;
};

class Neo4jLikeEngine {
 public:
  explicit Neo4jLikeEngine(const Graph& graph) : graph_(graph) {}

  BaselineResult execute(std::string_view pgql_text) const;

 private:
  const Graph& graph_;
};

}  // namespace rpqd::baseline
