// Brute-force reference evaluator — the correctness oracle.
//
// Evaluates the same PGQL subset as RPQd on the *global* (unpartitioned)
// graph with a deliberately different algorithm: naive backtracking over
// the pattern variables in textual order, and per-source layered BFS over
// (vertex, depth) states for RPQ segments. No planner heuristics, no
// distribution, no DFT — so agreement between RPQd and this evaluator is
// meaningful evidence of correctness (used by the property-based tests).
//
// RPQ semantics match §3.5: per source binding, each destination is
// counted once if ANY walk with length in [min, max] matches the path
// pattern. Unbounded quantifiers are evaluated with the walk-pumping
// bound min + |V| (a minimal-length witness walk of length >= min never
// needs more than min + |V| steps).
//
// Supported WHERE scoping mirrors the planner: conjuncts touching PATH
// macro variables are applied per iteration (macro WHERE clauses always
// are); cross-filters referencing outer variables are applied per
// iteration using the outer binding.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "pgql/ast.h"

namespace rpqd::baseline {

struct ReferenceResult {
  std::uint64_t count = 0;
};

/// Evaluates `query` on `graph`; throws QueryError/UnsupportedError like
/// the planner for out-of-subset constructs.
ReferenceResult reference_evaluate(const pgql::Query& query,
                                   const Graph& graph);

/// Convenience: parse + evaluate.
ReferenceResult reference_evaluate(std::string_view pgql_text,
                                   const Graph& graph);

}  // namespace rpqd::baseline
