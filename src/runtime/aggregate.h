// Distributed aggregation (GROUP BY) support.
//
// Each worker folds its output rows into a local hash of group-key ->
// aggregate states; the engine merges the per-worker/per-machine partial
// aggregates after termination. This mirrors how a distributed engine
// avoids materializing the full match set for aggregate queries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/catalog.h"
#include "pgql/ast.h"
#include "plan/expr.h"

namespace rpqd {

/// Running state of one aggregate function within one group.
struct AggState {
  std::uint64_t count = 0;  // non-null operands seen (COUNT / AVG)
  bool saw_double = false;
  std::int64_t sum_int = 0;
  double sum_double = 0.0;
  // MIN/MAX candidate: either a Value or out-of-dictionary text.
  bool has_best = false;
  bool best_is_text = false;
  Value best_value{};
  std::string best_text;

  /// Folds one evaluated operand into the state.
  void update(pgql::AggKind kind, const EvalValue& v, const Catalog& catalog);

  /// Merges another partial state (same aggregate, same group).
  void merge(pgql::AggKind kind, const AggState& other,
             const Catalog& catalog);

  /// Renders the final aggregate result.
  std::string render(pgql::AggKind kind, const Catalog& catalog) const;

 private:
  void consider_best(pgql::AggKind kind, const EvalValue& v,
                     const Catalog& catalog);
};

struct AggRow {
  std::vector<std::string> keys;  // rendered group-key values
  std::vector<AggState> states;   // one per aggregate in the plan
};

/// Keyed by the concatenated rendered group keys (0x1f-separated).
using AggMap = std::unordered_map<std::string, AggRow>;

/// Merges `from` into `into` (pairwise state merge per group).
void merge_agg_maps(AggMap& into, const AggMap& from,
                    const std::vector<pgql::AggKind>& kinds,
                    const Catalog& catalog);

}  // namespace rpqd
