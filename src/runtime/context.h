// Execution contexts and their wire encoding.
//
// A context is the intermediate state of one traversal: the vertex to
// process, the target stage, the RPQ bookkeeping (rpid + depth, §3.5),
// and the context slots materialized so far. Local work keeps contexts on
// the worker's stack; remote hops serialize them into message payloads
// batched per (destination machine, stage, depth) — §3.2 "Messaging".
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "graph/value.h"

namespace rpqd {

struct Context {
  StageId stage = kInvalidStage;
  VertexId vertex = kInvalidVertex;
  Depth depth = 0;
  std::uint64_t rpid = 0;
  std::vector<Value> slots;
};

/// Per-buffer codec state for the batched delta encoding. Contexts in
/// one message all target the same (stage, depth) and tend to carry
/// nearby vertex ids and consecutive rpids (same worker, sequential
/// counter), so each context stores the zigzag-varint *difference* from
/// its predecessor in the batch. The state resets with every message:
/// encoder side lives in the outbound buffer, decoder side is fresh per
/// message payload.
struct ContextCodecState {
  VertexId prev_vertex = 0;
  std::uint64_t prev_rpid = 0;
};

/// Appends one context (minus stage/depth, which live in the message
/// header) to a payload under construction.
inline void encode_context(BinaryWriter& w, ContextCodecState& state,
                           VertexId vertex, std::uint64_t rpid,
                           const std::vector<Value>& slots) {
  // Unsigned subtraction wraps mod 2^64; the cast to int64 makes small
  // differences in either direction zigzag to short varints, and the
  // decoder's wrapping add reverses it exactly.
  w.write_varint_signed(static_cast<std::int64_t>(vertex - state.prev_vertex));
  w.write_varint_signed(static_cast<std::int64_t>(rpid - state.prev_rpid));
  state.prev_vertex = vertex;
  state.prev_rpid = rpid;
  for (const Value& v : slots) {
    w.write<std::uint8_t>(static_cast<std::uint8_t>(v.type));
    switch (v.type) {
      case ValueType::kNull:
        break;  // bits are canonically 0
      case ValueType::kBool:
      case ValueType::kString:
        w.write_varint(v.bits);  // 0/1 or a small dictionary id
        break;
      case ValueType::kInt:
        w.write_varint_signed(static_cast<std::int64_t>(v.bits));
        break;
      case ValueType::kDouble:
        w.write<std::uint64_t>(v.bits);  // bit pattern, incompressible
        break;
      case ValueType::kVertex:
        // Bound vertices are usually near the context vertex (earlier
        // hops of the same traversal): delta against it.
        w.write_varint_signed(static_cast<std::int64_t>(v.bits - vertex));
        break;
    }
  }
}

/// Reads one context; `num_slots` comes from the execution plan.
inline void decode_context(BinaryReader& r, ContextCodecState& state,
                           unsigned num_slots, VertexId& vertex,
                           std::uint64_t& rpid, std::vector<Value>& slots) {
  vertex = state.prev_vertex +
           static_cast<std::uint64_t>(r.read_varint_signed());
  rpid = state.prev_rpid + static_cast<std::uint64_t>(r.read_varint_signed());
  state.prev_vertex = vertex;
  state.prev_rpid = rpid;
  slots.resize(num_slots);
  for (unsigned i = 0; i < num_slots; ++i) {
    const auto type = static_cast<ValueType>(r.read<std::uint8_t>());
    slots[i].type = type;
    switch (type) {
      case ValueType::kNull:
        slots[i].bits = 0;
        break;
      case ValueType::kBool:
      case ValueType::kString:
        slots[i].bits = r.read_varint();
        break;
      case ValueType::kInt:
        slots[i].bits = static_cast<std::uint64_t>(r.read_varint_signed());
        break;
      case ValueType::kDouble:
        slots[i].bits = r.read<std::uint64_t>();
        break;
      case ValueType::kVertex:
        slots[i].bits =
            vertex + static_cast<std::uint64_t>(r.read_varint_signed());
        break;
    }
  }
}

}  // namespace rpqd
