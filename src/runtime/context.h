// Execution contexts and their wire encoding.
//
// A context is the intermediate state of one traversal: the vertex to
// process, the target stage, the RPQ bookkeeping (rpid + depth, §3.5),
// and the context slots materialized so far. Local work keeps contexts on
// the worker's stack; remote hops serialize them into message payloads
// batched per (destination machine, stage, depth) — §3.2 "Messaging".
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "graph/value.h"

namespace rpqd {

struct Context {
  StageId stage = kInvalidStage;
  VertexId vertex = kInvalidVertex;
  Depth depth = 0;
  std::uint64_t rpid = 0;
  std::vector<Value> slots;
};

/// Appends one context (minus stage/depth, which live in the message
/// header) to a payload under construction.
inline void encode_context(BinaryWriter& w, VertexId vertex,
                           std::uint64_t rpid,
                           const std::vector<Value>& slots) {
  w.write_varint(vertex);
  w.write<std::uint64_t>(rpid);
  for (const Value& v : slots) {
    w.write<std::uint8_t>(static_cast<std::uint8_t>(v.type));
    w.write<std::uint64_t>(v.bits);
  }
}

/// Reads one context; `num_slots` comes from the execution plan.
inline void decode_context(BinaryReader& r, unsigned num_slots,
                           VertexId& vertex, std::uint64_t& rpid,
                           std::vector<Value>& slots) {
  vertex = r.read_varint();
  rpid = r.read<std::uint64_t>();
  slots.resize(num_slots);
  for (unsigned i = 0; i < num_slots; ++i) {
    slots[i].type = static_cast<ValueType>(r.read<std::uint8_t>());
    slots[i].bits = r.read<std::uint64_t>();
  }
}

}  // namespace rpqd
